// SecVII-B memory study reproduction: storage per DOF across operator
// representations, and the effect of the paper's memory optimizations.
//
// The paper reports: partial assembly stores O(1) per DOF (vs full/element
// assembly); matrix-free stores only element corners; and a 5.33x total
// footprint reduction from optimizations (recomputing Jacobian determinants,
// reusing RK4 temporaries, sparse RHS, batched allocations) that enabled
// 1.28 B DOF per MI300A. We account the same categories explicitly.

#include <cstdio>

#include "fem/pa_kernels.hpp"
#include "mesh/bathymetry.hpp"
#include "mesh/hex_mesh.hpp"
#include "util/memory_tracker.hpp"
#include "util/table.hpp"
#include "wave/acoustic_gravity.hpp"

int main() {
  using namespace tsunami;

  const Bathymetry bathy;  // synthetic Cascadia
  const HexMesh mesh(bathy, 12, 16, 3);
  const std::size_t order = 4;  // the paper's discretization order
  const BasisTables tables(order);
  const H1Space h1(mesh, tables);
  const L2Space l2(mesh, tables);
  const auto geom = build_pa_geometry(mesh, tables);

  const std::size_t ndof = h1.num_dofs() + l2.num_dofs();
  const std::size_t nelem = mesh.num_elements();
  const std::size_t q3 = geom.q3;
  const std::size_t n1 = tables.n1;

  std::printf("=== SecVII-B: operator storage per DOF (order %zu, %zu "
              "elements, %zu state DOF) ===\n\n",
              order, nelem, ndof);

  // Full assembly: a global sparse matrix. Each pressure row couples with
  // ~(2p+1)^3 pressure neighbours and each velocity row with n1^3 pressure
  // DOFs through the mixed blocks (CSR: 12 B/nonzero).
  const double p_stencil = static_cast<double>((2 * order + 1) *
                                               (2 * order + 1) *
                                               (2 * order + 1));
  const double full_bytes =
      12.0 * (static_cast<double>(h1.num_dofs()) * p_stencil +
              2.0 * static_cast<double>(l2.num_dofs()) *
                  static_cast<double>(n1 * n1 * n1));
  // Element assembly: dense element matrices (both mixed blocks).
  const double elem_bytes =
      8.0 * static_cast<double>(nelem) * 2.0 *
      static_cast<double>(3 * q3 * n1 * n1 * n1);
  // Partial assembly: the stored geometry factors.
  const double pa_bytes = static_cast<double>(geom.pa_bytes());
  // Matrix-free: corner coordinates only.
  const double mf_bytes = static_cast<double>(geom.mf_bytes());

  TextTable table({"representation", "operator bytes", "bytes/DOF",
                   "vs Full assembly"});
  auto emit = [&](const char* name, double bytes) {
    table.row()
        .cell(name)
        .cell(format_bytes(bytes))
        .cell(bytes / static_cast<double>(ndof), 1)
        .cell(full_bytes / bytes, 1);
  };
  emit("Full assembly (CSR)", full_bytes);
  emit("Element assembly", elem_bytes);
  emit("Partial assembly (PA)", pa_bytes);
  emit("Matrix-free (MF)", mf_bytes);
  std::printf("%s\n", table.str().c_str());

  // --- the optimization ladder of SecVII-B, accounted per category --------
  std::printf("=== solver footprint: naive vs optimized (per the paper's "
              "optimization list) ===\n\n");
  const double state = 8.0 * static_cast<double>(ndof);
  MemoryTracker naive, optimized;

  // Naive: PA factors + stored detJ + separate permutation buffers + full
  // RHS vectors + 5 RK4 temporaries + host mirror of the state.
  naive.add("geometry factors", static_cast<std::size_t>(pa_bytes));
  naive.add("stored detJ", nelem * q3 * 8);
  naive.add("permutation buffers", static_cast<std::size_t>(2 * state));
  naive.add("full RHS vectors", static_cast<std::size_t>(2 * state));
  naive.add("RK4 temporaries", static_cast<std::size_t>(5 * state));
  naive.add("host mirror", static_cast<std::size_t>(state));
  naive.add("state", static_cast<std::size_t>(state));

  // Optimized: recompute detJ, fuse permutations into kernels, sparse RHS
  // (source lives on the seafloor plane only), reuse RK4 temporaries for
  // operator scratch, free the host mirror after setup.
  optimized.add("geometry factors", static_cast<std::size_t>(pa_bytes));
  const double bottom_frac =
      static_cast<double>(h1.num_bottom_nodes()) /
      static_cast<double>(ndof);
  optimized.add("sparse RHS", static_cast<std::size_t>(state * bottom_frac));
  optimized.add("RK4 temporaries (reused)",
                static_cast<std::size_t>(5 * state));
  optimized.add("state", static_cast<std::size_t>(state));

  TextTable ladder({"configuration", "total", "bytes/DOF"});
  ladder.row()
      .cell("naive")
      .cell(format_bytes(static_cast<double>(naive.total_bytes())))
      .cell(static_cast<double>(naive.total_bytes()) /
                static_cast<double>(ndof),
            1);
  ladder.row()
      .cell("optimized")
      .cell(format_bytes(static_cast<double>(optimized.total_bytes())))
      .cell(static_cast<double>(optimized.total_bytes()) /
                static_cast<double>(ndof),
            1);
  std::printf("%s\n", ladder.str().c_str());
  const double reduction = static_cast<double>(naive.total_bytes()) /
                           static_cast<double>(optimized.total_bytes());
  std::printf("footprint reduction: %.2fx (paper: 5.33x with additional "
              "host-side savings on the MI300A's unified memory)\n\n",
              reduction);

  std::printf("shape checks: PA is orders of magnitude below full/element "
              "assembly and O(1) per DOF; MF is smaller still (its cost is "
              "flops, Fig. 7); the optimization ladder recovers a multi-x "
              "reduction like the paper's.\n");
  return 0;
}
