#pragma once

// Shared benchmark harness: machine-readable JSON output + the CI smoke
// knob, so the perf trajectory of the hot kernels is comparable across PRs
// without scraping stdout tables.
//
// Every benchmark that uses this helper emits BENCH_<name>.json in the
// current working directory alongside its human-readable tables. Schema:
//   {
//     "bench": "<name>",
//     "quick": false,
//     "meta": {"git_sha": "...", "hardware_threads": 8,
//              "tsunami_num_threads": 8, "timestamp": "2026-01-01T00:00:00Z"},
//     "cases": [
//       {"name": "...", "shape": {"rows": 8, ...},
//        "reps": 25, "median_ns": ..., "p10_ns": ..., "p90_ns": ...},
//       ...
//     ],
//     "notes": {"speedup_at_64": 0.63, ...}
//   }
//
// Quick mode: setting TSUNAMI_BENCH_QUICK=1 caps every repetition count at 1
// (and benchmarks are expected to shrink their sweep). CI's Release job runs
// the kernel benchmarks this way — the point is to EXECUTE the kernels, not
// to collect statistics on shared runners.

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace tsunami::benchutil {

/// True when TSUNAMI_BENCH_QUICK is set to anything but "" or "0".
[[nodiscard]] bool quick_mode();

/// `full_reps` normally; 1 in quick mode.
[[nodiscard]] int reps(int full_reps);

/// Order statistics of one timed case, in nanoseconds.
struct Stat {
  double median_ns = 0.0;
  double p10_ns = 0.0;
  double p90_ns = 0.0;
  int reps = 0;
};

/// Time `n` invocations of fn and summarize. The first invocation is run
/// (and discarded) as warmup when n > 1, so one-time lazy allocation does
/// not pollute the distribution.
[[nodiscard]] Stat time_reps(int n, const std::function<void()>& fn);

/// Summarize an externally collected sample of per-iteration seconds.
[[nodiscard]] Stat from_seconds(const std::vector<double>& seconds);

/// Accumulates cases and writes BENCH_<name>.json.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name);
  /// Writes the file on destruction if write() was never called.
  ~JsonReport();
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  /// `shape` entries are recorded verbatim as a JSON object.
  void add(const std::string& case_name,
           const std::vector<std::pair<std::string, double>>& shape,
           const Stat& stat);

  /// Free-form scalar attached at the top level (speedups, thread counts...).
  void note(const std::string& key, double value);

  /// Write BENCH_<name>.json in the CWD; returns the file name.
  std::string write();

 private:
  struct Case {
    std::string name;
    std::vector<std::pair<std::string, double>> shape;
    Stat stat;
  };
  std::string name_;
  std::vector<Case> cases_;
  std::vector<std::pair<std::string, double>> notes_;
  bool written_ = false;
};

}  // namespace tsunami::benchutil
