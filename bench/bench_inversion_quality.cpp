// Fig. 3 + Fig. 4 reproduction: end-to-end inversion quality on the
// synthetic Cascadia margin-wide rupture — true vs inferred seafloor
// displacement, pointwise posterior uncertainty, and gauge-by-gauge
// wave-height forecasts with 95% credible intervals. Writes the same CSV
// artifacts as examples/cascadia_twin and prints summary metrics.

#include <cstdio>

#include "core/digital_twin.hpp"
#include "linalg/blas.hpp"
#include "util/table.hpp"

int main() {
  using namespace tsunami;

  TwinConfig config = TwinConfig::tiny();
  config.num_sensors = 12;
  config.num_gauges = 5;
  config.num_intervals = 14;
  DigitalTwin twin(config);

  const RuptureConfig rcfg = margin_wide_scenario(
      config.bathymetry.length_x, config.bathymetry.length_y, 8.7, 11);
  const RuptureScenario scenario(rcfg);
  Rng rng(4);
  const SyntheticEvent event = twin.synthesize(scenario, rng);
  twin.run_offline(event.noise);
  const InversionResult result = twin.infer(event.d_obs);

  // --- Fig. 3 metrics: displacement field recovery -------------------------
  const auto b_true = twin.displacement_field(event.m_true);
  const auto b_map = twin.displacement_field(result.m_map);
  const double rel_err = DigitalTwin::relative_error(b_map, b_true);
  const double corr =
      dot(b_true, b_map) / (nrm2(b_true) * nrm2(b_map) + 1e-30);

  // Pointwise posterior std dev of displacement at probe points (Fig. 3e):
  // sensed region vs unsensed corner.
  const auto& src = twin.model().source_map();
  const std::size_t nx1 = src.grid_nx(), ny1 = src.grid_ny();
  auto displacement_sigma = [&](std::size_t r) {
    // Var(int m dt) with block-diagonal-in-time posterior approx: sum of
    // per-interval variances (cross-time covariance omitted -> upper bound
    // on the diagonal part; the paper plots the full pointwise std dev).
    double var = 0.0;
    const double dt = twin.time_grid().interval();
    for (std::size_t t = 0; t < twin.time_grid().num_intervals; ++t)
      var += twin.posterior().pointwise_variance(r, t) * dt * dt;
    return std::sqrt(var);
  };
  const std::size_t sensed = nx1 / 3 + nx1 * (ny1 / 2);
  const std::size_t unsensed = (nx1 - 1) + nx1 * (ny1 - 1);
  const double sigma_sensed = displacement_sigma(sensed);
  const double sigma_unsensed = displacement_sigma(unsensed);

  std::printf("=== Fig. 3: inferred seafloor displacement ===\n");
  TextTable fig3({"metric", "value"});
  fig3.row().cell("relative L2 error").cell(rel_err, 3);
  fig3.row().cell("pattern correlation").cell(corr, 3);
  fig3.row().cell("peak true uplift [m]").cell(amax(b_true), 2);
  fig3.row().cell("peak inferred uplift [m]").cell(amax(b_map), 2);
  fig3.row().cell("posterior sigma, sensed region [m]").cell(sigma_sensed, 3);
  fig3.row().cell("posterior sigma, unsensed corner [m]").cell(
      sigma_unsensed, 3);
  std::printf("%s\n", fig3.str().c_str());

  // --- Fig. 4 metrics: forecasts with CIs ----------------------------------
  const auto& fc = result.forecast;
  std::printf("=== Fig. 4: wave-height forecasts at %zu gauges ===\n",
              fc.num_gauges);
  TextTable fig4({"gauge", "RMSE [m]", "peak true [m]", "peak pred [m]",
                  "CI coverage"});
  for (std::size_t g = 0; g < fc.num_gauges; ++g) {
    double se = 0.0, peak_t = 0.0, peak_p = 0.0;
    int inside = 0, total = 0;
    for (std::size_t t = 0; t < fc.num_times; ++t) {
      const double truth = event.q_true[t * fc.num_gauges + g];
      const double pred = fc.at(fc.mean, t, g);
      se += (truth - pred) * (truth - pred);
      peak_t = std::max(peak_t, std::abs(truth));
      peak_p = std::max(peak_p, std::abs(pred));
      if (fc.at(fc.stddev, t, g) > 1e-14) {
        ++total;
        if (truth >= fc.at(fc.lower95, t, g) &&
            truth <= fc.at(fc.upper95, t, g))
          ++inside;
      }
    }
    fig4.row()
        .cell(static_cast<long>(g))
        .cell(std::sqrt(se / static_cast<double>(fc.num_times)), 4)
        .cell(peak_t, 3)
        .cell(peak_p, 3)
        .cell(total ? std::to_string(inside) + "/" + std::to_string(total)
                    : std::string("-"));
  }
  std::printf("%s\n", fig4.str().c_str());

  std::printf("shape checks (paper Figs. 3-4): inferred displacement "
              "reproduces the true uplift pattern (correlation %.2f); "
              "posterior uncertainty is smaller inside the sensed region "
              "than outside (%.3f < %.3f); forecasts track the true series "
              "with calibrated CIs.\n",
              corr, sigma_sensed, sigma_unsensed);
  return 0;
}
