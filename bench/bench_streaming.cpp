// Per-tick latency of the streaming assimilation engine vs. tick index, and
// against the two re-solve alternatives it replaces:
//
//   stream push      — StreamingAssimilator::push: extend z = L^{-1} d by one
//                      block row + two slab accumulations. Dominated by the
//                      constant slab term, so latency grows SUB-linearly in
//                      the tick index (the forward-substitution extension is
//                      the only t-dependent piece; there is no per-tick
//                      refactorization anywhere).
//   truncated solve  — from-scratch solve of the leading (t Nd) subsystem on
//                      the cached factor (prefix forward + backward
//                      substitution, O((t Nd)^2), plus the matrix-free G*
//                      lift, whose FFT cost is constant per tick and
//                      dominates at seed scale): the cheapest
//                      non-incremental exact alternative.
//   full re-solve    — batch DigitalTwin::infer on the zero-padded window
//                      every tick: what the pre-streaming front door had to
//                      do to refresh m_map + forecast mid-event.
//
// Expected shape: the push column stays near-flat in tens of microseconds
// (sub-linear growth — no refactorization, and the t-dependent forward-
// substitution extension is subdominant to the constant slab term), while
// every re-solve pays the milliseconds-per-tick lift the streaming engine
// amortized into its offline slabs. The last-quarter / first-quarter mean
// latencies and the whole-event totals are printed at the end (quoted in
// the PR description).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/digital_twin.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace tsunami;
  namespace bu = tsunami::benchutil;

  TwinConfig config = TwinConfig::tiny();
  config.num_sensors = 8;
  config.num_gauges = 3;
  config.num_intervals = 48;  // enough ticks to see the growth law
  config.observation_dt = 2.0;
  DigitalTwin twin(config);

  RuptureConfig rc;
  Asperity a;
  a.x0 = 0.3 * twin.mesh().length_x();
  a.y0 = 0.5 * twin.mesh().length_y();
  a.rx = 16e3;
  a.ry = 24e3;
  a.peak_uplift = 2.2;
  rc.asperities.push_back(a);
  rc.hypocenter_x = a.x0;
  rc.hypocenter_y = a.y0;
  Rng rng(9);
  const SyntheticEvent event = twin.synthesize(RuptureScenario(rc), rng);
  twin.run_offline(event.noise);
  const StreamingEngine engine = twin.make_streaming({.track_map = true});

  const std::size_t nt = engine.num_ticks();
  const std::size_t nd = engine.block_size();
  std::printf("=== Streaming assimilation: per-tick latency ===\n");
  std::printf(
      "data dim %zu (%zu sensors x %zu ticks) | parameters %zu | "
      "streaming precompute %s (offline, once per network)\n\n",
      engine.data_dim(), nd, nt, engine.parameter_dim(),
      format_duration(engine.precompute_seconds()).c_str());

  // Per-tick push latency: min over replays (the usual microbenchmark
  // discipline — scheduling noise only ever adds time).
  const int replays = bu::reps(7);
  std::vector<double> push_s(nt, 1e300);
  StreamingAssimilator assim = engine.start();
  for (int r = 0; r < replays; ++r) {
    assim.reset();
    for (std::size_t t = 0; t < nt; ++t) {
      assim.push(t, std::span<const double>(event.d_obs).subspan(t * nd, nd));
      push_s[t] = std::min(push_s[t], assim.last_push_seconds());
    }
  }

  // Trace A/B: the same replay with the flight recorder off (the default —
  // TRACE_SCOPE must cost one relaxed load) vs on (two clock reads + four
  // relaxed stores per span). Alternating off/on within each round (the
  // bench_fftmatvec discipline) so neither mode systematically runs colder,
  // with at least two rounds so each mode gets a warm pass even in quick
  // mode. The off-median matching the untraced push medians above is the
  // "disabled tracing adds zero overhead" guard; both medians land in
  // BENCH_streaming.json.
  const bool was_tracing = obs::trace_enabled();
  std::vector<double> ab_off(nt, 1e300);
  std::vector<double> ab_on(nt, 1e300);
  for (int r = 0; r < std::max(2, replays); ++r) {
    for (const bool traced : {false, true}) {
      obs::set_trace_enabled(traced);
      std::vector<double>& dst = traced ? ab_on : ab_off;
      assim.reset();
      for (std::size_t t = 0; t < nt; ++t) {
        assim.push(t,
                   std::span<const double>(event.d_obs).subspan(t * nd, nd));
        dst[t] = std::min(dst[t], assim.last_push_seconds());
      }
    }
  }
  obs::set_trace_enabled(was_tracing);
  if (!was_tracing) obs::clear_trace();  // keep the A/B out of TSUNAMI_TRACE
  const double push_off_ns = percentile(ab_off, 50.0) * 1e9;
  const double push_on_ns = percentile(ab_on, 50.0) * 1e9;
  std::printf("trace A/B median push: off %s | on %s (%.3fx)\n\n",
              format_duration(push_off_ns / 1e9).c_str(),
              format_duration(push_on_ns / 1e9).c_str(),
              push_on_ns / push_off_ns);

  // Truncated exact re-solve at tick t (prefix solves + prefix G* + Fq m).
  const DenseCholesky& chol = twin.hessian().cholesky();
  std::vector<double> trunc_s(nt, 1e300);
  std::vector<double> u(engine.data_dim());
  std::vector<double> m(engine.parameter_dim());
  std::vector<double> q(engine.qoi_dim());
  for (int r = 0; r < std::max(2, replays / 2); ++r) {
    for (std::size_t t = 0; t < nt; ++t) {
      const std::size_t p = (t + 1) * nd;
      Stopwatch w;
      std::copy(event.d_obs.begin(),
                event.d_obs.begin() + static_cast<std::ptrdiff_t>(p),
                u.begin());
      chol.forward_solve_range(std::span<double>(u), 0, p);
      chol.backward_solve_prefix(std::span<double>(u), p);
      twin.posterior().apply_gstar_prefix(
          std::span<const double>(u).first(p), t + 1, std::span<double>(m));
      twin.predictor().apply_fq_mean(m, std::span<double>(q));
      trunc_s[t] = std::min(trunc_s[t], w.seconds());
    }
  }

  // Full zero-padded batch re-solve per tick (the pre-streaming approach).
  std::vector<double> full_s(nt, 1e300);
  std::vector<double> window(engine.data_dim(), 0.0);
  for (std::size_t t = 0; t < nt; ++t) {
    std::copy(event.d_obs.begin() + static_cast<std::ptrdiff_t>(t * nd),
              event.d_obs.begin() + static_cast<std::ptrdiff_t>((t + 1) * nd),
              window.begin() + static_cast<std::ptrdiff_t>(t * nd));
    const InversionResult inv = twin.infer(window);
    full_s[t] = inv.infer_seconds + inv.predict_seconds;
  }

  TextTable table({"tick", "stream push", "truncated solve", "full re-solve",
                   "push/trunc"});
  for (std::size_t t = 0; t < nt; ++t) {
    if (t % 4 != 3 && t != 0) continue;  // print every 4th tick
    table.row()
        .cell(static_cast<long>(t + 1))
        .cell(format_duration(push_s[t]))
        .cell(format_duration(trunc_s[t]))
        .cell(format_duration(full_s[t]))
        .cell(push_s[t] / trunc_s[t], 3);
  }
  std::printf("%s\n", table.str().c_str());

  const auto quarter_mean = [&](const std::vector<double>& s, bool late) {
    const std::size_t q4 = nt / 4;
    double sum = 0.0;
    for (std::size_t t = 0; t < q4; ++t) sum += s[late ? nt - 1 - t : t];
    return sum / static_cast<double>(q4);
  };
  const double push_early = quarter_mean(push_s, false);
  const double push_late = quarter_mean(push_s, true);
  const double trunc_early = quarter_mean(trunc_s, false);
  const double trunc_late = quarter_mean(trunc_s, true);
  double push_total = 0.0, trunc_total = 0.0, full_total = 0.0;
  for (std::size_t t = 0; t < nt; ++t) {
    push_total += push_s[t];
    trunc_total += trunc_s[t];
    full_total += full_s[t];
  }

  std::printf("growth, last-quarter / first-quarter mean latency (tick index "
              "grows ~%.0fx):\n",
              static_cast<double>(nt - nt / 8) / (0.5 + nt / 8.0));
  std::printf("  stream push     %s -> %s  (%.2fx, sub-linear: no "
              "refactorization, slab term dominates)\n",
              format_duration(push_early).c_str(),
              format_duration(push_late).c_str(), push_late / push_early);
  std::printf("  truncated solve %s -> %s  (%.2fx; dominated by the "
              "constant matrix-free G* lift at seed scale — its O((t Nd)^2) "
              "substitutions take over at paper dims)\n",
              format_duration(trunc_early).c_str(),
              format_duration(trunc_late).c_str(), trunc_late / trunc_early);
  std::printf("\nwhole-event totals: stream %s | truncated re-solves %s "
              "(%.1fx) | full re-solves %s (%.1fx)\n",
              format_duration(push_total).c_str(),
              format_duration(trunc_total).c_str(), trunc_total / push_total,
              format_duration(full_total).c_str(), full_total / push_total);

  // Machine-readable trajectory: per-tick push latency distribution (over
  // all ticks' min-of-replays) plus the re-solve columns for the ratio.
  bu::JsonReport report("streaming");
  report.add("push",
             {{"sensors", static_cast<double>(nd)},
              {"ticks", static_cast<double>(nt)},
              {"parameters", static_cast<double>(engine.parameter_dim())}},
             bu::from_seconds(push_s));
  report.add("truncated_solve",
             {{"sensors", static_cast<double>(nd)},
              {"ticks", static_cast<double>(nt)}},
             bu::from_seconds(trunc_s));
  report.add("full_resolve",
             {{"sensors", static_cast<double>(nd)},
              {"ticks", static_cast<double>(nt)}},
             bu::from_seconds(full_s));
  report.note("whole_event_push_s", push_total);
  report.note("precompute_s", engine.precompute_seconds());
  report.note("push_trace_off_ns", push_off_ns);
  report.note("push_trace_on_ns", push_on_ns);
  report.write();
  return 0;
}
