// Fig. 7 reproduction: DOF throughput of the two key wave-operator kernels
// for the five implementation variants (Initial PA, Shared PA, Optimized PA,
// Fused PA, Fused MF), swept over problem size.
//
// Paper claims reproduced in shape:
//   - sum factorization ("Shared") is ~10x faster than the naive quadrature
//     kernels ("Initial") at order 4,
//   - Fused PA attains the best time-to-solution (DOF throughput),
//   - Fused MF attains HIGHER FLOP/s but LOWER throughput than Fused PA
//     (more flops per DOF; the paper's headline trade-off),
//   - throughput saturates as the problem fills the device/cores.
// Counters: GDOF/s (primary metric), analytic GFLOP/s, bytes/DOF.
//
// InitialPA single-sweep fix (fusing the gradient-evaluation and
// divergence-accumulation basis loops so the reference-gradient row is
// loaded once per quadrature point), measured with this benchmark at
// --benchmark_min_time=0.2s, OMP_NUM_THREADS=4, -O3, gcc 12:
//   order 4: n=8   6.32 ms -> 3.94 ms (1.60x),  n=12  20.0 ms -> 13.9 ms
//            (1.44x),  n=16  45.8 ms -> 35.6 ms (1.29x)
//   order 2: within noise (the n1^3 = 27 inner loop is overhead-bound).

#include <benchmark/benchmark.h>

#include <memory>

#include "fem/pa_kernels.hpp"
#include "mesh/bathymetry.hpp"
#include "mesh/hex_mesh.hpp"
#include "util/rng.hpp"
#include "wave/acoustic_gravity.hpp"

namespace {

using namespace tsunami;

struct KernelFixture {
  KernelFixture(std::size_t n, std::size_t order, KernelVariant variant)
      : bathy(BathymetryConfig{}),
        mesh(bathy, n, n, std::max<std::size_t>(2, n / 2)),
        model(mesh, order, PhysicalConstants{}, variant) {
    Rng rng(1);
    p = rng.normal_vector(model.pressure_dim());
    u = rng.normal_vector(model.velocity_dim());
    p_out.resize(model.pressure_dim());
    u_out.resize(model.velocity_dim());
  }
  Bathymetry bathy;
  HexMesh mesh;
  AcousticGravityModel model;
  std::vector<double> p, u, p_out, u_out;
};

void bench_variant(benchmark::State& state, KernelVariant variant) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto order = static_cast<std::size_t>(state.range(1));
  KernelFixture fx(n, order, variant);
  const auto& op = fx.model.mixed_op();

  for (auto _ : state) {
    op.apply_blocks(fx.p, fx.u, std::span<double>(fx.u_out),
                    std::span<double>(fx.p_out), 1.0, -1.0);
    benchmark::DoNotOptimize(fx.p_out.data());
    benchmark::DoNotOptimize(fx.u_out.data());
  }

  const double dofs = static_cast<double>(op.throughput_dofs());
  const auto costs =
      estimate_kernel_costs(variant, order, fx.mesh.num_elements());
  state.counters["GDOF/s"] = benchmark::Counter(
      dofs * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  state.counters["GFLOP/s"] = benchmark::Counter(
      costs.flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  state.counters["bytes/DOF"] = costs.bytes / dofs;
  state.counters["DOF"] = dofs;
}

void register_all() {
  const struct {
    const char* name;
    KernelVariant variant;
  } variants[] = {
      {"InitialPA", KernelVariant::InitialPA},
      {"SharedPA", KernelVariant::SharedPA},
      {"OptimizedPA", KernelVariant::OptimizedPA},
      {"FusedPA", KernelVariant::FusedPA},
      {"FusedMF", KernelVariant::FusedMF},
  };
  for (const auto& v : variants) {
    const std::string name = std::string("WaveKernels/") + v.name;
    auto* b = benchmark::RegisterBenchmark(
        name.c_str(), [variant = v.variant](benchmark::State& s) {
          bench_variant(s, variant);
        });
    // Sweep problem size (footprint n x n x n/2 hexes) at the paper's
    // high order (4) plus the production order used in the examples (2).
    for (long order : {2, 4}) {
      for (long n : {4, 8, 12, 16}) b->Args({n, order});
    }
    b->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
