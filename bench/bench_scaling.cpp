// Table II + Fig. 5 reproduction: weak and strong scalability of the
// acoustic-gravity RK4 solver.
//
// Two parts (DESIGN.md substitution):
//   1. REAL measurement: worker-thread scaling of the operator kernels on
//      this machine, and calibration of a "local CPU" machine profile.
//   2. MODEL projection: the calibrated alpha-beta simulator evaluated on
//      the paper's three systems at the paper's Table-II configurations,
//      printing Fig. 5-style efficiency columns next to the paper's
//      measured values. The model carries domain decomposition, halo
//      surfaces, message counts and the throughput-saturation curve; it does
//      NOT model system noise/load imbalance, so its efficiencies bound the
//      paper's measurements from above.

#include <cstdio>
#include <thread>

#include "parallel/sim_comm.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "wave/acoustic_gravity.hpp"
#include "wave/stepper.hpp"

namespace {

using namespace tsunami;

/// Measured single-machine RK4 throughput (states advanced per second).
double measure_local_throughput(int threads, std::size_t* dofs_out) {
  ThreadPool::global().resize(static_cast<std::size_t>(threads));
  const Bathymetry bathy;  // synthetic Cascadia
  const HexMesh mesh(bathy, 12, 16, 3);
  AcousticGravityModel model(mesh, 2);
  Rk4Stepper stepper(model);
  Rng rng(5);
  std::vector<double> y = rng.normal_vector(model.state_dim());
  const double dt = model.cfl_timestep(0.3);
  // Warm-up (the paper discards the first ten steps).
  for (int i = 0; i < 3; ++i) stepper.step(std::span<double>(y), {}, dt);
  const int steps = 15;
  Stopwatch watch;
  for (int i = 0; i < steps; ++i) stepper.step(std::span<double>(y), {}, dt);
  const double per_step = watch.seconds() / steps;
  *dofs_out = model.state_dim();
  // 8 kernel passes per step (4 stages x 2 kernels).
  return 8.0 * static_cast<double>(model.state_dim()) / per_step;
}

void print_curve(const char* title, const std::vector<std::size_t>& ranks,
                 const std::vector<StepCost>& curve,
                 const std::vector<double>& paper_eff) {
  TextTable t({"GPUs", "runtime/step [s]", "compute [s]", "comm [s]",
               "model efficiency", "paper efficiency"});
  for (std::size_t i = 0; i < curve.size(); ++i) {
    t.row()
        .cell(static_cast<long>(ranks[i]))
        .cell(curve[i].total_s, 4)
        .cell(curve[i].compute_s, 4)
        .cell(curve[i].comm_s, 5)
        .cell(curve[i].efficiency, 3)
        .cell(i < paper_eff.size() && paper_eff[i] > 0
                  ? std::to_string(paper_eff[i]).substr(0, 4)
                  : std::string("-"));
  }
  std::printf("%s\n%s\n", title, t.str().c_str());
}

}  // namespace

int main() {
  std::printf("=== Part 1: measured thread-pool scaling on this machine ===\n");
  std::size_t dofs = 0;
  const int max_threads =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  (void)measure_local_throughput(max_threads, &dofs);  // cold-start warm-up
  // Interleaved best-of-3 per thread count: containers/VMs schedule single
  // threads erratically, so one-shot timings can be wildly off.
  double t1 = 0.0, tn = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    t1 = std::max(t1, measure_local_throughput(1, &dofs));
    tn = std::max(tn, measure_local_throughput(max_threads, &dofs));
  }
  const double eff = tn / (t1 * max_threads);
  std::printf("mesh states: %zu\n", dofs);
  std::printf("1 thread : %.1f MDOF/s (kernel passes)\n", t1 * 1e-6);
  std::printf("%d threads: %.1f MDOF/s  -> parallel efficiency %.2f%s\n\n",
              max_threads, tn * 1e-6, eff,
              eff > 1.05 ? "  (>1: container scheduling/turbo artifact; "
                           "treat as ~1.0)"
                         : "");

  // Calibration sanity: the local profile must predict the measured
  // single-rank step time within a small factor.
  {
    const auto profile = MachineProfile::local_cpu(tn);
    const ScalingSimulator sim(profile, 256.0, 200.0);
    const auto cost = sim.timestep({12, 16, 3}, 1);
    std::printf("model-vs-measured single-rank check: model %.4f s/step "
                "(calibrated from measurement by construction)\n\n",
                cost.total_s);
  }

  std::printf("=== Part 2: projected full-machine scaling "
              "(Table II configurations) ===\n\n");
  // 256 state DOF per hex at order 4 (matches the paper: 55.5e12 DOF /
  // 216.8e9 elements); ~200 B pressure-trace halo per shared face.
  const double dofs_per_cell = 256.0;
  const double bytes_per_face = 200.0;

  {
    // El Capitan weak scaling: ~4.98M elements/GPU, 340 -> 43,520 GPUs.
    const ScalingSimulator sim(MachineProfile::el_capitan(), dofs_per_cell,
                               bytes_per_face);
    const std::vector<std::size_t> ranks{340, 680, 1360, 2720, 5440,
                                         10880, 21760, 43520};
    const auto curve = sim.weak_scaling({171, 171, 170}, ranks);
    print_curve("El Capitan weak scaling (paper Fig. 5 left)", ranks, curve,
                {1.00, 0.99, 0.97, 0.96, 0.95, 0.94, 0.93, 0.92});
  }
  {
    // El Capitan strong scaling: 434 B DOF = 1.7 B elements fixed.
    const ScalingSimulator sim(MachineProfile::el_capitan(), dofs_per_cell,
                               bytes_per_face);
    const std::vector<std::size_t> ranks{340, 680, 1360, 2720, 5440,
                                         10880, 21760, 43520};
    const auto curve = sim.strong_scaling({1360, 1360, 916}, ranks);
    print_curve("El Capitan strong scaling (paper: 100.9x speedup at 128x)",
                ranks, curve,
                {1.00, 0.97, 0.93, 0.93, 0.94, 0.89, 0.86, 0.79});
  }
  {
    // Alps weak scaling: 3.93M elements/GPU, 144 -> 9,216 GPUs.
    const ScalingSimulator sim(MachineProfile::alps(), dofs_per_cell,
                               bytes_per_face);
    const std::vector<std::size_t> ranks{144, 576, 2304, 9216};
    const auto curve = sim.weak_scaling({158, 158, 158}, ranks);
    print_curve("Alps weak scaling (paper: 99% at 64x)", ranks, curve,
                {1.00, 1.00, 0.99, 0.99});
  }
  {
    // Perlmutter strong scaling: 75.7 B DOF, 188 -> 6,016 GPUs.
    const ScalingSimulator sim(MachineProfile::perlmutter(), dofs_per_cell,
                               bytes_per_face);
    const std::vector<std::size_t> ranks{188, 376, 752, 1504, 3008, 6016};
    const auto curve = sim.strong_scaling({768, 768, 501}, ranks);
    print_curve("Perlmutter strong scaling (paper: 29.5x speedup at 32x)",
                ranks, curve, {1.00, 1.00, 0.99, 0.99, 0.96, 0.92});
  }

  std::printf("Shape checks: weak efficiency decreases monotonically and "
              "stays >= 0.9 at full machine; strong efficiency rolls off as "
              "the per-device problem falls toward the saturation knee.\n");
  return 0;
}
