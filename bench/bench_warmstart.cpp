// Cold boot vs warm boot: what the artifact bundle buys the warning center.
//
//   cold boot  — constructor + Phases 1-3 (Nd + Nq adjoint PDE solves, form
//                and factorize K, Phase 3 products): what every run paid
//                before the offline/online split shipped.
//   save       — serialize the offline products into one bundle file.
//   warm boot  — DigitalTwin::load_offline: constructor + bundle parse +
//                operator rebuild from the shipped factor/Q. No PDE solves,
//                no factorization (the test suite asserts bit-identical
//                infer()/push() against the cold twin).
//
// The ratio grows with the config: the cold side scales with mesh x sensors
// x window (PDE solves dominate), the warm side only with the artifact
// sizes. Run:  cmake --build build --target bench_warmstart &&
//              ./build/bench/bench_warmstart

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/digital_twin.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace tsunami;

  struct Case {
    const char* name;
    TwinConfig config;
  };
  TwinConfig tiny = TwinConfig::tiny();
  TwinConfig wide = TwinConfig::tiny();
  wide.num_sensors = 10;
  wide.num_intervals = 24;
  wide.observation_dt = 3.0;
  // A mesh-heavier case: doubles the PDE cost per adjoint solve (the cold
  // side) while the artifact sizes (the warm side) stay observation-bound —
  // the ratio grows with exactly the knobs the paper turns up.
  TwinConfig deep = TwinConfig::tiny();
  deep.mesh_nx = 9;
  deep.mesh_ny = 12;
  deep.mesh_nz = 3;
  deep.num_sensors = 8;
  deep.num_intervals = 16;
  const Case cases[] = {{"tiny (tests)", tiny},
                        {"tiny, 10 sensors x 24 ticks", wide},
                        {"9x12x3 mesh, 8 sensors x 16 ticks", deep}};

  const std::string path =
      (std::filesystem::temp_directory_path() / "tsunami_warmstart.bundle")
          .string();

  std::printf("=== Cold boot vs warm boot (offline/online split) ===\n\n");
  TextTable table({"config", "data dim", "cold boot", "save", "bundle MB",
                   "warm boot", "cold/warm"});
  for (const Case& c : cases) {
    // Cold: constructor + all offline phases. The noise level only scales
    // K's diagonal; a fixed floor keeps the benchmark free of forward-model
    // synthesis inside the timed region.
    Stopwatch cold_watch;
    DigitalTwin cold(c.config);
    cold.run_offline(NoiseModel{1e-2});
    const double cold_seconds = cold_watch.seconds();

    Stopwatch save_watch;
    cold.save_offline(path);
    const double save_seconds = save_watch.seconds();
    const double bundle_mb =
        static_cast<double>(std::filesystem::file_size(path)) / 1e6;

    Stopwatch warm_watch;
    const DigitalTwin warm = DigitalTwin::load_offline(path);
    const double warm_seconds = warm_watch.seconds();

    // Keep the benchmark honest: the warm twin must actually be online.
    if (!warm.online_ready() || warm.data_dim() != cold.data_dim()) {
      std::printf("FAILED: warm twin not equivalent to cold twin\n");
      return 1;
    }

    table.row()
        .cell(c.name)
        .cell(static_cast<double>(cold.data_dim()), 0)
        .cell(format_duration(cold_seconds))
        .cell(format_duration(save_seconds))
        .cell(bundle_mb, 3)
        .cell(format_duration(warm_seconds))
        .cell(cold_seconds / warm_seconds, 1);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "warm boot = parse + rebuild from shipped factor/Q: no PDE solves, no "
      "factorization — the warning center never needs the HPC system "
      "(SecVIII).\n");
  std::filesystem::remove(path);
  return 0;
}
