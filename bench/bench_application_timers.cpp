// Table I + Fig. 6 reproduction: the Cascadia application timer breakdown
// (Initialization, Setup, Adjoint p2o, I/O), with the short measured solve
// projected to the paper's O(20,000)-timestep production runs, showing that
// initialization/setup/I-O are negligible against the wave solver.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/p2o_builder.hpp"
#include "parallel/parallel_for.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "wave/adjoint.hpp"

int main() {
  using namespace tsunami;
  TimerRegistry timers;

  // --- Initialization: device/runtime bring-up (here: pool warm-up). ------
  Stopwatch init_watch;
  {
    const double sink = parallel_reduce_sum(
        1000, [](std::size_t i) { return static_cast<double>(i); });
    (void)sink;
  }
  timers.add("Initialization", init_watch.seconds());

  // --- Setup: mesh, partial assembly, parameter/observation operators. ----
  Stopwatch setup_watch;
  const Bathymetry bathy;  // synthetic Cascadia
  const HexMesh mesh(bathy, 10, 14, 3);
  AcousticGravityModel model(mesh, 2);
  const ObservationOperator sensors = ObservationOperator::seafloor_sensors(
      model, sensor_grid(6, 10e3, 90e3, 20e3, 230e3));
  timers.add("Setup", setup_watch.seconds());

  // --- Adjoint p2o: one adjoint propagation per sensor (measured over the
  //     real interval count, then projected like the paper's Fig. 6). ------
  TimeGrid grid;
  grid.num_intervals = 8;
  grid.substeps = 25;
  grid.dt = model.cfl_timestep(0.35);
  const std::size_t measured_steps = grid.num_intervals * grid.substeps;

  std::vector<Matrix> rows;
  for (std::size_t s = 0; s < sensors.num_outputs(); ++s)
    rows.push_back(adjoint_p2o_rows(model, sensors, s, grid, &timers));

  // --- I/O: write the p2o column vectors to disk (Table I's I/O row). -----
  Stopwatch io_watch;
  std::filesystem::create_directories("artifacts");
  {
    std::ofstream f("artifacts/p2o_columns.bin", std::ios::binary);
    for (const auto& r : rows)
      f.write(reinterpret_cast<const char*>(r.data()),
              static_cast<std::streamsize>(r.size() * sizeof(double)));
  }
  timers.add("I/O", io_watch.seconds());

  // --- Report: measured, then projected to 20,000 timesteps (Fig. 6). -----
  const double project = 20000.0 / static_cast<double>(measured_steps);
  std::printf("=== Table I timers (measured: %zu sensors x %zu timesteps) "
              "===\n\n",
              sensors.num_outputs(), measured_steps);

  TextTable table({"Timer", "measured", "projected (20k steps)",
                   "% of projected app"});
  const double proj_solver = timers.total("Adjoint p2o") * project;
  const double proj_io = timers.total("I/O") * project;
  const double proj_total = timers.total("Initialization") +
                            timers.total("Setup") + proj_solver + proj_io;
  auto emit = [&](const std::string& name, double measured, double projected) {
    table.row()
        .cell(name)
        .cell(format_duration(measured))
        .cell(format_duration(projected))
        .cell(100.0 * projected / proj_total, 2);
  };
  emit("Initialization", timers.total("Initialization"),
       timers.total("Initialization"));
  emit("Setup", timers.total("Setup"), timers.total("Setup"));
  emit("Adjoint p2o", timers.total("Adjoint p2o"), proj_solver);
  emit("I/O", timers.total("I/O"), proj_io);
  std::printf("%s\n", table.str().c_str());

  std::printf("Shape check (paper Fig. 6): the adjoint wave solver "
              "dominates (>95%% projected); initialization, setup and I/O "
              "are negligible-to-minor.\n");
  std::printf("solver share here: %.1f%%\n", 100.0 * proj_solver / proj_total);
  std::filesystem::remove("artifacts/p2o_columns.bin");
  return 0;
}
