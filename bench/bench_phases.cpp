// Table III reproduction: compute time for each phase of the inference and
// prediction framework, in the paper's "count x unit-time ~ total" format,
// with the online Phase 4 measured on real data.
//
// Shape expectations: Phase 1 (PDE solves) dominates the offline cost by
// orders of magnitude; Phases 2-3 are FFT-matvec bound; Phase 4 is
// milliseconds (paper: < 0.2 s at the 10^9-parameter scale).

#include <cstdio>

#include "core/digital_twin.hpp"
#include "util/table.hpp"

int main() {
  using namespace tsunami;

  TwinConfig config = TwinConfig::tiny();
  config.num_sensors = 10;
  config.num_gauges = 4;
  config.num_intervals = 16;
  DigitalTwin twin(config);
  const std::size_t nd = config.num_sensors, nq = config.num_gauges;
  const std::size_t nt = config.num_intervals;

  std::printf("=== Table III: per-phase compute time ===\n");
  std::printf("parameters: %zu | observations: %zu | QoI: %zu\n\n",
              twin.parameter_dim(), twin.data_dim(), nq * nt);

  // Synthetic event to calibrate noise and drive Phase 4.
  const RuptureConfig rcfg = margin_wide_scenario(
      config.bathymetry.length_x, config.bathymetry.length_y, 8.7, 7);
  const RuptureScenario scenario(rcfg);
  Rng rng(1);
  const SyntheticEvent event = twin.synthesize(scenario, rng);

  twin.run_offline(event.noise);
  const InversionResult result = twin.infer(event.d_obs);
  const auto& t = twin.timers();

  TextTable table({"Phase", "Task", "count x unit", "compute time"});
  auto fmt_count = [](std::size_t count, double total) {
    return std::to_string(count) + " x " + format_duration(total /
        static_cast<double>(count ? count : 1));
  };
  const double t_f = t.total("phase1: form F");
  const double t_fq = t.total("phase1: form Fq");
  table.row().cell("1").cell("form F : m -> d (adjoint PDE solves)").cell(
      fmt_count(nd, t_f)).cell(format_duration(t_f));
  table.row().cell("1").cell("form Fq : m -> q (adjoint PDE solves)").cell(
      fmt_count(nq, t_fq)).cell(format_duration(t_fq));
  const double t_k = t.total("form K");
  table.row().cell("2").cell("form K := Gn + F G* (FFT matvecs)").cell(
      fmt_count(nd * nt, t_k)).cell(format_duration(t_k));
  const double t_chol = t.total("factorize K");
  table.row().cell("2").cell("factorize K (Cholesky)").cell(
      "1 x " + format_duration(t_chol)).cell(format_duration(t_chol));
  const double t_cov = t.total("compute Gamma_post(q)");
  table.row().cell("3").cell("compute Gamma_post(q)").cell(
      fmt_count(nq * nt, t_cov)).cell(format_duration(t_cov));
  const double t_q = t.total("compute Q : d -> q");
  table.row().cell("3").cell("compute Q : d -> q").cell(
      "1 x " + format_duration(t.total("compute Q"))).cell(
      format_duration(t.total("compute Q")));
  (void)t_q;
  table.row().cell("4").cell("infer parameters m_map").cell("1 event").cell(
      format_duration(result.infer_seconds));
  table.row().cell("4").cell("predict QoI q_map").cell("1 event").cell(
      format_duration(result.predict_seconds));
  std::printf("%s\n", table.str().c_str());

  const double offline = t_f + t_fq + t_k + t_chol + t_cov +
                         t.total("compute Q");
  const double online = result.infer_seconds + result.predict_seconds;
  std::printf("offline total: %s | online total: %s | ratio %.0fx\n",
              format_duration(offline).c_str(),
              format_duration(online).c_str(), offline / online);
  std::printf("shape check (paper): Phase 1 dominates offline; online "
              "inference is real-time (paper: <0.2 s; here %s at reduced "
              "scale).\n",
              format_duration(online).c_str());
  return 0;
}
