// SecIV reproduction: why low-rank SoA methods fail for this problem.
//
// The paper argues the prior-preconditioned data-misfit Hessian has
// effective rank close to the DATA dimension (no low-rank structure),
// because wave propagation preserves information and the sensors sit on the
// boundary whose motion is being inferred. We compute the spectrum of the
// prior-preconditioned data-space misfit  Gn^{-1/2} F Gp F^T Gn^{-1/2}
// (same nonzero spectrum as the prior-preconditioned Hessian of the
// negative log likelihood) and report the effective rank / data dimension,
// plus the implied CG iteration count for the conventional method.

#include <cstdio>

#include "core/digital_twin.hpp"
#include "linalg/blas.hpp"
#include "linalg/eigen.hpp"
#include "util/table.hpp"

int main() {
  using namespace tsunami;

  TwinConfig config = TwinConfig::tiny();
  config.num_sensors = 8;
  config.num_intervals = 12;
  DigitalTwin twin(config);

  const RuptureConfig rcfg = margin_wide_scenario(
      config.bathymetry.length_x, config.bathymetry.length_y, 8.5, 5);
  Rng rng(1);
  const SyntheticEvent event =
      twin.synthesize(RuptureScenario(rcfg), rng);
  twin.run_phase1();
  twin.run_phase2(event.noise);

  // K = Gn + F Gp F^T; the misfit part is (K - sigma^2 I) / sigma^2 in the
  // prior-preconditioned sense. Its eigenvalues above 1 drive CG iteration
  // counts (SecIV).
  const Matrix& k = twin.hessian().matrix();
  const double var = event.noise.variance();
  const std::size_t n = k.rows();
  Matrix misfit(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      misfit(i, j) = (k(i, j) - (i == j ? var : 0.0)) / var;

  const auto eigs = symmetric_eigenvalues(misfit);
  const std::size_t rank_above_unity = effective_rank(
      eigs, 1.0 / std::max(eigs.front(), 1.0));  // eigenvalues >= 1
  std::size_t above_one = 0;
  for (double e : eigs)
    if (e >= 1.0) ++above_one;
  (void)rank_above_unity;

  std::printf("=== Spectrum of the prior-preconditioned misfit Hessian ===\n");
  std::printf("data dimension: %zu | parameter dimension: %zu\n\n", n,
              twin.parameter_dim());

  TextTable table({"quantity", "value"});
  table.row().cell("lambda_max").cell(eigs.front(), 1);
  table.row().cell("lambda_min").cell(eigs.back(), 3);
  table.row().cell("eigenvalues >= 1 (CG-relevant)").cell(
      static_cast<long>(above_one));
  table.row().cell("effective rank / data dim").cell(
      static_cast<double>(above_one) / static_cast<double>(n), 2);
  table.row().cell("eff. rank (1e-6 lambda_max cutoff)").cell(
      static_cast<long>(effective_rank(eigs, 1e-6)));
  std::printf("%s\n", table.str().c_str());

  // Decay profile: the paper's point is that this does NOT collapse after a
  // few modes (contrast with diffusive inverse problems).
  std::printf("spectrum decay (fraction of lambda_max):\n");
  for (double frac : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(eigs.size() - 1));
    std::printf("  lambda[%3zu] / lambda[0] = %.3e\n", idx,
                eigs[idx] / eigs.front());
  }

  std::printf("\nshape check (paper SecIV): effective rank ~ data dimension "
              "(here %.0f%%), so conventional CG needs O(data-dim) PDE-solve "
              "pairs per event -- the intractability that motivates the "
              "offline-online decomposition.\n",
              100.0 * static_cast<double>(above_one) / static_cast<double>(n));

  // --- The low-rank SoA method applied anyway -----------------------------
  // [17, 18] build a rank-k approximation with a randomized eigensolver and
  // keep it if the residual is negligible. For this operator the residual
  // stays O(1) until k ~ data dimension: "low-rank" degenerates to dense.
  std::printf("\n=== Randomized low-rank approximation (the SoA method of "
              "[17,18]) ===\n");
  const LinearOp misfit_op = [&](std::span<const double> x,
                                 std::span<double> y) {
    gemv(misfit, x, y);
  };
  TextTable lowrank({"rank k", "k / data dim", "range residual fraction"});
  for (std::size_t rank : {n / 16, n / 8, n / 4, n / 2, n - 10}) {
    if (rank == 0) continue;
    const auto approx = randomized_eigenvalues(misfit_op, n, rank, 8, 2);
    lowrank.row()
        .cell(static_cast<long>(rank))
        .cell(static_cast<double>(rank) / static_cast<double>(n), 2)
        .cell(approx.residual_fraction, 3);
  }
  std::printf("%s\n", lowrank.str().c_str());
  std::printf("shape check: the residual decays slowly with k (no spectral "
              "gap) -- truncation at k << data dim loses O(1) of the "
              "operator, unlike the diffusive inverse problems where [17,18] "
              "succeed.\n");
  return 0;
}
