#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/stats.hpp"
#include "util/timer.hpp"

namespace tsunami::benchutil {

bool quick_mode() {
  const char* v = std::getenv("TSUNAMI_BENCH_QUICK");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

int reps(int full_reps) { return quick_mode() ? 1 : full_reps; }

Stat time_reps(int n, const std::function<void()>& fn) {
  if (n < 1) n = 1;
  if (n > 1) fn();  // warmup: first-touch allocation, icache, page faults
  std::vector<double> seconds(static_cast<std::size_t>(n));
  for (auto& s : seconds) {
    Stopwatch w;
    fn();
    s = w.seconds();
  }
  return from_seconds(seconds);
}

Stat from_seconds(const std::vector<double>& seconds) {
  Stat st;
  st.reps = static_cast<int>(seconds.size());
  if (seconds.empty()) return st;
  st.median_ns = percentile(seconds, 50.0) * 1e9;
  st.p10_ns = percentile(seconds, 10.0) * 1e9;
  st.p90_ns = percentile(seconds, 90.0) * 1e9;
  return st;
}

JsonReport::JsonReport(std::string bench_name) : name_(std::move(bench_name)) {}

JsonReport::~JsonReport() {
  if (!written_) write();
}

void JsonReport::add(const std::string& case_name,
                     const std::vector<std::pair<std::string, double>>& shape,
                     const Stat& stat) {
  cases_.push_back(Case{case_name, shape, stat});
}

void JsonReport::note(const std::string& key, double value) {
  notes_.emplace_back(key, value);
}

namespace {

// %.17g round-trips doubles exactly and stays valid JSON (no NaN/Inf are
// ever recorded by the benchmarks).
void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string JsonReport::write() {
  written_ = true;
  std::string out = "{\n  \"bench\": \"" + name_ + "\",\n  \"quick\": ";
  out += quick_mode() ? "true" : "false";
  out += ",\n  \"cases\": [";
  for (std::size_t i = 0; i < cases_.size(); ++i) {
    const Case& c = cases_[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": \"" + c.name + "\", \"shape\": {";
    for (std::size_t j = 0; j < c.shape.size(); ++j) {
      if (j) out += ", ";
      out += "\"" + c.shape[j].first + "\": ";
      append_number(out, c.shape[j].second);
    }
    out += "}, \"reps\": ";
    append_number(out, c.stat.reps);
    out += ", \"median_ns\": ";
    append_number(out, c.stat.median_ns);
    out += ", \"p10_ns\": ";
    append_number(out, c.stat.p10_ns);
    out += ", \"p90_ns\": ";
    append_number(out, c.stat.p90_ns);
    out += "}";
  }
  out += "\n  ],\n  \"notes\": {";
  for (std::size_t i = 0; i < notes_.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + notes_[i].first + "\": ";
    append_number(out, notes_[i].second);
  }
  out += "}\n}\n";

  const std::string file = "BENCH_" + name_ + ".json";
  if (std::FILE* f = std::fopen(file.c_str(), "w")) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("[bench_util] wrote %s (%zu cases)\n", file.c_str(),
                cases_.size());
  } else {
    std::fprintf(stderr, "[bench_util] could not write %s\n", file.c_str());
  }
  return file;
}

}  // namespace tsunami::benchutil
