#include "bench_util.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>

#include "parallel/thread_pool.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace tsunami::benchutil {

bool quick_mode() {
  const char* v = std::getenv("TSUNAMI_BENCH_QUICK");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

int reps(int full_reps) { return quick_mode() ? 1 : full_reps; }

Stat time_reps(int n, const std::function<void()>& fn) {
  if (n < 1) n = 1;
  if (n > 1) fn();  // warmup: first-touch allocation, icache, page faults
  std::vector<double> seconds(static_cast<std::size_t>(n));
  for (auto& s : seconds) {
    Stopwatch w;
    fn();
    s = w.seconds();
  }
  return from_seconds(seconds);
}

Stat from_seconds(const std::vector<double>& seconds) {
  Stat st;
  st.reps = static_cast<int>(seconds.size());
  if (seconds.empty()) return st;
  st.median_ns = percentile(seconds, 50.0) * 1e9;
  st.p10_ns = percentile(seconds, 10.0) * 1e9;
  st.p90_ns = percentile(seconds, 90.0) * 1e9;
  return st;
}

JsonReport::JsonReport(std::string bench_name) : name_(std::move(bench_name)) {}

JsonReport::~JsonReport() {
  if (!written_) write();
}

void JsonReport::add(const std::string& case_name,
                     const std::vector<std::pair<std::string, double>>& shape,
                     const Stat& stat) {
  cases_.push_back(Case{case_name, shape, stat});
}

void JsonReport::note(const std::string& key, double value) {
  notes_.emplace_back(key, value);
}

namespace {

// %.17g round-trips doubles exactly and stays valid JSON (no NaN/Inf are
// ever recorded by the benchmarks).
void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Commit being benchmarked: TSUNAMI_GIT_SHA, then CI's GITHUB_SHA, then
/// asking git itself; "unknown" outside a checkout.
std::string git_sha() {
  for (const char* var : {"TSUNAMI_GIT_SHA", "GITHUB_SHA"}) {
    const char* v = std::getenv(var);
    if (v != nullptr && *v != '\0') return v;
  }
  std::string sha;
  if (std::FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) sha = buf;
    ::pclose(p);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
    sha.pop_back();
  for (const char c : sha) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return "unknown";
  }
  return sha.empty() ? "unknown" : sha;
}

std::string utc_timestamp() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// The "meta" block that makes BENCH_*.json artifacts comparable across CI
/// runs: which commit, which machine width, which thread setting, when.
std::string meta_json() {
  std::string out = "{\"git_sha\": \"" + git_sha() + "\"";
  out += ", \"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency());
  out += ", \"tsunami_num_threads\": " +
         std::to_string(ThreadPool::default_threads());
  out += ", \"timestamp\": \"" + utc_timestamp() + "\"}";
  return out;
}

}  // namespace

std::string JsonReport::write() {
  written_ = true;
  std::string out = "{\n  \"bench\": \"" + name_ + "\",\n  \"quick\": ";
  out += quick_mode() ? "true" : "false";
  out += ",\n  \"meta\": " + meta_json();
  out += ",\n  \"cases\": [";
  for (std::size_t i = 0; i < cases_.size(); ++i) {
    const Case& c = cases_[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"name\": \"" + c.name + "\", \"shape\": {";
    for (std::size_t j = 0; j < c.shape.size(); ++j) {
      if (j) out += ", ";
      out += "\"" + c.shape[j].first + "\": ";
      append_number(out, c.shape[j].second);
    }
    out += "}, \"reps\": ";
    append_number(out, c.stat.reps);
    out += ", \"median_ns\": ";
    append_number(out, c.stat.median_ns);
    out += ", \"p10_ns\": ";
    append_number(out, c.stat.p10_ns);
    out += ", \"p90_ns\": ";
    append_number(out, c.stat.p90_ns);
    out += "}";
  }
  out += "\n  ],\n  \"notes\": {";
  for (std::size_t i = 0; i < notes_.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + notes_[i].first + "\": ";
    append_number(out, notes_[i].second);
  }
  out += "}\n}\n";

  const std::string file = "BENCH_" + name_ + ".json";
  if (std::FILE* f = std::fopen(file.c_str(), "w")) {
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("[bench_util] wrote %s (%zu cases)\n", file.c_str(),
                cases_.size());
  } else {
    std::fprintf(stderr, "[bench_util] could not write %s\n", file.c_str());
  }
  return file;
}

}  // namespace tsunami::benchutil
