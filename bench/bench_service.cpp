// Load test of the multi-event warning service: N synthetic events replayed
// CONCURRENTLY against one WarningService (shared engine, worker pool,
// per-event ingest queues) versus the single-threaded baseline that replays
// the same N events through the same StreamingEngine one after another in
// one thread (the inner loop of ScenarioBank::run_streaming(serial), minus
// reporting).
//
// For each N in {1, 8, 64, 256} the table reports wall time, aggregate
// assimilated ticks/sec, the service/serial speedup, and the service's
// p50/p95/p99/max push-latency telemetry. The per-push work is identical on
// both sides (same slabs, same prefix-Cholesky extension), so the speedup
// isolates the serving layer: queueing overhead at the bottom, worker-pool
// scaling at the top. Expect speedup ~= min(workers, cores) for N >> workers
// on a multi-core box — the sessions share immutable slabs and never
// contend — and ~1x on a single-core machine (the pool can't create
// parallelism the hardware doesn't have; the printed thread/core counts
// qualify the numbers). Event data synthesis: one PDE forward solve, then
// per-event re-noising — the service sees N distinct data streams without
// N PDE solves.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "service/engine_cache.hpp"
#include "service/warning_service.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace tsunami;
  namespace bu = tsunami::benchutil;

  TwinConfig config = TwinConfig::tiny();
  config.num_sensors = 8;
  config.num_gauges = 3;
  config.num_intervals = 32;
  config.observation_dt = 2.0;
  auto twin = std::make_shared<DigitalTwin>(config);

  RuptureConfig rc;
  Asperity a;
  a.x0 = 0.3 * twin->mesh().length_x();
  a.y0 = 0.5 * twin->mesh().length_y();
  a.rx = 16e3;
  a.ry = 24e3;
  a.peak_uplift = 2.2;
  rc.asperities.push_back(a);
  rc.hypocenter_x = a.x0;
  rc.hypocenter_y = a.y0;
  Rng rng(9);
  const SyntheticEvent event = twin->synthesize(RuptureScenario(rc), rng);
  twin->run_offline(event.noise);

  EngineCache cache({.track_map = false});  // forecast-only serving
  const auto engine = cache.adopt(std::move(twin));
  const std::size_t nt = engine->engine().num_ticks();
  const std::size_t nd = engine->engine().block_size();

  const std::size_t workers =
      std::max<std::size_t>(4, std::thread::hardware_concurrency());
  std::printf("=== Warning service load test ===\n");
  std::printf(
      "network: %zu sensors x %zu ticks | engine slabs shared by every "
      "session | %zu workers on %u hardware threads\n\n",
      nd, nt, workers, std::thread::hardware_concurrency());

  const std::size_t kMaxEvents = 256;
  std::vector<std::vector<double>> obs;
  obs.reserve(kMaxEvents);
  for (std::size_t e = 0; e < kMaxEvents; ++e) {
    obs.push_back(event.d_true);
    Rng noise(1000 + static_cast<unsigned>(e));
    for (auto& v : obs.back()) v += event.noise.sigma * noise.normal();
  }
  const auto block = [&](std::size_t e, std::size_t t) {
    return std::span<const double>(obs[e]).subspan(t * nd, nd);
  };

  TextTable table({"events", "serial", "service", "speedup", "ticks/s",
                   "p50", "p95", "p99", "max"});
  bu::JsonReport report("service");
  report.note("workers", static_cast<double>(workers));
  report.note("hardware_threads",
              static_cast<double>(std::thread::hardware_concurrency()));
  double speedup_at_64 = 0.0;
  // Quick (CI smoke) mode trims the sweep: the point is to execute the
  // serving path once, not to load-test a shared runner.
  const std::vector<std::size_t> event_counts =
      bu::quick_mode() ? std::vector<std::size_t>{1, 8}
                       : std::vector<std::size_t>{1, 8, 64, 256};
  for (const std::size_t n : event_counts) {
    // Single-threaded baseline: same events, same engine, one thread.
    Stopwatch serial_watch;
    for (std::size_t e = 0; e < n; ++e) {
      StreamingAssimilator assim = engine->engine().start();
      for (std::size_t t = 0; t < nt; ++t) assim.push(t, block(e, t));
    }
    const double serial_s = serial_watch.seconds();

    // Concurrent replay: one producer feeding round-robin (ticks arrive
    // across all live events each cadence interval, like a real feed), the
    // worker pool draining.
    WarningService service(
        {.num_workers = workers, .max_pending_per_event = nt});
    std::vector<EventId> ids;
    ids.reserve(n);
    Stopwatch service_watch;
    for (std::size_t e = 0; e < n; ++e)
      ids.push_back(service.open_event(engine));
    for (std::size_t t = 0; t < nt; ++t)
      for (std::size_t e = 0; e < n; ++e) service.submit(ids[e], t, block(e, t));
    service.drain();
    const double service_s = service_watch.seconds();
    const TelemetrySnapshot telem = service.telemetry();
    for (const EventId id : ids) (void)service.close_event(id);

    const double total_ticks = static_cast<double>(n * nt);
    const double speedup = serial_s / service_s;
    if (n == 64) speedup_at_64 = speedup;
    table.row()
        .cell(static_cast<long>(n))
        .cell(format_duration(serial_s))
        .cell(format_duration(service_s))
        .cell(speedup, 2)
        .cell(total_ticks / service_s, 0)
        .cell(format_duration(telem.push_latency.p50))
        .cell(format_duration(telem.push_latency.p95))
        .cell(format_duration(telem.push_latency.p99))
        .cell(format_duration(telem.push_latency.max));
    // Wall time per replay (reps=1: one concurrent replay per N) plus the
    // telemetry tails as shape entries — p95 is the ISSUE's tracked number.
    report.add("concurrent_replay",
               {{"events", static_cast<double>(n)},
                {"ticks_per_event", static_cast<double>(nt)},
                {"push_p50_ns", telem.push_latency.p50 * 1e9},
                {"push_p95_ns", telem.push_latency.p95 * 1e9},
                {"push_p99_ns", telem.push_latency.p99 * 1e9},
                // SLO: time from open_event to first published forecast,
                // one sample per event in this replay.
                {"ttff_p50_ns",
                 telem.time_to_first_forecast.percentile(50.0) * 1e9},
                {"ttff_p95_ns",
                 telem.time_to_first_forecast.percentile(95.0) * 1e9},
                {"serial_wall_ns", serial_s * 1e9}},
               bu::Stat{service_s * 1e9, service_s * 1e9, service_s * 1e9, 1});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "speedup at 64 concurrent events: %.2fx with %zu workers on %u "
      "hardware threads (sessions share one engine; scaling is bounded by "
      "min(workers, cores))\n",
      speedup_at_64, workers, std::thread::hardware_concurrency());
  report.note("speedup_at_64", speedup_at_64);
  report.write();
  return 0;
}
