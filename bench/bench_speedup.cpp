// SecVII-C reproduction: the three speedup claims, measured end to end on
// the same reduced-scale problem.
//
//   1. FFT-based Hessian matvec vs the conventional forward+adjoint PDE
//      pair (paper: 0.024 s vs 104 min = 260,000x).
//   2. Online Phase 4 inversion vs the SoA prior-preconditioned CG with
//      PDE solves per iteration (paper: <0.2 s vs 50 years = 10^10x).
//   3. PDE-solve count: offline Nd+Nq adjoint solves, once, vs
//      2 x iterations per event for the baseline (paper: ~810x fewer).
//
// Absolute factors scale with problem size (ours is ~10^5 smaller); the
// SHAPE — FFT matvec >> PDE matvec, online >> baseline — is the claim.

#include <cstdio>

#include "core/baseline_cg.hpp"
#include "core/digital_twin.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace tsunami;

  TwinConfig config = TwinConfig::tiny();
  // Keep the data dimension small: the prior-preconditioned Hessian is
  // I + rank-(Nd Nt), so baseline CG needs ~Nd*Nt iterations (2 PDE solves
  // each) — exactly the paper's intractability, which we must be able to
  // afford once here.
  config.num_sensors = 4;
  config.num_intervals = 8;
  DigitalTwin twin(config);

  const RuptureConfig rcfg = margin_wide_scenario(
      config.bathymetry.length_x, config.bathymetry.length_y, 8.5, 3);
  const RuptureScenario scenario(rcfg);
  Rng rng(1);
  const SyntheticEvent event = twin.synthesize(scenario, rng);
  twin.run_offline(event.noise);

  const auto& grid = twin.time_grid();
  const auto& f = *twin.p2o().toeplitz;
  std::printf("=== SecVII-C speedups at reduced scale ===\n");
  std::printf("parameters %zu | data %zu | timesteps/solve %zu\n\n",
              twin.parameter_dim(), twin.data_dim(),
              grid.num_intervals * grid.substeps);

  // --- 1. Hessian matvec: FFT vs PDE pair --------------------------------
  Rng rng2(2);
  const auto v = rng2.normal_vector(twin.parameter_dim());
  std::vector<double> fv(twin.data_dim()), ftfv(twin.parameter_dim());

  Stopwatch pde_watch;
  forward_p2o_apply(twin.model(), twin.sensors(), grid, v,
                    std::span<double>(fv));
  adjoint_p2o_transpose_apply(twin.model(), twin.sensors(), grid, fv,
                              std::span<double>(ftfv));
  const double t_pde_pair = pde_watch.seconds();

  Stopwatch fft_watch;
  const int reps = 20;
  for (int i = 0; i < reps; ++i) {
    f.apply(v, std::span<double>(fv));
    f.apply_transpose(fv, std::span<double>(ftfv));
  }
  const double t_fft_pair = fft_watch.seconds() / reps;

  // --- 2. Online inversion vs baseline CG --------------------------------
  const InversionResult online = twin.infer(event.d_obs);
  const double t_online = online.infer_seconds + online.predict_seconds;

  BaselineOptions opts;
  opts.max_iterations = 80;
  opts.relative_tolerance = 1e-8;
  const BaselineResult baseline =
      baseline_cg_solve(twin.model(), twin.sensors(), grid, twin.prior(),
                        event.noise, event.d_obs, opts);

  // Agreement check: both must find the same MAP point.
  const double map_err =
      DigitalTwin::relative_error(baseline.m_map, online.m_map);

  // --- 3. PDE-solve accounting --------------------------------------------
  const std::size_t phase1_solves =
      config.num_sensors + config.num_gauges;  // one-time
  const std::size_t baseline_solves = baseline.pde_solves;  // per event

  TextTable table({"Comparison", "conventional", "this framework",
                   "speedup", "paper"});
  table.row()
      .cell("Hessian matvec (pair)")
      .cell(format_duration(t_pde_pair))
      .cell(format_duration(t_fft_pair))
      .cell(t_pde_pair / t_fft_pair, 0)
      .cell("260,000x");
  table.row()
      .cell("solve one event (MAP+QoI)")
      .cell(format_duration(baseline.seconds))
      .cell(format_duration(t_online))
      .cell(baseline.seconds / t_online, 0)
      .cell("10^10x");
  table.row()
      .cell("PDE solves (per event vs once)")
      .cell(std::to_string(baseline_solves))
      .cell(std::to_string(phase1_solves) + " (offline, once)")
      .cell(static_cast<double>(baseline_solves) /
                static_cast<double>(phase1_solves),
            1)
      .cell("~810x");
  std::printf("%s\n", table.str().c_str());

  std::printf("baseline CG: %zu iterations, converged=%d, "
              "MAP agreement with the exact online solve: rel. err %.2e\n",
              baseline.cg_iterations, baseline.converged ? 1 : 0, map_err);
  std::printf("\nshape check: both speedup rows must be >> 1 and grow with "
              "problem size (the paper's factors arise at 10^9 parameters "
              "on GPUs).\n");
  return 0;
}
