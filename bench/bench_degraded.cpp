// Degraded-mode economics: what does losing a sensor cost, and what does
// the low-rank machinery save?
//
//   rank-1 pair           — DenseCholesky::rank_update + rank_downdate on
//                           the demo-scale factor: the primitive the dead-
//                           channel projection and decouple_channels pay,
//                           O(n^2) per rank.
//   rank-r pair           — rank_update_many/rank_downdate_many at r = 2..8
//                           (a multi-channel outage), O(r n^2).
//   refactorize           — DenseCholesky construction from scratch, O(n^3/3):
//                           what every factor-touching alternative pays. The
//                           ISSUE acceptance bar: the downdate path must be
//                           >= 10x faster at demo scale (note
//                           downdate_vs_refactor_speedup).
//   drop/restore cycle    — StreamingAssimilator::drop_sensor + restore on a
//                           half-streamed event: the ONLINE cost of a sensor
//                           dying mid-event (projection rebuild, no factor
//                           mutation at all).
//   reduced() precompute  — StreamingEngine::reduced(mask): the from-scratch
//                           alternative's setup alone (decoupled factor +
//                           slab re-solve), before it even replays the
//                           event's backlog.
//
// Plus the operational curve: forecast error vs channels lost, quantifying
// how gracefully the posterior widens as the network dies (notes
// qoi_err_lost_<k>).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/digital_twin.hpp"
#include "linalg/dense_cholesky.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace tsunami;
  namespace bu = tsunami::benchutil;

  TwinConfig config = TwinConfig::tiny();
  config.num_sensors = 8;
  config.num_gauges = 3;
  config.num_intervals = 48;  // demo scale: n = 384 data dimensions
  config.observation_dt = 2.0;
  DigitalTwin twin(config);

  RuptureConfig rc;
  Asperity a;
  a.x0 = 0.3 * twin.mesh().length_x();
  a.y0 = 0.5 * twin.mesh().length_y();
  a.rx = 16e3;
  a.ry = 24e3;
  a.peak_uplift = 2.2;
  rc.asperities.push_back(a);
  rc.hypocenter_x = a.x0;
  rc.hypocenter_y = a.y0;
  Rng rng(11);
  const SyntheticEvent event = twin.synthesize(RuptureScenario(rc), rng);
  twin.run_offline(event.noise);
  const StreamingEngine engine = twin.make_streaming({.track_map = true});

  const std::size_t nt = engine.num_ticks();
  const std::size_t nd = engine.block_size();
  const std::size_t n = engine.data_dim();
  std::printf("=== Degraded-mode inference: downdates vs refactorization ===\n");
  std::printf("data dim %zu (%zu sensors x %zu ticks)\n\n", n, nd, nt);

  bu::JsonReport report("degraded");
  const Matrix& k_full = twin.hessian().matrix();

  // --- factor-level primitives -------------------------------------------
  const int reps = bu::reps(25);
  DenseCholesky chol(k_full);
  std::vector<double> u(n), u_work(n);
  Rng urng(12);
  for (auto& v : u) v = 0.05 * urng.normal();

  // Update-then-downdate of the same u: an exact round trip, so the factor
  // the next repetition sees is the same matrix (no SPD drift), and the
  // timed work is exactly two rank-1 sweeps.
  const bu::Stat pair1 = bu::time_reps(reps, [&] {
    std::copy(u.begin(), u.end(), u_work.begin());
    chol.rank_update(u_work);
    std::copy(u.begin(), u.end(), u_work.begin());
    chol.rank_downdate(u_work);
  });
  report.add("rank1_update_downdate_pair", {{"n", static_cast<double>(n)}},
             pair1);

  for (const std::size_t r : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    Matrix u_cols(n, r);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < r; ++j) u_cols(i, j) = 0.05 * urng.normal();
    const bu::Stat pair_r = bu::time_reps(bu::reps(10), [&] {
      chol.rank_update_many(u_cols);
      chol.rank_downdate_many(u_cols);
    });
    report.add("rankr_update_downdate_pair",
               {{"n", static_cast<double>(n)}, {"r", static_cast<double>(r)}},
               pair_r);
  }

  const bu::Stat refactor = bu::time_reps(bu::reps(10), [&] {
    DenseCholesky fresh(k_full);
    (void)fresh;
  });
  report.add("refactorize", {{"n", static_cast<double>(n)}}, refactor);

  // The acceptance ratio: one rank-1 DOWNDATE (half the measured pair)
  // against a from-scratch factorization.
  const double downdate_ns = 0.5 * pair1.median_ns;
  const double speedup = refactor.median_ns / downdate_ns;
  report.note("downdate_vs_refactor_speedup", speedup);

  // --- streaming-level: sensor death mid-event ---------------------------
  const auto block = [&](std::size_t t) {
    return std::span<const double>(event.d_obs).subspan(t * nd, nd);
  };
  StreamingAssimilator assim = engine.start();
  for (std::size_t t = 0; t < nt / 2; ++t) assim.push(t, block(t));

  const bu::Stat cycle = bu::time_reps(reps, [&] {
    assim.drop_sensor(1);
    assim.restore_sensor(1);
  });
  report.add("drop_restore_cycle_mid_stream",
             {{"n", static_cast<double>(n)},
              {"ticks_streamed", static_cast<double>(nt / 2)}},
             cycle);

  SensorMask mask(nd);
  mask.drop(1);
  const bu::Stat reduced_setup = bu::time_reps(bu::reps(5), [&] {
    const StreamingEngine red = engine.reduced(mask);
    (void)red;
  });
  report.add("reduced_engine_precompute", {{"n", static_cast<double>(n)}},
             reduced_setup);
  // The from-scratch alternative ALSO replays the half-event backlog after
  // its precompute; this ratio is therefore a lower bound on the true win.
  report.note("drop_vs_reduced_precompute_speedup",
              reduced_setup.median_ns / (0.5 * cycle.median_ns));

  // --- operational curve: forecast error vs channels lost ----------------
  // Two views: divergence from the full-network posterior mean (starts at 0,
  // grows as channels die — the graceful-degradation curve proper) and raw
  // error vs the true QoI (noisy at this scale, but shows the forecast
  // collapsing toward the prior once almost everything is dark).
  TextTable table(
      {"channels lost", "vs healthy", "vs truth", "mean stddev"});
  std::vector<double> healthy_mean;
  for (std::size_t lost = 0; lost < nd; ++lost) {
    StreamingAssimilator degraded = engine.start();
    for (std::size_t s = 0; s < lost; ++s) degraded.drop_sensor(s);
    for (std::size_t t = 0; t < nt; ++t) degraded.push(t, block(t));
    const Forecast fc = degraded.forecast();
    if (lost == 0) healthy_mean = fc.mean;
    const double div = DigitalTwin::relative_error(fc.mean, healthy_mean);
    const double err = DigitalTwin::relative_error(fc.mean, event.q_true);
    double sd = 0.0;
    for (const double v : fc.stddev) sd += v;
    sd /= static_cast<double>(fc.stddev.size());
    table.row()
        .cell(std::to_string(lost) + "/" + std::to_string(nd))
        .cell(div, 4)
        .cell(err, 4)
        .cell(sd, 5);
    report.note("divergence_from_healthy_lost_" + std::to_string(lost), div);
    report.note("qoi_err_lost_" + std::to_string(lost), err);
    report.note("mean_stddev_lost_" + std::to_string(lost), sd);
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "rank-1 update+downdate pair %s | refactorize %s | one downdate "
      "~%.1fx faster than refactorization\n",
      format_duration(pair1.median_ns * 1e-9).c_str(),
      format_duration(refactor.median_ns * 1e-9).c_str(), speedup);
  std::printf(
      "drop+restore cycle mid-stream %s | reduced-engine precompute %s\n",
      format_duration(cycle.median_ns * 1e-9).c_str(),
      format_duration(reduced_setup.median_ns * 1e-9).c_str());
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
