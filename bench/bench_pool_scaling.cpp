// Scaling study of the work-stealing thread pool and the cross-event
// batched apply path. Three sweeps:
//
//   1. compute:   a pure-flops parallel_reduce (no memory traffic to
//                 saturate) across worker counts — the pool's raw scaling
//                 ceiling on this machine;
//   2. apply_many: the multi-RHS FFT Toeplitz apply (the twin's hot kernel)
//                 across worker counts — scaling with real bandwidth limits;
//   3. push_many: K tick-aligned streaming pushes fused into one multi-RHS
//                 sweep versus K independent serial pushes, K in {1, 4, 16}
//                 — the cross-event batching win, which is an ALGORITHMIC
//                 reuse of the slab sweep and pays off even on one core.
//
// Worker counts are swept by resizing the process-global pool in place
// (ThreadPool::global().resize) — exactly what TSUNAMI_NUM_THREADS does at
// startup. BENCH_pool_scaling.json notes the measured speedup at 4 workers
// and the hardware thread count: on core-limited CI runners the speedup is
// honestly ~1x and the core count is the context a reader needs.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/digital_twin.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "toeplitz/block_toeplitz.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main() {
  using namespace tsunami;
  namespace bu = tsunami::benchutil;

  const bool quick = bu::quick_mode();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> workers = {1, 2, 4};
  if (hw > 4) workers.push_back(hw);

  bu::JsonReport report("pool_scaling");
  report.note("hardware_threads", static_cast<double>(hw));

  std::printf("=== Thread pool scaling ===\n");
  std::printf("hardware threads: %u (speedups are core-limited above this)\n\n",
              hw);

  // ---- 1. pure-compute parallel_reduce ----------------------------------
  const std::size_t kItems = quick ? (1u << 16) : (1u << 20);
  const auto compute = [&] {
    volatile double sink = parallel_reduce_sum(kItems, [](std::size_t i) {
      double x = 1.0 + 1e-9 * static_cast<double>(i);
      for (int k = 0; k < 32; ++k) x = x * x - x + 0.25;
      return x;
    });
    (void)sink;
  };

  double compute_t1 = 0.0, compute_t4 = 0.0;
  std::printf("%-28s %8s %12s %10s\n", "case", "workers", "median", "speedup");
  for (const std::size_t w : workers) {
    ThreadPool::global().resize(w);
    const bu::Stat s = bu::time_reps(bu::reps(10), compute);
    if (w == 1) compute_t1 = s.median_ns;
    if (w == 4) compute_t4 = s.median_ns;
    const double speedup = compute_t1 > 0.0 ? compute_t1 / s.median_ns : 1.0;
    std::printf("%-28s %8zu %10.2f ms %9.2fx\n", "compute_reduce", w,
                s.median_ns * 1e-6, speedup);
    report.add("compute_reduce",
               {{"workers", static_cast<double>(w)},
                {"items", static_cast<double>(kItems)}},
               s);
  }
  if (compute_t4 > 0.0)
    report.note("speedup_at_4_workers", compute_t1 / compute_t4);

  // ---- 2. multi-RHS Toeplitz apply --------------------------------------
  const std::size_t rows = 8, cols = 8, nt = quick ? 32 : 128, nrhs = 16;
  Rng rng(11);
  BlockToeplitz toep(rows, cols, nt, rng.normal_vector(rows * cols * nt));
  Matrix x(toep.input_dim(), nrhs), y(toep.output_dim(), nrhs);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.normal();

  double apply_t1 = 0.0;
  for (const std::size_t w : workers) {
    ThreadPool::global().resize(w);
    const bu::Stat s =
        bu::time_reps(bu::reps(10), [&] { toep.apply_many(x, y); });
    if (w == 1) apply_t1 = s.median_ns;
    const double speedup = apply_t1 > 0.0 ? apply_t1 / s.median_ns : 1.0;
    std::printf("%-28s %8zu %10.2f ms %9.2fx\n", "toeplitz_apply_many", w,
                s.median_ns * 1e-6, speedup);
    report.add("toeplitz_apply_many",
               {{"workers", static_cast<double>(w)},
                {"nt", static_cast<double>(nt)},
                {"nrhs", static_cast<double>(nrhs)}},
               s);
  }

  // ---- 3. cross-event batched pushes ------------------------------------
  ThreadPool::global().resize(0);  // environment default for the twin build

  TwinConfig config = TwinConfig::tiny();
  config.num_sensors = 8;
  config.num_gauges = 3;
  config.num_intervals = quick ? 16 : 32;
  config.observation_dt = 2.0;
  DigitalTwin twin(config);
  RuptureConfig rc;
  Asperity asp;
  asp.x0 = 0.3 * twin.mesh().length_x();
  asp.y0 = 0.5 * twin.mesh().length_y();
  asp.rx = 16e3;
  asp.ry = 24e3;
  asp.peak_uplift = 2.2;
  rc.asperities.push_back(asp);
  rc.hypocenter_x = asp.x0;
  rc.hypocenter_y = asp.y0;
  Rng erng(9);
  const SyntheticEvent event = twin.synthesize(RuptureScenario(rc), erng);
  twin.run_offline(event.noise);
  const StreamingEngine engine = twin.make_streaming({.track_map = false});
  const std::size_t ticks = engine.num_ticks();
  const std::size_t nd = engine.block_size();

  constexpr std::size_t kMaxEvents = 16;
  std::vector<std::vector<double>> obs;
  for (std::size_t e = 0; e < kMaxEvents; ++e) {
    obs.push_back(event.d_true);
    Rng noise(1000 + static_cast<unsigned>(e));
    for (auto& v : obs.back()) v += event.noise.sigma * noise.normal();
  }
  const auto block = [&](std::size_t e, std::size_t t) {
    return std::span<const double>(obs[e]).subspan(t * nd, nd);
  };

  std::printf("\n%-28s %8s %12s %10s\n", "case", "K", "median", "speedup");
  double batch_speedup_16 = 0.0;
  for (const std::size_t k : {std::size_t{1}, std::size_t{4}, kMaxEvents}) {
    // K full replays, serial: K assimilators pushed one after another.
    const bu::Stat serial = bu::time_reps(bu::reps(5), [&] {
      std::vector<StreamingAssimilator> evs;
      for (std::size_t e = 0; e < k; ++e) evs.push_back(engine.start());
      for (std::size_t t = 0; t < ticks; ++t)
        for (std::size_t e = 0; e < k; ++e) evs[e].push(t, block(e, t));
    });
    // The same K replays with every tick's pushes fused into one sweep.
    const bu::Stat batched = bu::time_reps(bu::reps(5), [&] {
      std::vector<StreamingAssimilator> evs;
      std::vector<StreamingAssimilator*> ptrs;
      for (std::size_t e = 0; e < k; ++e) evs.push_back(engine.start());
      for (auto& ev : evs) ptrs.push_back(&ev);
      std::vector<std::span<const double>> blocks(k);
      for (std::size_t t = 0; t < ticks; ++t) {
        for (std::size_t e = 0; e < k; ++e) blocks[e] = block(e, t);
        StreamingAssimilator::push_many(ptrs, t, blocks);
      }
    });
    const double speedup = batched.median_ns > 0.0
                               ? serial.median_ns / batched.median_ns
                               : 1.0;
    if (k == kMaxEvents) batch_speedup_16 = speedup;
    std::printf("%-28s %8zu %10.2f ms %9.2fx\n", "push_many_vs_serial", k,
                batched.median_ns * 1e-6, speedup);
    report.add("push_serial",
               {{"events", static_cast<double>(k)},
                {"ticks", static_cast<double>(ticks)}},
               serial);
    report.add("push_many",
               {{"events", static_cast<double>(k)},
                {"ticks", static_cast<double>(ticks)}},
               batched);
  }
  report.note("batch_speedup_at_16_events", batch_speedup_16);

  const std::string file = report.write();
  std::printf("\nwrote %s\n", file.c_str());
  if (compute_t4 > 0.0) {
    const double s4 = compute_t1 / compute_t4;
    std::printf("speedup at 4 workers: %.2fx on %u hardware threads%s\n", s4,
                hw,
                hw < 4 ? " (core-limited: expect ~1x; the ratio above is the "
                         "honest number for this machine)"
                       : "");
  }
  return 0;
}
