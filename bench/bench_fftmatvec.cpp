// FFTMatvec micro-benchmarks (SecV-A / SecVII-B of the paper): the FFT-based
// block-Toeplitz matvec against the O(Nt^2) dense-block reference, plus the
// batched multi-RHS path that forms the data-space Hessian.
//
// Shape expectations: the FFT path wins by a factor growing with Nt (the
// paper's kernels are memory-bound and reach 80-95% of device bandwidth; on
// CPU we report achieved GB/s of the compact operator traversal).
//
// PR 5 hot-path overhaul — before/after, min over alternating A/B runs on
// the same single-core container (the DenseReference rows served as the
// machine-state control: ~equal on both sides). The overhaul: r2c/c2r real
// transforms (half-length packing), fused radix-2^2 FFT stage pairs,
// split-complex frequency slabs with the untangle pass writing them
// directly, tiled per-frequency GEMM micro-kernels, and zero-allocation
// workspaces — vs the complex-AoS, allocate-per-call seed:
//
//   case                          before      after      speedup
//   apply        8 x  256 x  32   0.634 ms    0.184 ms    3.4x
//   apply        8 x  256 x 128   3.23  ms    0.849 ms    3.8x
//   apply        8 x  256 x 512  15.9   ms    4.93  ms    3.2x
//   apply       32 x 1024 x 128  23.3   ms    9.10  ms    2.6x
//   apply_T      8 x  256 x 128   3.15  ms    0.846 ms    3.7x
//   apply_T     32 x 1024 x 128  20.9   ms    8.05  ms    2.6x
//   apply_many   nrhs=1           3.07  ms    0.714 ms    4.3x
//   apply_many   nrhs=8          21.7   ms    5.16  ms    4.2x
//   apply_many   nrhs=32         93.2   ms   28.5   ms    3.3x
//
// The structured JSON pass below re-measures these shapes on every run and
// writes BENCH_fftmatvec.json so the trajectory stays machine-readable; the
// google-benchmark section (skipped in TSUNAMI_BENCH_QUICK mode) provides
// the long-form statistics.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "toeplitz/block_toeplitz.hpp"
#include "util/rng.hpp"

namespace {

using namespace tsunami;

struct ToeplitzFixture {
  ToeplitzFixture(std::size_t rows, std::size_t cols, std::size_t nt)
      : t(rows, cols, nt, make_blocks(rows, cols, nt)) {
    Rng rng(2);
    x = rng.normal_vector(t.input_dim());
    y.resize(t.output_dim());
    t.set_keep_blocks(blocks);
  }
  static std::vector<double> blocks;
  static std::span<const double> make_blocks(std::size_t rows,
                                             std::size_t cols,
                                             std::size_t nt) {
    Rng rng(1);
    blocks = rng.normal_vector(rows * cols * nt);
    return blocks;
  }
  BlockToeplitz t;
  std::vector<double> x, y;
};

std::vector<double> ToeplitzFixture::blocks;

void BM_FftMatvec(benchmark::State& state) {
  ToeplitzFixture fx(static_cast<std::size_t>(state.range(0)),
                     static_cast<std::size_t>(state.range(1)),
                     static_cast<std::size_t>(state.range(2)));
  ToeplitzWorkspace ws;
  for (auto _ : state) {
    fx.t.apply(fx.x, std::span<double>(fx.y), ws);
    benchmark::DoNotOptimize(fx.y.data());
  }
  state.counters["operator_GB"] =
      static_cast<double>(fx.t.storage_bytes()) * 1e-9;
  state.counters["GB/s"] = benchmark::Counter(
      static_cast<double>(fx.t.storage_bytes()) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_DenseReferenceMatvec(benchmark::State& state) {
  ToeplitzFixture fx(static_cast<std::size_t>(state.range(0)),
                     static_cast<std::size_t>(state.range(1)),
                     static_cast<std::size_t>(state.range(2)));
  for (auto _ : state) {
    fx.t.apply_dense_reference(fx.x, std::span<double>(fx.y));
    benchmark::DoNotOptimize(fx.y.data());
  }
}

void BM_FftMatvecTranspose(benchmark::State& state) {
  ToeplitzFixture fx(static_cast<std::size_t>(state.range(0)),
                     static_cast<std::size_t>(state.range(1)),
                     static_cast<std::size_t>(state.range(2)));
  std::vector<double> xt(fx.t.output_dim()), yt(fx.t.input_dim());
  Rng rng(3);
  xt = rng.normal_vector(xt.size());
  ToeplitzWorkspace ws;
  for (auto _ : state) {
    fx.t.apply_transpose(xt, std::span<double>(yt), ws);
    benchmark::DoNotOptimize(yt.data());
  }
}

void BM_FftMatvecBatched(benchmark::State& state) {
  ToeplitzFixture fx(8, 512, 64);
  const auto nrhs = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  Matrix x(fx.t.input_dim(), nrhs);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t v = 0; v < nrhs; ++v) x(i, v) = rng.normal();
  Matrix y;
  ToeplitzWorkspace ws;
  for (auto _ : state) {
    fx.t.apply_many(x, y, ws);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["matvecs/s"] = benchmark::Counter(
      static_cast<double>(nrhs), benchmark::Counter::kIsIterationInvariantRate);
}

// ---------------------------------------------------------------------------
// Structured pass: fixed seed shapes, min-of-reps statistics, JSON output.
// ---------------------------------------------------------------------------

void run_json_pass() {
  namespace bu = tsunami::benchutil;
  bu::JsonReport report("fftmatvec");
  const int n = bu::reps(25);

  struct ApplyShape {
    std::size_t rows, cols, nt;
  };
  const ApplyShape shapes[] = {
      {8, 256, 32}, {8, 256, 128}, {8, 256, 512}, {32, 1024, 128}};
  std::printf("=== FFT matvec structured pass (%d reps/case) ===\n", n);
  for (const auto& s : shapes) {
    ToeplitzFixture fx(s.rows, s.cols, s.nt);
    ToeplitzWorkspace ws;
    const auto apply_stat = bu::time_reps(
        n, [&] { fx.t.apply(fx.x, std::span<double>(fx.y), ws); });
    report.add("apply",
               {{"rows", static_cast<double>(s.rows)},
                {"cols", static_cast<double>(s.cols)},
                {"nt", static_cast<double>(s.nt)}},
               apply_stat);
    std::vector<double> xt(fx.t.output_dim(), 0.5), yt(fx.t.input_dim());
    const auto trans_stat = bu::time_reps(
        n, [&] { fx.t.apply_transpose(xt, std::span<double>(yt), ws); });
    report.add("apply_transpose",
               {{"rows", static_cast<double>(s.rows)},
                {"cols", static_cast<double>(s.cols)},
                {"nt", static_cast<double>(s.nt)}},
               trans_stat);
    std::printf("  apply   %2zu x %4zu x %3zu  median %8.0f ns  (T: %8.0f)\n",
                s.rows, s.cols, s.nt, apply_stat.median_ns,
                trans_stat.median_ns);
  }

  for (const std::size_t nrhs : {std::size_t{1}, std::size_t{8},
                                 std::size_t{32}}) {
    ToeplitzFixture fx(8, 512, 64);
    Rng rng(4);
    Matrix x(fx.t.input_dim(), nrhs);
    for (std::size_t i = 0; i < x.rows(); ++i)
      for (std::size_t v = 0; v < nrhs; ++v) x(i, v) = rng.normal();
    Matrix y;
    ToeplitzWorkspace ws;
    const auto stat = bu::time_reps(n, [&] { fx.t.apply_many(x, y, ws); });
    report.add("apply_many",
               {{"rows", 8.0}, {"cols", 512.0}, {"nt", 64.0},
                {"nrhs", static_cast<double>(nrhs)}},
               stat);
    std::printf("  apply_many nrhs=%2zu       median %8.0f ns\n", nrhs,
                stat.median_ns);
  }
  report.write();
}

}  // namespace

// (rows=Nd, cols=Nm, nt) sweeps: sensor-count, spatial and temporal growth.
BENCHMARK(BM_FftMatvec)
    ->Args({8, 256, 32})
    ->Args({8, 256, 128})
    ->Args({8, 256, 512})
    ->Args({32, 1024, 128})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DenseReferenceMatvec)
    ->Args({8, 256, 32})
    ->Args({8, 256, 128})
    ->Args({8, 256, 512})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FftMatvecTranspose)
    ->Args({8, 256, 128})
    ->Args({32, 1024, 128})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FftMatvecBatched)->Arg(1)->Arg(8)->Arg(32)->Unit(
    benchmark::kMillisecond);

int main(int argc, char** argv) {
  run_json_pass();
  if (tsunami::benchutil::quick_mode()) return 0;  // CI smoke: execute only
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
