// FFTMatvec micro-benchmarks (SecV-A / SecVII-B of the paper): the FFT-based
// block-Toeplitz matvec against the O(Nt^2) dense-block reference, plus the
// batched multi-RHS path that forms the data-space Hessian.
//
// Shape expectations: the FFT path wins by a factor growing with Nt (the
// paper's kernels are memory-bound and reach 80-95% of device bandwidth; on
// CPU we report achieved GB/s of the compact operator traversal).

#include <benchmark/benchmark.h>

#include "toeplitz/block_toeplitz.hpp"
#include "util/rng.hpp"

namespace {

using namespace tsunami;

struct ToeplitzFixture {
  ToeplitzFixture(std::size_t rows, std::size_t cols, std::size_t nt)
      : t(rows, cols, nt, make_blocks(rows, cols, nt)) {
    Rng rng(2);
    x = rng.normal_vector(t.input_dim());
    y.resize(t.output_dim());
    t.set_keep_blocks(blocks);
  }
  static std::vector<double> blocks;
  static std::span<const double> make_blocks(std::size_t rows,
                                             std::size_t cols,
                                             std::size_t nt) {
    Rng rng(1);
    blocks = rng.normal_vector(rows * cols * nt);
    return blocks;
  }
  BlockToeplitz t;
  std::vector<double> x, y;
};

std::vector<double> ToeplitzFixture::blocks;

void BM_FftMatvec(benchmark::State& state) {
  ToeplitzFixture fx(static_cast<std::size_t>(state.range(0)),
                     static_cast<std::size_t>(state.range(1)),
                     static_cast<std::size_t>(state.range(2)));
  for (auto _ : state) {
    fx.t.apply(fx.x, std::span<double>(fx.y));
    benchmark::DoNotOptimize(fx.y.data());
  }
  state.counters["operator_GB"] =
      static_cast<double>(fx.t.storage_bytes()) * 1e-9;
  state.counters["GB/s"] = benchmark::Counter(
      static_cast<double>(fx.t.storage_bytes()) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_DenseReferenceMatvec(benchmark::State& state) {
  ToeplitzFixture fx(static_cast<std::size_t>(state.range(0)),
                     static_cast<std::size_t>(state.range(1)),
                     static_cast<std::size_t>(state.range(2)));
  for (auto _ : state) {
    fx.t.apply_dense_reference(fx.x, std::span<double>(fx.y));
    benchmark::DoNotOptimize(fx.y.data());
  }
}

void BM_FftMatvecTranspose(benchmark::State& state) {
  ToeplitzFixture fx(static_cast<std::size_t>(state.range(0)),
                     static_cast<std::size_t>(state.range(1)),
                     static_cast<std::size_t>(state.range(2)));
  std::vector<double> xt(fx.t.output_dim()), yt(fx.t.input_dim());
  Rng rng(3);
  xt = rng.normal_vector(xt.size());
  for (auto _ : state) {
    fx.t.apply_transpose(xt, std::span<double>(yt));
    benchmark::DoNotOptimize(yt.data());
  }
}

void BM_FftMatvecBatched(benchmark::State& state) {
  ToeplitzFixture fx(8, 512, 64);
  const auto nrhs = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  Matrix x(fx.t.input_dim(), nrhs);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t v = 0; v < nrhs; ++v) x(i, v) = rng.normal();
  Matrix y;
  for (auto _ : state) {
    fx.t.apply_many(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["matvecs/s"] = benchmark::Counter(
      static_cast<double>(nrhs), benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

// (rows=Nd, cols=Nm, nt) sweeps: sensor-count, spatial and temporal growth.
BENCHMARK(BM_FftMatvec)
    ->Args({8, 256, 32})
    ->Args({8, 256, 128})
    ->Args({8, 256, 512})
    ->Args({32, 1024, 128})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DenseReferenceMatvec)
    ->Args({8, 256, 32})
    ->Args({8, 256, 128})
    ->Args({8, 256, 512})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FftMatvecTranspose)
    ->Args({8, 256, 128})
    ->Args({32, 1024, 128})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FftMatvecBatched)->Arg(1)->Arg(8)->Arg(32)->Unit(
    benchmark::kMillisecond);

BENCHMARK_MAIN();
