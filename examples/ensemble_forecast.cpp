// Batched scenario-ensemble forecasting: the online phase swept over a bank
// of kinematic rupture scenarios, amortizing the offline operators.
//
//   $ ./examples/ensemble_forecast [num_scenarios] [--serial]
//
// Builds one twin, synthesizes a bank of >= 8 distinct compact ruptures
// spread across the margin (magnitude 8.0-9.1, epicenter swept along strike,
// varying rise time and rupture speed; see RuptureStyle for why compact is
// the right class at seed scale), runs Phases 1-3 ONCE, then sweeps Phase 4
// over the whole bank via parallel_for. Prints the per-scenario online latency table and
// the ensemble-mean forecast error, plus the amortization headline: offline
// seconds vs. online seconds per scenario.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/scenario_bank.hpp"
#include "parallel/parallel_for.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tsunami;

  std::size_t num_scenarios = 8;
  bool serial = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serial") == 0) {
      serial = true;
    } else {
      const int n = std::atoi(argv[i]);
      num_scenarios = n >= 1 ? static_cast<std::size_t>(n) : 8;
    }
  }

  // A small margin so the example finishes in about a minute; scale the
  // knobs up to approach the paper's configuration (see README.md). The
  // footprint stays compact enough that coastal gauges see the wave field
  // within the observation window, so forecast skill is meaningful.
  TwinConfig config = TwinConfig::tiny();
  config.num_sensors = 12;
  config.num_gauges = 4;
  config.num_intervals = 16;
  config.observation_dt = 5.0;

  std::printf("=== Scenario-ensemble forecast (%zu scenarios%s) ===\n",
              num_scenarios, serial ? ", serial" : "");
  DigitalTwin twin(config);
  std::printf("mesh %zux%zux%zu | parameters %zu | data dim %zu | "
              "%d pool workers\n\n",
              config.mesh_nx, config.mesh_ny, config.mesh_nz,
              twin.parameter_dim(), twin.data_dim(), num_threads());

  // Bank of distinct ruptures across magnitude / hypocenter / kinematics.
  ScenarioBank bank(twin, ScenarioBank::spread(twin, num_scenarios, 2026));
  std::printf("synthesizing %zu scenarios (forward PDE solves)...\n",
              bank.size());
  Stopwatch synth_watch;
  bank.synthesize(/*noise_seed=*/7);
  const double synth_seconds = synth_watch.seconds();

  // Offline phases once, against the bank's shared noise calibration.
  std::printf("running offline phases 1-3 once for the whole bank...\n\n");
  Stopwatch offline_watch;
  twin.run_offline(bank.shared_noise());
  const double offline_seconds = offline_watch.seconds();

  // Batched online sweep.
  const EnsembleReport report = bank.run_online(/*parallel=*/!serial);
  std::printf("%s\n", report.table().c_str());

  std::printf("offline (phases 1-3, once):   %s\n",
              format_duration(offline_seconds).c_str());
  std::printf("synthesis (experiment setup): %s\n",
              format_duration(synth_seconds).c_str());
  std::printf("online sweep wall time:       %s for %zu scenarios "
              "(%s/scenario amortized)\n",
              format_duration(report.online_wall_seconds).c_str(), bank.size(),
              format_duration(report.online_wall_seconds /
                              static_cast<double>(bank.size()))
                  .c_str());
  std::printf("per-scenario online latency:  mean %s, max %s\n",
              format_duration(report.mean_online_seconds).c_str(),
              format_duration(report.max_online_seconds).c_str());
  std::printf("ensemble-mean forecast error: %.3f (rel. L2), "
              "mean q correlation %.3f, mean 95%% CI coverage %.0f%%\n",
              report.mean_forecast_error, report.mean_forecast_correlation,
              100.0 * report.mean_ci_coverage);
  std::printf("ensemble-mean source recovery: displacement correlation %.3f "
              "(rel. L2 error %.3f)\n",
              report.mean_displacement_correlation,
              report.mean_displacement_error);
  return 0;
}
