// The flagship experiment: a reduced-scale reproduction of the paper's
// Cascadia margin-wide inversion (SecV-C, Figs. 3-4, Table III).
//
//   $ ./examples/cascadia_twin [--medium]
//
// Builds a synthetic Cascadia subduction-zone twin (shelf/slope/abyssal
// bathymetry, offshore sensor network, coastal wave-height gauges), drives
// it with a kinematic margin-wide Mw 8.7 rupture, and:
//   - runs offline Phases 1-3, printing a Table-III-style time table,
//   - runs the online Phase 4 inversion from 1%-noise data,
//   - writes Fig.-3-style field CSVs (true vs inferred displacement,
//     pointwise posterior std dev) and Fig.-4-style gauge series CSVs
//     (true QoI, predicted QoI, 95% credible intervals) to ./artifacts/.

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/digital_twin.hpp"
#include "linalg/blas.hpp"
#include "util/table.hpp"

namespace {

tsunami::TwinConfig cascadia_config(bool medium) {
  using namespace tsunami;
  TwinConfig c;
  // Synthetic Cascadia margin (DESIGN.md: GEBCO substitution). The shelf is
  // kept >= 500 m so the explicit acoustic CFL stays tractable on CPU.
  c.bathymetry = BathymetryConfig{};
  c.bathymetry.length_x = 120e3;
  c.bathymetry.length_y = 200e3;
  c.bathymetry.depth_abyssal = 2600.0;
  c.bathymetry.depth_shelf = 600.0;
  c.bathymetry.min_depth = 500.0;
  c.mesh_nx = medium ? 12 : 8;
  c.mesh_ny = medium ? 18 : 12;
  c.mesh_nz = 2;
  c.order = 2;
  c.num_sensors = medium ? 20 : 10;   // paper: 600
  c.num_gauges = medium ? 8 : 5;      // paper: 21
  c.num_intervals = medium ? 24 : 16; // paper: 420 (1 Hz for 420 s)
  c.observation_dt = 5.0;
  c.cfl = 0.35;
  c.prior.sigma = 0.3;                // seafloor velocity scale [m/s]
  c.prior.correlation_length = 30e3;
  c.noise_level = 0.01;               // the paper's 1% relative noise
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsunami;
  const bool medium = argc > 1 && std::strcmp(argv[1], "--medium") == 0;

  const TwinConfig config = cascadia_config(medium);
  std::printf("=== Cascadia digital twin (reduced scale%s) ===\n",
              medium ? ", --medium" : "");
  DigitalTwin twin(config);
  const auto& grid = twin.time_grid();
  std::printf("mesh %zux%zux%zu order %zu | states %zu | parameters %zu "
              "(%zu spatial x %zu temporal)\n",
              config.mesh_nx, config.mesh_ny, config.mesh_nz, config.order,
              twin.model().state_dim(), twin.parameter_dim(),
              twin.model().source_map().parameter_dim(),
              grid.num_intervals);
  std::printf("sensors %zu | gauges %zu | T = %.0f s | dt = %.3f s "
              "(%zu substeps/interval)\n\n",
              config.num_sensors, config.num_gauges, grid.total_time(),
              grid.dt, grid.substeps);

  // Margin-wide Mw 8.7 kinematic rupture (the paper's scenario class).
  const RuptureConfig rupture = margin_wide_scenario(
      config.bathymetry.length_x, config.bathymetry.length_y, 8.7, 2025);
  const RuptureScenario scenario(rupture);
  std::printf("rupture: %zu asperities, vr = %.0f m/s, rise time %.0f s\n",
              rupture.asperities.size(), rupture.rupture_speed,
              rupture.rise_time);

  Rng rng(42);
  const SyntheticEvent event = twin.synthesize(scenario, rng);
  std::printf("data: peak |p| = %.1f Pa at sensors, noise sigma = %.2f Pa "
              "(1%% relative)\n\n",
              amax(event.d_true), event.noise.sigma);

  // Offline phases with Table-III-style reporting.
  twin.run_offline(event.noise);
  const auto& timers = twin.timers();
  TextTable phase_table({"Phase", "Task", "Compute time"});
  phase_table.row().cell("1").cell("form F : m -> d").cell(
      format_duration(timers.total("phase1: form F")));
  phase_table.row().cell("1").cell("form Fq : m -> q").cell(
      format_duration(timers.total("phase1: form Fq")));
  phase_table.row().cell("2").cell("form K := Gn + F G*").cell(
      format_duration(timers.total("form K")));
  phase_table.row().cell("2").cell("factorize K").cell(
      format_duration(timers.total("factorize K")));
  phase_table.row().cell("3").cell("compute Gamma_post(q)").cell(
      format_duration(timers.total("compute Gamma_post(q)")));
  phase_table.row().cell("3").cell("compute Q : d -> q").cell(
      format_duration(timers.total("compute Q")));

  // Online phase.
  const InversionResult result = twin.infer(event.d_obs);
  phase_table.row().cell("4").cell("infer parameters m_map").cell(
      format_duration(result.infer_seconds));
  phase_table.row().cell("4").cell("predict QoI q_map").cell(
      format_duration(result.predict_seconds));
  std::printf("%s\n", phase_table.str().c_str());

  // Quality metrics (Fig. 3 analogue).
  const auto b_true = twin.displacement_field(event.m_true);
  const auto b_map = twin.displacement_field(result.m_map);
  const double b_err = DigitalTwin::relative_error(b_map, b_true);
  std::printf("inferred seafloor displacement: relative L2 error = %.3f, "
              "peak true uplift = %.2f m, peak inferred = %.2f m\n",
              b_err, amax(b_true), amax(b_map));

  // Pointwise posterior std dev at a transect of seafloor points (Fig. 3e).
  const auto& src = twin.model().source_map();
  const std::size_t nx1 = src.grid_nx();
  const std::size_t probe_row = src.grid_ny() / 2;
  std::vector<double> sigma_transect;
  for (std::size_t a = 0; a < nx1; ++a) {
    const std::size_t r = a + nx1 * probe_row;
    double var = 0.0;
    for (std::size_t t = 0; t < grid.num_intervals; ++t)
      var += twin.posterior().pointwise_variance(r, t) *
             grid.interval() * grid.interval();
    sigma_transect.push_back(std::sqrt(var));
  }

  // Artifacts.
  std::filesystem::create_directories("artifacts");
  {
    // Fig. 3 fields along the parameter grid (x-fastest).
    std::vector<double> xs, ys;
    for (std::size_t r = 0; r < src.parameter_dim(); ++r) {
      const auto xy = src.node_xy(r);
      xs.push_back(xy[0]);
      ys.push_back(xy[1]);
    }
    write_csv("artifacts/fig3_displacement.csv",
              {"x", "y", "b_true", "b_map"}, {xs, ys, b_true, b_map});
    std::vector<double> tx;
    for (std::size_t a = 0; a < nx1; ++a)
      tx.push_back(src.node_xy(a + nx1 * probe_row)[0]);
    write_csv("artifacts/fig3_posterior_sigma_transect.csv",
              {"x", "sigma_displacement"}, {tx, sigma_transect});
  }
  {
    // Fig. 4 series: per gauge, true vs predicted with CI bands.
    const auto& fc = result.forecast;
    std::vector<std::vector<double>> cols;
    std::vector<std::string> names;
    names.push_back("t");
    cols.push_back(grid.observation_times());
    for (std::size_t g = 0; g < fc.num_gauges; ++g) {
      std::vector<double> truth(fc.num_times), mean(fc.num_times),
          lo(fc.num_times), hi(fc.num_times);
      for (std::size_t t = 0; t < fc.num_times; ++t) {
        truth[t] = event.q_true[t * fc.num_gauges + g];
        mean[t] = fc.at(fc.mean, t, g);
        lo[t] = fc.at(fc.lower95, t, g);
        hi[t] = fc.at(fc.upper95, t, g);
      }
      // Built by append (not `"g" + std::to_string(g)`) to dodge a GCC 12
      // -Wrestrict false positive in the char* + string&& operator+ inline.
      std::string tag("g");
      tag += std::to_string(g);
      names.push_back(tag + "_true");
      names.push_back(tag + "_pred");
      names.push_back(tag + "_lo95");
      names.push_back(tag + "_hi95");
      cols.push_back(truth);
      cols.push_back(mean);
      cols.push_back(lo);
      cols.push_back(hi);
    }
    write_csv("artifacts/fig4_forecasts.csv", names, cols);
  }
  std::printf("wrote artifacts/fig3_displacement.csv, "
              "artifacts/fig3_posterior_sigma_transect.csv, "
              "artifacts/fig4_forecasts.csv\n");

  // Forecast skill summary (Fig. 4 analogue).
  const auto& fc = result.forecast;
  int inside = 0, total = 0;
  for (std::size_t i = 0; i < fc.mean.size(); ++i) {
    if (fc.stddev[i] < 1e-12) continue;
    ++total;
    if (event.q_true[i] >= fc.lower95[i] && event.q_true[i] <= fc.upper95[i])
      ++inside;
  }
  std::printf("forecast: 95%% CI empirical coverage of the true QoI = "
              "%.0f%% (%d/%d)\n",
              100.0 * inside / std::max(total, 1), inside, total);
  return 0;
}
