// Sensor-network design study (the paper's SecVIII point: warning skill is
// limited by the sparsity of offshore sensors; NEPTUNE-style arrays vs
// denser future deployments).
//
//   $ ./examples/sensor_network_design
//
// Sweeps the number of seafloor pressure sensors, rebuilding the offline
// phases for each network, and reports how posterior uncertainty and
// forecast error shrink as coverage improves.

#include <cstdio>

#include "core/digital_twin.hpp"
#include "core/sensor_placement.hpp"
#include "util/table.hpp"

int main() {
  using namespace tsunami;

  TwinConfig base = TwinConfig::tiny();
  base.num_intervals = 12;
  base.num_gauges = 3;

  // A fixed rupture scenario shared by all networks.
  RuptureConfig rupture_cfg;
  Asperity asperity;
  asperity.x0 = 0.35 * base.bathymetry.length_x;
  asperity.y0 = 0.45 * base.bathymetry.length_y;
  asperity.rx = 14e3;
  asperity.ry = 20e3;
  asperity.peak_uplift = 1.8;
  rupture_cfg.asperities.push_back(asperity);
  rupture_cfg.hypocenter_x = asperity.x0;
  rupture_cfg.hypocenter_y = asperity.y0;
  const RuptureScenario scenario(rupture_cfg);

  TextTable table({"sensors", "mean posterior sigma / prior sigma",
                   "displacement rel. error", "mean QoI CI width [m]"});

  for (std::size_t sensors : {3, 6, 12, 24}) {
    TwinConfig config = base;
    config.num_sensors = sensors;
    DigitalTwin twin(config);

    Rng rng(11);  // same noise realization pattern for comparability
    const SyntheticEvent event = twin.synthesize(scenario, rng);
    twin.run_offline(event.noise);
    const InversionResult result = twin.infer(event.d_obs);

    // Posterior-vs-prior uncertainty, averaged over a coarse probe set.
    const auto& src = twin.model().source_map();
    const std::size_t nm = src.parameter_dim();
    double ratio = 0.0;
    std::size_t count = 0;
    for (std::size_t r = 0; r < nm; r += nm / 12 + 1) {
      const double post = twin.posterior().pointwise_variance(r, 0);
      const double pri = twin.prior().pointwise_variance(r);
      ratio += std::sqrt(std::max(0.0, post) / pri);
      ++count;
    }
    ratio /= static_cast<double>(count);

    const auto b_true = twin.displacement_field(event.m_true);
    const auto b_map = twin.displacement_field(result.m_map);
    const double err = DigitalTwin::relative_error(b_map, b_true);

    double ci = 0.0;
    for (double s : result.forecast.stddev) ci += 2.0 * 1.96 * s;
    ci /= static_cast<double>(result.forecast.stddev.size());

    table.row()
        .cell(static_cast<long>(sensors))
        .cell(ratio, 3)
        .cell(err, 3)
        .cell(ci, 4);
  }

  std::printf("=== Sensor network design study ===\n");
  std::printf("(denser offshore arrays -> smaller posterior uncertainty and "
              "better source recovery)\n\n%s",
              table.str().c_str());

  // --- Part 2: greedy A-optimal placement from a candidate pool -----------
  // Where SHOULD the next sensors go? Build the pool's p2o map once (one
  // adjoint solve per candidate), then greedy selection needs no further
  // PDE work (src/core/sensor_placement).
  std::printf("\n=== Greedy A-optimal placement (12-candidate pool) ===\n");
  {
    TwinConfig config = base;
    config.num_sensors = 1;  // twin only provides model/gauges here
    DigitalTwin twin(config);
    const auto candidates =
        sensor_grid(12, 0.08 * base.bathymetry.length_x,
                    0.62 * base.bathymetry.length_x,
                    0.06 * base.bathymetry.length_y,
                    0.94 * base.bathymetry.length_y);
    const ObservationOperator pool_obs =
        ObservationOperator::seafloor_sensors(twin.model(), candidates);
    const P2oMap f_pool =
        build_p2o_map(twin.model(), pool_obs, twin.time_grid());
    const P2oMap fq =
        build_p2o_map(twin.model(), twin.gauges(), twin.time_grid());

    Rng rng(11);
    const SyntheticEvent event = twin.synthesize(scenario, rng);
    const PlacementPool pool = build_placement_pool(
        *f_pool.toeplitz, *fq.toeplitz, twin.prior(), event.noise);
    const PlacementResult placement = greedy_sensor_placement(pool, 6);

    TextTable ptable({"pick", "candidate", "x [km]", "y [km]",
                      "QoI trace / prior trace"});
    for (std::size_t i = 0; i < placement.selected.size(); ++i) {
      const auto& xy = candidates[placement.selected[i]];
      ptable.row()
          .cell(static_cast<long>(i + 1))
          .cell(static_cast<long>(placement.selected[i]))
          .cell(xy[0] / 1e3, 1)
          .cell(xy[1] / 1e3, 1)
          .cell(placement.qoi_trace[i] / placement.prior_qoi_trace, 3);
    }
    std::printf("%s", ptable.str().c_str());
    std::printf("(diminishing returns per added sensor -- the submodular "
                "shape of optimal design)\n");
  }
  return 0;
}
