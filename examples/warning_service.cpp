// Serving many events at once: the multi-event warning service.
//
// examples/warning_center.cpp tracks ONE event through one assimilator. An
// operational center during a Cascadia sequence tracks many — mainshock,
// aftershocks, exercise replays — all over the same sensor network. This
// example runs that morning end to end, in one process for convenience:
//
//   1. HPC side: build the offline operators once, ship a bundle.
//   2. Boot an EngineCache from the bundle (warm start, zero PDE solves)
//      and show that a second load of the same network is a cache hit —
//      the same engine instance, keyed by the config fingerprint.
//   3. Open one WarningService session per live event and feed all of
//      them concurrently, with deliberately out-of-order packets (pairs
//      swapped) to exercise the per-session reordering buffer.
//   4. Print the per-event alert table and the service telemetry line
//      (events in flight, aggregate ticks/sec, p50/p95/p99 push latency).
//
//   $ ./examples/warning_service [n_events]     # default 6
//
// Observability hooks (all optional, see docs/ARCHITECTURE.md):
//   TSUNAMI_TRACE=trace.json    flight-recorder spans -> Chrome trace JSON
//                               (open in Perfetto / chrome://tracing)
//   TSUNAMI_METRICS=metrics.prom  Prometheus text exposition of the service,
//                               pool, and offline-phase metrics at exit
//   TSUNAMI_HTTP=host:port      live introspection server while the replay
//                               runs: GET /metrics /healthz /readyz /tracez
//                               /events (curl any of them mid-replay)
//   TSUNAMI_HTTP_LINGER=secs    keep serving that long after the replay
//                               drains, BEFORE events close (CI scrapes a
//                               live service this way)
//   TSUNAMI_JOURNAL=path        per-event lifecycle journal -> JSON Lines
//
// Fault injection (deterministic, seeded — see src/service/fault_injector):
//   TSUNAMI_FAULT_SEED=42                  decision-hash seed
//   TSUNAMI_FAULT_DROP_SENSOR=2@5,0@8-20   sensor outages (chan@tick[-restore])
//   TSUNAMI_FAULT_PACKET_LOSS=0.05         P(block lost) per (event, tick)
//   TSUNAMI_FAULT_CORRUPT=0.01             P(block corrupt) per (event, tick)
// Lost blocks are submitted with an all-zeros validity bitmap (the stream
// keeps moving; the posterior is exact over what arrived). Corrupt blocks
// are submitted with the wrong dimension, rejected at the submit boundary
// (journal `reject`), and then retransmitted clean.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario_bank.hpp"
#include "obs/bridge.hpp"
#include "obs/http_exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "service/engine_cache.hpp"
#include "service/fault_injector.hpp"
#include "service/warning_service.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tsunami;

  const std::size_t n_events =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 6;

  TwinConfig config = TwinConfig::tiny();
  config.num_intervals = 24;
  config.observation_dt = 4.0;  // 96 s window: the spread's events complete

  std::printf("=== Multi-event warning service ===\n");
  std::printf("[offline] building operators + bundle (the HPC side, once)\n");
  const std::string bundle_path = "warning_service_demo.bundle";
  std::vector<std::vector<double>> d_obs, q_true;
  std::vector<ScenarioSpec> specs;
  {
    DigitalTwin builder(config);
    ScenarioBank bank(builder, ScenarioBank::spread(builder, n_events));
    bank.synthesize();
    builder.run_offline(bank.shared_noise());
    builder.save_offline(bundle_path);
    specs = bank.specs();
    for (const auto& ev : bank.events()) {
      d_obs.push_back(ev.d_obs);
      q_true.push_back(ev.q_true);
    }
    // The builder twin dies here: the warning center below runs entirely
    // off the shipped bundle.
  }

  Stopwatch boot;
  EngineCache cache({.track_map = false});
  const auto engine = cache.load(bundle_path);
  std::printf("[online] warm boot from %s: %s to streaming-ready\n",
              bundle_path.c_str(), format_duration(boot.seconds()).c_str());
  Stopwatch reload;
  const bool hit = cache.load(bundle_path).get() == engine.get();
  std::printf("[online] second load: %s (%s — one engine per network "
              "fingerprint, %zu cached)\n\n",
              hit ? "cache hit" : "MISS?!", format_duration(reload.seconds()).c_str(),
              cache.size());

  const std::size_t nt = engine->engine().num_ticks();
  const std::size_t nd = engine->engine().block_size();
  const double dt = config.observation_dt;

  WarningService service({.num_workers = 4, .max_pending_per_event = nt});

  // TSUNAMI_HTTP=host:port — serve live introspection for the whole replay.
  // Declared after `service`, so it is destroyed (threads joined) first.
  std::unique_ptr<obs::HttpExporter> http;
  if (const char* spec = std::getenv("TSUNAMI_HTTP");
      spec != nullptr && *spec != '\0') {
    std::string host;
    std::uint16_t port = 0;
    if (!obs::HttpExporter::parse_hostport(spec, host, port)) {
      std::fprintf(stderr, "[obs] bad TSUNAMI_HTTP spec: %s\n", spec);
      return 1;
    }
    http = std::make_unique<obs::HttpExporter>(
        obs::HttpExporter::Options{.host = host, .port = port});
    http->route("/metrics", [&](const obs::HttpRequest&) {
      obs::MetricsSnapshot snap;
      service.collect_metrics(snap);
      obs::collect_pool(ThreadPool::global(), snap);
      obs::collect_timers(engine->twin().timers(), snap);
      obs::collect_trace(snap);
      return obs::HttpResponse{
          200, "text/plain; version=0.0.4; charset=utf-8",
          obs::prometheus_text(snap)};
    });
    http->route("/healthz", [](const obs::HttpRequest&) {
      return obs::HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
    });
    http->route("/readyz", [&](const obs::HttpRequest&) {
      return cache.size() > 0
                 ? obs::HttpResponse{200, "text/plain; charset=utf-8", "ok\n"}
                 : obs::HttpResponse{503, "text/plain; charset=utf-8",
                                     "no engine loaded\n"};
    });
    http->route("/tracez", [](const obs::HttpRequest&) {
      return obs::HttpResponse{200, "application/json",
                               obs::chrome_trace_json()};
    });
    http->route("/events", [&](const obs::HttpRequest&) {
      return obs::HttpResponse{200, "application/json",
                               service.events_json()};
    });
    if (!http->start()) {
      std::fprintf(stderr, "[obs] could not bind %s: %s\n", spec,
                   http->last_error().c_str());
      return 1;
    }
    std::printf("[obs] introspection server on %s:%u "
                "(/metrics /healthz /readyz /tracez /events)\n",
                host.c_str(), static_cast<unsigned>(http->port()));
  }

  std::vector<EventId> ids;
  std::vector<double> thresholds;
  for (std::size_t e = 0; e < n_events; ++e) {
    // Demo warning rule per event: half its eventual peak, debounced over
    // two consecutive ticks (a deployed center uses fixed hazard levels).
    const double peak = *std::max_element(q_true[e].begin(), q_true[e].end());
    thresholds.push_back(0.5 * peak);
    ids.push_back(service.open_event(
        engine, {.threshold = 0.5 * peak, .debounce_ticks = 2}));
  }

  // Deterministic fault injection over the feed (TSUNAMI_FAULT_*): scripted
  // sensor outages plus hash-seeded packet loss and corruption. Counters
  // are reported after the replay; the journal and /metrics carry the
  // per-event record.
  const FaultInjector faults(FaultPlan::from_env());
  std::size_t faults_lost = 0, faults_corrupt = 0, faults_sensor_ops = 0;
  const std::vector<std::uint8_t> all_lost(nd, 0);
  const std::vector<double> oversized(nd + 1, 0.0);
  const auto submit_with_faults = [&](std::size_t e, std::size_t t) {
    const auto block = std::span<const double>(d_obs[e]).subspan(t * nd, nd);
    if (faults.lose_block(ids[e], t)) {
      ++faults_lost;
      service.submit(ids[e], t, block, all_lost);  // lost in transit
      return;
    }
    if (faults.corrupt_block(ids[e], t)) {
      try {
        service.submit(ids[e], t, oversized);  // wrong dimension on the wire
      } catch (const std::invalid_argument&) {
        ++faults_corrupt;  // rejected at the boundary, journaled as `reject`
      }
      // ... and the transport retransmits the genuine block.
    }
    service.submit(ids[e], t, block);
  };

  // Live feed: every cadence interval delivers one block per event, and the
  // transport swaps each pair of ticks (1 before 0, 3 before 2, ...) — the
  // per-session reordering buffer puts them back in causal order.
  for (std::size_t t0 = 0; t0 < nt; t0 += 2) {
    // Scripted sensor outages fire at tick boundaries, against every event
    // (the network is shared — a dead cable is dead for everyone).
    for (std::size_t t = t0; t < std::min(t0 + 2, nt); ++t) {
      for (const auto& [chan, live] : faults.sensor_ops_at(t)) {
        for (std::size_t e = 0; e < n_events; ++e) {
          if (live)
            service.restore_sensor(ids[e], chan);
          else
            service.drop_sensor(ids[e], chan);
          ++faults_sensor_ops;
        }
      }
    }
    for (std::size_t e = 0; e < n_events; ++e) {
      if (t0 + 1 < nt) submit_with_faults(e, t0 + 1);
      submit_with_faults(e, t0);
    }
  }
  service.drain();
  if (faults.plan().any())
    std::printf("[faults] seed %llu: %zu blocks lost, %zu corrupt rejected, "
                "%zu sensor ops\n",
                static_cast<unsigned long long>(faults.plan().seed),
                faults_lost, faults_corrupt, faults_sensor_ops);

  // TSUNAMI_HTTP_LINGER=secs: hold the replayed-but-still-open sessions so
  // an external scraper (CI) can observe a LIVE service — events in flight,
  // per-session staleness, journals still attached to open sessions.
  if (const char* linger = std::getenv("TSUNAMI_HTTP_LINGER");
      http != nullptr && linger != nullptr && *linger != '\0') {
    const double secs = std::atof(linger);
    std::printf("[obs] lingering %.1fs with %zu live events for scrapes\n",
                secs, service.events_in_flight());
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(secs * 1000.0)));
  }

  TextTable table({"event", "Mw", "alert @", "peak @", "lead", "q err",
                   "ticks", "deg"});
  for (std::size_t e = 0; e < n_events; ++e) {
    const EventSnapshot s = service.close_event(ids[e]);
    const std::size_t peak_idx = static_cast<std::size_t>(
        std::max_element(q_true[e].begin(), q_true[e].end()) -
        q_true[e].begin());
    const double peak_seconds =
        static_cast<double>(peak_idx / config.num_gauges + 1) * dt;
    const double alert_seconds = static_cast<double>(s.alert_tick) * dt;
    char ticks[32];
    std::snprintf(ticks, sizeof(ticks), "%zu/%zu", s.ticks_assimilated, nt);
    table.row()
        .cell(specs[e].name)
        .cell(specs[e].magnitude, 2)
        .cell(s.alert ? format_duration(alert_seconds) : "-")
        .cell(format_duration(peak_seconds))
        .cell(s.alert && peak_seconds > alert_seconds
                  ? format_duration(peak_seconds - alert_seconds)
                  : "-")
        .cell(DigitalTwin::relative_error(s.forecast.mean, q_true[e]), 3)
        .cell(ticks)
        .cell(s.degraded ? std::to_string(s.dropped_channels) + " ch" : "-");
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("telemetry: %s\n", service.telemetry().str().c_str());

  // TSUNAMI_METRICS=path: one scrape of every layer — service counters and
  // the push-latency histogram, pool worker stats, and the warm twin's phase
  // timers — through the single Prometheus export path.
  if (const char* metrics_path = std::getenv("TSUNAMI_METRICS");
      metrics_path != nullptr && *metrics_path != '\0') {
    obs::MetricsSnapshot snap;
    service.collect_metrics(snap);
    obs::collect_pool(ThreadPool::global(), snap);
    obs::collect_timers(engine->twin().timers(), snap);
    obs::collect_trace(snap);
    const std::string text = obs::prometheus_text(snap);
    if (std::FILE* f = std::fopen(metrics_path, "w")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("[obs] wrote %zu metric samples to %s\n", snap.samples.size(),
                  metrics_path);
    } else {
      std::fprintf(stderr, "[obs] could not write metrics to %s\n",
                   metrics_path);
    }
  }

  // TSUNAMI_JOURNAL=path: the full lifecycle journal as JSON Lines — the
  // open -> first_tick -> push... -> alert_latch -> close timeline of every
  // event, each push row carrying its queue/push/publish latency budget.
  if (const char* journal_path = std::getenv("TSUNAMI_JOURNAL");
      journal_path != nullptr && *journal_path != '\0') {
    const std::string lines = service.journal().json_lines();
    if (std::FILE* f = std::fopen(journal_path, "w")) {
      std::fwrite(lines.data(), 1, lines.size(), f);
      std::fclose(f);
      std::printf("[obs] wrote %llu journal records to %s\n",
                  static_cast<unsigned long long>(
                      service.journal().appended()),
                  journal_path);
    } else {
      std::fprintf(stderr, "[obs] could not write journal to %s\n",
                   journal_path);
    }
  }

  std::remove(bundle_path.c_str());
  return 0;
}
