// Serving many events at once: the multi-event warning service.
//
// examples/warning_center.cpp tracks ONE event through one assimilator. An
// operational center during a Cascadia sequence tracks many — mainshock,
// aftershocks, exercise replays — all over the same sensor network. This
// example runs that morning end to end, in one process for convenience:
//
//   1. HPC side: build the offline operators once, ship a bundle.
//   2. Boot an EngineCache from the bundle (warm start, zero PDE solves)
//      and show that a second load of the same network is a cache hit —
//      the same engine instance, keyed by the config fingerprint.
//   3. Open one WarningService session per live event and feed all of
//      them concurrently, with deliberately out-of-order packets (pairs
//      swapped) to exercise the per-session reordering buffer.
//   4. Print the per-event alert table and the service telemetry line
//      (events in flight, aggregate ticks/sec, p50/p95/p99 push latency).
//
//   $ ./examples/warning_service [n_events]     # default 6
//
// Observability hooks (both optional, see docs/ARCHITECTURE.md):
//   TSUNAMI_TRACE=trace.json    flight-recorder spans -> Chrome trace JSON
//                               (open in Perfetto / chrome://tracing)
//   TSUNAMI_METRICS=metrics.prom  Prometheus text exposition of the service,
//                               pool, and offline-phase metrics at exit

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/scenario_bank.hpp"
#include "obs/bridge.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "service/engine_cache.hpp"
#include "service/warning_service.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tsunami;

  const std::size_t n_events =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 6;

  TwinConfig config = TwinConfig::tiny();
  config.num_intervals = 24;
  config.observation_dt = 4.0;  // 96 s window: the spread's events complete

  std::printf("=== Multi-event warning service ===\n");
  std::printf("[offline] building operators + bundle (the HPC side, once)\n");
  const std::string bundle_path = "warning_service_demo.bundle";
  std::vector<std::vector<double>> d_obs, q_true;
  std::vector<ScenarioSpec> specs;
  {
    DigitalTwin builder(config);
    ScenarioBank bank(builder, ScenarioBank::spread(builder, n_events));
    bank.synthesize();
    builder.run_offline(bank.shared_noise());
    builder.save_offline(bundle_path);
    specs = bank.specs();
    for (const auto& ev : bank.events()) {
      d_obs.push_back(ev.d_obs);
      q_true.push_back(ev.q_true);
    }
    // The builder twin dies here: the warning center below runs entirely
    // off the shipped bundle.
  }

  Stopwatch boot;
  EngineCache cache({.track_map = false});
  const auto engine = cache.load(bundle_path);
  std::printf("[online] warm boot from %s: %s to streaming-ready\n",
              bundle_path.c_str(), format_duration(boot.seconds()).c_str());
  Stopwatch reload;
  const bool hit = cache.load(bundle_path).get() == engine.get();
  std::printf("[online] second load: %s (%s — one engine per network "
              "fingerprint, %zu cached)\n\n",
              hit ? "cache hit" : "MISS?!", format_duration(reload.seconds()).c_str(),
              cache.size());

  const std::size_t nt = engine->engine().num_ticks();
  const std::size_t nd = engine->engine().block_size();
  const double dt = config.observation_dt;

  WarningService service({.num_workers = 4, .max_pending_per_event = nt});
  std::vector<EventId> ids;
  std::vector<double> thresholds;
  for (std::size_t e = 0; e < n_events; ++e) {
    // Demo warning rule per event: half its eventual peak, debounced over
    // two consecutive ticks (a deployed center uses fixed hazard levels).
    const double peak = *std::max_element(q_true[e].begin(), q_true[e].end());
    thresholds.push_back(0.5 * peak);
    ids.push_back(service.open_event(
        engine, {.threshold = 0.5 * peak, .debounce_ticks = 2}));
  }

  // Live feed: every cadence interval delivers one block per event, and the
  // transport swaps each pair of ticks (1 before 0, 3 before 2, ...) — the
  // per-session reordering buffer puts them back in causal order.
  for (std::size_t t0 = 0; t0 < nt; t0 += 2) {
    for (std::size_t e = 0; e < n_events; ++e) {
      const auto block = [&](std::size_t t) {
        return std::span<const double>(d_obs[e]).subspan(t * nd, nd);
      };
      if (t0 + 1 < nt) service.submit(ids[e], t0 + 1, block(t0 + 1));
      service.submit(ids[e], t0, block(t0));
    }
  }
  service.drain();

  TextTable table({"event", "Mw", "alert @", "peak @", "lead", "q err",
                   "ticks"});
  for (std::size_t e = 0; e < n_events; ++e) {
    const EventSnapshot s = service.close_event(ids[e]);
    const std::size_t peak_idx = static_cast<std::size_t>(
        std::max_element(q_true[e].begin(), q_true[e].end()) -
        q_true[e].begin());
    const double peak_seconds =
        static_cast<double>(peak_idx / config.num_gauges + 1) * dt;
    const double alert_seconds = static_cast<double>(s.alert_tick) * dt;
    char ticks[32];
    std::snprintf(ticks, sizeof(ticks), "%zu/%zu", s.ticks_assimilated, nt);
    table.row()
        .cell(specs[e].name)
        .cell(specs[e].magnitude, 2)
        .cell(s.alert ? format_duration(alert_seconds) : "-")
        .cell(format_duration(peak_seconds))
        .cell(s.alert && peak_seconds > alert_seconds
                  ? format_duration(peak_seconds - alert_seconds)
                  : "-")
        .cell(DigitalTwin::relative_error(s.forecast.mean, q_true[e]), 3)
        .cell(ticks);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("telemetry: %s\n", service.telemetry().str().c_str());

  // TSUNAMI_METRICS=path: one scrape of every layer — service counters and
  // the push-latency histogram, pool worker stats, and the warm twin's phase
  // timers — through the single Prometheus export path.
  if (const char* metrics_path = std::getenv("TSUNAMI_METRICS");
      metrics_path != nullptr && *metrics_path != '\0') {
    obs::MetricsSnapshot snap;
    service.collect_metrics(snap);
    obs::collect_pool(ThreadPool::global(), snap);
    obs::collect_timers(engine->twin().timers(), snap);
    const std::string text = obs::prometheus_text(snap);
    if (std::FILE* f = std::fopen(metrics_path, "w")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("[obs] wrote %zu metric samples to %s\n", snap.samples.size(),
                  metrics_path);
    } else {
      std::fprintf(stderr, "[obs] could not write metrics to %s\n",
                   metrics_path);
    }
  }

  std::remove(bundle_path.c_str());
  return 0;
}
