// Streaming early-warning monitor: the online phase as it would actually run
// in a warning center. Observations arrive one interval at a time; each
// arrival is pushed into a StreamingAssimilator, which maintains the *exact*
// truncated posterior — rolling MAP estimate, rolling QoI forecast, and
// credible intervals that shrink as data accumulates — with no PDE solves
// and no refactorization (src/core/streaming_assimilator.hpp).
//
//   $ ./examples/realtime_monitor
//
// The replay is in simulated real time: each tick prints the data-time
// stamp, the per-tick assimilation latency (the compute budget is the
// observation cadence — here seconds; paper: 1 s), the rolling peak
// wave-height forecast with its 95% band, and the alert state. An alert is
// raised once the best-estimate (posterior-mean) peak forecast exceeds the
// warning threshold on two consecutive ticks — the debounced best-estimate
// criterion operational centers use — and the lead time over the wave's
// actual arrival is reported at the end. (At seed scale the credible band
// stays prior-dominated — a handful of sensors over a short window only
// weakly contracts the QoI variance — so a band-based criterion cannot fire
// here; the band and its tick-by-tick contraction are printed anyway, and
// at paper scale, 600 sensors x 420 s, the same code alerts on the lower
// bound.) For contrast, the naive alternative (full-window operator Q on
// zero-padded data, the pre-streaming front door) is shown alongside: its
// mean is biased and erratic early in the event and its intervals never
// tighten.

#include <algorithm>
#include <cstdio>

#include "core/digital_twin.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace tsunami;

  // --- offline (in production: done once on the HPC system) ---------------
  TwinConfig config = TwinConfig::tiny();
  config.num_intervals = 24;  // a longer window makes the sharpening visible
  config.observation_dt = 4.0;
  DigitalTwin twin(config);
  RuptureConfig rupture_cfg;
  Asperity asperity;
  asperity.x0 = 0.3 * config.bathymetry.length_x;
  asperity.y0 = 0.5 * config.bathymetry.length_y;
  asperity.rx = 16e3;
  asperity.ry = 24e3;
  asperity.peak_uplift = 2.2;
  rupture_cfg.asperities.push_back(asperity);
  rupture_cfg.hypocenter_x = asperity.x0;
  rupture_cfg.hypocenter_y = asperity.y0;
  const RuptureScenario scenario(rupture_cfg);
  Rng rng(3);
  const SyntheticEvent event = twin.synthesize(scenario, rng);
  twin.run_offline(event.noise);
  const StreamingEngine engine =
      twin.make_streaming({.track_map = true}, &twin.timers());

  const std::size_t nt = engine.num_ticks();
  const std::size_t nd = engine.block_size();
  const double dt = config.observation_dt;

  std::printf("=== Streaming early-warning monitor ===\n");
  std::printf(
      "window: %zu intervals x %.0f s | sensors: %zu | gauges: %zu | "
      "streaming precompute: %s (once per network)\n\n",
      nt, dt, nd, static_cast<std::size_t>(config.num_gauges),
      format_duration(engine.precompute_seconds()).c_str());

  // Warning threshold: for the demo, half the eventual observed peak (a
  // deployed center uses fixed hazard levels per gauge).
  double peak_true = 0.0;
  std::size_t peak_true_idx = 0;
  for (std::size_t j = 0; j < event.q_true.size(); ++j)
    if (event.q_true[j] > peak_true) {
      peak_true = event.q_true[j];
      peak_true_idx = j;
    }
  const double threshold = 0.5 * peak_true;
  const std::size_t peak_tick = peak_true_idx / config.num_gauges;
  std::printf("warning threshold: %.3f m | true peak %.3f m, reached at "
              "t = %.0f s\n\n",
              threshold, peak_true,
              static_cast<double>(peak_tick + 1) * dt);

  // --- streaming replay -----------------------------------------------------
  StreamingAssimilator assim = engine.start();
  TextTable table({"t [s]", "push", "peak fc [m]", "95% band", "naive Q fc",
                   "state"});
  double alert_seconds = -1.0;
  std::size_t above_threshold_streak = 0;
  for (std::size_t tick = 0; tick < nt; ++tick) {
    assim.push(tick,
               std::span<const double>(event.d_obs).subspan(tick * nd, nd));
    const Forecast fc = assim.forecast();

    // Peak of the rolling forecast and its band; debounced alert on the
    // best-estimate peak.
    std::size_t jmax = 0;
    for (std::size_t j = 0; j < fc.mean.size(); ++j)
      if (fc.mean[j] > fc.mean[jmax]) jmax = j;
    above_threshold_streak =
        fc.mean[jmax] > threshold ? above_threshold_streak + 1 : 0;
    const bool alert = alert_seconds >= 0.0 || above_threshold_streak >= 2;
    if (alert && alert_seconds < 0.0)
      alert_seconds = static_cast<double>(tick + 1) * dt;

    // The naive baseline: full-window Q on zero-padded data.
    const Forecast naive = twin.predictor().predict_prefix(
        std::span<const double>(event.d_obs).first((tick + 1) * nd),
        tick + 1);
    const double naive_peak =
        *std::max_element(naive.mean.begin(), naive.mean.end());

    char band[48];
    std::snprintf(band, sizeof(band), "[%+.3f, %+.3f]", fc.lower95[jmax],
                  fc.upper95[jmax]);
    table.row()
        .cell(static_cast<double>(tick + 1) * dt, 0)
        .cell(format_duration(assim.last_push_seconds()))
        .cell(fc.mean[jmax], 3)
        .cell(band)
        .cell(naive_peak, 3)
        .cell(alert ? (alert_seconds == static_cast<double>(tick + 1) * dt
                           ? ">>> ALERT <<<"
                           : "alert")
                    : "watch");
  }
  std::printf("%s\n", table.str().c_str());

  // --- wrap-up --------------------------------------------------------------
  if (alert_seconds >= 0.0) {
    const double lead =
        static_cast<double>(peak_tick + 1) * dt - alert_seconds;
    if (lead > 0.0) {
      std::printf("ALERT raised at t = %.0f s (best-estimate peak above the "
                  "%.3f m threshold, debounced): %.0f s of warning before "
                  "the peak wave.\n",
                  alert_seconds, threshold, lead);
    } else {
      std::printf("ALERT raised at t = %.0f s — %.0f s AFTER the peak wave "
                  "(no usable lead time; the peak landed inside the "
                  "debounce window).\n",
                  alert_seconds, -lead);
    }
  } else {
    std::printf("no alert: the best-estimate peak never held above %.3f m.\n",
                threshold);
  }
  double prior_w = 0.0, final_w = 0.0;
  for (double s : engine.stddev_after(0)) prior_w += s;
  for (double s : engine.stddev_after(nt)) final_w += s;
  std::printf("credible band contraction over the window: %.1f%% (prior-"
              "dominated at seed scale; grows with sensors x window toward "
              "the paper's setup).\n",
              100.0 * (1.0 - final_w / prior_w));

  // The streaming state at the final tick IS the batch answer.
  const InversionResult batch = twin.infer(event.d_obs);
  const double q_diff =
      DigitalTwin::relative_error(assim.forecast().mean, batch.forecast.mean);
  const double m_diff =
      DigitalTwin::relative_error(assim.map_estimate(), batch.m_map);
  std::printf(
      "final-tick check vs batch infer(): forecast rel diff %.2e, m_map rel "
      "diff %.2e (exact truncated posterior, not an approximation).\n",
      q_diff, m_diff);
  std::printf(
      "mean push latency %s against a %.0f s observation cadence — the "
      "assimilator keeps up in real time on a laptop (paper SecVIII).\n",
      format_duration(assim.total_push_seconds() / static_cast<double>(nt))
          .c_str(),
      dt);
  return 0;
}
