// "Deployment entirely without any HPC infrastructure" (paper SecVIII):
// once the data-to-QoI operator Q and the QoI credible intervals are
// precomputed, forecasting reduces to one small dense matvec per data
// window — runnable on any machine in the warning center.
//
//   $ ./examples/realtime_monitor
//
// This example builds the twin once (standing in for the offline HPC
// phases), exports Q, then simulates a real-time monitoring loop: pressure
// observations stream in one interval at a time; at each step the monitor
// forecasts final wave heights from the data received SO FAR (later
// observations zero-padded), showing how the forecast sharpens as the wave
// field evolves — the early-warning latency story of the paper.

#include <cstdio>

#include "core/digital_twin.hpp"
#include "linalg/blas.hpp"
#include "util/io.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace tsunami;

  // --- offline (in production: done once on the HPC system) ---------------
  TwinConfig config = TwinConfig::tiny();
  DigitalTwin twin(config);
  RuptureConfig rupture_cfg;
  Asperity asperity;
  asperity.x0 = 0.3 * config.bathymetry.length_x;
  asperity.y0 = 0.5 * config.bathymetry.length_y;
  asperity.rx = 16e3;
  asperity.ry = 24e3;
  asperity.peak_uplift = 2.2;
  rupture_cfg.asperities.push_back(asperity);
  rupture_cfg.hypocenter_x = asperity.x0;
  rupture_cfg.hypocenter_y = asperity.y0;
  const RuptureScenario scenario(rupture_cfg);
  Rng rng(3);
  const SyntheticEvent event = twin.synthesize(scenario, rng);
  twin.run_offline(event.noise);

  // The exported operator: a dense (Nq Nt) x (Nd Nt) matrix. In production
  // this is all the warning center needs — ship it through the binary
  // archive format and reload it as the "deployed" copy.
  std::printf("=== Real-time monitor (no-HPC deployment mode) ===\n");
  const std::string q_path = "artifacts_q_operator.bin";
  save_matrix(q_path, twin.predictor().data_to_qoi());
  const Matrix q_op = load_matrix(q_path);  // what the warning center runs
  std::remove(q_path.c_str());
  std::printf("exported + reloaded data-to-QoI operator Q: %zu x %zu (%s)\n\n",
              q_op.rows(), q_op.cols(),
              format_bytes(static_cast<double>(q_op.size()) * 8).c_str());

  // --- online monitoring loop ----------------------------------------------
  const std::size_t nt = twin.time_grid().num_intervals;
  const std::size_t nd = twin.sensors().num_outputs();
  const std::size_t nq = twin.gauges().num_outputs();

  std::vector<double> window(nd * nt, 0.0);  // zero-padded future
  TextTable table({"t [s]", "update latency", "peak forecast eta [m]",
                   "peak true eta [m] (final)"});

  double peak_true = 0.0;
  for (double q : event.q_true) peak_true = std::max(peak_true, q);

  for (std::size_t arrived = 1; arrived <= nt; ++arrived) {
    // New observation block arrives from the cabled array.
    for (std::size_t j = 0; j < nd; ++j) {
      const std::size_t idx = (arrived - 1) * nd + j;
      window[idx] = event.d_obs[idx];
    }
    // Forecast from the data so far: one dense matvec.
    Stopwatch watch;
    std::vector<double> q(nq * nt);
    gemv(q_op, window, std::span<double>(q));
    const double latency = watch.seconds();

    double peak = 0.0;
    for (double v : q) peak = std::max(peak, v);
    if (arrived % 2 == 0 || arrived == nt) {
      table.row()
          .cell(static_cast<double>(arrived) *
                    twin.time_grid().interval(),
                0)
          .cell(format_duration(latency))
          .cell(peak, 3)
          .cell(peak_true, 3);
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Each update is a single %zux%zu matvec -- microseconds on a "
              "laptop, no PDE solves, no cluster (paper SecVIII).\n",
              q_op.rows(), q_op.cols());
  return 0;
}
