// Prometheus exposition-format checker for scraped /metrics output.
//
// Reads an exposition text from stdin (or a file argument), runs it through
// obs::validate_prometheus — the same checker tests/test_obs.cpp trusts —
// and exits 0 iff it parses cleanly. CI pipes `curl :9109/metrics` through
// this instead of re-implementing a validator in shell:
//
//   $ curl -s localhost:9109/metrics | ./examples/validate_prom
//   ok: 142 lines

#include <cstdio>
#include <string>

#include "obs/metrics.hpp"

int main(int argc, char** argv) {
  std::string text;
  std::FILE* in = stdin;
  if (argc > 1) {
    in = std::fopen(argv[1], "r");
    if (in == nullptr) {
      std::fprintf(stderr, "validate_prom: cannot open %s\n", argv[1]);
      return 2;
    }
  }
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) text.append(buf, n);
  if (in != stdin) std::fclose(in);

  if (text.empty()) {
    std::fprintf(stderr, "validate_prom: empty input\n");
    return 1;
  }
  const std::string error = tsunami::obs::validate_prometheus(text);
  if (!error.empty()) {
    std::fprintf(stderr, "validate_prom: INVALID: %s\n", error.c_str());
    return 1;
  }
  std::size_t lines = 0;
  for (char c : text)
    if (c == '\n') ++lines;
  std::printf("ok: %zu lines\n", lines);
  return 0;
}
