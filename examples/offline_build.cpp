// The HPC side of the paper's deployment split (SecVIII): run Phases 1-3
// once, then ship their products as ONE versioned artifact bundle. The
// warning center boots from that bundle alone — see the paired
// examples/warning_center.cpp, which must be run after this one:
//
//   $ ./examples/offline_build [dir]     # default dir: twin_artifacts
//   $ ./examples/warning_center [dir]
//
// Besides the bundle, this driver writes a telemetry replay (the synthetic
// event's noisy observations and true wave heights) so the warning-center
// example has a realistic feed to assimilate. In a deployment those bytes
// come off the seafloor cable in real time; everything else the warning
// center needs is in the bundle.

#include <cstdio>
#include <filesystem>

#include "core/digital_twin.hpp"
#include "util/io.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace tsunami;

  const std::string dir = argc > 1 ? argv[1] : "twin_artifacts";
  std::filesystem::create_directories(dir);

  // The same event/window as examples/realtime_monitor.cpp, so the two
  // sides of the split stay comparable with the single-process demo. The
  // Phase 1 outer loop runs its adjoint solves in parallel: producing a
  // bundle should itself be fast (results are bit-identical to serial).
  TwinConfig config = TwinConfig::tiny();
  config.num_intervals = 24;
  config.observation_dt = 4.0;
  config.phase1_parallel = true;

  std::printf("=== Offline build (HPC side of the deployment split) ===\n");
  Stopwatch boot;
  DigitalTwin twin(config);

  RuptureConfig rupture_cfg;
  Asperity asperity;
  asperity.x0 = 0.3 * config.bathymetry.length_x;
  asperity.y0 = 0.5 * config.bathymetry.length_y;
  asperity.rx = 16e3;
  asperity.ry = 24e3;
  asperity.peak_uplift = 2.2;
  rupture_cfg.asperities.push_back(asperity);
  rupture_cfg.hypocenter_x = asperity.x0;
  rupture_cfg.hypocenter_y = asperity.y0;
  Rng rng(3);
  const SyntheticEvent event = twin.synthesize(RuptureScenario(rupture_cfg), rng);

  twin.run_offline(event.noise);
  const double offline_seconds = boot.seconds();

  // One file carries the whole online phase (bundle built once; at paper
  // scale its payload is the dominant memory object).
  const std::string bundle_path = dir + "/cascadia.bundle";
  Stopwatch save_watch;
  const ArtifactBundle bundle = twin.make_bundle();
  save_bundle(bundle_path, bundle);
  const double save_seconds = save_watch.seconds();

  // Telemetry replay for the warning-center example (NOT part of the
  // bundle: in a deployment this is the live sensor feed).
  save_vector(dir + "/telemetry_d_obs.bin", event.d_obs);
  save_vector(dir + "/telemetry_q_true.bin", event.q_true);
  TextTable table({"section", "shape", "MB"});
  for (const auto& s : bundle.sections()) {
    std::string shape;
    for (std::size_t i = 0; i < s.dims.size(); ++i) {
      // Appends (not char* + string&& operator+) dodge a GCC 12 -Wrestrict
      // false positive inlined from libstdc++.
      if (i != 0) shape += 'x';
      shape += std::to_string(s.dims[i]);
    }
    table.row().cell(s.name).cell(shape).cell(
        static_cast<double>(s.data.size() * sizeof(double)) / 1e6, 3);
  }
  std::printf("%s\n", table.str().c_str());

  std::printf(
      "offline phases (incl. %zu+%zu adjoint solves, K factorization): %s\n",
      config.num_sensors, config.num_gauges,
      format_duration(offline_seconds).c_str());
  std::printf("bundle written to %s: %.3f MB in %s (fingerprint %016llx)\n",
              bundle_path.c_str(),
              static_cast<double>(
                  std::filesystem::file_size(bundle_path)) / 1e6,
              format_duration(save_seconds).c_str(),
              static_cast<unsigned long long>(bundle.fingerprint));
  std::printf(
      "ship the %s directory to the warning center, then run "
      "./examples/warning_center %s\n",
      dir.c_str(), dir.c_str());
  return 0;
}
