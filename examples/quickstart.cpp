// Quickstart: build a tsunami digital twin for a small synthetic basin,
// simulate a rupture, and run the real-time Bayesian inversion + forecast.
//
//   $ ./examples/quickstart
//
// This walks the paper's four phases end to end at laptop scale:
//   Phase 1: adjoint wave propagations -> p2o/p2q Toeplitz maps
//   Phase 2: data-space Hessian K + Cholesky
//   Phase 3: QoI covariance + data-to-QoI map
//   Phase 4: (online, per event) infer seafloor motion, forecast wave heights

#include <cstdio>

#include "core/digital_twin.hpp"
#include "linalg/blas.hpp"
#include "util/table.hpp"

int main() {
  using namespace tsunami;

  // 1. Configure a small flat-bottomed basin twin (see TwinConfig for all
  //    the knobs; tiny() keeps this demo under a minute).
  TwinConfig config = TwinConfig::tiny();
  std::printf("Building digital twin: %zux%zux%zu hex mesh, order %zu, "
              "%zu sensors, %zu gauges, %zu observation intervals\n",
              config.mesh_nx, config.mesh_ny, config.mesh_nz, config.order,
              config.num_sensors, config.num_gauges, config.num_intervals);
  DigitalTwin twin(config);
  std::printf("  states: %zu  parameters: %zu  observations: %zu\n",
              twin.model().state_dim(), twin.parameter_dim(),
              twin.data_dim());

  // 2. Simulate a "true" earthquake with the kinematic rupture model and
  //    generate noisy seafloor pressure observations (1% relative noise).
  RuptureConfig rupture_cfg;
  Asperity asperity;
  asperity.x0 = 0.35 * config.bathymetry.length_x;
  asperity.y0 = 0.50 * config.bathymetry.length_y;
  asperity.rx = 15e3;
  asperity.ry = 22e3;
  asperity.peak_uplift = 2.0;
  rupture_cfg.asperities.push_back(asperity);
  rupture_cfg.hypocenter_x = asperity.x0;
  rupture_cfg.hypocenter_y = asperity.y0;
  const RuptureScenario scenario(rupture_cfg);

  Rng rng(7);
  std::printf("\nSynthesizing rupture event (forward PDE solve)...\n");
  const SyntheticEvent event = twin.synthesize(scenario, rng);
  std::printf("  peak sensor pressure: %.1f Pa, noise sigma: %.1f Pa\n",
              amax(event.d_true), event.noise.sigma);

  // 3. Offline phases (one-time precomputation).
  std::printf("\nRunning offline phases 1-3...\n");
  twin.run_offline(event.noise);
  for (const auto& name : twin.timers().names())
    std::printf("  %-28s %s\n", name.c_str(),
                format_duration(twin.timers().total(name)).c_str());

  // 4. Online phase: real-time inference and forecasting.
  std::printf("\nPhase 4 (online, real-time):\n");
  const InversionResult result = twin.infer(event.d_obs);
  std::printf("  infer %zu parameters: %s\n", result.m_map.size(),
              format_duration(result.infer_seconds).c_str());
  std::printf("  predict %zu QoI:      %s\n", result.forecast.mean.size(),
              format_duration(result.predict_seconds).c_str());

  // 5. Report quality.
  const auto b_true = twin.displacement_field(event.m_true);
  const auto b_map = twin.displacement_field(result.m_map);
  std::printf("\nInversion quality:\n");
  std::printf("  displacement relative L2 error: %.3f\n",
              DigitalTwin::relative_error(b_map, b_true));

  TextTable table({"gauge", "t [s]", "true eta [m]", "predicted [m]",
                   "95% CI half-width [m]"});
  const auto& fc = result.forecast;
  const std::size_t t_last = fc.num_times - 1;
  for (std::size_t g = 0; g < fc.num_gauges; ++g) {
    table.row()
        .cell(static_cast<long>(g))
        .cell(twin.time_grid().total_time(), 0)
        .cell(event.q_true[t_last * fc.num_gauges + g], 4)
        .cell(fc.at(fc.mean, t_last, g), 4)
        .cell(1.96 * fc.at(fc.stddev, t_last, g), 4);
  }
  std::printf("\nFinal-time wave-height forecasts:\n%s", table.str().c_str());
  return 0;
}
