// The warning-center side of the paper's deployment split (SecVIII): boot
// Phase 4 from the shipped artifact bundle — no HPC, no PDE solves, no
// factorization — and run the streaming alert loop on the live feed. Run
// examples/offline_build first; it writes the bundle and a telemetry replay:
//
//   $ ./examples/offline_build [dir]     # HPC side, done once
//   $ ./examples/warning_center [dir]    # this program; default dir:
//                                        # twin_artifacts
//
// The boot is a warm start: DigitalTwin::load_offline verifies the bundle's
// checksum and config fingerprint, rebuilds the posterior/predictor from
// the shipped Cholesky factor and Q, and is ready to stream in milliseconds
// (bench/bench_warmstart.cpp measures the ratio to a cold boot). The timer
// registry proves the claim at the end: zero adjoint-solve and zero
// Hessian-factorization samples.

#include <algorithm>
#include <cstdio>

#include "core/digital_twin.hpp"
#include "util/io.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace tsunami;

  const std::string dir = argc > 1 ? argv[1] : "twin_artifacts";
  const std::string bundle_path = dir + "/cascadia.bundle";

  std::printf("=== Warning center (online side of the deployment split) ===\n");
  Stopwatch boot;
  DigitalTwin twin = DigitalTwin::load_offline(bundle_path);
  const StreamingEngine engine =
      twin.make_streaming({.track_map = true}, &twin.timers());
  const double boot_seconds = boot.seconds();

  const std::size_t nt = engine.num_ticks();
  const std::size_t nd = engine.block_size();
  const double dt = twin.config().observation_dt;
  std::printf(
      "warm boot from %s: %s to streaming-ready (%zu sensors x %zu ticks, "
      "%zu parameters)\n",
      bundle_path.c_str(), format_duration(boot_seconds).c_str(), nd, nt,
      engine.parameter_dim());
  std::printf(
      "PDE solves during boot: %ld adjoint, %ld Hessian factorizations "
      "(warm start skips Phases 1-3 entirely)\n\n",
      twin.timers().count("Adjoint p2o") +
          twin.timers().count("Adjoint p2o (parallel)"),
      twin.timers().count("factorize K"));

  // The telemetry replay stands in for the live seafloor-cable feed.
  const std::vector<double> d_obs = load_vector(dir + "/telemetry_d_obs.bin");
  const std::vector<double> q_true = load_vector(dir + "/telemetry_q_true.bin");
  if (d_obs.size() != engine.data_dim()) {
    std::printf("telemetry does not match the bundle's sensor network "
                "(got %zu values, need %zu) — re-run offline_build\n",
                d_obs.size(), engine.data_dim());
    return 1;
  }

  // Demo warning threshold: half the eventual observed peak (a deployed
  // center uses fixed hazard levels per gauge).
  double peak_true = 0.0;
  std::size_t peak_true_idx = 0;
  for (std::size_t j = 0; j < q_true.size(); ++j)
    if (q_true[j] > peak_true) {
      peak_true = q_true[j];
      peak_true_idx = j;
    }
  const double threshold = 0.5 * peak_true;
  const std::size_t peak_tick = peak_true_idx / twin.config().num_gauges;

  // --- streaming alert loop (the PR-2 real-time front door) -----------------
  StreamingAssimilator assim = engine.start();
  TextTable table({"t [s]", "push", "peak fc [m]", "95% band", "state"});
  double alert_seconds = -1.0;
  std::size_t above_threshold_streak = 0;
  for (std::size_t tick = 0; tick < nt; ++tick) {
    assim.push(tick, std::span<const double>(d_obs).subspan(tick * nd, nd));
    const Forecast fc = assim.forecast();

    std::size_t jmax = 0;
    for (std::size_t j = 0; j < fc.mean.size(); ++j)
      if (fc.mean[j] > fc.mean[jmax]) jmax = j;
    above_threshold_streak =
        fc.mean[jmax] > threshold ? above_threshold_streak + 1 : 0;
    const bool alert = alert_seconds >= 0.0 || above_threshold_streak >= 2;
    if (alert && alert_seconds < 0.0)
      alert_seconds = static_cast<double>(tick + 1) * dt;

    char band[48];
    std::snprintf(band, sizeof(band), "[%+.3f, %+.3f]", fc.lower95[jmax],
                  fc.upper95[jmax]);
    table.row()
        .cell(static_cast<double>(tick + 1) * dt, 0)
        .cell(format_duration(assim.last_push_seconds()))
        .cell(fc.mean[jmax], 3)
        .cell(band)
        .cell(alert ? (alert_seconds == static_cast<double>(tick + 1) * dt
                           ? ">>> ALERT <<<"
                           : "alert")
                    : "watch");
  }
  std::printf("%s\n", table.str().c_str());

  if (alert_seconds >= 0.0) {
    const double lead = static_cast<double>(peak_tick + 1) * dt - alert_seconds;
    if (lead > 0.0) {
      std::printf("ALERT raised at t = %.0f s: %.0f s of warning before the "
                  "peak wave — from a machine that never ran a PDE solve.\n",
                  alert_seconds, lead);
    } else {
      std::printf("ALERT raised at t = %.0f s — %.0f s after the peak wave "
                  "(the peak landed inside the debounce window).\n",
                  alert_seconds, -lead);
    }
  } else {
    std::printf("no alert: the best-estimate peak never held above %.3f m.\n",
                threshold);
  }

  const Forecast final_fc = assim.forecast();
  std::printf(
      "final forecast vs truth: rel err %.3f | mean push latency %s against "
      "a %.0f s cadence.\n",
      DigitalTwin::relative_error(final_fc.mean, q_true),
      format_duration(assim.total_push_seconds() / static_cast<double>(nt))
          .c_str(),
      dt);
  return 0;
}
