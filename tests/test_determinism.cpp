// The determinism property suite: every parallel_for-powered result in the
// twin must be BITWISE identical at any worker count. The pool's contract
// makes this testable once, centrally: the chunk grid depends only on the
// item count (never on the worker count), chunks write disjoint data, and
// reductions combine per-chunk partials serially in chunk order — so worker
// count and steal order can change WHO computes a chunk but never WHAT is
// computed or in which order partials meet. Each test recomputes a result
// at the parameterized worker count and compares it bitwise (EXPECT_EQ on
// doubles, no tolerance) against a reference computed at 1 worker in
// SetUpTestSuite. This suite replaces the scattered per-suite thread-count
// reproducibility tests (e.g. the old test_scenario_bank copy).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/digital_twin.hpp"
#include "core/scenario_bank.hpp"
#include "linalg/blas.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "toeplitz/block_toeplitz.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

/// Worker counts under test, deduplicated: hardware_concurrency() may equal
/// one of the fixed counts on small machines, and duplicate parameter names
/// are a gtest registration error.
std::vector<std::size_t> worker_counts() {
  std::vector<std::size_t> counts = {
      1, 2, 4, std::max<std::size_t>(1, std::thread::hardware_concurrency())};
  std::vector<std::size_t> unique;
  for (std::size_t c : counts)
    if (std::find(unique.begin(), unique.end(), c) == unique.end())
      unique.push_back(c);
  return unique;
}

class WorkerCountTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  static constexpr unsigned kBankSize = 4;
  static constexpr unsigned kBatch = 4;

  static void SetUpTestSuite() {
    // All references are computed serially: 1 worker is the ground truth
    // every other worker count must reproduce bit-for-bit.
    ThreadPool::global().resize(1);

    twin_ = new DigitalTwin(TwinConfig::tiny());
    RuptureConfig rc;
    Asperity a;
    a.x0 = 0.3 * twin_->mesh().length_x();
    a.y0 = 0.5 * twin_->mesh().length_y();
    a.rx = 16e3;
    a.ry = 24e3;
    a.peak_uplift = 2.0;
    rc.asperities.push_back(a);
    rc.hypocenter_x = a.x0;
    rc.hypocenter_y = a.y0;
    Rng rng(5);
    event_ = new SyntheticEvent(twin_->synthesize(RuptureScenario(rc), rng));
    twin_->run_offline(event_->noise);
    engine_ = new StreamingEngine(twin_->make_streaming({.track_map = true}));

    ref_infer_ = new InversionResult(twin_->infer(event_->d_obs));

    ScenarioBank bank(*twin_, ScenarioBank::spread(*twin_, kBankSize));
    bank.synthesize(7);
    ref_bank_obs_ = new std::vector<std::vector<double>>();
    for (const SyntheticEvent& e : bank.events())
      ref_bank_obs_->push_back(e.d_obs);
    const StreamingSweepReport sweep = bank.run_streaming(*engine_, true);
    ref_sweep_ = new std::vector<std::pair<std::size_t, double>>();
    for (const auto& s : sweep.scenarios)
      ref_sweep_->emplace_back(s.confident_tick, s.final_forecast_error);

    ref_gstar_ = new Matrix(gstar_many());
    ref_push_ = new std::vector<Forecast>(serial_push_forecasts());
    ref_maps_ = new std::vector<std::vector<double>>(serial_push_maps());

    const auto v = big_vectors();
    ref_dot_ = dot(v.first, v.second);
    ref_amax_ = amax(v.first);
  }

  static void TearDownTestSuite() {
    ThreadPool::global().resize(0);  // back to the environment default
    delete ref_maps_;
    delete ref_push_;
    delete ref_gstar_;
    delete ref_sweep_;
    delete ref_bank_obs_;
    delete ref_infer_;
    delete engine_;
    delete event_;
    delete twin_;
    ref_maps_ = nullptr;
    ref_push_ = nullptr;
    ref_gstar_ = nullptr;
    ref_sweep_ = nullptr;
    ref_bank_obs_ = nullptr;
    ref_infer_ = nullptr;
    engine_ = nullptr;
    event_ = nullptr;
    twin_ = nullptr;
  }

  void SetUp() override { ThreadPool::global().resize(GetParam()); }

  /// Per-event observations: the shared noiseless data re-noised from a
  /// per-event stream (same construction as the service tests).
  static std::vector<double> obs(unsigned e) {
    std::vector<double> d = event_->d_true;
    Rng rng(1000 + e);
    for (auto& v : d) v += event_->noise.sigma * rng.normal();
    return d;
  }

  static std::span<const double> block(const std::vector<double>& d,
                                       std::size_t t) {
    const std::size_t nd = engine_->block_size();
    return std::span<const double>(d).subspan(t * nd, nd);
  }

  /// Multi-RHS G* against 3 random data-space columns.
  static Matrix gstar_many() {
    const Posterior& post = twin_->posterior();
    Rng rng(29);
    Matrix y(event_->d_obs.size(), 3);
    for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] = rng.normal();
    Matrix m(event_->m_true.size(), 3);
    post.apply_gstar_many(y, m);
    return m;
  }

  /// kBatch full serial replays (the push_many reference).
  static std::vector<Forecast> serial_push_forecasts() {
    std::vector<Forecast> out;
    for (unsigned e = 0; e < kBatch; ++e) {
      StreamingAssimilator assim = engine_->start();
      const std::vector<double> d = obs(e);
      for (std::size_t t = 0; t < engine_->num_ticks(); ++t)
        assim.push(t, block(d, t));
      out.push_back(assim.forecast());
    }
    return out;
  }

  static std::vector<std::vector<double>> serial_push_maps() {
    std::vector<std::vector<double>> out;
    for (unsigned e = 0; e < kBatch; ++e) {
      StreamingAssimilator assim = engine_->start();
      const std::vector<double> d = obs(e);
      for (std::size_t t = 0; t < engine_->num_ticks(); ++t)
        assim.push(t, block(d, t));
      out.push_back(assim.map_estimate());
    }
    return out;
  }

  /// Vectors large enough to clear the BLAS parallel threshold (1 << 14).
  static std::pair<std::vector<double>, std::vector<double>> big_vectors() {
    Rng rng(31);
    const std::size_t n = std::size_t{1} << 16;
    return {rng.normal_vector(n), rng.normal_vector(n)};
  }

  static DigitalTwin* twin_;
  static SyntheticEvent* event_;
  static StreamingEngine* engine_;
  static InversionResult* ref_infer_;
  static std::vector<std::vector<double>>* ref_bank_obs_;
  static std::vector<std::pair<std::size_t, double>>* ref_sweep_;
  static Matrix* ref_gstar_;
  static std::vector<Forecast>* ref_push_;
  static std::vector<std::vector<double>>* ref_maps_;
  static double ref_dot_;
  static double ref_amax_;
};

DigitalTwin* WorkerCountTest::twin_ = nullptr;
SyntheticEvent* WorkerCountTest::event_ = nullptr;
StreamingEngine* WorkerCountTest::engine_ = nullptr;
InversionResult* WorkerCountTest::ref_infer_ = nullptr;
std::vector<std::vector<double>>* WorkerCountTest::ref_bank_obs_ = nullptr;
std::vector<std::pair<std::size_t, double>>* WorkerCountTest::ref_sweep_ =
    nullptr;
Matrix* WorkerCountTest::ref_gstar_ = nullptr;
std::vector<Forecast>* WorkerCountTest::ref_push_ = nullptr;
std::vector<std::vector<double>>* WorkerCountTest::ref_maps_ = nullptr;
double WorkerCountTest::ref_dot_ = 0.0;
double WorkerCountTest::ref_amax_ = 0.0;

TEST_P(WorkerCountTest, OfflineBuildAndInferenceAreInvariant) {
  // The whole pipeline end to end: phase 1-3 (parallel row builds, FFT
  // batches, factorization) on a FRESH twin, then phase 4 inference —
  // bitwise against the 1-worker reference.
  DigitalTwin twin(TwinConfig::tiny());
  twin.run_offline(event_->noise);
  const InversionResult got = twin.infer(event_->d_obs);
  EXPECT_EQ(got.forecast.mean, ref_infer_->forecast.mean);
  EXPECT_EQ(got.forecast.stddev, ref_infer_->forecast.stddev);
  EXPECT_EQ(got.forecast.lower95, ref_infer_->forecast.lower95);
  EXPECT_EQ(got.forecast.upper95, ref_infer_->forecast.upper95);
}

TEST_P(WorkerCountTest, ScenarioBankSynthesizeAndSweepAreInvariant) {
  ScenarioBank bank(*twin_, ScenarioBank::spread(*twin_, kBankSize));
  bank.synthesize(7);
  ASSERT_EQ(bank.events().size(), ref_bank_obs_->size());
  for (std::size_t i = 0; i < bank.events().size(); ++i)
    EXPECT_EQ(bank.events()[i].d_obs, (*ref_bank_obs_)[i]) << "scenario " << i;

  const StreamingSweepReport sweep = bank.run_streaming(*engine_, true);
  ASSERT_EQ(sweep.scenarios.size(), ref_sweep_->size());
  for (std::size_t i = 0; i < sweep.scenarios.size(); ++i) {
    EXPECT_EQ(sweep.scenarios[i].confident_tick, (*ref_sweep_)[i].first);
    EXPECT_EQ(sweep.scenarios[i].final_forecast_error,
              (*ref_sweep_)[i].second);
  }
}

TEST_P(WorkerCountTest, MultiRhsAppliesAreInvariant) {
  // apply_gstar_many drives the full multi-RHS FFT stack (BlockToeplitz
  // apply_many over the pool's slotted loops).
  const Matrix m = gstar_many();
  ASSERT_EQ(m.size(), ref_gstar_->size());
  for (std::size_t i = 0; i < m.size(); ++i)
    EXPECT_EQ(m.data()[i], ref_gstar_->data()[i]) << "element " << i;
}

TEST_P(WorkerCountTest, BatchedCrossEventPushMatchesSerialBitwise) {
  // K tick-aligned events fused through push_many at every tick must equal
  // K independent serial replays — at this worker count AND bitwise equal
  // to the 1-worker reference.
  std::vector<std::vector<double>> d;
  std::vector<StreamingAssimilator> batch;
  for (unsigned e = 0; e < kBatch; ++e) {
    d.push_back(obs(e));
    batch.push_back(engine_->start());
  }
  std::vector<StreamingAssimilator*> evs;
  for (auto& b : batch) evs.push_back(&b);
  for (std::size_t t = 0; t < engine_->num_ticks(); ++t) {
    std::vector<std::span<const double>> blocks;
    blocks.reserve(kBatch);
    for (unsigned e = 0; e < kBatch; ++e) blocks.push_back(block(d[e], t));
    StreamingAssimilator::push_many(evs, t, blocks);
  }
  for (unsigned e = 0; e < kBatch; ++e) {
    const Forecast f = batch[e].forecast();
    EXPECT_EQ(f.mean, (*ref_push_)[e].mean) << "event " << e;
    EXPECT_EQ(f.stddev, (*ref_push_)[e].stddev) << "event " << e;
    EXPECT_EQ(batch[e].map_estimate(), (*ref_maps_)[e]) << "event " << e;
  }
}

TEST_P(WorkerCountTest, ReductionsAreInvariant) {
  // dot/amax combine per-chunk partials serially in chunk order: the sum
  // tree is fixed by n alone, so the rounded result is exact-equal.
  const auto v = big_vectors();
  EXPECT_EQ(dot(v.first, v.second), ref_dot_);
  EXPECT_EQ(amax(v.first), ref_amax_);
  const double s =
      parallel_reduce_sum(v.first.size(), [&](std::size_t i) {
        return v.first[i] * v.second[i];
      });
  EXPECT_EQ(s, ref_dot_);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, WorkerCountTest,
                         ::testing::ValuesIn(worker_counts()),
                         [](const auto& param_info) {
                           return "workers" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace tsunami
