// Tests for the persistent work-stealing thread pool (src/parallel/): pool
// lifecycle under load, exception propagation out of parallel loops (and
// that the pool survives it), nested parallel_for without deadlock, fire-
// and-forget submit under heavy oversubscription, a steal-heavy stress that
// proves work actually migrates between deques, and resize semantics. This
// suite is part of the ThreadSanitizer CI job: the deque and the sleep
// protocol are exactly the code TSan must see clean.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace tsunami {
namespace {

TEST(ThreadPoolTest, LifecycleUnderLoad) {
  // Construct/destroy repeatedly with jobs in flight: the dtor must join
  // cleanly whether workers are sleeping, running, or mid-steal.
  for (int round = 0; round < 5; ++round) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 64; ++i)
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 64);
  }
}

TEST(ThreadPoolTest, RunExecutesEveryItemExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kItems = 1000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.run(kItems, [&](std::size_t i, std::size_t slot) {
    EXPECT_LT(slot, pool.num_threads());
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  constexpr std::size_t kN = 100000;
  std::vector<unsigned char> hit(kN, 0);
  parallel_for(kN, [&](std::size_t i) { hit[i]++; });
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(hit[i], 1) << "index " << i;
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  // The first exception thrown by any chunk must reach the caller; the
  // remaining items are abandoned, workers return to the pool, and the
  // SAME pool keeps serving loops afterwards.
  EXPECT_THROW(
      parallel_for(10000,
                   [](std::size_t i) {
                     if (i == 4321)
                       throw std::runtime_error("poisoned item");
                   }),
      std::runtime_error);

  double s = parallel_reduce_sum(1000, [](std::size_t) { return 1.0; });
  EXPECT_EQ(s, 1000.0);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A loop body that launches another parallel loop: inner loops must make
  // progress even with every worker already inside the outer loop. The
  // claim-execute engine never blocks a worker on someone else's chunk, so
  // nesting is a DAG walk, not a thread handoff.
  std::atomic<std::size_t> total{0};
  parallel_for(16, [&](std::size_t) {
    parallel_for(64, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 16u * 64u);
}

TEST(ThreadPoolTest, OversubscribedSubmitDrains) {
  // Far more jobs than workers, submitted from several external threads at
  // once (all landing in the injection queue): every job runs exactly once
  // and wait_idle observes completion.
  ThreadPool pool(4);
  constexpr int kJobs = 1000;
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  for (int p = 0; p < 4; ++p) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kJobs / 4; ++i)
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kJobs);
}

TEST(ThreadPoolTest, WorkMigratesBetweenDeques) {
  // Steal-heavy stress: one parent job fans 512 children into ITS OWN
  // deque (worker-local push), so the only way the other three workers can
  // participate is by stealing. Assert they did.
  ThreadPool pool(4);
  const std::size_t steals_before = pool.steal_count();
  std::atomic<int> ran{0};
  std::atomic<bool> done{false};
  pool.submit([&] {
    for (int i = 0; i < 512; ++i) {
      pool.submit([&ran] {
        // A touch of work so children outlive the parent's submit loop.
        volatile double x = 1.0;
        for (int k = 0; k < 2000; ++k) x = x * 1.0000001 + 1e-9;
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    done.store(true, std::memory_order_release);
  });
  pool.wait_idle();
  EXPECT_TRUE(done.load(std::memory_order_acquire));
  EXPECT_EQ(ran.load(), 512);
  EXPECT_GT(pool.steal_count(), steals_before);
}

TEST(ThreadPoolTest, ResizePreservesPendingJobs) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  // Jobs still queued (or mid-run) when the worker set is torn down must be
  // salvaged into the new workers, not dropped.
  pool.resize(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);

  pool.resize(2);
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 101);
}

TEST(ThreadPoolTest, ChunkGridIsIndependentOfWorkerCount) {
  // The determinism contract rests on this: the chunk grid is a pure
  // function of n (and the machine), never of the worker count.
  for (std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                        std::size_t{1000}, std::size_t{1} << 20}) {
    const std::size_t c = loop_chunks(n);
    EXPECT_GE(c, std::min<std::size_t>(n, 1));
    EXPECT_LE(c, n);
  }
  EXPECT_EQ(loop_chunks(0), 0u);
}

}  // namespace
}  // namespace tsunami
