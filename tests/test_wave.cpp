// Tests for the acoustic-gravity model and the RK4 stepper: energy behavior,
// exact operator transposes, and convergence-order sanity.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "linalg/blas.hpp"
#include "util/rng.hpp"
#include "wave/acoustic_gravity.hpp"
#include "wave/observation.hpp"
#include "wave/stepper.hpp"

namespace tsunami {
namespace {

std::unique_ptr<AcousticGravityModel> make_model(bool flat = true,
                                                 std::size_t order = 2) {
  static Bathymetry flat_bathy(flat_basin(1000.0, 20e3, 20e3));
  static Bathymetry csz_bathy{BathymetryConfig{}};
  static HexMesh flat_mesh(flat_bathy, 3, 3, 2);
  static HexMesh csz_mesh(csz_bathy, 3, 4, 2);
  return std::make_unique<AcousticGravityModel>(flat ? flat_mesh : csz_mesh,
                                                order);
}

TEST(AcousticGravityModel, DimensionsAreConsistent) {
  const auto model = make_model();
  EXPECT_EQ(model->state_dim(),
            model->velocity_dim() + model->pressure_dim());
  // Pressure: (3*2+1)^2 * (2*2+1); velocity: 3 * 8 elements * 2^3 nodes.
  EXPECT_EQ(model->pressure_dim(), 7u * 7u * 5u);
  EXPECT_EQ(model->velocity_dim(), 3u * 18u * 8u);
}

TEST(AcousticGravityModel, EnergyIsPositiveDefinite) {
  const auto model = make_model();
  Rng rng(1);
  const auto y = rng.normal_vector(model->state_dim());
  EXPECT_GT(model->energy(y), 0.0);
  const std::vector<double> zero(model->state_dim(), 0.0);
  EXPECT_DOUBLE_EQ(model->energy(zero), 0.0);
}

TEST(AcousticGravityModel, GeneratorTransposeIsExactAdjoint) {
  for (bool flat : {true, false}) {
    const auto model = make_model(flat);
    Rng rng(2);
    const auto x = rng.normal_vector(model->state_dim());
    const auto y = rng.normal_vector(model->state_dim());
    std::vector<double> lx(model->state_dim()), lty(model->state_dim());
    model->apply_generator(x, std::span<double>(lx));
    model->apply_generator_transpose(y, std::span<double>(lty));
    const double lhs = dot(lx, y);
    const double rhs = dot(x, lty);
    EXPECT_NEAR(lhs, rhs, 1e-9 * std::abs(lhs) + 1e-12);
  }
}

TEST(AcousticGravityModel, SkewPartConservesEnergyDensity) {
  // Without absorbing boundaries, y^T M Lambda y = -y^T A y = 0 (A is skew
  // apart from S_a), so dE/dt = 0 along the semi-discrete flow.
  const auto model = make_model();
  model->set_absorbing(false);
  Rng rng(3);
  const auto y = rng.normal_vector(model->state_dim());
  std::vector<double> ay(model->state_dim());
  model->apply_a(y, std::span<double>(ay));
  const double quad = dot(y, ay);
  // Scale-invariant check.
  EXPECT_NEAR(quad / (nrm2(y) * nrm2(ay) + 1e-30), 0.0, 1e-10);
}

TEST(AcousticGravityModel, AbsorbingTermDissipates) {
  const auto model = make_model();
  model->set_absorbing(true);
  Rng rng(4);
  const auto y = rng.normal_vector(model->state_dim());
  std::vector<double> ay(model->state_dim());
  model->apply_a(y, std::span<double>(ay));
  // y^T A y = p^T S_a p >= 0 (dissipation).
  EXPECT_GE(dot(y, ay), 0.0);
}

TEST(AcousticGravityModel, CflTimestepScalesWithMesh) {
  const auto model = make_model();
  const double dt1 = model->cfl_timestep(0.5);
  const double dt2 = model->cfl_timestep(0.25);
  EXPECT_GT(dt1, 0.0);
  EXPECT_NEAR(dt2, 0.5 * dt1, 1e-12);
}

TEST(Rk4Stepper, EnergyConservedInClosedBasin) {
  const auto model = make_model();
  model->set_absorbing(false);
  Rk4Stepper stepper(*model);
  Rng rng(5);
  // Smooth initial pressure bump (normalized), zero velocity.
  std::vector<double> y(model->state_dim(), 0.0);
  auto p = model->pressure_part(std::span<double>(y));
  const auto& h1 = model->h1();
  for (std::size_t c = 0; c < h1.nz1(); ++c)
    for (std::size_t b = 0; b < h1.ny1(); ++b)
      for (std::size_t a = 0; a < h1.nx1(); ++a) {
        const auto xyz = h1.node_coords(a, b, c);
        const double dx = (xyz[0] - 10e3) / 4e3;
        const double dy = (xyz[1] - 10e3) / 4e3;
        p[h1.node_index(a, b, c)] = std::exp(-dx * dx - dy * dy);
      }
  const double e0 = model->energy(y);
  ASSERT_GT(e0, 0.0);
  const double dt = model->cfl_timestep(0.3);
  for (int i = 0; i < 50; ++i) stepper.step(std::span<double>(y), {}, dt);
  const double e1 = model->energy(y);
  EXPECT_NEAR(e1 / e0, 1.0, 1e-6);
}

TEST(Rk4Stepper, AbsorbingBoundaryDrainsEnergy) {
  const auto model = make_model();
  model->set_absorbing(true);
  Rk4Stepper stepper(*model);
  std::vector<double> y(model->state_dim(), 0.0);
  auto p = model->pressure_part(std::span<double>(y));
  const auto& h1 = model->h1();
  // Broad disturbance touching the lateral walls.
  for (std::size_t i = 0; i < p.size(); ++i) p[i] = 1.0;
  (void)h1;
  const double e0 = model->energy(y);
  const double dt = model->cfl_timestep(0.3);
  for (int i = 0; i < 200; ++i) stepper.step(std::span<double>(y), {}, dt);
  const double e1 = model->energy(y);
  EXPECT_LT(e1, e0);
}

TEST(Rk4Stepper, StepIsLinearInState) {
  const auto model = make_model();
  Rk4Stepper stepper(*model);
  Rng rng(6);
  const double dt = model->cfl_timestep(0.3);
  auto y1 = rng.normal_vector(model->state_dim());
  auto y2 = rng.normal_vector(model->state_dim());
  std::vector<double> combo(model->state_dim());
  const double alpha = 0.7;
  for (std::size_t i = 0; i < combo.size(); ++i)
    combo[i] = alpha * y1[i] + y2[i];
  stepper.step(std::span<double>(y1), {}, dt);
  stepper.step(std::span<double>(y2), {}, dt);
  stepper.step(std::span<double>(combo), {}, dt);
  for (std::size_t i = 0; i < combo.size(); ++i)
    EXPECT_NEAR(combo[i], alpha * y1[i] + y2[i],
                1e-11 * (std::abs(combo[i]) + 1.0));
}

TEST(Rk4Stepper, AdjointStepIsExactTransposeOfStep) {
  const auto model = make_model(false);  // bathymetry-adapted mesh
  Rk4Stepper stepper(*model);
  Rng rng(7);
  const double dt = model->cfl_timestep(0.4);
  // <P y, w> == <y, P^T w> for random y, w.
  auto y = rng.normal_vector(model->state_dim());
  const auto y0 = y;
  auto w = rng.normal_vector(model->state_dim());
  const auto w0 = w;
  stepper.step(std::span<double>(y), {}, dt);  // y = P y0
  stepper.adjoint_step(std::span<double>(w), {}, dt);  // w = P^T w0
  const double lhs = dot(y, w0);
  const double rhs = dot(y0, w);
  EXPECT_NEAR(lhs, rhs, 1e-9 * std::abs(lhs) + 1e-12);
}

TEST(Rk4Stepper, SourceOperatorTransposeMatches) {
  // y' = D b from zero state; adjoint acc = D^T w. Check <D b, w> == <b, D^T w>.
  const auto model = make_model();
  Rk4Stepper stepper(*model);
  Rng rng(8);
  const double dt = model->cfl_timestep(0.4);
  const auto b = rng.normal_vector(model->state_dim());
  const auto w = rng.normal_vector(model->state_dim());
  std::vector<double> y(model->state_dim(), 0.0);
  stepper.step(std::span<double>(y), b, dt);  // y = D b
  auto w_copy = w;
  std::vector<double> acc(model->state_dim(), 0.0);
  stepper.adjoint_step(std::span<double>(w_copy), std::span<double>(acc), dt);
  const double lhs = dot(y, w);
  const double rhs = dot(b, acc);
  EXPECT_NEAR(lhs, rhs, 1e-9 * std::abs(lhs) + 1e-12);
}

TEST(Rk4Stepper, FourthOrderConvergence) {
  // One step of size h vs two steps of size h/2 against four steps of h/4:
  // Richardson ratio should approach 2^4 = 16 for RK4.
  const auto model = make_model();
  model->set_absorbing(false);
  Rk4Stepper stepper(*model);
  Rng rng(9);
  const auto y0 = rng.normal_vector(model->state_dim());
  const double h = model->cfl_timestep(0.5);

  auto coarse = y0;
  stepper.step(std::span<double>(coarse), {}, h);

  auto mid = y0;
  stepper.step(std::span<double>(mid), {}, h / 2);
  stepper.step(std::span<double>(mid), {}, h / 2);

  auto fine = y0;
  for (int i = 0; i < 4; ++i) stepper.step(std::span<double>(fine), {}, h / 4);

  double err_coarse = 0.0, err_mid = 0.0;
  for (std::size_t i = 0; i < y0.size(); ++i) {
    err_coarse = std::max(err_coarse, std::abs(coarse[i] - fine[i]));
    err_mid = std::max(err_mid, std::abs(mid[i] - fine[i]));
  }
  ASSERT_GT(err_mid, 0.0);
  const double ratio = err_coarse / err_mid;
  EXPECT_GT(ratio, 10.0);  // ideal ~16-21 with the Richardson reference
}

// ---------------------------------------------------------------------------
// Analytic validation: a standing acoustic mode in a rigid closed box.
// With absorbing boundaries off and gravity sent to infinity (the free
// surface degenerates to a rigid lid), the continuum solution
//   p(x, t)   = A cos(k x) cos(w t),       k = pi / Lx,  w = c k,
//   u_x(x, t) = A k / (rho w) sin(k x) sin(w t)
// satisfies the system exactly with u.n = 0 on all walls. After a quarter
// period the pressure vanishes and the velocity peaks — both checked
// against the discrete solution, with error decreasing in FE order.

class StandingWaveTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StandingWaveTest, QuarterPeriodMatchesAnalyticSolution) {
  const std::size_t order = GetParam();
  const double lx = 30e3, depth = 1500.0;
  const Bathymetry bathy(flat_basin(depth, lx, 10e3));
  const HexMesh mesh(bathy, 12, 2, 2);
  PhysicalConstants constants;
  constants.gravity = 1e12;  // rigid-lid limit of the free surface
  AcousticGravityModel model(mesh, order, constants);
  model.set_absorbing(false);
  Rk4Stepper stepper(model);

  const double c = constants.sound_speed;
  const double k = std::numbers::pi / lx;
  const double w = c * k;
  const double amp = 100.0;  // Pa

  // Initialize the mode at t = 0 (pressure only).
  std::vector<double> y(model.state_dim(), 0.0);
  {
    auto p = model.pressure_part(std::span<double>(y));
    const auto& h1 = model.h1();
    for (std::size_t cc = 0; cc < h1.nz1(); ++cc)
      for (std::size_t bb = 0; bb < h1.ny1(); ++bb)
        for (std::size_t aa = 0; aa < h1.nx1(); ++aa) {
          const auto xyz = h1.node_coords(aa, bb, cc);
          p[h1.node_index(aa, bb, cc)] = amp * std::cos(k * xyz[0]);
        }
  }

  // Integrate to exactly a quarter period.
  const double t_quarter = std::numbers::pi / (2.0 * w);
  const double dt_max = model.cfl_timestep(0.3);
  const auto steps = static_cast<std::size_t>(std::ceil(t_quarter / dt_max));
  const double dt = t_quarter / static_cast<double>(steps);
  for (std::size_t i = 0; i < steps; ++i)
    stepper.step(std::span<double>(y), {}, dt);

  // Pressure must be ~0 relative to the initial amplitude.
  const auto p = model.pressure_part(std::span<const double>(y));
  double p_max = 0.0;
  for (double v : p) p_max = std::max(p_max, std::abs(v));

  // Velocity must match A k/(rho w) sin(k x) at the collocation nodes.
  const auto u = model.velocity_part(std::span<const double>(y));
  const double u_amp = amp * k / (constants.rho * w);
  const auto& gl = model.tables().gl;
  double u_err = 0.0, u_ref = 0.0;
  for (std::size_t e = 0; e < mesh.num_elements(); ++e) {
    const auto ec = mesh.element_coords(e);
    const double x0 = static_cast<double>(ec[0]) * mesh.dx();
    const std::size_t q = model.tables().q;
    for (std::size_t n = 0; n < q * q * q; ++n) {
      const std::size_t l = n % q;
      const double x = x0 + 0.5 * (gl.points[l] + 1.0) * mesh.dx();
      const double expected = u_amp * std::sin(k * x);
      const double got = u[model.l2().dof(e, 0, n)];
      u_err = std::max(u_err, std::abs(got - expected));
      u_ref = std::max(u_ref, std::abs(expected));
    }
  }
  // Tolerances tighten with order (spatial discretization error dominates).
  const double tol = order == 1 ? 0.08 : (order == 2 ? 0.01 : 0.004);
  EXPECT_LT(p_max / amp, tol) << "order " << order;
  EXPECT_LT(u_err / u_ref, tol) << "order " << order;
}

INSTANTIATE_TEST_SUITE_P(Orders, StandingWaveTest, ::testing::Values(1, 2, 3));

TEST(StandingWave, ErrorDecreasesWithOrder) {
  // Run the same mode at orders 1..3 and require monotone error decay.
  const double lx = 30e3, depth = 1500.0;
  const Bathymetry bathy(flat_basin(depth, lx, 10e3));
  const HexMesh mesh(bathy, 8, 2, 2);
  PhysicalConstants constants;
  constants.gravity = 1e12;
  const double c = constants.sound_speed;
  const double k = std::numbers::pi / lx;
  const double w = c * k;

  std::vector<double> errors;
  for (std::size_t order : {1, 2, 3}) {
    AcousticGravityModel model(mesh, order, constants);
    model.set_absorbing(false);
    Rk4Stepper stepper(model);
    std::vector<double> y(model.state_dim(), 0.0);
    auto p = model.pressure_part(std::span<double>(y));
    const auto& h1 = model.h1();
    for (std::size_t cc = 0; cc < h1.nz1(); ++cc)
      for (std::size_t bb = 0; bb < h1.ny1(); ++bb)
        for (std::size_t aa = 0; aa < h1.nx1(); ++aa) {
          const auto xyz = h1.node_coords(aa, bb, cc);
          p[h1.node_index(aa, bb, cc)] = std::cos(k * xyz[0]);
        }
    const double t_half = std::numbers::pi / w;  // half period: p -> -p
    const double dt_max = model.cfl_timestep(0.3);
    const auto steps = static_cast<std::size_t>(std::ceil(t_half / dt_max));
    const double dt = t_half / static_cast<double>(steps);
    for (std::size_t i = 0; i < steps; ++i)
      stepper.step(std::span<double>(y), {}, dt);
    double err = 0.0;
    for (std::size_t cc = 0; cc < h1.nz1(); ++cc)
      for (std::size_t bb = 0; bb < h1.ny1(); ++bb)
        for (std::size_t aa = 0; aa < h1.nx1(); ++aa) {
          const auto xyz = h1.node_coords(aa, bb, cc);
          const double expected = -std::cos(k * xyz[0]);
          err = std::max(err, std::abs(p[h1.node_index(aa, bb, cc)] -
                                       expected));
        }
    errors.push_back(err);
  }
  EXPECT_LT(errors[1], errors[0]);
  EXPECT_LT(errors[2], errors[1]);
}

TEST(ObservationOperator, SensorReadsNodalPressureExactly) {
  const auto model = make_model();
  // Sensor placed exactly at a bottom GLL node -> unit row.
  const auto& h1 = model->h1();
  const auto xyz = h1.node_coords(2, 2, 0);
  ObservationOperator obs = ObservationOperator::seafloor_sensors(
      *model, {{xyz[0], xyz[1]}});
  Rng rng(10);
  std::vector<double> state = rng.normal_vector(model->state_dim());
  std::vector<double> d(1);
  obs.apply(state, std::span<double>(d));
  const auto p = model->pressure_part(std::span<const double>(state));
  EXPECT_NEAR(d[0], p[h1.node_index(2, 2, 0)], 1e-10);
}

TEST(ObservationOperator, SurfaceGaugeScalesByRhoG) {
  const auto model = make_model();
  const auto& h1 = model->h1();
  const auto xyz = h1.node_coords(3, 3, h1.nz1() - 1);
  ObservationOperator gauges = ObservationOperator::surface_gauges(
      *model, {{xyz[0], xyz[1]}});
  std::vector<double> state(model->state_dim(), 0.0);
  auto p = model->pressure_part(std::span<double>(state));
  const double rho_g = model->constants().rho * model->constants().gravity;
  p[h1.node_index(3, 3, h1.nz1() - 1)] = rho_g * 2.5;  // eta = 2.5 m
  std::vector<double> q(1);
  gauges.apply(state, std::span<double>(q));
  EXPECT_NEAR(q[0], 2.5, 1e-10);
}

TEST(ObservationOperator, ApplyAndTransposeAreAdjoint) {
  const auto model = make_model(false);
  ObservationOperator obs = ObservationOperator::seafloor_sensors(
      *model, sensor_grid(5, 2e3, 100e3, 2e3, 200e3));
  Rng rng(11);
  const auto state = rng.normal_vector(model->state_dim());
  const auto coeffs = rng.normal_vector(obs.num_outputs());
  std::vector<double> d(obs.num_outputs());
  obs.apply(state, std::span<double>(d));
  std::vector<double> back(model->state_dim(), 0.0);
  obs.apply_transpose_add(coeffs, std::span<double>(back));
  EXPECT_NEAR(dot(d, coeffs), dot(state, back), 1e-10);
}

TEST(SensorGrid, ProducesRequestedCountInBounds) {
  for (std::size_t n : {1u, 5u, 12u, 30u}) {
    const auto pts = sensor_grid(n, 1e3, 9e3, 2e3, 18e3);
    EXPECT_EQ(pts.size(), n);
    for (const auto& p : pts) {
      EXPECT_GE(p[0], 1e3);
      EXPECT_LE(p[0], 9e3);
      EXPECT_GE(p[1], 2e3);
      EXPECT_LE(p[1], 18e3);
    }
  }
}

}  // namespace
}  // namespace tsunami
