// Tests for quadrature, bases, geometry, boundary operators, and the five
// partial-assembly kernel variants (which must agree to rounding error).

#include <gtest/gtest.h>

#include <cmath>

#include "fem/basis.hpp"
#include "fem/boundary_ops.hpp"
#include "fem/geometry.hpp"
#include "fem/h1_space.hpp"
#include "fem/l2_space.hpp"
#include "fem/pa_kernels.hpp"
#include "fem/quadrature.hpp"
#include "linalg/blas.hpp"
#include "mesh/hex_mesh.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

double integrate(const QuadratureRule& rule, auto f) {
  double s = 0.0;
  for (std::size_t i = 0; i < rule.size(); ++i)
    s += rule.weights[i] * f(rule.points[i]);
  return s;
}

TEST(GaussLegendre, WeightsSumToTwo) {
  for (std::size_t n = 1; n <= 8; ++n) {
    const auto rule = gauss_legendre(n);
    double s = 0.0;
    for (double w : rule.weights) s += w;
    EXPECT_NEAR(s, 2.0, 1e-13) << "n=" << n;
  }
}

TEST(GaussLegendre, ExactForDegree2nMinus1) {
  for (std::size_t n = 1; n <= 6; ++n) {
    const auto rule = gauss_legendre(n);
    const std::size_t deg = 2 * n - 1;
    // int_{-1}^{1} x^deg = 0 (odd), x^{deg-1} = 2/deg.
    EXPECT_NEAR(integrate(rule, [&](double x) { return std::pow(x, deg); }),
                0.0, 1e-12);
    EXPECT_NEAR(
        integrate(rule, [&](double x) { return std::pow(x, deg - 1); }),
        2.0 / static_cast<double>(deg), 1e-12);
  }
}

TEST(GaussLegendre, PointsAreSortedAndInterior) {
  const auto rule = gauss_legendre(7);
  for (std::size_t i = 0; i + 1 < rule.size(); ++i)
    EXPECT_LT(rule.points[i], rule.points[i + 1]);
  EXPECT_GT(rule.points.front(), -1.0);
  EXPECT_LT(rule.points.back(), 1.0);
}

TEST(GaussLobatto, IncludesEndpointsAndSumsToTwo) {
  for (std::size_t n = 2; n <= 7; ++n) {
    const auto rule = gauss_lobatto(n);
    EXPECT_DOUBLE_EQ(rule.points.front(), -1.0);
    EXPECT_DOUBLE_EQ(rule.points.back(), 1.0);
    double s = 0.0;
    for (double w : rule.weights) s += w;
    EXPECT_NEAR(s, 2.0, 1e-13);
  }
}

TEST(GaussLobatto, ExactForDegree2nMinus3) {
  for (std::size_t n = 3; n <= 6; ++n) {
    const auto rule = gauss_lobatto(n);
    const std::size_t deg = 2 * n - 3;
    EXPECT_NEAR(
        integrate(rule, [&](double x) { return std::pow(x, deg - 1); }),
        (deg - 1) % 2 == 0 ? 2.0 / static_cast<double>(deg) : 0.0, 1e-12);
  }
}

TEST(LagrangeBasis, PartitionOfUnityAndInterpolation) {
  const auto rule = gauss_lobatto(5);
  for (double x : {-0.73, 0.11, 0.98}) {
    const auto vals = lagrange_values(rule.points, x);
    double s = 0.0;
    for (double v : vals) s += v;
    EXPECT_NEAR(s, 1.0, 1e-12);
    const auto ders = lagrange_derivatives(rule.points, x);
    double ds = 0.0;
    for (double d : ders) ds += d;
    EXPECT_NEAR(ds, 0.0, 1e-10);
  }
  // Kronecker property at the nodes.
  for (std::size_t i = 0; i < rule.size(); ++i) {
    const auto vals = lagrange_values(rule.points, rule.points[i]);
    for (std::size_t j = 0; j < rule.size(); ++j)
      EXPECT_NEAR(vals[j], i == j ? 1.0 : 0.0, 1e-12);
  }
}

TEST(LagrangeBasis, DifferentiatesPolynomialsExactly) {
  const auto rule = gauss_lobatto(4);  // cubic basis
  // f(x) = x^3 - 2x: nodal coefficients are point values.
  std::vector<double> coeffs(rule.size());
  for (std::size_t i = 0; i < rule.size(); ++i) {
    const double x = rule.points[i];
    coeffs[i] = x * x * x - 2.0 * x;
  }
  for (double x : {-0.5, 0.0, 0.6}) {
    const auto ders = lagrange_derivatives(rule.points, x);
    double df = 0.0;
    for (std::size_t i = 0; i < rule.size(); ++i) df += ders[i] * coeffs[i];
    EXPECT_NEAR(df, 3.0 * x * x - 2.0, 1e-11);
  }
}

TEST(BasisTables, DimensionsFollowOrder) {
  const BasisTables t(3);
  EXPECT_EQ(t.n1, 4u);
  EXPECT_EQ(t.q, 3u);
  EXPECT_EQ(t.interp.rows(), 3u);
  EXPECT_EQ(t.interp.cols(), 4u);
  EXPECT_THROW(BasisTables(0), std::invalid_argument);
}

TEST(Geometry, FlatElementJacobianIsDiagonal) {
  const Bathymetry b(flat_basin(1000.0, 20e3, 20e3));
  const HexMesh mesh(b, 2, 2, 2);
  const auto corners = mesh.element_vertices(0);
  const auto j = trilinear_jacobian(corners, {0.0, 0.0, 0.0});
  // dx = 10 km, dy = 10 km, dz = 500 m; J = diag(dx/2, dy/2, dz/2).
  EXPECT_NEAR(j[0], 5000.0, 1e-9);
  EXPECT_NEAR(j[4], 5000.0, 1e-9);
  EXPECT_NEAR(j[8], 250.0, 1e-9);
  EXPECT_NEAR(j[1], 0.0, 1e-9);
  EXPECT_NEAR(det3(j), 5000.0 * 5000.0 * 250.0, 1e-3);
}

TEST(Geometry, CofactorIdentity) {
  // det_times_inverse_transpose(J) * J^T == det(J) * I for a random J.
  Rng rng(3);
  std::array<double, 9> j{};
  for (auto& v : j) v = rng.normal();
  j[0] += 3.0;
  j[4] += 3.0;
  j[8] += 3.0;  // keep it invertible
  const auto c = det_times_inverse_transpose(j);
  const double d = det3(j);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t k = 0; k < 3; ++k) {
      double s = 0.0;
      for (std::size_t l = 0; l < 3; ++l) s += c[3 * i + l] * j[3 * k + l];
      EXPECT_NEAR(s, i == k ? d : 0.0, 1e-10);
    }
}

TEST(Geometry, PaFactorsPositiveOnCascadiaMesh) {
  const Bathymetry b;  // undulating bathymetry
  const HexMesh mesh(b, 6, 8, 3);
  const BasisTables tables(2);
  const auto geom = build_pa_geometry(mesh, tables);
  for (double w : geom.wdetj) EXPECT_GT(w, 0.0);
  EXPECT_EQ(geom.wdetj.size(), mesh.num_elements() * 8u);
  EXPECT_EQ(geom.grad_factor.size(), mesh.num_elements() * 8u * 9u);
}

TEST(Geometry, LumpedMassSumsToVolume) {
  const double depth = 1200.0, lx = 30e3, ly = 40e3;
  const Bathymetry b(flat_basin(depth, lx, ly));
  const HexMesh mesh(b, 3, 4, 2);
  const BasisTables tables(3);
  const H1Space space(mesh, tables);
  const auto mass = h1_lumped_mass(space);
  double total = 0.0;
  for (double m : mass) total += m;
  EXPECT_NEAR(total, depth * lx * ly, 1e-3 * depth * lx * ly * 1e-6);
}

TEST(Geometry, BottomBoundaryMassSumsToFootprintArea) {
  const double lx = 30e3, ly = 50e3;
  const Bathymetry b(flat_basin(2000.0, lx, ly));
  const HexMesh mesh(b, 4, 5, 2);
  const BasisTables tables(2);
  const H1Space space(mesh, tables);
  const auto diag = boundary_mass_diagonal(space, BoundaryKind::Bottom);
  double total = 0.0;
  for (double v : diag) total += v;
  EXPECT_NEAR(total, lx * ly, 1e-6 * lx * ly);
}

TEST(Geometry, SlopedSeafloorHasLargerAreaThanFootprint) {
  // On the Cascadia mesh the seafloor is inclined, so its boundary-mass
  // total (surface area) must exceed the flat footprint area, while the sea
  // surface (z = 0 plane) must match the footprint exactly.
  const Bathymetry b;  // synthetic Cascadia with slope + undulations
  const HexMesh mesh(b, 8, 10, 2);
  const BasisTables tables(2);
  const H1Space space(mesh, tables);
  const double footprint = b.config().length_x * b.config().length_y;
  const auto bot = boundary_mass_diagonal(space, BoundaryKind::Bottom);
  const auto surf = boundary_mass_diagonal(space, BoundaryKind::Surface);
  double area_bot = 0.0, area_surf = 0.0;
  for (double v : bot) area_bot += v;
  for (double v : surf) area_surf += v;
  EXPECT_GT(area_bot, footprint * 1.0000001);
  EXPECT_NEAR(area_surf, footprint, 1e-6 * footprint);
}

TEST(Geometry, SurfaceMassEqualsBottomForFlatBasin) {
  const Bathymetry b(flat_basin(1000.0, 20e3, 20e3));
  const HexMesh mesh(b, 3, 3, 2);
  const BasisTables tables(2);
  const H1Space space(mesh, tables);
  const auto bot = boundary_mass_diagonal(space, BoundaryKind::Bottom);
  const auto surf = boundary_mass_diagonal(space, BoundaryKind::Surface);
  double sb = 0.0, ss = 0.0;
  for (double v : bot) sb += v;
  for (double v : surf) ss += v;
  EXPECT_NEAR(sb, ss, 1e-6 * sb);
}

TEST(Geometry, LateralMassSumsToSideWallArea) {
  const double depth = 1000.0, lx = 20e3, ly = 30e3;
  const Bathymetry b(flat_basin(depth, lx, ly));
  const HexMesh mesh(b, 2, 3, 2);
  const BasisTables tables(2);
  const H1Space space(mesh, tables);
  const auto lat = boundary_mass_diagonal(space, BoundaryKind::Lateral);
  double total = 0.0;
  for (double v : lat) total += v;
  EXPECT_NEAR(total, 2.0 * depth * (lx + ly), 1e-6 * total);
}

TEST(H1Space, StructuredNumberingAndBottomPlane) {
  const Bathymetry b(flat_basin(1000.0, 10e3, 10e3));
  const HexMesh mesh(b, 2, 3, 2);
  const BasisTables tables(2);
  const H1Space space(mesh, tables);
  EXPECT_EQ(space.nx1(), 5u);
  EXPECT_EQ(space.ny1(), 7u);
  EXPECT_EQ(space.nz1(), 5u);
  EXPECT_EQ(space.num_dofs(), 5u * 7u * 5u);
  EXPECT_EQ(space.num_bottom_nodes(), 35u);
  // Bottom-plane nodes occupy the first nx1*ny1 global indices.
  EXPECT_EQ(space.node_index(0, 0, 0), 0u);
  EXPECT_EQ(space.node_index(4, 6, 0), 34u);
  EXPECT_EQ(space.node_index(0, 0, 1), 35u);
}

TEST(H1Space, PointEvalPartitionOfUnity) {
  const Bathymetry b;
  const HexMesh mesh(b, 4, 4, 2);
  const BasisTables tables(3);
  const H1Space space(mesh, tables);
  for (auto [fx, fy] : {std::pair{0.31, 0.42}, {0.77, 0.15}, {0.5, 0.95}}) {
    const auto row = space.locate_on_bottom(fx * mesh.length_x(),
                                            fy * mesh.length_y());
    double s = 0.0;
    for (double w : row.weights) s += w;
    EXPECT_NEAR(s, 1.0, 1e-10);
  }
}

TEST(H1Space, PointEvalInterpolatesLinearField) {
  const Bathymetry b(flat_basin(1500.0, 24e3, 24e3));
  const HexMesh mesh(b, 3, 3, 2);
  const BasisTables tables(2);
  const H1Space space(mesh, tables);
  // p(x, y, z) = 2 + 0.1x - 0.2y + 0.5z sampled at the nodes.
  std::vector<double> p(space.num_dofs());
  for (std::size_t c = 0; c < space.nz1(); ++c)
    for (std::size_t bb = 0; bb < space.ny1(); ++bb)
      for (std::size_t a = 0; a < space.nx1(); ++a) {
        const auto xyz = space.node_coords(a, bb, c);
        p[space.node_index(a, bb, c)] =
            2.0 + 0.1 * xyz[0] - 0.2 * xyz[1] + 0.5 * xyz[2];
      }
  const double x = 7.3e3, y = 11.1e3, z = -888.0;
  const auto row = space.locate(x, y, z);
  double val = 0.0;
  for (std::size_t k = 0; k < row.dofs.size(); ++k)
    val += row.weights[k] * p[row.dofs[k]];
  EXPECT_NEAR(val, 2.0 + 0.1 * x - 0.2 * y + 0.5 * z, 1e-8);
}

TEST(BottomSourceMap, WeightsMatchBoundaryMass) {
  const Bathymetry b(flat_basin(1000.0, 12e3, 12e3));
  const HexMesh mesh(b, 3, 3, 2);
  const BasisTables tables(2);
  const H1Space space(mesh, tables);
  const BottomSourceMap src(space);
  EXPECT_EQ(src.parameter_dim(), space.num_bottom_nodes());
  double total = 0.0;
  for (double w : src.weights()) total += w;
  EXPECT_NEAR(total, 12e3 * 12e3, 1.0);
}

TEST(BottomSourceMap, ApplyAndTransposeAreAdjoint) {
  const Bathymetry b;
  const HexMesh mesh(b, 3, 4, 2);
  const BasisTables tables(2);
  const H1Space space(mesh, tables);
  const BottomSourceMap src(space);
  Rng rng(4);
  const auto m = rng.normal_vector(src.parameter_dim());
  const auto y = rng.normal_vector(src.pressure_dim());
  std::vector<double> lm(src.pressure_dim()), lty(src.parameter_dim());
  src.apply(m, std::span<double>(lm));
  src.apply_transpose(y, std::span<double>(lty));
  const double lhs = dot(lm, y);
  EXPECT_NEAR(lhs, dot(m, lty), 1e-12 * std::abs(lhs));
}

// ---------------------------------------------------------------------------
// Kernel variants: agreement, adjointness, and exact gradients.

struct KernelCase {
  KernelVariant variant;
  std::size_t order;
};

class KernelTest : public ::testing::TestWithParam<KernelCase> {
 protected:
  void SetUp() override {
    bathy_ = std::make_unique<Bathymetry>(BathymetryConfig{});
    mesh_ = std::make_unique<HexMesh>(*bathy_, 3, 4, 2);
    tables_ = std::make_unique<BasisTables>(GetParam().order);
    h1_ = std::make_unique<H1Space>(*mesh_, *tables_);
    l2_ = std::make_unique<L2Space>(*mesh_, *tables_);
    geom_ = build_pa_geometry(*mesh_, *tables_);
    op_ = std::make_unique<MixedOperator>(*h1_, *l2_, geom_, *tables_,
                                          GetParam().variant);
  }

  std::unique_ptr<Bathymetry> bathy_;
  std::unique_ptr<HexMesh> mesh_;
  std::unique_ptr<BasisTables> tables_;
  std::unique_ptr<H1Space> h1_;
  std::unique_ptr<L2Space> l2_;
  PaGeometry geom_;
  std::unique_ptr<MixedOperator> op_;
};

TEST_P(KernelTest, GradAndDivAreAdjoint) {
  Rng rng(17);
  const auto p = rng.normal_vector(h1_->num_dofs());
  const auto u = rng.normal_vector(l2_->num_dofs());
  std::vector<double> bp(l2_->num_dofs()), btu(h1_->num_dofs());
  op_->apply_blocks(p, u, std::span<double>(bp), std::span<double>(btu), 1.0,
                    1.0);
  // <B p, u> == <p, B^T u>.
  const double lhs = dot(bp, u);
  const double rhs = dot(p, btu);
  EXPECT_NEAR(lhs, rhs, 1e-9 * std::abs(lhs) + 1e-9);
}

TEST_P(KernelTest, MatchesReferenceVariant) {
  // InitialPA (independent naive code path) is the oracle.
  MixedOperator reference(*h1_, *l2_, geom_, *tables_,
                          KernelVariant::InitialPA);
  Rng rng(18);
  const auto p = rng.normal_vector(h1_->num_dofs());
  const auto u = rng.normal_vector(l2_->num_dofs());
  std::vector<double> u1(l2_->num_dofs()), p1(h1_->num_dofs());
  std::vector<double> u2(l2_->num_dofs()), p2(h1_->num_dofs());
  op_->apply_blocks(p, u, std::span<double>(u1), std::span<double>(p1), 1.0,
                    -1.0);
  reference.apply_blocks(p, u, std::span<double>(u2), std::span<double>(p2),
                         1.0, -1.0);
  double scale = amax(u2) + amax(p2);
  for (std::size_t i = 0; i < u1.size(); ++i)
    EXPECT_NEAR(u1[i], u2[i], 1e-11 * scale) << "velocity dof " << i;
  for (std::size_t i = 0; i < p1.size(); ++i)
    EXPECT_NEAR(p1[i], p2[i], 1e-11 * scale) << "pressure dof " << i;
}

TEST_P(KernelTest, GradientExactForLinearPressure) {
  // For p = a + gx x + gy y + gz z, integral identity:
  // <B p, u_const> = g . u_const * Volume.
  std::vector<double> p(h1_->num_dofs());
  const double gx = 1.3e-4, gy = -2.1e-4, gz = 3.7e-4;
  for (std::size_t c = 0; c < h1_->nz1(); ++c)
    for (std::size_t bb = 0; bb < h1_->ny1(); ++bb)
      for (std::size_t a = 0; a < h1_->nx1(); ++a) {
        const auto xyz = h1_->node_coords(a, bb, c);
        p[h1_->node_index(a, bb, c)] =
            5.0 + gx * xyz[0] + gy * xyz[1] + gz * xyz[2];
      }
  std::vector<double> u_const(l2_->num_dofs());
  for (std::size_t e = 0; e < l2_->num_elements(); ++e)
    for (std::size_t d = 0; d < 3; ++d)
      for (std::size_t n = 0; n < l2_->nodes_per_element(); ++n)
        u_const[l2_->dof(e, d, n)] = d == 0 ? 1.0 : (d == 1 ? 2.0 : -1.0);

  std::vector<double> bp(l2_->num_dofs()), dummy(h1_->num_dofs());
  op_->apply_blocks(p, u_const, std::span<double>(bp),
                    std::span<double>(dummy), 1.0, 1.0);

  // Volume of the Cascadia mesh: sum of wdetj.
  double volume = 0.0;
  for (double w : geom_.wdetj) volume += w;
  const double expected = (gx * 1.0 + gy * 2.0 + gz * -1.0) * volume;
  EXPECT_NEAR(dot(bp, u_const), expected, 1e-9 * std::abs(expected));
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndOrders, KernelTest,
    ::testing::Values(KernelCase{KernelVariant::InitialPA, 2},
                      KernelCase{KernelVariant::SharedPA, 1},
                      KernelCase{KernelVariant::SharedPA, 2},
                      KernelCase{KernelVariant::SharedPA, 3},
                      KernelCase{KernelVariant::OptimizedPA, 1},
                      KernelCase{KernelVariant::OptimizedPA, 2},
                      KernelCase{KernelVariant::OptimizedPA, 3},
                      KernelCase{KernelVariant::OptimizedPA, 4},
                      KernelCase{KernelVariant::FusedPA, 2},
                      KernelCase{KernelVariant::FusedPA, 3},
                      KernelCase{KernelVariant::FusedMF, 2},
                      KernelCase{KernelVariant::FusedMF, 3}),
    [](const auto& param_info) {
      const auto& kc = param_info.param;
      return to_string(kc.variant).substr(0, 1) + std::to_string(kc.order) +
             (kc.variant == KernelVariant::FusedMF ? "MF" :
              kc.variant == KernelVariant::FusedPA ? "FP" :
              kc.variant == KernelVariant::OptimizedPA ? "OP" :
              kc.variant == KernelVariant::SharedPA ? "SP" : "IP");
    });

TEST(KernelCosts, InitialPaCostsMoreFlops) {
  const auto naive = estimate_kernel_costs(KernelVariant::InitialPA, 4, 100);
  const auto sf = estimate_kernel_costs(KernelVariant::SharedPA, 4, 100);
  EXPECT_GT(naive.flops, 5.0 * sf.flops);
}

TEST(KernelCosts, MfTradesBytesForFlops) {
  const auto pa = estimate_kernel_costs(KernelVariant::FusedPA, 4, 100);
  const auto mf = estimate_kernel_costs(KernelVariant::FusedMF, 4, 100);
  EXPECT_GT(mf.flops, pa.flops);
  EXPECT_LT(mf.bytes, pa.bytes);
}

TEST(MixedOperator, RejectsTooHighOrder) {
  const Bathymetry b;
  const HexMesh mesh(b, 2, 2, 1);
  const BasisTables tables(8);  // n1 = 9 > kMaxN1
  const H1Space h1(mesh, tables);
  const L2Space l2(mesh, tables);
  const auto geom = build_pa_geometry(mesh, tables);
  EXPECT_THROW(MixedOperator(h1, l2, geom, tables), std::invalid_argument);
}

}  // namespace
}  // namespace tsunami
