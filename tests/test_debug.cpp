// Tests for the runtime hot-path sentinels (src/debug/sentinels.hpp): the
// executable half of the TSUNAMI_HOT_PATH contract. Positive cases prove the
// interposers really count (an allocation/lock inside a scope is seen);
// steady-state cases prove the repo's zero-allocation claims on the real hot
// paths — StreamingAssimilator push/push_many/forecast_into, the
// BlockToeplitz apply family, the EventSession publish path — and a bounded-
// allocation claim on the WarningService drain cycle.
//
// The whole suite GTEST_SKIPs unless built with -DTSUNAMI_CHECKS=ON (the
// interposers are a debug/CI configuration); the `checks` CI job runs it.
// With checks off the suite still compiles and passes (as skips), so it
// rides in the default test glob.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/digital_twin.hpp"
#include "debug/sentinels.hpp"
#include "parallel/thread_pool.hpp"
#include "service/engine_cache.hpp"
#include "service/event_session.hpp"
#include "service/warning_service.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

using debug::ScopedNoAlloc;
using debug::ScopedNoLock;

#define SKIP_WITHOUT_CHECKS()                                              \
  if (!debug::checks_enabled())                                            \
  GTEST_SKIP() << "built without TSUNAMI_CHECKS; sentinels are inert"

// ---------------------------------------------------------------------------
// Sentinel mechanics: do the interposers count what they claim to count?
// ---------------------------------------------------------------------------

TEST(Sentinels, AllocationInsideScopeIsCounted) {
  SKIP_WITHOUT_CHECKS();
  const ScopedNoAlloc guard;
  auto p = std::make_unique<std::uint64_t[]>(256);
  p[0] = 1;
  EXPECT_GE(guard.allocations(), 1u);
  EXPECT_GE(debug::total_allocation_count(), guard.allocations());
}

TEST(Sentinels, PureComputationAllocatesNothing) {
  SKIP_WITHOUT_CHECKS();
  std::vector<double> v(1024, 1.0);  // allocated before arming
  std::uint64_t n = 0;
  double sum = 0.0;
  {
    const ScopedNoAlloc guard;
    for (double x : v) sum += x * x;
    n = guard.allocations();
  }
  EXPECT_GT(sum, 0.0);
  EXPECT_EQ(n, 0u);
}

TEST(Sentinels, DeallocationIsNotCounted) {
  SKIP_WITHOUT_CHECKS();
  auto p = std::make_unique<double[]>(512);
  const ScopedNoAlloc guard;
  p.reset();  // releasing on a hot path is allowed; acquiring is not
  EXPECT_EQ(guard.allocations(), 0u);
}

TEST(Sentinels, MutexLockInsideScopeIsCounted) {
  SKIP_WITHOUT_CHECKS();
  std::mutex m;
  const ScopedNoLock guard;
  {
    const std::lock_guard<std::mutex> lock(m);
  }
  EXPECT_GE(guard.locks(), 1u);
}

TEST(Sentinels, LockFreeCodeTakesNoLocks) {
  SKIP_WITHOUT_CHECKS();
  std::uint64_t n = 0;
  {
    const ScopedNoLock guard;
    volatile double x = 1.0;
    for (int i = 0; i < 100; ++i) x = x * 1.5 - 0.5;
    n = guard.locks();
  }
  EXPECT_EQ(n, 0u);
}

// ---------------------------------------------------------------------------
// Steady-state hot paths. One tiny twin + event, shared by the suite; the
// global pool is pinned to a single thread so parallel_for takes its serial
// fast path (worker handoff is pool machinery, not hot-path work — the
// claims under test are about the assimilation kernels themselves).
// ---------------------------------------------------------------------------

class SteadyStateTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ThreadPool::global().resize(1);
    auto twin = std::make_shared<DigitalTwin>(TwinConfig::tiny());
    RuptureConfig rc;
    Asperity a;
    a.x0 = 0.3 * twin->mesh().length_x();
    a.y0 = 0.5 * twin->mesh().length_y();
    a.rx = 16e3;
    a.ry = 24e3;
    a.peak_uplift = 2.0;
    rc.asperities.push_back(a);
    rc.hypocenter_x = a.x0;
    rc.hypocenter_y = a.y0;
    Rng rng(5);
    event_ = new SyntheticEvent(twin->synthesize(RuptureScenario(rc), rng));
    twin->run_offline(event_->noise);
    twin_ = new std::shared_ptr<const DigitalTwin>(std::move(twin));
    cache_ = new EngineCache({.track_map = true});
    cached_ = new std::shared_ptr<const CachedEngine>(cache_->adopt(*twin_));
  }
  static void TearDownTestSuite() {
    delete cached_;
    delete cache_;
    delete event_;
    delete twin_;
    cached_ = nullptr;
    cache_ = nullptr;
    event_ = nullptr;
    twin_ = nullptr;
    ThreadPool::global().resize(0);  // back to the default thread count
  }

  static const StreamingEngine& engine() { return (*cached_)->engine(); }

  static std::span<const double> block(std::size_t tick) {
    return std::span<const double>(event_->d_obs)
        .subspan(tick * engine().block_size(), engine().block_size());
  }

  /// Push every tick once (grows all grow-once scratch to its high-water
  /// mark), then reset the event state. What remains allocated afterwards
  /// is exactly the steady-state capacity the claims are about.
  static void warm_up(StreamingAssimilator& assim) {
    for (std::size_t t = assim.ticks_received(); t < engine().num_ticks(); ++t)
      assim.push(t, block(t));
    assim.reset();
  }

  static std::shared_ptr<const DigitalTwin>* twin_;
  static SyntheticEvent* event_;
  static EngineCache* cache_;
  static std::shared_ptr<const CachedEngine>* cached_;
};

std::shared_ptr<const DigitalTwin>* SteadyStateTest::twin_ = nullptr;
SyntheticEvent* SteadyStateTest::event_ = nullptr;
EngineCache* SteadyStateTest::cache_ = nullptr;
std::shared_ptr<const CachedEngine>* SteadyStateTest::cached_ = nullptr;

TEST_F(SteadyStateTest, PushIsAllocAndLockFree) {
  SKIP_WITHOUT_CHECKS();
  StreamingAssimilator assim = engine().start();
  warm_up(assim);
  std::uint64_t allocs = 0, locks = 0;
  {
    const ScopedNoAlloc no_alloc;
    const ScopedNoLock no_lock;
    for (std::size_t t = 0; t < engine().num_ticks(); ++t)
      assim.push(t, block(t));
    allocs = no_alloc.allocations();
    locks = no_lock.locks();
  }
  EXPECT_EQ(allocs, 0u) << "steady-state push allocated";
  EXPECT_EQ(locks, 0u) << "steady-state push took a mutex";
  EXPECT_TRUE(assim.complete());
}

TEST_F(SteadyStateTest, PushManyIsAllocAndLockFree) {
  SKIP_WITHOUT_CHECKS();
  StreamingAssimilator a0 = engine().start();
  StreamingAssimilator a1 = engine().start();
  warm_up(a0);
  warm_up(a1);
  // Warm push_many's own thread_local pointer tables, then reset again.
  {
    StreamingAssimilator* events[] = {&a0, &a1};
    const std::span<const double> blocks[] = {block(0), block(0)};
    StreamingAssimilator::push_many(events, 0, blocks);
    a0.reset();
    a1.reset();
  }
  std::uint64_t allocs = 0, locks = 0;
  {
    const ScopedNoAlloc no_alloc;
    const ScopedNoLock no_lock;
    for (std::size_t t = 0; t < engine().num_ticks(); ++t) {
      StreamingAssimilator* events[] = {&a0, &a1};
      const std::span<const double> blocks[] = {block(t), block(t)};
      StreamingAssimilator::push_many(events, t, blocks);
    }
    allocs = no_alloc.allocations();
    locks = no_lock.locks();
  }
  EXPECT_EQ(allocs, 0u) << "steady-state push_many allocated";
  EXPECT_EQ(locks, 0u) << "steady-state push_many took a mutex";
  EXPECT_TRUE(a0.complete());
  EXPECT_TRUE(a1.complete());
}

TEST_F(SteadyStateTest, ForecastIntoIsAllocFree) {
  SKIP_WITHOUT_CHECKS();
  StreamingAssimilator assim = engine().start();
  warm_up(assim);
  Forecast fc;
  assim.forecast_into(fc);  // grows fc's buffers once
  assim.push(0, block(0));
  std::uint64_t allocs = 0;
  {
    const ScopedNoAlloc no_alloc;
    assim.forecast_into(fc);
    allocs = no_alloc.allocations();
  }
  EXPECT_EQ(allocs, 0u) << "steady-state forecast_into allocated";
}

TEST_F(SteadyStateTest, BlockToeplitzApplyFamilyIsAllocAndLockFree) {
  SKIP_WITHOUT_CHECKS();
  const BlockToeplitz& f = (*twin_)->posterior().forward_map();
  std::vector<double> x(f.input_dim(), 0.5);
  std::vector<double> y(f.output_dim(), 0.0);
  std::vector<double> xt(f.input_dim(), 0.0);
  const std::size_t half_ticks = f.num_blocks() / 2 + 1;
  const std::span<const double> y_prefix =
      std::span<const double>(y).first(half_ticks * f.block_rows());
  // Warm the thread_local FFT workspace through every path under test.
  f.apply(x, y);
  f.apply_transpose(y, xt);
  f.apply_transpose_prefix(y_prefix, half_ticks, xt);
  std::uint64_t allocs = 0, locks = 0;
  {
    const ScopedNoAlloc no_alloc;
    const ScopedNoLock no_lock;
    f.apply(x, y);
    f.apply_transpose(y, xt);
    f.apply_transpose_prefix(y_prefix, half_ticks, xt);
    allocs = no_alloc.allocations();
    locks = no_lock.locks();
  }
  EXPECT_EQ(allocs, 0u) << "steady-state BlockToeplitz apply allocated";
  EXPECT_EQ(locks, 0u) << "steady-state BlockToeplitz apply took a mutex";
}

// The EventSession publish path (forecast_into + snapshot swap) is zero-
// allocation in steady state. It is NOT lock-free by design — the snapshot
// mutex is the dashboard-read contract — so only the allocation sentinel
// arms here. drain_for runs on the test thread: the thread_local counters
// see exactly the drain + publish work.
TEST_F(SteadyStateTest, EventSessionPublishIsAllocFree) {
  SKIP_WITHOUT_CHECKS();
  ServiceTelemetry telemetry;
  EventSession session(1, *cached_, AlertPolicy{}, 64,
                       BackpressurePolicy::kBlock);
  // Warm two drain cycles: grow the drain batch, the staging forecast, and
  // the assimilator's scratch.
  for (std::size_t t = 0; t < 2; ++t) {
    ASSERT_TRUE(session.submit(t, block(t), telemetry));
    session.drain_for(telemetry);
  }
  std::uint64_t allocs = 0;
  ASSERT_TRUE(session.submit(2, block(2), telemetry));
  {
    const ScopedNoAlloc no_alloc;
    session.drain_for(telemetry);
    allocs = no_alloc.allocations();
  }
  EXPECT_EQ(allocs, 0u) << "steady-state drain+publish allocated";
  EXPECT_EQ(session.snapshot().ticks_assimilated, 3u);
}

// The lifecycle journal's append is the piece of the observability layer
// that runs ON the drain hot path, so it carries the strongest contract:
// zero allocations AND zero locks — first proven on the raw ring, then on
// the full drain+publish path with a journal attached (the configuration
// every WarningService session actually runs).
TEST_F(SteadyStateTest, JournalAppendIsAllocAndLockFree) {
  SKIP_WITHOUT_CHECKS();
  EventJournal journal(256);
  JournalRecord r;
  r.event = 7;
  r.kind = JournalKind::kPush;
  journal.append(r);  // nothing to warm, but keep the shape uniform
  std::uint64_t allocs = 0, locks = 0;
  {
    const ScopedNoAlloc no_alloc;
    const ScopedNoLock no_lock;
    for (std::uint64_t i = 0; i < 512; ++i) {
      r.tick = i;
      journal.append(r);  // wraps twice: the wrap path must stay clean too
    }
    allocs = no_alloc.allocations();
    locks = no_lock.locks();
  }
  EXPECT_EQ(allocs, 0u) << "journal append allocated";
  EXPECT_EQ(locks, 0u) << "journal append took a lock";
  EXPECT_EQ(journal.appended(), 513u);
  EXPECT_EQ(journal.dropped(), 513u - 256u);
}

TEST_F(SteadyStateTest, EventSessionDrainWithJournalIsAllocFree) {
  SKIP_WITHOUT_CHECKS();
  ServiceTelemetry telemetry;
  EventJournal journal;
  EventSession session(1, *cached_, AlertPolicy{}, 64,
                       BackpressurePolicy::kBlock, &journal);
  for (std::size_t t = 0; t < 2; ++t) {
    ASSERT_TRUE(session.submit(t, block(t), telemetry));
    session.drain_for(telemetry);
  }
  std::uint64_t allocs = 0;
  ASSERT_TRUE(session.submit(2, block(2), telemetry));
  {
    const ScopedNoAlloc no_alloc;
    session.drain_for(telemetry);
    allocs = no_alloc.allocations();
  }
  EXPECT_EQ(allocs, 0u) << "journaled drain+publish allocated";
  // The journal really was written to on the guarded path.
  EXPECT_GE(journal.appended(), 4u);  // open + 3 push records
}

// The full WarningService drain cycle cannot be allocation-FREE (each submit
// buffers a block; each pump posts a pool job), but it must be allocation-
// FLAT: a small constant number of allocations per tick, independent of
// problem size. Submits land on this thread but drains run on pool workers,
// so the assertion uses the process-wide total, quiesced by drain().
TEST_F(SteadyStateTest, WarningServiceDrainIsAllocFlat) {
  SKIP_WITHOUT_CHECKS();
  WarningService service({.num_workers = 1, .max_pending_per_event = 64});
  const EventId id = service.open_event(*cached_);
  const std::size_t nt = engine().num_ticks();
  // Warm one full event cycle (engine scratch on the worker thread, queue
  // capacities, telemetry buckets).
  for (std::size_t t = 0; t < nt; ++t) service.submit(id, t, block(t));
  service.drain();
  const EventId id2 = service.open_event(*cached_);
  service.submit(id2, 0, block(0));
  service.drain();  // worker-thread warm-up for the second session

  const std::uint64_t before = debug::total_allocation_count();
  for (std::size_t t = 1; t < nt; ++t) service.submit(id2, t, block(t));
  service.drain();
  const std::uint64_t per_tick =
      (debug::total_allocation_count() - before) / (nt - 1);
  // Budget: block copy + map node per submit, a pool job (+ std::function)
  // per pump, slack for libstdc++ internals. Flat means "a dozen small
  // allocations per tick", never "proportional to data/parameter dim".
  EXPECT_LE(per_tick, 16u) << "service drain allocations are not flat";
  EXPECT_TRUE(service.close_event(id2).complete);
}

}  // namespace
}  // namespace tsunami
