// Tests for the scaling simulator (the Fig. 5 substitution): machine
// profiles, weak/strong scaling efficiency behaviour, and the saturation
// throughput curve.

#include <gtest/gtest.h>

#include "parallel/sim_comm.hpp"

namespace tsunami {
namespace {

ScalingSimulator make_sim(MachineProfile profile = MachineProfile::el_capitan()) {
  // ~471 state DOFs per hex at order 4 (paper-like); one shared element face
  // carries the pressure trace (25 nodes) + velocity trace (3 x 16 nodes)
  // in FP64 -> ~600 bytes.
  return ScalingSimulator(std::move(profile), 471.0, 600.0);
}

TEST(MachineProfile, PresetsAreOrdered) {
  // Peak per-device throughput: El Capitan MI300A and Alps GH200 lead the
  // A100-based Perlmutter (Fig. 7's saturated rates).
  const auto ec = MachineProfile::el_capitan();
  const auto alps = MachineProfile::alps();
  const auto perl = MachineProfile::perlmutter();
  EXPECT_GT(ec.peak_dof_per_s, perl.peak_dof_per_s);
  EXPECT_GT(alps.peak_dof_per_s, perl.peak_dof_per_s);
}

TEST(ScalingSimulator, ThroughputSaturatesWithProblemSize) {
  const auto sim = make_sim();
  const double t_small = sim.throughput_at(1e4);
  const double t_mid = sim.throughput_at(1e6);
  const double t_large = sim.throughput_at(1e9);
  EXPECT_LT(t_small, t_mid);
  EXPECT_LT(t_mid, t_large);
  EXPECT_NEAR(t_large, sim.machine().peak_dof_per_s,
              0.01 * sim.machine().peak_dof_per_s);
}

TEST(ScalingSimulator, SingleRankHasNoCommunication) {
  const auto sim = make_sim();
  const auto cost = sim.timestep({32, 32, 8}, 1);
  EXPECT_DOUBLE_EQ(cost.comm_s, 0.0);
  EXPECT_GT(cost.compute_s, 0.0);
}

TEST(ScalingSimulator, WeakScalingEfficiencyHighAndDecreasing) {
  const auto sim = make_sim();
  // Paper-like local box (~5M elements/GPU in the flagship weak scaling).
  const auto curve = sim.weak_scaling({128, 128, 32},
                                      {1, 4, 16, 64, 256, 1024});
  ASSERT_EQ(curve.size(), 6u);
  EXPECT_NEAR(curve[0].efficiency, 1.0, 1e-12);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].efficiency, curve[i - 1].efficiency + 1e-9);
  }
  // The paper reports 92% weak efficiency at 128x scale-out on El Capitan;
  // the calibrated model must stay in that regime (>85%) at 1024 ranks.
  EXPECT_GT(curve.back().efficiency, 0.85);
}

TEST(ScalingSimulator, StrongScalingSpeedupSublinearButReal) {
  // Mirror the paper's El Capitan strong-scaling regime: a fixed ~10^10-DOF
  // problem (434 B DOF in the paper) swept over a 128x increase in ranks,
  // ending near 10 M DOF per device — above the saturation knee, where the
  // paper reports 79% efficiency.
  const auto sim = make_sim();
  const std::vector<std::size_t> ranks{8, 16, 32, 64, 128, 256, 512, 1024};
  const auto curve = sim.strong_scaling({512, 512, 80}, ranks);
  ASSERT_EQ(curve.size(), ranks.size());
  EXPECT_NEAR(curve[0].efficiency, 1.0, 1e-12);
  // Total time decreases with more ranks...
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LT(curve[i].total_s, curve[i - 1].total_s);
  // ...but efficiency decays as local problems shrink (Fig. 5 right).
  EXPECT_LT(curve.back().efficiency, 0.95);
  EXPECT_GT(curve.back().efficiency, 0.5);
}

TEST(ScalingSimulator, CommunicationGrowsWithRankCount) {
  const auto sim = make_sim();
  const auto few = sim.timestep({256, 256, 16}, 8);
  const auto many = sim.timestep({256, 256, 16}, 512);
  EXPECT_GT(many.comm_s, 0.0);
  // Compute shrinks with more ranks; comm does not shrink proportionally.
  EXPECT_LT(many.compute_s, few.compute_s);
  EXPECT_GT(many.comm_s / many.compute_s, few.comm_s / few.compute_s);
}

TEST(ScalingSimulator, FasterNetworkImprovesStrongScaling) {
  auto slow_profile = MachineProfile::perlmutter();
  auto fast_profile = MachineProfile::perlmutter();
  fast_profile.bandwidth_bytes_per_s *= 10.0;
  fast_profile.latency_s /= 10.0;
  const auto slow = ScalingSimulator(slow_profile, 471.0, 600.0);
  const auto fast = ScalingSimulator(fast_profile, 471.0, 600.0);
  const std::vector<std::size_t> ranks{4, 256};
  const auto s_curve = slow.strong_scaling({128, 128, 16}, ranks);
  const auto f_curve = fast.strong_scaling({128, 128, 16}, ranks);
  EXPECT_GT(f_curve.back().efficiency, s_curve.back().efficiency);
}

TEST(ScalingSimulator, PaperScaleWeakEfficiencyMatchesShape) {
  // Reproduce the Fig. 5 weak-scaling experiment shape on the El Capitan
  // profile: 340 -> 43,520 GPUs with ~5M elements per GPU, efficiency
  // within [0.85, 1.0] and monotone decreasing.
  const auto sim = make_sim(MachineProfile::el_capitan());
  const auto curve =
      sim.weak_scaling({170, 170, 170}, {340, 2720, 43520});
  EXPECT_GT(curve.back().efficiency, 0.85);
  EXPECT_LE(curve.back().efficiency, curve.front().efficiency);
}

TEST(ScalingSimulator, RejectsNonpositiveCosts) {
  EXPECT_THROW(ScalingSimulator(MachineProfile::alps(), 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(ScalingSimulator(MachineProfile::alps(), 1.0, -2.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsunami
