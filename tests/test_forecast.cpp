// Tests for the goal-oriented QoI machinery: the data-to-QoI operator Q, the
// QoI posterior covariance, and credible-interval behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "core/data_space_hessian.hpp"
#include "core/forecast.hpp"
#include "core/p2o_builder.hpp"
#include "core/posterior.hpp"
#include "linalg/blas.hpp"
#include "linalg/eigen.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

struct QoiProblem {
  QoiProblem()
      : bathy(flat_basin(1500.0, 30e3, 30e3)),
        mesh(bathy, 2, 2, 1),
        model(mesh, 1) {
    sensors = std::make_unique<ObservationOperator>(
        ObservationOperator::seafloor_sensors(model,
                                              {{8e3, 9e3}, {21e3, 22e3}}));
    gauges = std::make_unique<ObservationOperator>(
        ObservationOperator::surface_gauges(model, {{15e3, 15e3}}));
    grid.num_intervals = 4;
    grid.substeps = 3;
    grid.dt = model.cfl_timestep(0.4);
    f = build_p2o_map(model, *sensors, grid);
    fq = build_p2o_map(model, *gauges, grid);

    MaternPriorConfig pcfg;
    pcfg.sigma = 0.3;
    pcfg.correlation_length = 10e3;
    prior = std::make_unique<MaternPrior>(3, 3, 15e3, 15e3, pcfg);

    // Calibrate the noise to pressure scale: 5% of the data from a typical
    // prior draw (see test_posterior.cpp for the conditioning rationale).
    Rng rng(99);
    std::vector<double> m_typ(f.toeplitz->input_dim());
    for (std::size_t t = 0; t < grid.num_intervals; ++t) {
      const auto block = prior->sample(rng);
      std::copy(block.begin(), block.end(),
                m_typ.begin() + static_cast<std::ptrdiff_t>(
                                    t * prior->dim()));
    }
    std::vector<double> d_typ(f.toeplitz->output_dim());
    f.toeplitz->apply(m_typ, std::span<double>(d_typ));
    noise = relative_noise(d_typ, 0.05);

    hessian =
        std::make_unique<DataSpaceHessian>(*f.toeplitz, *prior, noise, 16);
    posterior = std::make_unique<Posterior>(*f.toeplitz, *prior, *hessian);
    predictor = std::make_unique<QoiPredictor>(*f.toeplitz, *fq.toeplitz,
                                               *prior, *hessian);
  }

  /// Noisy observations from a fresh prior-distributed truth.
  std::vector<double> make_data(Rng& rng) const {
    std::vector<double> m(f.toeplitz->input_dim());
    for (std::size_t t = 0; t < grid.num_intervals; ++t) {
      const auto block = prior->sample(rng);
      std::copy(block.begin(), block.end(),
                m.begin() + static_cast<std::ptrdiff_t>(t * prior->dim()));
    }
    std::vector<double> d(f.toeplitz->output_dim());
    f.toeplitz->apply(m, std::span<double>(d));
    for (auto& v : d) v += noise.sigma * rng.normal();
    return d;
  }

  Bathymetry bathy;
  HexMesh mesh;
  AcousticGravityModel model;
  std::unique_ptr<ObservationOperator> sensors, gauges;
  TimeGrid grid;
  P2oMap f, fq;
  std::unique_ptr<MaternPrior> prior;
  NoiseModel noise;
  std::unique_ptr<DataSpaceHessian> hessian;
  std::unique_ptr<Posterior> posterior;
  std::unique_ptr<QoiPredictor> predictor;
};

TEST(QoiPredictor, DimensionsMatchProblem) {
  QoiProblem qp;
  EXPECT_EQ(qp.predictor->qoi_dim(), qp.fq.toeplitz->output_dim());
  EXPECT_EQ(qp.predictor->data_dim(), qp.f.toeplitz->output_dim());
  EXPECT_EQ(qp.predictor->num_gauges(), 1u);
  EXPECT_EQ(qp.predictor->num_times(), 4u);
}

TEST(QoiPredictor, QdEqualsFqAppliedToMapPoint) {
  // The paper's Phase 4 identity: q_map = Fq m_map = Q d_obs.
  QoiProblem qp;
  Rng rng(1);
  const auto d_obs = qp.make_data(rng);

  const auto fc = qp.predictor->predict(d_obs);
  const auto m_map = qp.posterior->map_point(d_obs);
  std::vector<double> q_via_m(qp.predictor->qoi_dim());
  qp.predictor->apply_fq_mean(m_map, std::span<double>(q_via_m));

  const double scale = amax(q_via_m) + 1e-30;
  for (std::size_t i = 0; i < q_via_m.size(); ++i)
    EXPECT_NEAR(fc.mean[i], q_via_m[i], 1e-8 * scale) << "qoi " << i;
}

TEST(QoiPredictor, CovarianceIsSymmetricPsd) {
  QoiProblem qp;
  const Matrix& cov = qp.predictor->qoi_covariance();
  for (std::size_t i = 0; i < cov.rows(); ++i)
    for (std::size_t j = 0; j < cov.cols(); ++j)
      EXPECT_NEAR(cov(i, j), cov(j, i), 1e-12);
  const auto eigs = symmetric_eigenvalues(cov);
  for (double e : eigs) EXPECT_GE(e, -1e-10 * std::abs(eigs.front()));
}

TEST(QoiPredictor, PosteriorQoiVarianceBelowPrior) {
  // Gamma_post(q) <= Fq Gamma_prior Fq^T in the PSD order; check diagonals.
  QoiProblem qp;
  // Prior QoI variance: diag(Fq C Fq^T) via matvecs.
  const std::size_t nq = qp.predictor->qoi_dim();
  for (std::size_t i = 0; i < nq; ++i) {
    std::vector<double> e(nq, 0.0);
    e[i] = 1.0;
    std::vector<double> fqt(qp.fq.toeplitz->input_dim());
    qp.fq.toeplitz->apply_transpose(e, std::span<double>(fqt));
    std::vector<double> cfqt(fqt.size());
    qp.prior->apply_time_blocks(fqt, std::span<double>(cfqt),
                                qp.grid.num_intervals);
    std::vector<double> prior_col(nq);
    qp.fq.toeplitz->apply(cfqt, std::span<double>(prior_col));
    const double prior_var = prior_col[i];
    EXPECT_LE(qp.predictor->qoi_covariance()(i, i),
              prior_var * (1.0 + 1e-9));
  }
}

TEST(QoiPredictor, CredibleIntervalsBracketMean) {
  QoiProblem qp;
  Rng rng(2);
  const auto d_obs = qp.make_data(rng);
  const auto fc = qp.predictor->predict(d_obs);
  for (std::size_t i = 0; i < fc.mean.size(); ++i) {
    EXPECT_LE(fc.lower95[i], fc.mean[i]);
    EXPECT_GE(fc.upper95[i], fc.mean[i]);
    EXPECT_NEAR(fc.upper95[i] - fc.lower95[i], 2.0 * 1.96 * fc.stddev[i],
                1e-12);
  }
}

TEST(QoiPredictor, CoverageOfTrueQoiUnderRepeatedNoise) {
  // Frequentist check of the 95% CIs: draw a prior-distributed truth, make
  // noisy data, and verify the CI covers the true QoI at roughly the nominal
  // rate (loose bounds; small sample).
  QoiProblem qp;
  Rng rng(3);
  const std::size_t n_param = qp.f.toeplitz->input_dim();
  const std::size_t n_data = qp.f.toeplitz->output_dim();
  const std::size_t nq = qp.predictor->qoi_dim();

  int covered = 0, total = 0;
  for (int trial = 0; trial < 40; ++trial) {
    // Truth from the prior (the Bayesian coverage regime).
    std::vector<double> m_true(n_param);
    for (std::size_t t = 0; t < qp.grid.num_intervals; ++t) {
      const auto block = qp.prior->sample(rng);
      std::copy(block.begin(), block.end(),
                m_true.begin() + static_cast<std::ptrdiff_t>(
                                     t * qp.prior->dim()));
    }
    std::vector<double> d(n_data), q_true(nq);
    qp.f.toeplitz->apply(m_true, std::span<double>(d));
    qp.fq.toeplitz->apply(m_true, std::span<double>(q_true));
    for (auto& v : d) v += qp.noise.sigma * rng.normal();

    const auto fc = qp.predictor->predict(d);
    for (std::size_t i = 0; i < nq; ++i) {
      if (fc.stddev[i] < 1e-14) continue;  // unidentified QoI: skip
      ++total;
      if (q_true[i] >= fc.lower95[i] && q_true[i] <= fc.upper95[i]) ++covered;
    }
  }
  ASSERT_GT(total, 50);
  const double rate = static_cast<double>(covered) / total;
  EXPECT_GT(rate, 0.85);
  EXPECT_LE(rate, 1.0);
}

TEST(Forecast, FieldAccessorIndexesTimeMajor) {
  Forecast fc;
  fc.num_gauges = 2;
  fc.num_times = 3;
  fc.mean = {0, 1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(fc.at(fc.mean, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(fc.at(fc.mean, 1, 0), 2.0);
  EXPECT_DOUBLE_EQ(fc.at(fc.mean, 2, 1), 5.0);
}

TEST(QoiPredictor, PredictRejectsWrongSize) {
  QoiProblem qp;
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(qp.predictor->predict(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace tsunami
