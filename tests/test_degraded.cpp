// Degraded-mode inference tests (sensor dropout + fault injection).
//
// The contract under test: a StreamingAssimilator whose sensors die
// mid-stream still holds an EXACT posterior — over the surviving network —
// after every subsequent push. Exactness is asserted three independent
// ways: against a from-scratch reduced-network engine
// (StreamingEngine::reduced), against the brute-force masked oracle
// (Posterior::map_point_masked), and against inline dense solves over the
// live rows of K. Drop/restore is a pure projection, so a full cycle must
// return the assimilator BITWISE to its pristine state. On top sit the
// service-level pieces: validity-bitmap submits, sensor control ops,
// degraded provenance in snapshots/journal/metrics, and the deterministic
// fault injector.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <set>
#include <span>
#include <vector>

#include "core/digital_twin.hpp"
#include "obs/metrics.hpp"
#include "service/engine_cache.hpp"
#include "service/fault_injector.hpp"
#include "service/warning_service.hpp"

namespace tsunami {
namespace {

class DegradedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto twin = std::make_shared<DigitalTwin>(TwinConfig::tiny());
    RuptureConfig rc;
    Asperity a;
    a.x0 = 0.3 * twin->mesh().length_x();
    a.y0 = 0.5 * twin->mesh().length_y();
    a.rx = 16e3;
    a.ry = 24e3;
    a.peak_uplift = 2.0;
    rc.asperities.push_back(a);
    rc.hypocenter_x = a.x0;
    rc.hypocenter_y = a.y0;
    Rng rng(7);
    event_ = new SyntheticEvent(twin->synthesize(RuptureScenario(rc), rng));
    twin->run_offline(event_->noise);
    twin_ = new std::shared_ptr<const DigitalTwin>(std::move(twin));
    cache_ = new EngineCache({.track_map = true});
    cached_ = new std::shared_ptr<const CachedEngine>(cache_->adopt(*twin_));
  }
  static void TearDownTestSuite() {
    delete cached_;
    delete cache_;
    delete twin_;
    delete event_;
    cached_ = nullptr;
    cache_ = nullptr;
    twin_ = nullptr;
    event_ = nullptr;
  }

  static const DigitalTwin& twin() { return **twin_; }
  static const StreamingEngine& engine() { return (*cached_)->engine(); }
  static std::size_t nt() { return engine().num_ticks(); }
  static std::size_t nd() { return engine().block_size(); }

  static std::span<const double> block(std::size_t tick) {
    return std::span<const double>(event_->d_obs).subspan(tick * nd(), nd());
  }

  /// Brute-force oracle: the exact posterior MAP given the first `ticks`
  /// blocks with the rows in `dead` (global row indices < ticks * nd)
  /// projected out — a dense solve over the live rows of K, lifted through
  /// the prefix adjoint. Independent of every line of the streaming
  /// degraded machinery.
  static std::vector<double> oracle_map(std::size_t ticks,
                                        const std::set<std::size_t>& dead) {
    const std::size_t p = ticks * nd();
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < p; ++i)
      if (!dead.count(i)) live.push_back(i);
    const Matrix& k = twin().hessian().matrix();
    Matrix ks(live.size(), live.size());
    for (std::size_t r = 0; r < live.size(); ++r)
      for (std::size_t c = 0; c < live.size(); ++c)
        ks(r, c) = k(live[r], live[c]);
    DenseCholesky chol(ks);
    std::vector<double> rhs(live.size());
    for (std::size_t r = 0; r < live.size(); ++r)
      rhs[r] = event_->d_obs[live[r]];
    chol.solve_in_place(rhs);
    std::vector<double> y(p, 0.0);
    for (std::size_t r = 0; r < live.size(); ++r) y[live[r]] = rhs[r];
    std::vector<double> m(twin().parameter_dim());
    twin().posterior().apply_gstar_prefix(y, ticks, std::span<double>(m));
    return m;
  }

  /// Bitwise state fingerprint of everything a drop/restore cycle must
  /// preserve: the forecast buffers and the MAP estimate.
  static bool states_bitwise_equal(StreamingAssimilator& a,
                                   StreamingAssimilator& b) {
    const Forecast fa = a.forecast(), fb = b.forecast();
    const std::vector<double> ma = a.map_estimate(), mb = b.map_estimate();
    return fa.degraded == fb.degraded &&
           fa.dropped_channels == fb.dropped_channels &&
           std::memcmp(fa.mean.data(), fb.mean.data(),
                       fa.mean.size() * sizeof(double)) == 0 &&
           std::memcmp(fa.stddev.data(), fb.stddev.data(),
                       fa.stddev.size() * sizeof(double)) == 0 &&
           std::memcmp(ma.data(), mb.data(), ma.size() * sizeof(double)) == 0;
  }

  static SyntheticEvent* event_;
  static std::shared_ptr<const DigitalTwin>* twin_;
  static EngineCache* cache_;
  static std::shared_ptr<const CachedEngine>* cached_;
};

SyntheticEvent* DegradedTest::event_ = nullptr;
std::shared_ptr<const DigitalTwin>* DegradedTest::twin_ = nullptr;
EngineCache* DegradedTest::cache_ = nullptr;
std::shared_ptr<const CachedEngine>* DegradedTest::cached_ = nullptr;

// ---------------------------------------------------------------------------
// Tentpole acceptance: mid-stream drop + continued pushes == from-scratch
// assimilation over the reduced network, to <= 1e-10.
// ---------------------------------------------------------------------------

TEST_F(DegradedTest, DropMidStreamMatchesReducedEngineFromScratch) {
  const std::size_t drop_at = nt() / 2;
  const std::size_t sensor = 1;

  StreamingAssimilator assim = engine().start();
  for (std::size_t t = 0; t < drop_at; ++t) assim.push(t, block(t));
  assim.drop_sensor(sensor);
  for (std::size_t t = drop_at; t < nt(); ++t) assim.push(t, block(t));

  SensorMask mask(nd());
  mask.drop(sensor);
  const StreamingEngine reduced = engine().reduced(mask);
  StreamingAssimilator oracle = reduced.start();
  for (std::size_t t = 0; t < nt(); ++t) oracle.push(t, block(t));

  EXPECT_LE(DigitalTwin::relative_error(assim.map_estimate(),
                                        oracle.map_estimate()),
            1e-10);
  const Forecast fc = assim.forecast(), fo = oracle.forecast();
  EXPECT_LE(DigitalTwin::relative_error(fc.mean, fo.mean), 1e-10);
  EXPECT_LE(DigitalTwin::relative_error(fc.stddev, fo.stddev), 1e-10);
  EXPECT_TRUE(fc.degraded);
  EXPECT_EQ(fc.dropped_channels, 1u);
}

// Mid-stream (incomplete prefix) agreement too, at every tick after the
// drop — the projection must be exact when the reduced oracle has seen the
// same prefix.
TEST_F(DegradedTest, DropAgreesWithReducedEngineAtEveryTick) {
  const std::size_t drop_at = 2;
  const std::size_t sensor = 0;
  SensorMask mask(nd());
  mask.drop(sensor);
  const StreamingEngine reduced = engine().reduced(mask);

  StreamingAssimilator assim = engine().start();
  StreamingAssimilator oracle = reduced.start();
  for (std::size_t t = 0; t < nt(); ++t) {
    if (t == drop_at) assim.drop_sensor(sensor);
    assim.push(t, block(t));
    oracle.push(t, block(t));
    if (t < drop_at) continue;
    EXPECT_LE(DigitalTwin::relative_error(assim.map_estimate(),
                                          oracle.map_estimate()),
              1e-10)
        << "tick " << t;
    EXPECT_LE(DigitalTwin::relative_error(assim.forecast().mean,
                                          oracle.forecast().mean),
              1e-10)
        << "tick " << t;
  }
}

TEST_F(DegradedTest, DropAfterFullStreamMatchesMaskedPosteriorOracle) {
  StreamingAssimilator assim = engine().start();
  for (std::size_t t = 0; t < nt(); ++t) assim.push(t, block(t));
  assim.drop_sensor(2 % nd());

  SensorMask mask(nd());
  mask.drop(2 % nd());
  const std::vector<double> m_ref =
      twin().posterior().map_point_masked(event_->d_obs, mask);
  EXPECT_LE(DigitalTwin::relative_error(assim.map_estimate(), m_ref), 1e-10);
}

TEST_F(DegradedTest, ReducedEngineFullStreamMatchesMaskedPosteriorOracle) {
  SensorMask mask(nd());
  mask.drop(0);
  const StreamingEngine reduced = engine().reduced(mask);
  StreamingAssimilator assim = reduced.start();
  for (std::size_t t = 0; t < nt(); ++t) assim.push(t, block(t));

  const std::vector<double> m_ref =
      twin().posterior().map_point_masked(event_->d_obs, mask);
  EXPECT_LE(DigitalTwin::relative_error(assim.map_estimate(), m_ref), 1e-10);
}

// ---------------------------------------------------------------------------
// Drop/restore reversibility: the projection never mutates the underlying
// stream state, so a full cycle is bitwise identity.
// ---------------------------------------------------------------------------

TEST_F(DegradedTest, DropRestoreCycleIsBitwiseIdentity) {
  const std::size_t ticks = nt() / 2;
  StreamingAssimilator pristine = engine().start();
  StreamingAssimilator cycled = engine().start();
  for (std::size_t t = 0; t < ticks; ++t) {
    pristine.push(t, block(t));
    cycled.push(t, block(t));
  }
  cycled.drop_sensor(1);
  EXPECT_TRUE(cycled.degraded());
  cycled.restore_sensor(1);
  EXPECT_FALSE(cycled.degraded());
  EXPECT_TRUE(states_bitwise_equal(pristine, cycled));
}

TEST_F(DegradedTest, RepeatedDropRestoreCyclesStayBitwiseAndExact) {
  const std::size_t ticks = nt() / 2;
  StreamingAssimilator pristine = engine().start();
  StreamingAssimilator cycled = engine().start();
  for (std::size_t t = 0; t < ticks; ++t) {
    pristine.push(t, block(t));
    cycled.push(t, block(t));
  }
  for (int cycle = 0; cycle < 3; ++cycle) {
    cycled.drop_sensor(0);
    cycled.drop_sensor(2 % nd());  // overlapping multi-sensor outage
    EXPECT_EQ(cycled.dropped_channels(), nd() > 2 ? 2u : 1u);
    cycled.restore_sensor(2 % nd());
    cycled.restore_sensor(0);
    EXPECT_TRUE(states_bitwise_equal(pristine, cycled))
        << "cycle " << cycle;
  }
}

// Dropping a channel the stream has never observed must be exact (and
// cheap): before any push the projection is empty, and the posterior equals
// the reduced-network prior.
TEST_F(DegradedTest, DropBeforeFirstPushMatchesReducedEngine) {
  StreamingAssimilator assim = engine().start();
  assim.drop_sensor(1);
  EXPECT_TRUE(assim.degraded());
  for (std::size_t t = 0; t < nt(); ++t) assim.push(t, block(t));

  SensorMask mask(nd());
  mask.drop(1);
  const StreamingEngine reduced = engine().reduced(mask);
  StreamingAssimilator oracle = reduced.start();
  for (std::size_t t = 0; t < nt(); ++t) oracle.push(t, block(t));
  EXPECT_LE(DigitalTwin::relative_error(assim.map_estimate(),
                                        oracle.map_estimate()),
            1e-10);
}

// ---------------------------------------------------------------------------
// Per-tick validity bitmaps (partial blocks / whole-block packet loss).
// ---------------------------------------------------------------------------

TEST_F(DegradedTest, InvalidChannelsOfOneTickMatchBruteForceOracle) {
  const std::size_t bad_tick = 1;
  std::vector<std::uint8_t> valid(nd(), 1);
  valid[0] = 0;  // channel 0 of tick 1 lost on the wire

  StreamingAssimilator assim = engine().start();
  const std::size_t ticks = std::min<std::size_t>(nt(), 5);
  for (std::size_t t = 0; t < ticks; ++t) {
    if (t == bad_tick)
      assim.push(t, block(t), valid);
    else
      assim.push(t, block(t));
  }
  EXPECT_TRUE(assim.degraded());
  EXPECT_EQ(assim.dropped_channels(), 0u);  // no standing mask, one dead row

  const std::set<std::size_t> dead = {bad_tick * nd() + 0};
  EXPECT_LE(DigitalTwin::relative_error(assim.map_estimate(),
                                        oracle_map(ticks, dead)),
            1e-10);
}

TEST_F(DegradedTest, WholeBlockLossMatchesBruteForceOracle) {
  const std::size_t lost_tick = 2;
  const std::vector<std::uint8_t> all_lost(nd(), 0);

  StreamingAssimilator assim = engine().start();
  const std::size_t ticks = std::min<std::size_t>(nt(), 6);
  std::set<std::size_t> dead;
  for (std::size_t t = 0; t < ticks; ++t) {
    if (t == lost_tick) {
      assim.push(t, block(t), all_lost);
      for (std::size_t c = 0; c < nd(); ++c) dead.insert(t * nd() + c);
    } else {
      assim.push(t, block(t));
    }
  }
  EXPECT_LE(DigitalTwin::relative_error(assim.map_estimate(),
                                        oracle_map(ticks, dead)),
            1e-10);
}

// Ticks pushed while a sensor is masked are permanently lost; data pushed
// before the drop returns on restore. The oracle sees exactly the interim
// rows dead.
TEST_F(DegradedTest, RestoreAfterMaskedInterimMatchesBruteForceOracle) {
  const std::size_t sensor = 1;
  const std::size_t drop_at = 2, restore_at = 4;
  const std::size_t ticks = std::min<std::size_t>(nt(), 6);
  ASSERT_LT(restore_at, ticks);

  StreamingAssimilator assim = engine().start();
  std::set<std::size_t> dead;
  for (std::size_t t = 0; t < ticks; ++t) {
    if (t == drop_at) assim.drop_sensor(sensor);
    if (t == restore_at) assim.restore_sensor(sensor);
    assim.push(t, block(t));
    if (t >= drop_at && t < restore_at) dead.insert(t * nd() + sensor);
  }
  EXPECT_TRUE(assim.degraded());          // permanent dead rows remain
  EXPECT_EQ(assim.dropped_channels(), 0u);  // but no standing mask
  EXPECT_LE(DigitalTwin::relative_error(assim.map_estimate(),
                                        oracle_map(ticks, dead)),
            1e-10);
}

// Projecting data out can only lose information: the posterior predictive
// stddev must inflate (componentwise) relative to the healthy stream.
TEST_F(DegradedTest, DropInflatesForecastStddev) {
  const std::size_t ticks = nt() / 2;
  StreamingAssimilator healthy = engine().start();
  StreamingAssimilator degraded = engine().start();
  for (std::size_t t = 0; t < ticks; ++t) {
    healthy.push(t, block(t));
    degraded.push(t, block(t));
  }
  degraded.drop_sensor(0);
  const Forecast fh = healthy.forecast(), fd = degraded.forecast();
  for (std::size_t i = 0; i < fh.stddev.size(); ++i)
    EXPECT_GE(fd.stddev[i], fh.stddev[i] - 1e-12) << "qoi " << i;
}

TEST_F(DegradedTest, DropSensorValidation) {
  StreamingAssimilator assim = engine().start();
  EXPECT_THROW(assim.drop_sensor(nd()), std::out_of_range);
  EXPECT_THROW(assim.restore_sensor(nd()), std::out_of_range);
  // Dropping a channel the engine itself already excludes is a caller bug.
  SensorMask mask(nd());
  mask.drop(0);
  const StreamingEngine reduced = engine().reduced(mask);
  StreamingAssimilator on_reduced = reduced.start();
  EXPECT_THROW(on_reduced.drop_sensor(0), std::invalid_argument);
  // Redundant ops are no-ops, not errors (replayed control packets).
  assim.drop_sensor(1);
  assim.drop_sensor(1);
  EXPECT_EQ(assim.dropped_channels(), 1u);
  assim.restore_sensor(1);
  assim.restore_sensor(1);
  EXPECT_FALSE(assim.degraded());
}

TEST_F(DegradedTest, PushValidatesBitmapSize) {
  StreamingAssimilator assim = engine().start();
  const std::vector<std::uint8_t> wrong(nd() + 1, 1);
  EXPECT_THROW(assim.push(0, block(0), wrong), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Service layer: control ops, provenance, corrupt rejection, metrics.
// ---------------------------------------------------------------------------

TEST_F(DegradedTest, ServiceDropSensorMatchesDirectAssimilator) {
  const std::size_t drop_at = nt() / 2;
  const std::size_t sensor = 1;

  WarningService service({.num_workers = 2});
  const EventId id = service.open_event(*cached_);
  for (std::size_t t = 0; t < drop_at; ++t)
    service.submit(id, t, block(t));
  service.drain();  // make the drop boundary deterministic
  service.drop_sensor(id, sensor);

  // The control op republishes immediately, before any further data.
  EventSnapshot mid = service.latest_forecast(id);
  EXPECT_TRUE(mid.degraded);
  EXPECT_EQ(mid.dropped_channels, 1u);

  for (std::size_t t = drop_at; t < nt(); ++t) service.submit(id, t, block(t));
  const EventSnapshot fin = service.close_event(id);

  StreamingAssimilator direct = engine().start();
  for (std::size_t t = 0; t < drop_at; ++t) direct.push(t, block(t));
  direct.drop_sensor(sensor);
  for (std::size_t t = drop_at; t < nt(); ++t) direct.push(t, block(t));
  const Forecast fd = direct.forecast();

  ASSERT_EQ(fin.forecast.mean.size(), fd.mean.size());
  for (std::size_t i = 0; i < fd.mean.size(); ++i) {
    EXPECT_EQ(fin.forecast.mean[i], fd.mean[i]) << i;  // bit-identical
    EXPECT_EQ(fin.forecast.stddev[i], fd.stddev[i]) << i;
  }
  EXPECT_TRUE(fin.degraded);

  // Journal carries the control-plane record.
  bool saw_drop = false;
  for (const JournalRecord& r : service.journal().snapshot())
    if (r.event == id && r.kind == JournalKind::kSensorDrop &&
        r.tick == sensor)
      saw_drop = true;
  EXPECT_TRUE(saw_drop);
}

TEST_F(DegradedTest, ServiceValidityBitmapMatchesDirectAssimilator) {
  std::vector<std::uint8_t> valid(nd(), 1);
  valid[0] = 0;

  WarningService service({.num_workers = 2});
  const EventId id = service.open_event(*cached_);
  for (std::size_t t = 0; t < nt(); ++t) {
    if (t == 1)
      service.submit(id, t, block(t), valid);
    else
      service.submit(id, t, block(t));
  }
  const EventSnapshot fin = service.close_event(id);

  StreamingAssimilator direct = engine().start();
  for (std::size_t t = 0; t < nt(); ++t) {
    if (t == 1)
      direct.push(t, block(t), valid);
    else
      direct.push(t, block(t));
  }
  const Forecast fd = direct.forecast();
  for (std::size_t i = 0; i < fd.mean.size(); ++i)
    EXPECT_EQ(fin.forecast.mean[i], fd.mean[i]) << i;
  EXPECT_TRUE(fin.degraded);
}

TEST_F(DegradedTest, ServiceDegradedMetricsGauge) {
  WarningService service({.num_workers = 1});
  const EventId healthy = service.open_event(*cached_);
  const EventId degraded = service.open_event(*cached_);
  service.drop_sensor(degraded, 0);

  obs::MetricsSnapshot snap;
  service.collect_metrics(snap);
  double degraded_sessions = -1.0, dropped = -1.0;
  for (const obs::MetricSample& s : snap.samples) {
    if (s.name == "tsunami_service_degraded_sessions")
      degraded_sessions = s.value;
    if (s.name == "tsunami_service_dropped_channels" &&
        s.labels == obs::Labels{{"event", std::to_string(degraded)}})
      dropped = s.value;
  }
  EXPECT_EQ(degraded_sessions, 1.0);
  EXPECT_EQ(dropped, 1.0);
  (void)service.close_event(healthy);
  (void)service.close_event(degraded);
}

TEST_F(DegradedTest, ServiceRejectsCorruptBlocksCleanly) {
  WarningService service({.num_workers = 1});
  const EventId id = service.open_event(*cached_);
  const std::vector<double> oversized(nd() + 3, 0.0);
  const std::vector<std::uint8_t> bad_bitmap(nd() + 1, 1);

  EXPECT_THROW(service.submit(id, 0, oversized), std::invalid_argument);
  EXPECT_THROW(service.submit(id, nt() + 7, block(0)), std::invalid_argument);
  EXPECT_THROW(service.submit(id, 0, block(0), bad_bitmap),
               std::invalid_argument);
  EXPECT_EQ(service.telemetry().ticks_corrupt, 3u);

  std::size_t rejects = 0;
  for (const JournalRecord& r : service.journal().snapshot())
    if (r.event == id && r.kind == JournalKind::kReject) ++rejects;
  EXPECT_EQ(rejects, 3u);

  // The session is not poisoned: the genuine stream still assimilates.
  for (std::size_t t = 0; t < nt(); ++t) service.submit(id, t, block(t));
  const EventSnapshot fin = service.close_event(id);
  EXPECT_TRUE(fin.complete);
  EXPECT_FALSE(fin.degraded);
}

// ---------------------------------------------------------------------------
// Fault injector: pure-hash determinism and env parsing.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, DecisionsAreDeterministicAndSeedDependent) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.packet_loss = 0.3;
  plan.corrupt = 0.2;
  const FaultInjector a(plan), b(plan);
  plan.seed = 4321;
  const FaultInjector c(plan);

  std::size_t losses = 0, differs = 0;
  for (std::uint64_t ev = 1; ev <= 5; ++ev) {
    for (std::size_t t = 0; t < 200; ++t) {
      EXPECT_EQ(a.lose_block(ev, t), b.lose_block(ev, t));
      EXPECT_EQ(a.corrupt_block(ev, t), b.corrupt_block(ev, t));
      losses += a.lose_block(ev, t) ? 1u : 0u;
      differs += a.lose_block(ev, t) != c.lose_block(ev, t) ? 1u : 0u;
    }
  }
  // 1000 draws at p = 0.3: the rate must be in the right ballpark, and a
  // different seed must actually change the pattern.
  EXPECT_GT(losses, 200u);
  EXPECT_LT(losses, 400u);
  EXPECT_GT(differs, 0u);
}

TEST(FaultInjectorTest, ProbabilityEndpoints) {
  FaultPlan never;
  const FaultInjector off(never);
  FaultPlan always;
  always.packet_loss = 1.0;
  always.corrupt = 1.0;
  const FaultInjector on(always);
  for (std::size_t t = 0; t < 50; ++t) {
    EXPECT_FALSE(off.lose_block(9, t));
    EXPECT_FALSE(off.corrupt_block(9, t));
    EXPECT_TRUE(on.lose_block(9, t));
    EXPECT_TRUE(on.corrupt_block(9, t));
  }
  EXPECT_FALSE(never.any());
  EXPECT_TRUE(always.any());
}

TEST(FaultInjectorTest, SensorOpsFireAtScriptedTicks) {
  FaultPlan plan;
  plan.sensor_faults.push_back({2, 5, 9});
  plan.sensor_faults.push_back({0, 5, SensorFault::kNever});
  const FaultInjector inj(plan);

  const auto at5 = inj.sensor_ops_at(5);
  ASSERT_EQ(at5.size(), 2u);
  EXPECT_EQ(at5[0], (std::pair<std::size_t, bool>{2, false}));
  EXPECT_EQ(at5[1], (std::pair<std::size_t, bool>{0, false}));
  const auto at9 = inj.sensor_ops_at(9);
  ASSERT_EQ(at9.size(), 1u);
  EXPECT_EQ(at9[0], (std::pair<std::size_t, bool>{2, true}));
  EXPECT_TRUE(inj.sensor_ops_at(6).empty());
}

TEST(FaultInjectorTest, FromEnvParsesAndValidates) {
  ::setenv("TSUNAMI_FAULT_SEED", "99", 1);
  ::setenv("TSUNAMI_FAULT_PACKET_LOSS", "0.25", 1);
  ::setenv("TSUNAMI_FAULT_CORRUPT", "0.5", 1);
  ::setenv("TSUNAMI_FAULT_DROP_SENSOR", "1@3,0@4-8", 1);
  const FaultPlan plan = FaultPlan::from_env();
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_DOUBLE_EQ(plan.packet_loss, 0.25);
  EXPECT_DOUBLE_EQ(plan.corrupt, 0.5);
  ASSERT_EQ(plan.sensor_faults.size(), 2u);
  EXPECT_EQ(plan.sensor_faults[0].sensor, 1u);
  EXPECT_EQ(plan.sensor_faults[0].drop_tick, 3u);
  EXPECT_EQ(plan.sensor_faults[0].restore_tick, SensorFault::kNever);
  EXPECT_EQ(plan.sensor_faults[1].sensor, 0u);
  EXPECT_EQ(plan.sensor_faults[1].drop_tick, 4u);
  EXPECT_EQ(plan.sensor_faults[1].restore_tick, 8u);

  ::setenv("TSUNAMI_FAULT_PACKET_LOSS", "1.5", 1);
  EXPECT_THROW(FaultPlan::from_env(), std::invalid_argument);
  ::setenv("TSUNAMI_FAULT_PACKET_LOSS", "0.25", 1);
  ::setenv("TSUNAMI_FAULT_DROP_SENSOR", "5@8-3", 1);
  EXPECT_THROW(FaultPlan::from_env(), std::invalid_argument);
  ::setenv("TSUNAMI_FAULT_DROP_SENSOR", "nonsense", 1);
  EXPECT_THROW(FaultPlan::from_env(), std::invalid_argument);

  ::unsetenv("TSUNAMI_FAULT_SEED");
  ::unsetenv("TSUNAMI_FAULT_PACKET_LOSS");
  ::unsetenv("TSUNAMI_FAULT_CORRUPT");
  ::unsetenv("TSUNAMI_FAULT_DROP_SENSOR");
  const FaultPlan defaults = FaultPlan::from_env();
  EXPECT_FALSE(defaults.any());
}

}  // namespace
}  // namespace tsunami
