// Tests for the bathymetry model and the terrain-following hexahedral mesh.

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/bathymetry.hpp"
#include "mesh/hex_mesh.hpp"

namespace tsunami {
namespace {

TEST(Bathymetry, FlatBasinIsConstantDepth) {
  const Bathymetry b(flat_basin(2500.0, 100e3, 200e3));
  EXPECT_DOUBLE_EQ(b.depth(0.0, 0.0), 2500.0);
  EXPECT_DOUBLE_EQ(b.depth(50e3, 100e3), 2500.0);
  EXPECT_DOUBLE_EQ(b.depth(100e3, 200e3), 2500.0);
}

TEST(Bathymetry, CascadiaProfileDeepensTowardTrench) {
  const Bathymetry b;  // default synthetic Cascadia
  const double ly = b.config().length_y;
  const double deep = b.depth(0.0, 0.5 * ly);
  const double shallow = b.depth(b.config().length_x, 0.5 * ly);
  EXPECT_GT(deep, 2000.0);
  EXPECT_LT(shallow, 500.0);
  EXPECT_GT(deep, shallow);
}

TEST(Bathymetry, DepthIsAlwaysAboveFloor) {
  const Bathymetry b;
  for (double fx : {0.0, 0.3, 0.6, 0.9, 1.0})
    for (double fy : {0.0, 0.25, 0.5, 0.75, 1.0})
      EXPECT_GE(b.depth(fx * b.config().length_x, fy * b.config().length_y),
                b.config().min_depth);
}

TEST(Bathymetry, AlongStrikeUndulationPresent) {
  const Bathymetry b;
  const double x = 0.2 * b.config().length_x;
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i <= 50; ++i) {
    const double d =
        b.depth(x, b.config().length_y * static_cast<double>(i) / 50.0);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_GT(hi - lo, 50.0);  // undulation visible at this transect
}

TEST(HexMesh, CountsAndIndexing) {
  const Bathymetry b(flat_basin(1000.0, 40e3, 60e3));
  const HexMesh mesh(b, 4, 6, 3);
  EXPECT_EQ(mesh.num_elements(), 72u);
  EXPECT_EQ(mesh.num_vertices(), 5u * 7u * 4u);
  for (std::size_t e = 0; e < mesh.num_elements(); ++e) {
    const auto c = mesh.element_coords(e);
    EXPECT_EQ(mesh.element_index(c[0], c[1], c[2]), e);
  }
}

TEST(HexMesh, SurfaceVerticesAtZeroElevation) {
  const Bathymetry b;  // Cascadia-like
  const HexMesh mesh(b, 6, 8, 3);
  for (std::size_t j = 0; j <= mesh.ny(); ++j)
    for (std::size_t i = 0; i <= mesh.nx(); ++i)
      EXPECT_DOUBLE_EQ(mesh.vertex(i, j, mesh.nz())[2], 0.0);
}

TEST(HexMesh, BottomVerticesFollowBathymetry) {
  const Bathymetry b;
  const HexMesh mesh(b, 6, 8, 3);
  for (std::size_t j = 0; j <= mesh.ny(); ++j)
    for (std::size_t i = 0; i <= mesh.nx(); ++i) {
      const auto v = mesh.vertex(i, j, 0);
      EXPECT_NEAR(v[2], -b.depth(v[0], v[1]), 1e-9);
    }
}

TEST(HexMesh, ColumnsAreVerticallyGraded) {
  const Bathymetry b(flat_basin(3000.0, 30e3, 30e3));
  const HexMesh mesh(b, 3, 3, 4);
  // Flat basin: layer interfaces at uniform fractions of the depth.
  for (std::size_t k = 0; k <= 4; ++k) {
    const auto v = mesh.vertex(1, 1, k);
    EXPECT_NEAR(v[2], -3000.0 * (1.0 - static_cast<double>(k) / 4.0), 1e-9);
  }
}

TEST(HexMesh, ElementVerticesAreCornerOrdered) {
  const Bathymetry b(flat_basin(1000.0, 10e3, 10e3));
  const HexMesh mesh(b, 2, 2, 2);
  const auto v = mesh.element_vertices(0);
  // Corner 0 = (0,0,0) must be below corner 4 = (0,0,1).
  EXPECT_LT(v[0][2], v[4][2]);
  // Corner 1 = (1,0,0) differs from corner 0 only in x.
  EXPECT_GT(v[1][0], v[0][0]);
  EXPECT_DOUBLE_EQ(v[1][1], v[0][1]);
}

TEST(HexMesh, MinEdgeLengthFlatBasin) {
  const Bathymetry b(flat_basin(1000.0, 40e3, 40e3));
  const HexMesh mesh(b, 4, 4, 4);  // dz = 250 m << dx = dy = 10 km
  EXPECT_NEAR(mesh.min_edge_length(), 250.0, 1e-6);
}

TEST(HexMesh, DepthScalesVerticalResolution) {
  // Shallow columns must produce shorter vertical edges (the paper notes
  // finer spacing "in shallow areas of the CSZ").
  const Bathymetry b;  // Cascadia profile
  const HexMesh mesh(b, 10, 10, 3);
  const auto deep_col = mesh.vertex(0, 5, 1)[2] - mesh.vertex(0, 5, 0)[2];
  const auto shallow_col =
      mesh.vertex(10, 5, 1)[2] - mesh.vertex(10, 5, 0)[2];
  EXPECT_GT(deep_col, shallow_col);
}

TEST(HexMesh, RejectsDegenerateDimensions) {
  const Bathymetry b;
  EXPECT_THROW(HexMesh(b, 0, 4, 4), std::invalid_argument);
  EXPECT_THROW(HexMesh(b, 4, 0, 4), std::invalid_argument);
  EXPECT_THROW(HexMesh(b, 4, 4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tsunami
