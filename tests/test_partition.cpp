// Tests for the partitioners and the simulated halo-exchange runtime.

#include <gtest/gtest.h>

#include <numeric>

#include "parallel/parallel_for.hpp"
#include "parallel/partition.hpp"
#include "parallel/sim_comm.hpp"

namespace tsunami {
namespace {

TEST(Partition1D, CoversRangeWithoutOverlap) {
  for (std::size_t n : {1u, 7u, 64u, 101u}) {
    for (std::size_t p : {1u, 2u, 3u, 8u}) {
      if (p > n) continue;
      const auto parts = partition_1d(n, p);
      ASSERT_EQ(parts.size(), p);
      std::size_t covered = 0;
      for (std::size_t r = 0; r < p; ++r) {
        EXPECT_EQ(parts[r].begin, covered);
        covered = parts[r].end;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(Partition1D, SizesDifferByAtMostOne) {
  const auto parts = partition_1d(103, 8);
  std::size_t lo = 1000, hi = 0;
  for (const auto& r : parts) {
    lo = std::min(lo, r.size());
    hi = std::max(hi, r.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(Partition1D, BlockRangeMatchesFullPartition) {
  const std::size_t n = 97, p = 5;
  const auto parts = partition_1d(n, p);
  for (std::size_t r = 0; r < p; ++r) {
    const Range br = block_range(n, p, r);
    EXPECT_EQ(br.begin, parts[r].begin);
    EXPECT_EQ(br.end, parts[r].end);
  }
}

TEST(Partition1D, ThrowsOnZeroParts) {
  EXPECT_THROW(partition_1d(10, 0), std::invalid_argument);
  EXPECT_THROW((void)block_range(10, 3, 3), std::out_of_range);
}

TEST(GridPartition3D, LocalCellsSumToGlobal) {
  const GridPartition3D grid({20, 34, 4}, {2, 3, 2});
  std::size_t total = 0;
  for (std::size_t r = 0; r < grid.num_ranks(); ++r)
    total += grid.local_cells(r);
  EXPECT_EQ(total, 20u * 34u * 4u);
}

TEST(GridPartition3D, CoordsRoundTrip) {
  const GridPartition3D grid({8, 8, 8}, {2, 2, 2});
  for (std::size_t r = 0; r < grid.num_ranks(); ++r) {
    const auto c = grid.coords(r);
    EXPECT_EQ(c[0] + 2 * (c[1] + 2 * c[2]), r);
  }
}

TEST(GridPartition3D, InteriorRankHasSixNeighbors) {
  const GridPartition3D grid({9, 9, 9}, {3, 3, 3});
  // Center rank (1,1,1) -> linear 1 + 3*(1 + 3*1) = 13.
  EXPECT_EQ(grid.face_neighbors(13).size(), 6u);
  // Corner rank 0 has 3 neighbours.
  EXPECT_EQ(grid.face_neighbors(0).size(), 3u);
}

TEST(GridPartition3D, HaloFacesMatchSubdomainSurfaces) {
  const GridPartition3D grid({8, 8, 8}, {2, 1, 1});
  // Each rank is 4x8x8; one internal cut of area 8*8.
  EXPECT_EQ(grid.halo_faces(0), 64u);
  EXPECT_EQ(grid.halo_faces(1), 64u);
}

TEST(GridPartition3D, RejectsOverDecomposition) {
  EXPECT_THROW(GridPartition3D({2, 2, 2}, {3, 1, 1}), std::invalid_argument);
}

TEST(ChooseGrid2D, PrefersSquareFactorizations) {
  EXPECT_EQ(choose_grid_2d(16), (std::array<std::size_t, 2>{4, 4}));
  EXPECT_EQ(choose_grid_2d(12), (std::array<std::size_t, 2>{3, 4}));
  EXPECT_EQ(choose_grid_2d(7), (std::array<std::size_t, 2>{1, 7}));
}

TEST(ChooseGrid3D, MinimizesCutSurface) {
  // A flat slab should be cut along its long dimensions first.
  const auto shape = choose_grid_3d({64, 64, 4}, 16);
  EXPECT_EQ(shape[2], 1u);
  EXPECT_EQ(shape[0] * shape[1], 16u);
}

TEST(ChooseGrid3D, HandlesExactCube) {
  const auto shape = choose_grid_3d({32, 32, 32}, 8);
  EXPECT_EQ(shape, (std::array<std::size_t, 3>{2, 2, 2}));
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelReduceSum, MatchesSerialSum) {
  const std::size_t n = 100000;
  const double s =
      parallel_reduce_sum(n, [](std::size_t i) { return static_cast<double>(i); });
  EXPECT_DOUBLE_EQ(s, static_cast<double>(n) * (n - 1) / 2.0);
}

class HaloExchangeTest : public ::testing::TestWithParam<
                             std::tuple<std::array<std::size_t, 3>,
                                        std::array<std::size_t, 3>>> {};

TEST_P(HaloExchangeTest, GhostValuesMatchSerialField) {
  const auto [cells, procs] = GetParam();
  const GridPartition3D part(cells, procs);
  const HaloExchange3D halo(part);

  // Global field with a unique value per cell.
  std::vector<double> global(cells[0] * cells[1] * cells[2]);
  std::iota(global.begin(), global.end(), 1.0);

  auto locals = halo.scatter(global);
  halo.exchange(locals);

  // Every rank's +x ghost layer must equal the neighbour's first owned slab.
  for (std::size_t r = 0; r < part.num_ranks(); ++r) {
    const auto box = part.local_box(r);
    const auto c = part.coords(r);
    if (c[0] + 1 < part.procs()[0]) {
      for (std::size_t z = 0; z < box[2].size(); ++z)
        for (std::size_t y = 0; y < box[1].size(); ++y) {
          const std::size_t gx = box[0].end;  // first cell of the neighbour
          const std::size_t gy = box[1].begin + y;
          const std::size_t gz = box[2].begin + z;
          const double expected =
              global[gx + cells[0] * (gy + cells[1] * gz)];
          const double got =
              locals[r][halo.local_index(r, box[0].size(), y, z)];
          EXPECT_DOUBLE_EQ(got, expected);
        }
    }
  }
  // Round trip must preserve owned data.
  const auto back = halo.gather(locals);
  EXPECT_EQ(back, global);
}

INSTANTIATE_TEST_SUITE_P(
    Decompositions, HaloExchangeTest,
    ::testing::Values(
        std::make_tuple(std::array<std::size_t, 3>{8, 8, 4},
                        std::array<std::size_t, 3>{2, 2, 1}),
        std::make_tuple(std::array<std::size_t, 3>{9, 7, 5},
                        std::array<std::size_t, 3>{3, 2, 1}),
        std::make_tuple(std::array<std::size_t, 3>{6, 6, 6},
                        std::array<std::size_t, 3>{2, 2, 2}),
        std::make_tuple(std::array<std::size_t, 3>{12, 4, 4},
                        std::array<std::size_t, 3>{4, 1, 2})));

TEST(HaloExchange, ReportsBytesMoved) {
  const GridPartition3D part({4, 4, 4}, {2, 1, 1});
  const HaloExchange3D halo(part);
  std::vector<double> global(64, 1.0);
  auto locals = halo.scatter(global);
  const std::size_t bytes = halo.exchange(locals);
  // One 4x4-face pair exchanged in both directions.
  EXPECT_EQ(bytes, 2u * 16u * sizeof(double));
}

}  // namespace
}  // namespace tsunami
