// Tests for the Matern-type bilaplacian prior: SPD-ness, square-root
// consistency, inverse consistency, correlation decay, sampling statistics,
// and the block-diagonal-in-time application.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "prior/matern_prior.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

MaternPrior make_prior(std::size_t nx = 12, std::size_t ny = 10) {
  MaternPriorConfig cfg;
  cfg.sigma = 0.5;
  cfg.correlation_length = 8.0e3;
  return MaternPrior(nx, ny, 2.0e3, 2.5e3, cfg);
}

TEST(MaternPrior, CovarianceIsSymmetric) {
  const auto prior = make_prior();
  Rng rng(1);
  const auto x = rng.normal_vector(prior.dim());
  const auto y = rng.normal_vector(prior.dim());
  std::vector<double> cx(prior.dim()), cy(prior.dim());
  prior.apply(x, std::span<double>(cx));
  prior.apply(y, std::span<double>(cy));
  EXPECT_NEAR(dot(cx, y), dot(x, cy), 1e-10 * std::abs(dot(cx, y)) + 1e-12);
}

TEST(MaternPrior, CovarianceIsPositiveDefinite) {
  const auto prior = make_prior();
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const auto x = rng.normal_vector(prior.dim());
    std::vector<double> cx(prior.dim());
    prior.apply(x, std::span<double>(cx));
    EXPECT_GT(dot(x, cx), 0.0);
  }
}

TEST(MaternPrior, InverseIsConsistent) {
  const auto prior = make_prior();
  Rng rng(3);
  const auto x = rng.normal_vector(prior.dim());
  std::vector<double> cx(prior.dim()), cicx(prior.dim());
  prior.apply(x, std::span<double>(cx));
  prior.apply_inverse(cx, std::span<double>(cicx));
  for (std::size_t i = 0; i < prior.dim(); ++i)
    EXPECT_NEAR(cicx[i], x[i], 1e-7 * (std::abs(x[i]) + 1.0));
}

TEST(MaternPrior, SqrtFactorsCovariance) {
  // C = S S^T with S = A^{-1} M^{1/2}: check <C x, y> == <S^T... via
  // applying S to random white noise twice: Var matching is done elsewhere;
  // here check C x == S (S^T x) using S^T = M^{1/2} A^{-1} (A symmetric).
  const auto prior = make_prior(8, 7);
  Rng rng(4);
  const auto x = rng.normal_vector(prior.dim());
  std::vector<double> cx(prior.dim());
  prior.apply(x, std::span<double>(cx));
  // S^T x: A^{-1} then M^{1/2}: reuse apply_sqrt on a mass-prescaled input is
  // not directly exposed; instead verify the quadratic identity
  // <C x, x> == || S^T x ||^2 by computing S^T x through apply_sqrt's
  // adjoint relation: <C x, x> = <S S^T x, x> = ||S^T x||^2 > 0 and
  // <C x, x> = <S^T x, S^T x>. We approximate S^T x via solving with the
  // sqrt applied to a basis... simpler: Monte-Carlo identity
  // E[(w^T S^T x)^2] = ||S^T x||^2 = <C x, x> using samples S w.
  const double quad = dot(cx, x);
  Rng rng2(5);
  double mc = 0.0;
  const int nsamp = 4000;
  for (int k = 0; k < nsamp; ++k) {
    const auto w = rng2.normal_vector(prior.dim());
    std::vector<double> sw(prior.dim());
    prior.apply_sqrt(w, std::span<double>(sw));
    const double proj = dot(sw, x);
    mc += proj * proj;
  }
  mc /= nsamp;
  EXPECT_NEAR(mc, quad, 0.15 * quad);  // Monte-Carlo tolerance
}

TEST(MaternPrior, PointwiseVarianceNearTargetSigma) {
  // Interior variance should approach sigma^2 (boundary effects inflate it).
  MaternPriorConfig cfg;
  cfg.sigma = 0.4;
  cfg.correlation_length = 6e3;
  const MaternPrior prior(21, 21, 1.5e3, 1.5e3, cfg);
  const std::size_t center = 10 + 21 * 10;
  const double var = prior.pointwise_variance(center);
  EXPECT_GT(var, 0.25 * cfg.sigma * cfg.sigma);
  EXPECT_LT(var, 4.0 * cfg.sigma * cfg.sigma);
}

TEST(MaternPrior, CorrelationDecaysWithDistance) {
  const MaternPrior prior = make_prior(20, 20);
  // Column of C through a unit vector at the center.
  std::vector<double> e(prior.dim(), 0.0);
  const std::size_t cx = 10, cy = 10;
  e[cx + 12 * 0] = 0.0;  // silence unused warning path
  const std::size_t center = cx + 20 * cy;
  std::vector<double> unit(prior.dim(), 0.0), col(prior.dim());
  unit[center] = 1.0;
  prior.apply(unit, std::span<double>(col));
  const double at_center = col[center];
  const double near = col[(cx + 1) + 20 * cy];
  const double far = col[(cx + 8) + 20 * cy];
  EXPECT_GT(at_center, near);
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.0);  // Matern covariance stays positive along the axis
}

TEST(MaternPrior, SampleVarianceMatchesPointwiseVariance) {
  const MaternPrior prior = make_prior(10, 9);
  Rng rng(6);
  const std::size_t probe = 4 + 10 * 4;
  const double expected = prior.pointwise_variance(probe);
  double acc = 0.0;
  const int nsamp = 3000;
  for (int k = 0; k < nsamp; ++k) {
    const auto s = prior.sample(rng);
    acc += s[probe] * s[probe];
  }
  acc /= nsamp;
  EXPECT_NEAR(acc, expected, 0.12 * expected);
}

TEST(MaternPrior, SampleMeanIsZero) {
  const MaternPrior prior = make_prior(8, 8);
  Rng rng(7);
  std::vector<double> mean(prior.dim(), 0.0);
  const int nsamp = 2000;
  for (int k = 0; k < nsamp; ++k) {
    const auto s = prior.sample(rng);
    axpy(1.0, s, std::span<double>(mean));
  }
  scal(1.0 / nsamp, std::span<double>(mean));
  const double typical = std::sqrt(prior.pointwise_variance(prior.dim() / 2));
  for (double m : mean) EXPECT_LT(std::abs(m), 0.15 * typical);
}

TEST(MaternPrior, TimeBlocksApplyIndependently) {
  const MaternPrior prior = make_prior(6, 5);
  Rng rng(8);
  const std::size_t nt = 4, n = prior.dim();
  const auto x = rng.normal_vector(n * nt);
  std::vector<double> y(n * nt);
  prior.apply_time_blocks(x, std::span<double>(y), nt);
  for (std::size_t t = 0; t < nt; ++t) {
    std::vector<double> block(n);
    prior.apply(std::span<const double>(x).subspan(t * n, n),
                std::span<double>(block));
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_DOUBLE_EQ(y[t * n + i], block[i]);
  }
}

TEST(MaternPrior, LongerCorrelationSmoothsSamples) {
  MaternPriorConfig rough;
  rough.sigma = 1.0;
  rough.correlation_length = 2e3;
  MaternPriorConfig smooth;
  smooth.sigma = 1.0;
  smooth.correlation_length = 20e3;
  const MaternPrior p_rough(16, 16, 1e3, 1e3, rough);
  const MaternPrior p_smooth(16, 16, 1e3, 1e3, smooth);

  auto roughness = [](const std::vector<double>& s, std::size_t nx) {
    double acc = 0.0, norm = 0.0;
    for (std::size_t i = 0; i + 1 < s.size(); ++i) {
      if ((i + 1) % nx == 0) continue;
      const double d = s[i + 1] - s[i];
      acc += d * d;
      norm += s[i] * s[i];
    }
    return acc / (norm + 1e-30);
  };
  Rng rng1(9), rng2(9);
  double r_rough = 0.0, r_smooth = 0.0;
  for (int k = 0; k < 20; ++k) {
    r_rough += roughness(p_rough.sample(rng1), 16);
    r_smooth += roughness(p_smooth.sample(rng2), 16);
  }
  EXPECT_GT(r_rough, 2.0 * r_smooth);
}

TEST(MaternPrior, CorrelationLengthIsCalibrated) {
  // For Matern nu = 1, the correlation at lag r = rho is
  // (kappa rho) K_1(kappa rho) with kappa rho = sqrt(8): ~0.139. Check the
  // normalized covariance at that distance sits near the analytic value
  // (grid/boundary effects allow a generous band).
  MaternPriorConfig cfg;
  cfg.sigma = 1.0;
  cfg.correlation_length = 8.0e3;
  const double h = 1.0e3;
  const MaternPrior prior(33, 33, h, h, cfg);
  const std::size_t cx = 16, cy = 16;
  const std::size_t center = cx + 33 * cy;

  std::vector<double> unit(prior.dim(), 0.0), col(prior.dim());
  unit[center] = 1.0;
  prior.apply(unit, std::span<double>(col));
  // Normalized correlation at lag = rho (8 nodes away along x).
  const double corr = col[(cx + 8) + 33 * cy] / col[center];
  EXPECT_GT(corr, 0.05);
  EXPECT_LT(corr, 0.35);
  // Beyond 3 rho the correlation should be nearly gone.
  const double far = col[(cx + 16) + 33 * cy] / col[center];
  EXPECT_LT(far, 0.6 * corr);
}

TEST(MaternPrior, SigmaScalesPointwiseVarianceQuadratically) {
  MaternPriorConfig a, b;
  a.sigma = 0.2;
  b.sigma = 0.4;
  a.correlation_length = b.correlation_length = 6e3;
  const MaternPrior pa(15, 15, 1e3, 1e3, a);
  const MaternPrior pb(15, 15, 1e3, 1e3, b);
  const std::size_t center = 7 + 15 * 7;
  EXPECT_NEAR(pb.pointwise_variance(center) / pa.pointwise_variance(center),
              4.0, 1e-6);
}

TEST(MaternPrior, RejectsDegenerateGrids) {
  EXPECT_THROW(MaternPrior(1, 5, 1e3, 1e3), std::invalid_argument);
  EXPECT_THROW(MaternPrior(5, 1, 1e3, 1e3), std::invalid_argument);
}

}  // namespace
}  // namespace tsunami
