// Tests of the Bayesian machinery: the data-space Hessian, the SMW-form
// posterior against a directly assembled and factorized full-space Hessian
// (exactness of the offline-online decomposition), posterior variance
// reduction, and Matheron sampling statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "core/data_space_hessian.hpp"
#include "core/p2o_builder.hpp"
#include "core/posterior.hpp"
#include "linalg/blas.hpp"
#include "linalg/dense_cholesky.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

/// Tiny inverse problem shared by the tests: 2x2x1 mesh, order 1,
/// 2 sensors, 4 intervals. Small enough to assemble everything densely.
struct TinyProblem {
  TinyProblem()
      : bathy(flat_basin(1500.0, 30e3, 30e3)),
        mesh(bathy, 2, 2, 1),
        model(mesh, 1) {
    obs = std::make_unique<ObservationOperator>(
        ObservationOperator::seafloor_sensors(
            model, {{8e3, 9e3}, {21e3, 22e3}}));
    grid.num_intervals = 4;
    grid.substeps = 3;
    grid.dt = model.cfl_timestep(0.4);
    map = build_p2o_map(model, *obs, grid);
    nm = model.source_map().parameter_dim();
    nd = obs->num_outputs();
    n_param = nm * grid.num_intervals;
    n_data = nd * grid.num_intervals;

    MaternPriorConfig pcfg;
    pcfg.sigma = 0.3;
    pcfg.correlation_length = 10e3;
    prior = std::make_unique<MaternPrior>(3, 3, 15e3, 15e3, pcfg);

    // Physically scaled synthetic data: a prior draw pushed through F, with
    // 5% relative noise (pressure units). This keeps both the data-space
    // Hessian K and the full-space Hessian H well conditioned, unlike an
    // arbitrary O(1) d_obs against pressure-scale columns of F.
    Rng rng(99);
    std::vector<double> m_true(n_param);
    for (std::size_t t = 0; t < grid.num_intervals; ++t) {
      const auto block = prior->sample(rng);
      std::copy(block.begin(), block.end(),
                m_true.begin() + static_cast<std::ptrdiff_t>(t * nm));
    }
    d_obs.resize(n_data);
    map.toeplitz->apply(m_true, std::span<double>(d_obs));
    noise = relative_noise(d_obs, 0.05);
    for (auto& v : d_obs) v += noise.sigma * rng.normal();

    hessian = std::make_unique<DataSpaceHessian>(*map.toeplitz, *prior, noise,
                                                 16);
    posterior = std::make_unique<Posterior>(*map.toeplitz, *prior, *hessian);
  }

  /// Dense F from unit vectors through the Toeplitz engine.
  Matrix dense_f() const {
    Matrix f(n_data, n_param);
    for (std::size_t j = 0; j < n_param; ++j) {
      std::vector<double> e(n_param, 0.0), col(n_data);
      e[j] = 1.0;
      map.toeplitz->apply(e, std::span<double>(col));
      for (std::size_t i = 0; i < n_data; ++i) f(i, j) = col[i];
    }
    return f;
  }

  /// Dense Gamma_prior (block diagonal in time).
  Matrix dense_prior() const {
    Matrix c(n_param, n_param);
    for (std::size_t j = 0; j < n_param; ++j) {
      std::vector<double> e(n_param, 0.0), col(n_param);
      e[j] = 1.0;
      prior->apply_time_blocks(e, std::span<double>(col),
                               grid.num_intervals);
      for (std::size_t i = 0; i < n_param; ++i) c(i, j) = col[i];
    }
    return c;
  }

  Bathymetry bathy;
  HexMesh mesh;
  AcousticGravityModel model;
  std::unique_ptr<ObservationOperator> obs;
  TimeGrid grid;
  P2oMap map;
  std::unique_ptr<MaternPrior> prior;
  NoiseModel noise;
  std::vector<double> d_obs;  ///< physically scaled noisy observations
  std::unique_ptr<DataSpaceHessian> hessian;
  std::unique_ptr<Posterior> posterior;
  std::size_t nm = 0, nd = 0, n_param = 0, n_data = 0;
};

TEST(RelativeNoise, ScalesWithPeakSignal) {
  const std::vector<double> d{0.0, -4.0, 2.0};
  const auto noise = relative_noise(d, 0.01);
  EXPECT_DOUBLE_EQ(noise.sigma, 0.04);
  const std::vector<double> zero(3, 0.0);
  EXPECT_DOUBLE_EQ(relative_noise(zero, 0.01).sigma, 0.01);
}

TEST(DataSpaceHessian, MatchesDenseDefinition) {
  TinyProblem tp;
  // K = sigma^2 I + F C F^T assembled densely.
  const Matrix f = tp.dense_f();
  const Matrix c = tp.dense_prior();
  Matrix fc(tp.n_data, tp.n_param);
  gemm(f, c, fc);
  const Matrix ft = f.transposed();
  Matrix k_dense(tp.n_data, tp.n_data);
  gemm(fc, ft, k_dense);
  for (std::size_t i = 0; i < tp.n_data; ++i)
    k_dense(i, i) += tp.noise.variance();

  const double scale = 1e-10 + 1e-8 * std::abs(k_dense(0, 0));
  EXPECT_LT(tp.hessian->matrix().max_abs_diff(k_dense), scale);
}

TEST(DataSpaceHessian, IsNearlySymmetricBeforeSymmetrization) {
  TinyProblem tp;
  EXPECT_LT(tp.hessian->asymmetry(), 1e-10);
}

TEST(DataSpaceHessian, SolveInvertsMatrix) {
  TinyProblem tp;
  Rng rng(1);
  const auto x = rng.normal_vector(tp.n_data);
  std::vector<double> kx(tp.n_data), back(tp.n_data);
  gemv(tp.hessian->matrix(), x, std::span<double>(kx));
  tp.hessian->solve(kx, std::span<double>(back));
  for (std::size_t i = 0; i < tp.n_data; ++i)
    EXPECT_NEAR(back[i], x[i], 1e-7 * (std::abs(x[i]) + 1.0));
}

TEST(Posterior, MapPointSolvesFullSpaceNormalEquations) {
  // The SMW identity: m_map = C F^T K^{-1} d must satisfy
  // (F^T Gn^{-1} F + C^{-1}) m_map = F^T Gn^{-1} d to solver precision.
  TinyProblem tp;
  const auto& d_obs = tp.d_obs;
  const auto m_map = tp.posterior->map_point(d_obs);

  const Matrix f = tp.dense_f();
  const Matrix c = tp.dense_prior();
  const DenseCholesky c_chol(c);

  // H m = F^T Gn^{-1} F m + C^{-1} m.
  std::vector<double> fm(tp.n_data);
  gemv(f, m_map, std::span<double>(fm));
  for (auto& v : fm) v /= tp.noise.variance();
  std::vector<double> hm(tp.n_param);
  gemv_t(f, fm, std::span<double>(hm));
  std::vector<double> cinv_m(m_map);
  c_chol.solve_in_place(std::span<double>(cinv_m));
  axpy(1.0, cinv_m, std::span<double>(hm));

  // RHS = F^T Gn^{-1} d.
  std::vector<double> scaled(d_obs);
  for (auto& v : scaled) v /= tp.noise.variance();
  std::vector<double> rhs(tp.n_param);
  gemv_t(f, scaled, std::span<double>(rhs));

  const double scale = amax(rhs) + 1e-30;
  for (std::size_t i = 0; i < tp.n_param; ++i)
    EXPECT_NEAR(hm[i], rhs[i], 1e-6 * scale) << "row " << i;
}

TEST(Posterior, MapPointMatchesDenseDirectSolve) {
  TinyProblem tp;
  const auto& d_obs = tp.d_obs;
  const auto m_smw = tp.posterior->map_point(d_obs);

  // Direct: assemble H densely and Cholesky-solve.
  const Matrix f = tp.dense_f();
  const Matrix c = tp.dense_prior();
  const DenseCholesky c_chol(c);
  Matrix h(tp.n_param, tp.n_param);
  // H = F^T F / sigma^2 + C^{-1}.
  const Matrix ft = f.transposed();
  Matrix ftf(tp.n_param, tp.n_param);
  gemm(ft, f, ftf);
  Matrix c_inv(tp.n_param, tp.n_param);
  for (std::size_t j = 0; j < tp.n_param; ++j) {
    std::vector<double> e(tp.n_param, 0.0);
    e[j] = 1.0;
    c_chol.solve_in_place(std::span<double>(e));
    for (std::size_t i = 0; i < tp.n_param; ++i) c_inv(i, j) = e[i];
  }
  for (std::size_t i = 0; i < tp.n_param; ++i)
    for (std::size_t j = 0; j < tp.n_param; ++j)
      h(i, j) = ftf(i, j) / tp.noise.variance() + c_inv(i, j);
  // Symmetrize (c_inv columns carry solver roundoff).
  for (std::size_t i = 0; i < tp.n_param; ++i)
    for (std::size_t j = i + 1; j < tp.n_param; ++j) {
      const double v = 0.5 * (h(i, j) + h(j, i));
      h(i, j) = v;
      h(j, i) = v;
    }

  std::vector<double> rhs(tp.n_param);
  std::vector<double> scaled(d_obs);
  for (auto& v : scaled) v /= tp.noise.variance();
  gemv_t(f, scaled, std::span<double>(rhs));
  const DenseCholesky h_chol(h);
  h_chol.solve_in_place(std::span<double>(rhs));

  for (std::size_t i = 0; i < tp.n_param; ++i)
    EXPECT_NEAR(m_smw[i], rhs[i], 1e-6 * (std::abs(rhs[i]) + amax(rhs)));
}

TEST(Posterior, CovarianceApplyIsSymmetricPsd) {
  TinyProblem tp;
  Rng rng(4);
  const auto x = rng.normal_vector(tp.n_param);
  const auto y = rng.normal_vector(tp.n_param);
  std::vector<double> px(tp.n_param), py(tp.n_param);
  tp.posterior->covariance_apply(x, std::span<double>(px));
  tp.posterior->covariance_apply(y, std::span<double>(py));
  EXPECT_NEAR(dot(px, y), dot(x, py),
              1e-8 * std::abs(dot(px, y)) + 1e-12);
  EXPECT_GT(dot(px, x), 0.0);
}

TEST(Posterior, DataReducesVariance) {
  // Posterior variance must not exceed prior variance anywhere, and must be
  // strictly smaller at a sensed location/time.
  TinyProblem tp;
  for (std::size_t r = 0; r < tp.nm; ++r) {
    const double post = tp.posterior->pointwise_variance(r, 0);
    const double pri = tp.prior->pointwise_variance(r);
    EXPECT_LE(post, pri * (1.0 + 1e-9));
    EXPECT_GT(post, 0.0);
  }
  // Early-time parameters are observed by later data: expect a real drop
  // somewhere.
  double best_reduction = 0.0;
  for (std::size_t r = 0; r < tp.nm; ++r) {
    const double post = tp.posterior->pointwise_variance(r, 0);
    const double pri = tp.prior->pointwise_variance(r);
    best_reduction = std::max(best_reduction, (pri - post) / pri);
  }
  EXPECT_GT(best_reduction, 0.05);
}

TEST(Posterior, LastIntervalIsUninformed) {
  // Data at interval i observe sources at j <= i; the final interval's
  // parameters are only constrained by the final observations, and with a
  // sensor away from a node the variance barely drops. At minimum, variance
  // for the last interval must be >= variance for the first.
  TinyProblem tp;
  const std::size_t r = tp.nm / 2;
  const double early = tp.posterior->pointwise_variance(r, 0);
  const double late =
      tp.posterior->pointwise_variance(r, tp.grid.num_intervals - 1);
  EXPECT_GE(late, early - 1e-12);
}

TEST(Posterior, SampleStatisticsMatchPosteriorMoments) {
  TinyProblem tp;
  Rng rng(5);
  const auto m_map = tp.posterior->map_point(tp.d_obs);

  const std::size_t probe_r = tp.nm / 2, probe_t = 1;
  const double expected_var =
      tp.posterior->pointwise_variance(probe_r, probe_t);
  const std::size_t idx = probe_t * tp.nm + probe_r;

  double mean = 0.0, var = 0.0;
  const int nsamp = 600;
  std::vector<double> vals(nsamp);
  for (int k = 0; k < nsamp; ++k) {
    const auto s = tp.posterior->sample(m_map, rng);
    vals[static_cast<std::size_t>(k)] = s[idx];
    mean += s[idx];
  }
  mean /= nsamp;
  for (double v : vals) var += (v - mean) * (v - mean);
  var /= (nsamp - 1);

  EXPECT_NEAR(mean, m_map[idx], 5.0 * std::sqrt(expected_var / nsamp));
  EXPECT_NEAR(var, expected_var, 0.25 * expected_var);
}

TEST(Posterior, GstarAndGAreAdjointUpToPrior) {
  // <G v, y> == <v, Gamma_prior F^T y>' — both equal v^T C F^T y.
  TinyProblem tp;
  Rng rng(6);
  const auto v = rng.normal_vector(tp.n_param);
  const auto y = rng.normal_vector(tp.n_data);
  std::vector<double> gv(tp.n_data), gsy(tp.n_param);
  tp.posterior->apply_g(v, std::span<double>(gv));
  tp.posterior->apply_gstar(y, std::span<double>(gsy));
  EXPECT_NEAR(dot(gv, y), dot(v, gsy),
              1e-9 * std::abs(dot(gv, y)) + 1e-12);
}

}  // namespace
}  // namespace tsunami
