// Tests for the offline->online split: the versioned artifact bundle, the
// warm-start twin (bit-identical to the cold path, zero PDE solves), the
// corrupt-file suite, the streaming lifetime guard, and the ScenarioBank
// warm-start path.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "core/digital_twin.hpp"
#include "core/scenario_bank.hpp"
#include "util/artifact_bundle.hpp"

namespace tsunami {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream f(path, std::ios::binary);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void append_u64(std::vector<char>& buf, std::uint64_t v) {
  const char* p = reinterpret_cast<const char*>(&v);
  buf.insert(buf.end(), p, p + sizeof(v));
}

/// One cold twin + event + bundle on disk + warm twin, shared by the suite
/// (the cold offline build dominates test wall time).
class ArtifactBundleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    twin_ = new DigitalTwin(TwinConfig::tiny());
    RuptureConfig rc;
    Asperity a;
    a.x0 = 0.3 * twin_->mesh().length_x();
    a.y0 = 0.5 * twin_->mesh().length_y();
    a.rx = 16e3;
    a.ry = 24e3;
    a.peak_uplift = 2.0;
    rc.asperities.push_back(a);
    rc.hypocenter_x = a.x0;
    rc.hypocenter_y = a.y0;
    Rng rng(5);
    event_ = new SyntheticEvent(twin_->synthesize(RuptureScenario(rc), rng));
    twin_->run_offline(event_->noise);
    path_ = new std::string(temp_path("tsunami_twin.bundle"));
    twin_->save_offline(*path_);
    warm_ = new DigitalTwin(DigitalTwin::load_offline(*path_));
  }
  static void TearDownTestSuite() {
    std::filesystem::remove(*path_);
    delete warm_;
    delete path_;
    delete event_;
    delete twin_;
    warm_ = nullptr;
    path_ = nullptr;
    event_ = nullptr;
    twin_ = nullptr;
  }

  static DigitalTwin* twin_;
  static SyntheticEvent* event_;
  static std::string* path_;
  static DigitalTwin* warm_;
};

DigitalTwin* ArtifactBundleTest::twin_ = nullptr;
SyntheticEvent* ArtifactBundleTest::event_ = nullptr;
std::string* ArtifactBundleTest::path_ = nullptr;
DigitalTwin* ArtifactBundleTest::warm_ = nullptr;

// ---- the acceptance criterion: warm == cold, bit for bit ------------------

TEST_F(ArtifactBundleTest, WarmInferBitIdenticalToCold) {
  ASSERT_TRUE(warm_->online_ready());
  const InversionResult cold = twin_->infer(event_->d_obs);
  const InversionResult warm = warm_->infer(event_->d_obs);
  ASSERT_EQ(warm.m_map.size(), cold.m_map.size());
  for (std::size_t i = 0; i < cold.m_map.size(); ++i)
    ASSERT_EQ(warm.m_map[i], cold.m_map[i]) << "m_map entry " << i;
  ASSERT_EQ(warm.forecast.mean.size(), cold.forecast.mean.size());
  for (std::size_t i = 0; i < cold.forecast.mean.size(); ++i) {
    ASSERT_EQ(warm.forecast.mean[i], cold.forecast.mean[i]) << "mean " << i;
    ASSERT_EQ(warm.forecast.stddev[i], cold.forecast.stddev[i]) << "std " << i;
    ASSERT_EQ(warm.forecast.lower95[i], cold.forecast.lower95[i]);
    ASSERT_EQ(warm.forecast.upper95[i], cold.forecast.upper95[i]);
  }
}

TEST_F(ArtifactBundleTest, WarmStreamingPushBitIdenticalToCold) {
  const StreamingEngine cold_eng = twin_->make_streaming({.track_map = true});
  const StreamingEngine warm_eng = warm_->make_streaming({.track_map = true});
  StreamingAssimilator cold_assim = cold_eng.start();
  StreamingAssimilator warm_assim = warm_eng.start();
  const std::size_t nd = cold_eng.block_size();
  for (std::size_t t = 0; t < cold_eng.num_ticks(); ++t) {
    const auto block = std::span<const double>(event_->d_obs).subspan(t * nd, nd);
    cold_assim.push(t, block);
    warm_assim.push(t, block);
    const auto& qc = cold_assim.qoi_mean();
    const auto& qw = warm_assim.qoi_mean();
    for (std::size_t i = 0; i < qc.size(); ++i)
      ASSERT_EQ(qw[i], qc[i]) << "tick " << t << " qoi " << i;
    const auto& mc = cold_assim.map_estimate();
    const auto& mw = warm_assim.map_estimate();
    for (std::size_t i = 0; i < mc.size(); ++i)
      ASSERT_EQ(mw[i], mc[i]) << "tick " << t << " m_map " << i;
    const auto sc = cold_eng.stddev_after(t + 1);
    const auto sw = warm_eng.stddev_after(t + 1);
    for (std::size_t i = 0; i < sc.size(); ++i) ASSERT_EQ(sw[i], sc[i]);
  }
}

TEST_F(ArtifactBundleTest, WarmBootRanZeroPdeSolvesOrFactorizations) {
  // The cold twin recorded offline-phase samples; the warm twin must have
  // recorded none of them (the issue's timer-registry assertion).
  EXPECT_GT(twin_->timers().count("Adjoint p2o"), 0);
  for (const char* name :
       {"Adjoint p2o", "Adjoint p2o (parallel)", "phase1: form F",
        "phase1: form Fq", "form K", "factorize K",
        "phase2: form+factorize K", "phase3: QoI covariance + Q"}) {
    EXPECT_EQ(warm_->timers().count(name), 0) << name;
  }
  EXPECT_GT(warm_->timers().count("warm start: install bundle"), 0);
}

TEST_F(ArtifactBundleTest, BundleCarriesConfigAndFingerprint) {
  const ArtifactBundle bundle = load_bundle(*path_);
  EXPECT_EQ(bundle.fingerprint, twin_->config().fingerprint());
  for (const char* name : {"config", "noise/sigma", "p2o/F", "p2o/Fq",
                           "hessian/chol_L", "qoi/Q", "qoi/cov"})
    EXPECT_TRUE(bundle.has(name)) << name;
  EXPECT_EQ(warm_->config().fingerprint(), twin_->config().fingerprint());
  EXPECT_EQ(warm_->config().num_sensors, twin_->config().num_sensors);
  EXPECT_EQ(warm_->data_dim(), twin_->data_dim());
  EXPECT_EQ(warm_->parameter_dim(), twin_->parameter_dim());
}

TEST_F(ArtifactBundleTest, LoadOfflineAssertsExpectedConfig) {
  // Matching config: loads.
  EXPECT_NO_THROW({
    const DigitalTwin t = DigitalTwin::load_offline(*path_, twin_->config());
    EXPECT_TRUE(t.online_ready());
  });
  // A physically different config must be rejected.
  TwinConfig other = twin_->config();
  other.num_sensors += 1;
  EXPECT_THROW((void)DigitalTwin::load_offline(*path_, other),
               std::runtime_error);
  // Build-strategy knobs do not change the artifacts -> not fingerprinted.
  TwinConfig parallel = twin_->config();
  parallel.phase1_parallel = !parallel.phase1_parallel;
  EXPECT_EQ(parallel.fingerprint(), twin_->config().fingerprint());
}

TEST_F(ArtifactBundleTest, MatrixAccessorThrowsOnWarmHessian) {
  // Only L ships; the formed K is cold-path-only by design.
  EXPECT_NO_THROW((void)twin_->hessian().matrix());
  EXPECT_THROW((void)warm_->hessian().matrix(), std::logic_error);
  EXPECT_EQ(warm_->hessian().dim(), twin_->hessian().dim());
  EXPECT_DOUBLE_EQ(warm_->hessian().noise().sigma,
                   twin_->hessian().noise().sigma);
}

// ---- corrupt-file suite ---------------------------------------------------

TEST_F(ArtifactBundleTest, RejectsBadMagic) {
  const auto bad = temp_path("tsunami_bad_magic.bundle");
  auto bytes = read_file(*path_);
  bytes[0] ^= 0x5a;  // corrupt the magic (checksum now also wrong)
  write_file(bad, bytes);
  EXPECT_THROW((void)load_bundle(bad), std::runtime_error);
  std::filesystem::remove(bad);
}

TEST_F(ArtifactBundleTest, RejectsTruncatedHeader) {
  const auto bad = temp_path("tsunami_trunc_header.bundle");
  auto bytes = read_file(*path_);
  bytes.resize(12);
  write_file(bad, bytes);
  EXPECT_THROW((void)load_bundle(bad), std::runtime_error);
  std::filesystem::remove(bad);
}

TEST_F(ArtifactBundleTest, RejectsTruncatedPayload) {
  const auto bad = temp_path("tsunami_trunc_payload.bundle");
  auto bytes = read_file(*path_);
  bytes.resize(bytes.size() - bytes.size() / 3);
  write_file(bad, bytes);
  EXPECT_THROW((void)load_bundle(bad), std::runtime_error);
  std::filesystem::remove(bad);
}

TEST_F(ArtifactBundleTest, RejectsFlippedPayloadByte) {
  const auto bad = temp_path("tsunami_bitflip.bundle");
  auto bytes = read_file(*path_);
  bytes[bytes.size() / 2] ^= 0x01;  // checksum catches a single bit flip
  write_file(bad, bytes);
  EXPECT_THROW((void)load_bundle(bad), std::runtime_error);
  std::filesystem::remove(bad);
}

TEST(ArtifactBundleFormat, RejectsDimOverflowWithValidChecksum) {
  // Hand-craft a bundle whose section claims 2^22 x 2^22 x 2^22 doubles
  // (the product overflows 64 bits when multiplied by sizeof(double)) with
  // a VALID trailing checksum, so the dimension validation itself — not the
  // checksum — must reject it before any allocation.
  std::vector<char> buf;
  append_u64(buf, 0x5453'42554e444c45ULL);  // magic "TSBUNDLE"
  append_u64(buf, kBundleFormatVersion);
  append_u64(buf, 0);  // fingerprint
  append_u64(buf, 1);  // one section
  const char name[] = "evil";
  append_u64(buf, 4);
  buf.insert(buf.end(), name, name + 4);
  append_u64(buf, 3);  // rank 3
  for (int i = 0; i < 3; ++i) append_u64(buf, std::uint64_t{1} << 22);
  // no payload at all
  append_u64(buf, fnv1a(buf.data(), buf.size()));
  const auto path = temp_path("tsunami_overflow.bundle");
  write_file(path, buf);
  EXPECT_THROW((void)load_bundle(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(ArtifactBundleFormat, RejectsUnsupportedVersion) {
  std::vector<char> buf;
  append_u64(buf, 0x5453'42554e444c45ULL);
  append_u64(buf, kBundleFormatVersion + 7);
  append_u64(buf, 0);
  append_u64(buf, 0);
  append_u64(buf, fnv1a(buf.data(), buf.size()));
  const auto path = temp_path("tsunami_version.bundle");
  write_file(path, buf);
  EXPECT_THROW((void)load_bundle(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST_F(ArtifactBundleTest, RejectsFingerprintConfigMismatch) {
  // A bundle whose identity disagrees with its stored config must not boot
  // a twin, even though its checksum is valid (re-saved after tampering).
  ArtifactBundle tampered = load_bundle(*path_);
  tampered.fingerprint ^= 1;
  const auto path = temp_path("tsunami_fingerprint.bundle");
  save_bundle(path, tampered);
  EXPECT_NO_THROW((void)load_bundle(path));  // container itself is intact
  EXPECT_THROW((void)DigitalTwin(tampered), std::runtime_error);
  EXPECT_THROW((void)DigitalTwin::load_offline(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST_F(ArtifactBundleTest, RejectsHostileConfigBeforeConstruction) {
  // A crafted bundle can carry any config it likes with a self-consistent
  // fingerprint (FNV is not a MAC). The unpacker must range-check every
  // size field BEFORE the constructor sizes mesh/model allocations from
  // them — a 2^22-cubed mesh claim is a clean throw, not an exabyte
  // allocation or a wrapped product.
  ArtifactBundle evil_bundle = twin_->make_bundle();
  std::vector<double> cfg = evil_bundle.vector("config");
  cfg[9] = cfg[10] = cfg[11] = static_cast<double>(1u << 22);  // mesh dims
  evil_bundle.set("config", {cfg.size()}, cfg);
  TwinConfig evil_cfg = twin_->config();
  evil_cfg.mesh_nx = evil_cfg.mesh_ny = evil_cfg.mesh_nz = 1u << 22;
  evil_bundle.fingerprint = evil_cfg.fingerprint();  // self-consistent
  EXPECT_THROW((void)DigitalTwin(evil_bundle), std::runtime_error);

  ArtifactBundle zero_sensors = twin_->make_bundle();
  cfg = zero_sensors.vector("config");
  cfg[18] = 0.0;  // num_sensors
  zero_sensors.set("config", {cfg.size()}, cfg);
  EXPECT_THROW((void)DigitalTwin(zero_sensors), std::runtime_error);
}

TEST_F(ArtifactBundleTest, RejectsSectionDimensionMismatch) {
  // Consistent fingerprint/config but a Cholesky factor of the wrong shape:
  // the per-section dimension checks must refuse it.
  ArtifactBundle tampered = twin_->make_bundle();
  tampered.set_matrix("hessian/chol_L", Matrix(3, 3, 1.0));
  EXPECT_THROW((void)DigitalTwin(tampered), std::runtime_error);
  ArtifactBundle missing = twin_->make_bundle();
  EXPECT_THROW((void)missing.at("no/such/section"), std::runtime_error);
}

TEST(ArtifactBundleRoundTrip, SectionsSurviveSaveLoad) {
  ArtifactBundle b;
  b.fingerprint = 0xfeedface;
  Matrix m(3, 4);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<double>(i) * 0.25 - 1.0;
  b.set_matrix("a/matrix", m);
  b.set_vector("a/vector", std::vector<double>{1.0, -2.5, 3.75});
  b.set("a/rank3", {2, 2, 2}, std::vector<double>(8, 0.125));
  const auto path = temp_path("tsunami_roundtrip.bundle");
  save_bundle(path, b);
  const ArtifactBundle back = load_bundle(path);
  EXPECT_EQ(back.fingerprint, 0xfeedfaceULL);
  EXPECT_EQ(back.matrix("a/matrix").max_abs_diff(m), 0.0);
  EXPECT_EQ(back.vector("a/vector"), (std::vector<double>{1.0, -2.5, 3.75}));
  EXPECT_EQ(back.at("a/rank3").dims, (std::vector<std::uint64_t>{2, 2, 2}));
  EXPECT_THROW((void)back.matrix("a/vector"), std::runtime_error);
  EXPECT_THROW((void)back.vector("a/matrix"), std::runtime_error);
  std::filesystem::remove(path);
}

// ---- streaming lifetime guard ---------------------------------------------

TEST_F(ArtifactBundleTest, EngineOutlivingItsTwinThrowsInsteadOfDangling) {
  auto victim = std::make_unique<DigitalTwin>(DigitalTwin::load_offline(*path_));
  const StreamingEngine engine = victim->make_streaming({.track_map = false});
  StreamingAssimilator assim = engine.start();
  assim.push(0, std::span<const double>(event_->d_obs)
                    .first(engine.block_size()));
  EXPECT_TRUE(engine.operators_alive());
  victim.reset();  // destroy the twin under the engine
  EXPECT_FALSE(engine.operators_alive());
  EXPECT_THROW((void)engine.start(), std::logic_error);
  EXPECT_THROW(assim.push(1, std::span<const double>(event_->d_obs)
                                 .subspan(engine.block_size(),
                                          engine.block_size())),
               std::logic_error);
  EXPECT_THROW((void)assim.forecast(), std::logic_error);
  EXPECT_THROW((void)assim.map_snapshot(), std::logic_error);
}

TEST_F(ArtifactBundleTest, RebuildingOfflineStateInvalidatesOldEngines) {
  DigitalTwin twin = DigitalTwin::load_offline(*path_);
  const StreamingEngine engine = twin.make_streaming();
  EXPECT_TRUE(engine.operators_alive());
  // Re-running Phase 2+3 replaces the posterior/predictor the engine's
  // slabs were baked from; the old engine must refuse to keep slicing.
  twin.run_phase2(NoiseModel{event_->noise.sigma});
  EXPECT_FALSE(engine.operators_alive());
  EXPECT_THROW((void)engine.start(), std::logic_error);
  twin.run_phase3();
  const StreamingEngine fresh = twin.make_streaming();
  EXPECT_TRUE(fresh.operators_alive());
  EXPECT_NO_THROW((void)fresh.start());
}

// ---- ScenarioBank warm-start path -----------------------------------------

TEST_F(ArtifactBundleTest, ScenarioBankBootsFromBundle) {
  ScenarioBank bank = ScenarioBank::from_bundle(*path_, 3, 11);
  EXPECT_EQ(bank.size(), 3u);
  EXPECT_TRUE(bank.twin().online_ready());
  bank.synthesize(7);
  const EnsembleReport report = bank.run_online();
  EXPECT_EQ(report.scenarios.size(), 3u);
  for (const auto& r : report.scenarios) {
    EXPECT_TRUE(std::isfinite(r.forecast_error));
    EXPECT_GE(r.ci_coverage, 0.0);
  }
  // The owning bank keeps its twin alive through moves of the report path;
  // streaming sweeps work off the same warm state.
  const StreamingEngine engine = bank.twin().make_streaming();
  const StreamingSweepReport sweep = bank.run_streaming(engine);
  EXPECT_EQ(sweep.scenarios.size(), 3u);
}

}  // namespace
}  // namespace tsunami
