// Tests for the FFT library: correctness against the naive DFT across sizes
// (powers of two and Bluestein for composite/prime lengths), roundtrips,
// batching, and FFT-based convolution.

#include <gtest/gtest.h>

#include <cmath>

#include "fft/fft.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

std::vector<Complex> random_signal(std::size_t n, unsigned seed) {
  Rng rng(seed);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  return x;
}

double max_err(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, ForwardMatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, static_cast<unsigned>(n));
  const auto expected = dft_reference(x);
  FftPlan plan(n);
  plan.forward(std::span<Complex>(x));
  EXPECT_LT(max_err(x, expected), 1e-9 * static_cast<double>(n))
      << "size " << n;
}

TEST_P(FftSizeTest, InverseMatchesNaiveInverseDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, static_cast<unsigned>(n) + 1);
  const auto expected = dft_reference(x, /*inverse=*/true);
  FftPlan plan(n);
  plan.inverse(std::span<Complex>(x));
  EXPECT_LT(max_err(x, expected), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizeTest, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  const auto orig = random_signal(n, static_cast<unsigned>(n) + 2);
  auto x = orig;
  FftPlan plan(n);
  plan.forward(std::span<Complex>(x));
  plan.inverse(std::span<Complex>(x));
  EXPECT_LT(max_err(x, orig), 1e-10 * static_cast<double>(n));
}

// Powers of two exercise radix-2; 3, 5, 6, 12, 100 exercise Bluestein;
// 17, 31, 97 are primes (worst case for non-chirp algorithms).
INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 12, 16, 17,
                                           31, 32, 64, 97, 100, 128, 256));

TEST(Fft, LinearityProperty) {
  const std::size_t n = 64;
  const auto x = random_signal(n, 7);
  const auto y = random_signal(n, 8);
  const Complex alpha(1.3, -0.4);
  FftPlan plan(n);

  auto fx = x, fy = y;
  plan.forward(std::span<Complex>(fx));
  plan.forward(std::span<Complex>(fy));
  std::vector<Complex> combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = alpha * x[i] + y[i];
  plan.forward(std::span<Complex>(combo));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LT(std::abs(combo[i] - (alpha * fx[i] + fy[i])), 1e-10);
}

TEST(Fft, ParsevalEnergyConservation) {
  const std::size_t n = 128;
  auto x = random_signal(n, 9);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  FftPlan plan(n);
  plan.forward(std::span<Complex>(x));
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-9 * time_energy);
}

TEST(Fft, ImpulseTransformsToConstant) {
  const std::size_t n = 32;
  std::vector<Complex> x(n, Complex(0.0, 0.0));
  x[0] = Complex(1.0, 0.0);
  fft(x);
  for (const auto& v : x) EXPECT_LT(std::abs(v - Complex(1.0, 0.0)), 1e-12);
}

TEST(Fft, ConstantTransformsToImpulse) {
  const std::size_t n = 32;
  std::vector<Complex> x(n, Complex(1.0, 0.0));
  fft(x);
  EXPECT_NEAR(x[0].real(), static_cast<double>(n), 1e-10);
  for (std::size_t i = 1; i < n; ++i) EXPECT_LT(std::abs(x[i]), 1e-10);
}

TEST(Fft, RealInputHasConjugateSymmetry) {
  const std::size_t n = 48;  // Bluestein path
  Rng rng(10);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.normal(), 0.0);
  fft(x);
  for (std::size_t k = 1; k < n / 2; ++k)
    EXPECT_LT(std::abs(x[k] - std::conj(x[n - k])), 1e-10);
}

TEST(Fft, TimeShiftBecomesPhaseRamp) {
  const std::size_t n = 64;
  const auto x = random_signal(n, 11);
  std::vector<Complex> shifted(n);
  for (std::size_t i = 0; i < n; ++i) shifted[(i + 1) % n] = x[i];
  auto fx = x, fs = shifted;
  FftPlan plan(n);
  plan.forward(std::span<Complex>(fx));
  plan.forward(std::span<Complex>(fs));
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n);
    const Complex phase(std::cos(ang), std::sin(ang));
    EXPECT_LT(std::abs(fs[k] - fx[k] * phase), 1e-9);
  }
}

TEST(FftBatch, MatchesIndividualTransforms) {
  const std::size_t n = 64, batch = 5;
  FftPlan plan(n);
  std::vector<Complex> data;
  std::vector<std::vector<Complex>> singles;
  for (std::size_t b = 0; b < batch; ++b) {
    auto s = random_signal(n, 100 + static_cast<unsigned>(b));
    singles.push_back(s);
    data.insert(data.end(), s.begin(), s.end());
  }
  plan.forward_batch(std::span<Complex>(data), batch);
  for (std::size_t b = 0; b < batch; ++b) {
    plan.forward(std::span<Complex>(singles[b]));
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_LT(std::abs(data[b * n + i] - singles[b][i]), 1e-12);
  }
}

TEST(FftBatch, InverseBatchRoundTrip) {
  const std::size_t n = 32, batch = 3;
  FftPlan plan(n);
  auto orig = random_signal(n * batch, 55);
  auto data = orig;
  plan.forward_batch(std::span<Complex>(data), batch);
  plan.inverse_batch(std::span<Complex>(data), batch);
  EXPECT_LT(max_err(data, orig), 1e-10);
}

TEST(FftConvolve, MatchesDirectConvolution) {
  Rng rng(12);
  const auto a = rng.normal_vector(17);
  const auto b = rng.normal_vector(9);
  const auto fast = fft_convolve(a, b);
  ASSERT_EQ(fast.size(), a.size() + b.size() - 1);
  for (std::size_t k = 0; k < fast.size(); ++k) {
    double direct = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::size_t j = k - i;
      if (k >= i && j < b.size()) direct += a[i] * b[j];
    }
    EXPECT_NEAR(fast[k], direct, 1e-10);
  }
}

TEST(FftConvolve, DeltaIsIdentity) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> delta{1.0};
  const auto y = fft_convolve(x, delta);
  ASSERT_EQ(y.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(y[i], x[i], 1e-12);
}

// ---------------------------------------------------------------------------
// Real-input transforms: the r2c/c2r packing path (even lengths, used by the
// Toeplitz engine) and the two-reals-in-one-FFT pair trick (any length,
// including Bluestein sizes).
// ---------------------------------------------------------------------------

class RealFftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealFftSizeTest, ForwardMatchesComplexFftOfRealSignal) {
  const std::size_t n = GetParam();
  Rng rng(static_cast<unsigned>(n) + 40);
  const auto x = rng.normal_vector(n);
  std::vector<Complex> full(n);
  for (std::size_t i = 0; i < n; ++i) full[i] = Complex(x[i], 0.0);
  FftPlan(n).forward(std::span<Complex>(full));

  RealFftPlan plan(n);
  ASSERT_EQ(plan.spectrum_size(), n / 2 + 1);
  std::vector<Complex> spec(plan.spectrum_size());
  std::vector<Complex> scratch(plan.scratch_size());
  plan.forward(x, std::span<Complex>(spec), std::span<Complex>(scratch));
  for (std::size_t k = 0; k <= n / 2; ++k)
    EXPECT_LT(std::abs(spec[k] - full[k]), 1e-10 * static_cast<double>(n))
        << "bin " << k;
}

TEST_P(RealFftSizeTest, RoundTripIsIdentity) {
  const std::size_t n = GetParam();
  Rng rng(static_cast<unsigned>(n) + 41);
  const auto x = rng.normal_vector(n);
  RealFftPlan plan(n);
  std::vector<Complex> spec(plan.spectrum_size());
  std::vector<Complex> scratch(plan.scratch_size());
  plan.forward(x, std::span<Complex>(spec), std::span<Complex>(scratch));
  std::vector<double> back(n);
  plan.inverse(spec, std::span<double>(back), std::span<Complex>(scratch));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(back[i], x[i], 1e-11 * static_cast<double>(n));
}

TEST_P(RealFftSizeTest, ZeroPaddedShortSignalMatchesExplicitPadding) {
  const std::size_t n = GetParam();
  const std::size_t nshort = n / 2 + 1 > n ? n : n / 2 + 1;
  Rng rng(static_cast<unsigned>(n) + 42);
  const auto x = rng.normal_vector(nshort);
  std::vector<double> padded(n, 0.0);
  std::copy(x.begin(), x.end(), padded.begin());

  RealFftPlan plan(n);
  std::vector<Complex> spec_short(plan.spectrum_size());
  std::vector<Complex> spec_pad(plan.spectrum_size());
  std::vector<Complex> scratch(plan.scratch_size());
  plan.forward(x, std::span<Complex>(spec_short),
               std::span<Complex>(scratch));
  plan.forward(padded, std::span<Complex>(spec_pad),
               std::span<Complex>(scratch));
  for (std::size_t k = 0; k < spec_pad.size(); ++k)
    EXPECT_EQ(spec_short[k], spec_pad[k]) << "bin " << k;
}

TEST_P(RealFftSizeTest, StridedGatherScatterMatchesContiguous) {
  const std::size_t n = GetParam();
  const std::size_t stride = 3;
  Rng rng(static_cast<unsigned>(n) + 43);
  const auto dense = rng.normal_vector(n);
  std::vector<double> strided(n * stride, -7.0);
  for (std::size_t i = 0; i < n; ++i) strided[i * stride] = dense[i];

  RealFftPlan plan(n);
  std::vector<Complex> spec_a(plan.spectrum_size());
  std::vector<Complex> spec_b(plan.spectrum_size());
  std::vector<Complex> scratch(plan.scratch_size());
  plan.forward(dense, std::span<Complex>(spec_a), std::span<Complex>(scratch));
  plan.forward_strided(strided.data(), stride, n, std::span<Complex>(spec_b),
                       std::span<Complex>(scratch));
  for (std::size_t k = 0; k < spec_a.size(); ++k)
    EXPECT_EQ(spec_a[k], spec_b[k]);

  // Strided inverse scatters only the requested samples and leaves every
  // other slot of the interleaved buffer untouched.
  std::vector<double> out(n * stride, -7.0);
  plan.inverse_strided(spec_b, out.data(), stride, n,
                       std::span<Complex>(scratch));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(out[i * stride], dense[i], 1e-11 * static_cast<double>(n));
    for (std::size_t s = 1; s < stride; ++s)
      EXPECT_EQ(out[i * stride + s], -7.0);
  }
}

// 6, 34, 100 give non-power-of-two HALF lengths (3, 17, 25): the packing
// trick on top of the Bluestein complex path, scratch included.
INSTANTIATE_TEST_SUITE_P(Sizes, RealFftSizeTest,
                         ::testing::Values(2, 4, 6, 8, 16, 34, 64, 100, 128,
                                           256, 1024));

TEST(RealFft, RejectsOddAndZeroLengths) {
  EXPECT_THROW(RealFftPlan(0), std::invalid_argument);
  EXPECT_THROW(RealFftPlan(7), std::invalid_argument);
  RealFftPlan plan(16);
  std::vector<Complex> small_spec(3), scratch(plan.scratch_size());
  std::vector<double> x(16);
  EXPECT_THROW(plan.forward(x, std::span<Complex>(small_spec),
                            std::span<Complex>(scratch)),
               std::invalid_argument);
}

class RealPairSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealPairSizeTest, PairPackingMatchesSeparateTransforms) {
  const std::size_t n = GetParam();
  Rng rng(static_cast<unsigned>(n) + 50);
  const auto a = rng.normal_vector(n);
  const auto b = rng.normal_vector(n);
  FftPlan plan(n);

  std::vector<Complex> fa(n), fb(n);
  for (std::size_t i = 0; i < n; ++i) {
    fa[i] = Complex(a[i], 0.0);
    fb[i] = Complex(b[i], 0.0);
  }
  plan.forward(std::span<Complex>(fa));
  plan.forward(std::span<Complex>(fb));

  const std::size_t nspec = n / 2 + 1;
  std::vector<Complex> ahat(nspec), bhat(nspec);
  std::vector<Complex> scratch(n + plan.scratch_size());
  fft_real_pair(plan, a, b, std::span<Complex>(ahat), std::span<Complex>(bhat),
                std::span<Complex>(scratch));
  for (std::size_t k = 0; k < nspec; ++k) {
    EXPECT_LT(std::abs(ahat[k] - fa[k]), 1e-9 * static_cast<double>(n));
    EXPECT_LT(std::abs(bhat[k] - fb[k]), 1e-9 * static_cast<double>(n));
  }
}

TEST_P(RealPairSizeTest, PairRoundTripIsIdentity) {
  const std::size_t n = GetParam();
  Rng rng(static_cast<unsigned>(n) + 51);
  const auto a = rng.normal_vector(n);
  const auto b = rng.normal_vector(n);
  FftPlan plan(n);
  const std::size_t nspec = n / 2 + 1;
  std::vector<Complex> ahat(nspec), bhat(nspec);
  std::vector<Complex> scratch(n + plan.scratch_size());
  fft_real_pair(plan, a, b, std::span<Complex>(ahat), std::span<Complex>(bhat),
                std::span<Complex>(scratch));
  std::vector<double> a2(n), b2(n);
  ifft_real_pair(plan, ahat, bhat, std::span<double>(a2),
                 std::span<double>(b2), std::span<Complex>(scratch));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(a2[i], a[i], 1e-10 * static_cast<double>(n));
    EXPECT_NEAR(b2[i], b[i], 1e-10 * static_cast<double>(n));
  }
}

// Odd, prime and composite lengths: all through the Bluestein chirp path
// with caller-owned scratch — the case RealFftPlan cannot cover.
INSTANTIATE_TEST_SUITE_P(Sizes, RealPairSizeTest,
                         ::testing::Values(1, 2, 3, 5, 7, 12, 17, 31, 64, 97,
                                           100));

TEST(FftScratch, ScratchOverloadMatchesAllocatingPath) {
  // Bluestein with caller scratch must be bit-identical to the allocating
  // overload, and one scratch slab must be reusable across calls.
  const std::size_t n = 97;
  FftPlan plan(n);
  ASSERT_GT(plan.scratch_size(), 0u);
  std::vector<Complex> scratch(plan.scratch_size());
  for (unsigned trial = 0; trial < 3; ++trial) {
    auto x = random_signal(n, 60 + trial);
    auto y = x;
    plan.forward(std::span<Complex>(x));
    plan.forward(std::span<Complex>(y), std::span<Complex>(scratch));
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x[i], y[i]);
    plan.inverse(std::span<Complex>(x));
    plan.inverse(std::span<Complex>(y), std::span<Complex>(scratch));
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x[i], y[i]);
  }
  std::vector<Complex> tiny(3);
  std::vector<Complex> data = random_signal(n, 63);
  EXPECT_THROW(plan.forward(std::span<Complex>(data),
                            std::span<Complex>(tiny)),
               std::invalid_argument);
}

TEST(Fft, PlanRejectsSizeMismatch) {
  FftPlan plan(16);
  std::vector<Complex> wrong(8);
  EXPECT_THROW(plan.forward(std::span<Complex>(wrong)), std::invalid_argument);
  EXPECT_THROW(FftPlan(0), std::invalid_argument);
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(17), 32u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

}  // namespace
}  // namespace tsunami
