// Tests of the batched scenario-ensemble subsystem: spec generation,
// synthesis, shared noise calibration, and the batched online sweep
// (parallel == serial, sane accuracy aggregates, amortized latency).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/scenario_bank.hpp"
#include "linalg/blas.hpp"

namespace tsunami {
namespace {

/// Shared fixture: one tiny twin, a small bank, offline phases run once.
class ScenarioBankTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kBankSize = 4;

  static void SetUpTestSuite() {
    twin_ = new DigitalTwin(TwinConfig::tiny());
    bank_ = new ScenarioBank(*twin_,
                             ScenarioBank::spread(*twin_, kBankSize, 2026));
    bank_->synthesize(7);
    twin_->run_offline(bank_->shared_noise());
  }
  static void TearDownTestSuite() {
    delete bank_;
    delete twin_;
    bank_ = nullptr;
    twin_ = nullptr;
  }

  static DigitalTwin* twin_;
  static ScenarioBank* bank_;
};

DigitalTwin* ScenarioBankTest::twin_ = nullptr;
ScenarioBank* ScenarioBankTest::bank_ = nullptr;

TEST_F(ScenarioBankTest, SpreadProducesDistinctScenarios) {
  const auto& specs = bank_->specs();
  ASSERT_EQ(specs.size(), kBankSize);
  std::set<unsigned> seeds;
  for (const auto& s : specs) seeds.insert(s.seed);
  EXPECT_EQ(seeds.size(), kBankSize) << "asperity layouts must differ";
  // Magnitudes span the ladder and hypocenters sweep along strike.
  EXPECT_LT(specs.front().magnitude, specs.back().magnitude);
  EXPECT_LT(specs.front().hypocenter_y, specs.back().hypocenter_y);
  for (const auto& s : specs) {
    EXPECT_GE(s.magnitude, 7.9);
    EXPECT_LE(s.magnitude, 9.2);
    EXPECT_GT(s.rise_time, 0.0);
    EXPECT_GT(s.rupture_speed, 0.0);
    EXPECT_FALSE(s.name.empty());
  }
}

TEST_F(ScenarioBankTest, SpreadIsDeterministic) {
  const auto a = ScenarioBank::spread(*twin_, kBankSize, 2026);
  const auto b = ScenarioBank::spread(*twin_, kBankSize, 2026);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].magnitude, b[i].magnitude);
    EXPECT_DOUBLE_EQ(a[i].hypocenter_y, b[i].hypocenter_y);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST_F(ScenarioBankTest, SynthesisProducesDistinctSignals) {
  const auto& events = bank_->events();
  ASSERT_EQ(events.size(), kBankSize);
  for (const auto& ev : events) {
    EXPECT_GT(amax(ev.d_true), 0.0);
    EXPECT_GT(ev.noise.sigma, 0.0);
  }
  // Different magnitudes give measurably different data energy.
  double lo = 1e300, hi = 0.0;
  for (const auto& ev : events) {
    const double peak = amax(ev.d_true);
    lo = std::min(lo, peak);
    hi = std::max(hi, peak);
  }
  EXPECT_GT(hi, 1.5 * lo);
}

TEST_F(ScenarioBankTest, SharedNoiseFloorAppliesToEveryEvent) {
  const NoiseModel nm = bank_->shared_noise();
  EXPECT_GT(nm.sigma, 0.0);
  for (const auto& ev : bank_->events()) {
    // One absolute noise floor across the bank (fixed instrument noise),
    // so the once-factorized Hessian is exactly calibrated for each event.
    EXPECT_DOUBLE_EQ(ev.noise.sigma, nm.sigma);
    double max_dev = 0.0;
    for (std::size_t j = 0; j < ev.d_true.size(); ++j)
      max_dev = std::max(max_dev, std::abs(ev.d_obs[j] - ev.d_true[j]));
    EXPECT_GT(max_dev, 0.0);
    EXPECT_LT(max_dev, 6.0 * nm.sigma);
  }
}

// Worker-count bit-reproducibility of synthesize() lives in
// tests/test_determinism.cpp, the one parameterized suite covering every
// parallel_for-driven result.

TEST_F(ScenarioBankTest, BatchedOnlineSweepRecoversEveryScenario) {
  const EnsembleReport report = bank_->run_online();
  ASSERT_EQ(report.scenarios.size(), kBankSize);
  for (const auto& r : report.scenarios) {
    EXPECT_GT(r.online_seconds, 0.0);
    EXPECT_LT(r.online_seconds, 5.0);
    EXPECT_TRUE(std::isfinite(r.displacement_error));
    EXPECT_TRUE(std::isfinite(r.forecast_error));
    EXPECT_TRUE(std::isfinite(r.forecast_correlation));
    // The inversion must recover each source pattern, not just one.
    // Displacement correlation is the robust seed-scale recovery metric
    // (see ScenarioResult::displacement_correlation).
    EXPECT_GT(r.displacement_correlation, 0.4) << r.spec.name;
    EXPECT_GT(r.peak_true_uplift, 0.0);
    EXPECT_GE(r.ci_coverage, 0.0);
    EXPECT_LE(r.ci_coverage, 1.0);
  }
  EXPECT_GT(report.mean_displacement_correlation, 0.55);
  EXPECT_GT(report.online_wall_seconds, 0.0);
  EXPECT_GT(report.max_online_seconds, 0.0);
  EXPECT_LE(report.mean_online_seconds, report.max_online_seconds + 1e-15);
  // Percentile summary over the per-scenario online latencies (util/stats).
  EXPECT_EQ(report.online_latency.count, kBankSize);
  EXPECT_GT(report.online_latency.p50, 0.0);
  EXPECT_LE(report.online_latency.p50, report.online_latency.p95);
  EXPECT_LE(report.online_latency.p95, report.online_latency.p99);
  EXPECT_LE(report.online_latency.p99, report.online_latency.max);
  EXPECT_DOUBLE_EQ(report.online_latency.max, report.max_online_seconds);
  EXPECT_FALSE(report.table().empty());
}

TEST_F(ScenarioBankTest, ParallelMatchesSerial) {
  const EnsembleReport par = bank_->run_online(/*parallel=*/true);
  const EnsembleReport ser = bank_->run_online(/*parallel=*/false);
  ASSERT_EQ(par.scenarios.size(), ser.scenarios.size());
  for (std::size_t i = 0; i < par.scenarios.size(); ++i) {
    // Deterministic linear algebra: identical results, only timings differ.
    EXPECT_DOUBLE_EQ(par.scenarios[i].displacement_error,
                     ser.scenarios[i].displacement_error);
    EXPECT_DOUBLE_EQ(par.scenarios[i].forecast_error,
                     ser.scenarios[i].forecast_error);
  }
}

TEST_F(ScenarioBankTest, StreamingSweepConvergesToBatchForecasts) {
  const StreamingEngine engine = twin_->make_streaming({.track_map = true});
  const StreamingSweepReport sweep = bank_->run_streaming(engine);
  const EnsembleReport batch = bank_->run_online();
  ASSERT_EQ(sweep.scenarios.size(), bank_->size());

  const std::size_t nt = engine.num_ticks();
  for (std::size_t i = 0; i < sweep.scenarios.size(); ++i) {
    const StreamingScenarioResult& r = sweep.scenarios[i];
    EXPECT_EQ(r.ticks_total, nt);
    EXPECT_GE(r.confident_tick, 1u);
    EXPECT_LE(r.confident_tick, nt);
    EXPECT_GT(r.confident_seconds, 0.0);
    EXPECT_GT(r.mean_push_seconds, 0.0);
    EXPECT_GE(r.max_push_seconds, r.mean_push_seconds);
    // After the final tick the streaming forecast IS the batch forecast, so
    // the sweep's accuracy metrics must match run_online's.
    EXPECT_NEAR(r.final_forecast_error, batch.scenarios[i].forecast_error,
                1e-9);
    EXPECT_NEAR(r.final_forecast_correlation,
                batch.scenarios[i].forecast_correlation, 1e-9);
    EXPECT_NEAR(r.displacement_correlation,
                batch.scenarios[i].displacement_correlation, 1e-9);
  }
  EXPECT_GT(sweep.wall_seconds, 0.0);
  EXPECT_GT(sweep.mean_confident_fraction, 0.0);
  EXPECT_LE(sweep.mean_confident_fraction, 1.0);
  EXPECT_LE(sweep.mean_confident_seconds, sweep.max_confident_seconds + 1e-15);
  // Percentiles over EVERY per-tick push in the sweep (scenarios x ticks).
  EXPECT_EQ(sweep.push_latency.count, bank_->size() * nt);
  EXPECT_GT(sweep.push_latency.p50, 0.0);
  EXPECT_LE(sweep.push_latency.p50, sweep.push_latency.p95);
  EXPECT_LE(sweep.push_latency.p95, sweep.push_latency.p99);
  EXPECT_LE(sweep.push_latency.p99, sweep.push_latency.max);
  EXPECT_DOUBLE_EQ(sweep.push_latency.max, sweep.max_push_seconds);
  EXPECT_FALSE(sweep.table().empty());
}

TEST_F(ScenarioBankTest, StreamingSweepParallelMatchesSerial) {
  const StreamingEngine engine = twin_->make_streaming({.track_map = false});
  const StreamingSweepReport par =
      bank_->run_streaming(engine, /*parallel=*/true);
  const StreamingSweepReport ser =
      bank_->run_streaming(engine, /*parallel=*/false);
  ASSERT_EQ(par.scenarios.size(), ser.scenarios.size());
  for (std::size_t i = 0; i < par.scenarios.size(); ++i) {
    // Assimilators share the engine's immutable precompute and use fixed
    // accumulation order: identical results, only timings differ.
    EXPECT_EQ(par.scenarios[i].confident_tick, ser.scenarios[i].confident_tick);
    EXPECT_DOUBLE_EQ(par.scenarios[i].final_forecast_error,
                     ser.scenarios[i].final_forecast_error);
  }
}

TEST(ScenarioBankErrors, MisuseThrows) {
  DigitalTwin twin(TwinConfig::tiny());
  EXPECT_THROW(ScenarioBank(twin, {}), std::invalid_argument);
  EXPECT_THROW((void)ScenarioBank::spread(twin, 0), std::invalid_argument);
  ScenarioBank bank(twin, ScenarioBank::spread(twin, 2));
  EXPECT_THROW((void)bank.shared_noise(), std::logic_error);
  EXPECT_THROW((void)bank.run_online(), std::logic_error);
  // Synthesized but offline phases not run: must throw (from outside the
  // parallel region), not terminate.
  bank.synthesize(7);
  EXPECT_THROW((void)bank.run_online(), std::logic_error);
}

TEST_F(ScenarioBankTest, StreamingSweepMisuseThrows) {
  const StreamingEngine engine = twin_->make_streaming({.track_map = false});
  EXPECT_THROW((void)bank_->run_streaming(engine, true, 0.0),
               std::invalid_argument);
  ScenarioBank fresh(*twin_, bank_->specs());
  EXPECT_THROW((void)fresh.run_streaming(engine), std::logic_error);
}

}  // namespace
}  // namespace tsunami
