// Tests for greedy A-optimal sensor placement: monotone uncertainty
// reduction, consistency with direct subset evaluation, and preference for
// informative locations.

#include <gtest/gtest.h>

#include "core/p2o_builder.hpp"
#include "core/sensor_placement.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

struct PlacementProblem {
  PlacementProblem()
      : bathy(flat_basin(1500.0, 40e3, 40e3)),
        mesh(bathy, 3, 3, 1),
        model(mesh, 1) {
    // Candidate pool: a coarse grid of 6 possible seafloor sensor sites.
    candidates = sensor_grid(6, 5e3, 35e3, 5e3, 35e3);
    pool_obs = std::make_unique<ObservationOperator>(
        ObservationOperator::seafloor_sensors(model, candidates));
    gauges = std::make_unique<ObservationOperator>(
        ObservationOperator::surface_gauges(model, {{20e3, 20e3}}));
    grid.num_intervals = 3;
    grid.substeps = 3;
    grid.dt = model.cfl_timestep(0.4);
    f_pool = build_p2o_map(model, *pool_obs, grid);
    fq = build_p2o_map(model, *gauges, grid);

    MaternPriorConfig pcfg;
    pcfg.sigma = 0.3;
    pcfg.correlation_length = 12e3;
    prior = std::make_unique<MaternPrior>(4, 4, 40e3 / 3.0, 40e3 / 3.0, pcfg);

    // Pressure-scale noise.
    Rng rng(1);
    std::vector<double> m(f_pool.toeplitz->input_dim());
    for (auto& x : m) x = 0.1 * rng.normal();
    std::vector<double> d(f_pool.toeplitz->output_dim());
    f_pool.toeplitz->apply(m, std::span<double>(d));
    noise = relative_noise(d, 0.05);

    pool = build_placement_pool(*f_pool.toeplitz, *fq.toeplitz, *prior, noise);
  }

  Bathymetry bathy;
  HexMesh mesh;
  AcousticGravityModel model;
  std::vector<std::array<double, 2>> candidates;
  std::unique_ptr<ObservationOperator> pool_obs, gauges;
  TimeGrid grid;
  P2oMap f_pool, fq;
  std::unique_ptr<MaternPrior> prior;
  NoiseModel noise;
  PlacementPool pool;
};

TEST(SensorPlacement, PoolDimensionsMatch) {
  PlacementProblem pp;
  EXPECT_EQ(pp.pool.num_candidates, 6u);
  EXPECT_EQ(pp.pool.nt, 3u);
  EXPECT_EQ(pp.pool.gram.rows(), 18u);
  EXPECT_EQ(pp.pool.v.rows(), 18u);
  EXPECT_EQ(pp.pool.v.cols(), 3u);
  EXPECT_EQ(pp.pool.w.rows(), 3u);
}

TEST(SensorPlacement, EmptySubsetGivesPriorTrace) {
  PlacementProblem pp;
  double trace_w = 0.0;
  for (std::size_t i = 0; i < pp.pool.w.rows(); ++i)
    trace_w += pp.pool.w(i, i);
  EXPECT_DOUBLE_EQ(qoi_posterior_trace(pp.pool, {}), trace_w);
}

TEST(SensorPlacement, AnySensorReducesQoiTrace) {
  PlacementProblem pp;
  const double prior_trace = qoi_posterior_trace(pp.pool, {});
  for (std::size_t c = 0; c < pp.pool.num_candidates; ++c) {
    const double tr = qoi_posterior_trace(pp.pool, {c});
    EXPECT_LE(tr, prior_trace * (1.0 + 1e-12)) << "candidate " << c;
  }
}

TEST(SensorPlacement, GreedyTraceIsMonotone) {
  PlacementProblem pp;
  const auto result = greedy_sensor_placement(pp.pool, 5);
  ASSERT_EQ(result.selected.size(), 5u);
  double prev = result.prior_qoi_trace;
  for (double tr : result.qoi_trace) {
    EXPECT_LE(tr, prev * (1.0 + 1e-12));
    prev = tr;
  }
}

TEST(SensorPlacement, GreedySelectsDistinctSensors) {
  PlacementProblem pp;
  const auto result = greedy_sensor_placement(pp.pool, 6);
  std::vector<std::size_t> sorted = result.selected;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(SensorPlacement, FirstPickBeatsOrTiesEveryAlternative) {
  PlacementProblem pp;
  const auto result = greedy_sensor_placement(pp.pool, 1);
  ASSERT_EQ(result.selected.size(), 1u);
  const double best = result.qoi_trace[0];
  for (std::size_t c = 0; c < pp.pool.num_candidates; ++c)
    EXPECT_GE(qoi_posterior_trace(pp.pool, {c}), best * (1.0 - 1e-12));
}

TEST(SensorPlacement, FullBudgetMatchesFullPoolTrace) {
  PlacementProblem pp;
  const auto result = greedy_sensor_placement(pp.pool, 6);
  std::vector<std::size_t> all(pp.pool.num_candidates);
  for (std::size_t c = 0; c < all.size(); ++c) all[c] = c;
  EXPECT_NEAR(result.qoi_trace.back(), qoi_posterior_trace(pp.pool, all),
              1e-9 * std::abs(result.qoi_trace.back()));
}

TEST(SensorPlacement, BudgetClampedToPoolSize) {
  PlacementProblem pp;
  const auto result = greedy_sensor_placement(pp.pool, 100);
  EXPECT_EQ(result.selected.size(), pp.pool.num_candidates);
}

TEST(SensorPlacement, RejectsBadCandidateIndex) {
  PlacementProblem pp;
  EXPECT_THROW((void)qoi_posterior_trace(pp.pool, {99}), std::out_of_range);
}

}  // namespace
}  // namespace tsunami
