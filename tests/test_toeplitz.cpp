// Tests for the FFT-based block lower-triangular Toeplitz engine against the
// O(Nt^2) dense reference, across block shapes, including transpose and
// multi-RHS paths.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "linalg/blas.hpp"
#include "toeplitz/block_toeplitz.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

struct Shape {
  std::size_t rows, cols, nt;
};

std::vector<double> random_blocks(const Shape& s, unsigned seed) {
  Rng rng(seed);
  return rng.normal_vector(s.rows * s.cols * s.nt);
}

class ToeplitzShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(ToeplitzShapeTest, ApplyMatchesDenseReference) {
  const Shape s = GetParam();
  const auto blocks = random_blocks(s, 11);
  BlockToeplitz t(s.rows, s.cols, s.nt, blocks);
  t.set_keep_blocks(blocks);

  Rng rng(12);
  const auto x = rng.normal_vector(t.input_dim());
  std::vector<double> y_fft(t.output_dim()), y_ref(t.output_dim());
  t.apply(x, std::span<double>(y_fft));
  t.apply_dense_reference(x, std::span<double>(y_ref));
  const double scale = amax(y_ref) + 1e-30;
  for (std::size_t i = 0; i < y_ref.size(); ++i)
    EXPECT_NEAR(y_fft[i], y_ref[i], 1e-11 * scale);
}

TEST_P(ToeplitzShapeTest, TransposeIsExactAdjoint) {
  const Shape s = GetParam();
  const auto blocks = random_blocks(s, 13);
  BlockToeplitz t(s.rows, s.cols, s.nt, blocks);

  Rng rng(14);
  const auto x = rng.normal_vector(t.input_dim());
  const auto d = rng.normal_vector(t.output_dim());
  std::vector<double> tx(t.output_dim()), ttd(t.input_dim());
  t.apply(x, std::span<double>(tx));
  t.apply_transpose(d, std::span<double>(ttd));
  const double lhs = dot(tx, d);
  const double rhs = dot(x, ttd);
  EXPECT_NEAR(lhs, rhs, 1e-10 * std::abs(lhs) + 1e-10);
}

TEST_P(ToeplitzShapeTest, ApplyManyMatchesColumnwiseApply) {
  // The multi-RHS path batches the per-frequency kernel into a complex GEMM;
  // it must agree column-for-column with repeated single-vector applies for
  // every block shape, including the degenerate single-column batch.
  const Shape s = GetParam();
  const auto blocks = random_blocks(s, 23);
  BlockToeplitz t(s.rows, s.cols, s.nt, blocks);
  Rng rng(24);
  for (const std::size_t nrhs : {std::size_t{1}, std::size_t{3},
                                 std::size_t{8}}) {
    Matrix x(t.input_dim(), nrhs);
    for (std::size_t i = 0; i < x.rows(); ++i)
      for (std::size_t v = 0; v < nrhs; ++v) x(i, v) = rng.normal();
    Matrix y;
    t.apply_many(x, y);
    ASSERT_EQ(y.rows(), t.output_dim());
    ASSERT_EQ(y.cols(), nrhs);
    for (std::size_t v = 0; v < nrhs; ++v) {
      std::vector<double> xi(t.input_dim()), yi(t.output_dim());
      for (std::size_t i = 0; i < xi.size(); ++i) xi[i] = x(i, v);
      t.apply(xi, std::span<double>(yi));
      for (std::size_t i = 0; i < yi.size(); ++i)
        EXPECT_NEAR(y(i, v), yi[i], 1e-11 * (std::abs(yi[i]) + 1.0))
            << "nrhs=" << nrhs << " col=" << v;
    }
  }
}

TEST_P(ToeplitzShapeTest, ApplyTransposeManyMatchesColumnwiseApply) {
  const Shape s = GetParam();
  const auto blocks = random_blocks(s, 25);
  BlockToeplitz t(s.rows, s.cols, s.nt, blocks);
  Rng rng(26);
  for (const std::size_t nrhs : {std::size_t{1}, std::size_t{5}}) {
    Matrix x(t.output_dim(), nrhs);
    for (std::size_t i = 0; i < x.rows(); ++i)
      for (std::size_t v = 0; v < nrhs; ++v) x(i, v) = rng.normal();
    Matrix y;
    t.apply_transpose_many(x, y);
    ASSERT_EQ(y.rows(), t.input_dim());
    ASSERT_EQ(y.cols(), nrhs);
    for (std::size_t v = 0; v < nrhs; ++v) {
      std::vector<double> xi(t.output_dim()), yi(t.input_dim());
      for (std::size_t i = 0; i < xi.size(); ++i) xi[i] = x(i, v);
      t.apply_transpose(xi, std::span<double>(yi));
      for (std::size_t i = 0; i < yi.size(); ++i)
        EXPECT_NEAR(y(i, v), yi[i], 1e-11 * (std::abs(yi[i]) + 1.0))
            << "nrhs=" << nrhs << " col=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ToeplitzShapeTest,
    ::testing::Values(Shape{1, 1, 1}, Shape{1, 1, 16}, Shape{3, 5, 7},
                      Shape{5, 3, 12}, Shape{2, 17, 9}, Shape{8, 8, 32},
                      Shape{4, 25, 20}));

TEST(BlockToeplitz, LowerTriangularCausality) {
  // Input supported on the last time block must produce output only there.
  const Shape s{3, 4, 8};
  const auto blocks = random_blocks(s, 15);
  BlockToeplitz t(s.rows, s.cols, s.nt, blocks);
  Rng rng(16);
  std::vector<double> x(t.input_dim(), 0.0);
  for (std::size_t c = 0; c < s.cols; ++c)
    x[(s.nt - 1) * s.cols + c] = rng.normal();
  std::vector<double> y(t.output_dim());
  t.apply(x, std::span<double>(y));
  for (std::size_t i = 0; i + 1 < s.nt; ++i)
    for (std::size_t r = 0; r < s.rows; ++r)
      EXPECT_NEAR(y[i * s.rows + r], 0.0, 1e-12);
}

TEST(BlockToeplitz, FirstColumnReproducesBlocks) {
  // T applied to e_(t=0, c) stacks column c of every block.
  const Shape s{4, 3, 6};
  const auto blocks = random_blocks(s, 17);
  BlockToeplitz t(s.rows, s.cols, s.nt, blocks);
  for (std::size_t c = 0; c < s.cols; ++c) {
    std::vector<double> e(t.input_dim(), 0.0);
    e[c] = 1.0;
    std::vector<double> y(t.output_dim());
    t.apply(e, std::span<double>(y));
    for (std::size_t k = 0; k < s.nt; ++k)
      for (std::size_t r = 0; r < s.rows; ++r)
        EXPECT_NEAR(y[k * s.rows + r], blocks[(k * s.rows + r) * s.cols + c],
                    1e-11);
  }
}

TEST(BlockToeplitz, ScalarCaseIsDiscreteConvolution) {
  // rows = cols = 1: y_i = sum_{j<=i} f_{i-j} x_j.
  const std::vector<double> f{1.0, -0.5, 0.25, 0.125};
  BlockToeplitz t(1, 1, 4, f);
  const std::vector<double> x{2.0, 0.0, -1.0, 3.0};
  std::vector<double> y(4);
  t.apply(x, std::span<double>(y));
  EXPECT_NEAR(y[0], 2.0, 1e-12);
  EXPECT_NEAR(y[1], -1.0, 1e-12);
  EXPECT_NEAR(y[2], -0.5, 1e-12);
  EXPECT_NEAR(y[3], 3.75, 1e-12);
}

TEST(BlockToeplitz, StorageIsCompact) {
  // Fourier storage is O(L * rows * cols), not O((nt * rows) * (nt * cols)).
  const Shape s{4, 100, 64};
  const auto blocks = random_blocks(s, 22);
  BlockToeplitz t(s.rows, s.cols, s.nt, blocks);
  const std::size_t dense_bytes =
      s.rows * s.nt * s.cols * s.nt * sizeof(double);
  EXPECT_LT(t.storage_bytes(), dense_bytes / 10);
}

TEST(BlockToeplitz, RandomizedShapesMatchDenseReference) {
  // Randomized sweep over non-square blocks, non-power-of-two nt, and
  // nrhs > 1, all against the O(nt^2) dense reference. Shapes are drawn
  // from a fixed seed so failures reproduce.
  Rng shape_rng(777);
  const std::size_t nt_pool[] = {3, 5, 6, 7, 9, 11, 12, 20, 24, 31, 33};
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t rows =
        1 + static_cast<std::size_t>(std::abs(shape_rng.normal()) * 4) % 9;
    const std::size_t cols =
        1 + static_cast<std::size_t>(std::abs(shape_rng.normal()) * 12) % 40;
    const std::size_t nt =
        nt_pool[static_cast<std::size_t>(trial) % std::size(nt_pool)];
    const std::size_t nrhs = 1 + static_cast<std::size_t>(trial) % 5;
    SCOPED_TRACE(::testing::Message() << "rows=" << rows << " cols=" << cols
                                      << " nt=" << nt << " nrhs=" << nrhs);
    Rng rng(900 + static_cast<unsigned>(trial));
    const auto blocks = rng.normal_vector(rows * cols * nt);
    BlockToeplitz t(rows, cols, nt, blocks);
    t.set_keep_blocks(blocks);

    Matrix x(t.input_dim(), nrhs);
    for (std::size_t i = 0; i < x.rows(); ++i)
      for (std::size_t v = 0; v < nrhs; ++v) x(i, v) = rng.normal();
    Matrix y;
    t.apply_many(x, y);
    for (std::size_t v = 0; v < nrhs; ++v) {
      std::vector<double> xi(t.input_dim()), yi(t.output_dim());
      for (std::size_t i = 0; i < xi.size(); ++i) xi[i] = x(i, v);
      t.apply_dense_reference(xi, std::span<double>(yi));
      const double scale = amax(yi) + 1.0;
      for (std::size_t i = 0; i < yi.size(); ++i)
        EXPECT_NEAR(y(i, v), yi[i], 1e-11 * scale) << "col " << v;
    }

    // Transpose via the adjoint identity <T x, d> = <x, T^T d> with the
    // dense side computing T x.
    const auto d = rng.normal_vector(t.output_dim());
    std::vector<double> ttd(t.input_dim());
    t.apply_transpose(d, std::span<double>(ttd));
    std::vector<double> x0(t.input_dim()), tx0(t.output_dim());
    for (std::size_t i = 0; i < x0.size(); ++i) x0[i] = x(i, 0);
    t.apply_dense_reference(x0, std::span<double>(tx0));
    const double lhs = dot(tx0, d);
    const double rhs = dot(x0, ttd);
    EXPECT_NEAR(lhs, rhs, 1e-10 * (std::abs(lhs) + 1.0));
  }
}

TEST(BlockToeplitz, ExplicitWorkspaceMatchesLegacyApiBitwise) {
  // The workspace-less overloads route through a thread_local workspace;
  // both paths must produce identical bits, and one workspace must be
  // reusable across calls AND across operators of different shapes.
  const Shape shapes[] = {{3, 17, 9}, {8, 8, 32}, {1, 1, 5}};
  ToeplitzWorkspace ws;  // deliberately shared across all shapes below
  for (const Shape& s : shapes) {
    SCOPED_TRACE(::testing::Message() << s.rows << "x" << s.cols << "x"
                                      << s.nt);
    const auto blocks = random_blocks(s, 31);
    BlockToeplitz t(s.rows, s.cols, s.nt, blocks);
    Rng rng(32);
    const auto x = rng.normal_vector(t.input_dim());
    std::vector<double> y_legacy(t.output_dim()), y_ws(t.output_dim());
    t.apply(x, std::span<double>(y_legacy));
    t.apply(x, std::span<double>(y_ws), ws);
    for (std::size_t i = 0; i < y_legacy.size(); ++i)
      EXPECT_EQ(y_legacy[i], y_ws[i]);

    const auto d = rng.normal_vector(t.output_dim());
    std::vector<double> yt_legacy(t.input_dim()), yt_ws(t.input_dim());
    t.apply_transpose(d, std::span<double>(yt_legacy));
    t.apply_transpose(d, std::span<double>(yt_ws), ws);
    for (std::size_t i = 0; i < yt_legacy.size(); ++i)
      EXPECT_EQ(yt_legacy[i], yt_ws[i]);

    // Second call with the (now warm) workspace: still identical.
    std::vector<double> y_ws2(t.output_dim());
    t.apply(x, std::span<double>(y_ws2), ws);
    for (std::size_t i = 0; i < y_legacy.size(); ++i)
      EXPECT_EQ(y_legacy[i], y_ws2[i]);
  }
}

TEST(BlockToeplitz, TransposePrefixMatchesZeroPaddedTranspose) {
  const Shape s{4, 13, 11};
  const auto blocks = random_blocks(s, 41);
  BlockToeplitz t(s.rows, s.cols, s.nt, blocks);
  Rng rng(42);
  const auto d_full = rng.normal_vector(t.output_dim());
  ToeplitzWorkspace ws;
  for (std::size_t ticks = 0; ticks <= s.nt; ++ticks) {
    std::vector<double> padded(t.output_dim(), 0.0);
    std::copy(d_full.begin(),
              d_full.begin() + static_cast<std::ptrdiff_t>(ticks * s.rows),
              padded.begin());
    std::vector<double> y_pad(t.input_dim()), y_prefix(t.input_dim());
    t.apply_transpose(padded, std::span<double>(y_pad), ws);
    t.apply_transpose_prefix(
        std::span<const double>(d_full).first(ticks * s.rows), ticks,
        std::span<double>(y_prefix), ws);
    for (std::size_t i = 0; i < y_pad.size(); ++i)
      EXPECT_EQ(y_pad[i], y_prefix[i]) << "ticks=" << ticks << " i=" << i;
  }
  std::vector<double> y_bad(t.input_dim());
  EXPECT_THROW(t.apply_transpose_prefix(d_full, s.nt + 1,
                                        std::span<double>(y_bad), ws),
               std::invalid_argument);
}

TEST(BlockToeplitz, ConcurrentAppliesWithPerThreadWorkspacesAreExact) {
  // The sharing contract under the TSan CI preset: one immutable operator,
  // many threads, each with its OWN workspace (here: the thread_local one
  // behind the legacy API plus an explicit per-thread workspace). Results
  // must be bit-identical to the serial answer.
  const Shape s{5, 24, 16};
  const auto blocks = random_blocks(s, 51);
  BlockToeplitz t(s.rows, s.cols, s.nt, blocks);
  Rng rng(52);
  const auto x = rng.normal_vector(t.input_dim());
  std::vector<double> y_serial(t.output_dim());
  t.apply(x, std::span<double>(y_serial));

  constexpr std::size_t kThreads = 4;
  constexpr int kRepeats = 8;
  std::vector<std::vector<double>> results(
      kThreads, std::vector<double>(t.output_dim()));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      ToeplitzWorkspace ws;  // explicit per-thread workspace
      for (int rep = 0; rep < kRepeats; ++rep) {
        if (rep % 2 == 0)
          t.apply(x, std::span<double>(results[ti]), ws);
        else
          t.apply(x, std::span<double>(results[ti]));  // thread_local path
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t ti = 0; ti < kThreads; ++ti)
    for (std::size_t i = 0; i < y_serial.size(); ++i)
      EXPECT_EQ(results[ti][i], y_serial[i]) << "thread " << ti;
}

TEST(BlockToeplitz, RejectsBadSizes) {
  const std::vector<double> blocks(3 * 4 * 5, 1.0);
  BlockToeplitz t(3, 4, 5, blocks);
  std::vector<double> x(7), y(15);
  EXPECT_THROW(t.apply(x, std::span<double>(y)), std::invalid_argument);
  EXPECT_THROW(BlockToeplitz(3, 4, 6, blocks), std::invalid_argument);
  EXPECT_THROW(t.apply_dense_reference(x, std::span<double>(y)),
               std::logic_error);
}

}  // namespace
}  // namespace tsunami
