// Tests for the dense/banded linear algebra: BLAS kernels, Cholesky
// factorizations, CG, and the symmetric eigensolvers.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/banded_cholesky.hpp"
#include "linalg/blas.hpp"
#include "linalg/cg.hpp"
#include "linalg/dense.hpp"
#include "linalg/dense_cholesky.hpp"
#include "linalg/eigen.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

Matrix random_spd(std::size_t n, Rng& rng, double diag_boost = 1.0) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  Matrix spd(n, n);
  gemm_tn(a, a, spd);  // A^T A is SPSD
  for (std::size_t i = 0; i < n; ++i)
    spd(i, i) += diag_boost + static_cast<double>(n);
  return spd;
}

TEST(Blas, AxpyDotNorm) {
  std::vector<double> x{1.0, 2.0, 3.0}, y{4.0, 5.0, 6.0};
  axpy(2.0, x, std::span<double>(y));
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  EXPECT_DOUBLE_EQ(dot(x, x), 14.0);
  EXPECT_DOUBLE_EQ(nrm2(x), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(amax(y), 12.0);
}

TEST(Blas, DotLargeVectorParallelPathMatchesSerial) {
  Rng rng(11);
  const std::size_t n = 1 << 16;  // above the parallel threshold
  const auto x = rng.normal_vector(n);
  const auto y = rng.normal_vector(n);
  double serial = 0.0;
  for (std::size_t i = 0; i < n; ++i) serial += x[i] * y[i];
  EXPECT_NEAR(dot(x, y), serial, 1e-9 * std::abs(serial) + 1e-9);
}

TEST(Blas, GemvMatchesManualProduct) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  std::vector<double> x{1.0, 1.0, 1.0}, y(2);
  gemv(a, x, std::span<double>(y));
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Blas, GemvTransposeIsAdjointOfGemv) {
  Rng rng(5);
  const std::size_t m = 37, n = 23;
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  const auto x = rng.normal_vector(n);
  const auto y = rng.normal_vector(m);
  std::vector<double> ax(m), aty(n);
  gemv(a, x, std::span<double>(ax));
  gemv_t(a, y, std::span<double>(aty));
  // <A x, y> == <x, A^T y>
  EXPECT_NEAR(dot(ax, y), dot(x, aty), 1e-12 * m * n);
}

TEST(Blas, GemmMatchesGemvColumnwise) {
  Rng rng(6);
  const std::size_t m = 13, k = 9, n = 7;
  Matrix a(m, k), b(k, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < k; ++j) a(i, j) = rng.normal();
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  Matrix c(m, n);
  gemm(a, b, c);
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> col(k), out(m);
    for (std::size_t i = 0; i < k; ++i) col[i] = b(i, j);
    gemv(a, col, std::span<double>(out));
    for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(c(i, j), out[i], 1e-12);
  }
}

TEST(Blas, GemmTnEqualsExplicitTranspose) {
  Rng rng(8);
  Matrix a(6, 4), b(6, 5);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.normal();
    for (std::size_t j = 0; j < 5; ++j) b(i, j) = rng.normal();
  }
  Matrix c1(4, 5), c2(4, 5);
  gemm_tn(a, b, c1);
  const Matrix at = a.transposed();
  gemm(at, b, c2);
  EXPECT_LT(c1.max_abs_diff(c2), 1e-13);
}

TEST(Blas, ShapeMismatchThrows) {
  Matrix a(3, 2);
  std::vector<double> x(3), y(3);
  EXPECT_THROW(gemv(a, x, std::span<double>(y)), std::invalid_argument);
  EXPECT_THROW((void)dot(std::span<const double>(x),
                         std::span<const double>(y).subspan(0, 2)),
               std::invalid_argument);
}

class DenseCholeskyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DenseCholeskyTest, ReconstructsMatrix) {
  Rng rng(GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, rng);
  const DenseCholesky chol(a);
  const Matrix& l = chol.factor();
  Matrix llt(n, n);
  const Matrix lt = l.transposed();
  gemm(l, lt, llt);
  EXPECT_LT(a.max_abs_diff(llt), 1e-9 * static_cast<double>(n));
}

TEST_P(DenseCholeskyTest, SolvesLinearSystem) {
  Rng rng(GetParam() + 1);
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, rng);
  const auto x_true = rng.normal_vector(n);
  std::vector<double> b(n);
  gemv(a, x_true, std::span<double>(b));
  const DenseCholesky chol(a);
  chol.solve_in_place(std::span<double>(b));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseCholeskyTest,
                         ::testing::Values(1, 3, 17, 64, 130, 257));

TEST(DenseCholesky, MultiRhsSolve) {
  Rng rng(21);
  const std::size_t n = 40, k = 7;
  const Matrix a = random_spd(n, rng);
  Matrix x_true(n, k), b(n, k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j) x_true(i, j) = rng.normal();
  gemm(a, x_true, b);
  const DenseCholesky chol(a);
  chol.solve_in_place(b);
  EXPECT_LT(b.max_abs_diff(x_true), 1e-8);
}

TEST(DenseCholesky, ForwardSolveRangeResumesExactly) {
  // Forward substitution is causal: solving in arbitrary chunks as RHS
  // entries "arrive" must reproduce the one-shot solve bitwise — the
  // property the streaming assimilator's per-tick extension rests on.
  Rng rng(23);
  const std::size_t n = 60;
  const Matrix a = random_spd(n, rng);
  const DenseCholesky chol(a);
  const auto rhs = rng.normal_vector(n);

  std::vector<double> full(rhs);
  chol.forward_solve_in_place(std::span<double>(full));

  std::vector<double> chunked(n, 0.0);
  const std::size_t cuts[] = {0, 7, 8, 31, 60};
  for (std::size_t c = 0; c + 1 < 5; ++c) {
    for (std::size_t i = cuts[c]; i < cuts[c + 1]; ++i) chunked[i] = rhs[i];
    chol.forward_solve_range(std::span<double>(chunked), cuts[c], cuts[c + 1]);
  }
  EXPECT_EQ(chunked, full);
}

TEST(DenseCholesky, PrefixSolvesMatchLeadingSubsystemFactorization) {
  // Cholesky commutes with leading principal submatrices, so prefix forward
  // + backward substitution on the FULL factor must equal a from-scratch
  // factorization of the truncated matrix.
  Rng rng(24);
  const std::size_t n = 48;
  const Matrix a = random_spd(n, rng);
  const DenseCholesky chol(a);
  const auto rhs = rng.normal_vector(n);
  for (const std::size_t p : {std::size_t{1}, std::size_t{17}, n}) {
    Matrix ap(p, p);
    for (std::size_t i = 0; i < p; ++i)
      for (std::size_t j = 0; j < p; ++j) ap(i, j) = a(i, j);
    std::vector<double> x_ref(rhs.begin(),
                              rhs.begin() + static_cast<std::ptrdiff_t>(p));
    DenseCholesky(ap).solve_in_place(std::span<double>(x_ref));

    std::vector<double> x(rhs.begin(), rhs.begin() + static_cast<std::ptrdiff_t>(p));
    chol.forward_solve_range(std::span<double>(x), 0, p);
    chol.backward_solve_prefix(std::span<double>(x), p);
    for (std::size_t i = 0; i < p; ++i)
      EXPECT_NEAR(x[i], x_ref[i], 1e-10 * (std::abs(x_ref[i]) + 1.0))
          << "prefix " << p;
  }
}

TEST(DenseCholesky, ForwardBackwardComposeToFullSolve) {
  Rng rng(25);
  const std::size_t n = 33;
  const Matrix a = random_spd(n, rng);
  const DenseCholesky chol(a);
  const auto rhs = rng.normal_vector(n);
  std::vector<double> x1(rhs), x2(rhs);
  chol.solve_in_place(std::span<double>(x1));
  chol.forward_solve_in_place(std::span<double>(x2));
  chol.backward_solve_in_place(std::span<double>(x2));
  EXPECT_EQ(x1, x2);
}

TEST(DenseCholesky, MultiRhsForwardSolveMatchesColumnwise) {
  Rng rng(26);
  const std::size_t n = 30, k = 5;
  const Matrix a = random_spd(n, rng);
  const DenseCholesky chol(a);
  Matrix b(n, k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j) b(i, j) = rng.normal();
  Matrix fwd(b);
  chol.forward_solve_in_place(fwd);
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<double> col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = b(i, j);
    chol.forward_solve_in_place(std::span<double>(col));
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(fwd(i, j), col[i]);
  }
}

TEST(DenseCholesky, PrefixRangeValidation) {
  Rng rng(27);
  const Matrix a = random_spd(8, rng);
  const DenseCholesky chol(a);
  std::vector<double> b(8, 1.0);
  EXPECT_THROW(chol.forward_solve_range(std::span<double>(b), 5, 3),
               std::invalid_argument);
  EXPECT_THROW(chol.forward_solve_range(std::span<double>(b), 0, 9),
               std::invalid_argument);
  EXPECT_THROW(chol.backward_solve_prefix(std::span<double>(b), 9),
               std::invalid_argument);
  std::vector<double> short_b(4, 1.0);
  EXPECT_THROW(chol.forward_solve_range(std::span<double>(short_b), 0, 8),
               std::invalid_argument);
}

TEST(DenseCholesky, LogDetMatchesKnownMatrix) {
  // diag(2, 3, 4): log det = log 24.
  Matrix a(3, 3);
  a(0, 0) = 2;
  a(1, 1) = 3;
  a(2, 2) = 4;
  const DenseCholesky chol(a);
  EXPECT_NEAR(chol.log_det(), std::log(24.0), 1e-12);
}

TEST(DenseCholesky, RejectsIndefiniteMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_THROW(DenseCholesky{a}, std::runtime_error);
}

// ---------------------------------------------------------------------------
// Rank-r factor updates (the degraded-mode primitives): update/downdate and
// append_row must match a from-scratch factorization of the modified matrix
// to near machine precision — they are exact algebra, not approximations.
// ---------------------------------------------------------------------------

TEST(DenseCholesky, RankUpdateMatchesRefactorization) {
  Rng rng(31);
  const std::size_t n = 24;
  const Matrix a = random_spd(n, rng);
  const auto u = rng.normal_vector(n);

  Matrix a_up = a;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a_up(i, j) += u[i] * u[j];

  DenseCholesky chol(a);
  std::vector<double> u_work = u;  // rank_update is destructive on u
  chol.rank_update(std::span<double>(u_work));
  const DenseCholesky ref(a_up);
  EXPECT_LT(chol.factor().max_abs_diff(ref.factor()), 1e-10);
}

TEST(DenseCholesky, RankDowndateMatchesRefactorization) {
  Rng rng(32);
  const std::size_t n = 24;
  const Matrix base = random_spd(n, rng);
  const auto u = rng.normal_vector(n);
  // a = base + u u^T, so downdating u from chol(a) must recover chol(base).
  Matrix a = base;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) += u[i] * u[j];

  DenseCholesky chol(a);
  std::vector<double> u_work = u;
  chol.rank_downdate(std::span<double>(u_work));
  const DenseCholesky ref(base);
  EXPECT_LT(chol.factor().max_abs_diff(ref.factor()), 1e-10);
}

// r = n - 1: the heaviest legal rank for one factor — a full sweep of
// updates then the matching downdates must return to the original factor.
TEST(DenseCholesky, RankManyRoundTripAtRankNMinusOne) {
  Rng rng(33);
  const std::size_t n = 16, r = n - 1;
  const Matrix a = random_spd(n, rng, 10.0);
  Matrix u_cols(n, r);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < r; ++j) u_cols(i, j) = 0.3 * rng.normal();

  // Reference: refactorize a + U U^T.
  Matrix a_up = a;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < r; ++k)
        a_up(i, j) += u_cols(i, k) * u_cols(j, k);

  DenseCholesky chol(a);
  chol.rank_update_many(u_cols);
  const DenseCholesky ref(a_up);
  EXPECT_LT(chol.factor().max_abs_diff(ref.factor()), 1e-10);

  chol.rank_downdate_many(u_cols);
  const DenseCholesky orig(a);
  EXPECT_LT(chol.factor().max_abs_diff(orig.factor()), 1e-9);
}

TEST(DenseCholesky, DowndateToIndefiniteThrows) {
  Rng rng(34);
  const std::size_t n = 8;
  const Matrix a = random_spd(n, rng);
  DenseCholesky chol(a);
  // u far larger than any eigenvalue of a: a - u u^T is indefinite.
  std::vector<double> u(n, 100.0 * std::sqrt(a(0, 0) + static_cast<double>(n)));
  EXPECT_THROW(chol.rank_downdate(std::span<double>(u)), std::runtime_error);
}

TEST(DenseCholesky, RankUpdateZeroVectorIsExactNoop) {
  Rng rng(35);
  const Matrix a = random_spd(12, rng);
  DenseCholesky chol(a);
  const Matrix before = chol.factor();
  std::vector<double> zero(12, 0.0);
  chol.rank_update(std::span<double>(zero));
  EXPECT_EQ(chol.factor().max_abs_diff(before), 0.0);  // bitwise no-op
  chol.rank_downdate(std::span<double>(zero));
  EXPECT_EQ(chol.factor().max_abs_diff(before), 0.0);
}

TEST(DenseCholesky, AppendRowMatchesRefactorization) {
  Rng rng(36);
  const std::size_t n = 20;
  const Matrix full = random_spd(n + 1, rng);
  Matrix leading(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) leading(i, j) = full(i, j);

  DenseCholesky chol(leading);
  std::vector<double> a_col(n + 1);
  for (std::size_t i = 0; i < n; ++i) a_col[i] = full(n, i);
  a_col[n] = full(n, n);
  chol.append_row(a_col);

  const DenseCholesky ref(full);
  EXPECT_EQ(chol.dim(), n + 1);
  EXPECT_LT(chol.factor().max_abs_diff(ref.factor()), 1e-10);
}

TEST(DenseCholesky, AppendRowRejectsNonSpdExtension) {
  Rng rng(37);
  const std::size_t n = 6;
  const Matrix a = random_spd(n, rng);
  DenseCholesky chol(a);
  std::vector<double> a_col(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) a_col[i] = 50.0 * (a(0, 0) + 1.0);
  a_col[n] = 1e-9;  // tiny diagonal under a huge coupled row: not SPD
  EXPECT_THROW(chol.append_row(a_col), std::runtime_error);
}

TEST(BandedMatrix, MultiplyMatchesDense) {
  Rng rng(31);
  const std::size_t n = 30, bw = 4;
  BandedMatrix b(n, bw);
  Matrix dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 10.0 + rng.uniform());
    dense(i, i) = b.band(i, 0);
    for (std::size_t d = 1; d <= std::min(bw, i); ++d) {
      const double v = rng.normal() * 0.3;
      b.add(i, i - d, v);
      dense(i, i - d) += v;
      dense(i - d, i) += v;
    }
  }
  const auto x = rng.normal_vector(n);
  std::vector<double> y1(n), y2(n);
  b.multiply(x, std::span<double>(y1));
  gemv(dense, x, std::span<double>(y2));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(BandedCholesky, SolveMatchesDenseCholesky) {
  Rng rng(32);
  const std::size_t n = 50, bw = 6;
  BandedMatrix b(n, bw);
  Matrix dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 20.0);
    dense(i, i) += 20.0;
    for (std::size_t d = 1; d <= std::min(bw, i); ++d) {
      const double v = rng.normal();
      b.add(i, i - d, v);
      dense(i, i - d) += v;
      dense(i - d, i) += v;
    }
  }
  const auto rhs = rng.normal_vector(n);
  std::vector<double> x1(rhs), x2(rhs);
  BandedCholesky bchol(b);
  bchol.solve_in_place(std::span<double>(x1));
  DenseCholesky dchol(dense);
  dchol.solve_in_place(std::span<double>(x2));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
}

TEST(BandedCholesky, ForwardBackwardComposeToFullSolve) {
  Rng rng(33);
  const std::size_t n = 25, bw = 3;
  BandedMatrix b(n, bw);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 8.0);
    if (i >= 1) b.add(i, i - 1, -1.0);
    if (i >= bw) b.add(i, i - bw, 0.5);
  }
  BandedCholesky chol(b);
  const auto rhs = rng.normal_vector(n);
  std::vector<double> x1(rhs), x2(rhs);
  chol.solve_in_place(std::span<double>(x1));
  chol.forward_solve_in_place(std::span<double>(x2));
  chol.backward_solve_in_place(std::span<double>(x2));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-12);
}

TEST(ConjugateGradient, SolvesSpdSystem) {
  Rng rng(41);
  const std::size_t n = 60;
  const Matrix a = random_spd(n, rng);
  const auto x_true = rng.normal_vector(n);
  std::vector<double> b(n);
  gemv(a, x_true, std::span<double>(b));
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    gemv(a, in, out);
  };
  std::vector<double> x(n, 0.0);
  CgOptions opts;
  opts.max_iterations = 500;
  opts.relative_tolerance = 1e-12;
  const auto res = conjugate_gradient(op, b, std::span<double>(x), opts);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST(ConjugateGradient, ConvergesInExactArithmeticBound) {
  // CG on an n-dimensional SPD system converges in <= n iterations.
  Rng rng(42);
  const std::size_t n = 20;
  const Matrix a = random_spd(n, rng);
  std::vector<double> b = rng.normal_vector(n), x(n, 0.0);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    gemv(a, in, out);
  };
  const auto res = conjugate_gradient(op, b, std::span<double>(x),
                                      {.max_iterations = n + 5,
                                       .relative_tolerance = 1e-10});
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, n + 1);
}

TEST(PreconditionedCg, ExactPreconditionerConvergesInOneIteration) {
  Rng rng(43);
  const std::size_t n = 30;
  const Matrix a = random_spd(n, rng);
  const DenseCholesky chol(a);
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    gemv(a, in, out);
  };
  const LinearOp pre = [&](std::span<const double> in, std::span<double> out) {
    std::copy(in.begin(), in.end(), out.begin());
    chol.solve_in_place(out);
  };
  std::vector<double> b = rng.normal_vector(n), x(n, 0.0);
  const auto res = preconditioned_conjugate_gradient(
      op, pre, b, std::span<double>(x),
      {.max_iterations = 10, .relative_tolerance = 1e-10});
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 2u);
}

TEST(ConjugateGradient, CountsOperatorApplications) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 3.0;
  const LinearOp op = [&](std::span<const double> in, std::span<double> out) {
    gemv(a, in, out);
  };
  std::vector<double> b{1.0, 1.0}, x(2, 0.0);
  const auto res = conjugate_gradient(op, b, std::span<double>(x));
  EXPECT_EQ(res.operator_applications, res.iterations + 1);
}

TEST(SymmetricEigenvalues, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const auto eigs = symmetric_eigenvalues(a);
  ASSERT_EQ(eigs.size(), 3u);
  EXPECT_NEAR(eigs[0], 3.0, 1e-12);
  EXPECT_NEAR(eigs[1], 2.0, 1e-12);
  EXPECT_NEAR(eigs[2], 1.0, 1e-12);
}

TEST(SymmetricEigenvalues, Known2x2) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  const auto eigs = symmetric_eigenvalues(a);
  EXPECT_NEAR(eigs[0], 3.0, 1e-12);
  EXPECT_NEAR(eigs[1], 1.0, 1e-12);
}

TEST(SymmetricEigenvalues, TraceAndDetInvariants) {
  Rng rng(51);
  const std::size_t n = 12;
  const Matrix a = random_spd(n, rng);
  const auto eigs = symmetric_eigenvalues(a);
  double trace = 0.0, eig_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += a(i, i);
  for (double e : eigs) eig_sum += e;
  EXPECT_NEAR(trace, eig_sum, 1e-8 * std::abs(trace));
  // log det via Cholesky must match sum of log eigenvalues.
  const DenseCholesky chol(a);
  double log_eigs = 0.0;
  for (double e : eigs) log_eigs += std::log(e);
  EXPECT_NEAR(chol.log_det(), log_eigs, 1e-8 * std::abs(log_eigs));
}

TEST(Lanczos, RecoversTopEigenvaluesOfDiagonalOperator) {
  const std::size_t n = 200;
  const LinearOp op = [n](std::span<const double> in, std::span<double> out) {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = static_cast<double>(i + 1) * in[i];
  };
  const auto eigs = lanczos_eigenvalues(op, n, 5);
  ASSERT_GE(eigs.size(), 3u);
  EXPECT_NEAR(eigs[0], 200.0, 0.5);
  EXPECT_NEAR(eigs[1], 199.0, 1.0);
}

TEST(RandomizedEig, RecoversLowRankSpectrumAccurately) {
  // A rank-5 PSD operator: randomized eig with k=5 nails the spectrum and
  // leaves a tiny residual — the regime where low-rank SoA methods shine.
  const std::size_t n = 120, r = 5;
  Rng rng(61);
  Matrix u(n, r);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < r; ++j) u(i, j) = rng.normal();
  const std::vector<double> lambda{50.0, 20.0, 8.0, 3.0, 1.0};
  const LinearOp op = [&](std::span<const double> x, std::span<double> y) {
    std::vector<double> proj(r);
    gemv_t(u, x, std::span<double>(proj));
    for (std::size_t j = 0; j < r; ++j) proj[j] *= lambda[j];
    gemv(u, proj, y);
  };
  // Spectrum of U diag(lambda) U^T: compare against the dense computation.
  Matrix dense(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> e(n, 0.0), col(n);
    e[j] = 1.0;
    op(e, std::span<double>(col));
    for (std::size_t i = 0; i < n; ++i) dense(i, j) = col[i];
  }
  const auto exact = symmetric_eigenvalues(dense);
  const auto approx = randomized_eigenvalues(op, n, r);
  ASSERT_EQ(approx.eigenvalues.size(), r);
  for (std::size_t j = 0; j < r; ++j)
    EXPECT_NEAR(approx.eigenvalues[j], exact[j],
                1e-6 * exact.front());
  EXPECT_LT(approx.residual_fraction, 1e-8);
}

TEST(RandomizedEig, FlatSpectrumLeavesLargeResidual) {
  // An identity-like operator has NO low-rank structure: truncating at
  // k << n must leave an O(1) residual — the paper's SecIV failure mode of
  // low-rank methods for the tsunami p2o Hessian.
  const std::size_t n = 150;
  const LinearOp op = [n](std::span<const double> x, std::span<double> y) {
    for (std::size_t i = 0; i < n; ++i)
      y[i] = (1.0 + 0.001 * static_cast<double>(i)) * x[i];
  };
  const auto approx = randomized_eigenvalues(op, n, 10);
  EXPECT_GT(approx.residual_fraction, 0.5);
}

TEST(RandomizedEig, HandlesFullDimensionRequest) {
  const std::size_t n = 12;
  Rng rng(62);
  const Matrix a = random_spd(n, rng);
  const LinearOp op = [&](std::span<const double> x, std::span<double> y) {
    gemv(a, x, y);
  };
  const auto exact = symmetric_eigenvalues(a);
  const auto approx = randomized_eigenvalues(op, n, n);
  ASSERT_EQ(approx.eigenvalues.size(), n);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_NEAR(approx.eigenvalues[j], exact[j], 1e-8 * exact.front());
}

TEST(EffectiveRank, CountsAboveThreshold) {
  const std::vector<double> eigs{10.0, 5.0, 1.0, 0.01, 0.001};
  EXPECT_EQ(effective_rank(eigs, 0.05), 3u);
  EXPECT_EQ(effective_rank(eigs, 1e-5), 5u);
  EXPECT_EQ(effective_rank({}, 0.1), 0u);
}

}  // namespace
}  // namespace tsunami
