// Tests for the streaming assimilation engine: exact streaming/batch
// equivalence at the final tick, exact truncated-posterior semantics
// mid-stream (against explicit prefix solves), the monotone credible-interval
// schedule, both MAP paths (incremental vs on-demand snapshot), replay
// determinism, and input validation.

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <thread>

#include "core/digital_twin.hpp"

namespace tsunami {
namespace {

/// One tiny twin + event + offline phases + streaming engine, shared by the
/// whole suite (the offline build dominates test wall time).
class StreamingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    twin_ = new DigitalTwin(TwinConfig::tiny());
    RuptureConfig rc;
    Asperity a;
    a.x0 = 0.3 * twin_->mesh().length_x();
    a.y0 = 0.5 * twin_->mesh().length_y();
    a.rx = 16e3;
    a.ry = 24e3;
    a.peak_uplift = 2.0;
    rc.asperities.push_back(a);
    rc.hypocenter_x = a.x0;
    rc.hypocenter_y = a.y0;
    Rng rng(5);
    event_ = new SyntheticEvent(
        twin_->synthesize(RuptureScenario(rc), rng));
    twin_->run_offline(event_->noise);
    engine_ = new StreamingEngine(twin_->make_streaming({.track_map = true}));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete event_;
    delete twin_;
    engine_ = nullptr;
    event_ = nullptr;
    twin_ = nullptr;
  }

  /// Observation block of one tick.
  static std::span<const double> block(std::size_t tick) {
    return std::span<const double>(event_->d_obs)
        .subspan(tick * engine_->block_size(), engine_->block_size());
  }

  /// Stream the first `ticks` intervals into a fresh assimilator.
  static StreamingAssimilator stream(std::size_t ticks) {
    StreamingAssimilator assim = engine_->start();
    for (std::size_t t = 0; t < ticks; ++t) assim.push(t, block(t));
    return assim;
  }

  static DigitalTwin* twin_;
  static SyntheticEvent* event_;
  static StreamingEngine* engine_;
};

DigitalTwin* StreamingTest::twin_ = nullptr;
SyntheticEvent* StreamingTest::event_ = nullptr;
StreamingEngine* StreamingTest::engine_ = nullptr;

TEST_F(StreamingTest, EngineDimensionsMatchTwin) {
  EXPECT_EQ(engine_->data_dim(), twin_->data_dim());
  EXPECT_EQ(engine_->parameter_dim(), twin_->parameter_dim());
  EXPECT_EQ(engine_->num_ticks(), twin_->time_grid().num_intervals);
  EXPECT_EQ(engine_->block_size() * engine_->num_ticks(), engine_->data_dim());
  EXPECT_TRUE(engine_->tracks_map());
  EXPECT_GT(engine_->precompute_seconds(), 0.0);
}

// The ISSUE acceptance criterion: after the final tick the streaming state
// must match the batch solve on the full data vector to <= 1e-12 relative
// error — the streaming path is exact algebra, not an approximation.
TEST_F(StreamingTest, FinalTickMatchesBatchInfer) {
  const StreamingAssimilator assim = stream(engine_->num_ticks());
  ASSERT_TRUE(assim.complete());
  const InversionResult batch = twin_->infer(event_->d_obs);

  EXPECT_LE(DigitalTwin::relative_error(assim.map_estimate(), batch.m_map),
            1e-12);
  const Forecast fc = assim.forecast();
  EXPECT_LE(DigitalTwin::relative_error(fc.mean, batch.forecast.mean), 1e-12);
  EXPECT_LE(DigitalTwin::relative_error(fc.stddev, batch.forecast.stddev),
            1e-12);
  EXPECT_LE(DigitalTwin::relative_error(fc.lower95, batch.forecast.lower95),
            1e-12);
}

// Mid-stream the assimilator must hold the *exact* truncated posterior:
// the solution of the leading (t Nd) subsystem of K, lifted through the
// prefix of G*. Verified against explicit prefix solves on the same factor.
TEST_F(StreamingTest, MidStreamMatchesTruncatedPosterior) {
  const DenseCholesky& chol = twin_->hessian().cholesky();
  const std::size_t nd = engine_->block_size();
  for (const std::size_t ticks :
       {std::size_t{1}, engine_->num_ticks() / 2, engine_->num_ticks() - 1}) {
    const StreamingAssimilator assim = stream(ticks);
    const std::size_t p = ticks * nd;

    // u = K_p^{-1} d_p via prefix forward + backward substitution.
    std::vector<double> u(event_->d_obs.begin(),
                          event_->d_obs.begin() +
                              static_cast<std::ptrdiff_t>(p));
    chol.forward_solve_range(u, 0, p);
    chol.backward_solve_prefix(u, p);

    // m(t) = Gamma_prior F_p^T u.
    std::vector<double> m_ref(twin_->parameter_dim());
    twin_->posterior().apply_gstar_prefix(u, ticks,
                                          std::span<double>(m_ref));
    EXPECT_LE(DigitalTwin::relative_error(assim.map_estimate(), m_ref), 1e-11)
        << "ticks = " << ticks;

    // q(t) = V_p^T u = Fq Gamma_prior F_p^T u = Fq m(t): push the reference
    // MAP through the goal operator.
    std::vector<double> q_ref(engine_->qoi_dim());
    twin_->predictor().apply_fq_mean(m_ref, std::span<double>(q_ref));
    EXPECT_LE(DigitalTwin::relative_error(assim.qoi_mean(), q_ref), 1e-11)
        << "ticks = " << ticks;
  }
}

// More data can only tighten the posterior: the precomputed stddev schedule
// must decrease entrywise from the prior width down to the batch width.
TEST_F(StreamingTest, StddevScheduleShrinksMonotonically) {
  const auto prior_sd = engine_->stddev_after(0);
  for (double s : prior_sd) EXPECT_GT(s, 0.0);
  for (std::size_t t = 1; t <= engine_->num_ticks(); ++t) {
    const auto prev = engine_->stddev_after(t - 1);
    const auto cur = engine_->stddev_after(t);
    for (std::size_t i = 0; i < cur.size(); ++i)
      EXPECT_LE(cur[i], prev[i] + 1e-14) << "tick " << t << " entry " << i;
  }
  // Final row = the batch posterior stddev.
  const auto final_sd = engine_->stddev_after(engine_->num_ticks());
  const auto& batch_sd = twin_->predictor().predict(event_->d_obs).stddev;
  for (std::size_t i = 0; i < batch_sd.size(); ++i)
    EXPECT_NEAR(final_sd[i], batch_sd[i], 1e-12 * (batch_sd[i] + 1.0));
}

// The rolling forecast's band must come from the schedule row of the
// current tick, so intervals tighten with every push.
TEST_F(StreamingTest, ForecastBandsTightenAsDataArrives) {
  StreamingAssimilator assim = engine_->start();
  double prev_width = 0.0;
  for (double s : assim.forecast().stddev) prev_width += s;
  for (std::size_t t = 0; t < engine_->num_ticks(); ++t) {
    assim.push(t, block(t));
    const Forecast fc = assim.forecast();
    double width = 0.0;
    for (double s : fc.stddev) width += s;
    EXPECT_LE(width, prev_width + 1e-14) << "tick " << t;
    prev_width = width;
    for (std::size_t i = 0; i < fc.mean.size(); ++i) {
      EXPECT_NEAR(fc.upper95[i] - fc.mean[i], 1.96 * fc.stddev[i], 1e-12);
      EXPECT_NEAR(fc.mean[i] - fc.lower95[i], 1.96 * fc.stddev[i], 1e-12);
    }
  }
}

// Both MAP paths — the incremental slab accumulation and the on-demand
// prefix backward-substitution snapshot — must agree mid-stream.
TEST_F(StreamingTest, MapSnapshotMatchesIncrementalEstimate) {
  for (const std::size_t ticks :
       {std::size_t{0}, std::size_t{1}, engine_->num_ticks() / 2,
        engine_->num_ticks()}) {
    const StreamingAssimilator assim = stream(ticks);
    const auto snapshot = assim.map_snapshot();
    ASSERT_EQ(snapshot.size(), assim.map_estimate().size());
    if (ticks == 0) {
      for (double v : snapshot) EXPECT_EQ(v, 0.0);
      continue;
    }
    EXPECT_LE(DigitalTwin::relative_error(snapshot, assim.map_estimate()),
              1e-11)
        << "ticks = " << ticks;
  }
}

TEST_F(StreamingTest, NonTrackingEngineStillServesSnapshots) {
  const StreamingEngine lean = twin_->make_streaming({.track_map = false});
  StreamingAssimilator assim = lean.start();
  for (std::size_t t = 0; t < lean.num_ticks(); ++t) assim.push(t, block(t));
  EXPECT_THROW((void)assim.map_estimate(), std::logic_error);
  const InversionResult batch = twin_->infer(event_->d_obs);
  EXPECT_LE(DigitalTwin::relative_error(assim.map_snapshot(), batch.m_map),
            1e-11);
  // The forecast path does not depend on MAP tracking.
  EXPECT_LE(DigitalTwin::relative_error(assim.forecast().mean,
                                        batch.forecast.mean),
            1e-12);
}

// forecast_into is the allocation-free publish path of the warning service:
// it must reproduce forecast() exactly, including when one Forecast object
// is recycled across ticks (stale buffers fully overwritten).
TEST_F(StreamingTest, ForecastIntoMatchesForecastAcrossTicks) {
  StreamingAssimilator assim = engine_->start();
  Forecast recycled;
  for (std::size_t t = 0; t < engine_->num_ticks(); ++t) {
    assim.push(t, block(t));
    assim.forecast_into(recycled);
    const Forecast fresh = assim.forecast();
    EXPECT_EQ(recycled.num_gauges, fresh.num_gauges);
    EXPECT_EQ(recycled.num_times, fresh.num_times);
    EXPECT_EQ(recycled.mean, fresh.mean);
    EXPECT_EQ(recycled.stddev, fresh.stddev);
    EXPECT_EQ(recycled.lower95, fresh.lower95);
    EXPECT_EQ(recycled.upper95, fresh.upper95);
  }
}

// Concurrent per-event workspaces over one shared engine (the TSan CI
// preset exercises this): N threads each stream their own assimilator —
// whose map_snapshot scratch and Posterior workspace are per-instance —
// and every result must be bit-identical to the serial replay.
TEST_F(StreamingTest, ConcurrentAssimilatorsWithOwnWorkspacesAreExact) {
  const std::size_t ticks = engine_->num_ticks();
  StreamingAssimilator serial = engine_->start();
  for (std::size_t t = 0; t < ticks; ++t) serial.push(t, block(t));
  const std::vector<double> q_serial = serial.qoi_mean();
  const std::vector<double> m_serial = serial.map_snapshot();

  constexpr std::size_t kThreads = 4;
  std::vector<std::vector<double>> q(kThreads), m(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (std::size_t ti = 0; ti < kThreads; ++ti) {
    pool.emplace_back([&, ti] {
      StreamingAssimilator assim = engine_->start();
      for (std::size_t t = 0; t < ticks; ++t) assim.push(t, block(t));
      q[ti] = assim.qoi_mean();
      m[ti] = assim.map_snapshot();
    });
  }
  for (auto& th : pool) th.join();
  for (std::size_t ti = 0; ti < kThreads; ++ti) {
    EXPECT_EQ(q[ti], q_serial) << "thread " << ti;
    EXPECT_EQ(m[ti], m_serial) << "thread " << ti;
  }
}

TEST_F(StreamingTest, ResetReplayIsBitIdentical) {
  StreamingAssimilator assim = engine_->start();
  for (std::size_t t = 0; t < engine_->num_ticks(); ++t) assim.push(t, block(t));
  const std::vector<double> q_first = assim.qoi_mean();
  const std::vector<double> m_first = assim.map_estimate();

  assim.reset();
  EXPECT_EQ(assim.ticks_received(), 0u);
  for (std::size_t t = 0; t < engine_->num_ticks(); ++t) assim.push(t, block(t));
  // Identical inputs through identical fixed-order accumulations: bitwise
  // equal, not merely close.
  EXPECT_EQ(assim.qoi_mean(), q_first);
  EXPECT_EQ(assim.map_estimate(), m_first);
}

TEST_F(StreamingTest, PushValidation) {
  StreamingAssimilator assim = engine_->start();
  std::vector<double> b(engine_->block_size(), 0.0);
  EXPECT_THROW(assim.push(1, b), std::invalid_argument);  // out of order
  EXPECT_THROW(
      assim.push(0, std::span<const double>(b).first(b.size() - 1)),
      std::invalid_argument);  // wrong block size
  assim.push(0, b);
  EXPECT_THROW(assim.push(0, b), std::invalid_argument);  // replayed tick
  for (std::size_t t = 1; t < engine_->num_ticks(); ++t) assim.push(t, b);
  EXPECT_TRUE(assim.complete());
  EXPECT_THROW(assim.push(engine_->num_ticks(), b), std::logic_error);
}

TEST_F(StreamingTest, EngineRequiresOfflinePhases) {
  const DigitalTwin cold(TwinConfig::tiny());
  EXPECT_THROW((void)cold.make_streaming(), std::logic_error);
}

TEST_F(StreamingTest, PredictPrefixIsTheNaiveZeroPaddedBaseline) {
  const std::size_t nd = engine_->block_size();
  const std::size_t half = engine_->num_ticks() / 2;
  const Forecast naive = twin_->predictor().predict_prefix(
      std::span<const double>(event_->d_obs).first(half * nd), half);
  // Same operator as zero-padding by hand...
  std::vector<double> padded(event_->d_obs.size(), 0.0);
  std::copy(event_->d_obs.begin(),
            event_->d_obs.begin() + static_cast<std::ptrdiff_t>(half * nd),
            padded.begin());
  const Forecast manual = twin_->predictor().predict(padded);
  EXPECT_EQ(naive.mean, manual.mean);
  // ...and with the full prefix it reduces to the batch predict.
  const Forecast full = twin_->predictor().predict_prefix(
      event_->d_obs, engine_->num_ticks());
  EXPECT_EQ(full.mean, twin_->predictor().predict(event_->d_obs).mean);
  // Its intervals do NOT tighten mid-event — the streaming posterior's do.
  EXPECT_EQ(naive.stddev, full.stddev);
  const auto streaming_sd = engine_->stddev_after(half);
  double naive_w = 0.0, stream_w = 0.0;
  for (double s : naive.stddev) naive_w += s;
  for (double s : streaming_sd) stream_w += s;
  EXPECT_LT(naive_w, stream_w);  // zero-padded width claims full-data info
}

}  // namespace
}  // namespace tsunami
