// End-to-end tests of the DigitalTwin orchestration: offline phases, data
// synthesis, online inference, and inversion quality on a synthetic event.

#include <gtest/gtest.h>

#include <cmath>

#include "core/digital_twin.hpp"
#include "linalg/blas.hpp"

namespace tsunami {
namespace {

/// Shared fixture: one tiny twin with all phases run (expensive; reused).
class TwinTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    twin_ = new DigitalTwin(TwinConfig::tiny());
    RuptureConfig rc;
    Asperity a;
    a.x0 = 20e3;
    a.y0 = 40e3;
    a.rx = 14e3;
    a.ry = 20e3;
    a.peak_uplift = 1.5;
    rc.asperities.push_back(a);
    rc.hypocenter_x = 20e3;
    rc.hypocenter_y = 40e3;
    rc.rupture_speed = 2500.0;
    rc.rise_time = 12.0;
    scenario_ = new RuptureScenario(rc);
    Rng rng(2025);
    event_ = new SyntheticEvent(twin_->synthesize(*scenario_, rng));
    twin_->run_offline(event_->noise);
  }
  static void TearDownTestSuite() {
    delete event_;
    delete scenario_;
    delete twin_;
    event_ = nullptr;
    scenario_ = nullptr;
    twin_ = nullptr;
  }

  static DigitalTwin* twin_;
  static RuptureScenario* scenario_;
  static SyntheticEvent* event_;
};

DigitalTwin* TwinTest::twin_ = nullptr;
RuptureScenario* TwinTest::scenario_ = nullptr;
SyntheticEvent* TwinTest::event_ = nullptr;

TEST_F(TwinTest, ConfigProducesConsistentDimensions) {
  const auto& cfg = twin_->config();
  EXPECT_EQ(twin_->sensors().num_outputs(), cfg.num_sensors);
  EXPECT_EQ(twin_->gauges().num_outputs(), cfg.num_gauges);
  EXPECT_EQ(twin_->data_dim(), cfg.num_sensors * cfg.num_intervals);
  EXPECT_EQ(twin_->p2o().nt, cfg.num_intervals);
  EXPECT_EQ(twin_->parameter_dim(),
            twin_->model().source_map().parameter_dim() * cfg.num_intervals);
}

TEST_F(TwinTest, TimeGridRespectsCfl) {
  const auto& grid = twin_->time_grid();
  EXPECT_LE(grid.dt, twin_->model().cfl_timestep(twin_->config().cfl) + 1e-12);
  EXPECT_NEAR(grid.interval(), twin_->config().observation_dt, 1e-12);
}

TEST_F(TwinTest, SyntheticEventHasSignalAndNoise) {
  EXPECT_GT(amax(event_->d_true), 0.0);
  EXPECT_GT(amax(event_->q_true), 0.0);
  EXPECT_GT(event_->noise.sigma, 0.0);
  // Noise level ~1% of peak signal.
  EXPECT_NEAR(event_->noise.sigma, 0.01 * amax(event_->d_true),
              1e-12 * amax(event_->d_true));
  // d_obs differs from d_true but not wildly.
  double max_dev = 0.0;
  for (std::size_t i = 0; i < event_->d_true.size(); ++i)
    max_dev = std::max(max_dev,
                       std::abs(event_->d_obs[i] - event_->d_true[i]));
  EXPECT_GT(max_dev, 0.0);
  EXPECT_LT(max_dev, 6.0 * event_->noise.sigma);
}

TEST_F(TwinTest, OnlineInferenceIsFastAndFinite) {
  const auto result = twin_->infer(event_->d_obs);
  EXPECT_EQ(result.m_map.size(), twin_->parameter_dim());
  for (double v : result.m_map) EXPECT_TRUE(std::isfinite(v));
  // "Real time": even this unoptimized CPU path must be far under a second
  // at the tiny scale; the paper's Phase 4 target is 0.2 s at full scale.
  EXPECT_LT(result.infer_seconds, 1.0);
  EXPECT_LT(result.predict_seconds, 0.1);
}

TEST_F(TwinTest, InferredDisplacementCorrelatesWithTruth) {
  const auto result = twin_->infer(event_->d_obs);
  const auto b_true = twin_->displacement_field(event_->m_true);
  const auto b_map = twin_->displacement_field(result.m_map);
  ASSERT_EQ(b_true.size(), b_map.size());
  // Normalized correlation between inferred and true displacement.
  const double corr =
      dot(b_true, b_map) / (nrm2(b_true) * nrm2(b_map) + 1e-30);
  EXPECT_GT(corr, 0.5) << "inversion failed to recover the source pattern";
}

TEST_F(TwinTest, PredictedQoiTracksTrueQoi) {
  const auto result = twin_->infer(event_->d_obs);
  const auto& fc = result.forecast;
  ASSERT_EQ(fc.mean.size(), event_->q_true.size());
  // Correlation-based skill: at tiny scale the absolute wave heights at the
  // coast are small within the short window, so relative L2 error is an
  // unstable metric; the predicted series must still track the true one.
  const double corr = dot(fc.mean, event_->q_true) /
                      (nrm2(fc.mean) * nrm2(event_->q_true) + 1e-30);
  EXPECT_GT(corr, 0.4);
  // CI widths are finite and nonnegative.
  for (std::size_t i = 0; i < fc.stddev.size(); ++i) {
    EXPECT_GE(fc.stddev[i], 0.0);
    EXPECT_TRUE(std::isfinite(fc.stddev[i]));
  }
}

TEST_F(TwinTest, ForecastResidualConsistentWithCi) {
  // |q_true - q_map| should rarely exceed the 95% band by much; count gross
  // violations (allowing for model error at tiny scale).
  const auto result = twin_->infer(event_->d_obs);
  const auto& fc = result.forecast;
  int gross = 0, checked = 0;
  for (std::size_t i = 0; i < fc.mean.size(); ++i) {
    if (fc.stddev[i] < 1e-12) continue;
    ++checked;
    const double z = std::abs(event_->q_true[i] - fc.mean[i]) / fc.stddev[i];
    if (z > 6.0) ++gross;
  }
  ASSERT_GT(checked, 0);
  EXPECT_LT(static_cast<double>(gross) / checked, 0.35);
}

TEST_F(TwinTest, NoiselessDataGivesBetterRecovery) {
  const auto noisy = twin_->infer(event_->d_obs);
  const auto clean = twin_->infer(event_->d_true);
  const auto b_true = twin_->displacement_field(event_->m_true);
  const auto b_noisy = twin_->displacement_field(noisy.m_map);
  const auto b_clean = twin_->displacement_field(clean.m_map);
  const double err_noisy = DigitalTwin::relative_error(b_noisy, b_true);
  const double err_clean = DigitalTwin::relative_error(b_clean, b_true);
  EXPECT_LE(err_clean, err_noisy * 1.05);
}

TEST_F(TwinTest, DisplacementFieldIntegratesVelocity) {
  const std::size_t nm = twin_->model().source_map().parameter_dim();
  const std::size_t nt = twin_->time_grid().num_intervals;
  std::vector<double> m(nm * nt, 0.0);
  for (std::size_t t = 0; t < nt; ++t) m[t * nm + 3] = 1.0;  // 1 m/s at node 3
  const auto b = twin_->displacement_field(m);
  EXPECT_NEAR(b[3], twin_->time_grid().total_time(), 1e-9);
  EXPECT_DOUBLE_EQ(b[4], 0.0);
}

TEST_F(TwinTest, TimersRecordAllPhases) {
  const auto& t = twin_->timers();
  EXPECT_GT(t.total("phase1: form F"), 0.0);
  EXPECT_GT(t.total("phase1: form Fq"), 0.0);
  EXPECT_GT(t.total("phase2: form+factorize K"), 0.0);
  EXPECT_GT(t.total("phase3: QoI covariance + Q"), 0.0);
  EXPECT_GT(t.total("form K"), 0.0);
  EXPECT_GT(t.total("factorize K"), 0.0);
}

TEST(DigitalTwinErrors, InferBeforeOfflineThrows) {
  DigitalTwin twin(TwinConfig::tiny());
  std::vector<double> d(twin.data_dim(), 0.0);
  EXPECT_THROW((void)twin.infer(d), std::logic_error);
  EXPECT_THROW(twin.run_phase2(NoiseModel{1.0}), std::logic_error);
  EXPECT_THROW(twin.run_phase3(), std::logic_error);
}

TEST(DigitalTwinStatics, RelativeErrorBehaves) {
  const std::vector<double> a{1.0, 2.0}, b{1.0, 2.0}, c{2.0, 4.0};
  EXPECT_DOUBLE_EQ(DigitalTwin::relative_error(a, b), 0.0);
  EXPECT_NEAR(DigitalTwin::relative_error(c, a), 1.0, 1e-12);
  EXPECT_THROW((void)DigitalTwin::relative_error(a, std::vector<double>{1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsunami
