// Tests for the multi-event warning service (src/service/): engine-cache
// identity (one engine per fingerprint), bit-for-bit equivalence of a
// concurrent N-event replay against N independent single-threaded
// StreamingAssimilator replays, per-event reordering of out-of-order
// submits, submit validation (unknown/closed events, duplicates, bad
// blocks), backpressure, the debounced alert latch, and telemetry. This
// suite is the one the ThreadSanitizer CI job runs against the service's
// worker pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <thread>
#include <vector>

#include "service/engine_cache.hpp"
#include "service/warning_service.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

/// One tiny twin + offline phases, shared by the suite (the offline build
/// dominates wall time); the cache entry all sessions share.
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto twin = std::make_shared<DigitalTwin>(TwinConfig::tiny());
    RuptureConfig rc;
    Asperity a;
    a.x0 = 0.3 * twin->mesh().length_x();
    a.y0 = 0.5 * twin->mesh().length_y();
    a.rx = 16e3;
    a.ry = 24e3;
    a.peak_uplift = 2.0;
    rc.asperities.push_back(a);
    rc.hypocenter_x = a.x0;
    rc.hypocenter_y = a.y0;
    Rng rng(5);
    event_ = new SyntheticEvent(twin->synthesize(RuptureScenario(rc), rng));
    twin->run_offline(event_->noise);
    twin_ = new std::shared_ptr<const DigitalTwin>(std::move(twin));
    cache_ = new EngineCache({.track_map = true});
    cached_ = new std::shared_ptr<const CachedEngine>(cache_->adopt(*twin_));
  }
  static void TearDownTestSuite() {
    delete cached_;
    delete cache_;
    delete twin_;
    delete event_;
    cached_ = nullptr;
    cache_ = nullptr;
    twin_ = nullptr;
    event_ = nullptr;
  }

  /// Distinct synthetic event e: the shared noiseless data re-noised from a
  /// per-event stream (what a bank of concurrent real events looks like to
  /// the service — same network, different data).
  static std::vector<double> make_obs(unsigned e) {
    std::vector<double> d = event_->d_true;
    Rng rng(1000 + e);
    for (auto& v : d) v += event_->noise.sigma * rng.normal();
    return d;
  }

  /// Independent single-threaded reference replay over the same engine.
  static StreamingAssimilator replay(const std::vector<double>& d_obs) {
    const StreamingEngine& eng = (*cached_)->engine();
    StreamingAssimilator assim = eng.start();
    for (std::size_t t = 0; t < eng.num_ticks(); ++t)
      assim.push(t, std::span<const double>(d_obs).subspan(
                        t * eng.block_size(), eng.block_size()));
    return assim;
  }

  static std::size_t nt() { return (*cached_)->engine().num_ticks(); }
  static std::size_t nd() { return (*cached_)->engine().block_size(); }
  static std::span<const double> block(const std::vector<double>& d,
                                       std::size_t t) {
    return std::span<const double>(d).subspan(t * nd(), nd());
  }

  static SyntheticEvent* event_;
  static std::shared_ptr<const DigitalTwin>* twin_;
  static EngineCache* cache_;
  static std::shared_ptr<const CachedEngine>* cached_;
};

SyntheticEvent* ServiceTest::event_ = nullptr;
std::shared_ptr<const DigitalTwin>* ServiceTest::twin_ = nullptr;
EngineCache* ServiceTest::cache_ = nullptr;
std::shared_ptr<const CachedEngine>* ServiceTest::cached_ = nullptr;

TEST_F(ServiceTest, CacheReturnsSameEngineForSameFingerprint) {
  // Same twin adopted again -> the exact same CachedEngine instance.
  EXPECT_EQ(cache_->adopt(*twin_).get(), cached_->get());
  EXPECT_EQ(cache_->size(), 1u);

  // A bundle round-trip produces the same fingerprint, hence the same
  // instance — the second load() must not even rebuild the slabs.
  const std::string path = testing::TempDir() + "service_cache.bundle";
  (*twin_)->save_offline(path);
  const auto from_bundle = cache_->load(path);
  EXPECT_EQ(from_bundle.get(), cached_->get());
  EXPECT_EQ(cache_->load(path).get(), cached_->get());
  EXPECT_EQ(cache_->size(), 1u);

  const std::uint64_t fp = (*twin_)->config().fingerprint();
  EXPECT_EQ(cache_->find(fp).get(), cached_->get());
  EXPECT_EQ(cache_->find(fp ^ 1), nullptr);
  std::remove(path.c_str());
}

TEST_F(ServiceTest, CacheRejectsColdOrNullTwin) {
  EngineCache cache;
  EXPECT_THROW((void)cache.adopt(nullptr), std::invalid_argument);
  EXPECT_THROW(
      (void)cache.adopt(std::make_shared<const DigitalTwin>(TwinConfig::tiny())),
      std::logic_error);
}

// The ISSUE acceptance criterion: >= 64 concurrent events over a >= 4
// worker pool must produce forecasts (and MAP estimates) bit-identical to
// 64 independent single-threaded replays. Submission is interleaved
// round-robin across events from several producer threads to maximize
// queue churn.
TEST_F(ServiceTest, ConcurrentReplayOf64EventsIsBitIdentical) {
  constexpr unsigned kEvents = 64;
  constexpr std::size_t kProducers = 4;

  std::vector<std::vector<double>> obs;
  obs.reserve(kEvents);
  for (unsigned e = 0; e < kEvents; ++e) obs.push_back(make_obs(e));

  WarningService service({.num_workers = 4});
  std::vector<EventId> ids;
  ids.reserve(kEvents);
  for (unsigned e = 0; e < kEvents; ++e)
    ids.push_back(service.open_event(*cached_));

  // kProducers threads, each feeding its share of events tick-by-tick.
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t t = 0; t < nt(); ++t)
        for (unsigned e = static_cast<unsigned>(p); e < kEvents;
             e += kProducers)
          service.submit(ids[e], t, block(obs[e], t));
    });
  }
  for (auto& th : producers) th.join();
  service.drain();

  for (unsigned e = 0; e < kEvents; ++e) {
    const StreamingAssimilator ref = replay(obs[e]);
    const Forecast expect = ref.forecast();
    const EventSnapshot got = service.close_event(ids[e]);
    ASSERT_TRUE(got.complete) << "event " << e;
    EXPECT_EQ(got.ticks_assimilated, nt());
    // Bitwise, not approximate: same engine, same per-event push order.
    EXPECT_EQ(got.forecast.mean, expect.mean) << "event " << e;
    EXPECT_EQ(got.forecast.stddev, expect.stddev) << "event " << e;
    EXPECT_EQ(got.forecast.lower95, expect.lower95) << "event " << e;
    EXPECT_EQ(got.forecast.upper95, expect.upper95) << "event " << e;
  }
  EXPECT_EQ(service.events_in_flight(), 0u);
  EXPECT_EQ(service.telemetry().ticks_assimilated, kEvents * nt());
}

TEST_F(ServiceTest, OutOfOrderSubmitsAreReorderedWithinAnEvent) {
  const std::vector<double> d = make_obs(7);
  // A fixed adversarial permutation (seeded Fisher-Yates shuffle of the
  // whole window — arbitrary-distance reordering, not just adjacent swaps).
  std::vector<std::size_t> order(nt());
  std::iota(order.begin(), order.end(), 0u);
  Rng rng(42);
  for (std::size_t i = order.size(); i-- > 1;)
    std::swap(order[i],
              order[static_cast<std::size_t>(rng.uniform() * (i + 1)) % (i + 1)]);

  WarningService service({.num_workers = 4,
                          .max_pending_per_event = nt()});
  const EventId id = service.open_event(*cached_);
  for (const std::size_t t : order) service.submit(id, t, block(d, t));
  service.drain();

  const StreamingAssimilator ref = replay(d);
  const EventSnapshot got = service.close_event(id);
  EXPECT_TRUE(got.complete);
  EXPECT_EQ(got.forecast.mean, ref.forecast().mean);
  EXPECT_EQ(got.forecast.stddev, ref.forecast().stddev);
}

TEST_F(ServiceTest, SubmitValidation) {
  WarningService service({.num_workers = 4});
  const std::vector<double> d = make_obs(11);

  EXPECT_THROW(service.submit(999, 0, block(d, 0)), std::out_of_range);
  EXPECT_THROW((void)service.latest_forecast(999), std::out_of_range);
  EXPECT_THROW((void)service.close_event(999), std::out_of_range);

  const EventId id = service.open_event(*cached_);
  EXPECT_THROW(service.submit(id, nt(), block(d, 0)), std::invalid_argument);
  EXPECT_THROW(
      service.submit(id, 0, std::span<const double>(d).first(nd() - 1)),
      std::invalid_argument);
  service.submit(id, 3, block(d, 3));
  EXPECT_THROW(service.submit(id, 3, block(d, 3)), std::invalid_argument);
  service.submit(id, 0, block(d, 0));
  service.drain();
  // Tick 0 has been assimilated; resubmitting it is a duplicate too.
  EXPECT_THROW(service.submit(id, 0, block(d, 0)), std::invalid_argument);

  // A closed event is unknown to the service afterwards.
  (void)service.close_event(id);
  EXPECT_THROW(service.submit(id, 1, block(d, 1)), std::out_of_range);
  EXPECT_THROW((void)service.close_event(id), std::out_of_range);
}

TEST_F(ServiceTest, RejectPolicyThrowsServiceOverloadedOnFullQueue) {
  WarningService service({.num_workers = 1,
                          .max_pending_per_event = 2,
                          .backpressure = BackpressurePolicy::kReject});
  const std::vector<double> d = make_obs(13);
  const EventId id = service.open_event(*cached_);

  // Ticks 4 and 3 buffer (tick 0 is missing, nothing is runnable); tick 2
  // overflows the bound. The missing tick 0 itself always bypasses the
  // bound — accepting it is what lets the queue drain.
  service.submit(id, 4, block(d, 4));
  service.submit(id, 3, block(d, 3));
  EXPECT_THROW(service.submit(id, 2, block(d, 2)), ServiceOverloaded);
  EXPECT_GE(service.telemetry().ticks_rejected, 1u);
  service.submit(id, 0, block(d, 0));
  service.drain();
  // 0 assimilated; 3, 4 still wait on the (dropped) tick 1 and 2.
  EXPECT_EQ(service.latest_forecast(id).ticks_assimilated, 1u);
  // Gap fills bypass the bound, but only once the worker has caught up is
  // there queue space for ordinary ticks — drain between the two.
  service.submit(id, 1, block(d, 1));
  service.drain();
  service.submit(id, 2, block(d, 2));
  service.drain();
  EXPECT_EQ(service.latest_forecast(id).ticks_assimilated, 5u);
}

// Regression: a kBlock producer sleeping on a full queue whose tick BECOMES
// next-expected while it waits must wake via the bypass condition — the
// queue is full of future ticks that can only drain through this block, so
// waiting for queue space would deadlock the session permanently.
TEST_F(ServiceTest, BlockedProducerWakesWhenItsTickBecomesNextExpected) {
  WarningService service({.num_workers = 1,
                          .max_pending_per_event = 2,
                          .backpressure = BackpressurePolicy::kBlock});
  const std::vector<double> d = make_obs(19);
  const EventId id = service.open_event(*cached_);

  service.submit(id, 3, block(d, 3));
  service.submit(id, 4, block(d, 4));  // queue full, next_expected = 0
  std::thread producer([&] { service.submit(id, 1, block(d, 1)); });
  // Give the producer time to park on the full queue, then fill the gap:
  // tick 0 bypasses the bound, the worker assimilates it, and next_expected
  // advances to 1 — the parked producer's tick.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.submit(id, 0, block(d, 0));
  producer.join();  // deadlocks here without the bypass re-check
  service.drain();
  EXPECT_EQ(service.latest_forecast(id).ticks_assimilated, 2u);
  service.submit(id, 2, block(d, 2));
  service.drain();
  EXPECT_EQ(service.latest_forecast(id).ticks_assimilated, 5u);
}

TEST_F(ServiceTest, DebouncedAlertMatchesSerialRule) {
  const std::vector<double> d = make_obs(17);

  // Reference: the serial warning-center rule over an independent replay.
  const StreamingEngine& eng = (*cached_)->engine();
  StreamingAssimilator ref = eng.start();
  double peak_final = 0.0;
  for (double v : replay(d).forecast().mean)
    peak_final = std::max(peak_final, v);
  const AlertPolicy policy{.threshold = 0.5 * peak_final,
                           .debounce_ticks = 2};
  std::size_t expect_alert_tick = 0, streak = 0;
  for (std::size_t t = 0; t < nt(); ++t) {
    ref.push(t, block(d, t));
    double peak = 0.0;
    for (double v : ref.forecast().mean) peak = std::max(peak, v);
    streak = peak > policy.threshold ? streak + 1 : 0;
    if (expect_alert_tick == 0 && streak >= policy.debounce_ticks)
      expect_alert_tick = t + 1;
  }
  ASSERT_GT(expect_alert_tick, 0u) << "event never crosses half its peak";

  WarningService service({.num_workers = 4});
  const EventId id = service.open_event(*cached_, policy);
  for (std::size_t t = 0; t < nt(); ++t) service.submit(id, t, block(d, t));
  service.drain();
  const EventSnapshot got = service.close_event(id);
  EXPECT_TRUE(got.alert);
  EXPECT_EQ(got.alert_tick, expect_alert_tick);
}

TEST_F(ServiceTest, SnapshotBeforeDataIsThePrior) {
  WarningService service({.num_workers = 4});
  const EventId id = service.open_event(*cached_);
  const EventSnapshot s = service.latest_forecast(id);
  EXPECT_EQ(s.ticks_assimilated, 0u);
  EXPECT_FALSE(s.complete);
  EXPECT_FALSE(s.alert);
  for (double v : s.forecast.mean) EXPECT_EQ(v, 0.0);
  const auto prior_sd = (*cached_)->engine().stddev_after(0);
  ASSERT_EQ(s.forecast.stddev.size(), prior_sd.size());
  for (std::size_t i = 0; i < prior_sd.size(); ++i)
    EXPECT_EQ(s.forecast.stddev[i], prior_sd[i]);
  (void)service.close_event(id);
}

TEST_F(ServiceTest, TelemetryCountsAndPercentilesAreCoherent) {
  WarningService service({.num_workers = 4});
  constexpr unsigned kEvents = 3;
  std::vector<EventId> ids;
  for (unsigned e = 0; e < kEvents; ++e)
    ids.push_back(service.open_event(*cached_));
  std::vector<std::vector<double>> obs;
  for (unsigned e = 0; e < kEvents; ++e) obs.push_back(make_obs(50 + e));
  for (std::size_t t = 0; t < nt(); ++t)
    for (unsigned e = 0; e < kEvents; ++e)
      service.submit(ids[e], t, block(obs[e], t));
  service.drain();
  (void)service.close_event(ids[0]);

  const TelemetrySnapshot telem = service.telemetry();
  EXPECT_EQ(telem.events_opened, kEvents);
  EXPECT_EQ(telem.events_closed, 1u);
  EXPECT_EQ(telem.events_in_flight, kEvents - 1);
  EXPECT_EQ(telem.ticks_assimilated, kEvents * nt());
  EXPECT_EQ(telem.push_latency.count, kEvents * nt());
  EXPECT_GT(telem.push_latency.p50, 0.0);
  EXPECT_LE(telem.push_latency.p50, telem.push_latency.p95);
  EXPECT_LE(telem.push_latency.p95, telem.push_latency.p99);
  EXPECT_LE(telem.push_latency.p99, telem.push_latency.max);
  EXPECT_GT(telem.ticks_per_second, 0.0);
  EXPECT_FALSE(telem.str().empty());
}

TEST_F(ServiceTest, ServiceOptionValidation) {
  EXPECT_THROW(WarningService({.num_workers = 0}), std::invalid_argument);
  EXPECT_THROW(WarningService({.max_pending_per_event = 0}),
               std::invalid_argument);
  EXPECT_THROW(WarningService({.max_batch_events = 0}), std::invalid_argument);
}

// ---- cross-event batching ---------------------------------------------------
//
// The batcher fuses tick-aligned pushes from sessions on one engine into a
// single push_many sweep. The contract under test: batching is INVISIBLE in
// the results — per-event forecasts are bit-identical to independent serial
// replays no matter how arrivals interleave, whether batching is on or off,
// and no matter which sessions happen to share a sweep.

TEST_F(ServiceTest, BatchedReplayWithPairSwappedArrivalIsBitIdentical) {
  // 8 events on 2 drain jobs, ticks submitted in pairs (t+1 before t) with
  // the per-tick event order rotated: arrivals are adversarially out of
  // order BOTH within an event and across events, so rounds of the batcher
  // see ragged, shifting membership.
  constexpr unsigned kEvents = 8;
  std::vector<std::vector<double>> obs;
  for (unsigned e = 0; e < kEvents; ++e) obs.push_back(make_obs(100 + e));

  WarningService service({.num_workers = 2,
                          .max_pending_per_event = 8,
                          .cross_event_batching = true,
                          .max_batch_events = kEvents});
  std::vector<EventId> ids;
  for (unsigned e = 0; e < kEvents; ++e)
    ids.push_back(service.open_event(*cached_));

  std::size_t t = 0;
  for (; t + 1 < nt(); t += 2) {
    for (unsigned k = 0; k < kEvents; ++k) {
      const unsigned e = (k + static_cast<unsigned>(t)) % kEvents;
      service.submit(ids[e], t + 1, block(obs[e], t + 1));
      service.submit(ids[e], t, block(obs[e], t));
    }
  }
  for (; t < nt(); ++t)
    for (unsigned e = 0; e < kEvents; ++e)
      service.submit(ids[e], t, block(obs[e], t));
  service.drain();

  for (unsigned e = 0; e < kEvents; ++e) {
    const Forecast expect = replay(obs[e]).forecast();
    const EventSnapshot got = service.close_event(ids[e]);
    ASSERT_TRUE(got.complete) << "event " << e;
    EXPECT_EQ(got.forecast.mean, expect.mean) << "event " << e;
    EXPECT_EQ(got.forecast.stddev, expect.stddev) << "event " << e;
    EXPECT_EQ(got.forecast.lower95, expect.lower95) << "event " << e;
    EXPECT_EQ(got.forecast.upper95, expect.upper95) << "event " << e;
  }
}

TEST_F(ServiceTest, BatchingOffMatchesBatchingOnBitwise) {
  constexpr unsigned kEvents = 6;
  std::vector<std::vector<double>> obs;
  for (unsigned e = 0; e < kEvents; ++e) obs.push_back(make_obs(200 + e));

  const auto run = [&](bool batching) {
    WarningService service({.num_workers = 3,
                           .cross_event_batching = batching});
    std::vector<EventId> ids;
    for (unsigned e = 0; e < kEvents; ++e)
      ids.push_back(service.open_event(*cached_));
    for (std::size_t t = 0; t < nt(); ++t)
      for (unsigned e = 0; e < kEvents; ++e)
        service.submit(ids[e], t, block(obs[e], t));
    service.drain();
    std::vector<Forecast> out;
    for (unsigned e = 0; e < kEvents; ++e)
      out.push_back(service.close_event(ids[e]).forecast);
    return out;
  };
  const std::vector<Forecast> on = run(true);
  const std::vector<Forecast> off = run(false);
  for (unsigned e = 0; e < kEvents; ++e) {
    const Forecast expect = replay(obs[e]).forecast();
    EXPECT_EQ(on[e].mean, off[e].mean) << "event " << e;
    EXPECT_EQ(on[e].stddev, off[e].stddev) << "event " << e;
    EXPECT_EQ(on[e].mean, expect.mean) << "event " << e;
    EXPECT_EQ(on[e].stddev, expect.stddev) << "event " << e;
  }
}

TEST_F(ServiceTest, OpenCloseSubmitFuzzHasNoCrossEventLeakage) {
  // Fixed-seed fuzz of the service lifecycle: events open, close, and push
  // at random while the batcher keeps fusing whoever happens to be tick-
  // aligned. Every event carries a serial MIRROR assimilator fed the exact
  // same blocks; at close, the service forecast must equal the mirror
  // bitwise — any cross-event contamination inside a fused sweep (wrong
  // column, shared scratch, swapped z) breaks the equality immediately.
  struct Live {
    EventId id;
    std::vector<double> obs;
    std::size_t next;
    StreamingAssimilator mirror;
  };
  Rng rng(99);
  WarningService service({.num_workers = 2, .max_batch_events = 4});
  // unique_ptr: the assimilator holds an engine reference and is not
  // move-assignable, so Live cannot live in the vector by value.
  std::vector<std::unique_ptr<Live>> live;
  unsigned opened = 0;

  const auto open_one = [&] {
    live.push_back(std::make_unique<Live>(
        Live{service.open_event(*cached_), make_obs(500 + opened), 0,
             (*cached_)->engine().start()}));
    ++opened;
  };
  const auto close_at = [&](std::size_t i) {
    const EventSnapshot s = service.close_event(live[i]->id);
    EXPECT_EQ(s.ticks_assimilated, live[i]->next);
    EXPECT_EQ(s.forecast.mean, live[i]->mirror.forecast().mean);
    EXPECT_EQ(s.forecast.stddev, live[i]->mirror.forecast().stddev);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
  };

  for (int i = 0; i < 4; ++i) open_one();
  for (int step = 0; step < 600; ++step) {
    const double u = rng.uniform();
    if (u < 0.05 && live.size() < 12) {
      open_one();
    } else if (u < 0.10 && !live.empty()) {
      close_at(static_cast<std::size_t>(rng.uniform() * live.size()) %
               live.size());
    } else if (!live.empty()) {
      Live& l = *live[static_cast<std::size_t>(rng.uniform() * live.size()) %
                      live.size()];
      if (l.next < nt()) {
        service.submit(l.id, l.next, block(l.obs, l.next));
        l.mirror.push(l.next, block(l.obs, l.next));
        ++l.next;
      }
    }
  }
  while (!live.empty()) close_at(live.size() - 1);
  EXPECT_EQ(service.events_in_flight(), 0u);
}

// ---- lifecycle journal ------------------------------------------------------
//
// The journal's contract: every event's records reconstruct its complete
// open -> first_tick -> push* -> alert_latch -> close timeline in timestamp
// order, per-event push ticks are strictly ascending even under the
// cross-event batcher, and each push record's decomposed latency budget
// (queue_wait + push + publish) accounts for its end-to-end total.

namespace journal_util {

/// The records of one event, in the journal's (timestamp-sorted) order.
inline std::vector<JournalRecord> for_event(const EventJournal& journal,
                                            EventId id) {
  std::vector<JournalRecord> out;
  for (const JournalRecord& r : journal.snapshot())
    if (r.event == id) out.push_back(r);
  return out;
}

inline std::size_t count_kind(const std::vector<JournalRecord>& rs,
                              JournalKind k) {
  std::size_t n = 0;
  for (const auto& r : rs) n += r.kind == k ? 1u : 0u;
  return n;
}

}  // namespace journal_util

TEST_F(ServiceTest, JournalReconstructsCompleteLifecycle) {
  const std::vector<double> d = make_obs(23);

  // Alert policy at half the final peak (as in DebouncedAlertMatchesSerial):
  // guarantees a latch partway through the window.
  double peak_final = 0.0;
  for (double v : replay(d).forecast().mean)
    peak_final = std::max(peak_final, v);

  WarningService service({.num_workers = 2});
  const EventId id = service.open_event(
      *cached_, {.threshold = 0.5 * peak_final, .debounce_ticks = 2});
  // One out-of-order pair (1 before 0) to force a reorder-stall record.
  service.submit(id, 1, block(d, 1));
  service.submit(id, 0, block(d, 0));
  for (std::size_t t = 2; t < nt(); ++t) service.submit(id, t, block(d, t));
  service.drain();
  const EventSnapshot final_state = service.close_event(id);
  ASSERT_TRUE(final_state.complete);
  ASSERT_TRUE(final_state.alert);

  const auto rs = journal_util::for_event(service.journal(), id);
  ASSERT_FALSE(rs.empty());
  // Timeline boundaries: opens first, closes last, timestamps sorted.
  EXPECT_EQ(rs.front().kind, JournalKind::kOpen);
  EXPECT_EQ(rs.back().kind, JournalKind::kClose);
  EXPECT_EQ(rs.back().tick, nt());
  for (std::size_t i = 1; i < rs.size(); ++i)
    EXPECT_LE(rs[i - 1].t_ns, rs[i].t_ns);
  // Exactly one first_tick, then nt()-1 plain pushes; ticks 0..nt-1 strictly
  // ascending across the push records.
  EXPECT_EQ(journal_util::count_kind(rs, JournalKind::kFirstTick), 1u);
  EXPECT_EQ(journal_util::count_kind(rs, JournalKind::kPush), nt() - 1);
  EXPECT_GE(journal_util::count_kind(rs, JournalKind::kReorderStall), 1u);
  std::vector<std::uint64_t> push_ticks;
  for (const auto& r : rs)
    if (r.kind == JournalKind::kFirstTick || r.kind == JournalKind::kPush)
      push_ticks.push_back(r.tick);
  ASSERT_EQ(push_ticks.size(), nt());
  for (std::size_t t = 0; t < nt(); ++t) EXPECT_EQ(push_ticks[t], t);
  // The alert latch row matches the snapshot's latch tick.
  const auto latches = journal_util::count_kind(rs, JournalKind::kAlertLatch);
  ASSERT_EQ(latches, 1u);
  for (const auto& r : rs) {
    if (r.kind == JournalKind::kAlertLatch) {
      EXPECT_EQ(r.tick, final_state.alert_tick);
    }
  }

  // Latency budget: every stage non-negative, and queue_wait + push +
  // publish accounts for the end-to-end total. push_ns is the assimilator's
  // OWN stopwatch (an independent measurement), so the sum is bounded by
  // total plus measurement slack rather than trivially equal; the residual
  // (unattributed overhead between clock reads) must stay small in the
  // aggregate even if one record gets preempted mid-measurement.
  std::int64_t sum_total = 0, sum_parts = 0;
  for (const auto& r : rs) {
    if (r.kind != JournalKind::kFirstTick && r.kind != JournalKind::kPush)
      continue;
    EXPECT_GE(r.queue_wait_ns, 0) << "tick " << r.tick;
    EXPECT_GE(r.push_ns, 0) << "tick " << r.tick;
    EXPECT_GE(r.publish_ns, 0) << "tick " << r.tick;
    EXPECT_GT(r.total_ns, 0) << "tick " << r.tick;
    const std::int64_t parts = r.queue_wait_ns + r.push_ns + r.publish_ns;
    // Stages nest inside [enqueue, publish-end]: the sum can exceed the
    // total only by the push stopwatch's own read granularity.
    EXPECT_LE(parts, r.total_ns + 50'000) << "tick " << r.tick;
    sum_total += r.total_ns;
    sum_parts += parts;
  }
  // Aggregate attribution: >= 80% of end-to-end time is accounted to a
  // stage (the histogram-bucket-error tolerance of the acceptance bar is
  // 1/32; 20% absorbs scheduler noise on loaded CI machines).
  EXPECT_GE(static_cast<double>(sum_parts),
            0.8 * static_cast<double>(sum_total));
}

TEST_F(ServiceTest, JournalPushOrderStrictUnderCrossEventBatcher) {
  // Same adversarial arrival pattern as the batched bit-identity test: the
  // journal must nevertheless record every event's pushes in strict tick
  // order (the batcher fuses sweeps, it never reorders within an event).
  constexpr unsigned kEvents = 8;
  std::vector<std::vector<double>> obs;
  for (unsigned e = 0; e < kEvents; ++e) obs.push_back(make_obs(400 + e));

  WarningService service({.num_workers = 2,
                          .max_pending_per_event = 8,
                          .cross_event_batching = true,
                          .max_batch_events = kEvents});
  std::vector<EventId> ids;
  for (unsigned e = 0; e < kEvents; ++e)
    ids.push_back(service.open_event(*cached_));

  std::size_t t = 0;
  for (; t + 1 < nt(); t += 2) {
    for (unsigned k = 0; k < kEvents; ++k) {
      const unsigned e = (k + static_cast<unsigned>(t)) % kEvents;
      service.submit(ids[e], t + 1, block(obs[e], t + 1));
      service.submit(ids[e], t, block(obs[e], t));
    }
  }
  for (; t < nt(); ++t)
    for (unsigned e = 0; e < kEvents; ++e)
      service.submit(ids[e], t, block(obs[e], t));
  service.drain();

  for (unsigned e = 0; e < kEvents; ++e) {
    const auto rs = journal_util::for_event(service.journal(), ids[e]);
    std::vector<std::uint64_t> push_ticks;
    for (const auto& r : rs)
      if (r.kind == JournalKind::kFirstTick || r.kind == JournalKind::kPush)
        push_ticks.push_back(r.tick);
    ASSERT_EQ(push_ticks.size(), nt()) << "event " << e;
    for (std::size_t i = 0; i < push_ticks.size(); ++i)
      EXPECT_EQ(push_ticks[i], i) << "event " << e;
    (void)service.close_event(ids[e]);
  }
  EXPECT_EQ(service.journal().dropped(), 0u);
}

TEST_F(ServiceTest, JournalRecordsBackpressure) {
  const std::vector<double> d = make_obs(29);
  {
    // kReject: the shed submit leaves a backpressure_reject record.
    WarningService service({.num_workers = 1,
                            .max_pending_per_event = 2,
                            .backpressure = BackpressurePolicy::kReject});
    const EventId id = service.open_event(*cached_);
    service.submit(id, 4, block(d, 4));
    service.submit(id, 3, block(d, 3));
    EXPECT_THROW(service.submit(id, 2, block(d, 2)), ServiceOverloaded);
    const auto rs = journal_util::for_event(service.journal(), id);
    EXPECT_EQ(journal_util::count_kind(rs, JournalKind::kBackpressureReject),
              1u);
    EXPECT_GE(service.telemetry().ticks_rejected, 1u);
  }
  {
    // kBlock: the stalled submit leaves a backpressure_block record whose
    // total_ns is the measured wait, and the blocked counter moves.
    WarningService service({.num_workers = 1,
                            .max_pending_per_event = 2,
                            .backpressure = BackpressurePolicy::kBlock});
    const EventId id = service.open_event(*cached_);
    service.submit(id, 3, block(d, 3));
    service.submit(id, 4, block(d, 4));
    std::thread producer([&] { service.submit(id, 1, block(d, 1)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    service.submit(id, 0, block(d, 0));
    producer.join();
    service.drain();
    const auto rs = journal_util::for_event(service.journal(), id);
    ASSERT_EQ(journal_util::count_kind(rs, JournalKind::kBackpressureBlock),
              1u);
    for (const auto& r : rs) {
      if (r.kind == JournalKind::kBackpressureBlock) {
        EXPECT_GT(r.total_ns, 0);
      }
    }
    EXPECT_EQ(service.telemetry().ticks_blocked, 1u);
  }
}

TEST_F(ServiceTest, SloInstrumentsExportAndValidate) {
  const std::vector<double> d = make_obs(31);
  double peak_final = 0.0;
  for (double v : replay(d).forecast().mean)
    peak_final = std::max(peak_final, v);

  constexpr unsigned kEvents = 3;
  WarningService service({.num_workers = 2});
  std::vector<EventId> ids;
  std::vector<std::vector<double>> obs;
  for (unsigned e = 0; e < kEvents; ++e) {
    obs.push_back(make_obs(600 + e));
    ids.push_back(service.open_event(
        *cached_, {.threshold = 0.5 * peak_final, .debounce_ticks = 2}));
  }
  for (std::size_t t = 0; t < nt(); ++t)
    for (unsigned e = 0; e < kEvents; ++e)
      service.submit(ids[e], t, block(obs[e], t));
  service.drain();

  // One time-to-first-forecast sample per event; alert-lead samples for the
  // events that latched, each within (0, nt * dt].
  const TelemetrySnapshot telem = service.telemetry();
  EXPECT_EQ(telem.time_to_first_forecast.count, kEvents);
  EXPECT_GT(telem.time_to_first_forecast.percentile(50.0), 0.0);
  EXPECT_GE(telem.alert_lead_time.count, 1u);
  const double dt = (*cached_)->twin().config().observation_dt;
  EXPECT_LE(telem.alert_lead_time.max, static_cast<double>(nt()) * dt);
  EXPECT_GT(telem.alert_lead_time.min, 0.0);
  EXPECT_EQ(telem.ticks_blocked, 0u);

  // The full scrape (telemetry + SLO histograms + staleness gauges +
  // journal counters) renders as valid Prometheus exposition.
  obs::MetricsSnapshot snap;
  service.collect_metrics(snap);
  const std::string text = obs::prometheus_text(snap);
  EXPECT_EQ(obs::validate_prometheus(text), "");
  EXPECT_NE(text.find("tsunami_slo_time_to_first_forecast_seconds"),
            std::string::npos);
  EXPECT_NE(text.find("tsunami_slo_alert_lead_time_seconds"),
            std::string::npos);
  EXPECT_NE(text.find("tsunami_service_ticks_blocked_total"),
            std::string::npos);
  EXPECT_NE(text.find(
                "tsunami_service_forecast_staleness_seconds{event=\"" +
                std::to_string(ids[0]) + "\"}"),
            std::string::npos);
  EXPECT_NE(text.find("tsunami_service_journal_records_total"),
            std::string::npos);

  // Staleness is a freshly-computed gauge: after a publish it is small, and
  // it grows between scrapes.
  for (unsigned e = 0; e < kEvents; ++e)
    (void)service.close_event(ids[e]);
}

// ServiceTelemetry's latency store is a lock-free histogram (wait-free
// bucket fetch_adds). Hammer it from many threads (with a concurrent
// snapshotter): under TSan this is the proof the multi-writer path is
// race-free, and the counts prove no sample is lost or double-counted —
// the histogram covers the LIFETIME, so count equals every push ever made.
TEST(ServiceTelemetryTest, ConcurrentWritersNeverTearTheHistogram) {
  constexpr int kWriters = 8;
  constexpr int kPushes = 10000;
  ServiceTelemetry telem;

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire))
      (void)telem.snapshot();
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPushes; ++i)
        telem.on_push(1e-6 * (w + 1));
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const TelemetrySnapshot s = telem.snapshot();
  EXPECT_EQ(s.ticks_assimilated,
            static_cast<std::uint64_t>(kWriters) * kPushes);
  EXPECT_EQ(s.push_latency.count,
            static_cast<std::uint64_t>(kWriters) * kPushes);
  EXPECT_EQ(s.push_histogram.count, s.push_latency.count);
  // Every recorded sample is one of the written values — a torn or lost
  // write would land outside the span (min/max are exact, not quantized).
  EXPECT_GE(s.push_latency.p50, 1e-6 * (1.0 - 1.0 / 32.0));
  EXPECT_LE(s.push_latency.max, kWriters * 1e-6);
  EXPECT_GE(s.push_histogram.min, 1e-6);
}

TEST_F(ServiceTest, CloseDuringBatchedDrainHasNoUseAfterRelease) {
  // The cross-event batcher co-opts tick-aligned peers via try_schedule and
  // keeps touching them (take_one_runnable / push_many / publish) until
  // release_if_idle succeeds. close_event concurrently removes the session
  // from the map and waits on wait_idle. The lifetime contract under test:
  // a co-opted session is held by shared_ptr in the drain job's active set,
  // wait_idle blocks until the batcher's release drops the scheduled flag,
  // and the final snapshot reflects a clean tick prefix. Run under the TSan
  // CI job, this is the use-after-release probe; here it also asserts the
  // functional postconditions. Many short rounds maximize interleavings
  // where the close lands exactly while the batcher owns the session.
  constexpr int kRounds = 25;
  constexpr std::size_t kEvents = 6;
  for (int round = 0; round < kRounds; ++round) {
    WarningService service(
        {.num_workers = 2, .max_batch_events = kEvents});
    std::vector<EventId> ids;
    std::vector<std::vector<double>> obs;
    for (std::size_t e = 0; e < kEvents; ++e) {
      ids.push_back(service.open_event(*cached_));
      obs.push_back(make_obs(3000u + static_cast<unsigned>(e)));
    }
    // Producer floods all events in tick order, so one leader drain job is
    // continually co-opting the others while the main thread closes them.
    std::thread producer([&] {
      for (std::size_t t = 0; t < nt(); ++t) {
        for (std::size_t e = 0; e < kEvents; ++e) {
          try {
            service.submit(ids[e], t, block(obs[e], t));
          } catch (const std::out_of_range&) {
            // closed and removed mid-feed: expected
          } catch (const std::logic_error&) {
            // removal raced between lookup and session submit: expected
          }
        }
      }
    });
    for (std::size_t e = 0; e < kEvents; ++e) {
      const EventSnapshot s = service.close_event(ids[e]);
      // A clean prefix: whatever was assimilated is a contiguous [0, k)
      // run, and the published forecast is well-formed.
      EXPECT_LE(s.ticks_assimilated, nt());
      EXPECT_EQ(s.forecast.mean.size(), s.forecast.stddev.size());
      for (const double v : s.forecast.mean) EXPECT_TRUE(std::isfinite(v));
      EXPECT_THROW((void)service.latest_forecast(ids[e]), std::out_of_range);
    }
    producer.join();
  }
}

TEST_F(ServiceTest, SetSensorDuringActiveDrainAppliesAtCycleBoundary) {
  // drop/restore ops queued while a worker owns the session must be applied
  // by that owner (release_if_idle refuses to idle past one), and ops on an
  // idle session apply inline. Either way the close-time forecast must be
  // degraded-exact: equal to a serial replay with the drop at SOME tick
  // boundary — and since drops are pure projections of the same stream, any
  // boundary gives the same posterior over the surviving rows pushed
  // healthy. Here the whole stream runs healthy, then the drop lands after
  // drain, so the reference boundary is exact.
  WarningService service({.num_workers = 2});
  const EventId id = service.open_event(*cached_);
  const std::vector<double> obs = make_obs(4000);
  std::thread producer([&] {
    for (std::size_t t = 0; t < nt(); ++t) service.submit(id, t, block(obs, t));
  });
  producer.join();
  service.drain();
  service.drop_sensor(id, 0);
  const EventSnapshot s = service.close_event(id);
  EXPECT_TRUE(s.degraded);
  EXPECT_EQ(s.dropped_channels, 1u);

  StreamingAssimilator mirror = (*cached_)->engine().start();
  for (std::size_t t = 0; t < nt(); ++t) mirror.push(t, block(obs, t));
  mirror.drop_sensor(0);
  EXPECT_EQ(s.forecast.mean, mirror.forecast().mean);
  EXPECT_EQ(s.forecast.stddev, mirror.forecast().stddev);
}

}  // namespace
}  // namespace tsunami
