// Tests for the binary artifact serialization (deployment shipping format).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/io.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Io, MatrixRoundTrip) {
  Rng rng(1);
  Matrix m(7, 13);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) m(i, j) = rng.normal();
  const auto path = temp_path("tsunami_io_matrix.bin");
  save_matrix(path, m);
  const Matrix back = load_matrix(path);
  ASSERT_EQ(back.rows(), 7u);
  ASSERT_EQ(back.cols(), 13u);
  EXPECT_DOUBLE_EQ(back.max_abs_diff(m), 0.0);
  std::filesystem::remove(path);
}

TEST(Io, EmptyMatrixRoundTrip) {
  const auto path = temp_path("tsunami_io_empty.bin");
  save_matrix(path, Matrix(0, 0));
  const Matrix back = load_matrix(path);
  EXPECT_EQ(back.rows(), 0u);
  EXPECT_EQ(back.cols(), 0u);
  std::filesystem::remove(path);
}

TEST(Io, VectorRoundTrip) {
  Rng rng(2);
  const auto v = rng.normal_vector(100);
  const auto path = temp_path("tsunami_io_vector.bin");
  save_vector(path, v);
  const auto back = load_vector(path);
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(back[i], v[i]);
  std::filesystem::remove(path);
}

TEST(Io, P2oArchiveRoundTrip) {
  Rng rng(3);
  P2oArchive a;
  a.nrows = 3;
  a.ncols = 5;
  a.nt = 4;
  a.blocks = rng.normal_vector(60);
  const auto path = temp_path("tsunami_io_p2o.bin");
  save_p2o(path, a);
  const auto back = load_p2o(path);
  EXPECT_EQ(back.nrows, 3u);
  EXPECT_EQ(back.ncols, 5u);
  EXPECT_EQ(back.nt, 4u);
  ASSERT_EQ(back.blocks.size(), 60u);
  for (std::size_t i = 0; i < 60; ++i)
    EXPECT_DOUBLE_EQ(back.blocks[i], a.blocks[i]);
  std::filesystem::remove(path);
}

TEST(Io, P2oRejectsInconsistentDims) {
  P2oArchive a;
  a.nrows = 2;
  a.ncols = 2;
  a.nt = 2;
  a.blocks.assign(5, 0.0);  // should be 8
  EXPECT_THROW(save_p2o(temp_path("tsunami_io_bad.bin"), a),
               std::invalid_argument);
}

TEST(Io, WrongSignatureRejected) {
  Rng rng(4);
  const auto v = rng.normal_vector(10);
  const auto path = temp_path("tsunami_io_sig.bin");
  save_vector(path, v);
  EXPECT_THROW((void)load_matrix(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW((void)load_vector("/nonexistent/dir/file.bin"),
               std::runtime_error);
}

TEST(Io, TruncatedFileThrows) {
  Rng rng(5);
  Matrix m(20, 20);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  const auto path = temp_path("tsunami_io_trunc.bin");
  save_matrix(path, m);
  std::filesystem::resize_file(path, 128);  // chop off most of the payload
  EXPECT_THROW((void)load_matrix(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tsunami
