// Tests for the binary artifact serialization (deployment shipping format).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <initializer_list>

#include "util/io.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Io, MatrixRoundTrip) {
  Rng rng(1);
  Matrix m(7, 13);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) m(i, j) = rng.normal();
  const auto path = temp_path("tsunami_io_matrix.bin");
  save_matrix(path, m);
  const Matrix back = load_matrix(path);
  ASSERT_EQ(back.rows(), 7u);
  ASSERT_EQ(back.cols(), 13u);
  EXPECT_DOUBLE_EQ(back.max_abs_diff(m), 0.0);
  std::filesystem::remove(path);
}

TEST(Io, EmptyMatrixRoundTrip) {
  const auto path = temp_path("tsunami_io_empty.bin");
  save_matrix(path, Matrix(0, 0));
  const Matrix back = load_matrix(path);
  EXPECT_EQ(back.rows(), 0u);
  EXPECT_EQ(back.cols(), 0u);
  std::filesystem::remove(path);
}

TEST(Io, VectorRoundTrip) {
  Rng rng(2);
  const auto v = rng.normal_vector(100);
  const auto path = temp_path("tsunami_io_vector.bin");
  save_vector(path, v);
  const auto back = load_vector(path);
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(back[i], v[i]);
  std::filesystem::remove(path);
}

TEST(Io, P2oArchiveRoundTrip) {
  Rng rng(3);
  P2oArchive a;
  a.nrows = 3;
  a.ncols = 5;
  a.nt = 4;
  a.blocks = rng.normal_vector(60);
  const auto path = temp_path("tsunami_io_p2o.bin");
  save_p2o(path, a);
  const auto back = load_p2o(path);
  EXPECT_EQ(back.nrows, 3u);
  EXPECT_EQ(back.ncols, 5u);
  EXPECT_EQ(back.nt, 4u);
  ASSERT_EQ(back.blocks.size(), 60u);
  for (std::size_t i = 0; i < 60; ++i)
    EXPECT_DOUBLE_EQ(back.blocks[i], a.blocks[i]);
  std::filesystem::remove(path);
}

TEST(Io, P2oRejectsInconsistentDims) {
  P2oArchive a;
  a.nrows = 2;
  a.ncols = 2;
  a.nt = 2;
  a.blocks.assign(5, 0.0);  // should be 8
  EXPECT_THROW(save_p2o(temp_path("tsunami_io_bad.bin"), a),
               std::invalid_argument);
}

TEST(Io, WrongSignatureRejected) {
  Rng rng(4);
  const auto v = rng.normal_vector(10);
  const auto path = temp_path("tsunami_io_sig.bin");
  save_vector(path, v);
  EXPECT_THROW((void)load_matrix(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW((void)load_vector("/nonexistent/dir/file.bin"),
               std::runtime_error);
}

TEST(Io, TruncatedFileThrows) {
  Rng rng(5);
  Matrix m(20, 20);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  const auto path = temp_path("tsunami_io_trunc.bin");
  save_matrix(path, m);
  std::filesystem::resize_file(path, 128);  // chop off most of the payload
  EXPECT_THROW((void)load_matrix(path), std::runtime_error);
  std::filesystem::remove(path);
}

// ---- hardened header validation -------------------------------------------
// A corrupt header must raise a clean std::runtime_error BEFORE any
// allocation sized by it: the old loaders resized to whatever the header
// claimed (multi-GB bad_alloc on garbage, heap overflow on a wrapped
// product).

namespace {

void write_u64s(std::ofstream& f, std::initializer_list<std::uint64_t> vs) {
  for (const std::uint64_t v : vs)
    f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

constexpr std::uint64_t kMatrixMagic = 0x54534d4154524958ULL;
constexpr std::uint64_t kVectorMagic = 0x545356454354'4f52ULL;
constexpr std::uint64_t kP2oMagic = 0x5453'50324f'4d4150ULL;

}  // namespace

TEST(Io, CheckedMulDetectsOverflow) {
  EXPECT_EQ(checked_mul_u64(1u << 22, 1u << 22, "test"), 1ull << 44);
  EXPECT_THROW((void)checked_mul_u64(1ull << 33, 1ull << 33, "test"),
               std::runtime_error);
  EXPECT_EQ(checked_mul_u64(0, ~0ull, "test"), 0u);
}

TEST(Io, MatrixHeaderDimsExceedingFileSizeThrow) {
  const auto path = temp_path("tsunami_io_liar_matrix.bin");
  {
    std::ofstream f(path, std::ios::binary);
    // Header claims a 10^9 x 10^9 matrix; payload is one double.
    write_u64s(f, {kMatrixMagic, 1000000000ull, 1000000000ull});
    const double v = 1.0;
    f.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  EXPECT_THROW((void)load_matrix(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Io, VectorHeaderLengthExceedingFileSizeThrows) {
  const auto path = temp_path("tsunami_io_liar_vector.bin");
  {
    std::ofstream f(path, std::ios::binary);
    write_u64s(f, {kVectorMagic, 1ull << 40});
  }
  EXPECT_THROW((void)load_vector(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Io, P2oHeaderProductOverflowThrowsCleanly) {
  const auto path = temp_path("tsunami_io_liar_p2o.bin");
  {
    std::ofstream f(path, std::ios::binary);
    // nrows * ncols * nt = 2^66: wraps uint64_t. The unchecked version
    // resized to the wrapped (tiny) product, then read past the buffer.
    write_u64s(f, {kP2oMagic, 1ull << 22, 1ull << 22, 1ull << 22});
  }
  EXPECT_THROW((void)load_p2o(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Io, TrailingGarbageRejected) {
  // Header dimensions must agree with the file size exactly: extra bytes
  // mean the header does not describe this file.
  Rng rng(6);
  const auto v = rng.normal_vector(8);
  const auto path = temp_path("tsunami_io_trailing.bin");
  save_vector(path, v);
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("junk", 4);
  }
  EXPECT_THROW((void)load_vector(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Io, WriteFailureIsReportedNotSwallowed) {
  // /dev/full accepts the open but fails the (possibly buffered) write; the
  // writers must flush and check rather than report success.
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP();
  Rng rng(7);
  const auto v = rng.normal_vector(4096);
  EXPECT_THROW(save_vector("/dev/full", v), std::runtime_error);
  Matrix m(64, 64, 1.5);
  EXPECT_THROW(save_matrix("/dev/full", m), std::runtime_error);
}

}  // namespace
}  // namespace tsunami
