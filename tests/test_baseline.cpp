// Tests for the SoA baseline (prior-preconditioned matrix-free CG with PDE
// solves per Hessian matvec): it must agree with the offline-online
// framework's exact MAP point, while costing PDE solves per iteration —
// the comparison at the heart of the paper's speedup claims.

#include <gtest/gtest.h>

#include <cmath>

#include "core/baseline_cg.hpp"
#include "core/data_space_hessian.hpp"
#include "core/p2o_builder.hpp"
#include "core/posterior.hpp"
#include "linalg/blas.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

struct BaselineProblem {
  BaselineProblem()
      : bathy(flat_basin(1500.0, 30e3, 30e3)),
        mesh(bathy, 2, 2, 1),
        model(mesh, 1) {
    obs = std::make_unique<ObservationOperator>(
        ObservationOperator::seafloor_sensors(model,
                                              {{8e3, 9e3}, {21e3, 22e3}}));
    grid.num_intervals = 3;
    grid.substeps = 3;
    grid.dt = model.cfl_timestep(0.4);

    MaternPriorConfig pcfg;
    pcfg.sigma = 0.3;
    pcfg.correlation_length = 10e3;
    prior = std::make_unique<MaternPrior>(3, 3, 15e3, 15e3, pcfg);

    // Physically scaled noisy data from a prior-distributed truth (see
    // test_posterior.cpp for the conditioning rationale).
    Rng rng(99);
    const std::size_t nm = model.source_map().parameter_dim();
    std::vector<double> m_true(nm * grid.num_intervals);
    for (std::size_t t = 0; t < grid.num_intervals; ++t) {
      const auto block = prior->sample(rng);
      std::copy(block.begin(), block.end(),
                m_true.begin() + static_cast<std::ptrdiff_t>(t * nm));
    }
    d_obs.resize(obs->num_outputs() * grid.num_intervals);
    forward_p2o_apply(model, *obs, grid, m_true, std::span<double>(d_obs));
    noise = relative_noise(d_obs, 0.05);
    for (auto& v : d_obs) v += noise.sigma * rng.normal();
  }

  Bathymetry bathy;
  HexMesh mesh;
  AcousticGravityModel model;
  std::unique_ptr<ObservationOperator> obs;
  TimeGrid grid;
  std::unique_ptr<MaternPrior> prior;
  NoiseModel noise;
  std::vector<double> d_obs;
};

TEST(BaselineCg, ConvergesAndCountsPdeSolves) {
  BaselineProblem bp;
  const auto& d_obs = bp.d_obs;

  BaselineOptions opts;
  opts.max_iterations = 150;
  opts.relative_tolerance = 1e-9;
  const auto result =
      baseline_cg_solve(bp.model, *bp.obs, bp.grid, *bp.prior, bp.noise,
                        d_obs, opts);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.cg_iterations, 0u);
  // Each iteration costs a forward+adjoint pair; +1 adjoint for the RHS and
  // +2 for the initial residual's Hessian application.
  EXPECT_GE(result.pde_solves, 2 * result.cg_iterations + 1);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(BaselineCg, AgreesWithOfflineOnlineFramework) {
  BaselineProblem bp;
  // Offline-online (exact) side.
  const P2oMap map = build_p2o_map(bp.model, *bp.obs, bp.grid);
  const DataSpaceHessian hess(*map.toeplitz, *bp.prior, bp.noise, 16);
  const Posterior posterior(*map.toeplitz, *bp.prior, hess);

  const auto& d_obs = bp.d_obs;

  const auto m_exact = posterior.map_point(d_obs);

  BaselineOptions opts;
  opts.max_iterations = 300;
  opts.relative_tolerance = 1e-11;
  const auto result = baseline_cg_solve(bp.model, *bp.obs, bp.grid, *bp.prior,
                                        bp.noise, d_obs, opts);
  ASSERT_TRUE(result.converged);

  const double scale = amax(m_exact) + 1e-30;
  for (std::size_t i = 0; i < m_exact.size(); ++i)
    EXPECT_NEAR(result.m_map[i], m_exact[i], 1e-5 * scale) << "param " << i;
}

TEST(BaselineCg, MorePdeSolvesThanPhase1) {
  // The paper's ~810x reduction in PDE solves: Phase 1 needs Nd+Nq solves
  // total; the baseline needs 2 per CG iteration for EVERY event. Even at
  // tiny scale the baseline must use strictly more solves than sensors.
  BaselineProblem bp;
  const auto& d_obs = bp.d_obs;
  const auto result = baseline_cg_solve(bp.model, *bp.obs, bp.grid, *bp.prior,
                                        bp.noise, d_obs,
                                        {.max_iterations = 100,
                                         .relative_tolerance = 1e-9});
  EXPECT_GT(result.pde_solves, bp.obs->num_outputs());
}

}  // namespace
}  // namespace tsunami
