// Unit tests for the observability subsystem (src/obs/): histogram bucket
// math and error bounds, snapshot merging, multi-writer safety, trace
// recording + Chrome JSON export, and the Prometheus exposition round-trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/bridge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace tsunami::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

TEST(HistogramBuckets, BoundsBracketTheValue) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    // Log-uniform over the covered range.
    const double v = std::exp((rng.uniform() * 2.0 - 1.0) * 25.0);
    const std::size_t idx = Histogram::bucket_index(v);
    EXPECT_LE(Histogram::bucket_lower_bound(idx), v);
    EXPECT_GT(Histogram::bucket_upper_bound(idx), v);
  }
}

TEST(HistogramBuckets, RelativeWidthIsBounded) {
  // The documented error bound: within the exactly-covered exponent range,
  // (hi - lo) / lo <= 1 / kSubBuckets for every bucket.
  const std::size_t first = Histogram::bucket_index(1e-11);
  const std::size_t last = Histogram::bucket_index(1e11);
  for (std::size_t i = first; i <= last; ++i) {
    const double lo = Histogram::bucket_lower_bound(i);
    const double hi = Histogram::bucket_upper_bound(i);
    EXPECT_LE((hi - lo) / lo, 1.0 / Histogram::kSubBuckets + 1e-12)
        << "bucket " << i;
  }
}

TEST(HistogramBuckets, DegenerateValuesAreCountedNotLost) {
  Histogram h;
  h.record(0.0);
  h.record(-3.0);
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(1e300);  // above the covered range -> top bucket
  EXPECT_EQ(h.count(), 4u);
  const HistogramSnapshot s = h.snapshot();
  std::uint64_t total = 0;
  for (const auto c : s.counts) total += c;
  EXPECT_EQ(total, 4u);
}

// ---------------------------------------------------------------------------
// Percentile error bound vs exact computation
// ---------------------------------------------------------------------------

void expect_percentiles_within_bound(const std::vector<double>& sample) {
  Histogram h;
  for (const double v : sample) h.record(v);
  const HistogramSnapshot s = h.snapshot();

  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  for (const double q : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    // The histogram estimates the floor-rank order statistic; compare
    // against exactly that sample, not the interpolated percentile.
    const auto k = static_cast<std::size_t>(
        q / 100.0 * static_cast<double>(sorted.size() - 1));
    const double exact = sorted[k];
    const double est = s.percentile(q);
    EXPECT_NEAR(est, exact, exact / Histogram::kSubBuckets + 1e-15)
        << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(s.percentile(0.0), sorted.front());    // clamped to min
  EXPECT_DOUBLE_EQ(s.percentile(100.0), sorted.back());   // clamped to max
}

TEST(HistogramPercentiles, WithinBucketBoundOnUniform) {
  Rng rng(7);
  std::vector<double> sample(20000);
  for (auto& v : sample) v = 1e-6 + rng.uniform() * 5e-3;
  expect_percentiles_within_bound(sample);
}

TEST(HistogramPercentiles, WithinBucketBoundOnLogNormal) {
  // Latency-shaped: heavy right tail across several octaves.
  Rng rng(11);
  std::vector<double> sample(20000);
  for (auto& v : sample) v = 1e-4 * std::exp(1.5 * rng.normal());
  expect_percentiles_within_bound(sample);
}

TEST(HistogramPercentiles, WithinBucketBoundOnBimodal) {
  // Fast path + slow path, three orders of magnitude apart.
  Rng rng(13);
  std::vector<double> sample(10000);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    sample[i] = (i % 10 == 0) ? 1e-2 * (1.0 + 0.1 * rng.uniform())
                              : 1e-5 * (1.0 + 0.1 * rng.uniform());
  }
  expect_percentiles_within_bound(sample);
}

TEST(HistogramPercentiles, MatchesServiceTelemetryDocumentedError) {
  // The acceptance criterion: percentiles from the histogram agree with
  // exact computation (util/stats on the raw sample) within the documented
  // 1/kSubBuckets relative bucket error.
  Rng rng(17);
  std::vector<double> sample(50000);
  Histogram h;
  for (auto& v : sample) {
    v = 50e-6 * std::exp(0.8 * rng.normal());
    h.record(v);
  }
  const HistogramSnapshot s = h.snapshot();
  for (const double q : {50.0, 95.0, 99.0}) {
    const double exact = percentile(sample, q);
    EXPECT_NEAR(s.percentile(q), exact,
                exact * (1.0 / Histogram::kSubBuckets) + 1e-15)
        << "q=" << q;
  }
  // max is exact, never quantized.
  EXPECT_DOUBLE_EQ(s.max, *std::max_element(sample.begin(), sample.end()));
}

TEST(HistogramPercentiles, EmptyAndSingleton) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.snapshot().percentile(50.0), 0.0);
  EXPECT_THROW((void)h.snapshot().percentile(-1.0), std::invalid_argument);
  EXPECT_THROW((void)h.snapshot().percentile(101.0), std::invalid_argument);
  h.record(3.5e-4);
  const HistogramSnapshot s = h.snapshot();
  // One sample: every quantile is clamped onto it exactly.
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 3.5e-4);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 3.5e-4);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 3.5e-4);
}

// ---------------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------------

HistogramSnapshot snap_of(const std::vector<double>& values) {
  Histogram h;
  for (const double v : values) h.record(v);
  return h.snapshot();
}

void expect_same(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  ASSERT_EQ(a.counts.size(), b.counts.size());
  for (std::size_t i = 0; i < a.counts.size(); ++i)
    EXPECT_EQ(a.counts[i], b.counts[i]) << "bucket " << i;
}

TEST(HistogramMerge, MergeEqualsRecordingTheUnion) {
  // FP-exact values (multiples of 2^-20) so sums match bit-for-bit.
  std::vector<double> all;
  std::vector<std::vector<double>> shards(3);
  Rng rng(23);
  for (int i = 0; i < 3000; ++i) {
    const double v =
        std::ldexp(std::floor(rng.uniform() * 4096.0) + 1.0, -20);
    shards[static_cast<std::size_t>(i) % 3].push_back(v);
    all.push_back(v);
  }
  HistogramSnapshot merged = snap_of(shards[0]);
  merged.merge(snap_of(shards[1]));
  merged.merge(snap_of(shards[2]));
  expect_same(merged, snap_of(all));
}

TEST(HistogramMerge, IsAssociativeAndCommutative) {
  const HistogramSnapshot a = snap_of({std::ldexp(3.0, -10),
                                       std::ldexp(5.0, -8)});
  const HistogramSnapshot b = snap_of({std::ldexp(7.0, -12)});
  const HistogramSnapshot c = snap_of({std::ldexp(9.0, -6),
                                       std::ldexp(11.0, -14)});

  HistogramSnapshot ab_c = a;   // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  HistogramSnapshot bc_a = b;   // (b + c) + a
  bc_a.merge(c);
  bc_a.merge(a);
  HistogramSnapshot ca_b = c;   // (c + a) + b
  ca_b.merge(a);
  ca_b.merge(b);
  expect_same(ab_c, bc_a);
  expect_same(bc_a, ca_b);
}

TEST(HistogramMerge, EmptyIsIdentity) {
  const HistogramSnapshot x = snap_of({1e-3, 2e-3});
  HistogramSnapshot left;  // empty + x
  left.merge(x);
  expect_same(left, x);
  HistogramSnapshot right = x;  // x + empty
  right.merge(HistogramSnapshot{});
  expect_same(right, x);
}

// ---------------------------------------------------------------------------
// Multi-writer hammer (the TSan proof, mirroring the telemetry test)
// ---------------------------------------------------------------------------

TEST(HistogramConcurrency, ParallelWritersLoseNothing) {
  constexpr int kWriters = 8;
  constexpr int kRecords = 20000;
  Histogram h;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) (void)h.snapshot();
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kRecords; ++i) h.record(1e-6 * (w + 1));
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kWriters) * kRecords);
  std::uint64_t total = 0;
  for (const auto c : s.counts) total += c;
  EXPECT_EQ(total, s.count);  // every record landed in exactly one bucket
  EXPECT_DOUBLE_EQ(s.min, 1e-6);
  EXPECT_DOUBLE_EQ(s.max, kWriters * 1e-6);
}

// ---------------------------------------------------------------------------
// Counters, gauges, registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, ReturnsStableInstruments) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("requests_total");
  Counter& c2 = reg.counter("requests_total");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  c2.add();
  EXPECT_EQ(c1.value(), 4u);

  Gauge& g = reg.gauge("depth");
  g.set(7.5);
  Histogram& h = reg.histogram("latency_seconds");
  h.record(1e-3);
  EXPECT_EQ(reg.size(), 3u);

  // Same name, different labels: distinct series.
  Counter& l0 = reg.counter("worker_jobs_total", {{"worker", "0"}});
  Counter& l1 = reg.counter("worker_jobs_total", {{"worker", "1"}});
  EXPECT_NE(&l0, &l1);
  EXPECT_EQ(reg.size(), 5u);

  // Kind conflict on an existing key throws.
  EXPECT_THROW((void)reg.gauge("requests_total"), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("bad name"), std::invalid_argument);

  MetricsSnapshot snap;
  reg.collect_into(snap);
  EXPECT_EQ(snap.samples.size(), 5u);
  EXPECT_EQ(validate_prometheus(prometheus_text(snap)), "");
}

// ---------------------------------------------------------------------------
// Prometheus exposition + validator round-trip
// ---------------------------------------------------------------------------

TEST(Prometheus, RendersAllKindsAndValidates) {
  MetricsSnapshot snap;
  snap.counter("tsunami_ticks_total", 12345, {}, "Ticks assimilated");
  snap.gauge("tsunami_events_in_flight", 6, {{"shard", "a"}});
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-6);
  snap.histogram("tsunami_push_latency_seconds", h.snapshot(), {},
                 "Push latency");

  const std::string text = prometheus_text(snap);
  EXPECT_EQ(validate_prometheus(text), "");
  EXPECT_NE(text.find("# TYPE tsunami_ticks_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("tsunami_events_in_flight{shard=\"a\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("tsunami_push_latency_seconds_bucket{le=\"+Inf\"} 1000"),
            std::string::npos);
  EXPECT_NE(text.find("tsunami_push_latency_seconds_count 1000"),
            std::string::npos);

  // Histogram bucket lines must be cumulative and end at count.
  std::uint64_t prev = 0;
  std::size_t pos = 0;
  while ((pos = text.find("_bucket{le=", pos)) != std::string::npos) {
    const std::size_t sp = text.find(' ', pos);
    const std::uint64_t cum = std::stoull(text.substr(sp + 1));
    EXPECT_GE(cum, prev);
    prev = cum;
    pos = sp;
  }
  EXPECT_EQ(prev, 1000u);
}

TEST(Prometheus, RejectsDuplicateSeriesAndBadNames) {
  MetricsSnapshot dup;
  dup.counter("x_total", 1);
  dup.counter("x_total", 2);
  EXPECT_THROW((void)prometheus_text(dup), std::invalid_argument);

  MetricsSnapshot ok_labels;
  ok_labels.counter("x_total", 1, {{"w", "0"}});
  ok_labels.counter("x_total", 2, {{"w", "1"}});
  EXPECT_EQ(validate_prometheus(prometheus_text(ok_labels)), "");

  MetricsSnapshot bad;
  bad.counter("1starts_with_digit", 1);
  EXPECT_THROW((void)prometheus_text(bad), std::invalid_argument);

  MetricsSnapshot conflict;
  conflict.counter("y", 1);
  conflict.gauge("y", 2);
  EXPECT_THROW((void)prometheus_text(conflict), std::invalid_argument);
}

TEST(Prometheus, ValidatorCatchesMalformedText) {
  EXPECT_EQ(validate_prometheus(""), "");
  EXPECT_EQ(validate_prometheus("a_total 1\nb_total 2.5e-3\nc NaN\n"), "");
  EXPECT_NE(validate_prometheus("a_total 1\na_total 2\n"), "");  // dup series
  EXPECT_NE(validate_prometheus("9bad 1\n"), "");                // bad name
  EXPECT_NE(validate_prometheus("a_total\n"), "");               // no value
  EXPECT_NE(validate_prometheus("a_total xyz\n"), "");           // bad value
  EXPECT_NE(validate_prometheus("a{w=\"0\" 1\n"), "");  // unterminated labels
  EXPECT_NE(validate_prometheus("# TYPE a counter\n# TYPE a gauge\n"), "");
  EXPECT_NE(validate_prometheus("# TYPE a widget\n"), "");
  // Escaped quotes inside label values parse.
  EXPECT_EQ(validate_prometheus("a{w=\"x\\\"y\"} 1\n"), "");
}

TEST(Prometheus, LabelValuesAreEscaped) {
  MetricsSnapshot snap;
  snap.gauge("g", 1, {{"path", "a\"b\\c\nd"}});
  const std::string text = prometheus_text(snap);
  EXPECT_EQ(validate_prometheus(text), "");
  EXPECT_NE(text.find("g{path=\"a\\\"b\\\\c\\nd\"} 1"), std::string::npos);
}

TEST(JsonExport, SummarizesHistograms) {
  MetricsSnapshot snap;
  snap.counter("ticks_total", 5);
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1e-3);
  snap.histogram("lat", h.snapshot());
  const std::string j = json_text(snap);
  EXPECT_NE(j.find("\"name\": \"ticks_total\""), std::string::npos);
  EXPECT_NE(j.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(j.find("\"p99\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Bridges
// ---------------------------------------------------------------------------

TEST(Bridge, TimersBecomeSeries) {
  TimerRegistry timers;
  timers.add("phase1: form F", 1.25);
  timers.add("phase1: form F", 0.75);
  timers.add("phase2: form+factorize K", 3.0);
  MetricsSnapshot snap;
  collect_timers(timers, snap);
  ASSERT_EQ(snap.samples.size(), 4u);  // seconds + invocations per phase
  const std::string text = prometheus_text(snap);
  EXPECT_EQ(validate_prometheus(text), "");
  EXPECT_NE(
      text.find("tsunami_phase_seconds_total{phase=\"phase1: form F\"} 2"),
      std::string::npos);
  EXPECT_NE(text.find(
                "tsunami_phase_invocations_total{phase=\"phase1: form F\"} 2"),
            std::string::npos);
}

TEST(Bridge, PoolStatsExportOneSeriesPerWorker) {
  ThreadPool& pool = ThreadPool::global();
  pool.run(64, [](std::size_t, std::size_t) {
    volatile double x = 0;
    for (int i = 0; i < 1000; ++i) x = x + 1.0;
  });
  MetricsSnapshot snap;
  collect_pool(pool, snap);
  const std::string text = prometheus_text(snap);
  EXPECT_EQ(validate_prometheus(text), "");
  EXPECT_NE(text.find("tsunami_pool_workers"), std::string::npos);
  const auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), pool.num_threads());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_NE(text.find("tsunami_pool_worker_jobs_total{worker=\"" +
                        std::to_string(i) + "\"}"),
              std::string::npos);
  }
  // With >1 worker the loop's helper jobs must have been executed by
  // somebody; at 1 worker the caller runs everything inline.
  if (pool.num_threads() > 1) {
    std::uint64_t jobs = 0;
    for (const auto& s : stats) jobs += s.jobs;
    EXPECT_GT(jobs, 0u);
  }
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(Trace, SpansAppearInChromeJson) {
  clear_trace();
  set_trace_enabled(true);
  set_thread_name("test-main");
  {
    TRACE_SCOPE("test", "outer");
    TRACE_SCOPE("test2", "inner");
  }
  TRACE_INSTANT("test", "marker");
  set_trace_enabled(false);

  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // the instant
  EXPECT_NE(json.find("test-main"), std::string::npos);
  EXPECT_GE(trace_span_count(), 3u);
  clear_trace();
  EXPECT_EQ(trace_span_count(), 0u);
}

TEST(Trace, DisabledRecordsNothing) {
  clear_trace();
  set_trace_enabled(false);
  {
    TRACE_SCOPE("test", "invisible");
    TRACE_INSTANT("test", "also_invisible");
  }
  EXPECT_EQ(trace_span_count(), 0u);
}

TEST(Trace, EnableMidScopeDropsTheOpenSpan) {
  // The scope captured "disabled" at construction; flipping tracing on
  // before its destructor must not record a half-timed span.
  clear_trace();
  set_trace_enabled(false);
  {
    TRACE_SCOPE("test", "straddler");
    set_trace_enabled(true);
  }
  EXPECT_EQ(trace_span_count(), 0u);
  set_trace_enabled(false);
  clear_trace();
}

TEST(Trace, RingWrapKeepsNewestSpans) {
  clear_trace();
  set_trace_buffer_capacity(64);  // floor-clamped minimum
  // A fresh thread gets the small ring; overflow it.
  std::thread t([] {
    set_trace_enabled(true);
    for (int i = 0; i < 200; ++i) TRACE_INSTANT("wrap", "tick");
    set_trace_enabled(false);
  });
  t.join();
  EXPECT_GE(trace_dropped_count(), 100u);
  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"cat\":\"wrap\""), std::string::npos);
  set_trace_buffer_capacity(8192);
  clear_trace();
}

TEST(Trace, ConcurrentWritersAndExporterAreRaceFree) {
  clear_trace();
  set_trace_enabled(true);
  std::atomic<bool> done{false};
  std::thread exporter([&] {
    while (!done.load(std::memory_order_acquire)) (void)chrome_trace_json();
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([] {
      for (int i = 0; i < 5000; ++i) {
        TRACE_SCOPE("hammer", "span");
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  exporter.join();
  set_trace_enabled(false);
  EXPECT_GT(trace_span_count(), 0u);
  clear_trace();
}

}  // namespace
}  // namespace tsunami::obs
