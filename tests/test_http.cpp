// Tests for the HTTP introspection server (src/obs/http_exporter): loopback
// GETs of every route with response validation, malformed-request rejection
// (bad request line, wrong method, unknown path, oversized header), the
// host:port spec parser, and — the load-bearing one — a concurrent scrape
// loop hammering /metrics and /events THROUGHOUT a 64-event replay whose
// forecasts must remain bit-identical to serial references (the exporter
// must never perturb the service).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/bridge.hpp"
#include "obs/http_exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/engine_cache.hpp"
#include "service/warning_service.hpp"
#include "util/rng.hpp"

namespace tsunami {
namespace {

/// Minimal blocking HTTP client: one request, read to EOF (the server is
/// HTTP/1.0 Connection: close).
struct HttpReply {
  int status = 0;
  std::string body;
  bool ok = false;
};

HttpReply http_raw(std::uint16_t port, const std::string& raw) {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return reply;
  }
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string full;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    full.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (full.compare(0, 9, "HTTP/1.0 ") != 0) return reply;
  reply.status = std::atoi(full.c_str() + 9);
  const std::size_t split = full.find("\r\n\r\n");
  if (split != std::string::npos) reply.body = full.substr(split + 4);
  reply.ok = true;
  return reply;
}

HttpReply http_get(std::uint16_t port, const std::string& target) {
  return http_raw(port, "GET " + target + " HTTP/1.0\r\nHost: t\r\n\r\n");
}

/// Same shared tiny twin + engine cache as tests/test_service.cpp.
class HttpTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto twin = std::make_shared<DigitalTwin>(TwinConfig::tiny());
    RuptureConfig rc;
    Asperity a;
    a.x0 = 0.3 * twin->mesh().length_x();
    a.y0 = 0.5 * twin->mesh().length_y();
    a.rx = 16e3;
    a.ry = 24e3;
    a.peak_uplift = 2.0;
    rc.asperities.push_back(a);
    rc.hypocenter_x = a.x0;
    rc.hypocenter_y = a.y0;
    Rng rng(5);
    event_ = new SyntheticEvent(twin->synthesize(RuptureScenario(rc), rng));
    twin->run_offline(event_->noise);
    cache_ = new EngineCache({.track_map = false});
    cached_ = new std::shared_ptr<const CachedEngine>(cache_->adopt(twin));
  }
  static void TearDownTestSuite() {
    delete cached_;
    delete cache_;
    delete event_;
    cached_ = nullptr;
    cache_ = nullptr;
    event_ = nullptr;
  }

  static std::vector<double> make_obs(unsigned e) {
    std::vector<double> d = event_->d_true;
    Rng rng(1000 + e);
    for (auto& v : d) v += event_->noise.sigma * rng.normal();
    return d;
  }

  static std::size_t nt() { return (*cached_)->engine().num_ticks(); }
  static std::size_t nd() { return (*cached_)->engine().block_size(); }
  static std::span<const double> block(const std::vector<double>& d,
                                       std::size_t t) {
    return std::span<const double>(d).subspan(t * nd(), nd());
  }

  /// An exporter wired exactly like examples/warning_service.cpp, on an
  /// ephemeral port.
  static std::unique_ptr<obs::HttpExporter> make_exporter(
      WarningService& service) {
    auto http = std::make_unique<obs::HttpExporter>(
        obs::HttpExporter::Options{.host = "127.0.0.1", .port = 0});
    http->route("/metrics", [&service](const obs::HttpRequest&) {
      obs::MetricsSnapshot snap;
      service.collect_metrics(snap);
      obs::collect_trace(snap);
      return obs::HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                               obs::prometheus_text(snap)};
    });
    http->route("/healthz", [](const obs::HttpRequest&) {
      return obs::HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
    });
    http->route("/readyz", [](const obs::HttpRequest&) {
      return obs::HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
    });
    http->route("/tracez", [](const obs::HttpRequest&) {
      return obs::HttpResponse{200, "application/json",
                               obs::chrome_trace_json()};
    });
    http->route("/events", [&service](const obs::HttpRequest&) {
      return obs::HttpResponse{200, "application/json", service.events_json()};
    });
    return http;
  }

  static SyntheticEvent* event_;
  static EngineCache* cache_;
  static std::shared_ptr<const CachedEngine>* cached_;
};

SyntheticEvent* HttpTest::event_ = nullptr;
EngineCache* HttpTest::cache_ = nullptr;
std::shared_ptr<const CachedEngine>* HttpTest::cached_ = nullptr;

TEST(HttpExporterTest, ParseHostport) {
  std::string host;
  std::uint16_t port = 0;
  EXPECT_TRUE(obs::HttpExporter::parse_hostport("9109", host, port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9109);
  EXPECT_TRUE(obs::HttpExporter::parse_hostport(":8080", host, port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_TRUE(obs::HttpExporter::parse_hostport("0.0.0.0:80", host, port));
  EXPECT_EQ(host, "0.0.0.0");
  EXPECT_EQ(port, 80);
  EXPECT_FALSE(obs::HttpExporter::parse_hostport("", host, port));
  EXPECT_FALSE(obs::HttpExporter::parse_hostport("host:", host, port));
  EXPECT_FALSE(obs::HttpExporter::parse_hostport("host:abc", host, port));
  EXPECT_FALSE(obs::HttpExporter::parse_hostport("host:70000", host, port));
}

TEST(HttpExporterTest, EphemeralPortStartStopIdempotent) {
  obs::HttpExporter http;
  http.route("/ping", [](const obs::HttpRequest&) {
    return obs::HttpResponse{200, "text/plain", "pong"};
  });
  ASSERT_TRUE(http.start()) << http.last_error();
  EXPECT_GT(http.port(), 0);
  EXPECT_TRUE(http.running());
  EXPECT_TRUE(http.start());  // second start: no-op success

  const HttpReply r = http_get(http.port(), "/ping");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "pong");
  EXPECT_GE(http.requests_served(), 1u);

  http.stop();
  EXPECT_FALSE(http.running());
  http.stop();  // idempotent
}

TEST_F(HttpTest, RoutesServeLiveServiceState) {
  WarningService service({.num_workers = 2});
  auto http = make_exporter(service);
  ASSERT_TRUE(http->start()) << http->last_error();

  const std::vector<double> d = make_obs(1);
  const EventId id = service.open_event(*cached_);
  for (std::size_t t = 0; t < nt(); ++t) service.submit(id, t, block(d, t));
  service.drain();

  const HttpReply health = http_get(http->port(), "/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");
  EXPECT_EQ(http_get(http->port(), "/readyz").status, 200);

  const HttpReply metrics = http_get(http->port(), "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(obs::validate_prometheus(metrics.body), "");
  EXPECT_NE(metrics.body.find("tsunami_service_push_latency_seconds"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("tsunami_slo_time_to_first_forecast_seconds"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("tsunami_slo_alert_lead_time_seconds"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("tsunami_service_forecast_staleness_seconds"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("tsunami_trace_dropped_total"),
            std::string::npos);

  const HttpReply events = http_get(http->port(), "/events");
  ASSERT_TRUE(events.ok);
  EXPECT_EQ(events.status, 200);
  EXPECT_NE(events.body.find("\"events\":["), std::string::npos);
  EXPECT_NE(events.body.find("\"kind\":\"open\""), std::string::npos);
  EXPECT_NE(events.body.find("\"kind\":\"first_tick\""), std::string::npos);

  const HttpReply trace = http_get(http->port(), "/tracez");
  ASSERT_TRUE(trace.ok);
  EXPECT_EQ(trace.status, 200);
  EXPECT_NE(trace.body.find("traceEvents"), std::string::npos);

  (void)service.close_event(id);
}

TEST_F(HttpTest, MalformedRequestsAreRejectedNotCrashed) {
  WarningService service({.num_workers = 1});
  auto http = make_exporter(service);
  ASSERT_TRUE(http->start()) << http->last_error();
  const std::uint16_t port = http->port();

  EXPECT_EQ(http_raw(port, "garbage\r\n\r\n").status, 400);
  EXPECT_EQ(http_raw(port, "GET /\r\n\r\n").status, 400);  // no HTTP version
  EXPECT_EQ(http_raw(port, "POST /metrics HTTP/1.0\r\n\r\n").status, 405);
  EXPECT_EQ(http_get(port, "/no-such-route").status, 404);
  // Oversized header block: bounced with 431 before buffering unboundedly.
  std::string huge = "GET /metrics HTTP/1.0\r\nX-Pad: ";
  huge.append(16384, 'x');
  EXPECT_EQ(http_raw(port, huge).status, 431);
  // The server survives all of the above and still serves.
  EXPECT_EQ(http_get(port, "/healthz").status, 200);
}

// The acceptance criterion: scraping /metrics and /events CONCURRENTLY with
// a 64-event replay must not perturb the service — every per-event forecast
// stays bit-identical to an independent serial replay, and every scrape
// returns valid output.
TEST_F(HttpTest, ConcurrentScrapeDuringReplayIsBitIdentical) {
  constexpr unsigned kEvents = 64;
  constexpr std::size_t kProducers = 4;

  std::vector<std::vector<double>> obs;
  obs.reserve(kEvents);
  for (unsigned e = 0; e < kEvents; ++e) obs.push_back(make_obs(300 + e));

  WarningService service({.num_workers = 4});
  auto http = make_exporter(service);
  ASSERT_TRUE(http->start()) << http->last_error();
  const std::uint16_t port = http->port();

  std::vector<EventId> ids;
  ids.reserve(kEvents);
  for (unsigned e = 0; e < kEvents; ++e)
    ids.push_back(service.open_event(*cached_));

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::atomic<int> scrape_failures{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const HttpReply m = http_get(port, "/metrics");
      if (!m.ok || m.status != 200 || !obs::validate_prometheus(m.body).empty())
        scrape_failures.fetch_add(1, std::memory_order_relaxed);
      const HttpReply ev = http_get(port, "/events");
      if (!ev.ok || ev.status != 200 ||
          ev.body.find("\"events\":[") == std::string::npos)
        scrape_failures.fetch_add(1, std::memory_order_relaxed);
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t t = 0; t < nt(); ++t)
        for (unsigned e = static_cast<unsigned>(p); e < kEvents;
             e += kProducers)
          service.submit(ids[e], t, block(obs[e], t));
    });
  }
  for (auto& th : producers) th.join();
  service.drain();
  done.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_GT(scrapes.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(scrape_failures.load(std::memory_order_relaxed), 0);

  const StreamingEngine& eng = (*cached_)->engine();
  for (unsigned e = 0; e < kEvents; ++e) {
    StreamingAssimilator ref = eng.start();
    for (std::size_t t = 0; t < nt(); ++t) ref.push(t, block(obs[e], t));
    const Forecast expect = ref.forecast();
    const EventSnapshot got = service.close_event(ids[e]);
    ASSERT_TRUE(got.complete) << "event " << e;
    EXPECT_EQ(got.forecast.mean, expect.mean) << "event " << e;
    EXPECT_EQ(got.forecast.stddev, expect.stddev) << "event " << e;
    EXPECT_EQ(got.forecast.lower95, expect.lower95) << "event " << e;
    EXPECT_EQ(got.forecast.upper95, expect.upper95) << "event " << e;
  }
}

}  // namespace
}  // namespace tsunami
