// Integration tests of the discrete p2o map: the block Toeplitz structure
// (time-shift invariance), the exactness of the adjoint-built map against
// direct forward propagation, and forward/adjoint inner-product consistency.
// These are the properties the whole real-time framework rests on.

#include <gtest/gtest.h>

#include <cmath>

#include "core/p2o_builder.hpp"
#include "linalg/blas.hpp"
#include "util/rng.hpp"
#include "wave/adjoint.hpp"

namespace tsunami {
namespace {

struct P2oSetup {
  P2oSetup() : bathy(BathymetryConfig{}), mesh(bathy, 3, 3, 2), model(mesh, 2) {
    obs = std::make_unique<ObservationOperator>(
        ObservationOperator::seafloor_sensors(
            model, sensor_grid(3, 20e3, 100e3, 40e3, 210e3)));
    grid.num_intervals = 6;
    grid.substeps = 4;
    grid.dt = model.cfl_timestep(0.4);
    nm = model.source_map().parameter_dim();
    nd = obs->num_outputs();
  }

  Bathymetry bathy;
  HexMesh mesh;
  AcousticGravityModel model;
  std::unique_ptr<ObservationOperator> obs;
  TimeGrid grid;
  std::size_t nm = 0, nd = 0;
};

TEST(TimeGrid, ObservationTimesAreIntervalEnds) {
  TimeGrid g{.num_intervals = 4, .substeps = 5, .dt = 0.2};
  EXPECT_DOUBLE_EQ(g.interval(), 1.0);
  EXPECT_DOUBLE_EQ(g.total_time(), 4.0);
  const auto t = g.observation_times();
  ASSERT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t[0], 1.0);
  EXPECT_DOUBLE_EQ(t[3], 4.0);
}

TEST(ForwardP2o, LinearInParameters) {
  P2oSetup s;
  Rng rng(1);
  const auto m1 = rng.normal_vector(s.nm * s.grid.num_intervals);
  const auto m2 = rng.normal_vector(s.nm * s.grid.num_intervals);
  std::vector<double> combo(m1.size());
  for (std::size_t i = 0; i < m1.size(); ++i) combo[i] = 2.0 * m1[i] - m2[i];

  std::vector<double> d1(s.nd * s.grid.num_intervals),
      d2(s.nd * s.grid.num_intervals), dc(s.nd * s.grid.num_intervals);
  forward_p2o_apply(s.model, *s.obs, s.grid, m1, std::span<double>(d1));
  forward_p2o_apply(s.model, *s.obs, s.grid, m2, std::span<double>(d2));
  forward_p2o_apply(s.model, *s.obs, s.grid, combo, std::span<double>(dc));
  for (std::size_t i = 0; i < dc.size(); ++i)
    EXPECT_NEAR(dc[i], 2.0 * d1[i] - d2[i],
                1e-10 * (std::abs(dc[i]) + 1.0));
}

TEST(ForwardP2o, CausalityZeroBeforeSource) {
  // A source acting only in the last interval cannot affect earlier data.
  P2oSetup s;
  Rng rng(2);
  std::vector<double> m(s.nm * s.grid.num_intervals, 0.0);
  for (std::size_t r = 0; r < s.nm; ++r)
    m[(s.grid.num_intervals - 1) * s.nm + r] = rng.normal();
  std::vector<double> d(s.nd * s.grid.num_intervals);
  forward_p2o_apply(s.model, *s.obs, s.grid, m, std::span<double>(d));
  for (std::size_t i = 0; i + 1 < s.grid.num_intervals; ++i)
    for (std::size_t j = 0; j < s.nd; ++j)
      EXPECT_DOUBLE_EQ(d[i * s.nd + j], 0.0);
}

TEST(ForwardP2o, TimeShiftInvariance) {
  // The response to a source in interval k is the k-shifted response to the
  // same source in interval 0 — the block Toeplitz property (SecV-A).
  P2oSetup s;
  Rng rng(3);
  const auto spatial = rng.normal_vector(s.nm);
  const std::size_t nt = s.grid.num_intervals;

  std::vector<double> m0(s.nm * nt, 0.0), m2(s.nm * nt, 0.0);
  std::copy(spatial.begin(), spatial.end(), m0.begin());
  std::copy(spatial.begin(), spatial.end(),
            m2.begin() + static_cast<std::ptrdiff_t>(2 * s.nm));

  std::vector<double> d0(s.nd * nt), d2(s.nd * nt);
  forward_p2o_apply(s.model, *s.obs, s.grid, m0, std::span<double>(d0));
  forward_p2o_apply(s.model, *s.obs, s.grid, m2, std::span<double>(d2));

  double scale = amax(d0) + 1e-30;
  for (std::size_t i = 0; i + 2 < nt; ++i)
    for (std::size_t j = 0; j < s.nd; ++j)
      EXPECT_NEAR(d2[(i + 2) * s.nd + j], d0[i * s.nd + j], 1e-11 * scale);
}

TEST(AdjointP2o, ParallelOuterLoopBitIdenticalToSerial) {
  // The opt-in Phase 1 parallelization must not change a single bit: each
  // adjoint solve is independent, deterministic, and writes disjoint rows.
  P2oSetup s;
  const P2oMap serial = build_p2o_map(s.model, *s.obs, s.grid);
  TimerRegistry timers;
  const P2oMap parallel = build_p2o_map(s.model, *s.obs, s.grid, &timers,
                                        {.parallel_rows = true});
  ASSERT_EQ(parallel.blocks.size(), serial.blocks.size());
  for (std::size_t i = 0; i < serial.blocks.size(); ++i)
    ASSERT_EQ(parallel.blocks[i], serial.blocks[i]) << "block entry " << i;
  // Parallel mode records one aggregate sample, not per-solve samples.
  EXPECT_EQ(timers.count("Adjoint p2o"), 0);
  EXPECT_EQ(timers.count("Adjoint p2o (parallel)"), 1);
}

TEST(AdjointP2o, RowsReproduceForwardMap) {
  // Build F from one adjoint solve per sensor, then check F m == forward(m)
  // to near machine precision — the discrete adjoint is exact.
  P2oSetup s;
  const P2oMap map = build_p2o_map(s.model, *s.obs, s.grid);
  Rng rng(4);
  const auto m = rng.normal_vector(s.nm * s.grid.num_intervals);

  std::vector<double> d_forward(s.nd * s.grid.num_intervals);
  forward_p2o_apply(s.model, *s.obs, s.grid, m, std::span<double>(d_forward));

  std::vector<double> d_toeplitz(s.nd * s.grid.num_intervals);
  map.toeplitz->apply(m, std::span<double>(d_toeplitz));

  const double scale = amax(d_forward) + 1e-30;
  for (std::size_t i = 0; i < d_forward.size(); ++i)
    EXPECT_NEAR(d_toeplitz[i], d_forward[i], 1e-9 * scale) << "entry " << i;
}

TEST(AdjointP2o, ForwardAdjointInnerProductIdentity) {
  // <F m, d> == <m, F^T d> with F applied by forward propagation and F^T by
  // the reverse-sweep adjoint.
  P2oSetup s;
  Rng rng(5);
  const auto m = rng.normal_vector(s.nm * s.grid.num_intervals);
  const auto d = rng.normal_vector(s.nd * s.grid.num_intervals);

  std::vector<double> fm(s.nd * s.grid.num_intervals);
  forward_p2o_apply(s.model, *s.obs, s.grid, m, std::span<double>(fm));
  std::vector<double> ftd(s.nm * s.grid.num_intervals);
  adjoint_p2o_transpose_apply(s.model, *s.obs, s.grid, d,
                              std::span<double>(ftd));

  const double lhs = dot(fm, d);
  const double rhs = dot(m, ftd);
  EXPECT_NEAR(lhs, rhs, 1e-9 * std::abs(lhs) + 1e-12);
}

TEST(AdjointP2o, TransposeApplyMatchesToeplitzTranspose) {
  P2oSetup s;
  const P2oMap map = build_p2o_map(s.model, *s.obs, s.grid);
  Rng rng(6);
  const auto d = rng.normal_vector(s.nd * s.grid.num_intervals);

  std::vector<double> ft_pde(s.nm * s.grid.num_intervals);
  adjoint_p2o_transpose_apply(s.model, *s.obs, s.grid, d,
                              std::span<double>(ft_pde));
  std::vector<double> ft_fft(s.nm * s.grid.num_intervals);
  map.toeplitz->apply_transpose(d, std::span<double>(ft_fft));

  const double scale = amax(ft_pde) + 1e-30;
  for (std::size_t i = 0; i < ft_pde.size(); ++i)
    EXPECT_NEAR(ft_fft[i], ft_pde[i], 1e-9 * scale);
}

TEST(AdjointP2o, FirstBlockCapturesImmediateResponse) {
  // A sensor collocated with a strong source must register a nonzero
  // same-interval response (F_1 != 0) — the diagonal blocks matter.
  P2oSetup s;
  const P2oMap map = build_p2o_map(s.model, *s.obs, s.grid);
  double first_block_norm = 0.0;
  for (std::size_t i = 0; i < s.nd * s.nm; ++i)
    first_block_norm = std::max(first_block_norm, std::abs(map.blocks[i]));
  EXPECT_GT(first_block_norm, 0.0);
}

TEST(AdjointP2o, TimersRecordSetupAndSolve) {
  P2oSetup s;
  TimerRegistry timers;
  (void)adjoint_p2o_rows(s.model, *s.obs, 0, s.grid, &timers);
  EXPECT_EQ(timers.count("Setup"), 1);
  EXPECT_EQ(timers.count("Adjoint p2o"), 1);
  EXPECT_GT(timers.total("Adjoint p2o"), 0.0);
}

TEST(BuildP2oMap, DimensionsMatchProblem) {
  P2oSetup s;
  const P2oMap map = build_p2o_map(s.model, *s.obs, s.grid);
  EXPECT_EQ(map.nrows, s.nd);
  EXPECT_EQ(map.ncols, s.nm);
  EXPECT_EQ(map.nt, s.grid.num_intervals);
  EXPECT_EQ(map.toeplitz->input_dim(), s.nm * s.grid.num_intervals);
  EXPECT_EQ(map.toeplitz->output_dim(), s.nd * s.grid.num_intervals);
}

}  // namespace
}  // namespace tsunami
