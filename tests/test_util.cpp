// Unit tests for the utility layer: timers, tables, memory tracking, RNG.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "util/memory_tracker.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace tsunami {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double t = w.seconds();
  EXPECT_GE(t, 0.015);
  EXPECT_LT(t, 5.0);
}

TEST(Stopwatch, ResetRestartsClock) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  w.reset();
  EXPECT_LT(w.seconds(), 0.010);
}

TEST(TimerRegistry, AccumulatesTotalsAndCounts) {
  TimerRegistry reg;
  reg.add("solve", 1.5);
  reg.add("solve", 0.5);
  reg.add("io", 0.25);
  EXPECT_DOUBLE_EQ(reg.total("solve"), 2.0);
  EXPECT_EQ(reg.count("solve"), 2);
  EXPECT_DOUBLE_EQ(reg.mean("solve"), 1.0);
  EXPECT_DOUBLE_EQ(reg.total("io"), 0.25);
  EXPECT_DOUBLE_EQ(reg.grand_total(), 2.25);
}

TEST(TimerRegistry, UnknownTimerIsZero) {
  TimerRegistry reg;
  EXPECT_DOUBLE_EQ(reg.total("nope"), 0.0);
  EXPECT_EQ(reg.count("nope"), 0);
  EXPECT_DOUBLE_EQ(reg.mean("nope"), 0.0);
}

TEST(TimerRegistry, PreservesInsertionOrder) {
  TimerRegistry reg;
  reg.add("Initialization", 0.1);
  reg.add("Setup", 0.2);
  reg.add("Adjoint p2o", 0.3);
  reg.add("I/O", 0.4);
  reg.add("Setup", 0.1);
  const auto& names = reg.names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "Initialization");
  EXPECT_EQ(names[1], "Setup");
  EXPECT_EQ(names[2], "Adjoint p2o");
  EXPECT_EQ(names[3], "I/O");
}

// Concurrent sessions (src/service/) record into shared registries; the
// registry must not corrupt under parallel adds. 8 threads x 1000 adds
// across overlapping keys must land exactly.
TEST(TimerRegistry, ConcurrentAddsAreAllCounted) {
  TimerRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kAdds = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kAdds; ++i)
        reg.add(t % 2 == 0 ? "even" : "odd", 0.001);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.count("even"), kThreads / 2 * kAdds);
  EXPECT_EQ(reg.count("odd"), kThreads / 2 * kAdds);
  EXPECT_NEAR(reg.grand_total(), kThreads * kAdds * 0.001, 1e-9);
  EXPECT_EQ(reg.names().size(), 2u);
}

TEST(Stats, PercentileInterpolatesBetweenRanks) {
  const std::vector<double> s{1.0, 2.0, 3.0, 4.0};  // sorted
  EXPECT_DOUBLE_EQ(percentile_sorted(s, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(s, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(s, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile_sorted(s, 25.0), 1.75);
  // The unsorted overload sorts a copy.
  const std::vector<double> shuffled{3.0, 1.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(shuffled, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 99.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 50.0), 0.0);
  EXPECT_THROW((void)percentile(s, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(s, 100.5), std::invalid_argument);
}

TEST(Stats, LatencySummaryIsOrderedAndComplete) {
  std::vector<double> sample;
  for (int i = 100; i >= 1; --i) sample.push_back(i * 1e-6);
  const LatencySummary s = summarize_latencies(sample);
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean, 50.5e-6, 1e-12);
  EXPECT_DOUBLE_EQ(s.max, 100e-6);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_NEAR(s.p50, 50.5e-6, 1e-12);
  const LatencySummary empty = summarize_latencies({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.max, 0.0);
}

// percentile() now selects with nth_element instead of sorting; it must be
// indistinguishable from the sorted interpolating estimator on arbitrary
// (ties, duplicates, adversarial-order) samples.
TEST(Stats, SelectionPercentileMatchesSortedEstimator) {
  Rng rng(1234);
  for (const std::size_t n : {1u, 2u, 3u, 17u, 100u, 1001u}) {
    std::vector<double> sample(n);
    for (auto& v : sample) v = std::floor(rng.uniform() * 32.0) * 1e-6;
    std::vector<double> sorted = sample;
    std::sort(sorted.begin(), sorted.end());
    for (const double q : {0.0, 1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
      EXPECT_DOUBLE_EQ(percentile(sample, q), percentile_sorted(sorted, q))
          << "n=" << n << " q=" << q;
    }
    const LatencySummary s = summarize_latencies(sample);
    EXPECT_DOUBLE_EQ(s.p50, percentile_sorted(sorted, 50.0));
    EXPECT_DOUBLE_EQ(s.p95, percentile_sorted(sorted, 95.0));
    EXPECT_DOUBLE_EQ(s.p99, percentile_sorted(sorted, 99.0));
    EXPECT_DOUBLE_EQ(s.max, sorted.back());
  }
}

TEST(ScopedTimer, RecordsOnDestruction) {
  TimerRegistry reg;
  {
    ScopedTimer t(reg, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(reg.total("scope"), 0.0);
  EXPECT_EQ(reg.count("scope"), 1);
}

TEST(TextTable, AlignsColumnsAndCountsRows) {
  TextTable t({"Phase", "Time"});
  t.row().cell("form F").cell(12.5, 1);
  t.row().cell("factorize K").cell(2.0, 1);
  const std::string s = t.str();
  EXPECT_NE(s.find("Phase"), std::string::npos);
  EXPECT_NE(s.find("form F"), std::string::npos);
  EXPECT_NE(s.find("12.5"), std::string::npos);
  EXPECT_NE(s.find("factorize K"), std::string::npos);
}

TEST(TextTable, CsvOutputHasHeaderAndRows) {
  TextTable t({"a", "b"});
  t.row().cell(1L).cell(2L);
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(FormatDuration, PicksSensibleUnits) {
  EXPECT_NE(format_duration(3e-9).find("ns"), std::string::npos);
  EXPECT_NE(format_duration(5e-6).find("us"), std::string::npos);
  EXPECT_NE(format_duration(2e-3).find("ms"), std::string::npos);
  EXPECT_NE(format_duration(1.5).find(" s"), std::string::npos);
  EXPECT_NE(format_duration(600.0).find("min"), std::string::npos);
  EXPECT_NE(format_duration(7201.0).find(" h"), std::string::npos);
}

TEST(FormatBytes, PicksSensibleUnits) {
  EXPECT_NE(format_bytes(512.0).find(" B"), std::string::npos);
  EXPECT_NE(format_bytes(2048.0).find("KiB"), std::string::npos);
  EXPECT_NE(format_bytes(3.0 * 1024 * 1024).find("MiB"), std::string::npos);
  EXPECT_NE(format_bytes(5.0 * 1024 * 1024 * 1024).find("GiB"),
            std::string::npos);
}

TEST(MemoryTracker, TracksCurrentAndPeak) {
  MemoryTracker mt;
  mt.add("geometry", 1000);
  mt.add("state", 500);
  EXPECT_EQ(mt.total_bytes(), 1500u);
  EXPECT_EQ(mt.peak_bytes(), 1500u);
  mt.release("state", 500);
  EXPECT_EQ(mt.total_bytes(), 1000u);
  EXPECT_EQ(mt.peak_bytes(), 1500u);
  EXPECT_EQ(mt.bytes("geometry"), 1000u);
}

TEST(MemoryTracker, ReleaseClampsAtZero) {
  MemoryTracker mt;
  mt.add("x", 100);
  mt.release("x", 1000);
  EXPECT_EQ(mt.bytes("x"), 0u);
  EXPECT_EQ(mt.total_bytes(), 0u);
}

TEST(Rng, IsDeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.normal(), b.normal());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    if (a.normal() != b.normal()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NormalMomentsAreSane) {
  Rng rng(7);
  const auto v = rng.normal_vector(20000);
  double mean = 0.0, var = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(WriteCsv, RoundTripsColumns) {
  const std::string path = "/tmp/tsunami_test_util.csv";
  write_csv(path, {"t", "v"}, {{0.0, 1.0, 2.0}, {10.0, 20.0, 30.0}});
  std::ifstream f(path);
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "t,v");
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "0,10");
}

TEST(WriteCsv, RejectsMismatchedColumns) {
  EXPECT_THROW(write_csv("/tmp/x.csv", {"a"}, {{1.0}, {2.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tsunami
