// Tests for the kinematic rupture scenario generator.

#include <gtest/gtest.h>

#include <cmath>

#include "fem/boundary_ops.hpp"
#include "fem/h1_space.hpp"
#include "mesh/hex_mesh.hpp"
#include "rupture/scenario.hpp"

namespace tsunami {
namespace {

RuptureConfig single_asperity() {
  RuptureConfig cfg;
  Asperity a;
  a.x0 = 50e3;
  a.y0 = 60e3;
  a.rx = 20e3;
  a.ry = 30e3;
  a.peak_uplift = 2.0;
  cfg.asperities.push_back(a);
  cfg.hypocenter_x = 50e3;
  cfg.hypocenter_y = 60e3;
  cfg.rupture_speed = 2000.0;
  cfg.rise_time = 10.0;
  return cfg;
}

TEST(RuptureScenario, FinalUpliftPeaksAtAsperityCenter) {
  const RuptureScenario sc(single_asperity());
  EXPECT_NEAR(sc.final_uplift(50e3, 60e3), 2.0, 1e-12);
  EXPECT_GT(sc.final_uplift(50e3, 60e3), sc.final_uplift(60e3, 60e3));
  // Compact support: zero outside the ellipse.
  EXPECT_DOUBLE_EQ(sc.final_uplift(50e3 + 21e3, 60e3), 0.0);
  EXPECT_DOUBLE_EQ(sc.final_uplift(50e3, 60e3 + 31e3), 0.0);
}

TEST(RuptureScenario, OnsetTimeGrowsWithHypocentralDistance) {
  const RuptureScenario sc(single_asperity());
  EXPECT_DOUBLE_EQ(sc.onset_time(50e3, 60e3), 0.0);
  EXPECT_NEAR(sc.onset_time(50e3 + 20e3, 60e3), 10.0, 1e-9);  // 20 km @ 2 km/s
  EXPECT_GT(sc.onset_time(90e3, 60e3), sc.onset_time(70e3, 60e3));
}

TEST(RuptureScenario, VelocityIsZeroBeforeOnsetAndAfterRise) {
  const RuptureScenario sc(single_asperity());
  const double x = 55e3, y = 60e3;
  const double t0 = sc.onset_time(x, y);
  EXPECT_DOUBLE_EQ(sc.uplift_velocity(x, y, t0 - 1.0), 0.0);
  EXPECT_GT(sc.uplift_velocity(x, y, t0 + 5.0), 0.0);
  EXPECT_DOUBLE_EQ(sc.uplift_velocity(x, y, t0 + 11.0), 0.0);
}

TEST(RuptureScenario, UpliftRampsFromZeroToFinal) {
  const RuptureScenario sc(single_asperity());
  const double x = 52e3, y = 58e3;
  const double t0 = sc.onset_time(x, y);
  EXPECT_DOUBLE_EQ(sc.uplift(x, y, t0), 0.0);
  const double mid = sc.uplift(x, y, t0 + 5.0);
  const double fin = sc.uplift(x, y, t0 + 20.0);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, fin);
  EXPECT_NEAR(fin, sc.final_uplift(x, y), 1e-12);
}

TEST(RuptureScenario, VelocityIntegratesToFinalUplift) {
  const RuptureScenario sc(single_asperity());
  const double x = 48e3, y = 63e3;
  double integral = 0.0;
  const double dt = 0.05;
  for (double t = 0.0; t < 60.0; t += dt)
    integral += dt * sc.uplift_velocity(x, y, t + 0.5 * dt);
  EXPECT_NEAR(integral, sc.final_uplift(x, y),
              1e-3 * std::abs(sc.final_uplift(x, y)) + 1e-9);
}

TEST(MarginWideScenario, SpansTheMargin) {
  const auto cfg = margin_wide_scenario(150e3, 250e3, 8.7, 7);
  ASSERT_GE(cfg.asperities.size(), 3u);
  // Asperities should be distributed along strike (y), covering > half.
  double ymin = 1e30, ymax = -1e30;
  for (const auto& a : cfg.asperities) {
    ymin = std::min(ymin, a.y0);
    ymax = std::max(ymax, a.y0);
    EXPECT_GT(a.peak_uplift, 0.0);
  }
  EXPECT_GT(ymax - ymin, 0.4 * 250e3);
}

TEST(MarginWideScenario, MagnitudeScalesUplift) {
  const auto small = margin_wide_scenario(150e3, 250e3, 8.0, 3);
  const auto large = margin_wide_scenario(150e3, 250e3, 9.0, 3);
  double peak_small = 0.0, peak_large = 0.0;
  for (const auto& a : small.asperities)
    peak_small = std::max(peak_small, a.peak_uplift);
  for (const auto& a : large.asperities)
    peak_large = std::max(peak_large, a.peak_uplift);
  EXPECT_GT(peak_large, 2.0 * peak_small);
}

TEST(MarginWideScenario, DeterministicForFixedSeed) {
  const auto a = margin_wide_scenario(150e3, 250e3, 8.7, 42);
  const auto b = margin_wide_scenario(150e3, 250e3, 8.7, 42);
  ASSERT_EQ(a.asperities.size(), b.asperities.size());
  for (std::size_t i = 0; i < a.asperities.size(); ++i)
    EXPECT_DOUBLE_EQ(a.asperities[i].peak_uplift, b.asperities[i].peak_uplift);
}

TEST(RuptureScenario, SampleMatchesPointwiseEvaluation) {
  const Bathymetry bathy;
  const HexMesh mesh(bathy, 3, 4, 2);
  const BasisTables tables(2);
  const H1Space space(mesh, tables);
  const BottomSourceMap grid_map(space);

  const RuptureScenario sc(single_asperity());
  TimeGrid time{.num_intervals = 5, .substeps = 3, .dt = 2.0};
  const auto m = sc.sample(grid_map, time);
  ASSERT_EQ(m.size(), grid_map.parameter_dim() * 5);
  for (std::size_t i = 0; i < 5; ++i) {
    const double t_mid = (static_cast<double>(i) + 0.5) * time.interval();
    for (std::size_t r = 0; r < grid_map.parameter_dim(); ++r) {
      const auto xy = grid_map.node_xy(r);
      EXPECT_DOUBLE_EQ(m[i * grid_map.parameter_dim() + r],
                       sc.uplift_velocity(xy[0], xy[1], t_mid));
    }
  }
}

}  // namespace
}  // namespace tsunami
