#include "prior/matern_prior.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace tsunami {

MaternPrior::MaternPrior(std::size_t nx1, std::size_t ny1, double hx,
                         double hy, const MaternPriorConfig& config)
    : nx1_(nx1),
      ny1_(ny1),
      n_(nx1 * ny1),
      cfg_(config),
      a_(nx1 * ny1, nx1) {
  if (nx1 < 2 || ny1 < 2)
    throw std::invalid_argument("MaternPrior: grid too small");

  // Lindgren (2011) / hIPPYlib calibration for the 2-D bilaplacian prior
  // C = (delta M + gamma K)^{-1} M (delta M + gamma K)^{-1}, the SPDE
  //   gamma (kappa^2 - Laplacian) u = W,  kappa^2 = delta / gamma,
  // whose solution is Matern with nu = 1 in d = 2:
  //   rho = sqrt(8 nu) / kappa,   sigma^2 = 1 / (4 pi gamma^2 kappa^2).
  const double rho = cfg_.correlation_length;
  const double sigma = cfg_.sigma;
  const double kappa = std::sqrt(8.0) / rho;
  gamma_ = 1.0 / (2.0 * sigma * std::sqrt(std::numbers::pi) * kappa);
  delta_ = gamma_ * kappa * kappa;

  // Lumped mass (cell areas) and 5-point stiffness on the structured grid.
  mass_.assign(n_, 0.0);
  for (std::size_t b = 0; b < ny1_; ++b)
    for (std::size_t a = 0; a < nx1_; ++a) {
      const double wx = (a == 0 || a + 1 == nx1_) ? 0.5 : 1.0;
      const double wy = (b == 0 || b + 1 == ny1_) ? 0.5 : 1.0;
      mass_[a + nx1_ * b] = wx * wy * hx * hy;
    }
  sqrt_mass_.resize(n_);
  inv_mass_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    sqrt_mass_[i] = std::sqrt(mass_[i]);
    inv_mass_[i] = 1.0 / mass_[i];
  }

  // A = delta M + gamma K with K the standard finite-difference/bilinear-FE
  // stiffness: x-neighbours couple with -hy/hx, y-neighbours with -hx/hy
  // (boundary-weighted like the mass).
  for (std::size_t i = 0; i < n_; ++i) a_.add(i, i, delta_ * mass_[i]);
  for (std::size_t b = 0; b < ny1_; ++b)
    for (std::size_t a = 0; a + 1 < nx1_; ++a) {
      const std::size_t i = a + nx1_ * b;
      const std::size_t j = i + 1;
      const double wy = (b == 0 || b + 1 == ny1_) ? 0.5 : 1.0;
      const double k = gamma_ * wy * hy / hx;
      a_.add(i, i, k);
      a_.add(j, j, k);
      a_.add(i, j, -k);
    }
  for (std::size_t b = 0; b + 1 < ny1_; ++b)
    for (std::size_t a = 0; a < nx1_; ++a) {
      const std::size_t i = a + nx1_ * b;
      const std::size_t j = i + nx1_;
      const double wx = (a == 0 || a + 1 == nx1_) ? 0.5 : 1.0;
      const double k = gamma_ * wx * hx / hy;
      a_.add(i, i, k);
      a_.add(j, j, k);
      a_.add(i, j, -k);
    }
  chol_ = std::make_unique<BandedCholesky>(a_);
}

void MaternPrior::apply(std::span<const double> x, std::span<double> y) const {
  if (x.size() != n_ || y.size() != n_)
    throw std::invalid_argument("MaternPrior::apply: size mismatch");
  std::copy(x.begin(), x.end(), y.begin());
  chol_->solve_in_place(y);
  for (std::size_t i = 0; i < n_; ++i) y[i] *= mass_[i];
  chol_->solve_in_place(y);
}

void MaternPrior::apply_inverse(std::span<const double> x,
                                std::span<double> y) const {
  if (x.size() != n_ || y.size() != n_)
    throw std::invalid_argument("MaternPrior::apply_inverse: size mismatch");
  std::vector<double> t(n_);
  a_.multiply(x, std::span<double>(t));
  for (std::size_t i = 0; i < n_; ++i) t[i] *= inv_mass_[i];
  a_.multiply(t, y);
}

void MaternPrior::apply_sqrt(std::span<const double> x,
                             std::span<double> y) const {
  if (x.size() != n_ || y.size() != n_)
    throw std::invalid_argument("MaternPrior::apply_sqrt: size mismatch");
  for (std::size_t i = 0; i < n_; ++i) y[i] = sqrt_mass_[i] * x[i];
  chol_->solve_in_place(y);
}

void MaternPrior::apply_time_blocks(std::span<const double> x,
                                    std::span<double> y,
                                    std::size_t nt) const {
  if (x.size() != n_ * nt || y.size() != n_ * nt)
    throw std::invalid_argument("MaternPrior::apply_time_blocks: mismatch");
  parallel_for(nt, [&](std::size_t t) {
    apply(x.subspan(t * n_, n_), y.subspan(t * n_, n_));
  });
}

void MaternPrior::apply_time_blocks_columns(const Matrix& x_cols,
                                            Matrix& y_cols,
                                            std::size_t nt) const {
  const std::size_t rows = n_ * nt;
  if (x_cols.rows() != rows)
    throw std::invalid_argument(
        "MaternPrior::apply_time_blocks_columns: row mismatch");
  const std::size_t ncols = x_cols.cols();
  if (y_cols.rows() != rows || y_cols.cols() != ncols)
    y_cols = Matrix(rows, ncols);
  parallel_for_min(ncols, 2, [&](std::size_t v) {
    // Persistent per-thread staging: the banded solves want contiguous
    // columns, the matrices are row-major. thread_local outlives the call,
    // so batched callers never re-allocate it.
    static thread_local std::vector<double> col, out;
    col.resize(rows);
    out.resize(rows);
    for (std::size_t i = 0; i < rows; ++i) col[i] = x_cols(i, v);
    apply_time_blocks(col, std::span<double>(out), nt);
    for (std::size_t i = 0; i < rows; ++i) y_cols(i, v) = out[i];
  });
}

double MaternPrior::pointwise_variance(std::size_t r) const {
  if (r >= n_) throw std::out_of_range("MaternPrior::pointwise_variance");
  // C_rr = e_r^T A^{-1} M A^{-1} e_r = || M^{1/2} A^{-1} e_r ||^2.
  std::vector<double> e(n_, 0.0);
  e[r] = 1.0;
  chol_->solve_in_place(std::span<double>(e));
  double s = 0.0;
  for (std::size_t i = 0; i < n_; ++i) s += mass_[i] * e[i] * e[i];
  return s;
}

std::vector<double> MaternPrior::sample(Rng& rng) const {
  std::vector<double> white = rng.normal_vector(n_);
  std::vector<double> out(n_);
  apply_sqrt(white, std::span<double>(out));
  return out;
}

}  // namespace tsunami
