#pragma once

// Gaussian Matern-type prior on the spatiotemporal seafloor velocity.
//
// Following the paper (SecIV): Gamma_prior is block diagonal in time, each
// spatial block the inverse of a squared elliptic operator (a Matern
// covariance). We use the standard bilaplacian construction of large-scale
// Bayesian inversion (hIPPYlib / [17, 18]):
//     C = A^{-1} M A^{-1},   A = delta * M + gamma * K,
// on the 2-D seafloor parameter grid, with M the lumped mass and K the
// 5-point stiffness of the grid. Then
//     C^{1/2} = A^{-1} M^{1/2}   (M diagonal),
// giving exact samples and pointwise variances. The correlation length is
// rho ~ sqrt(8 (gamma/delta)) and the marginal std dev is controlled by
// sigma; delta and gamma are calibrated from (sigma, rho) per Lindgren et
// al. (2011) as used by hIPPYlib.
//
// A is banded with bandwidth = grid width, so a banded Cholesky gives exact
// direct solves — the cuDSS stand-in (DESIGN.md).

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "linalg/banded_cholesky.hpp"
#include "linalg/dense.hpp"
#include "util/rng.hpp"

namespace tsunami {

struct MaternPriorConfig {
  double sigma = 1.0;               ///< pointwise marginal std dev target
  double correlation_length = 3e4;  ///< [m]
};

/// Spatial prior covariance block on a structured (nx1 x ny1) grid with
/// spacings (hx, hy). Time blocks are iid copies of this block.
class MaternPrior {
 public:
  MaternPrior(std::size_t nx1, std::size_t ny1, double hx, double hy,
              const MaternPriorConfig& config = {});

  [[nodiscard]] std::size_t dim() const { return n_; }

  /// y = C x (one spatial block): two banded solves + diagonal mass.
  void apply(std::span<const double> x, std::span<double> y) const;

  /// y = C^{-1} x = A M^{-1} A x (the regularization operator).
  void apply_inverse(std::span<const double> x, std::span<double> y) const;

  /// y = C^{1/2} x = A^{-1} M^{1/2} x; maps white noise to a prior sample.
  void apply_sqrt(std::span<const double> x, std::span<double> y) const;

  /// Block-diagonal-in-time application to a time-major space-time vector
  /// with `nt` blocks (pool-parallel over blocks).
  void apply_time_blocks(std::span<const double> x, std::span<double> y,
                         std::size_t nt) const;

  /// Column-wise apply_time_blocks over a row-major (dim * nt) x ncols
  /// matrix: y_cols(:, v) = blockdiag(C) x_cols(:, v), parallel over
  /// columns. The gather/scatter staging each column needs (the banded
  /// solves want contiguous vectors) lives in persistent per-thread
  /// buffers, so repeated batched calls — the K-forming loop, Phase 3's
  /// V/W, the streaming precompute — do not allocate after warmup.
  /// y_cols is resized only if its shape differs.
  void apply_time_blocks_columns(const Matrix& x_cols, Matrix& y_cols,
                                 std::size_t nt) const;

  /// Exact pointwise prior variance at grid node r: (C)_rr.
  [[nodiscard]] double pointwise_variance(std::size_t r) const;

  /// Draw one spatial sample (correlated Gaussian field).
  [[nodiscard]] std::vector<double> sample(Rng& rng) const;

  [[nodiscard]] const MaternPriorConfig& config() const { return cfg_; }
  [[nodiscard]] double delta() const { return delta_; }
  [[nodiscard]] double gamma() const { return gamma_; }

 private:
  std::size_t nx1_, ny1_, n_;
  MaternPriorConfig cfg_;
  double delta_ = 0.0, gamma_ = 0.0;
  std::vector<double> mass_;       ///< lumped mass diagonal (cell areas)
  std::vector<double> sqrt_mass_;
  std::vector<double> inv_mass_;
  BandedMatrix a_;                 ///< delta M + gamma K
  std::unique_ptr<BandedCholesky> chol_;
};

}  // namespace tsunami
