#pragma once

// EventSession: the per-event half of the warning service.
//
// One session wraps one StreamingAssimilator (cheap, a few vectors of
// per-event state) over a shared CachedEngine (the expensive, immutable
// per-network slabs). Around the assimilator it adds what a live feed
// needs and the library layer deliberately does not have:
//
//   * an ingest queue of (tick, d_block) observations with per-session
//     REORDERING — packets from a seafloor cable arrive out of order, but
//     the prefix-Cholesky update is order-dependent, so blocks are buffered
//     until the next expected tick is available and assimilated strictly
//     in tick order (which is also what makes a concurrent replay
//     bit-identical to a serial one);
//   * a BOUNDED queue with a backpressure policy: block the producer
//     (deployment default — the transport should feel the stall) or reject
//     with ServiceOverloaded (load-shedding);
//   * a debounced ALERT latch (peak forecast mean above threshold for K
//     consecutive ticks, the examples' warning-center rule);
//   * a mutex-guarded SNAPSHOT of the latest forecast + alert state, so
//     operator dashboards read without touching assimilator internals;
//   * an optional lifecycle JOURNAL (EventJournal, owned by the service):
//     every block is stamped at enqueue, and each publish emits a record
//     decomposing enqueue->published into queue-wait / push / publish, plus
//     records for reorder stalls, backpressure, alert latch, and close.
//
// Threading contract: any number of producer threads may call submit();
// at most one drain job at a time owns the session (enforced by the
// scheduled-flag protocol: won either by submit() returning true or by the
// cross-event batcher's try_schedule()); snapshot()/wait_idle() are safe
// from anywhere.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/forecast.hpp"
#include "service/engine_cache.hpp"
#include "service/event_journal.hpp"
#include "service/service_telemetry.hpp"

namespace tsunami {

using EventId = std::uint64_t;

/// What submit() does when a session's ingest queue is full.
enum class BackpressurePolicy {
  kBlock,   ///< producer waits for the workers to catch up (default)
  kReject,  ///< submit throws ServiceOverloaded; the tick is dropped
};

/// Thrown by submit() under BackpressurePolicy::kReject on a full queue.
struct ServiceOverloaded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Debounced warning rule: latch an alert once the peak forecast mean has
/// exceeded `threshold` for `debounce_ticks` consecutive ticks.
/// threshold <= 0 disables alerting.
struct AlertPolicy {
  double threshold = 0.0;
  std::size_t debounce_ticks = 2;
};

/// Point-in-time public state of one event session.
struct EventSnapshot {
  EventId id = 0;
  std::size_t ticks_assimilated = 0;
  std::size_t ticks_pending = 0;  ///< buffered, not yet assimilated
  bool complete = false;          ///< all Nt intervals assimilated
  bool closing = false;
  bool degraded = false;  ///< forecast is over a reduced sensor network
  std::size_t dropped_channels = 0;  ///< currently masked channels
  bool alert = false;
  /// Intervals assimilated when the alert latched (alert_tick * dt is the
  /// alert time in data time). Meaningful only when `alert`.
  std::size_t alert_tick = 0;
  Forecast forecast;  ///< latest rolling forecast (prior if no data yet)
};

class EventSession {
 public:
  /// `journal` is optional (may be null) and must outlive the session; the
  /// WarningService passes its own. Constructing a session emits kOpen.
  EventSession(EventId id, std::shared_ptr<const CachedEngine> engine,
               const AlertPolicy& alert, std::size_t max_pending,
               BackpressurePolicy policy, EventJournal* journal = nullptr);

  EventSession(const EventSession&) = delete;
  EventSession& operator=(const EventSession&) = delete;

  /// Buffer observation interval `tick`. Ticks may arrive in any order;
  /// duplicates (buffered or already assimilated) and ticks outside
  /// [0, Nt) throw std::invalid_argument, submits after begin_close()
  /// throw std::logic_error. Returns true iff the caller must schedule
  /// this session on a worker (in-order work became available and no
  /// worker currently owns the session).
  [[nodiscard]] bool submit(std::size_t tick, std::span<const double> d_block,
                            ServiceTelemetry& telemetry);

  /// Partial-tick submit: `valid[c] == 0` marks channel c of this block as
  /// lost on the wire (the assimilator projects it out exactly — see
  /// StreamingAssimilator's degraded-mode contract). `valid` must be empty
  /// (all channels present) or exactly block-size long; an all-ones bitmap
  /// is normalized to empty so fully-valid partial submits stay on the
  /// bitwise-identical healthy fast path. A block whose dimensions disagree
  /// with the network (data OR bitmap) is journaled as kReject, counted in
  /// telemetry, and refused with std::invalid_argument — at the submit
  /// boundary, never out of a drain worker.
  [[nodiscard]] bool submit(std::size_t tick, std::span<const double> d_block,
                            std::span<const std::uint8_t> valid,
                            ServiceTelemetry& telemetry);

  /// Control plane: drop (live == false) or restore (live == true) sensor
  /// channel `s` for this event, mid-stream. Journals kSensorDrop /
  /// kSensorRestore immediately; the mask change itself is applied by
  /// whichever thread owns the session — this caller if the session is
  /// idle (it wins the scheduled flag, applies, republishes the corrected
  /// forecast, and drains any backlog), otherwise the owning drain worker
  /// at its next cycle boundary (so the op never races a push).
  void set_sensor(std::size_t s, bool live, ServiceTelemetry& telemetry);

  /// Worker entry point: assimilate every in-order buffered block, then
  /// release the session. Only the worker that won the scheduled flag (via
  /// submit() returning true) may call this.
  void drain_for(ServiceTelemetry& telemetry);

  /// Refuse further submits (and wake producers blocked on backpressure,
  /// who then see the session closing and throw).
  void begin_close();

  /// Block until no worker owns the session and no in-order work remains.
  /// Buffered blocks beyond a tick gap stay pending (they can never be
  /// assimilated without the missing tick) and are reported in the
  /// snapshot rather than waited on.
  void wait_idle();

  [[nodiscard]] EventSnapshot snapshot() const;

  /// Cheap (no Forecast copy) degraded view for the /metrics scrape:
  /// {degraded, dropped_channels} of the latest published forecast.
  [[nodiscard]] std::pair<bool, std::size_t> degraded_state() const;

  /// Seconds since this session last published a forecast (since open if it
  /// never has). The per-session staleness gauge of the /metrics export.
  [[nodiscard]] double staleness_seconds() const;

  [[nodiscard]] EventId id() const { return id_; }
  [[nodiscard]] const CachedEngine& cached_engine() const { return *engine_; }

 private:
  /// The batcher in WarningService drives sessions through the fine-grained
  /// hooks below (try_schedule / take_one_runnable / release_if_idle /
  /// publish_after_push) instead of drain_for.
  friend class WarningService;

  struct Block {
    std::size_t tick;
    std::vector<double> data;
    /// Per-channel validity bitmap; empty = every channel present (the
    /// healthy fast path). Carried beside the data so the reorder buffer
    /// preserves which channels of WHICH tick were lost.
    std::vector<std::uint8_t> valid;
    std::int64_t enqueue_ns;  ///< obs::monotonic_ns() when submit buffered it
  };

  /// Buffered-but-not-yet-runnable block (the map value of pending_): the
  /// payload plus its enqueue stamp, carried so the eventual publish can
  /// attribute queue-wait time to THIS block, however long it sat.
  struct Pending {
    std::vector<double> data;
    std::vector<std::uint8_t> valid;
    std::int64_t enqueue_ns;
  };

  /// One queued sensor control op (set_sensor). Guarded by state_mutex_;
  /// applied in submission order by the session owner, so a drop/restore
  /// pair queued while a worker drains lands between pushes, never inside
  /// one.
  struct MaskOp {
    std::size_t sensor;
    bool live;
  };

  /// Move the runnable prefix (consecutive ticks from next_expected_) out
  /// of the buffer into `batch` (cleared first; its capacity and the map
  /// nodes' data vectors are reused, so a steady-state drain cycle does not
  /// allocate). Called under state_mutex_.
  void take_runnable_locked(std::vector<Block>& batch);

  /// Batcher co-opt: win the scheduled flag iff in-order work is available
  /// and no drain job owns the session. On true the caller owns the session
  /// until release_if_idle() succeeds.
  [[nodiscard]] bool try_schedule();

  /// Pop exactly the next in-order block (if buffered) into `out`. Owner
  /// only. Advances next_expected_ and wakes backpressure waiters.
  [[nodiscard]] bool take_one_runnable(Block& out);

  /// Drop the scheduled flag iff no in-order work remains; returns false
  /// (still owned) when a racing submit buffered the next tick — the owner
  /// must then keep draining. Mirrors drain_for's lost-wakeup-free release.
  [[nodiscard]] bool release_if_idle();

  /// Push one block through the assimilator and refresh the snapshot +
  /// alert latch. Called by the owning worker only (no state_mutex_).
  void assimilate(const Block& block, ServiceTelemetry& telemetry);

  /// Owner only: pop and apply every queued set_sensor op (in order).
  /// Returns true iff any op was applied — the caller then republishes via
  /// publish_forecast_only() so dashboards see the corrected posterior
  /// without waiting for the next push.
  [[nodiscard]] bool apply_pending_mask_ops();

  /// Owner only: refresh the published snapshot from the assimilator's
  /// current state without a push — no telemetry sample, no budget journal
  /// record (control events journal their own kind). Used after sensor
  /// drop/restore.
  void publish_forecast_only();

  /// Arm the latency-budget context for the block about to be pushed: marks
  /// the push start (= end of the block's queue wait) and remembers its tick
  /// and enqueue stamp for the journal record publish_after_push emits.
  /// Owner only; the batched path calls it just before push_many.
  void begin_push_ctx(std::size_t tick, std::int64_t enqueue_ns);

  /// The publish half of assimilate(): telemetry sample, rolling forecast,
  /// alert latch, snapshot swap, journal record — for blocks whose push
  /// already happened (the batched cross-event path). Owner only; requires
  /// a preceding begin_push_ctx for this block.
  void publish_after_push(ServiceTelemetry& telemetry);

  /// Append a non-budget lifecycle record (open/stall/backpressure/close)
  /// if a journal is attached. Any thread; lock- and allocation-free.
  void journal_mark(JournalKind kind, std::uint64_t tick,
                    std::int64_t duration_ns = 0);

  [[nodiscard]] StreamingAssimilator& assimilator() { return assim_; }

  const EventId id_;
  const std::shared_ptr<const CachedEngine> engine_;  ///< shared, immutable
  const AlertPolicy alert_;
  const std::size_t max_pending_;
  const BackpressurePolicy policy_;
  EventJournal* const journal_;     ///< nullable; owned by the service
  const std::int64_t open_ns_;      ///< obs::monotonic_ns() at construction

  // Assimilator + alert streak + forecast staging: touched only by the
  // owning worker (one at a time, enforced by the scheduled_ handoff). The
  // staging Forecast is filled via forecast_into and swapped with the
  // published snapshot under snapshot_mutex_, so the per-tick publish path
  // reuses both buffers and never allocates in steady state.
  StreamingAssimilator assim_;
  std::size_t above_threshold_streak_ = 0;
  Forecast staging_forecast_;
  // Latency-budget context for the in-flight block (owner-only, like
  // assim_): armed by begin_push_ctx, consumed by publish_after_push.
  std::size_t push_tick_ = 0;
  std::int64_t push_enqueue_ns_ = 0;
  std::int64_t push_start_ns_ = 0;
  bool first_publish_done_ = false;
  /// drain_for's batch scratch: owner-only (like assim_), grows to the
  /// largest runnable prefix ever drained and is then reused.
  std::vector<Block> drain_batch_;

  // Ingest queue + scheduling state, guarded by state_mutex_.
  mutable std::mutex state_mutex_;
  std::condition_variable space_cv_;  ///< backpressure waiters
  std::condition_variable idle_cv_;   ///< wait_idle waiters
  std::map<std::size_t, Pending> pending_;  ///< tick -> stamped block
  std::vector<MaskOp> mask_ops_;   ///< queued sensor drops/restores
  std::size_t next_expected_ = 0;  ///< next tick the assimilator must see
  bool scheduled_ = false;         ///< a worker owns (or is queued for) this
  bool closing_ = false;

  // Published state, guarded by snapshot_mutex_ (never held together with
  // state_mutex_).
  mutable std::mutex snapshot_mutex_;
  std::size_t ticks_assimilated_ = 0;
  bool alert_latched_ = false;
  std::size_t alert_tick_ = 0;
  Forecast latest_forecast_;

  /// When the latest forecast was published (open time before any publish),
  /// read lock-free by staleness_seconds() from scrape threads.
  std::atomic<std::int64_t> last_publish_ns_;
};

}  // namespace tsunami
