#pragma once

// Service-wide telemetry for the multi-event warning service.
//
// A warning center is judged operationally: how many events is it tracking,
// is assimilation keeping up with data arrival, and what does the *tail* of
// the push-latency distribution look like (one slow push during a real
// event is a late alert). This collector is written to by every worker
// thread on every push, so it must be cheap and thread-safe: counters are
// relaxed atomics, and latencies land in a lock-free obs::Histogram —
// log-bucketed, mergeable, covering the FULL LIFETIME of the service rather
// than the most recent 64k samples the old ring retained. Percentiles are
// exact-rank over the bucket counts (relative quantization error bounded by
// 1/Histogram::kSubBuckets; asserted against exact computation in
// tests/test_obs.cpp), and a snapshot is an O(buckets) walk instead of the
// old O(window log window) sort.

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace tsunami {

/// Point-in-time view of the service counters (see ServiceTelemetry).
struct TelemetrySnapshot {
  std::uint64_t events_opened = 0;
  std::uint64_t events_closed = 0;
  std::uint64_t events_in_flight = 0;  ///< opened - closed
  std::uint64_t ticks_assimilated = 0;
  std::uint64_t ticks_rejected = 0;  ///< backpressure rejections (kReject)
  std::uint64_t ticks_blocked = 0;   ///< backpressure stalls (kBlock)
  std::uint64_t ticks_corrupt = 0;   ///< malformed blocks refused at submit
  double wall_seconds = 0.0;         ///< since service start
  /// Aggregate assimilation rate over the service lifetime. The per-window
  /// rate a load test wants is (delta ticks) / (delta wall) between two
  /// snapshots.
  double ticks_per_second = 0.0;
  /// Push-latency distribution over the service LIFETIME (count = every
  /// push ever recorded; quantiles from the log-bucketed histogram).
  LatencySummary push_latency;
  /// The underlying mergeable histogram — combine shards or repeated runs
  /// with .merge(), re-derive any quantile with .percentile().
  obs::HistogramSnapshot push_histogram;
  /// SLO: seconds from open_event to the first published forecast, one
  /// sample per event that ever published.
  obs::HistogramSnapshot time_to_first_forecast;
  /// SLO: forecast horizon remaining when the alert latched — how much
  /// warning time the event timeline had left, (nt - alert_tick) * dt.
  obs::HistogramSnapshot alert_lead_time;

  /// One-line operator summary ("events 12 | 3.4k ticks/s | p99 180 us").
  [[nodiscard]] std::string str() const;
};

/// Thread-safe telemetry collector owned by a WarningService.
class ServiceTelemetry {
 public:
  ServiceTelemetry() = default;

  // mo: relaxed — independent operational counters; readers reconcile any
  // cross-counter skew themselves (see snapshot()'s saturation note).
  void on_event_opened() { events_opened_.fetch_add(1, relaxed); }
  void on_event_closed() { events_closed_.fetch_add(1, relaxed); }
  void on_rejected() { ticks_rejected_.fetch_add(1, relaxed); }
  // mo: relaxed — same independent-counter contract as above.
  void on_blocked() { ticks_blocked_.fetch_add(1, relaxed); }
  // mo: relaxed — same independent-counter contract as above.
  void on_corrupt() { ticks_corrupt_.fetch_add(1, relaxed); }

  /// Record one assimilated tick and its push latency.
  void on_push(double seconds);

  /// SLO sample: seconds from open_event to this event's first published
  /// forecast. Called at most once per event, by the publishing worker.
  void on_first_forecast(double seconds) { ttff_.record(seconds); }

  /// SLO sample: forecast horizon remaining (seconds of event timeline)
  /// when the alert latched.
  void on_alert_lead(double seconds) { alert_lead_.record(seconds); }

  [[nodiscard]] TelemetrySnapshot snapshot() const;

  /// Contribute the service series (counters + the push-latency histogram,
  /// named tsunami_service_*) to a metrics export.
  void collect_into(obs::MetricsSnapshot& snapshot) const;

 private:
  static constexpr auto relaxed = std::memory_order_relaxed;

  std::atomic<std::uint64_t> events_opened_{0};
  std::atomic<std::uint64_t> events_closed_{0};
  std::atomic<std::uint64_t> ticks_assimilated_{0};
  std::atomic<std::uint64_t> ticks_rejected_{0};
  std::atomic<std::uint64_t> ticks_blocked_{0};
  std::atomic<std::uint64_t> ticks_corrupt_{0};
  Stopwatch since_start_;
  obs::Histogram push_latency_;  ///< seconds; wait-free multi-writer
  obs::Histogram ttff_;          ///< seconds, open -> first forecast
  obs::Histogram alert_lead_;    ///< seconds of horizon left at alert latch
};

}  // namespace tsunami
