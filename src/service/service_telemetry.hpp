#pragma once

// Service-wide telemetry for the multi-event warning service.
//
// A warning center is judged operationally: how many events is it tracking,
// is assimilation keeping up with data arrival, and what does the *tail* of
// the push-latency distribution look like (one slow push during a real
// event is a late alert). This collector is written to by every worker
// thread on every push, so it must be cheap and thread-safe: counters are
// relaxed atomics, and latencies land in a LOCK-FREE ring that keeps the
// most recent `window` samples for percentile estimation (p50/p95/p99 via
// util/stats — the same estimator the ScenarioBank reports use). Writers
// reserve a unique slot with one fetch_add on the ring position — the old
// mutex-guarded ring serialized every concurrent push on one lock, and a
// pre-mutex draft that bumped a relaxed non-atomic index under concurrent
// writers could tear pairs of writes; the fetch_add closes that race window
// for good (covered by a TSan multi-writer test).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/stats.hpp"
#include "util/timer.hpp"

namespace tsunami {

/// Point-in-time view of the service counters (see ServiceTelemetry).
struct TelemetrySnapshot {
  std::uint64_t events_opened = 0;
  std::uint64_t events_closed = 0;
  std::uint64_t events_in_flight = 0;  ///< opened - closed
  std::uint64_t ticks_assimilated = 0;
  std::uint64_t ticks_rejected = 0;  ///< backpressure rejections (kReject)
  double wall_seconds = 0.0;         ///< since service start
  /// Aggregate assimilation rate over the service lifetime. The per-window
  /// rate a load test wants is (delta ticks) / (delta wall) between two
  /// snapshots.
  double ticks_per_second = 0.0;
  /// Push-latency distribution over the retained window (count = samples
  /// currently in the window, not lifetime pushes).
  LatencySummary push_latency;

  /// One-line operator summary ("events 12 | 3.4k ticks/s | p99 180 us").
  [[nodiscard]] std::string str() const;
};

/// Thread-safe telemetry collector owned by a WarningService.
class ServiceTelemetry {
 public:
  /// `window` bounds the latency ring (and the cost of a snapshot sort).
  explicit ServiceTelemetry(std::size_t window = 1 << 16);

  void on_event_opened() { events_opened_.fetch_add(1, relaxed); }
  void on_event_closed() { events_closed_.fetch_add(1, relaxed); }
  void on_rejected() { ticks_rejected_.fetch_add(1, relaxed); }

  /// Record one assimilated tick and its push latency.
  void on_push(double seconds);

  [[nodiscard]] TelemetrySnapshot snapshot() const;

 private:
  static constexpr auto relaxed = std::memory_order_relaxed;

  std::atomic<std::uint64_t> events_opened_{0};
  std::atomic<std::uint64_t> events_closed_{0};
  std::atomic<std::uint64_t> ticks_assimilated_{0};
  std::atomic<std::uint64_t> ticks_rejected_{0};
  Stopwatch since_start_;

  /// Lock-free latency ring: `ring_pos_` hands each writer a unique slot;
  /// slots are atomic doubles so a snapshot racing a writer reads either
  /// the old or the new sample, never a torn one. A slot reserved but not
  /// yet stored reads as its previous value (0.0 when never written) — a
  /// one-sample skew a percentile estimate cannot notice.
  std::size_t window_ = 0;
  std::unique_ptr<std::atomic<double>[]> latency_ring_;
  std::atomic<std::uint64_t> ring_pos_{0};  ///< total samples ever recorded
};

}  // namespace tsunami
