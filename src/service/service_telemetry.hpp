#pragma once

// Service-wide telemetry for the multi-event warning service.
//
// A warning center is judged operationally: how many events is it tracking,
// is assimilation keeping up with data arrival, and what does the *tail* of
// the push-latency distribution look like (one slow push during a real
// event is a late alert). This collector is written to by every worker
// thread on every push, so it must be cheap and thread-safe: counters are
// relaxed atomics, and latencies land in a mutex-guarded ring that keeps
// the most recent `window` samples for percentile estimation (p50/p95/p99
// via util/stats — the same estimator the ScenarioBank reports use).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/timer.hpp"

namespace tsunami {

/// Point-in-time view of the service counters (see ServiceTelemetry).
struct TelemetrySnapshot {
  std::uint64_t events_opened = 0;
  std::uint64_t events_closed = 0;
  std::uint64_t events_in_flight = 0;  ///< opened - closed
  std::uint64_t ticks_assimilated = 0;
  std::uint64_t ticks_rejected = 0;  ///< backpressure rejections (kReject)
  double wall_seconds = 0.0;         ///< since service start
  /// Aggregate assimilation rate over the service lifetime. The per-window
  /// rate a load test wants is (delta ticks) / (delta wall) between two
  /// snapshots.
  double ticks_per_second = 0.0;
  /// Push-latency distribution over the retained window (count = samples
  /// currently in the window, not lifetime pushes).
  LatencySummary push_latency;

  /// One-line operator summary ("events 12 | 3.4k ticks/s | p99 180 us").
  [[nodiscard]] std::string str() const;
};

/// Thread-safe telemetry collector owned by a WarningService.
class ServiceTelemetry {
 public:
  /// `window` bounds the latency ring (and the cost of a snapshot sort).
  explicit ServiceTelemetry(std::size_t window = 1 << 16);

  void on_event_opened() { events_opened_.fetch_add(1, relaxed); }
  void on_event_closed() { events_closed_.fetch_add(1, relaxed); }
  void on_rejected() { ticks_rejected_.fetch_add(1, relaxed); }

  /// Record one assimilated tick and its push latency.
  void on_push(double seconds);

  [[nodiscard]] TelemetrySnapshot snapshot() const;

 private:
  static constexpr auto relaxed = std::memory_order_relaxed;

  std::atomic<std::uint64_t> events_opened_{0};
  std::atomic<std::uint64_t> events_closed_{0};
  std::atomic<std::uint64_t> ticks_assimilated_{0};
  std::atomic<std::uint64_t> ticks_rejected_{0};
  Stopwatch since_start_;

  mutable std::mutex latency_mutex_;
  std::vector<double> latency_ring_;  ///< capacity = window
  std::size_t ring_next_ = 0;         ///< next write slot
  std::size_t ring_filled_ = 0;       ///< min(total pushes, window)
};

}  // namespace tsunami
