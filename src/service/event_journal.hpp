#pragma once

// EventJournal: a structured per-event lifecycle journal for the warning
// service.
//
// The flight recorder (src/obs/trace.hpp) answers "what was every thread
// doing"; the metrics histograms answer "what does the latency distribution
// look like". Neither answers the question an operator asks during a live
// event: "where did THIS event's tick->alert latency go?" The journal does:
// every lifecycle transition of every session — open, first tick, reorder
// stalls, backpressure rejects and blocks, per-tick pushes, alert latch,
// close — lands here as one fixed-size record, and the per-tick records
// carry a DECOMPOSED latency budget measured from the block's enqueue
// timestamp:
//
//   queue_wait_ns   submit() buffered the block  ->  a drain job popped it
//   push_ns         the prefix-Cholesky assimilation itself
//   publish_ns      forecast_into + alert latch + snapshot swap
//   total_ns        enqueue -> publish done (end-to-end as the feed sees it)
//
// queue_wait + push + publish reconstructs total to within clock-read
// granularity (asserted in tests/test_service.cpp), so a slow event is
// attributable at a glance: queue-bound (drain starvation), compute-bound
// (push), or publish-bound (snapshot contention).
//
// Threading contract — why appends are safe on the drain hot path: the
// journal is one bounded ring of all-atomic slots. A writer reserves a slot
// with one fetch_add (multi-writer safe, wait-free), fills the record's
// fields with relaxed stores, and publishes the slot's sequence number with
// a release store; no lock is taken and nothing is allocated (armed
// ScopedNoAlloc/ScopedNoLock sentinels prove it in tests/test_debug.cpp).
// Readers (the /events route, the JSON Lines export) accept only slots whose
// published sequence matches the reservation; a reader racing a wrapping
// writer may skip or garble that one slot — a diagnostic artifact, never UB,
// the same tolerance the trace ring documents. Oldest records are
// overwritten first; dropped() reports how many.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/hot_path.hpp"

namespace tsunami {

/// Lifecycle transition kinds, in the order a healthy event emits them.
enum class JournalKind : std::uint8_t {
  kOpen = 0,                ///< session registered with the service
  kFirstTick = 1,           ///< first block assimilated (budget attached)
  kPush = 2,                ///< one further block assimilated (budget attached)
  kReorderStall = 3,        ///< out-of-order block buffered; tick = the gap
  kBackpressureBlock = 4,   ///< producer stalled on a full queue (kBlock)
  kBackpressureReject = 5,  ///< submit shed on a full queue (kReject)
  kAlertLatch = 6,          ///< debounced alert latched at `tick`
  kAlertUnlatch = 7,        ///< reserved: the current policy never unlatches
  kClose = 8,               ///< session closed; tick = ticks assimilated
  kSensorDrop = 9,          ///< channel masked out; tick = channel index
  kSensorRestore = 10,      ///< channel re-admitted; tick = channel index
  kReject = 11,             ///< corrupt block refused; tick = offending tick
};

/// Stable lowercase name for a kind ("open", "push", ...): the `kind` field
/// of the JSON Lines export and the /events route.
[[nodiscard]] const char* journal_kind_name(JournalKind kind);

/// One journal record. Plain data; timestamps share the flight recorder's
/// monotonic epoch (obs::monotonic_ns) so journal rows line up with /tracez
/// spans. Latency-budget fields are meaningful on kFirstTick/kPush (and
/// total_ns doubles as the wait duration on kBackpressureBlock); they are 0
/// elsewhere.
struct JournalRecord {
  std::uint64_t event = 0;  ///< EventId
  JournalKind kind = JournalKind::kOpen;
  std::uint64_t tick = 0;       ///< tick the record refers to (see kinds)
  std::int64_t t_ns = 0;        ///< when the transition completed
  std::int64_t queue_wait_ns = 0;
  std::int64_t push_ns = 0;
  std::int64_t publish_ns = 0;
  std::int64_t total_ns = 0;
};

/// Bounded multi-writer lifecycle journal (see the header comment for the
/// full design rationale and threading contract).
class EventJournal {
 public:
  /// `capacity` is the number of retained records (clamped to >= 64). The
  /// ring is allocated once here; append() never allocates.
  explicit EventJournal(std::size_t capacity = 1 << 16);
  ~EventJournal();  ///< out-of-line: Slot is complete only in the .cpp

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Append one record. Wait-free and allocation-free: one fetch_add slot
  /// reservation + relaxed field stores + one release publish. Any thread.
  TSUNAMI_HOT_PATH void append(const JournalRecord& record);

  /// Records ever appended (including overwritten ones).
  [[nodiscard]] std::uint64_t appended() const;
  /// Records overwritten by ring wrap — nonzero means snapshot() is a
  /// suffix of the history, not the whole history.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Point-in-time copy of the retained records, ordered by timestamp.
  /// Slots mid-write (a racing append) are skipped.
  [[nodiscard]] std::vector<JournalRecord> snapshot() const;

  /// The retained records as JSON Lines, one object per record:
  ///   {"event":3,"kind":"push","tick":7,"t_ns":...,"queue_wait_ns":...,
  ///    "push_ns":...,"publish_ns":...,"total_ns":...}
  [[nodiscard]] std::string json_lines() const;

  /// One record serialized as a JSON object (shared by json_lines and the
  /// /events route).
  static void append_record_json(std::string& out, const JournalRecord& r);

 private:
  struct Slot;
  const std::size_t capacity_;
  const std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};  ///< next reservation index
};

}  // namespace tsunami
