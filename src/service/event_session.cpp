#include "service/event_session.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"

namespace tsunami {

EventSession::EventSession(EventId id,
                           std::shared_ptr<const CachedEngine> engine,
                           const AlertPolicy& alert, std::size_t max_pending,
                           BackpressurePolicy policy, EventJournal* journal)
    : id_(id),
      engine_([&] {
        if (!engine) throw std::invalid_argument("EventSession: null engine");
        return std::move(engine);
      }()),
      alert_(alert),
      max_pending_(max_pending),
      policy_(policy),
      journal_(journal),
      open_ns_(obs::monotonic_ns()),
      assim_(engine_->engine().start()),
      last_publish_ns_(open_ns_) {
  if (max_pending_ == 0)
    throw std::invalid_argument("EventSession: max_pending == 0");
  // Publish the prior as the initial snapshot so latest_forecast is
  // meaningful before the first observation lands.
  latest_forecast_ = assim_.forecast();
  journal_mark(JournalKind::kOpen, 0);
}

void EventSession::journal_mark(JournalKind kind, std::uint64_t tick,
                                std::int64_t duration_ns) {
  if (journal_ == nullptr) return;
  JournalRecord r;
  r.event = id_;
  r.kind = kind;
  r.tick = tick;
  r.t_ns = obs::monotonic_ns();
  r.total_ns = duration_ns;
  journal_->append(r);
}

bool EventSession::submit(std::size_t tick, std::span<const double> d_block,
                          ServiceTelemetry& telemetry) {
  return submit(tick, d_block, {}, telemetry);
}

bool EventSession::submit(std::size_t tick, std::span<const double> d_block,
                          std::span<const std::uint8_t> valid,
                          ServiceTelemetry& telemetry) {
  const StreamingEngine& eng = engine_->engine();
  // Corrupt-block rejection: malformed wire data (impossible tick, wrong
  // block dimension, wrong bitmap dimension) is journaled and refused HERE,
  // at the submit boundary — a corrupt packet must never become a throw out
  // of a drain worker, and must never poison the session's good state.
  if (tick >= eng.num_ticks() || d_block.size() != eng.block_size() ||
      (!valid.empty() && valid.size() != eng.block_size())) {
    telemetry.on_corrupt();
    journal_mark(JournalKind::kReject, tick);
    if (tick >= eng.num_ticks())
      throw std::invalid_argument("EventSession::submit: tick out of range");
    if (d_block.size() != eng.block_size())
      throw std::invalid_argument("EventSession::submit: block size mismatch");
    throw std::invalid_argument("EventSession::submit: bitmap size mismatch");
  }
  // Normalize an all-ones bitmap to "no bitmap": a fully-valid partial
  // submit stays on the healthy fast path and is bitwise-identical to the
  // plain overload.
  if (!valid.empty() &&
      std::all_of(valid.begin(), valid.end(),
                  [](std::uint8_t v) { return v != 0; }))
    valid = {};

  std::unique_lock<std::mutex> lock(state_mutex_);
  if (closing_)
    throw std::logic_error("EventSession::submit: event is closed");
  if (tick < next_expected_ || pending_.count(tick))
    throw std::invalid_argument("EventSession::submit: duplicate tick");
  // The next-expected tick is always accepted even when the buffer is full:
  // it is exactly the block whose arrival lets the workers drain the queue,
  // so bouncing it would stall (kBlock: deadlock; kReject: livelock) a
  // session whose buffer filled up with out-of-order future ticks.
  if (tick != next_expected_ && pending_.size() >= max_pending_) {
    if (policy_ == BackpressurePolicy::kReject) {
      telemetry.on_rejected();
      journal_mark(JournalKind::kBackpressureReject, tick);
      throw ServiceOverloaded("EventSession::submit: ingest queue full");
    }
    // The bypass must be re-evaluated inside the wait: the workers can
    // advance next_expected_ to exactly this tick while we sleep, at which
    // point this block is the only one that can unblock the session and
    // waiting for queue space (which can't free without it) would deadlock.
    // take_runnable_locked notifies space_cv_ on every advance.
    telemetry.on_blocked();
    const std::int64_t wait_begin = obs::monotonic_ns();
    space_cv_.wait(lock, [&] {
      return closing_ || tick == next_expected_ ||
             pending_.size() < max_pending_;
    });
    journal_mark(JournalKind::kBackpressureBlock, tick,
                 obs::monotonic_ns() - wait_begin);
    if (closing_)
      throw std::logic_error("EventSession::submit: event is closed");
    if (tick < next_expected_ || pending_.count(tick))
      throw std::invalid_argument("EventSession::submit: duplicate tick");
  }
  pending_.emplace(
      tick, Pending{std::vector<double>(d_block.begin(), d_block.end()),
                    std::vector<std::uint8_t>(valid.begin(), valid.end()),
                    obs::monotonic_ns()});

  // Schedule iff in-order work just became available and no worker owns the
  // session: exactly one producer wins the flag, so at most one worker ever
  // drains a session at a time (the ordering + determinism invariant).
  const bool runnable =
      !pending_.empty() && pending_.begin()->first == next_expected_;
  if (!runnable)
    // The new block is ahead of a gap at next_expected_ — the tick the
    // session is stalled waiting for.
    journal_mark(JournalKind::kReorderStall, next_expected_);
  if (runnable && !scheduled_) {
    scheduled_ = true;
    return true;
  }
  return false;
}

void EventSession::take_runnable_locked(std::vector<Block>& batch) {
  batch.clear();
  while (!pending_.empty() && pending_.begin()->first == next_expected_) {
    auto node = pending_.extract(pending_.begin());
    batch.push_back(Block{node.key(), std::move(node.mapped().data),
                          std::move(node.mapped().valid),
                          node.mapped().enqueue_ns});
    ++next_expected_;
  }
  if (!batch.empty()) space_cv_.notify_all();
}

bool EventSession::try_schedule() {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  const bool runnable =
      !pending_.empty() && pending_.begin()->first == next_expected_;
  if (!runnable || scheduled_) return false;
  scheduled_ = true;
  return true;
}

bool EventSession::take_one_runnable(Block& out) {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  if (pending_.empty() || pending_.begin()->first != next_expected_)
    return false;
  auto node = pending_.extract(pending_.begin());
  out.tick = node.key();
  out.data = std::move(node.mapped().data);
  out.valid = std::move(node.mapped().valid);
  out.enqueue_ns = node.mapped().enqueue_ns;
  ++next_expected_;
  space_cv_.notify_all();
  return true;
}

bool EventSession::release_if_idle() {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  if (!pending_.empty() && pending_.begin()->first == next_expected_)
    return false;  // a submit raced in-order work in: still ours to drain
  if (!mask_ops_.empty())
    return false;  // a set_sensor raced a control op in: apply before idling
  scheduled_ = false;
  idle_cv_.notify_all();
  return true;
}

void EventSession::drain_for(ServiceTelemetry& telemetry) {
  // drain_batch_ is owner-only scratch (only the worker that won the
  // scheduled flag runs here): its capacity survives across cycles and
  // sessions' lifetimes, so a steady-state drain performs no allocation —
  // the blocks' data vectors are moved out of the map nodes, not copied.
  for (;;) {
    // Sensor control ops land at cycle boundaries: never inside a push, and
    // the corrected forecast publishes immediately even when no data is
    // buffered (the common case for a drop on a quiet session).
    if (apply_pending_mask_ops()) publish_forecast_only();
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      take_runnable_locked(drain_batch_);
      if (drain_batch_.empty()) {
        if (!mask_ops_.empty()) continue;  // a control op raced this branch
        // Going idle. A submit racing with this branch either ran before we
        // took the lock (its block would be in the batch) or runs after
        // scheduled_ drops (and wins the flag itself) — no lost wakeups.
        scheduled_ = false;
        idle_cv_.notify_all();
        return;
      }
    }
    // The slow part — the actual prefix-Cholesky pushes — runs without any
    // lock: producers keep submitting and other sessions keep draining.
    for (const Block& b : drain_batch_) assimilate(b, telemetry);
  }
}

void EventSession::assimilate(const Block& block,
                              ServiceTelemetry& telemetry) {
  begin_push_ctx(block.tick, block.enqueue_ns);
  assim_.push(block.tick, block.data, block.valid);
  publish_after_push(telemetry);
}

void EventSession::set_sensor(std::size_t s, bool live,
                              ServiceTelemetry& telemetry) {
  const StreamingEngine& eng = engine_->engine();
  if (s >= eng.block_size())
    throw std::out_of_range("EventSession::set_sensor: channel out of range");
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (closing_)
      throw std::logic_error("EventSession::set_sensor: event is closed");
    mask_ops_.push_back(MaskOp{s, live});
    // Idle session: this caller wins the scheduled flag and applies the op
    // itself. Otherwise the owning worker picks it up at its next cycle
    // boundary (drain_for's loop head, or the batcher's round head) —
    // release_if_idle refuses to idle past a queued op, so it cannot
    // linger.
    if (!scheduled_) {
      scheduled_ = true;
      owner = true;
    }
  }
  journal_mark(live ? JournalKind::kSensorRestore : JournalKind::kSensorDrop,
               s);
  if (owner) drain_for(telemetry);  // applies the op, republishes, releases
}

bool EventSession::apply_pending_mask_ops() {
  // Owner only: pop under the lock, apply outside it — drop_sensor rebuilds
  // the dead-channel projection (O(r p^2)) and must not stall producers.
  std::vector<MaskOp> ops;  // lint: allow(hot-path-alloc) control event
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    ops.swap(mask_ops_);
  }
  if (ops.empty()) return false;
  for (const MaskOp& op : ops) {
    // Validated at set_sensor; drop-of-dropped / restore-of-live are no-ops
    // in the assimilator, so replayed control packets are harmless.
    if (op.live)
      assim_.restore_sensor(op.sensor);
    else
      assim_.drop_sensor(op.sensor);
  }
  return true;
}

void EventSession::publish_forecast_only() {
  assim_.forecast_into(staging_forecast_);
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    ticks_assimilated_ = assim_.ticks_received();
    std::swap(latest_forecast_, staging_forecast_);
  }
  // mo: relaxed — staleness gauge timestamp; same contract as the store in
  // publish_after_push.
  last_publish_ns_.store(obs::monotonic_ns(), std::memory_order_relaxed);
}

void EventSession::begin_push_ctx(std::size_t tick, std::int64_t enqueue_ns) {
  push_tick_ = tick;
  push_enqueue_ns_ = enqueue_ns;
  push_start_ns_ = obs::monotonic_ns();
}

void EventSession::publish_after_push(ServiceTelemetry& telemetry) {
  TRACE_SCOPE("service", "publish");
  const std::int64_t publish_begin = obs::monotonic_ns();
  telemetry.on_push(assim_.last_push_seconds());

  assim_.forecast_into(staging_forecast_);
  bool latch = false;
  if (alert_.threshold > 0.0 && !alert_latched_) {
    double peak = 0.0;
    for (double v : staging_forecast_.mean) peak = std::max(peak, v);
    above_threshold_streak_ =
        peak > alert_.threshold ? above_threshold_streak_ + 1 : 0;
    latch = above_threshold_streak_ >= alert_.debounce_ticks;
  }

  std::size_t latched_at = 0;
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    ticks_assimilated_ = assim_.ticks_received();
    if (latch) {
      alert_latched_ = true;
      alert_tick_ = ticks_assimilated_;
      latched_at = ticks_assimilated_;
    }
    // Swap, don't move: the retired snapshot's buffers become next tick's
    // staging capacity, so publishing is allocation-free in steady state.
    std::swap(latest_forecast_, staging_forecast_);
  }

  const std::int64_t t_end = obs::monotonic_ns();
  // mo: relaxed — staleness gauge timestamp; scrape readers tolerate any
  // staleness, and the value is a single self-contained int64.
  last_publish_ns_.store(t_end, std::memory_order_relaxed);

  // Journal + SLO samples, outside the snapshot lock (journal appends are
  // lock-free, histogram records are wait-free).
  if (!first_publish_done_) {
    first_publish_done_ = true;
    telemetry.on_first_forecast(static_cast<double>(t_end - open_ns_) * 1e-9);
  }
  if (latch) {
    // Lead time: how much of the event timeline (in data time) was still
    // ahead when the alert latched.
    const StreamingEngine& eng = engine_->engine();
    const double dt = engine_->twin().config().observation_dt;
    const double lead =
        static_cast<double>(eng.num_ticks() - latched_at) * dt;
    telemetry.on_alert_lead(lead);
    journal_mark(JournalKind::kAlertLatch, latched_at);
  }
  if (journal_ != nullptr) {
    JournalRecord r;
    r.event = id_;
    r.kind = assim_.ticks_received() == 1 ? JournalKind::kFirstTick
                                          : JournalKind::kPush;
    r.tick = push_tick_;
    r.t_ns = t_end;
    // The budget decomposition: queue wait (enqueue -> drain pop / fused
    // push start), the push itself (the assimilator's own stopwatch — an
    // INDEPENDENT measurement, which is what makes the sum-vs-total check
    // in tests meaningful), and the publish tail measured here.
    r.queue_wait_ns = push_start_ns_ - push_enqueue_ns_;
    r.push_ns =
        static_cast<std::int64_t>(assim_.last_push_seconds() * 1e9);
    r.publish_ns = t_end - publish_begin;
    r.total_ns = t_end - push_enqueue_ns_;
    journal_->append(r);
  }
}

void EventSession::begin_close() {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  closing_ = true;
  space_cv_.notify_all();
}

void EventSession::wait_idle() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  idle_cv_.wait(lock, [&] { return !scheduled_; });
}

double EventSession::staleness_seconds() const {
  // mo: relaxed — reading the publish timestamp for a monitoring gauge; a
  // stale read only overstates staleness by one publish.
  const std::int64_t last = last_publish_ns_.load(std::memory_order_relaxed);
  return static_cast<double>(obs::monotonic_ns() - last) * 1e-9;
}

EventSnapshot EventSession::snapshot() const {
  EventSnapshot s;
  s.id = id_;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    s.ticks_pending = pending_.size();
    s.closing = closing_;
  }
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    s.ticks_assimilated = ticks_assimilated_;
    s.alert = alert_latched_;
    s.alert_tick = alert_tick_;
    s.forecast = latest_forecast_;
  }
  s.degraded = s.forecast.degraded;
  s.dropped_channels = s.forecast.dropped_channels;
  s.complete = s.ticks_assimilated == engine_->engine().num_ticks();
  return s;
}

std::pair<bool, std::size_t> EventSession::degraded_state() const {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return {latest_forecast_.degraded, latest_forecast_.dropped_channels};
}

}  // namespace tsunami
