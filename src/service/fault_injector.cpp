#include "service/fault_injector.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace tsunami {

namespace {

/// splitmix64 finalizer: the standard 64-bit avalanche mix. Statistical
/// quality is far beyond what a fault coin-flip needs; what matters is that
/// distinct (seed, salt, event, tick) tuples decorrelate completely.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Parse a nonnegative double in [0,1] or throw with the knob's name.
double parse_probability(const char* name, const std::string& s) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != s.size() || !(v >= 0.0) || v > 1.0)
    throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                " must be a probability in [0,1], got '" + s +
                                "'");
  return v;
}

std::size_t parse_index(const char* name, const std::string& s) {
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(s, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (s.empty() || pos != s.size())
    throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                ": bad index '" + s + "'");
  return static_cast<std::size_t>(v);
}

/// One "s@t" or "s@t-r" clause of TSUNAMI_FAULT_DROP_SENSOR.
SensorFault parse_sensor_fault(const std::string& clause) {
  const std::size_t at = clause.find('@');
  if (at == std::string::npos)
    throw std::invalid_argument(
        "FaultPlan: TSUNAMI_FAULT_DROP_SENSOR clause '" + clause +
        "' is not channel@tick[-restore_tick]");
  SensorFault f;
  f.sensor = parse_index("TSUNAMI_FAULT_DROP_SENSOR", clause.substr(0, at));
  const std::string ticks = clause.substr(at + 1);
  const std::size_t dash = ticks.find('-');
  if (dash == std::string::npos) {
    f.drop_tick = parse_index("TSUNAMI_FAULT_DROP_SENSOR", ticks);
  } else {
    f.drop_tick =
        parse_index("TSUNAMI_FAULT_DROP_SENSOR", ticks.substr(0, dash));
    f.restore_tick =
        parse_index("TSUNAMI_FAULT_DROP_SENSOR", ticks.substr(dash + 1));
    if (f.restore_tick <= f.drop_tick)
      throw std::invalid_argument(
          "FaultPlan: TSUNAMI_FAULT_DROP_SENSOR clause '" + clause +
          "': restore tick must follow drop tick");
  }
  return f;
}

}  // namespace

FaultPlan FaultPlan::from_env() {
  FaultPlan plan;
  if (const char* s = std::getenv("TSUNAMI_FAULT_SEED"))
    plan.seed = static_cast<std::uint64_t>(
        parse_index("TSUNAMI_FAULT_SEED", std::string(s)));
  if (const char* s = std::getenv("TSUNAMI_FAULT_PACKET_LOSS"))
    plan.packet_loss =
        parse_probability("TSUNAMI_FAULT_PACKET_LOSS", std::string(s));
  if (const char* s = std::getenv("TSUNAMI_FAULT_CORRUPT"))
    plan.corrupt = parse_probability("TSUNAMI_FAULT_CORRUPT", std::string(s));
  if (const char* s = std::getenv("TSUNAMI_FAULT_DROP_SENSOR")) {
    std::string list(s);
    std::size_t begin = 0;
    while (begin <= list.size()) {
      std::size_t comma = list.find(',', begin);
      if (comma == std::string::npos) comma = list.size();
      const std::string clause = list.substr(begin, comma - begin);
      if (!clause.empty())
        plan.sensor_faults.push_back(parse_sensor_fault(clause));
      begin = comma + 1;
    }
  }
  return plan;
}

double FaultInjector::uniform(std::uint64_t salt, std::uint64_t event,
                              std::size_t tick) const {
  std::uint64_t h = mix64(plan_.seed ^ salt);
  h = mix64(h ^ event);
  h = mix64(h ^ static_cast<std::uint64_t>(tick));
  // Top 53 bits -> [0,1): the full double-precision lattice.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::lose_block(std::uint64_t event, std::size_t tick) const {
  return plan_.packet_loss > 0.0 &&
         uniform(0x6c6f7373ULL /* "loss" */, event, tick) < plan_.packet_loss;
}

bool FaultInjector::corrupt_block(std::uint64_t event,
                                  std::size_t tick) const {
  return plan_.corrupt > 0.0 &&
         uniform(0x636f7272ULL /* "corr" */, event, tick) < plan_.corrupt;
}

std::vector<std::pair<std::size_t, bool>> FaultInjector::sensor_ops_at(
    std::size_t tick) const {
  std::vector<std::pair<std::size_t, bool>> ops;
  for (const SensorFault& f : plan_.sensor_faults)
    if (f.drop_tick == tick) ops.emplace_back(f.sensor, false);
  for (const SensorFault& f : plan_.sensor_faults)
    if (f.restore_tick == tick) ops.emplace_back(f.sensor, true);
  return ops;
}

}  // namespace tsunami
