#include "service/event_journal.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace tsunami {

namespace {
constexpr std::size_t kMinCapacity = 64;
}  // namespace

/// All-atomic so the exporter's concurrent reads of a slot being rewritten
/// are well-defined (same contract as the trace ring's Slot). `seq` is the
/// reservation index + 1, stored last with release: a reader that observes
/// seq == pos + 1 (acquire) also observes every field store that preceded
/// the publish.
struct EventJournal::Slot {
  std::atomic<std::uint64_t> seq{0};  ///< 0 = never written
  std::atomic<std::uint64_t> event{0};
  std::atomic<std::uint8_t> kind{0};
  std::atomic<std::uint64_t> tick{0};
  std::atomic<std::int64_t> t_ns{0};
  std::atomic<std::int64_t> queue_wait_ns{0};
  std::atomic<std::int64_t> push_ns{0};
  std::atomic<std::int64_t> publish_ns{0};
  std::atomic<std::int64_t> total_ns{0};
};

const char* journal_kind_name(JournalKind kind) {
  switch (kind) {
    case JournalKind::kOpen: return "open";
    case JournalKind::kFirstTick: return "first_tick";
    case JournalKind::kPush: return "push";
    case JournalKind::kReorderStall: return "reorder_stall";
    case JournalKind::kBackpressureBlock: return "backpressure_block";
    case JournalKind::kBackpressureReject: return "backpressure_reject";
    case JournalKind::kAlertLatch: return "alert_latch";
    case JournalKind::kAlertUnlatch: return "alert_unlatch";
    case JournalKind::kClose: return "close";
    case JournalKind::kSensorDrop: return "sensor_drop";
    case JournalKind::kSensorRestore: return "sensor_restore";
    case JournalKind::kReject: return "reject";
  }
  return "unknown";
}

EventJournal::EventJournal(std::size_t capacity)
    : capacity_(std::max(capacity, kMinCapacity)),
      slots_(new Slot[capacity_]) {}

EventJournal::~EventJournal() = default;

void EventJournal::append(const JournalRecord& record) {
  // mo: relaxed fetch_add — slot reservation only needs a unique index per
  // writer; the record itself is published by the release store below.
  const std::uint64_t pos = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[pos % capacity_];
  // mo: relaxed — field stores need no individual ordering; the seq release
  // store below publishes them all to acquire readers at once.
  s.event.store(record.event, std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint8_t>(record.kind),
               std::memory_order_relaxed);
  s.tick.store(record.tick, std::memory_order_relaxed);
  s.t_ns.store(record.t_ns, std::memory_order_relaxed);
  s.queue_wait_ns.store(record.queue_wait_ns, std::memory_order_relaxed);
  s.push_ns.store(record.push_ns, std::memory_order_relaxed);
  // mo: relaxed — same field-store contract as above.
  s.publish_ns.store(record.publish_ns, std::memory_order_relaxed);
  s.total_ns.store(record.total_ns, std::memory_order_relaxed);
  // mo: release — publishes the fields above; a reader that observes this
  // seq with acquire sees a complete record.
  s.seq.store(pos + 1, std::memory_order_release);
}

std::uint64_t EventJournal::appended() const {
  // mo: relaxed — monitoring read of a monotone counter.
  return head_.load(std::memory_order_relaxed);
}

std::uint64_t EventJournal::dropped() const {
  // mo: relaxed — same monitoring-read contract as appended().
  const std::uint64_t n = head_.load(std::memory_order_relaxed);
  return n > capacity_ ? n - capacity_ : 0;
}

std::vector<JournalRecord> EventJournal::snapshot() const {
  // mo: relaxed — a point-in-time high-water mark; records appended after
  // this load are simply not in the snapshot.
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t begin = head > capacity_ ? head - capacity_ : 0;
  std::vector<JournalRecord> out;
  out.reserve(static_cast<std::size_t>(head - begin));
  for (std::uint64_t pos = begin; pos < head; ++pos) {
    const Slot& s = slots_[pos % capacity_];
    // mo: acquire — pairs with append()'s release publish; a matching seq
    // guarantees the field loads below read the complete record.
    if (s.seq.load(std::memory_order_acquire) != pos + 1)
      continue;  // reserved but unpublished, or already overwritten
    JournalRecord r;
    // mo: relaxed — covered by the acquire on seq above.
    r.event = s.event.load(std::memory_order_relaxed);
    r.kind = static_cast<JournalKind>(s.kind.load(std::memory_order_relaxed));
    r.tick = s.tick.load(std::memory_order_relaxed);
    r.t_ns = s.t_ns.load(std::memory_order_relaxed);
    r.queue_wait_ns = s.queue_wait_ns.load(std::memory_order_relaxed);
    // mo: relaxed — same seq-covered contract as above.
    r.push_ns = s.push_ns.load(std::memory_order_relaxed);
    r.publish_ns = s.publish_ns.load(std::memory_order_relaxed);
    r.total_ns = s.total_ns.load(std::memory_order_relaxed);
    out.push_back(r);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const JournalRecord& a, const JournalRecord& b) {
                     return a.t_ns < b.t_ns;
                   });
  return out;
}

void EventJournal::append_record_json(std::string& out,
                                      const JournalRecord& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"event\":%" PRIu64 ",\"kind\":\"%s\",\"tick\":%" PRIu64
                ",\"t_ns\":%" PRId64 ",\"queue_wait_ns\":%" PRId64
                ",\"push_ns\":%" PRId64 ",\"publish_ns\":%" PRId64
                ",\"total_ns\":%" PRId64 "}",
                r.event, journal_kind_name(r.kind), r.tick, r.t_ns,
                r.queue_wait_ns, r.push_ns, r.publish_ns, r.total_ns);
  out += buf;
}

std::string EventJournal::json_lines() const {
  std::string out;
  for (const JournalRecord& r : snapshot()) {
    append_record_json(out, r);
    out += '\n';
  }
  return out;
}

}  // namespace tsunami
