#include "service/service_telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "util/table.hpp"

namespace tsunami {

ServiceTelemetry::ServiceTelemetry(std::size_t window) : window_(window) {
  if (window == 0)
    throw std::invalid_argument("ServiceTelemetry: window == 0");
  latency_ring_ = std::make_unique<std::atomic<double>[]>(window);
  for (std::size_t i = 0; i < window; ++i)
    latency_ring_[i].store(0.0, relaxed);
}

void ServiceTelemetry::on_push(double seconds) {
  ticks_assimilated_.fetch_add(1, relaxed);
  // One fetch_add reserves a unique slot — concurrent writers never touch
  // the same element, and there is no index/filled pair to tear.
  const std::uint64_t pos = ring_pos_.fetch_add(1, relaxed);
  latency_ring_[pos % window_].store(seconds, relaxed);
}

TelemetrySnapshot ServiceTelemetry::snapshot() const {
  TelemetrySnapshot s;
  s.events_opened = events_opened_.load(relaxed);
  s.events_closed = events_closed_.load(relaxed);
  // The two loads are not atomic together: a close that lands between them
  // could make closed > opened. Saturate rather than wrap to ~1.8e19.
  s.events_in_flight = s.events_closed > s.events_opened
                           ? 0
                           : s.events_opened - s.events_closed;
  s.ticks_assimilated = ticks_assimilated_.load(relaxed);
  s.ticks_rejected = ticks_rejected_.load(relaxed);
  s.wall_seconds = since_start_.seconds();
  s.ticks_per_second =
      s.wall_seconds > 0.0
          ? static_cast<double>(s.ticks_assimilated) / s.wall_seconds
          : 0.0;
  const std::size_t filled = static_cast<std::size_t>(
      std::min<std::uint64_t>(ring_pos_.load(relaxed), window_));
  std::vector<double> sample(filled);
  for (std::size_t i = 0; i < filled; ++i)
    sample[i] = latency_ring_[i].load(relaxed);
  s.push_latency = summarize_latencies(std::move(sample));
  return s;
}

std::string TelemetrySnapshot::str() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "events %llu in flight (%llu opened, %llu closed) | %llu ticks "
      "(%.0f/s aggregate, %llu rejected) | push p50 %s p95 %s p99 %s max %s",
      static_cast<unsigned long long>(events_in_flight),
      static_cast<unsigned long long>(events_opened),
      static_cast<unsigned long long>(events_closed),
      static_cast<unsigned long long>(ticks_assimilated), ticks_per_second,
      static_cast<unsigned long long>(ticks_rejected),
      format_duration(push_latency.p50).c_str(),
      format_duration(push_latency.p95).c_str(),
      format_duration(push_latency.p99).c_str(),
      format_duration(push_latency.max).c_str());
  return buf;
}

}  // namespace tsunami
