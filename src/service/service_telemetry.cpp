#include "service/service_telemetry.hpp"

#include <cstdio>

#include "util/table.hpp"

namespace tsunami {

void ServiceTelemetry::on_push(double seconds) {
  // mo: relaxed — per-push counter on the worker hot path; publishes no
  // other memory, and monitoring reads tolerate staleness.
  ticks_assimilated_.fetch_add(1, relaxed);
  push_latency_.record(seconds);
}

TelemetrySnapshot ServiceTelemetry::snapshot() const {
  TelemetrySnapshot s;
  // mo: relaxed — monitoring reads; each counter is individually coherent
  // and cross-counter skew is handled explicitly below.
  s.events_opened = events_opened_.load(relaxed);
  s.events_closed = events_closed_.load(relaxed);
  // The two loads are not atomic together: a close that lands between them
  // could make closed > opened. Saturate rather than wrap to ~1.8e19.
  s.events_in_flight = s.events_closed > s.events_opened
                           ? 0
                           : s.events_opened - s.events_closed;
  // mo: relaxed — same monitoring-read contract as above.
  s.ticks_assimilated = ticks_assimilated_.load(relaxed);
  s.ticks_rejected = ticks_rejected_.load(relaxed);
  s.ticks_blocked = ticks_blocked_.load(relaxed);
  s.ticks_corrupt = ticks_corrupt_.load(relaxed);
  s.wall_seconds = since_start_.seconds();
  s.ticks_per_second =
      s.wall_seconds > 0.0
          ? static_cast<double>(s.ticks_assimilated) / s.wall_seconds
          : 0.0;
  s.push_histogram = push_latency_.snapshot();
  s.push_latency.count = s.push_histogram.count;
  s.push_latency.mean = s.push_histogram.mean();
  s.push_latency.max = s.push_histogram.max;
  s.push_latency.p50 = s.push_histogram.percentile(50.0);
  s.push_latency.p95 = s.push_histogram.percentile(95.0);
  s.push_latency.p99 = s.push_histogram.percentile(99.0);
  s.time_to_first_forecast = ttff_.snapshot();
  s.alert_lead_time = alert_lead_.snapshot();
  return s;
}

void ServiceTelemetry::collect_into(obs::MetricsSnapshot& snapshot) const {
  // mo: relaxed — scrape-time reads of independent counters, same contract
  // as snapshot(); the in-flight gauge saturates on cross-counter skew.
  snapshot.counter("tsunami_service_events_opened_total",
                   static_cast<double>(events_opened_.load(relaxed)), {},
                   "Event sessions ever opened");
  snapshot.counter("tsunami_service_events_closed_total",
                   static_cast<double>(events_closed_.load(relaxed)), {},
                   "Event sessions closed");
  // mo: relaxed — same scrape-time contract as above.
  const std::uint64_t opened = events_opened_.load(relaxed);
  const std::uint64_t closed = events_closed_.load(relaxed);
  snapshot.gauge("tsunami_service_events_in_flight",
                 static_cast<double>(closed > opened ? 0 : opened - closed),
                 {}, "Event sessions currently open");
  // mo: relaxed — same scrape-time monitoring reads as above.
  snapshot.counter("tsunami_service_ticks_assimilated_total",
                   static_cast<double>(ticks_assimilated_.load(relaxed)), {},
                   "Observation ticks assimilated");
  snapshot.counter("tsunami_service_ticks_rejected_total",
                   static_cast<double>(ticks_rejected_.load(relaxed)), {},
                   "Ticks rejected by backpressure");
  // mo: relaxed — same scrape-time contract as above.
  snapshot.counter("tsunami_service_ticks_blocked_total",
                   static_cast<double>(ticks_blocked_.load(relaxed)), {},
                   "Submit calls that stalled on kBlock backpressure");
  // mo: relaxed — same scrape-time contract as above.
  snapshot.counter("tsunami_service_ticks_corrupt_total",
                   static_cast<double>(ticks_corrupt_.load(relaxed)), {},
                   "Malformed blocks refused at the submit boundary");
  snapshot.histogram("tsunami_service_push_latency_seconds",
                     push_latency_.snapshot(), {},
                     "Per-tick assimilation latency (lifetime)");
  snapshot.histogram("tsunami_slo_time_to_first_forecast_seconds",
                     ttff_.snapshot(), {},
                     "SLO: open_event to first published forecast");
  snapshot.histogram("tsunami_slo_alert_lead_time_seconds",
                     alert_lead_.snapshot(), {},
                     "SLO: event-timeline horizon remaining at alert latch");
}

std::string TelemetrySnapshot::str() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "events %llu in flight (%llu opened, %llu closed) | %llu ticks "
      "(%.0f/s aggregate, %llu rejected, %llu blocked) | push p50 %s p95 %s "
      "p99 %s max %s",
      static_cast<unsigned long long>(events_in_flight),
      static_cast<unsigned long long>(events_opened),
      static_cast<unsigned long long>(events_closed),
      static_cast<unsigned long long>(ticks_assimilated), ticks_per_second,
      static_cast<unsigned long long>(ticks_rejected),
      static_cast<unsigned long long>(ticks_blocked),
      format_duration(push_latency.p50).c_str(),
      format_duration(push_latency.p95).c_str(),
      format_duration(push_latency.p99).c_str(),
      format_duration(push_latency.max).c_str());
  return buf;
}

}  // namespace tsunami
