#include "service/service_telemetry.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/table.hpp"

namespace tsunami {

ServiceTelemetry::ServiceTelemetry(std::size_t window) {
  if (window == 0)
    throw std::invalid_argument("ServiceTelemetry: window == 0");
  latency_ring_.resize(window, 0.0);
}

void ServiceTelemetry::on_push(double seconds) {
  ticks_assimilated_.fetch_add(1, relaxed);
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  latency_ring_[ring_next_] = seconds;
  ring_next_ = (ring_next_ + 1) % latency_ring_.size();
  if (ring_filled_ < latency_ring_.size()) ++ring_filled_;
}

TelemetrySnapshot ServiceTelemetry::snapshot() const {
  TelemetrySnapshot s;
  s.events_opened = events_opened_.load(relaxed);
  s.events_closed = events_closed_.load(relaxed);
  // The two loads are not atomic together: a close that lands between them
  // could make closed > opened. Saturate rather than wrap to ~1.8e19.
  s.events_in_flight = s.events_closed > s.events_opened
                           ? 0
                           : s.events_opened - s.events_closed;
  s.ticks_assimilated = ticks_assimilated_.load(relaxed);
  s.ticks_rejected = ticks_rejected_.load(relaxed);
  s.wall_seconds = since_start_.seconds();
  s.ticks_per_second =
      s.wall_seconds > 0.0
          ? static_cast<double>(s.ticks_assimilated) / s.wall_seconds
          : 0.0;
  std::vector<double> sample;
  {
    const std::lock_guard<std::mutex> lock(latency_mutex_);
    sample.assign(latency_ring_.begin(),
                  latency_ring_.begin() +
                      static_cast<std::ptrdiff_t>(ring_filled_));
  }
  s.push_latency = summarize_latencies(std::move(sample));
  return s;
}

std::string TelemetrySnapshot::str() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "events %llu in flight (%llu opened, %llu closed) | %llu ticks "
      "(%.0f/s aggregate, %llu rejected) | push p50 %s p95 %s p99 %s max %s",
      static_cast<unsigned long long>(events_in_flight),
      static_cast<unsigned long long>(events_opened),
      static_cast<unsigned long long>(events_closed),
      static_cast<unsigned long long>(ticks_assimilated), ticks_per_second,
      static_cast<unsigned long long>(ticks_rejected),
      format_duration(push_latency.p50).c_str(),
      format_duration(push_latency.p95).c_str(),
      format_duration(push_latency.p99).c_str(),
      format_duration(push_latency.max).c_str());
  return buf;
}

}  // namespace tsunami
