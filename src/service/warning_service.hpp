#pragma once

// WarningService: concurrent event sessions over shared warm-start engines.
//
// The paper's online phase serves ONE event; an operational warning center
// during a Cascadia sequence (mainshock, aftershocks, far-field arrivals —
// and scenario sweeps running alongside live events) needs many at once.
// This is the serving layer: drain jobs on the process-wide work-stealing
// ThreadPool pull per-event ingest queues and push observations through
// per-event StreamingAssimilators, all of which share the immutable
// per-network StreamingEngine slabs held by an EngineCache — hundreds of
// sessions, one copy of the operators. Sessions on the SAME engine that are
// tick-aligned get their pushes fused into one multi-RHS slab sweep
// (StreamingAssimilator::push_many): the slab is the bandwidth cost of a
// push, so K concurrent events cost barely more than one.
//
//   EngineCache cache;                          // one per process
//   WarningService service({.num_workers = 8});
//   auto engine = cache.load("cascadia.bundle");        // warm start, once
//   EventId ev = service.open_event(engine, {.threshold = 1.0});
//   service.submit(ev, tick, d_block);          // any thread, any tick order
//   EventSnapshot s = service.latest_forecast(ev);      // lock-briefly read
//   EventSnapshot fin = service.close_event(ev);        // drains, removes
//
// Guarantees:
//   * per-event determinism — blocks are assimilated strictly in tick
//     order by at most one worker at a time, so an N-event concurrent
//     replay is bit-identical to N serial StreamingAssimilator replays
//     (asserted in tests/test_service.cpp);
//   * bounded memory — each session's ingest queue is capped
//     (max_pending_per_event) with a block-or-reject backpressure policy;
//   * observability — service-wide telemetry (events in flight, aggregate
//     ticks/sec, p50/p95/p99 push latency) via telemetry().

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <span>
#include <vector>

#include "service/engine_cache.hpp"
#include "service/event_session.hpp"
#include "service/service_telemetry.hpp"

namespace tsunami {

struct ServiceOptions {
  /// Maximum CONCURRENT drain jobs on the shared ThreadPool (the service no
  /// longer owns threads of its own: drains are fire-and-forget pool jobs,
  /// so service work and the twin's numeric loops share one set of workers
  /// instead of oversubscribing the machine). The cap bounds how much of
  /// the pool live events can claim while sweeps run alongside.
  std::size_t num_workers = 4;
  /// Per-session ingest-queue bound (the next-expected tick always bypasses
  /// it — see EventSession::submit).
  std::size_t max_pending_per_event = 128;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Alert rule applied when open_event() is not given one.
  AlertPolicy default_alert{};
  /// Fuse tick-aligned pushes from sessions sharing one engine into one
  /// multi-RHS slab sweep (StreamingAssimilator::push_many). Bit-identical
  /// to unbatched draining — per-event results cannot depend on who else is
  /// in the batch (asserted in tests) — so this is purely a throughput
  /// knob.
  bool cross_event_batching = true;
  /// Most sessions fused into one batched sweep (>= 1; 1 disables fusion).
  std::size_t max_batch_events = 16;
  /// Retained records in the service-wide lifecycle journal (EventJournal;
  /// oldest overwritten first). Appends are wait-free from drain workers.
  std::size_t journal_capacity = 1 << 16;
};

class WarningService {
 public:
  explicit WarningService(const ServiceOptions& options = {});

  /// Waits for in-flight drain jobs to finish, then detaches from the pool.
  /// Does NOT drain queued backlogs: buffered-but-unassimilated blocks are
  /// dropped (call drain() or close_event() first if they matter).
  ~WarningService();

  WarningService(const WarningService&) = delete;
  WarningService& operator=(const WarningService&) = delete;

  /// Register a new event over `engine` (from an EngineCache; the session
  /// shares the engine, nothing is copied). Thread-safe.
  [[nodiscard]] EventId open_event(std::shared_ptr<const CachedEngine> engine);
  [[nodiscard]] EventId open_event(std::shared_ptr<const CachedEngine> engine,
                                   const AlertPolicy& alert);

  /// Ingest observation interval `tick` of event `id`. Any thread, any
  /// tick order within the event window; duplicates and out-of-range ticks
  /// throw std::invalid_argument, unknown ids std::out_of_range, closed
  /// events std::logic_error, and a full queue blocks or throws
  /// ServiceOverloaded per the backpressure policy.
  void submit(EventId id, std::size_t tick, std::span<const double> d_block);

  /// Partial-tick ingest: `valid[c] == 0` marks channel c as lost on the
  /// wire for this block only (empty = all present). Malformed blocks
  /// (wrong data or bitmap dimension, impossible tick) are journaled as
  /// kReject and refused with std::invalid_argument at this boundary —
  /// never out of a drain worker.
  void submit(EventId id, std::size_t tick, std::span<const double> d_block,
              std::span<const std::uint8_t> valid);

  /// Degraded-mode control plane: mask sensor channel `s` out of event
  /// `id`'s assimilation, mid-stream. The event's posterior becomes the
  /// exact posterior over the surviving network (all past and future data
  /// from `s` projected out); the corrected forecast republishes
  /// immediately and the journal records kSensorDrop.
  void drop_sensor(EventId id, std::size_t s);
  /// Undo drop_sensor: re-admit channel `s`. The drop was a projection, not
  /// a deletion, so data from `s` assimilated BEFORE the drop returns to
  /// the posterior exactly; ticks that arrived while the channel was masked
  /// stay projected out forever (their payload was discarded at ingest).
  /// Journals kSensorRestore.
  void restore_sensor(EventId id, std::size_t s);

  /// Latest rolling forecast + alert state of one event (cheap snapshot).
  [[nodiscard]] EventSnapshot latest_forecast(EventId id) const;

  /// Drain the event's remaining in-order backlog, remove it from the
  /// service, and return its final state. Subsequent submits/queries on
  /// the id throw. Buffered blocks beyond a tick gap are discarded (they
  /// could never be assimilated) and reported via ticks_pending.
  EventSnapshot close_event(EventId id);

  /// Block until every open session's in-order backlog is assimilated.
  void drain();

  [[nodiscard]] TelemetrySnapshot telemetry() const {
    return telemetry_.snapshot();
  }
  /// Contribute the service's metric series to an export snapshot; render
  /// with obs::prometheus_text / obs::json_text. Beyond the telemetry
  /// counters and SLO histograms (tsunami_service_* / tsunami_slo_*) this
  /// adds a per-live-session tsunami_service_forecast_staleness_seconds
  /// gauge (labelled by event id, computed at scrape time) and the journal
  /// record/drop counters.
  void collect_metrics(obs::MetricsSnapshot& snapshot) const;
  /// The service-wide lifecycle journal (export with journal().json_lines()).
  [[nodiscard]] const EventJournal& journal() const { return journal_; }
  /// Live per-event state as one JSON object — the /events introspection
  /// route: {"events":[{id, ticks, pending, complete, alert, alert_tick,
  /// staleness_seconds, journal:[...]}, ...], "journal_appended": N,
  /// "journal_dropped": M}. Each event's journal rows are inlined.
  [[nodiscard]] std::string events_json() const;
  [[nodiscard]] std::size_t events_in_flight() const;
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  [[nodiscard]] std::shared_ptr<EventSession> session(EventId id) const;
  void enqueue_ready(std::shared_ptr<EventSession> s);
  /// Launch drain jobs for queued sessions while under the concurrency cap.
  /// Called under queue_mutex_.
  void pump_locked();
  /// Body of one pool drain job: drain the session (batched or not), then
  /// release the drain slot and pump again.
  void run_drain(std::shared_ptr<EventSession> leader);
  /// Cross-event batched drain: co-opt tick-aligned same-engine sessions
  /// and fuse their pushes through push_many.
  void drain_batched(std::shared_ptr<EventSession> leader);

  ServiceOptions options_;
  ServiceTelemetry telemetry_;
  EventJournal journal_;  ///< shared by every session; outlives them all

  // Lock order: sessions_mutex_ before any session's internal lock;
  // queue_mutex_ is a leaf (never held while calling into sessions).
  mutable std::mutex sessions_mutex_;
  std::map<EventId, std::shared_ptr<EventSession>> sessions_;
  EventId next_id_ = 1;

  std::mutex queue_mutex_;
  std::condition_variable drains_cv_;  ///< dtor waits for active_drains_ == 0
  std::deque<std::shared_ptr<EventSession>> ready_;
  std::size_t active_drains_ = 0;  ///< pool jobs currently draining
  bool stopping_ = false;
};

}  // namespace tsunami
