#pragma once

// EngineCache: one immutable StreamingEngine per sensor network, shared by
// every concurrent event session.
//
// The offline products (F, L, Q, Gamma_post(q)) and the streaming slabs
// baked from them (R, W*) are by far the largest allocations in the online
// system, and they are event-independent: a warning service tracking
// hundreds of simultaneous events over the same network must hold exactly
// one copy. The cache keys engines by TwinConfig::fingerprint() — the same
// FNV-1a identity the artifact bundle stores — so two bundles produced by
// identical configurations resolve to the same in-memory engine, and a
// service covering several networks (e.g. Cascadia segments with different
// sensor layouts) holds one engine per distinct fingerprint.
//
// Lifetime: a cache entry owns its twin via shared_ptr and hands out
// shared_ptr<const CachedEngine>, so sessions keep the operators alive even
// if the entry is evicted (clear()) mid-event — the twin's streaming
// lifetime token stays valid for as long as any session holds the entry.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/digital_twin.hpp"

namespace tsunami {

/// One cached per-network engine: the twin that owns the offline operators
/// plus the immutable streaming precompute over them. Sessions share a
/// single CachedEngine; everything reachable from it is const.
class CachedEngine {
 public:
  CachedEngine(std::shared_ptr<const DigitalTwin> twin,
               const StreamingOptions& options);

  [[nodiscard]] const DigitalTwin& twin() const { return *twin_; }
  [[nodiscard]] const StreamingEngine& engine() const { return engine_; }
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  std::shared_ptr<const DigitalTwin> twin_;  ///< keeps the operators alive
  std::uint64_t fingerprint_;
  StreamingEngine engine_;  ///< slabs over *twin_; built after twin_
};

/// Thread-safe registry of CachedEngines keyed by config fingerprint.
class EngineCache {
 public:
  /// `options` apply to every engine the cache builds (a service that needs
  /// both a MAP-tracking and a lean engine uses two caches).
  explicit EngineCache(const StreamingOptions& options = {});

  /// Boot-or-reuse from an artifact bundle file. A known path is a pure
  /// map lookup; a new path is read + checksummed only far enough to learn
  /// its fingerprint, and a fingerprint hit skips the twin boot and slab
  /// build entirely (a known network shipped under a new file name stays
  /// cheap). Only a genuinely new network pays the warm start — zero PDE
  /// solves — and the engine build, outside the cache lock. Two threads
  /// racing to load the same new network may both parse the bundle, but
  /// exactly one engine is kept and both get it.
  [[nodiscard]] std::shared_ptr<const CachedEngine> load(
      const std::string& bundle_path);

  /// Insert an already-built twin (e.g. the cold-path twin in tests, or one
  /// booted elsewhere). Requires completed offline phases. If an engine
  /// with the same fingerprint is already cached, that instance is returned
  /// and `twin` is dropped — the cache guarantees one engine per network.
  [[nodiscard]] std::shared_ptr<const CachedEngine> adopt(
      std::shared_ptr<const DigitalTwin> twin);

  /// The cached engine for `fingerprint`, or nullptr.
  [[nodiscard]] std::shared_ptr<const CachedEngine> find(
      std::uint64_t fingerprint) const;

  [[nodiscard]] std::size_t size() const;

  /// Drop every entry. Sessions holding shared_ptrs keep their engines
  /// alive; future load()s rebuild.
  void clear();

 private:
  [[nodiscard]] std::shared_ptr<const CachedEngine> insert_or_get(
      std::shared_ptr<const CachedEngine> candidate);

  StreamingOptions options_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<const CachedEngine>> engines_;
  /// Memo of bundle path -> fingerprint so repeat load()s skip file I/O.
  std::map<std::string, std::uint64_t> path_fingerprints_;
};

}  // namespace tsunami
