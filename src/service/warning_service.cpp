#include "service/warning_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tsunami {

WarningService::WarningService(const ServiceOptions& options)
    : options_(options), telemetry_(options.telemetry_window) {
  if (options_.num_workers == 0)
    throw std::invalid_argument("WarningService: num_workers == 0");
  if (options_.max_pending_per_event == 0)
    throw std::invalid_argument("WarningService: max_pending_per_event == 0");
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

WarningService::~WarningService() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

EventId WarningService::open_event(
    std::shared_ptr<const CachedEngine> engine) {
  return open_event(std::move(engine), options_.default_alert);
}

EventId WarningService::open_event(std::shared_ptr<const CachedEngine> engine,
                                   const AlertPolicy& alert) {
  // Session construction (one StreamingAssimilator: a few vectors) happens
  // outside the sessions lock; only the id allocation and map insert are
  // serialized.
  EventId id;
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    id = next_id_++;
  }
  auto session = std::make_shared<EventSession>(
      id, std::move(engine), alert, options_.max_pending_per_event,
      options_.backpressure);
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.emplace(id, std::move(session));
  }
  telemetry_.on_event_opened();
  return id;
}

void WarningService::submit(EventId id, std::size_t tick,
                            std::span<const double> d_block) {
  // Hold the session by shared_ptr, not iterator: a concurrent close only
  // removes it from the map, and a submit that raced past the removal gets
  // the session's own closed-event throw.
  const std::shared_ptr<EventSession> s = session(id);
  if (s->submit(tick, d_block, telemetry_)) enqueue_ready(s);
}

EventSnapshot WarningService::latest_forecast(EventId id) const {
  return session(id)->snapshot();
}

EventSnapshot WarningService::close_event(EventId id) {
  std::shared_ptr<EventSession> s;
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
      throw std::out_of_range("WarningService: unknown event id");
    s = std::move(it->second);
    sessions_.erase(it);
  }
  s->begin_close();
  s->wait_idle();
  telemetry_.on_event_closed();
  return s->snapshot();
}

void WarningService::drain() {
  std::vector<std::shared_ptr<EventSession>> open;
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    open.reserve(sessions_.size());
    for (const auto& [_, s] : sessions_) open.push_back(s);
  }
  for (const auto& s : open) s->wait_idle();
}

std::size_t WarningService::events_in_flight() const {
  const std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

std::shared_ptr<EventSession> WarningService::session(EventId id) const {
  const std::lock_guard<std::mutex> lock(sessions_mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end())
    throw std::out_of_range("WarningService: unknown event id");
  return it->second;
}

void WarningService::enqueue_ready(std::shared_ptr<EventSession> s) {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    ready_.push_back(std::move(s));
  }
  queue_cv_.notify_one();
}

void WarningService::worker_loop() {
  for (;;) {
    std::shared_ptr<EventSession> s;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !ready_.empty(); });
      if (stopping_) return;
      s = std::move(ready_.front());
      ready_.pop_front();
    }
    // drain_for assimilates the session's whole in-order backlog and clears
    // its scheduled flag under the session lock, so per-session execution
    // stays single-threaded while distinct sessions run concurrently.
    s->drain_for(telemetry_);
  }
}

}  // namespace tsunami
