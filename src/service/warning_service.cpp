#include "service/warning_service.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace tsunami {

WarningService::WarningService(const ServiceOptions& options)
    : options_(options), journal_(options.journal_capacity) {
  if (options_.num_workers == 0)
    throw std::invalid_argument("WarningService: num_workers == 0");
  if (options_.max_pending_per_event == 0)
    throw std::invalid_argument("WarningService: max_pending_per_event == 0");
  if (options_.max_batch_events == 0)
    throw std::invalid_argument("WarningService: max_batch_events == 0");
}

WarningService::~WarningService() {
  // No threads to join — drains are jobs on the shared pool. Refuse new
  // launches, drop the not-yet-launched queue (sessions die with us), and
  // wait out the in-flight jobs: each still touches `this` (telemetry, the
  // drain slot) until it signals drains_cv_.
  std::unique_lock<std::mutex> lock(queue_mutex_);
  stopping_ = true;
  ready_.clear();
  drains_cv_.wait(lock, [&] { return active_drains_ == 0; });
}

EventId WarningService::open_event(
    std::shared_ptr<const CachedEngine> engine) {
  return open_event(std::move(engine), options_.default_alert);
}

EventId WarningService::open_event(std::shared_ptr<const CachedEngine> engine,
                                   const AlertPolicy& alert) {
  // Session construction (one StreamingAssimilator: a few vectors) happens
  // outside the sessions lock; only the id allocation and map insert are
  // serialized.
  EventId id;
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    id = next_id_++;
  }
  auto session = std::make_shared<EventSession>(
      id, std::move(engine), alert, options_.max_pending_per_event,
      options_.backpressure, &journal_);
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions_.emplace(id, std::move(session));
  }
  telemetry_.on_event_opened();
  return id;
}

void WarningService::submit(EventId id, std::size_t tick,
                            std::span<const double> d_block) {
  // Hold the session by shared_ptr, not iterator: a concurrent close only
  // removes it from the map, and a submit that raced past the removal gets
  // the session's own closed-event throw.
  const std::shared_ptr<EventSession> s = session(id);
  if (s->submit(tick, d_block, telemetry_)) enqueue_ready(s);
}

void WarningService::submit(EventId id, std::size_t tick,
                            std::span<const double> d_block,
                            std::span<const std::uint8_t> valid) {
  const std::shared_ptr<EventSession> s = session(id);
  if (s->submit(tick, d_block, valid, telemetry_)) enqueue_ready(s);
}

void WarningService::drop_sensor(EventId id, std::size_t s) {
  session(id)->set_sensor(s, /*live=*/false, telemetry_);
}

void WarningService::restore_sensor(EventId id, std::size_t s) {
  session(id)->set_sensor(s, /*live=*/true, telemetry_);
}

EventSnapshot WarningService::latest_forecast(EventId id) const {
  return session(id)->snapshot();
}

EventSnapshot WarningService::close_event(EventId id) {
  std::shared_ptr<EventSession> s;
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
      throw std::out_of_range("WarningService: unknown event id");
    s = std::move(it->second);
    sessions_.erase(it);
  }
  s->begin_close();
  s->wait_idle();
  telemetry_.on_event_closed();
  EventSnapshot final_state = s->snapshot();
  s->journal_mark(JournalKind::kClose, final_state.ticks_assimilated);
  return final_state;
}

void WarningService::drain() {
  std::vector<std::shared_ptr<EventSession>> open;
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    open.reserve(sessions_.size());
    for (const auto& [_, s] : sessions_) open.push_back(s);
  }
  for (const auto& s : open) s->wait_idle();
}

std::size_t WarningService::events_in_flight() const {
  const std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

void WarningService::collect_metrics(obs::MetricsSnapshot& snapshot) const {
  telemetry_.collect_into(snapshot);
  snapshot.counter("tsunami_service_journal_records_total",
                   static_cast<double>(journal_.appended()), {},
                   "Lifecycle journal records ever appended");
  snapshot.counter("tsunami_service_journal_dropped_total",
                   static_cast<double>(journal_.dropped()), {},
                   "Journal records overwritten by ring wrap");
  // Per-session staleness is computed at scrape time from each session's
  // last-publish stamp — nothing is registered per event, so the metric
  // surface stays bounded by the live session count.
  std::vector<std::shared_ptr<EventSession>> open;
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    open.reserve(sessions_.size());
    for (const auto& [_, s] : sessions_) open.push_back(s);
  }
  std::size_t degraded_sessions = 0;
  for (const auto& s : open) {
    snapshot.gauge("tsunami_service_forecast_staleness_seconds",
                   s->staleness_seconds(),
                   {{"event", std::to_string(s->id())}},
                   "Seconds since this event last published a forecast");
    const auto [degraded, dropped] = s->degraded_state();
    if (degraded) ++degraded_sessions;
    if (dropped > 0)
      snapshot.gauge("tsunami_service_dropped_channels",
                     static_cast<double>(dropped),
                     {{"event", std::to_string(s->id())}},
                     "Sensor channels currently masked out of this event");
  }
  snapshot.gauge("tsunami_service_degraded_sessions",
                 static_cast<double>(degraded_sessions), {},
                 "Sessions currently publishing degraded (reduced-network) "
                 "forecasts");
}

std::string WarningService::events_json() const {
  std::vector<std::shared_ptr<EventSession>> open;
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    open.reserve(sessions_.size());
    for (const auto& [_, s] : sessions_) open.push_back(s);
  }
  const std::vector<JournalRecord> records = journal_.snapshot();

  std::string out = "{\"events\":[";
  bool first_event = true;
  for (const auto& s : open) {
    const EventSnapshot snap = s->snapshot();
    if (!first_event) out += ',';
    first_event = false;
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%llu,\"ticks\":%zu,\"pending\":%zu,"
                  "\"complete\":%s,\"alert\":%s,\"alert_tick\":%zu,"
                  "\"degraded\":%s,\"dropped_channels\":%zu,"
                  "\"staleness_seconds\":%.6f,\"journal\":[",
                  static_cast<unsigned long long>(snap.id),
                  snap.ticks_assimilated, snap.ticks_pending,
                  snap.complete ? "true" : "false",
                  snap.alert ? "true" : "false", snap.alert_tick,
                  snap.degraded ? "true" : "false", snap.dropped_channels,
                  s->staleness_seconds());
    out += buf;
    bool first_record = true;
    for (const JournalRecord& r : records) {
      if (r.event != snap.id) continue;
      if (!first_record) out += ',';
      first_record = false;
      EventJournal::append_record_json(out, r);
    }
    out += "]}";
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail),
                "],\"journal_appended\":%llu,\"journal_dropped\":%llu}",
                static_cast<unsigned long long>(journal_.appended()),
                static_cast<unsigned long long>(journal_.dropped()));
  out += tail;
  return out;
}

std::shared_ptr<EventSession> WarningService::session(EventId id) const {
  const std::lock_guard<std::mutex> lock(sessions_mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end())
    throw std::out_of_range("WarningService: unknown event id");
  return it->second;
}

void WarningService::enqueue_ready(std::shared_ptr<EventSession> s) {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  if (stopping_) return;
  ready_.push_back(std::move(s));
  pump_locked();
}

void WarningService::pump_locked() {
  while (!stopping_ && active_drains_ < options_.num_workers &&
         !ready_.empty()) {
    std::shared_ptr<EventSession> s = std::move(ready_.front());
    ready_.pop_front();
    ++active_drains_;
    // Submitting under queue_mutex_ is fine: the pool's queues are leaves
    // below it, and the job itself reacquires queue_mutex_ only at the end
    // of run_drain.
    ThreadPool::global().submit(
        [this, s = std::move(s)]() mutable { run_drain(std::move(s)); });
  }
}

void WarningService::run_drain(std::shared_ptr<EventSession> leader) {
  // The session arrives with its scheduled flag held (won by the submit that
  // enqueued it), so this job is its sole drainer until release.
  TRACE_SCOPE("service", "drain");
  if (options_.cross_event_batching && options_.max_batch_events > 1)
    drain_batched(std::move(leader));
  else
    leader->drain_for(telemetry_);

  const std::lock_guard<std::mutex> lock(queue_mutex_);
  --active_drains_;
  pump_locked();
  if (active_drains_ == 0) drains_cv_.notify_all();
}

void WarningService::drain_batched(std::shared_ptr<EventSession> leader) {
  // Co-opt peers: sessions on the SAME engine with in-order work and no
  // owner. try_schedule wins their scheduled flag, so from here until
  // release_if_idle succeeds each co-opted session is ours exclusively —
  // exactly the ownership a drain job would have had, acquired without
  // waiting (never block under sessions_mutex_).
  std::vector<std::shared_ptr<EventSession>> active;
  active.push_back(std::move(leader));
  {
    const StreamingEngine* eng = &active.front()->cached_engine().engine();
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto& [_, s] : sessions_) {
      if (active.size() >= options_.max_batch_events) break;
      if (s == active.front()) continue;
      if (&s->cached_engine().engine() != eng) continue;
      if (s->try_schedule()) active.push_back(s);
    }
  }

  // Round loop: pop at most ONE in-order block per session per round, fuse
  // the tick-aligned groups through push_many, publish each session, and
  // release sessions that ran dry. Per session the blocks still land in
  // strict tick order through the same FP operations (push_many is
  // bit-identical to serial pushes by construction), so batching cannot
  // change any event's result — only how many slab sweeps pay for them.
  TRACE_SCOPE("service", "drain_batched");
  std::vector<StreamingAssimilator*> group_events;
  std::vector<std::span<const double>> group_blocks;
  std::vector<std::span<const std::uint8_t>> group_valids;
  while (!active.empty()) {
    const std::size_t n = active.size();
    std::vector<EventSession::Block> blocks(n);
    std::vector<char> has(n, 0);
    std::map<std::size_t, std::vector<std::size_t>> by_tick;
    for (std::size_t i = 0; i < n; ++i) {
      // Sensor control ops land at round boundaries, mirroring drain_for's
      // cycle head — release_if_idle below refuses to idle past one, so an
      // op queued mid-round is applied next round, never lost.
      if (active[i]->apply_pending_mask_ops())
        active[i]->publish_forecast_only();
      if (active[i]->take_one_runnable(blocks[i])) {
        has[i] = 1;
        by_tick[blocks[i].tick].push_back(i);
      }
    }
    for (const auto& [tick, idxs] : by_tick) {
      if (idxs.size() == 1) {
        // Degenerate group: the plain single-event push path.
        active[idxs.front()]->assimilate(blocks[idxs.front()], telemetry_);
        continue;
      }
      group_events.clear();
      group_blocks.clear();
      group_valids.clear();
      bool any_valid_bitmap = false;
      for (const std::size_t i : idxs) {
        // Arm each session's latency-budget context now: the fused sweep is
        // where every block's queue wait ends and its push begins.
        active[i]->begin_push_ctx(tick, blocks[i].enqueue_ns);
        group_events.push_back(&active[i]->assimilator());
        group_blocks.push_back(blocks[i].data);
        group_valids.push_back(blocks[i].valid);
        any_valid_bitmap |= !blocks[i].valid.empty();
      }
      if (any_valid_bitmap)
        StreamingAssimilator::push_many(group_events, tick, group_blocks,
                                        group_valids);
      else
        StreamingAssimilator::push_many(group_events, tick, group_blocks);
      for (const std::size_t i : idxs)
        active[i]->publish_after_push(telemetry_);
    }
    // Keep sessions that produced a block (they may have more); for the
    // rest, release — unless a submit raced new in-order work in, in which
    // case release fails and the session stays ours for the next round.
    std::vector<std::shared_ptr<EventSession>> next;
    next.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (has[i] || !active[i]->release_if_idle())
        next.push_back(std::move(active[i]));
    }
    active.swap(next);
  }
}

}  // namespace tsunami
