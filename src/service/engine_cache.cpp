#include "service/engine_cache.hpp"

#include <stdexcept>
#include <utility>

#include "util/artifact_bundle.hpp"

namespace tsunami {

namespace {

std::shared_ptr<const DigitalTwin> require_online(
    std::shared_ptr<const DigitalTwin> twin) {
  if (!twin) throw std::invalid_argument("CachedEngine: null twin");
  if (!twin->online_ready())
    throw std::logic_error(
        "CachedEngine: twin's offline phases are not complete");
  return twin;
}

}  // namespace

CachedEngine::CachedEngine(std::shared_ptr<const DigitalTwin> twin,
                           const StreamingOptions& options)
    : twin_(require_online(std::move(twin))),
      fingerprint_(twin_->config().fingerprint()),
      engine_(twin_->make_streaming(options)) {}

EngineCache::EngineCache(const StreamingOptions& options)
    : options_(options) {}

std::shared_ptr<const CachedEngine> EngineCache::load(
    const std::string& bundle_path) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto memo = path_fingerprints_.find(bundle_path);
    if (memo != path_fingerprints_.end()) {
      auto it = engines_.find(memo->second);
      if (it != engines_.end()) return it->second;
    }
  }
  // Path miss: read + checksum the bundle (file I/O only — no PDE solves,
  // no factorization, no slab build) to learn its fingerprint before
  // committing to a boot, so a known network shipped under a new file name
  // is still a cheap hit. A hit uses nothing from the bundle but its
  // identity: a header that lied about its fingerprint could at worst alias
  // to an already-validated engine, never inject state (the miss path below
  // re-verifies the fingerprint against the stored config during boot).
  const ArtifactBundle bundle = load_bundle(bundle_path);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    path_fingerprints_[bundle_path] = bundle.fingerprint;
    auto it = engines_.find(bundle.fingerprint);
    if (it != engines_.end()) return it->second;
  }
  // Fingerprint miss: warm-start the twin and build the slabs outside the
  // lock, so a slow boot of one network never stalls sessions on another.
  auto twin = std::make_shared<const DigitalTwin>(bundle);
  return insert_or_get(
      std::make_shared<const CachedEngine>(std::move(twin), options_));
}

std::shared_ptr<const CachedEngine> EngineCache::adopt(
    std::shared_ptr<const DigitalTwin> twin) {
  twin = require_online(std::move(twin));
  const std::uint64_t fp = twin->config().fingerprint();
  {
    // Fast path: a fingerprint hit skips the slab build entirely.
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = engines_.find(fp);
    if (it != engines_.end()) return it->second;
  }
  return insert_or_get(
      std::make_shared<const CachedEngine>(std::move(twin), options_));
}

std::shared_ptr<const CachedEngine> EngineCache::find(
    std::uint64_t fingerprint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = engines_.find(fingerprint);
  return it == engines_.end() ? nullptr : it->second;
}

std::size_t EngineCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return engines_.size();
}

void EngineCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  engines_.clear();
  path_fingerprints_.clear();
}

std::shared_ptr<const CachedEngine> EngineCache::insert_or_get(
    std::shared_ptr<const CachedEngine> candidate) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // If another thread won the race, its engine is the canonical one and the
  // candidate (and its twin) are freed here.
  return engines_.emplace(candidate->fingerprint(), std::move(candidate))
      .first->second;
}

}  // namespace tsunami
