#pragma once

// Deterministic service-level fault injection (degraded-mode harness).
//
// A degraded-mode code path that is only exercised when real hardware fails
// is a code path that does not work. The injector turns the failure modes
// of a live seafloor-cable feed into REPRODUCIBLE test inputs:
//
//   * sensor death:  channel s goes dark at tick t (optionally back at r) —
//                    driven through WarningService::drop_sensor/restore_sensor;
//   * packet loss:   a whole tick block never arrives — submitted with an
//                    all-zeros validity bitmap, so the stream keeps moving
//                    and the posterior is exact over what did arrive;
//   * corruption:    a block arrives with the wrong dimension and must be
//                    rejected at the submit boundary (journal kReject).
//
// Every decision is a pure hash of (seed, event, tick): no global state, no
// call-order dependence, no RNG stream shared across threads. Two replays
// of the same plan produce the same faults on any machine under any worker
// interleaving — the repo's seeded-determinism contract extended to its
// failure modes.
//
// Env knobs (FaultPlan::from_env; used by examples/warning_service.cpp and
// the CI fault-injection job):
//   TSUNAMI_FAULT_SEED=42                   hash seed (default 42)
//   TSUNAMI_FAULT_DROP_SENSOR=2@5,0@8-20    comma list of channel@drop_tick
//                                           or channel@drop_tick-restore_tick
//   TSUNAMI_FAULT_PACKET_LOSS=0.05          P(lose block) per (event, tick)
//   TSUNAMI_FAULT_CORRUPT=0.01              P(corrupt block) per (event, tick)

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace tsunami {

/// One scripted sensor outage: channel `sensor` drops at `drop_tick` and
/// (if restore_tick != kNever) comes back at `restore_tick`.
struct SensorFault {
  static constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();
  std::size_t sensor = 0;
  std::size_t drop_tick = 0;
  std::size_t restore_tick = kNever;
};

/// The full injection script. Plain data so tests can build plans directly;
/// from_env() is the deployment/CI entry point.
struct FaultPlan {
  std::uint64_t seed = 42;
  double packet_loss = 0.0;  ///< in [0, 1]
  double corrupt = 0.0;      ///< in [0, 1]
  std::vector<SensorFault> sensor_faults;

  /// Parse the TSUNAMI_FAULT_* environment knobs (absent knobs keep their
  /// defaults). Throws std::invalid_argument on malformed values — a typo'd
  /// fault script that silently injects nothing would "pass" every drill.
  [[nodiscard]] static FaultPlan from_env();

  [[nodiscard]] bool any() const {
    return packet_loss > 0.0 || corrupt > 0.0 || !sensor_faults.empty();
  }
};

/// Stateless decision oracle over a FaultPlan. const and thread-safe; every
/// method is a pure function of its arguments and the plan.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Should (event, tick)'s block be lost in transit?
  [[nodiscard]] bool lose_block(std::uint64_t event, std::size_t tick) const;

  /// Should (event, tick)'s block arrive dimensionally corrupt? Evaluated
  /// only when the block was not already lost (loss shadows corruption).
  [[nodiscard]] bool corrupt_block(std::uint64_t event,
                                   std::size_t tick) const;

  /// Scripted sensor ops due at `tick`: (channel, live) pairs, drops before
  /// restores. Feed-loop contract: call once per tick, before submitting
  /// that tick's blocks.
  [[nodiscard]] std::vector<std::pair<std::size_t, bool>> sensor_ops_at(
      std::size_t tick) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  /// Uniform [0,1) from a hash of (seed, salt, event, tick).
  [[nodiscard]] double uniform(std::uint64_t salt, std::uint64_t event,
                               std::size_t tick) const;

  FaultPlan plan_;
};

}  // namespace tsunami
