#pragma once

// Dense symmetric positive-definite Cholesky factorization and solves.
//
// This is the CPU stand-in for the paper's cuSOLVERMp Cholesky of the
// data-space Hessian K = Gamma_noise + F G* (Table III: "factorize K").
// Blocked right-looking algorithm with pool-parallel trailing updates.
//
// Prefix solves: because Cholesky commutes with taking leading principal
// submatrices (the factor of A[0:p, 0:p] is exactly L[0:p, 0:p]), the same
// factor serves every truncated system A_p x = b_p. Forward substitution is
// additionally *causal* — entry i of L^{-1} b depends only on b[0:i+1] — so
// it can be resumed row-by-row as new right-hand-side entries arrive. The
// range/prefix entry points below expose both facts; they are the kernel of
// the streaming assimilation engine (src/core/streaming_assimilator.hpp).

#include <span>

#include "linalg/dense.hpp"
#include "util/hot_path.hpp"

namespace tsunami {

/// Cholesky factorization A = L L^T of an SPD matrix (lower triangular L).
class DenseCholesky {
 public:
  /// Factorizes a copy of `a`. Throws std::runtime_error if a nonpositive
  /// pivot is encountered (matrix not SPD to working precision).
  explicit DenseCholesky(const Matrix& a, std::size_t block = 64);

  /// Rebuild from a previously computed factor (factor export/import: the
  /// warm-start path loads L from an artifact bundle instead of paying the
  /// O(n^3) factorization again). `l` must be square with positive diagonal;
  /// its strict upper triangle is zeroed to restore the class invariant.
  /// All solves on the result are bit-identical to the original object's.
  [[nodiscard]] static DenseCholesky from_factor(Matrix l);

  /// Solve A x = b in place (forward + backward substitution).
  void solve_in_place(std::span<double> b) const;

  /// Solve for multiple right-hand sides stored as columns of B.
  void solve_in_place(Matrix& b) const;

  /// Solve L y = b (forward substitution only).
  void forward_solve_in_place(std::span<double> b) const;

  /// Forward substitution for multiple right-hand sides (columns of B).
  void forward_solve_in_place(Matrix& b) const;

  /// Resume forward substitution over rows [begin, end). On entry, b[0:begin)
  /// must already hold solution entries of L y = b (from earlier calls) and
  /// b[begin:end) the newly arrived right-hand-side entries; on exit,
  /// b[begin:end) holds solution entries. b[end:] is never read or written,
  /// so a full-length buffer can be filled incrementally. Cost O((end-begin)
  /// * end) — extending a solve by one block touches only the new rows.
  TSUNAMI_HOT_PATH void forward_solve_range(std::span<double> b,
                                            std::size_t begin,
                                            std::size_t end) const;

  /// Backward substitution L^T x = b (completes a solve of A x = rhs after
  /// forward_solve_*).
  void backward_solve_in_place(std::span<double> b) const;

  /// Backward substitution restricted to the leading principal subsystem:
  /// solves L[0:p, 0:p]^T x = b[0:p) in place. Because the leading block of L
  /// is the Cholesky factor of the leading block of A, composing
  /// forward_solve_range(b, 0, p) with backward_solve_prefix(b, p) solves
  /// A[0:p, 0:p] x = b[0:p) exactly — no refactorization.
  void backward_solve_prefix(std::span<double> b, std::size_t prefix) const;

  // ---- low-rank factor maintenance ----------------------------------------
  // Rank-1 update/downdate rotate the factor in place in O(n^2) — the kernel
  // of degraded-mode inference (ISSUE 10): removing or re-adding a sensor's
  // rows edits the data-space factor without the O(n^3) refactorization.
  // Both are destructive on `u` (it becomes rotation scratch); callers own
  // the buffer so the streaming hot path can reuse one allocation forever.

  /// A <- A + u u^T via Givens rotations applied to [L u]. Destroys `u`.
  /// u.size() must equal dim().
  TSUNAMI_HOT_PATH void rank_update(std::span<double> u);

  /// A <- A - u u^T via hyperbolic rotations. Destroys `u`. Throws
  /// std::runtime_error if the downdated matrix is not SPD to working
  /// precision (the pivot under the rotation would be nonpositive).
  TSUNAMI_HOT_PATH void rank_downdate(std::span<double> u);

  /// Rank-r update/downdate: one rank-1 pass per column of `u_cols`
  /// (dim() x r), left to right. O(r n^2) total.
  void rank_update_many(const Matrix& u_cols);
  void rank_downdate_many(const Matrix& u_cols);

  /// Grow the factorization by one trailing row/column: given the new
  /// symmetric column a_col = A[0:n+1, n] of the extended matrix (length
  /// n+1, diagonal entry last), appends the matching factor row in O(n^2)
  /// (dominated by copying L into its larger storage; the solve is O(n^2)
  /// too). Throws if the extended matrix is not SPD. This is the "sensor
  /// joins" direction of the update/downdate pair.
  void append_row(std::span<const double> a_col);

  /// log det(A) = 2 sum log L_ii.
  [[nodiscard]] double log_det() const;

  [[nodiscard]] const Matrix& factor() const { return l_; }
  [[nodiscard]] std::size_t dim() const { return l_.rows(); }

 private:
  DenseCholesky() = default;  ///< for from_factor

  Matrix l_;
};

}  // namespace tsunami
