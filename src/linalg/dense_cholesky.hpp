#pragma once

// Dense symmetric positive-definite Cholesky factorization and solves.
//
// This is the CPU stand-in for the paper's cuSOLVERMp Cholesky of the
// data-space Hessian K = Gamma_noise + F G* (Table III: "factorize K").
// Blocked right-looking algorithm with OpenMP-parallel trailing updates.

#include <span>

#include "linalg/dense.hpp"

namespace tsunami {

/// Cholesky factorization A = L L^T of an SPD matrix (lower triangular L).
class DenseCholesky {
 public:
  /// Factorizes a copy of `a`. Throws std::runtime_error if a nonpositive
  /// pivot is encountered (matrix not SPD to working precision).
  explicit DenseCholesky(const Matrix& a, std::size_t block = 64);

  /// Solve A x = b in place (forward + backward substitution).
  void solve_in_place(std::span<double> b) const;

  /// Solve for multiple right-hand sides stored as columns of B.
  void solve_in_place(Matrix& b) const;

  /// Solve L y = b (forward substitution only).
  void forward_solve_in_place(std::span<double> b) const;

  /// log det(A) = 2 sum log L_ii.
  [[nodiscard]] double log_det() const;

  [[nodiscard]] const Matrix& factor() const { return l_; }
  [[nodiscard]] std::size_t dim() const { return l_.rows(); }

 private:
  Matrix l_;
};

}  // namespace tsunami
