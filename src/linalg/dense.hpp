#pragma once

// Dense vector/matrix containers. Row-major storage, value semantics, no
// hidden sharing (Core Guidelines: prefer simple regular types). Views are
// passed as std::span; all heavy kernels live in blas.hpp/cpp.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace tsunami {

using Vector = std::vector<double>;

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  /// Mutable view of row i.
  [[nodiscard]] std::span<double> row(std::size_t i) {
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Transposed copy.
  [[nodiscard]] Matrix transposed() const;

  /// Max |A_ij - B_ij|; throws on shape mismatch.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

inline Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

inline double Matrix::max_abs_diff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix::max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t k = 0; k < data_.size(); ++k) {
    const double d = data_[k] - other.data_[k];
    m = std::max(m, d < 0 ? -d : d);
  }
  return m;
}

}  // namespace tsunami
