#pragma once

// Matrix-free (preconditioned) conjugate gradients.
//
// Two roles, both from the paper:
//  1. The SoA baseline (SecIV): prior-preconditioned CG on the full Hessian
//     H = F* Gn^-1 F + Gp^-1, where every operator application costs a
//     forward/adjoint PDE pair. bench_speedup measures this against the
//     offline-online framework.
//  2. Generic iterative solves in tests.

#include <functional>
#include <span>
#include <vector>

namespace tsunami {

/// Linear operator as a function: y = A x.
using LinearOp =
    std::function<void(std::span<const double>, std::span<double>)>;

struct CgResult {
  std::size_t iterations = 0;
  double residual_norm = 0.0;   ///< final ||b - A x||
  double initial_residual = 0.0;
  bool converged = false;
  std::size_t operator_applications = 0;  ///< # of A-applications performed
};

struct CgOptions {
  std::size_t max_iterations = 1000;
  double relative_tolerance = 1e-10;
  double absolute_tolerance = 0.0;
};

/// Solve A x = b with CG. `x` is both the initial guess and the solution.
CgResult conjugate_gradient(const LinearOp& a, std::span<const double> b,
                            std::span<double> x, const CgOptions& opts = {});

/// Preconditioned CG: `precond` applies an SPD approximation of A^{-1}.
CgResult preconditioned_conjugate_gradient(const LinearOp& a,
                                           const LinearOp& precond,
                                           std::span<const double> b,
                                           std::span<double> x,
                                           const CgOptions& opts = {});

}  // namespace tsunami
