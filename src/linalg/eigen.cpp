#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "linalg/blas.hpp"

namespace tsunami {

std::vector<double> symmetric_eigenvalues(const Matrix& a, double tol,
                                          int max_sweeps) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("symmetric_eigenvalues: not square");
  const std::size_t n = a.rows();
  Matrix w(a);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += w(i, j) * w(i, j);
    if (std::sqrt(off) < tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = w(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = w(p, p), aqq = w(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double wkp = w(k, p), wkq = w(k, q);
          w(k, p) = c * wkp - s * wkq;
          w(k, q) = s * wkp + c * wkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double wpk = w(p, k), wqk = w(q, k);
          w(p, k) = c * wpk - s * wqk;
          w(q, k) = s * wpk + c * wqk;
        }
      }
    }
  }

  std::vector<double> eigs(n);
  for (std::size_t i = 0; i < n; ++i) eigs[i] = w(i, i);
  std::sort(eigs.begin(), eigs.end(), std::greater<>());
  return eigs;
}

std::vector<double> lanczos_eigenvalues(const LinearOp& a, std::size_t n,
                                        std::size_t k, unsigned seed) {
  const std::size_t m = std::min(n, 2 * k + 20);  // Krylov dimension
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss;

  std::vector<std::vector<double>> basis;
  std::vector<double> alpha, beta;

  // Lanczos recurrence with full reorthogonalization (robust at small m).
  std::vector<double> v(n);
  for (auto& x : v) x = gauss(rng);
  scal(1.0 / nrm2(v), std::span<double>(v));
  std::vector<double> w(n);
  std::vector<double> v_prev(n, 0.0);
  double beta_prev = 0.0;

  for (std::size_t j = 0; j < m; ++j) {
    basis.push_back(v);
    a(std::span<const double>(v), std::span<double>(w));
    axpy(-beta_prev, v_prev, std::span<double>(w));
    const double aj = dot(w, v);
    alpha.push_back(aj);
    axpy(-aj, v, std::span<double>(w));
    for (const auto& u : basis) {
      const double proj = dot(w, u);
      axpy(-proj, u, std::span<double>(w));
    }
    const double bj = nrm2(w);
    if (bj < 1e-14) break;
    beta.push_back(bj);
    v_prev = v;
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / bj;
    beta_prev = bj;
  }

  // Eigenvalues of the tridiagonal via the dense Jacobi path (small).
  const std::size_t t = alpha.size();
  Matrix tri(t, t);
  for (std::size_t i = 0; i < t; ++i) {
    tri(i, i) = alpha[i];
    if (i + 1 < t) {
      tri(i, i + 1) = beta[i];
      tri(i + 1, i) = beta[i];
    }
  }
  auto eigs = symmetric_eigenvalues(tri);
  if (eigs.size() > k) eigs.resize(k);
  return eigs;
}

RandomizedEigResult randomized_eigenvalues(const LinearOp& a, std::size_t n,
                                           std::size_t k,
                                           std::size_t oversample,
                                           std::size_t power_iterations,
                                           unsigned seed) {
  const std::size_t l = std::min(n, k + oversample);
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss;

  // Range sketch Y = (A)^(q+1) Omega, orthonormalized between passes.
  std::vector<std::vector<double>> q(l, std::vector<double>(n));
  for (auto& col : q)
    for (auto& x : col) x = gauss(rng);

  auto orthonormalize = [&]() {
    for (std::size_t i = 0; i < l; ++i) {
      // Re-draw columns that collapse (happens when the operator rank is
      // below l); the replacement must itself be orthogonalized. The
      // collapse test is RELATIVE to the column's pre-projection norm, so
      // roundoff residue of a dependent column is not mistaken for signal.
      for (int attempt = 0; attempt < 8; ++attempt) {
        const double before = nrm2(q[i]);
        for (std::size_t j = 0; j < i; ++j) {
          const double proj = dot(q[i], q[j]);
          axpy(-proj, q[j], std::span<double>(q[i]));
        }
        const double norm = nrm2(q[i]);
        if (norm > 1e-10 * before && norm > 0.0) {
          scal(1.0 / norm, std::span<double>(q[i]));
          break;
        }
        for (auto& x : q[i]) x = gauss(rng);
      }
    }
  };

  std::vector<double> tmp(n);
  for (std::size_t pass = 0; pass <= power_iterations; ++pass) {
    orthonormalize();
    for (auto& col : q) {
      a(std::span<const double>(col), std::span<double>(tmp));
      col = tmp;
    }
  }
  orthonormalize();

  // Projected small problem T = Q^T A Q.
  std::vector<std::vector<double>> aq(l, std::vector<double>(n));
  for (std::size_t i = 0; i < l; ++i)
    a(std::span<const double>(q[i]), std::span<double>(aq[i]));
  Matrix t(l, l);
  for (std::size_t i = 0; i < l; ++i)
    for (std::size_t j = 0; j < l; ++j) t(i, j) = dot(q[i], aq[j]);
  // Symmetrize the projection against roundoff.
  for (std::size_t i = 0; i < l; ++i)
    for (std::size_t j = i + 1; j < l; ++j) {
      const double v = 0.5 * (t(i, j) + t(j, i));
      t(i, j) = v;
      t(j, i) = v;
    }

  RandomizedEigResult result;
  result.eigenvalues = symmetric_eigenvalues(t);
  if (result.eigenvalues.size() > k) result.eigenvalues.resize(k);

  // Residual estimate: how much of A's action escapes the subspace, probed
  // with a fresh random vector: || (I - QQ^T) A w || / || A w ||.
  std::vector<double> w(n);
  for (auto& x : w) x = gauss(rng);
  a(std::span<const double>(w), std::span<double>(tmp));
  const double full = nrm2(tmp);
  for (std::size_t i = 0; i < l; ++i) {
    const double proj = dot(tmp, q[i]);
    axpy(-proj, q[i], std::span<double>(tmp));
  }
  result.residual_fraction = full > 0 ? nrm2(tmp) / full : 0.0;
  return result;
}

std::size_t effective_rank(const std::vector<double>& eigs, double threshold) {
  if (eigs.empty()) return 0;
  const double cutoff = threshold * eigs.front();
  std::size_t r = 0;
  for (double e : eigs)
    if (e >= cutoff) ++r;
  return r;
}

}  // namespace tsunami
