#include "linalg/banded_cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace tsunami {

void BandedMatrix::add(std::size_t i, std::size_t j, double v) {
  const std::size_t lo = std::min(i, j), hi = std::max(i, j);
  const std::size_t d = hi - lo;
  if (d > bw_) throw std::out_of_range("BandedMatrix::add: outside band");
  band(hi, d) += v;
}

void BandedMatrix::multiply(std::span<const double> x,
                            std::span<double> y) const {
  if (x.size() != n_ || y.size() != n_)
    throw std::invalid_argument("BandedMatrix::multiply: size mismatch");
  for (std::size_t i = 0; i < n_; ++i) y[i] = band(i, 0) * x[i];
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t dmax = std::min(bw_, i);
    for (std::size_t d = 1; d <= dmax; ++d) {
      const double v = band(i, d);
      if (v == 0.0) continue;
      y[i] += v * x[i - d];
      y[i - d] += v * x[i];
    }
  }
}

BandedCholesky::BandedCholesky(const BandedMatrix& a) : l_(a) {
  const std::size_t n = l_.dim();
  const std::size_t bw = l_.bandwidth();
  for (std::size_t j = 0; j < n; ++j) {
    double d = l_.band(j, 0);
    if (d <= 0.0)
      throw std::runtime_error("BandedCholesky: matrix not SPD (pivot <= 0)");
    // d already updated by prior columns (left-looking below); take sqrt.
    const double diag = std::sqrt(d);
    l_.band(j, 0) = diag;
    const std::size_t imax = std::min(n - 1, j + bw);
    for (std::size_t i = j + 1; i <= imax; ++i) {
      l_.band(i, i - j) /= diag;
    }
    // Right-looking rank-1 update of the remaining band.
    for (std::size_t i = j + 1; i <= imax; ++i) {
      const double lij = l_.band(i, i - j);
      if (lij == 0.0) continue;
      for (std::size_t k = j + 1; k <= i; ++k) {
        const double lkj = l_.band(k, k - j);
        l_.band(i, i - k) -= lij * lkj;
      }
    }
  }
}

void BandedCholesky::forward_solve_in_place(std::span<double> b) const {
  const std::size_t n = l_.dim(), bw = l_.bandwidth();
  if (b.size() != n)
    throw std::invalid_argument("BandedCholesky: rhs size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const std::size_t dmax = std::min(bw, i);
    for (std::size_t d = 1; d <= dmax; ++d) s -= l_.band(i, d) * b[i - d];
    b[i] = s / l_.band(i, 0);
  }
}

void BandedCholesky::backward_solve_in_place(std::span<double> b) const {
  const std::size_t n = l_.dim(), bw = l_.bandwidth();
  if (b.size() != n)
    throw std::invalid_argument("BandedCholesky: rhs size mismatch");
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    const std::size_t jmax = std::min(n - 1, ii + bw);
    for (std::size_t j = ii + 1; j <= jmax; ++j)
      s -= l_.band(j, j - ii) * b[j];
    b[ii] = s / l_.band(ii, 0);
  }
}

void BandedCholesky::solve_in_place(std::span<double> b) const {
  forward_solve_in_place(b);
  backward_solve_in_place(b);
}

}  // namespace tsunami
