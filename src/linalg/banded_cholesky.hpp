#pragma once

// Banded SPD Cholesky for the prior's elliptic operator solves.
//
// The paper applies Gamma_prior (inverse of a squared elliptic operator,
// a Matern covariance) with cuDSS sparse direct solves. Our parameter grid is
// logically a structured 2-D seafloor grid, so the elliptic operator
// A = delta*M + gamma*K has bandwidth ~ grid width; a banded Cholesky gives
// exact direct solves with O(n w^2) factorization and O(n w) per solve.

#include <cstddef>
#include <span>
#include <vector>

namespace tsunami {

/// Symmetric banded matrix in lower-band storage: band(i, d) holds A(i, i-d)
/// for d = 0..bandwidth.
class BandedMatrix {
 public:
  BandedMatrix(std::size_t n, std::size_t bandwidth)
      : n_(n), bw_(bandwidth), data_(n * (bandwidth + 1), 0.0) {}

  [[nodiscard]] std::size_t dim() const { return n_; }
  [[nodiscard]] std::size_t bandwidth() const { return bw_; }

  /// Entry A(i, i-d); requires d <= bandwidth and d <= i.
  double& band(std::size_t i, std::size_t d) { return data_[i * (bw_ + 1) + d]; }
  double band(std::size_t i, std::size_t d) const {
    return data_[i * (bw_ + 1) + d];
  }

  /// Symmetric accumulation A(i,j) += v for |i-j| <= bandwidth (stores the
  /// lower representative only).
  void add(std::size_t i, std::size_t j, double v);

  /// y = A x using the symmetric band.
  void multiply(std::span<const double> x, std::span<double> y) const;

 private:
  std::size_t n_;
  std::size_t bw_;
  std::vector<double> data_;
};

/// In-place banded Cholesky A = L L^T and triangular solves.
class BandedCholesky {
 public:
  explicit BandedCholesky(const BandedMatrix& a);

  /// Solve A x = b in place.
  void solve_in_place(std::span<double> b) const;

  /// Solve L y = b in place (forward only); used for Gamma^{1/2} actions.
  void forward_solve_in_place(std::span<double> b) const;

  /// Solve L^T x = y in place (backward only).
  void backward_solve_in_place(std::span<double> b) const;

  [[nodiscard]] std::size_t dim() const { return l_.dim(); }

 private:
  BandedMatrix l_;
};

}  // namespace tsunami
