#pragma once

// BLAS-like kernels (pool-parallel where profitable). These stand in for
// the cuBLAS calls in the paper's FFTMatvec/inference codes; the algorithms
// built on top only assume the standard contracts.

#include <span>

#include "linalg/dense.hpp"

namespace tsunami {

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha
void scal(double alpha, std::span<double> x);

/// Dot product (sequential accumulation order for reproducibility at the
/// sizes used in solvers; parallel reduction for large n).
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm.
[[nodiscard]] double nrm2(std::span<const double> x);

/// Max-abs (infinity) norm.
[[nodiscard]] double amax(std::span<const double> x);

/// y = A x (row-major GEMV).
void gemv(const Matrix& a, std::span<const double> x, std::span<double> y);

/// y = A^T x.
void gemv_t(const Matrix& a, std::span<const double> x, std::span<double> y);

/// C = A B (blocked, pool-parallel over row panels).
void gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A^T B.
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c);

}  // namespace tsunami
