#include "linalg/cg.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/blas.hpp"

namespace tsunami {

CgResult conjugate_gradient(const LinearOp& a, std::span<const double> b,
                            std::span<double> x, const CgOptions& opts) {
  // Unpreconditioned CG == PCG with the identity preconditioner.
  const LinearOp identity = [](std::span<const double> in,
                               std::span<double> out) {
    std::copy(in.begin(), in.end(), out.begin());
  };
  return preconditioned_conjugate_gradient(a, identity, b, x, opts);
}

CgResult preconditioned_conjugate_gradient(const LinearOp& a,
                                           const LinearOp& precond,
                                           std::span<const double> b,
                                           std::span<double> x,
                                           const CgOptions& opts) {
  const std::size_t n = b.size();
  if (x.size() != n) throw std::invalid_argument("pcg: size mismatch");

  std::vector<double> r(n), z(n), p(n), ap(n);
  CgResult result;

  // r = b - A x
  a(x, std::span<double>(r));
  result.operator_applications++;
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];

  precond(std::span<const double>(r), std::span<double>(z));
  std::copy(z.begin(), z.end(), p.begin());

  double rz = dot(r, z);
  const double r0 = nrm2(r);
  result.initial_residual = r0;
  const double target = std::max(opts.relative_tolerance * r0,
                                 opts.absolute_tolerance);
  if (r0 <= target || r0 == 0.0) {
    result.converged = true;
    result.residual_norm = r0;
    return result;
  }

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    a(std::span<const double>(p), std::span<double>(ap));
    result.operator_applications++;
    const double pap = dot(p, ap);
    if (pap <= 0.0)
      throw std::runtime_error("pcg: operator not positive definite");
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, std::span<double>(r));

    const double rn = nrm2(r);
    result.iterations = it + 1;
    result.residual_norm = rn;
    if (rn <= target) {
      result.converged = true;
      return result;
    }

    precond(std::span<const double>(r), std::span<double>(z));
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

}  // namespace tsunami
