#include "linalg/dense_cholesky.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace tsunami {

namespace {

/// Shared multi-RHS driver: apply `solve_column` to each column of `b`
/// (parallel over columns, contiguous per-column scratch).
template <typename Solver>
void solve_columns(Matrix& b, const Solver& solve_column) {
  const std::size_t n = b.rows(), m = b.cols();
  parallel_for_min(m, 4, [&](std::size_t c) {
    std::vector<double> col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = b(i, c);
    solve_column(std::span<double>(col));
    for (std::size_t i = 0; i < n; ++i) b(i, c) = col[i];
  });
}

}  // namespace

DenseCholesky::DenseCholesky(const Matrix& a, std::size_t block) : l_(a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("DenseCholesky: matrix not square");
  const std::size_t n = l_.rows();
  double* lp = l_.data();

  for (std::size_t k0 = 0; k0 < n; k0 += block) {
    const std::size_t k1 = std::min(k0 + block, n);
    // Factor the diagonal block (unblocked).
    for (std::size_t k = k0; k < k1; ++k) {
      double d = lp[k * n + k];
      for (std::size_t j = k0; j < k; ++j) {
        const double v = lp[k * n + j];
        d -= v * v;
      }
      if (d <= 0.0)
        throw std::runtime_error("DenseCholesky: matrix not SPD (pivot <= 0)");
      const double diag = std::sqrt(d);
      lp[k * n + k] = diag;
      for (std::size_t i = k + 1; i < k1; ++i) {
        double s = lp[i * n + k];
        for (std::size_t j = k0; j < k; ++j)
          s -= lp[i * n + j] * lp[k * n + j];
        lp[i * n + k] = s / diag;
      }
    }
    if (k1 == n) break;
    // Panel solve: rows k1..n of columns k0..k1 (L21 = A21 L11^{-T}).
    parallel_for_min(n - k1, 8, [&](std::size_t ii) {
      const std::size_t i = k1 + ii;
      for (std::size_t k = k0; k < k1; ++k) {
        double s = lp[i * n + k];
        for (std::size_t j = k0; j < k; ++j)
          s -= lp[i * n + j] * lp[k * n + j];
        lp[i * n + k] = s / lp[k * n + k];
      }
    });
    // Trailing update: A22 -= L21 L21^T (lower triangle only).
    parallel_for_min(n - k1, 8, [&](std::size_t ii) {
      const std::size_t i = k1 + ii;
      for (std::size_t j = k1; j <= i; ++j) {
        double s = 0.0;
        for (std::size_t k = k0; k < k1; ++k)
          s += lp[i * n + k] * lp[j * n + k];
        lp[i * n + j] -= s;
      }
    });
  }
  // Zero the strict upper triangle so factor() is exactly L.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) lp[i * n + j] = 0.0;
}

DenseCholesky DenseCholesky::from_factor(Matrix l) {
  if (l.rows() != l.cols())
    throw std::invalid_argument("DenseCholesky::from_factor: not square");
  const std::size_t n = l.rows();
  for (std::size_t i = 0; i < n; ++i) {
    if (!(l(i, i) > 0.0))
      throw std::runtime_error(
          "DenseCholesky::from_factor: nonpositive diagonal (not a Cholesky "
          "factor)");
    for (std::size_t j = i + 1; j < n; ++j) l(i, j) = 0.0;
  }
  DenseCholesky c;
  c.l_ = std::move(l);
  return c;
}

TSUNAMI_HOT_PATH void DenseCholesky::forward_solve_range(
    std::span<double> b, std::size_t begin, std::size_t end) const {
  const std::size_t n = l_.rows();
  if (begin > end || end > n || b.size() < end)
    throw std::invalid_argument("DenseCholesky: bad forward-solve range");
  const double* lp = l_.data();
  for (std::size_t i = begin; i < end; ++i) {
    double s = b[i];
    const double* row = lp + i * n;
    for (std::size_t j = 0; j < i; ++j) s -= row[j] * b[j];
    b[i] = s / row[i];
  }
}

void DenseCholesky::forward_solve_in_place(std::span<double> b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n)
    throw std::invalid_argument("DenseCholesky: rhs size mismatch");
  forward_solve_range(b, 0, n);
}

void DenseCholesky::forward_solve_in_place(Matrix& b) const {
  if (b.rows() != l_.rows())
    throw std::invalid_argument("DenseCholesky: rhs rows mismatch");
  solve_columns(b,
                [this](std::span<double> col) { forward_solve_in_place(col); });
}

void DenseCholesky::backward_solve_prefix(std::span<double> b,
                                          std::size_t prefix) const {
  const std::size_t n = l_.rows();
  if (prefix > n || b.size() < prefix)
    throw std::invalid_argument("DenseCholesky: bad backward-solve prefix");
  const double* lp = l_.data();
  for (std::size_t ii = prefix; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t j = ii + 1; j < prefix; ++j) s -= lp[j * n + ii] * b[j];
    b[ii] = s / lp[ii * n + ii];
  }
}

void DenseCholesky::backward_solve_in_place(std::span<double> b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n)
    throw std::invalid_argument("DenseCholesky: rhs size mismatch");
  backward_solve_prefix(b, n);
}

void DenseCholesky::solve_in_place(std::span<double> b) const {
  forward_solve_in_place(b);
  backward_solve_in_place(b);
}

void DenseCholesky::solve_in_place(Matrix& b) const {
  if (b.rows() != l_.rows())
    throw std::invalid_argument("DenseCholesky: rhs rows mismatch");
  solve_columns(b, [this](std::span<double> col) { solve_in_place(col); });
}

TSUNAMI_HOT_PATH void DenseCholesky::rank_update(std::span<double> u) {
  const std::size_t n = l_.rows();
  if (u.size() != n)
    throw std::invalid_argument("DenseCholesky::rank_update: size mismatch");
  double* lp = l_.data();
  // Givens rotations annihilate u against the diagonal of L, column by
  // column: [L u] Q^T = [L' 0] with Q orthogonal, so L' L'^T = L L^T + u u^T.
  for (std::size_t k = 0; k < n; ++k) {
    const double uk = u[k];
    if (uk == 0.0) continue;
    const double lkk = lp[k * n + k];
    const double r = std::hypot(lkk, uk);
    const double c = r / lkk;
    const double s = uk / lkk;
    lp[k * n + k] = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      const double lik = lp[i * n + k];
      lp[i * n + k] = (lik + s * u[i]) / c;
      u[i] = c * u[i] - s * lp[i * n + k];
    }
  }
}

TSUNAMI_HOT_PATH void DenseCholesky::rank_downdate(std::span<double> u) {
  const std::size_t n = l_.rows();
  if (u.size() != n)
    throw std::invalid_argument("DenseCholesky::rank_downdate: size mismatch");
  double* lp = l_.data();
  // Hyperbolic rotations: [L u] H = [L' 0] with H J H^T = J for the
  // signature J = diag(I, -1), so L' L'^T = L L^T - u u^T. Each pivot
  // shrinks; a nonpositive pivot means L L^T - u u^T is not SPD.
  for (std::size_t k = 0; k < n; ++k) {
    const double uk = u[k];
    if (uk == 0.0) continue;
    const double lkk = lp[k * n + k];
    const double r2 = (lkk - uk) * (lkk + uk);
    if (r2 <= 0.0)
      throw std::runtime_error(
          "DenseCholesky::rank_downdate: downdated matrix not SPD");
    const double r = std::sqrt(r2);
    const double c = r / lkk;
    const double s = uk / lkk;
    lp[k * n + k] = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      const double lik = lp[i * n + k];
      lp[i * n + k] = (lik - s * u[i]) / c;
      u[i] = c * u[i] - s * lp[i * n + k];
    }
  }
}

void DenseCholesky::rank_update_many(const Matrix& u_cols) {
  if (u_cols.rows() != l_.rows())
    throw std::invalid_argument("DenseCholesky::rank_update_many: rows mismatch");
  std::vector<double> col(u_cols.rows());
  for (std::size_t c = 0; c < u_cols.cols(); ++c) {
    for (std::size_t i = 0; i < col.size(); ++i) col[i] = u_cols(i, c);
    rank_update(col);
  }
}

void DenseCholesky::rank_downdate_many(const Matrix& u_cols) {
  if (u_cols.rows() != l_.rows())
    throw std::invalid_argument(
        "DenseCholesky::rank_downdate_many: rows mismatch");
  std::vector<double> col(u_cols.rows());
  for (std::size_t c = 0; c < u_cols.cols(); ++c) {
    for (std::size_t i = 0; i < col.size(); ++i) col[i] = u_cols(i, c);
    rank_downdate(col);
  }
}

void DenseCholesky::append_row(std::span<const double> a_col) {
  const std::size_t n = l_.rows();
  if (a_col.size() != n + 1)
    throw std::invalid_argument("DenseCholesky::append_row: size mismatch");
  // New factor row: L[n, 0:n] solves L l = a_col[0:n); the diagonal closes
  // the square. Solve first (against the old factor), then grow storage.
  std::vector<double> row(a_col.begin(), a_col.begin() + static_cast<std::ptrdiff_t>(n));
  forward_solve_in_place(std::span<double>(row));
  double d = a_col[n];
  for (std::size_t j = 0; j < n; ++j) d -= row[j] * row[j];
  if (d <= 0.0)
    throw std::runtime_error(
        "DenseCholesky::append_row: extended matrix not SPD");
  Matrix grown(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) grown(i, j) = l_(i, j);
  for (std::size_t j = 0; j < n; ++j) grown(n, j) = row[j];
  grown(n, n) = std::sqrt(d);
  l_ = std::move(grown);
}

double DenseCholesky::log_det() const {
  const std::size_t n = l_.rows();
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

}  // namespace tsunami
