#pragma once

// Symmetric eigensolvers for spectrum studies.
//
// SecIV of the paper argues the prior-preconditioned data-misfit Hessian is
// NOT low rank for seafloor-pressure inversion (effective rank ~ data
// dimension), which is what rules out low-rank SoA methods. bench_spectrum
// reproduces that diagnosis on the data-space Hessian. A cyclic Jacobi
// eigensolver is exact and robust at the dense sizes we need (<= a few
// thousand); a Lanczos path covers matrix-free operators.

#include <vector>

#include "linalg/cg.hpp"
#include "linalg/dense.hpp"

namespace tsunami {

/// All eigenvalues of a symmetric matrix via cyclic Jacobi rotations.
/// Returns eigenvalues sorted descending. `a` must be symmetric.
[[nodiscard]] std::vector<double> symmetric_eigenvalues(const Matrix& a,
                                                        double tol = 1e-12,
                                                        int max_sweeps = 50);

/// Lanczos (no reorthogonalization beyond full Gram-Schmidt against stored
/// basis) estimating the `k` largest eigenvalues of a symmetric operator of
/// dimension n. Suitable for quick spectral summaries of matrix-free maps.
[[nodiscard]] std::vector<double> lanczos_eigenvalues(const LinearOp& a,
                                                      std::size_t n,
                                                      std::size_t k,
                                                      unsigned seed = 1234);

/// Effective rank: number of eigenvalues >= `threshold` * lambda_max.
[[nodiscard]] std::size_t effective_rank(const std::vector<double>& eigs,
                                         double threshold);

/// Randomized eigensolver (Halko-Martinsson-Tropp) for a symmetric PSD
/// operator: sample a Gaussian test matrix, build an orthonormal range basis
/// with `oversample` extra columns and `power_iterations` subspace
/// iterations, and solve the small projected eigenproblem.
///
/// This is the workhorse of low-rank SoA Bayesian inversion ([17, 18] in the
/// paper): it is efficient exactly when the operator has fast spectral
/// decay. bench_spectrum uses it to demonstrate the paper's SecIV point —
/// for the seafloor-pressure p2o Hessian the required rank approaches the
/// data dimension, so the "low-rank" method degenerates to dense cost.
struct RandomizedEigResult {
  std::vector<double> eigenvalues;  ///< descending, size k
  double residual_fraction = 0.0;   ///< ||A - Q(Q^T A Q)Q^T||_F est. / ||A||_F est.
};

[[nodiscard]] RandomizedEigResult randomized_eigenvalues(
    const LinearOp& a, std::size_t n, std::size_t k,
    std::size_t oversample = 10, std::size_t power_iterations = 2,
    unsigned seed = 4321);

}  // namespace tsunami
