#include "linalg/blas.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/parallel_for.hpp"
#include "parallel/partition.hpp"

namespace tsunami {

namespace {
constexpr std::size_t kParallelThreshold = 1 << 14;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  const std::size_t n = x.size();
  if (n < kParallelThreshold) {
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  } else {
    double* yp = y.data();
    const double* xp = x.data();
    parallel_for_ranges(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) yp[i] += alpha * xp[i];
    });
  }
}

void scal(double alpha, std::span<double> x) {
  const std::size_t n = x.size();
  if (n < kParallelThreshold) {
    for (auto& v : x) v *= alpha;
  } else {
    double* xp = x.data();
    parallel_for_ranges(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) xp[i] *= alpha;
    });
  }
}

double dot(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: size mismatch");
  const std::size_t n = x.size();
  if (n < kParallelThreshold) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
    return s;
  }
  const double* xp = x.data();
  const double* yp = y.data();
  return parallel_reduce_sum(n, [&](std::size_t i) { return xp[i] * yp[i]; });
}

double nrm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double amax(std::span<const double> x) {
  const std::size_t n = x.size();
  if (n < kParallelThreshold) {
    double m = 0.0;
    for (double v : x) m = std::max(m, std::abs(v));
    return m;
  }
  const double* xp = x.data();
  return parallel_reduce_max(n, [&](std::size_t i) { return std::abs(xp[i]); });
}

void gemv(const Matrix& a, std::span<const double> x, std::span<double> y) {
  if (x.size() != a.cols() || y.size() != a.rows())
    throw std::invalid_argument("gemv: size mismatch");
  const std::size_t rows = a.rows(), cols = a.cols();
  const double* ap = a.data();
  const double* xp = x.data();
  double* yp = y.data();
  parallel_for_min(rows, 64, [&](std::size_t i) {
    const double* row = ap + i * cols;
    double s = 0.0;
    for (std::size_t j = 0; j < cols; ++j) s += row[j] * xp[j];
    yp[i] = s;
  });
}

void gemv_t(const Matrix& a, std::span<const double> x, std::span<double> y) {
  if (x.size() != a.rows() || y.size() != a.cols())
    throw std::invalid_argument("gemv_t: size mismatch");
  const std::size_t rows = a.rows(), cols = a.cols();
  const double* ap = a.data();
  const double* xp = x.data();
  double* yp = y.data();
  // Column-result accumulation: parallelize over output column panels to
  // avoid write conflicts while keeping unit-stride reads of A's rows. Each
  // column's i-sweep runs to completion inside one chunk, so the result is
  // independent of scheduling and worker count.
  parallel_for_ranges(cols, [&](std::size_t j0, std::size_t j1) {
    for (std::size_t j = j0; j < j1; ++j) yp[j] = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
      const double* row = ap + i * cols;
      const double xi = xp[i];
      for (std::size_t j = j0; j < j1; ++j) yp[j] += xi * row[j];
    }
  });
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols())
    throw std::invalid_argument("gemm: size mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  c.fill(0.0);
  const double* ap = a.data();
  const double* bp = b.data();
  double* cp = c.data();
  parallel_for_min(m, 16, [&](std::size_t i) {
    double* crow = cp + i * n;
    const double* arow = ap + i * k;
    for (std::size_t l = 0; l < k; ++l) {
      const double av = arow[l];
      const double* brow = bp + l * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c) {
  if (a.rows() != b.rows() || c.rows() != a.cols() || c.cols() != b.cols())
    throw std::invalid_argument("gemm_tn: size mismatch");
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  c.fill(0.0);
  const double* ap = a.data();
  const double* bp = b.data();
  double* cp = c.data();
  parallel_for_min(m, 16, [&](std::size_t i) {
    double* crow = cp + i * n;
    for (std::size_t l = 0; l < k; ++l) {
      const double av = ap[l * m + i];
      const double* brow = bp + l * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
}

}  // namespace tsunami
