#pragma once

// FFT-based block lower-triangular Toeplitz matvec engine — the open-source
// "FFTMatvec" component of the paper (SecV-A, [26]), reimplemented for CPU.
//
// A block lower-triangular Toeplitz matrix
//     T = [ F_0
//           F_1  F_0
//           ...       ...
//           F_{Nt-1} ... F_1  F_0 ],   F_k in R^{rows x cols},
// is embedded in a block circulant of period L >= 2 Nt - 1 which the DFT
// block-diagonalizes: applying T to a time-major vector x reduces to
//   (i)  batched length-L REAL-input FFTs of the cols input channels
//        (r2c via the half-length packing trick — the inputs are real, so a
//        full complex transform would waste 2x flops/bandwidth),
//   (ii) an independent (rows x cols) complex matvec per frequency — the
//        cuBLAS-batched kernel of the paper; here a cache-blocked
//        split-complex micro-kernel under a pool-parallel loop,
//   (iii) batched inverse real-output FFTs of the rows output channels.
// The transpose (block UPPER triangular Toeplitz, cyclic correlation) uses
// the conjugate spectrum, no extra storage. Real-input symmetry means only
// L/2 + 1 frequencies are kept.
//
// Frequency-domain data lives in SPLIT-COMPLEX layout — separate real and
// imaginary planes, frequency-major — so the per-frequency block GEMM is
// four unit-stride real FMA streams the compiler vectorizes, instead of
// interleaved std::complex AoS.
//
// Cost per matvec: O((rows + cols) L log L + L rows cols) versus a pair of
// PDE solves for the same Hessian action — the source of the paper's
// 260,000x matvec speedup (bench_speedup measures our ratio).

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "fft/fft.hpp"
#include "linalg/dense.hpp"
#include "parallel/numa.hpp"
#include "util/hot_path.hpp"

namespace tsunami {

/// Reusable scratch for BlockToeplitz apply paths: the split-complex
/// frequency slabs plus per-loop-participant FFT scratch. Buffers grow on
/// demand and never shrink, so after the first call at a given shape no
/// apply allocates. One workspace serves operators of any shape (it resizes
/// to the largest seen).
///
/// Ownership rule: a workspace belongs to ONE caller thread at a time.
/// Concurrent applies (e.g. service workers draining different events) must
/// each hold their own workspace; the operator itself is immutable and
/// freely shared. The workspace-less apply overloads use a thread_local
/// workspace internally, so they are both allocation-free in steady state
/// and safe to call from any number of threads.
class ToeplitzWorkspace {
 public:
  ToeplitzWorkspace() = default;

 private:
  friend class BlockToeplitz;
  std::vector<double> xhat_re_, xhat_im_;  ///< input slab, [(w*nchan+c)*nrhs+v]
  std::vector<double> yhat_re_, yhat_im_;  ///< output slab, same layout
  std::vector<Complex> fft_;               ///< per-slot: real-plan scratch
};

class BlockToeplitz {
 public:
  /// `blocks` holds F_k row-major, k-major: blocks[(k*rows + r)*cols + c].
  /// Keeps only the Fourier representation (half spectrum, split-complex).
  BlockToeplitz(std::size_t rows, std::size_t cols, std::size_t nblocks,
                std::span<const double> blocks);

  [[nodiscard]] std::size_t block_rows() const { return rows_; }
  [[nodiscard]] std::size_t block_cols() const { return cols_; }
  [[nodiscard]] std::size_t num_blocks() const { return nt_; }
  /// Full operator dimensions.
  [[nodiscard]] std::size_t output_dim() const { return rows_ * nt_; }
  [[nodiscard]] std::size_t input_dim() const { return cols_ * nt_; }

  /// y = T x; x time-major (nt blocks of cols), y time-major (nt x rows).
  TSUNAMI_HOT_PATH void apply(std::span<const double> x,
                              std::span<double> y) const;
  TSUNAMI_HOT_PATH void apply(std::span<const double> x, std::span<double> y,
                              ToeplitzWorkspace& ws) const;

  /// y = T^T x; x time-major (nt x rows), y time-major (nt x cols).
  TSUNAMI_HOT_PATH void apply_transpose(std::span<const double> x,
                                        std::span<double> y) const;
  TSUNAMI_HOT_PATH void apply_transpose(std::span<const double> x,
                                        std::span<double> y,
                                        ToeplitzWorkspace& ws) const;

  /// y = T^T [x; 0]: x holds only the first `ticks` time blocks (ticks*rows
  /// values); the remaining blocks are implicitly zero. Exactly equal to
  /// zero-padding x to output_dim() and calling apply_transpose, but the
  /// padded copy is never materialized — the FFT pack pass zero-fills
  /// directly. This is the adjoint the streaming (truncated-posterior) path
  /// needs at every tick.
  TSUNAMI_HOT_PATH void apply_transpose_prefix(std::span<const double> x,
                                               std::size_t ticks,
                                               std::span<double> y,
                                               ToeplitzWorkspace& ws) const;
  TSUNAMI_HOT_PATH void apply_transpose_prefix(std::span<const double> x,
                                               std::size_t ticks,
                                               std::span<double> y) const;

  /// Multi-RHS versions: columns of X are independent vectors. The
  /// per-frequency kernel becomes a split-complex GEMM (the batched-BLAS
  /// path). y_cols is resized only if its shape differs.
  TSUNAMI_HOT_PATH void apply_many(const Matrix& x_cols, Matrix& y_cols) const;
  TSUNAMI_HOT_PATH void apply_many(const Matrix& x_cols, Matrix& y_cols,
                                   ToeplitzWorkspace& ws) const;
  TSUNAMI_HOT_PATH void apply_transpose_many(const Matrix& x_cols,
                                             Matrix& y_cols) const;
  TSUNAMI_HOT_PATH void apply_transpose_many(const Matrix& x_cols,
                                             Matrix& y_cols,
                                             ToeplitzWorkspace& ws) const;

  /// Fourier-domain storage footprint (the paper's O(Nm Nd Nt) compact
  /// representation; here 2x for the half-complex spectrum).
  [[nodiscard]] std::size_t storage_bytes() const {
    return (fhat_re_.size() + fhat_im_.size()) * sizeof(double);
  }

  /// O(nt^2 rows cols) dense reference used by tests and the "conventional"
  /// side of benchmarks. Requires the original blocks (kept only if
  /// `keep_blocks` was set).
  void apply_dense_reference(std::span<const double> x,
                             std::span<double> y) const;
  void set_keep_blocks(std::span<const double> blocks);

 private:
  /// Strided real-input FFTs of `nchan * nrhs` interleaved channels into the
  /// split-complex slab; reads `in_ticks` time blocks (zero-pads the rest).
  TSUNAMI_HOT_PATH void forward_channels(const double* x, std::size_t nchan,
                                         std::size_t nrhs,
                                         std::size_t in_ticks,
                                         ToeplitzWorkspace& ws) const;
  /// Inverse real-output FFTs of the yhat slab back into time-major y.
  TSUNAMI_HOT_PATH void inverse_channels(std::size_t nchan, std::size_t nrhs,
                                         std::span<double> y,
                                         ToeplitzWorkspace& ws) const;
  /// Grows the per-slot FFT scratch in `ws` for the current plan.
  TSUNAMI_HOT_PATH std::size_t
  prepare_thread_scratch(ToeplitzWorkspace& ws) const;

  TSUNAMI_HOT_PATH void apply_impl(const double* x, double* y,
                                   std::size_t nrhs, std::size_t in_ticks,
                                   bool transpose, ToeplitzWorkspace& ws) const;

  std::size_t rows_, cols_, nt_;
  std::size_t fft_len_;   ///< L = next_pow2(2 nt)
  std::size_t nfreq_;     ///< L/2 + 1
  RealFftPlan plan_;
  /// Split-complex block spectra, frequency-major:
  /// fhat_re_[(w * rows + r) * cols + c] (imaginary plane likewise).
  /// NumaArray: pages first-touched by the workers that stream them.
  NumaArray fhat_re_, fhat_im_;
  std::vector<double> blocks_;  ///< optional time-domain copy (tests)
};

}  // namespace tsunami
