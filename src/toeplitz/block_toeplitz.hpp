#pragma once

// FFT-based block lower-triangular Toeplitz matvec engine — the open-source
// "FFTMatvec" component of the paper (SecV-A, [26]), reimplemented for CPU.
//
// A block lower-triangular Toeplitz matrix
//     T = [ F_0
//           F_1  F_0
//           ...       ...
//           F_{Nt-1} ... F_1  F_0 ],   F_k in R^{rows x cols},
// is embedded in a block circulant of period L >= 2 Nt - 1 which the DFT
// block-diagonalizes: applying T to a time-major vector x reduces to
//   (i)  batched length-L FFTs of the cols input channels,
//   (ii) an independent (rows x cols) complex matvec per frequency — the
//        cuBLAS-batched kernel of the paper; here an OpenMP loop,
//   (iii) batched inverse FFTs of the rows output channels.
// The transpose (block UPPER triangular Toeplitz, cyclic correlation) uses
// the conjugate spectrum, no extra storage. Real-input symmetry means only
// L/2 + 1 frequencies are kept.
//
// Cost per matvec: O((rows + cols) L log L + L rows cols) versus a pair of
// PDE solves for the same Hessian action — the source of the paper's
// 260,000x matvec speedup (bench_speedup measures our ratio).

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "fft/fft.hpp"
#include "linalg/dense.hpp"

namespace tsunami {

class BlockToeplitz {
 public:
  /// `blocks` holds F_k row-major, k-major: blocks[(k*rows + r)*cols + c].
  /// Keeps only the Fourier representation (half spectrum).
  BlockToeplitz(std::size_t rows, std::size_t cols, std::size_t nblocks,
                std::span<const double> blocks);

  [[nodiscard]] std::size_t block_rows() const { return rows_; }
  [[nodiscard]] std::size_t block_cols() const { return cols_; }
  [[nodiscard]] std::size_t num_blocks() const { return nt_; }
  /// Full operator dimensions.
  [[nodiscard]] std::size_t output_dim() const { return rows_ * nt_; }
  [[nodiscard]] std::size_t input_dim() const { return cols_ * nt_; }

  /// y = T x; x time-major (nt blocks of cols), y time-major (nt x rows).
  void apply(std::span<const double> x, std::span<double> y) const;

  /// y = T^T x; x time-major (nt x rows), y time-major (nt x cols).
  void apply_transpose(std::span<const double> x, std::span<double> y) const;

  /// Multi-RHS versions: columns of X are independent vectors. The
  /// per-frequency kernel becomes a complex GEMM (the batched-BLAS path).
  void apply_many(const Matrix& x_cols, Matrix& y_cols) const;
  void apply_transpose_many(const Matrix& x_cols, Matrix& y_cols) const;

  /// Fourier-domain storage footprint (the paper's O(Nm Nd Nt) compact
  /// representation; here 2x for the half-complex spectrum).
  [[nodiscard]] std::size_t storage_bytes() const {
    return fhat_.size() * sizeof(Complex);
  }

  /// O(nt^2 rows cols) dense reference used by tests and the "conventional"
  /// side of benchmarks. Requires the original blocks (kept only if
  /// `keep_blocks` was set).
  void apply_dense_reference(std::span<const double> x,
                             std::span<double> y) const;
  void set_keep_blocks(std::span<const double> blocks);

 private:
  void forward_channels(std::span<const double> x, std::size_t nchan,
                        std::size_t nrhs, std::vector<Complex>& xhat) const;
  void inverse_channels(const std::vector<Complex>& yhat, std::size_t nchan,
                        std::size_t nrhs, std::span<double> y) const;

  std::size_t rows_, cols_, nt_;
  std::size_t fft_len_;   ///< L = next_pow2(2 nt)
  std::size_t nfreq_;     ///< L/2 + 1
  FftPlan plan_;
  /// fhat_[(w * rows + r) * cols + c]: block spectra, frequency-major.
  std::vector<Complex> fhat_;
  std::vector<double> blocks_;  ///< optional time-domain copy (tests)
};

}  // namespace tsunami
