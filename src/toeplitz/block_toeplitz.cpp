#include "toeplitz/block_toeplitz.hpp"

#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace tsunami {

BlockToeplitz::BlockToeplitz(std::size_t rows, std::size_t cols,
                             std::size_t nblocks,
                             std::span<const double> blocks)
    : rows_(rows),
      cols_(cols),
      nt_(nblocks),
      fft_len_(next_pow2(2 * nblocks)),
      nfreq_(fft_len_ / 2 + 1),
      plan_(fft_len_) {
  if (blocks.size() != rows * cols * nblocks)
    throw std::invalid_argument("BlockToeplitz: block array size mismatch");
  fhat_.assign(nfreq_ * rows_ * cols_, Complex(0.0, 0.0));
  // One length-L FFT per (r, c) entry sequence. Parallel over entries.
  parallel_for(rows_ * cols_, [&](std::size_t rc) {
    const std::size_t r = rc / cols_;
    const std::size_t c = rc % cols_;
    std::vector<Complex> tmp(fft_len_, Complex(0.0, 0.0));
    for (std::size_t k = 0; k < nt_; ++k)
      tmp[k] = Complex(blocks[(k * rows_ + r) * cols_ + c], 0.0);
    plan_.forward(std::span<Complex>(tmp));
    for (std::size_t w = 0; w < nfreq_; ++w)
      fhat_[(w * rows_ + r) * cols_ + c] = tmp[w];
  });
}

void BlockToeplitz::set_keep_blocks(std::span<const double> blocks) {
  if (blocks.size() != rows_ * cols_ * nt_)
    throw std::invalid_argument("set_keep_blocks: size mismatch");
  blocks_.assign(blocks.begin(), blocks.end());
}

void BlockToeplitz::forward_channels(std::span<const double> x,
                                     std::size_t nchan, std::size_t nrhs,
                                     std::vector<Complex>& xhat) const {
  // x: time-major with nrhs columns: x[(t * nchan + c) * nrhs + v].
  // xhat: [(w * nchan + c) * nrhs + v], half spectrum.
  xhat.assign(nfreq_ * nchan * nrhs, Complex(0.0, 0.0));
  parallel_for(nchan * nrhs, [&](std::size_t cv) {
    const std::size_t c = cv / nrhs;
    const std::size_t v = cv % nrhs;
    std::vector<Complex> tmp(fft_len_, Complex(0.0, 0.0));
    for (std::size_t t = 0; t < nt_; ++t)
      tmp[t] = Complex(x[(t * nchan + c) * nrhs + v], 0.0);
    plan_.forward(std::span<Complex>(tmp));
    for (std::size_t w = 0; w < nfreq_; ++w)
      xhat[(w * nchan + c) * nrhs + v] = tmp[w];
  });
}

void BlockToeplitz::inverse_channels(const std::vector<Complex>& yhat,
                                     std::size_t nchan, std::size_t nrhs,
                                     std::span<double> y) const {
  // Rebuild the full spectrum from conjugate symmetry, inverse FFT, keep the
  // first nt_ (real) samples.
  parallel_for(nchan * nrhs, [&](std::size_t cv) {
    const std::size_t c = cv / nrhs;
    const std::size_t v = cv % nrhs;
    std::vector<Complex> tmp(fft_len_);
    for (std::size_t w = 0; w < nfreq_; ++w)
      tmp[w] = yhat[(w * nchan + c) * nrhs + v];
    for (std::size_t w = nfreq_; w < fft_len_; ++w)
      tmp[w] = std::conj(tmp[fft_len_ - w]);
    plan_.inverse(std::span<Complex>(tmp));
    for (std::size_t t = 0; t < nt_; ++t)
      y[(t * nchan + c) * nrhs + v] = tmp[t].real();
  });
}

void BlockToeplitz::apply(std::span<const double> x,
                          std::span<double> y) const {
  if (x.size() != input_dim() || y.size() != output_dim())
    throw std::invalid_argument("BlockToeplitz::apply: size mismatch");
  std::vector<Complex> xhat;
  forward_channels(x, cols_, 1, xhat);
  std::vector<Complex> yhat(nfreq_ * rows_, Complex(0.0, 0.0));
  // Per-frequency block matvec Y(w) = Fhat(w) X(w).
  parallel_for(nfreq_, [&](std::size_t w) {
    const Complex* fw = fhat_.data() + w * rows_ * cols_;
    const Complex* xw = xhat.data() + w * cols_;
    Complex* yw = yhat.data() + w * rows_;
    for (std::size_t r = 0; r < rows_; ++r) {
      Complex s(0.0, 0.0);
      const Complex* frow = fw + r * cols_;
      for (std::size_t c = 0; c < cols_; ++c) s += frow[c] * xw[c];
      yw[r] = s;
    }
  });
  inverse_channels(yhat, rows_, 1, y);
}

void BlockToeplitz::apply_transpose(std::span<const double> x,
                                    std::span<double> y) const {
  if (x.size() != output_dim() || y.size() != input_dim())
    throw std::invalid_argument("BlockToeplitz::apply_transpose: mismatch");
  std::vector<Complex> xhat;
  forward_channels(x, rows_, 1, xhat);
  std::vector<Complex> yhat(nfreq_ * cols_, Complex(0.0, 0.0));
  // Per-frequency Y(w) = Fhat(w)^H X(w) (cyclic correlation).
  parallel_for(nfreq_, [&](std::size_t w) {
    const Complex* fw = fhat_.data() + w * rows_ * cols_;
    const Complex* xw = xhat.data() + w * rows_;
    Complex* yw = yhat.data() + w * cols_;
    for (std::size_t c = 0; c < cols_; ++c) yw[c] = Complex(0.0, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      const Complex xr = xw[r];
      const Complex* frow = fw + r * cols_;
      for (std::size_t c = 0; c < cols_; ++c)
        yw[c] += std::conj(frow[c]) * xr;
    }
  });
  inverse_channels(yhat, cols_, 1, y);
}

void BlockToeplitz::apply_many(const Matrix& x_cols, Matrix& y_cols) const {
  const std::size_t nrhs = x_cols.cols();
  if (x_cols.rows() != input_dim())
    throw std::invalid_argument("apply_many: input rows mismatch");
  y_cols = Matrix(output_dim(), nrhs);
  std::vector<Complex> xhat;
  forward_channels(std::span<const double>(x_cols.data(), x_cols.size()),
                   cols_, nrhs, xhat);
  std::vector<Complex> yhat(nfreq_ * rows_ * nrhs, Complex(0.0, 0.0));
  // Per-frequency complex GEMM: Y(w)[rows x nrhs] = Fhat(w) X(w)[cols x nrhs].
  parallel_for(nfreq_, [&](std::size_t w) {
    const Complex* fw = fhat_.data() + w * rows_ * cols_;
    const Complex* xw = xhat.data() + w * cols_ * nrhs;
    Complex* yw = yhat.data() + w * rows_ * nrhs;
    for (std::size_t r = 0; r < rows_; ++r) {
      Complex* yrow = yw + r * nrhs;
      const Complex* frow = fw + r * cols_;
      for (std::size_t c = 0; c < cols_; ++c) {
        const Complex f = frow[c];
        if (f == Complex(0.0, 0.0)) continue;
        const Complex* xrow = xw + c * nrhs;
        for (std::size_t v = 0; v < nrhs; ++v) yrow[v] += f * xrow[v];
      }
    }
  });
  inverse_channels(yhat, rows_, nrhs,
                   std::span<double>(y_cols.data(), y_cols.size()));
}

void BlockToeplitz::apply_transpose_many(const Matrix& x_cols,
                                         Matrix& y_cols) const {
  const std::size_t nrhs = x_cols.cols();
  if (x_cols.rows() != output_dim())
    throw std::invalid_argument("apply_transpose_many: input rows mismatch");
  y_cols = Matrix(input_dim(), nrhs);
  std::vector<Complex> xhat;
  forward_channels(std::span<const double>(x_cols.data(), x_cols.size()),
                   rows_, nrhs, xhat);
  std::vector<Complex> yhat(nfreq_ * cols_ * nrhs, Complex(0.0, 0.0));
  parallel_for(nfreq_, [&](std::size_t w) {
    const Complex* fw = fhat_.data() + w * rows_ * cols_;
    const Complex* xw = xhat.data() + w * rows_ * nrhs;
    Complex* yw = yhat.data() + w * cols_ * nrhs;
    for (std::size_t r = 0; r < rows_; ++r) {
      const Complex* xrow = xw + r * nrhs;
      const Complex* frow = fw + r * cols_;
      for (std::size_t c = 0; c < cols_; ++c) {
        const Complex f = std::conj(frow[c]);
        if (f == Complex(0.0, 0.0)) continue;
        Complex* yrow = yw + c * nrhs;
        for (std::size_t v = 0; v < nrhs; ++v) yrow[v] += f * xrow[v];
      }
    }
  });
  inverse_channels(yhat, cols_, nrhs,
                   std::span<double>(y_cols.data(), y_cols.size()));
}

void BlockToeplitz::apply_dense_reference(std::span<const double> x,
                                          std::span<double> y) const {
  if (blocks_.empty())
    throw std::logic_error(
        "apply_dense_reference: call set_keep_blocks first");
  if (x.size() != input_dim() || y.size() != output_dim())
    throw std::invalid_argument("apply_dense_reference: size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t i = 0; i < nt_; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double* fk = blocks_.data() + (i - j) * rows_ * cols_;
      const double* xj = x.data() + j * cols_;
      double* yi = y.data() + i * rows_;
      for (std::size_t r = 0; r < rows_; ++r) {
        double s = 0.0;
        const double* frow = fk + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c) s += frow[c] * xj[c];
        yi[r] += s;
      }
    }
}

}  // namespace tsunami
