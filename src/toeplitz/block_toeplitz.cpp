#include "toeplitz/block_toeplitz.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"

namespace tsunami {

// The per-frequency kernels are pure unit-stride FMA streams: exactly the
// code that gains from vectors wider than the portable baseline ISA. GCC
// function multiversioning compiles each kernel additionally for x86-64-v3
// (AVX2 + FMA) and dispatches by CPUID once at load time — no global -march
// flag, and non-x86 / non-GNU / sanitizer builds keep the plain definition.
// Reproducibility note: dispatch is per-machine-deterministic, so every
// within-process exactness contract (legacy vs workspace API, streaming vs
// batch, warm vs cold) is unaffected; cross-ISA runs agree to the same
// tolerances as the FFT path itself.
#if defined(__x86_64__) && defined(__linux__) && defined(__GNUC__) && \
    !defined(__clang__) && !defined(__SANITIZE_THREAD__)
#define TSUNAMI_HOT_KERNEL __attribute__((target_clones("default", "arch=x86-64-v3")))
#else
#define TSUNAMI_HOT_KERNEL
#endif

namespace {

// Register tile of the frequency-domain micro-kernel: kTileR output rows x
// kTileV right-hand sides accumulate in local (register) storage while the
// reduction dimension streams through split-complex planes at unit stride.
// No zero-test branch in the inner loop: block spectra are dense, and the
// branch both defeated vectorization and cost a compare per FMA.
constexpr std::size_t kTileR = 4;
constexpr std::size_t kTileV = 8;

/// Single-RHS forward kernel: y(r) = sum_c f(r,c) x(c). Four unit-stride
/// real dot-product streams per output row.
TSUNAMI_HOT_KERNEL
void matvec_freq(const double* fre, const double* fim, const double* xre,
                 const double* xim, double* yre, double* yim, std::size_t rows,
                 std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* fr = fre + r * cols;
    const double* fi = fim + r * cols;
    double sre = 0.0, sim = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      sre += fr[c] * xre[c] - fi[c] * xim[c];
      sim += fr[c] * xim[c] + fi[c] * xre[c];
    }
    yre[r] = sre;
    yim[r] = sim;
  }
}

/// Single-RHS transpose kernel: y(c) = sum_r conj(f(r,c)) x(r). The row
/// broadcast keeps every stream (f row, y) unit-stride.
TSUNAMI_HOT_KERNEL
void matvec_freq_herm(const double* fre, const double* fim, const double* xre,
                      const double* xim, double* yre, double* yim,
                      std::size_t rows, std::size_t cols) {
  std::fill(yre, yre + cols, 0.0);
  std::fill(yim, yim + cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* fr = fre + r * cols;
    const double* fi = fim + r * cols;
    const double ar = xre[r], ai = xim[r];
    for (std::size_t c = 0; c < cols; ++c) {
      yre[c] += fr[c] * ar + fi[c] * ai;
      yim[c] += fr[c] * ai - fi[c] * ar;
    }
  }
}

/// Multi-RHS forward GEMM: y(r,v) = sum_c f(r,c) x(c,v), tiled kTileR x
/// kTileV with the accumulators held locally across the whole c sweep.
TSUNAMI_HOT_KERNEL
void gemm_freq(const double* fre, const double* fim, const double* xre,
               const double* xim, double* yre, double* yim, std::size_t rows,
               std::size_t cols, std::size_t nrhs) {
  for (std::size_t r0 = 0; r0 < rows; r0 += kTileR) {
    const std::size_t rl = std::min(kTileR, rows - r0);
    for (std::size_t v0 = 0; v0 < nrhs; v0 += kTileV) {
      const std::size_t vl = std::min(kTileV, nrhs - v0);
      double are[kTileR][kTileV] = {};
      double aim[kTileR][kTileV] = {};
      for (std::size_t c = 0; c < cols; ++c) {
        const double* xr = xre + c * nrhs + v0;
        const double* xi = xim + c * nrhs + v0;
        for (std::size_t rr = 0; rr < rl; ++rr) {
          const double f_re = fre[(r0 + rr) * cols + c];
          const double f_im = fim[(r0 + rr) * cols + c];
          for (std::size_t vv = 0; vv < vl; ++vv) {
            are[rr][vv] += f_re * xr[vv] - f_im * xi[vv];
            aim[rr][vv] += f_re * xi[vv] + f_im * xr[vv];
          }
        }
      }
      for (std::size_t rr = 0; rr < rl; ++rr) {
        double* yr = yre + (r0 + rr) * nrhs + v0;
        double* yi = yim + (r0 + rr) * nrhs + v0;
        for (std::size_t vv = 0; vv < vl; ++vv) {
          yr[vv] = are[rr][vv];
          yi[vv] = aim[rr][vv];
        }
      }
    }
  }
}

/// Multi-RHS transpose GEMM: y(c,v) = sum_r conj(f(r,c)) x(r,v), tiled over
/// output columns x RHS with the r reduction innermost-but-one.
TSUNAMI_HOT_KERNEL
void gemm_freq_herm(const double* fre, const double* fim, const double* xre,
                    const double* xim, double* yre, double* yim,
                    std::size_t rows, std::size_t cols, std::size_t nrhs) {
  for (std::size_t c0 = 0; c0 < cols; c0 += kTileR) {
    const std::size_t cl = std::min(kTileR, cols - c0);
    for (std::size_t v0 = 0; v0 < nrhs; v0 += kTileV) {
      const std::size_t vl = std::min(kTileV, nrhs - v0);
      double are[kTileR][kTileV] = {};
      double aim[kTileR][kTileV] = {};
      for (std::size_t r = 0; r < rows; ++r) {
        const double* xr = xre + r * nrhs + v0;
        const double* xi = xim + r * nrhs + v0;
        const double* fr = fre + r * cols + c0;
        const double* fi = fim + r * cols + c0;
        for (std::size_t cc = 0; cc < cl; ++cc) {
          const double f_re = fr[cc], f_im = fi[cc];
          for (std::size_t vv = 0; vv < vl; ++vv) {
            are[cc][vv] += f_re * xr[vv] + f_im * xi[vv];
            aim[cc][vv] += f_re * xi[vv] - f_im * xr[vv];
          }
        }
      }
      for (std::size_t cc = 0; cc < cl; ++cc) {
        double* yr = yre + (c0 + cc) * nrhs + v0;
        double* yi = yim + (c0 + cc) * nrhs + v0;
        for (std::size_t vv = 0; vv < vl; ++vv) {
          yr[vv] = are[cc][vv];
          yi[vv] = aim[cc][vv];
        }
      }
    }
  }
}

/// Workspace behind the workspace-less apply overloads: per-thread, so the
/// legacy API is allocation-free in steady state AND safe under concurrent
/// callers (each thread owns its buffers).
ToeplitzWorkspace& tls_workspace() {
  static thread_local ToeplitzWorkspace ws;
  return ws;
}

}  // namespace

BlockToeplitz::BlockToeplitz(std::size_t rows, std::size_t cols,
                             std::size_t nblocks,
                             std::span<const double> blocks)
    : rows_(rows),
      cols_(cols),
      nt_(nblocks),
      fft_len_(next_pow2(2 * nblocks)),
      nfreq_(fft_len_ / 2 + 1),
      plan_(fft_len_) {
  if (blocks.size() != rows * cols * nblocks)
    throw std::invalid_argument("BlockToeplitz: block array size mismatch");
  const std::size_t nrc = rows_ * cols_;
  // NumaArray first-touches the slab pages from the pool workers that will
  // stream them on every apply (and zero-fills; every entry is overwritten
  // by the strided FFT writes below).
  fhat_re_ = NumaArray(nfreq_ * nrc);
  fhat_im_ = NumaArray(nfreq_ * nrc);
  // One length-L real FFT per (r, c) entry sequence, batched over entries
  // with one spectrum + FFT scratch slab per loop participant (no per-signal
  // temporaries). Entry (r, c) of block k sits at blocks[k * nrc + rc]:
  // base rc, stride nrc — the strided r2c pack reads it in place.
  TRACE_SCOPE("kernel", "build_spectra");
  const std::size_t scr = plan_.scratch_size();
  const auto nthreads = static_cast<std::size_t>(num_threads());
  std::vector<Complex> fft_scratch(nthreads * scr);
  double* fre = fhat_re_.data();
  double* fim = fhat_im_.data();
  parallel_for_slotted(nrc, 2, [&](std::size_t rc, std::size_t slot) {
    plan_.forward_strided_split(
        blocks.data() + rc, nrc, nt_, fre + rc, fim + rc, nrc,
        std::span<Complex>(fft_scratch.data() + slot * scr, scr));
  });
}

void BlockToeplitz::set_keep_blocks(std::span<const double> blocks) {
  if (blocks.size() != rows_ * cols_ * nt_)
    throw std::invalid_argument("set_keep_blocks: size mismatch");
  blocks_.assign(blocks.begin(), blocks.end());
}

TSUNAMI_HOT_PATH std::size_t
BlockToeplitz::prepare_thread_scratch(ToeplitzWorkspace& ws) const {
  const std::size_t scr = plan_.scratch_size();
  const auto nthreads = static_cast<std::size_t>(num_threads());
  if (ws.fft_.size() < nthreads * scr)
    ws.fft_.resize(nthreads * scr);  // lint: allow(hot-path-alloc) grow-once workspace
  return scr;
}

TSUNAMI_HOT_PATH void BlockToeplitz::forward_channels(
    const double* x, std::size_t nchan, std::size_t nrhs, std::size_t in_ticks,
    ToeplitzWorkspace& ws) const {
  TRACE_SCOPE("kernel", "fft_forward");
  // Signal s = c * nrhs + v lives at x[t * nsig + s]: base s, stride nsig.
  // Spectra land in the split-complex slab at [w * nsig + s].
  const std::size_t nsig = nchan * nrhs;
  if (ws.xhat_re_.size() < nfreq_ * nsig) {
    ws.xhat_re_.resize(nfreq_ * nsig);  // lint: allow(hot-path-alloc) grow-once workspace
    ws.xhat_im_.resize(nfreq_ * nsig);  // lint: allow(hot-path-alloc) grow-once workspace
  }
  const std::size_t scr = prepare_thread_scratch(ws);
  double* xre = ws.xhat_re_.data();
  double* xim = ws.xhat_im_.data();
  Complex* fft_base = ws.fft_.data();
  parallel_for_slotted(nsig, 2, [&](std::size_t s, std::size_t slot) {
    // The untangle pass of the r2c transform writes the split slab planes
    // directly (bin stride nsig): no AoS spectrum staging.
    plan_.forward_strided_split(
        x + s, nsig, in_ticks, xre + s, xim + s, nsig,
        std::span<Complex>(fft_base + slot * scr, scr));
  });
}

TSUNAMI_HOT_PATH void BlockToeplitz::inverse_channels(
    std::size_t nchan, std::size_t nrhs, std::span<double> y,
    ToeplitzWorkspace& ws) const {
  TRACE_SCOPE("kernel", "fft_inverse");
  const std::size_t nsig = nchan * nrhs;
  const std::size_t scr = prepare_thread_scratch(ws);
  const double* yre = ws.yhat_re_.data();
  const double* yim = ws.yhat_im_.data();
  Complex* fft_base = ws.fft_.data();
  double* yp = y.data();
  parallel_for_slotted(nsig, 2, [&](std::size_t s, std::size_t slot) {
    // The c2r inverse reads the split slab planes directly, rebuilds the
    // redundant half spectrum implicitly, and emits only the nt_ retained
    // (real) samples, scattered time-major.
    plan_.inverse_strided_split(
        yre + s, yim + s, nsig, yp + s, nsig, nt_,
        std::span<Complex>(fft_base + slot * scr, scr));
  });
}

TSUNAMI_HOT_PATH void BlockToeplitz::apply_impl(const double* x, double* y,
                                                std::size_t nrhs,
                                                std::size_t in_ticks,
                                                bool transpose,
                                                ToeplitzWorkspace& ws) const {
  TRACE_SCOPE("kernel", "toeplitz_apply");
  const std::size_t nin = transpose ? rows_ : cols_;
  const std::size_t nout = transpose ? cols_ : rows_;
  forward_channels(x, nin, nrhs, in_ticks, ws);
  const std::size_t ylen = nfreq_ * nout * nrhs;
  if (ws.yhat_re_.size() < ylen) {
    ws.yhat_re_.resize(ylen);  // lint: allow(hot-path-alloc) grow-once workspace
    ws.yhat_im_.resize(ylen);  // lint: allow(hot-path-alloc) grow-once workspace
  }
  const double* fre = fhat_re_.data();
  const double* fim = fhat_im_.data();
  const double* xre = ws.xhat_re_.data();
  const double* xim = ws.xhat_im_.data();
  double* yre = ws.yhat_re_.data();
  double* yim = ws.yhat_im_.data();
  const std::size_t rows = rows_, cols = cols_;
  // Per-frequency block GEMM — the paper's batched-BLAS kernel. Every
  // frequency is independent; each writes a disjoint slab slice, so the
  // result is deterministic for any thread count.
  {
    TRACE_SCOPE("kernel", "freq_gemm");
    parallel_for(nfreq_, [&](std::size_t w) {
      const double* fwre = fre + w * rows * cols;
      const double* fwim = fim + w * rows * cols;
      const double* xwre = xre + w * nin * nrhs;
      const double* xwim = xim + w * nin * nrhs;
      double* ywre = yre + w * nout * nrhs;
      double* ywim = yim + w * nout * nrhs;
      if (transpose) {
        if (nrhs == 1)
          matvec_freq_herm(fwre, fwim, xwre, xwim, ywre, ywim, rows, cols);
        else
          gemm_freq_herm(fwre, fwim, xwre, xwim, ywre, ywim, rows, cols, nrhs);
      } else {
        if (nrhs == 1)
          matvec_freq(fwre, fwim, xwre, xwim, ywre, ywim, rows, cols);
        else
          gemm_freq(fwre, fwim, xwre, xwim, ywre, ywim, rows, cols, nrhs);
      }
    });
  }
  inverse_channels(nout, nrhs, std::span<double>(y, nt_ * nout * nrhs), ws);
}

TSUNAMI_HOT_PATH void BlockToeplitz::apply(std::span<const double> x,
                                           std::span<double> y,
                                           ToeplitzWorkspace& ws) const {
  if (x.size() != input_dim() || y.size() != output_dim())
    throw std::invalid_argument("BlockToeplitz::apply: size mismatch");
  apply_impl(x.data(), y.data(), 1, nt_, /*transpose=*/false, ws);
}

TSUNAMI_HOT_PATH void BlockToeplitz::apply(std::span<const double> x,
                                           std::span<double> y) const {
  apply(x, y, tls_workspace());
}

TSUNAMI_HOT_PATH void BlockToeplitz::apply_transpose(
    std::span<const double> x, std::span<double> y,
    ToeplitzWorkspace& ws) const {
  if (x.size() != output_dim() || y.size() != input_dim())
    throw std::invalid_argument("BlockToeplitz::apply_transpose: mismatch");
  apply_impl(x.data(), y.data(), 1, nt_, /*transpose=*/true, ws);
}

TSUNAMI_HOT_PATH void BlockToeplitz::apply_transpose(
    std::span<const double> x, std::span<double> y) const {
  apply_transpose(x, y, tls_workspace());
}

TSUNAMI_HOT_PATH void BlockToeplitz::apply_transpose_prefix(
    std::span<const double> x, std::size_t ticks, std::span<double> y) const {
  apply_transpose_prefix(x, ticks, y, tls_workspace());
}

TSUNAMI_HOT_PATH void BlockToeplitz::apply_transpose_prefix(
    std::span<const double> x, std::size_t ticks, std::span<double> y,
    ToeplitzWorkspace& ws) const {
  if (ticks > nt_ || x.size() < ticks * rows_)
    throw std::invalid_argument(
        "BlockToeplitz::apply_transpose_prefix: bad prefix");
  if (y.size() != input_dim())
    throw std::invalid_argument(
        "BlockToeplitz::apply_transpose_prefix: output size mismatch");
  if (ticks == 0) {
    // An empty prefix maps to exactly zero — and x may be an empty span
    // whose data() is null, which must not reach the strided FFT pack.
    std::fill(y.begin(), y.end(), 0.0);
    return;
  }
  apply_impl(x.data(), y.data(), 1, ticks, /*transpose=*/true, ws);
}

TSUNAMI_HOT_PATH void BlockToeplitz::apply_many(const Matrix& x_cols,
                                                Matrix& y_cols,
                                                ToeplitzWorkspace& ws) const {
  const std::size_t nrhs = x_cols.cols();
  if (x_cols.rows() != input_dim())
    throw std::invalid_argument("apply_many: input rows mismatch");
  if (y_cols.rows() != output_dim() || y_cols.cols() != nrhs)
    y_cols = Matrix(output_dim(), nrhs);
  if (nrhs == 0) return;
  apply_impl(x_cols.data(), y_cols.data(), nrhs, nt_, /*transpose=*/false, ws);
}

TSUNAMI_HOT_PATH void BlockToeplitz::apply_many(const Matrix& x_cols,
                                                Matrix& y_cols) const {
  apply_many(x_cols, y_cols, tls_workspace());
}

TSUNAMI_HOT_PATH void BlockToeplitz::apply_transpose_many(
    const Matrix& x_cols, Matrix& y_cols, ToeplitzWorkspace& ws) const {
  const std::size_t nrhs = x_cols.cols();
  if (x_cols.rows() != output_dim())
    throw std::invalid_argument("apply_transpose_many: input rows mismatch");
  if (y_cols.rows() != input_dim() || y_cols.cols() != nrhs)
    y_cols = Matrix(input_dim(), nrhs);
  if (nrhs == 0) return;
  apply_impl(x_cols.data(), y_cols.data(), nrhs, nt_, /*transpose=*/true, ws);
}

TSUNAMI_HOT_PATH void BlockToeplitz::apply_transpose_many(
    const Matrix& x_cols, Matrix& y_cols) const {
  apply_transpose_many(x_cols, y_cols, tls_workspace());
}

void BlockToeplitz::apply_dense_reference(std::span<const double> x,
                                          std::span<double> y) const {
  if (blocks_.empty())
    throw std::logic_error(
        "apply_dense_reference: call set_keep_blocks first");
  if (x.size() != input_dim() || y.size() != output_dim())
    throw std::invalid_argument("apply_dense_reference: size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t i = 0; i < nt_; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      const double* fk = blocks_.data() + (i - j) * rows_ * cols_;
      const double* xj = x.data() + j * cols_;
      double* yi = y.data() + i * rows_;
      for (std::size_t r = 0; r < rows_; ++r) {
        double s = 0.0;
        const double* frow = fk + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c) s += frow[c] * xj[c];
        yi[r] += s;
      }
    }
}

}  // namespace tsunami
