#include "rupture/scenario.hpp"

#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace tsunami {

RuptureConfig margin_wide_scenario(double lx, double ly, double magnitude,
                                   unsigned seed) {
  Rng rng(seed);
  RuptureConfig cfg;
  // Peak uplift scaling: ~3 m at Mw 8.7, exponential in magnitude (moment
  // scales as 10^{1.5 Mw}; uplift roughly with slip ~ M0^{1/3}-ish; we use a
  // gentle calibration adequate for synthetic scenarios).
  const double peak = 3.0 * std::pow(10.0, 0.5 * (magnitude - 8.7));

  // 3-5 asperities strung along strike over the locked zone (the seaward
  // half of the margin), with varying sizes and amplitudes.
  const std::size_t count = 3 + rng.index(3);
  for (std::size_t i = 0; i < count; ++i) {
    Asperity a;
    const double fy =
        (static_cast<double>(i) + 0.5) / static_cast<double>(count);
    a.y0 = ly * (fy + 0.08 * (rng.uniform() - 0.5));
    a.x0 = lx * (0.30 + 0.15 * rng.uniform());  // over the locked interface
    a.ry = ly / static_cast<double>(count) * (0.45 + 0.25 * rng.uniform());
    a.rx = lx * (0.12 + 0.08 * rng.uniform());
    a.peak_uplift = peak * (0.6 + 0.4 * rng.uniform());
    a.angle = 0.25 * (rng.uniform() - 0.5);
    cfg.asperities.push_back(a);
  }
  cfg.hypocenter_x = lx * 0.35;
  cfg.hypocenter_y = ly * 0.5;
  cfg.rupture_speed = 2500.0;
  cfg.rise_time = 15.0;
  return cfg;
}

RuptureScenario::RuptureScenario(RuptureConfig config)
    : cfg_(std::move(config)) {}

namespace {

/// Smooth compact bump: exp(1 - 1/(1 - r^2)) inside r < 1, else 0.
double bump(double r2) {
  if (r2 >= 1.0) return 0.0;
  return std::exp(1.0 - 1.0 / (1.0 - r2));
}

/// Smooth ramp: integral-normalized raised cosine over [0, tau].
/// ramp(s) = 0 for s <= 0, 1 for s >= tau.
double ramp(double s, double tau) {
  if (s <= 0.0) return 0.0;
  if (s >= tau) return 1.0;
  return 0.5 * (1.0 - std::cos(std::numbers::pi * s / tau));
}

/// d/ds of ramp.
double ramp_rate(double s, double tau) {
  if (s <= 0.0 || s >= tau) return 0.0;
  return 0.5 * std::numbers::pi / tau *
         std::sin(std::numbers::pi * s / tau);
}

double asperity_shape(const Asperity& a, double x, double y) {
  const double ca = std::cos(a.angle), sa = std::sin(a.angle);
  const double dx = x - a.x0, dy = y - a.y0;
  const double u = (ca * dx + sa * dy) / a.rx;
  const double v = (-sa * dx + ca * dy) / a.ry;
  return a.peak_uplift * bump(u * u + v * v);
}

}  // namespace

double RuptureScenario::onset_time(double x, double y) const {
  const double dx = x - cfg_.hypocenter_x;
  const double dy = y - cfg_.hypocenter_y;
  return std::sqrt(dx * dx + dy * dy) / cfg_.rupture_speed;
}

double RuptureScenario::final_uplift(double x, double y) const {
  double b = 0.0;
  for (const auto& a : cfg_.asperities) b += asperity_shape(a, x, y);
  return b;
}

double RuptureScenario::uplift(double x, double y, double t) const {
  const double t0 = onset_time(x, y);
  const double frac = ramp(t - t0, cfg_.rise_time);
  if (frac == 0.0) return 0.0;
  return final_uplift(x, y) * frac;
}

double RuptureScenario::uplift_velocity(double x, double y, double t) const {
  const double t0 = onset_time(x, y);
  const double rate = ramp_rate(t - t0, cfg_.rise_time);
  if (rate == 0.0) return 0.0;
  return final_uplift(x, y) * rate;
}

std::vector<double> RuptureScenario::sample(const BottomSourceMap& grid,
                                            const TimeGrid& time) const {
  const std::size_t nm = grid.parameter_dim();
  const std::size_t nt = time.num_intervals;
  std::vector<double> m(nm * nt, 0.0);
  const double dt_obs = time.interval();
  for (std::size_t i = 0; i < nt; ++i) {
    const double t_mid = (static_cast<double>(i) + 0.5) * dt_obs;
    for (std::size_t r = 0; r < nm; ++r) {
      const auto xy = grid.node_xy(r);
      m[i * nm + r] = uplift_velocity(xy[0], xy[1], t_mid);
    }
  }
  return m;
}

}  // namespace tsunami
