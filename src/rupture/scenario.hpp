#pragma once

// Kinematic megathrust rupture scenarios (substitution for the paper's 3-D
// dynamic rupture simulation, see DESIGN.md).
//
// The inversion consumes only the spatiotemporal seafloor normal velocity
// m_true(x, t); this module synthesizes realistic fields with the features
// the paper's Mw 8.7 scenario exhibits (Figs. 1, 3): several elliptical slip
// asperities along strike, a rupture front propagating from a hypocenter at
// a finite rupture speed, smooth rise-time source pulses, and margin-wide
// extent. Moment-magnitude scaling sets the peak uplift amplitude.

#include <array>
#include <cstddef>
#include <vector>

#include "fem/boundary_ops.hpp"
#include "wave/adjoint.hpp"

namespace tsunami {

/// One elliptical uplift asperity.
struct Asperity {
  double x0 = 0.0, y0 = 0.0;   ///< center [m]
  double rx = 1.0, ry = 1.0;   ///< semi-axes [m]
  double peak_uplift = 1.0;    ///< final vertical displacement at center [m]
  double angle = 0.0;          ///< rotation of the ellipse [rad]
};

struct RuptureConfig {
  std::vector<Asperity> asperities;
  double hypocenter_x = 0.0;      ///< rupture nucleation [m]
  double hypocenter_y = 0.0;
  double rupture_speed = 2500.0;  ///< rupture front speed [m/s]
  double rise_time = 15.0;        ///< local source duration [s]
};

/// A margin-wide scenario patterned on the paper's magnitude-8.7 event:
/// asperities strung along strike across the locked zone, nucleation near
/// the center of the margin. `lx`, `ly` are the model footprint extents;
/// `magnitude` scales peak uplift (Mw 8.7 -> ~3 m peak uplift).
[[nodiscard]] RuptureConfig margin_wide_scenario(double lx, double ly,
                                                 double magnitude = 8.7,
                                                 unsigned seed = 2025);

/// Evaluates the scenario on the inverse problem's parameter grid.
class RuptureScenario {
 public:
  explicit RuptureScenario(RuptureConfig config);

  /// Final (t -> inf) uplift [m] at footprint position (x, y).
  [[nodiscard]] double final_uplift(double x, double y) const;

  /// Uplift b(x, y, t) [m] (ramp from 0 to the final uplift after onset).
  [[nodiscard]] double uplift(double x, double y, double t) const;

  /// Uplift velocity db/dt [m/s] at position (x, y) and time t.
  [[nodiscard]] double uplift_velocity(double x, double y, double t) const;

  /// Onset time of rupture at (x, y) (hypocentral distance / speed).
  [[nodiscard]] double onset_time(double x, double y) const;

  /// Sample m_true over a parameter grid and time grid: time-major vector of
  /// Nt blocks of size Nm, where block i holds db/dt at the interval
  /// midpoint (zero-order-hold consistent with the discrete p2o map).
  [[nodiscard]] std::vector<double> sample(const BottomSourceMap& grid,
                                           const TimeGrid& time) const;

  [[nodiscard]] const RuptureConfig& config() const { return cfg_; }

 private:
  RuptureConfig cfg_;
};

}  // namespace tsunami
