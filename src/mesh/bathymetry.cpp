#include "mesh/bathymetry.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace tsunami {

Bathymetry::Bathymetry(const BathymetryConfig& config) : cfg_(config) {}

double Bathymetry::depth(double x, double y) const {
  const double xi = std::clamp(x / cfg_.length_x, 0.0, 1.0);
  const double eta = std::clamp(y / cfg_.length_y, 0.0, 1.0);

  // Across-margin profile: tanh ramp from abyssal plain up the continental
  // slope onto the shelf.
  const double s = std::tanh((xi - cfg_.slope_center) / cfg_.slope_width);
  const double base = 0.5 * (cfg_.depth_abyssal + cfg_.depth_shelf) -
                      0.5 * (cfg_.depth_abyssal - cfg_.depth_shelf) * s;

  // Along-strike undulation, attenuated on the shelf so the coast stays
  // shallow; phase drifts with x to avoid a separable (and thus overly
  // symmetric) bathymetry.
  const double two_pi = 2.0 * std::numbers::pi;
  const double undulation =
      cfg_.undulation_amp * (1.0 - 0.7 * xi) *
      std::sin(two_pi * (cfg_.undulation_waves * eta + 0.35 * xi));

  return std::max(cfg_.min_depth, base + undulation);
}

BathymetryConfig flat_basin(double depth, double lx, double ly) {
  BathymetryConfig c;
  c.length_x = lx;
  c.length_y = ly;
  c.depth_abyssal = depth;
  c.depth_shelf = depth;
  c.undulation_amp = 0.0;
  c.min_depth = std::min(depth, c.min_depth);
  return c;
}

}  // namespace tsunami
