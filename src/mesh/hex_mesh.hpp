#pragma once

// Bathymetry-adapted structured hexahedral mesh of the ocean volume
// (Fig. 1d of the paper: multi-block hexahedral mesh with bathymetry-adapted
// vertical coordinate).
//
// The logical mesh is a (nx x ny x nz) box of hexahedra over the margin
// footprint [0,Lx] x [0,Ly]; the vertical coordinate is terrain-following:
// column (x, y) spans z in [-depth(x,y), 0], so the bottom face of layer 0
// is the seafloor (boundary attribute Bottom), the top face of layer nz-1 is
// the sea surface (Surface), and the four side walls are absorbing (Lateral).
// Elements are trilinear hexes; geometry factors are evaluated per element in
// the FEM layer.

#include <array>
#include <cstddef>
#include <vector>

#include "mesh/bathymetry.hpp"

namespace tsunami {

enum class BoundaryKind { Bottom, Surface, Lateral };

/// Structured hexahedral ocean mesh.
class HexMesh {
 public:
  HexMesh(const Bathymetry& bathymetry, std::size_t nx, std::size_t ny,
          std::size_t nz);

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t nz() const { return nz_; }
  [[nodiscard]] std::size_t num_elements() const { return nx_ * ny_ * nz_; }
  [[nodiscard]] std::size_t num_vertices() const {
    return (nx_ + 1) * (ny_ + 1) * (nz_ + 1);
  }

  [[nodiscard]] double length_x() const { return lx_; }
  [[nodiscard]] double length_y() const { return ly_; }

  /// Vertex coordinate (3 doubles) for logical vertex (i, j, k),
  /// i in [0, nx], j in [0, ny], k in [0, nz] (k = 0 is the seafloor).
  [[nodiscard]] std::array<double, 3> vertex(std::size_t i, std::size_t j,
                                             std::size_t k) const;

  /// Linear element index of element (ex, ey, ez), x-fastest.
  [[nodiscard]] std::size_t element_index(std::size_t ex, std::size_t ey,
                                          std::size_t ez) const {
    return ex + nx_ * (ey + ny_ * ez);
  }

  /// Element logical coordinates of linear index e.
  [[nodiscard]] std::array<std::size_t, 3> element_coords(std::size_t e) const {
    return {e % nx_, (e / nx_) % ny_, e / (nx_ * ny_)};
  }

  /// The 8 vertex coordinates of element e in lexicographic (x,y,z) corner
  /// order; corner c = (cx, cy, cz) at index cx + 2*cy + 4*cz.
  [[nodiscard]] std::array<std::array<double, 3>, 8> element_vertices(
      std::size_t e) const;

  /// Water depth at the column containing footprint position (x, y).
  [[nodiscard]] double depth_at(double x, double y) const {
    return bathy_.depth(x, y);
  }

  [[nodiscard]] const Bathymetry& bathymetry() const { return bathy_; }

  /// Shortest element edge over the whole mesh (drives the CFL bound).
  [[nodiscard]] double min_edge_length() const;

  /// Uniform footprint spacing.
  [[nodiscard]] double dx() const { return lx_ / static_cast<double>(nx_); }
  [[nodiscard]] double dy() const { return ly_ / static_cast<double>(ny_); }

 private:
  Bathymetry bathy_;
  std::size_t nx_, ny_, nz_;
  double lx_, ly_;
};

}  // namespace tsunami
