#pragma once

// Synthetic Cascadia-like topobathymetry (GEBCO substitution, see DESIGN.md).
//
// Coordinates: x runs across the margin from the deformation front (trench,
// x = 0, deep) toward the coast (x = Lx, shallow); y runs along strike
// (~1000 km in the real CSZ). depth(x, y) > 0 is the water column thickness.
// The profile reproduces the morphology that matters for the physics:
// an abyssal plain, a continental slope, a shallow shelf, and smooth
// along-strike undulations so no two across-margin sections are identical.

#include <cstddef>

namespace tsunami {

struct BathymetryConfig {
  double length_x = 150e3;      ///< across-margin extent [m]
  double length_y = 250e3;      ///< along-strike extent [m]
  double depth_abyssal = 2800.0;///< water depth at the trench side [m]
  double depth_shelf = 180.0;   ///< water depth on the continental shelf [m]
  double slope_center = 0.55;   ///< slope toe position as a fraction of Lx
  double slope_width = 0.18;    ///< slope width as a fraction of Lx
  double undulation_amp = 120.0;///< along-strike depth undulation [m]
  double undulation_waves = 2.5;///< undulation periods along strike
  double min_depth = 60.0;      ///< floor on the water column [m]
};

/// Smooth synthetic bathymetry; thread-safe, stateless evaluation.
class Bathymetry {
 public:
  explicit Bathymetry(const BathymetryConfig& config = {});

  /// Water depth (positive, meters) at margin coordinates (x, y).
  [[nodiscard]] double depth(double x, double y) const;

  /// Seafloor elevation z = -depth(x, y).
  [[nodiscard]] double floor_z(double x, double y) const { return -depth(x, y); }

  [[nodiscard]] const BathymetryConfig& config() const { return cfg_; }

 private:
  BathymetryConfig cfg_;
};

/// Uniform-depth basin (flat bottom) for analytic verification tests.
[[nodiscard]] BathymetryConfig flat_basin(double depth, double lx, double ly);

}  // namespace tsunami
