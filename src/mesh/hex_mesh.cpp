#include "mesh/hex_mesh.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsunami {

HexMesh::HexMesh(const Bathymetry& bathymetry, std::size_t nx, std::size_t ny,
                 std::size_t nz)
    : bathy_(bathymetry),
      nx_(nx),
      ny_(ny),
      nz_(nz),
      lx_(bathymetry.config().length_x),
      ly_(bathymetry.config().length_y) {
  if (nx_ == 0 || ny_ == 0 || nz_ == 0)
    throw std::invalid_argument("HexMesh: zero element count");
}

std::array<double, 3> HexMesh::vertex(std::size_t i, std::size_t j,
                                      std::size_t k) const {
  const double x = lx_ * static_cast<double>(i) / static_cast<double>(nx_);
  const double y = ly_ * static_cast<double>(j) / static_cast<double>(ny_);
  // Terrain-following sigma coordinate: sigma = 0 at the seafloor, 1 at the
  // (flat) sea surface z = 0.
  const double sigma = static_cast<double>(k) / static_cast<double>(nz_);
  const double z = -bathy_.depth(x, y) * (1.0 - sigma);
  return {x, y, z};
}

std::array<std::array<double, 3>, 8> HexMesh::element_vertices(
    std::size_t e) const {
  const auto c = element_coords(e);
  std::array<std::array<double, 3>, 8> v;
  for (std::size_t cz = 0; cz < 2; ++cz)
    for (std::size_t cy = 0; cy < 2; ++cy)
      for (std::size_t cx = 0; cx < 2; ++cx)
        v[cx + 2 * cy + 4 * cz] = vertex(c[0] + cx, c[1] + cy, c[2] + cz);
  return v;
}

double HexMesh::min_edge_length() const {
  double h = std::numeric_limits<double>::max();
  for (std::size_t e = 0; e < num_elements(); ++e) {
    const auto v = element_vertices(e);
    // The 12 edges of the hex, as corner-index pairs.
    static constexpr std::array<std::array<int, 2>, 12> kEdges{{{0, 1},
                                                                {2, 3},
                                                                {4, 5},
                                                                {6, 7},
                                                                {0, 2},
                                                                {1, 3},
                                                                {4, 6},
                                                                {5, 7},
                                                                {0, 4},
                                                                {1, 5},
                                                                {2, 6},
                                                                {3, 7}}};
    for (const auto& ed : kEdges) {
      double d2 = 0.0;
      for (int c = 0; c < 3; ++c) {
        const double d = v[static_cast<std::size_t>(ed[0])][static_cast<std::size_t>(c)] -
                         v[static_cast<std::size_t>(ed[1])][static_cast<std::size_t>(c)];
        d2 += d * d;
      }
      h = std::min(h, std::sqrt(d2));
    }
  }
  return h;
}

}  // namespace tsunami
