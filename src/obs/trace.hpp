#pragma once

// Flight-recorder tracing: per-thread span ring buffers + Chrome trace export.
//
// The paper's credibility rests on per-phase wall-clock measurement (Table I /
// Table III); the serving layer's on p99 push latency. Both answer "how long",
// neither answers "WHY was this push slow — what was the pool doing, which
// drain batch was in flight, which kernel phase ate the time?" This module
// answers that question the way a flight recorder does: every thread owns a
// fixed-size ring of completed spans (category, name, begin/end timestamps),
// written lock-free and overwritten oldest-first, exported on demand (or at
// process exit via TSUNAMI_TRACE=path) as Chrome trace-event JSON that loads
// directly in Perfetto / chrome://tracing.
//
// Cost model — the reason this can instrument the push hot path:
//   * disabled (default): TRACE_SCOPE is one relaxed atomic load and a
//     predictable branch; no clock read, no allocation, no store. The A/B in
//     bench_streaming's BENCH_streaming.json guards this ("trace_off" vs
//     untraced push medians).
//   * enabled: two steady_clock reads plus four relaxed atomic stores into a
//     thread-private slot (~40 ns) — negligible against the >= µs spans the
//     instrumentation marks.
//   * compiled out: defining TSUNAMI_TRACE_DISABLED turns the macros into
//     `(void)0` for builds that must prove even the load away.
//
// Threading contract: each ring has exactly one writer (its thread); the
// exporter reads rings from any thread through relaxed atomics, so a span
// racing the export may be read half-old / half-new — a garbled entry in a
// diagnostic artifact, never UB and never a TSan report. Buffers outlive
// their threads (the registry keeps them alive), so spans from joined pool
// workers still appear in the export.
//
// Categories in use: "pool" (job execution, steals, parallel loops),
// "service" (drain batches, publishes), "stream" (push / push_many sweeps),
// "kernel" (FFT/GEMM phases of the block-Toeplitz apply), "offline"
// (phase 1-3 builds, streaming precompute).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace tsunami::obs {

namespace detail {

extern std::atomic<bool> g_trace_enabled;

[[nodiscard]] std::int64_t now_ns();

/// Record a completed span [t0, t1] into the calling thread's ring.
void record_span(const char* category, const char* name, std::int64_t t0_ns,
                 std::int64_t t1_ns);

/// Record an instantaneous event (rendered as a Perfetto instant marker).
void record_instant(const char* category, const char* name);

}  // namespace detail

/// True when spans are being recorded. The only thing a disabled TRACE_SCOPE
/// ever evaluates.
// mo: relaxed — hot-path poll of an on/off flag; observing a toggle late
// only delays when spans start/stop being recorded.
[[nodiscard]] inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Turn recording on/off at runtime (TSUNAMI_TRACE=path enables it at
/// startup and registers an at-exit export). Toggling does not clear
/// already-recorded spans.
void set_trace_enabled(bool enabled);

/// Per-thread ring capacity in spans for buffers created AFTER this call
/// (existing buffers keep their size). Also settable via the
/// TSUNAMI_TRACE_RING environment variable (TSUNAMI_TRACE_BUFFER is honored
/// as a legacy alias). Clamped to [64, 1 << 22]; default 8192.
void set_trace_buffer_capacity(std::size_t spans);

/// The ring capacity new per-thread buffers are created with.
[[nodiscard]] std::size_t trace_buffer_capacity();

/// Nanoseconds on the tracing module's monotonic clock (steady_clock pinned
/// to a process-start epoch). The shared timebase of trace spans, journal
/// records (src/service/event_journal.hpp), and forecast-staleness gauges,
/// so all three line up in one timeline.
[[nodiscard]] inline std::int64_t monotonic_ns() { return detail::now_ns(); }

/// Label the calling thread in the exported trace ("pool-worker-3"). Safe to
/// call whether or not tracing is enabled; cheap enough for thread startup.
void set_thread_name(const std::string& name);

/// Spans currently retained across all thread rings (post-wrap).
[[nodiscard]] std::size_t trace_span_count();

/// Spans overwritten by ring wrap-around since the last clear — nonzero
/// means the export is a suffix, not the whole history.
[[nodiscard]] std::size_t trace_dropped_count();

/// Drop every retained span (buffers stay registered). For benchmarks and
/// tests that want a clean window.
void clear_trace();

/// The full trace as Chrome trace-event JSON (the "traceEvents" array of
/// complete "X" events plus thread-name metadata), loadable in Perfetto or
/// chrome://tracing.
[[nodiscard]] std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// RAII span: captures the start time at construction (if tracing is on) and
/// records the completed span at destruction. `category` and `name` must be
/// string literals or otherwise outlive the export (they are stored as
/// pointers, never copied — that is what keeps the hot path store-only).
class TraceScope {
 public:
  TraceScope(const char* category, const char* name)
      : category_(trace_enabled() ? category : nullptr),
        name_(name),
        t0_(category_ != nullptr ? detail::now_ns() : 0) {}

  ~TraceScope() {
    if (category_ != nullptr)
      detail::record_span(category_, name_, t0_, detail::now_ns());
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* category_;  ///< null when tracing was off at construction
  const char* name_;
  std::int64_t t0_;
};

}  // namespace tsunami::obs

#ifndef TSUNAMI_TRACE_DISABLED
#define TSUNAMI_TRACE_CAT2(a, b) a##b
#define TSUNAMI_TRACE_CAT(a, b) TSUNAMI_TRACE_CAT2(a, b)
/// One completed span covering the enclosing scope. Arguments must be
/// string literals (see TraceScope).
#define TRACE_SCOPE(category, name)                              \
  const ::tsunami::obs::TraceScope TSUNAMI_TRACE_CAT(            \
      tsunami_trace_scope_, __LINE__)((category), (name))
/// One instantaneous marker (steals, wakeups, rejections).
#define TRACE_INSTANT(category, name)                                \
  do {                                                               \
    if (::tsunami::obs::trace_enabled())                             \
      ::tsunami::obs::detail::record_instant((category), (name));    \
  } while (0)
#else
#define TRACE_SCOPE(category, name) static_cast<void>(0)
#define TRACE_INSTANT(category, name) static_cast<void>(0)
#endif
