#pragma once

// Dependency-free HTTP/1.0 introspection server over raw POSIX sockets.
//
// The serving layer (src/service) answers "what is the forecast"; this module
// answers "what is the service doing RIGHT NOW" without attaching a debugger
// or restarting with different flags. It exists so an operator (or CI) can:
//
//   curl :9109/metrics   -> Prometheus text (every collect_* series)
//   curl :9109/healthz   -> liveness ("ok" while the process responds)
//   curl :9109/readyz    -> readiness (handler decides: engines loaded?)
//   curl :9109/tracez    -> Chrome trace JSON straight into Perfetto
//   curl :9109/events    -> per-event lifecycle state + journal (JSON)
//
// Design constraints, in priority order:
//   1. NEVER touch the hot path. The exporter owns one acceptor thread and a
//      small handler pool; handlers call read-side collectors (metric loads,
//      trace/journal snapshots) that are lock-free on the writer side. No
//      service code ever blocks on an HTTP client.
//   2. No third-party deps. HTTP/1.0, Connection: close, GET only — that is
//      the whole protocol surface a scraper or curl needs, and it fits in a
//      few hundred auditable lines of socket code.
//   3. Bounded everything: request size, header time, queued connections,
//      handler threads. A slow-loris client costs one queue slot for
//      recv_timeout_ms, then a 408; an accept burst beyond the queue bound is
//      shed with 503 instead of growing memory.
//
// Lifecycle: construct, route() every path, start() once, stop() (also run
// by the destructor) to join threads. Routes are immutable after start() —
// that is what makes dispatch lock-free.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace tsunami::obs {

/// Parsed request line, enough for an introspection GET.
struct HttpRequest {
  std::string method;  ///< "GET"
  std::string target;  ///< path without query, e.g. "/metrics"
  std::string query;   ///< raw query string after '?', may be empty
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpExporter {
 public:
  struct Options {
    std::string host = "127.0.0.1";  ///< bind address (IPv4 dotted quad)
    std::uint16_t port = 0;          ///< 0 = ephemeral, read back via port()
    std::size_t handler_threads = 2;
    std::size_t max_queued_connections = 32;  ///< beyond this: shed with 503
    std::size_t max_request_bytes = 8192;     ///< beyond this: 431
    int recv_timeout_ms = 2000;               ///< slow client: 408
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpExporter() = default;
  explicit HttpExporter(Options options) : options_(std::move(options)) {}
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Register a handler for an exact path. Must be called before start().
  void route(std::string path, Handler handler);

  /// Bind, listen, and spawn the acceptor + handler threads. Returns false
  /// (with the OS error in last_error()) if the socket could not be bound.
  [[nodiscard]] bool start();

  /// Shut the listener down and join every thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const {
    // mo: relaxed — monitoring read of an on/off flag; staleness only
    // delays the observation of a concurrent stop().
    return running_.load(std::memory_order_relaxed);
  }

  /// The bound port (resolves an ephemeral request). 0 before start().
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

  [[nodiscard]] const std::string& last_error() const { return last_error_; }

  /// Requests answered with any status (including error statuses).
  [[nodiscard]] std::uint64_t requests_served() const {
    // mo: relaxed — monitoring read of a monotone counter.
    return served_.load(std::memory_order_relaxed);
  }

  /// Connections shed before parsing (accept-queue overflow).
  [[nodiscard]] std::uint64_t requests_rejected() const {
    // mo: relaxed — same monitoring-read contract as requests_served().
    return rejected_.load(std::memory_order_relaxed);
  }

  /// Split "host:port" / ":port" / "port" into a (host, port) pair; host
  /// defaults to 127.0.0.1. Returns false on an unparsable port.
  [[nodiscard]] static bool parse_hostport(const std::string& spec,
                                           std::string& host,
                                           std::uint16_t& port);

 private:
  void accept_loop();
  void handler_loop();
  void serve_connection(int fd);
  [[nodiscard]] HttpResponse dispatch(const HttpRequest& request) const;

  Options options_;
  std::vector<std::pair<std::string, Handler>> routes_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::string last_error_;

  std::thread acceptor_;
  std::vector<std::thread> handlers_;

  // Bounded connection queue feeding the handler pool (cold path: locking
  // here is fine, no service thread ever enqueues).
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::vector<int> queue_;

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace tsunami::obs
