#pragma once

// Collectors that bridge pre-existing instrumentation — the offline
// TimerRegistry phase tables and the ThreadPool's per-worker counters — into
// a MetricsSnapshot, so `prometheus_text(snapshot)` is the single export path
// for offline phase timings, pool health, and online service telemetry
// alike. Collectors read point-in-time values; calling them twice into two
// snapshots never double-counts.

#include <string>

#include "obs/metrics.hpp"

namespace tsunami {
class ThreadPool;
class TimerRegistry;
}  // namespace tsunami

namespace tsunami::obs {

/// One sample pair per timer: `<prefix>_seconds_total{phase="..."}` and
/// `<prefix>_invocations_total{phase="..."}`. Default prefix yields
/// tsunami_phase_seconds_total — the offline Table-I analogue.
void collect_timers(const TimerRegistry& timers, MetricsSnapshot& snapshot,
                    const std::string& prefix = "tsunami_phase");

/// Pool-wide and per-worker health: tsunami_pool_workers,
/// tsunami_pool_steals_total, and per worker i the series
/// tsunami_pool_worker_{jobs_total, steals_total, busy_seconds_total,
/// queue_depth, utilization}{worker="i"}. Utilization is busy wall time over
/// pool uptime in [0, 1].
void collect_pool(const ThreadPool& pool, MetricsSnapshot& snapshot);

/// Flight-recorder health: tsunami_trace_dropped_total (spans overwritten by
/// ring wrap — nonzero means an export is a suffix, size the ring up via
/// TSUNAMI_TRACE_RING), tsunami_trace_spans_retained,
/// tsunami_trace_ring_capacity, and tsunami_trace_enabled.
void collect_trace(MetricsSnapshot& snapshot);

}  // namespace tsunami::obs
