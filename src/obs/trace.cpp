#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

namespace tsunami::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

constexpr std::size_t kMinCapacity = 64;
constexpr std::size_t kMaxCapacity = std::size_t{1} << 22;
constexpr std::size_t kDefaultCapacity = 8192;

/// dur_ns value marking an instant event (rendered "i", not "X").
constexpr std::int64_t kInstantDur = -1;

std::atomic<std::size_t> g_buffer_capacity{kDefaultCapacity};

/// One retained span. Every field is a relaxed atomic: the writer thread is
/// the only mutator, but the exporter reads concurrently from another
/// thread — per-field atomicity makes that read well-defined (at worst a
/// wrapped slot mixes two spans' fields in the diagnostic output) and keeps
/// TSan silent without a lock on the record path.
struct Slot {
  std::atomic<std::int64_t> ts_ns{0};
  std::atomic<std::int64_t> dur_ns{0};
  std::atomic<const char*> category{nullptr};
  std::atomic<const char*> name{nullptr};
};

/// Single-writer span ring of one thread. Owned jointly by the thread (its
/// thread_local handle) and the global registry, so the ring survives thread
/// exit and still appears in a later export.
struct TraceBuffer {
  explicit TraceBuffer(std::uint32_t tid_, std::size_t capacity_)
      : tid(tid_), capacity(capacity_), slots(new Slot[capacity_]) {}

  void record(const char* category, const char* name, std::int64_t t0,
              std::int64_t dur) {
    // mo: relaxed — single-writer ring (this thread is the only mutator);
    // the atomics exist so the exporter's concurrent reads are well-defined,
    // not to order publication. A garbled wrapped slot in a diagnostic dump
    // is the accepted worst case (see the Slot comment).
    const std::uint64_t p = pos.load(std::memory_order_relaxed);
    Slot& s = slots[p % capacity];
    s.ts_ns.store(t0, std::memory_order_relaxed);
    s.dur_ns.store(dur, std::memory_order_relaxed);
    s.category.store(category, std::memory_order_relaxed);
    // mo: relaxed — same single-writer-ring contract as above.
    s.name.store(name, std::memory_order_relaxed);
    pos.store(p + 1, std::memory_order_relaxed);
  }

  const std::uint32_t tid;
  const std::size_t capacity;
  const std::unique_ptr<Slot[]> slots;
  std::atomic<std::uint64_t> pos{0};  ///< spans ever recorded
  std::mutex name_mutex;
  std::string thread_name;  ///< guarded by name_mutex
};

/// Registry of every thread's ring. Leaky singleton: never destroyed, so the
/// TSUNAMI_TRACE at-exit export (and thread_local destructors of late-dying
/// threads) can never touch a dead registry.
struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

struct TlsHandle {
  std::shared_ptr<TraceBuffer> buffer;
  std::string pending_name;  ///< set_thread_name before first record
};

TlsHandle& tls_handle() {
  thread_local TlsHandle h;
  return h;
}

TraceBuffer& thread_buffer() {
  TlsHandle& h = tls_handle();
  if (!h.buffer) {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    h.buffer = std::make_shared<TraceBuffer>(
        // mo: relaxed — a plain configuration scalar; whichever capacity
        // value this thread observes is a valid ring size.
        r.next_tid++, g_buffer_capacity.load(std::memory_order_relaxed));
    if (!h.pending_name.empty()) h.buffer->thread_name = h.pending_name;
    r.buffers.push_back(h.buffer);
  }
  return *h.buffer;
}

std::int64_t epoch_ns() {
  static const std::int64_t epoch =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return epoch;
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

/// TSUNAMI_TRACE=path: enable at startup, export at exit. A namespace-scope
/// initializer so tracing is live before main() without any check on the
/// record path; the epoch is pinned here too so early spans have small
/// timestamps.
struct TraceBoot {
  TraceBoot() {
    (void)epoch_ns();
    // TSUNAMI_TRACE_RING is the documented knob; TSUNAMI_TRACE_BUFFER is the
    // legacy alias (first one set wins, RING preferred).
    for (const char* var : {"TSUNAMI_TRACE_RING", "TSUNAMI_TRACE_BUFFER"}) {
      const char* cap = std::getenv(var);
      if (cap == nullptr || *cap == '\0') continue;
      char* end = nullptr;
      const long v = std::strtol(cap, &end, 10);
      if (end != cap && v > 0) {
        set_trace_buffer_capacity(static_cast<std::size_t>(v));
        break;
      }
    }
    const char* path = std::getenv("TSUNAMI_TRACE");
    if (path != nullptr && *path != '\0') {
      exit_path() = path;
      set_trace_enabled(true);
      std::atexit([] {
        if (write_chrome_trace(exit_path())) {
          std::fprintf(stderr, "[obs] wrote trace to %s (%zu spans%s)\n",
                       exit_path().c_str(), trace_span_count(),
                       trace_dropped_count() != 0 ? ", ring wrapped" : "");
        } else {
          std::fprintf(stderr, "[obs] could not write trace to %s\n",
                       exit_path().c_str());
        }
      });
    }
  }

  static std::string& exit_path() {
    static std::string* p = new std::string;
    return *p;
  }
};

const TraceBoot g_trace_boot;

}  // namespace

namespace detail {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         epoch_ns();
}

void record_span(const char* category, const char* name, std::int64_t t0_ns,
                 std::int64_t t1_ns) {
  thread_buffer().record(category, name, t0_ns,
                         std::max<std::int64_t>(0, t1_ns - t0_ns));
}

void record_instant(const char* category, const char* name) {
  thread_buffer().record(category, name, now_ns(), kInstantDur);
}

}  // namespace detail

void set_trace_enabled(bool enabled) {
  // mo: relaxed — a flag hot paths poll; threads may see the toggle late,
  // which only shifts where a diagnostic trace starts/stops.
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void set_trace_buffer_capacity(std::size_t spans) {
  // mo: relaxed — configuration scalar read once per thread at ring
  // creation; no memory is published through it.
  g_buffer_capacity.store(std::clamp(spans, kMinCapacity, kMaxCapacity),
                          std::memory_order_relaxed);
}

std::size_t trace_buffer_capacity() {
  // mo: relaxed — same configuration-scalar contract as the setter.
  return g_buffer_capacity.load(std::memory_order_relaxed);
}

void set_thread_name(const std::string& name) {
  TlsHandle& h = tls_handle();
  if (h.buffer) {
    const std::lock_guard<std::mutex> lock(h.buffer->name_mutex);
    h.buffer->thread_name = name;
  } else {
    h.pending_name = name;
  }
}

std::size_t trace_span_count() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::size_t n = 0;
  // mo: relaxed — cross-thread diagnostic read of a single-writer counter;
  // an in-flight record() may or may not be counted, both are fine.
  for (const auto& b : r.buffers)
    n += static_cast<std::size_t>(std::min<std::uint64_t>(
        b->pos.load(std::memory_order_relaxed), b->capacity));
  return n;
}

std::size_t trace_dropped_count() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::size_t n = 0;
  for (const auto& b : r.buffers) {
    // mo: relaxed — same diagnostic-read contract as trace_span_count().
    const std::uint64_t pos = b->pos.load(std::memory_order_relaxed);
    if (pos > b->capacity) n += static_cast<std::size_t>(pos - b->capacity);
  }
  return n;
}

void clear_trace() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  // Dropping the count (not the slots) is enough: retained = min(pos, cap)
  // and the exporter only reads slots below pos.
  // mo: relaxed — racing writers may resurrect a span or two; clear_trace
  // is a test/bench convenience, not a synchronization point.
  for (const auto& b : r.buffers) b->pos.store(0, std::memory_order_relaxed);
}

std::string chrome_trace_json() {
  // Snapshot the buffer list, then walk rings without the registry lock
  // (rings are immutable in shape; writers may append concurrently, which at
  // worst garbles individual wrapped slots).
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    buffers = r.buffers;
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char num[96];
  for (const auto& b : buffers) {
    std::string tname;
    {
      const std::lock_guard<std::mutex> lock(b->name_mutex);
      tname = b->thread_name;
    }
    if (!tname.empty()) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(b->tid) +
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      append_json_escaped(out, tname.c_str());
      out += "\"}}";
    }
    // mo: relaxed — exporter side of the single-writer ring contract: reads
    // racing record() may mix two spans' fields in one wrapped slot, which
    // the format tolerates (diagnostic artifact, never UB; see Slot).
    const std::uint64_t pos = b->pos.load(std::memory_order_relaxed);
    const std::uint64_t begin = pos > b->capacity ? pos - b->capacity : 0;
    for (std::uint64_t i = begin; i < pos; ++i) {
      const Slot& s = b->slots[i % b->capacity];
      const char* cat = s.category.load(std::memory_order_relaxed);
      const char* name = s.name.load(std::memory_order_relaxed);
      if (cat == nullptr || name == nullptr) continue;  // not yet written
      // mo: relaxed — same slot-read contract as the loads above.
      const std::int64_t ts = s.ts_ns.load(std::memory_order_relaxed);
      const std::int64_t dur = s.dur_ns.load(std::memory_order_relaxed);
      out += first ? "\n" : ",\n";
      first = false;
      out += "{\"pid\":1,\"tid\":" + std::to_string(b->tid) + ",\"cat\":\"";
      append_json_escaped(out, cat);
      out += "\",\"name\":\"";
      append_json_escaped(out, name);
      // Chrome trace timestamps are microseconds; keep ns resolution via the
      // fractional part.
      if (dur == kInstantDur) {
        std::snprintf(num, sizeof(num), "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f}",
                      static_cast<double>(ts) / 1e3);
      } else {
        std::snprintf(num, sizeof(num), "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f}",
                      static_cast<double>(ts) / 1e3,
                      static_cast<double>(dur) / 1e3);
      }
      out += num;
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace tsunami::obs
