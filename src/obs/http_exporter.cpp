#include "obs/http_exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/trace.hpp"

namespace tsunami::obs {

namespace {

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

/// Write the full buffer, riding out short writes and EINTR.
bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void send_response(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     status_reason(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (send_all(fd, head.data(), head.size()))
    send_all(fd, response.body.data(), response.body.size());
}

HttpResponse error_response(int status, const std::string& detail) {
  HttpResponse response;
  response.status = status;
  response.body = std::to_string(status) + " " + status_reason(status) +
                  (detail.empty() ? "" : ": " + detail) + "\n";
  return response;
}

/// Parse "METHOD TARGET HTTP/x.y" out of the first request line. Headers are
/// read (to drain the socket) but ignored — no introspection route needs one.
bool parse_request_line(const std::string& raw, HttpRequest& request) {
  const std::size_t eol = raw.find("\r\n");
  const std::string line = raw.substr(0, eol);  // npos -> whole string
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (line.compare(sp2 + 1, 5, "HTTP/") != 0) return false;
  if (request.method.empty() || target.empty() || target[0] != '/')
    return false;
  const std::size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    request.query = target.substr(qmark + 1);
    target.resize(qmark);
  }
  request.target = std::move(target);
  return true;
}

}  // namespace

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::route(std::string path, Handler handler) {
  routes_.emplace_back(std::move(path), std::move(handler));
}

bool HttpExporter::start() {
  if (running()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    last_error_ = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    last_error_ = "bad bind address: " + options_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, SOMAXCONN) != 0) {
    last_error_ = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0)
    bound_port_ = ntohs(bound.sin_port);

  // mo: relaxed — the spawns below happen-before any thread observes the
  // flag via the std::thread constructor's synchronization.
  running_.store(true, std::memory_order_relaxed);
  acceptor_ = std::thread([this] { accept_loop(); });
  const std::size_t n_handlers = std::max<std::size_t>(1, options_.handler_threads);
  handlers_.reserve(n_handlers);
  for (std::size_t i = 0; i < n_handlers; ++i)
    handlers_.emplace_back([this, i] {
      set_thread_name("http-handler-" + std::to_string(i));
      handler_loop();
    });
  return true;
}

void HttpExporter::stop() {
  // mo: relaxed — loop-exit flag; the shutdown()/cv wakeups below force
  // every thread to re-check it promptly.
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);  // wake accept()
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& t : handlers_)
    if (t.joinable()) t.join();
  handlers_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (int fd : queue_) ::close(fd);
  queue_.clear();
}

void HttpExporter::accept_loop() {
  set_thread_name("http-acceptor");
  while (running()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running()) break;
      continue;  // transient (EMFILE, ECONNABORTED): keep serving
    }
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() >= options_.max_queued_connections) {
        shed = true;
      } else {
        queue_.push_back(fd);
      }
    }
    if (shed) {
      // mo: relaxed — statistics counter, no ordering needed.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      send_response(fd, error_response(503, "connection queue full"));
      ::close(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void HttpExporter::handler_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return !queue_.empty() || !running(); });
      if (queue_.empty()) return;  // stopping and drained
      fd = queue_.back();
      queue_.pop_back();
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpExporter::serve_connection(int fd) {
  timeval tv{};
  tv.tv_sec = options_.recv_timeout_ms / 1000;
  tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  // Read until the blank line ending the header block (we ignore bodies —
  // GET-only protocol), a timeout, or the size bound.
  std::string raw;
  char buf[1024];
  bool complete = false;
  bool timed_out = false;
  while (raw.size() < options_.max_request_bytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      timed_out = (errno == EAGAIN || errno == EWOULDBLOCK);
      break;
    }
    if (n == 0) break;  // peer closed
    raw.append(buf, static_cast<std::size_t>(n));
    if (raw.find("\r\n\r\n") != std::string::npos ||
        raw.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }

  HttpResponse response;
  HttpRequest request;
  if (!complete) {
    response = timed_out
                   ? error_response(408, "header not received in time")
                   : error_response(raw.size() >= options_.max_request_bytes
                                        ? 431
                                        : 400,
                                    "incomplete request");
  } else if (!parse_request_line(raw, request)) {
    response = error_response(400, "malformed request line");
  } else if (request.method != "GET") {
    response = error_response(405, "only GET is supported");
  } else {
    response = dispatch(request);
  }
  // mo: relaxed — statistics counter, no ordering needed.
  served_.fetch_add(1, std::memory_order_relaxed);
  send_response(fd, response);
}

HttpResponse HttpExporter::dispatch(const HttpRequest& request) const {
  for (const auto& [path, handler] : routes_) {
    if (path != request.target) continue;
    try {
      return handler(request);
    } catch (const std::exception& e) {
      return error_response(500, e.what());
    } catch (...) {
      return error_response(500, "handler threw");
    }
  }
  return error_response(404, request.target);
}

bool HttpExporter::parse_hostport(const std::string& spec, std::string& host,
                                  std::uint16_t& port) {
  std::string port_str = spec;
  host = "127.0.0.1";
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) host = spec.substr(0, colon);
    port_str = spec.substr(colon + 1);
  }
  if (port_str.empty() ||
      port_str.find_first_not_of("0123456789") != std::string::npos)
    return false;
  const unsigned long value = std::stoul(port_str);
  if (value > 65535) return false;
  port = static_cast<std::uint16_t>(value);
  return true;
}

}  // namespace tsunami::obs
