#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>

namespace tsunami::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram()
    : buckets_(new std::atomic<std::uint64_t>[kNumBuckets]),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  // mo: relaxed — single-threaded construction; publication of the object
  // itself is the caller's synchronization problem.
  for (std::size_t i = 0; i < kNumBuckets; ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

std::size_t Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // zero, negative, NaN -> underflow bucket
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  if (exp < kMinExp) return 0;
  if (exp >= kMaxExp) return kNumBuckets - 1;
  // Sub-buckets are linear in the significand: sub = floor((m - 0.5) * 2B).
  auto sub = static_cast<std::size_t>((m - 0.5) *
                                      static_cast<double>(2 * kSubBuckets));
  sub = std::min<std::size_t>(sub, kSubBuckets - 1);
  return static_cast<std::size_t>(exp - kMinExp) * kSubBuckets + sub;
}

double Histogram::bucket_lower_bound(std::size_t i) {
  if (i == 0) return 0.0;  // underflow bucket reaches down to zero
  if (i >= kNumBuckets) return std::numeric_limits<double>::infinity();
  const int exp = kMinExp + static_cast<int>(i / kSubBuckets);
  const auto sub = static_cast<double>(i % kSubBuckets);
  return std::ldexp(0.5 + sub / static_cast<double>(2 * kSubBuckets), exp);
}

double Histogram::bucket_upper_bound(std::size_t i) {
  return bucket_lower_bound(i + 1);
}

TSUNAMI_HOT_PATH void Histogram::record(double v) {
  // mo: relaxed throughout — each field is an independent statistic; no
  // reader infers anything about OTHER memory from them, and snapshot()
  // reconciles cross-field skew (count vs buckets) after the fact. Stronger
  // orders would serialize every worker's push-latency recording for no
  // observable benefit.
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);  // CAS loop under the hood
  double cur = min_.load(std::memory_order_relaxed);
  // mo: relaxed — the CAS only has to be atomic on min_/max_ itself; the
  // retry loop re-reads the latest value on failure either way.
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.counts.resize(kNumBuckets);
  // mo: relaxed — a monitoring snapshot racing writers is allowed to be
  // slightly torn; the count/bucket reconciliation below restores the
  // invariant percentile() needs.
  for (std::size_t i = 0; i < kNumBuckets; ++i)
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  // A snapshot racing writers can see count ahead of the buckets (relaxed
  // ordering); percentile() walks the bucket counts, so reconcile count to
  // what the buckets actually hold.
  std::uint64_t in_buckets = 0;
  for (const std::uint64_t c : s.counts) in_buckets += c;
  s.count = std::min(s.count, in_buckets);
  if (s.count == 0) {
    s.min = s.max = 0.0;
  } else {
    // mo: relaxed — min/max are monotone under concurrent record(); any
    // value read is one some record() actually wrote.
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  return s;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (counts.size() < other.counts.size()) counts.resize(other.counts.size());
  for (std::size_t i = 0; i < other.counts.size(); ++i)
    counts[i] += other.counts[i];
  if (other.count != 0) {
    min = count == 0 ? other.min : std::min(min, other.min);
    max = count == 0 ? other.max : std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::percentile(double q) const {
  if (q < 0.0 || q > 100.0)
    throw std::invalid_argument("HistogramSnapshot::percentile: q outside [0, 100]");
  if (count == 0) return 0.0;
  // Exact rank (nearest-rank with the same floor convention as util/stats):
  // the k-th smallest sample, k = floor(q/100 * (count - 1)), zero-based.
  const auto k = static_cast<std::uint64_t>(
      q / 100.0 * static_cast<double>(count - 1));
  // The extreme ranks are tracked exactly (min_/max_ CAS in record()), so
  // p0 and p100 need no bucket estimate at all.
  if (k == 0) return min;
  if (k == count - 1) return max;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (cum > k) {
      const double lo = Histogram::bucket_lower_bound(i);
      const double hi = Histogram::bucket_upper_bound(i);
      const double mid = std::isinf(hi) ? lo : 0.5 * (lo + hi);
      // The exact order statistic lies inside this bucket AND inside
      // [min, max]; clamping costs nothing and makes p0/p100 exact.
      return std::clamp(mid, min, max);
    }
  }
  return max;  // unreachable when counts is consistent with count
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

void MetricsSnapshot::counter(std::string name, double value, Labels labels,
                              std::string help) {
  samples.push_back(MetricSample{std::move(name), std::move(labels),
                                 std::move(help), MetricSample::Kind::kCounter,
                                 value, {}});
}

void MetricsSnapshot::gauge(std::string name, double value, Labels labels,
                            std::string help) {
  samples.push_back(MetricSample{std::move(name), std::move(labels),
                                 std::move(help), MetricSample::Kind::kGauge,
                                 value, {}});
}

void MetricsSnapshot::histogram(std::string name, HistogramSnapshot hist,
                                Labels labels, std::string help) {
  MetricSample s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  s.help = std::move(help);
  s.kind = MetricSample::Kind::kHistogram;
  s.hist = std::move(hist);
  samples.push_back(std::move(s));
}

// ---------------------------------------------------------------------------
// Exposition
// ---------------------------------------------------------------------------

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (const char c : name)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

void append_label_value_escaped(std::string& out, const std::string& v) {
  for (const char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

/// `{a="x",b="y"}` (empty string for no labels), with an optional extra
/// label appended (the histogram `le`).
std::string render_labels(const Labels& labels, const char* extra_name,
                          const std::string& extra_value) {
  if (labels.empty() && extra_name == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"";
    append_label_value_escaped(out, v);
    out += "\"";
  }
  if (extra_name != nullptr) {
    if (!first) out += ",";
    out += std::string(extra_name) + "=\"";
    append_label_value_escaped(out, extra_value);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* kind_str(MetricSample::Kind k) {
  switch (k) {
    case MetricSample::Kind::kCounter: return "counter";
    case MetricSample::Kind::kGauge: return "gauge";
    case MetricSample::Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

void check_sample(const MetricSample& s) {
  if (!valid_metric_name(s.name))
    throw std::invalid_argument("prometheus_text: invalid metric name '" +
                                s.name + "'");
  for (const auto& [k, v] : s.labels) {
    (void)v;
    if (!valid_label_name(k) || k == "le")
      throw std::invalid_argument("prometheus_text: invalid label name '" + k +
                                  "' on metric '" + s.name + "'");
  }
}

}  // namespace

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  std::set<std::string> seen_series;
  std::map<std::string, MetricSample::Kind> family_kind;
  auto emit_series = [&](const std::string& line_key) {
    if (!seen_series.insert(line_key).second)
      throw std::invalid_argument("prometheus_text: duplicate series " +
                                  line_key);
  };

  for (const MetricSample& s : snapshot.samples) {
    check_sample(s);
    const auto [it, fresh] = family_kind.emplace(s.name, s.kind);
    if (!fresh && it->second != s.kind)
      throw std::invalid_argument(
          "prometheus_text: metric '" + s.name +
          "' registered with conflicting kinds");
    if (fresh) {
      if (!s.help.empty()) {
        out += "# HELP " + s.name + " ";
        for (const char c : s.help) out += c == '\n' ? ' ' : c;
        out += "\n";
      }
      out += "# TYPE " + s.name + " " + kind_str(s.kind) + "\n";
    }

    if (s.kind != MetricSample::Kind::kHistogram) {
      const std::string labels = render_labels(s.labels, nullptr, {});
      emit_series(s.name + labels);
      out += s.name + labels + " " + format_value(s.value) + "\n";
      continue;
    }

    // Histogram: cumulative buckets over the non-empty boundaries (counts
    // between emitted `le` values are zero, so cumulativity is preserved),
    // then the mandatory +Inf, _sum, and _count series.
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < s.hist.counts.size(); ++i) {
      if (s.hist.counts[i] == 0) continue;
      cum += s.hist.counts[i];
      const std::string upper = format_value(Histogram::bucket_upper_bound(i));
      const std::string labels = render_labels(s.labels, "le", upper);
      emit_series(s.name + "_bucket" + labels);
      out += s.name + "_bucket" + labels + " " + std::to_string(cum) + "\n";
    }
    const std::string inf_labels = render_labels(s.labels, "le", "+Inf");
    emit_series(s.name + "_bucket" + inf_labels);
    out += s.name + "_bucket" + inf_labels + " " +
           std::to_string(s.hist.count) + "\n";
    const std::string labels = render_labels(s.labels, nullptr, {});
    emit_series(s.name + "_sum" + labels);
    out += s.name + "_sum" + labels + " " + format_value(s.hist.sum) + "\n";
    emit_series(s.name + "_count" + labels);
    out += s.name + "_count" + labels + " " + std::to_string(s.hist.count) +
           "\n";
  }
  return out;
}

std::string json_text(const MetricsSnapshot& snapshot) {
  std::string out = "[";
  for (std::size_t i = 0; i < snapshot.samples.size(); ++i) {
    const MetricSample& s = snapshot.samples[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": \"" + s.name + "\", \"kind\": \"" +
           kind_str(s.kind) + "\", \"labels\": {";
    for (std::size_t j = 0; j < s.labels.size(); ++j) {
      if (j != 0) out += ", ";
      out += "\"" + s.labels[j].first + "\": \"";
      append_label_value_escaped(out, s.labels[j].second);
      out += "\"";
    }
    out += "}";
    if (s.kind == MetricSample::Kind::kHistogram) {
      out += ", \"count\": " + std::to_string(s.hist.count);
      out += ", \"sum\": " + format_value(s.hist.sum);
      out += ", \"min\": " + format_value(s.hist.min);
      out += ", \"max\": " + format_value(s.hist.max);
      out += ", \"p50\": " + format_value(s.hist.percentile(50.0));
      out += ", \"p95\": " + format_value(s.hist.percentile(95.0));
      out += ", \"p99\": " + format_value(s.hist.percentile(99.0));
    } else {
      out += ", \"value\": " + format_value(s.value);
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

// ---------------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------------

namespace {

/// Parse `name{labels} value` into its rendered series key; returns false
/// (with `error` set) on grammar violations.
bool parse_sample_line(const std::string& line, std::string& series_key,
                       std::string& metric_name, std::string& error) {
  std::size_t i = 0;
  const std::size_t n = line.size();
  std::size_t name_end = i;
  while (name_end < n && line[name_end] != '{' && line[name_end] != ' ' &&
         line[name_end] != '\t')
    ++name_end;
  metric_name = line.substr(0, name_end);
  if (!valid_metric_name(metric_name)) {
    error = "invalid metric name in line: " + line;
    return false;
  }
  i = name_end;
  series_key = metric_name;
  if (i < n && line[i] == '{') {
    const std::size_t close = line.find('}', i);
    if (close == std::string::npos) {
      error = "unterminated label set: " + line;
      return false;
    }
    // Validate label pairs: name="value" separated by commas; values may
    // contain escaped quotes.
    std::size_t p = i + 1;
    while (p < close) {
      std::size_t eq = line.find('=', p);
      if (eq == std::string::npos || eq > close) {
        error = "malformed label pair: " + line;
        return false;
      }
      if (!valid_label_name(line.substr(p, eq - p))) {
        error = "invalid label name in line: " + line;
        return false;
      }
      if (eq + 1 >= close || line[eq + 1] != '"') {
        error = "label value not quoted: " + line;
        return false;
      }
      std::size_t q = eq + 2;
      while (q < close && line[q] != '"') q += line[q] == '\\' ? 2 : 1;
      if (q >= close) {
        error = "unterminated label value: " + line;
        return false;
      }
      p = q + 1;
      if (p < close) {
        if (line[p] != ',') {
          error = "missing comma between labels: " + line;
          return false;
        }
        ++p;
      }
    }
    series_key = line.substr(0, close + 1);
    i = close + 1;
  }
  while (i < n && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= n) {
    error = "missing value: " + line;
    return false;
  }
  const std::string value = line.substr(i, line.find_first_of(" \t", i) - i);
  if (value != "+Inf" && value != "-Inf" && value != "NaN") {
    char* end = nullptr;
    const std::string v = value;
    std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0') {
      error = "unparseable value '" + value + "' in line: " + line;
      return false;
    }
  }
  return true;
}

}  // namespace

std::string validate_prometheus(const std::string& text) {
  std::set<std::string> series;
  std::set<std::string> typed_families;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <kind>" and "# HELP <name> <text>"; other comments
      // pass through.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::size_t name_start = 7;
        const std::size_t name_end = line.find(' ', name_start);
        if (name_end == std::string::npos)
          return "TYPE line missing kind: " + line;
        const std::string name = line.substr(name_start, name_end - name_start);
        if (!valid_metric_name(name))
          return "TYPE line with invalid metric name: " + line;
        const std::string kind = line.substr(name_end + 1);
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped")
          return "TYPE line with unknown kind: " + line;
        if (!typed_families.insert(name).second)
          return "duplicate TYPE declaration for family " + name;
      }
      continue;
    }
    std::string key, name, error;
    if (!parse_sample_line(line, key, name, error)) return error;
    if (!series.insert(key).second) return "duplicate series " + key;
  }
  return {};
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

struct MetricsRegistry::Entry {
  std::string name;
  Labels labels;
  std::string help;
  MetricSample::Kind kind;
  std::string key;  ///< rendered name + sorted labels (uniqueness)
  Counter counter;
  Gauge gauge;
  std::unique_ptr<Histogram> hist;  ///< only for kHistogram (20 KB each)
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, const Labels& labels, const std::string& help,
    MetricSample::Kind kind) {
  if (!valid_metric_name(name))
    throw std::invalid_argument("MetricsRegistry: invalid metric name '" +
                                name + "'");
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  for (const auto& [k, v] : sorted) key += "\x1f" + k + "\x1f" + v;

  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e->key != key) continue;
    if (e->kind != kind)
      throw std::invalid_argument("MetricsRegistry: metric '" + name +
                                  "' already registered with another kind");
    return *e;
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = labels;
  e->help = help;
  e->kind = kind;
  e->key = std::move(key);
  if (kind == MetricSample::Kind::kHistogram)
    e->hist = std::make_unique<Histogram>();
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels,
                                  const std::string& help) {
  return find_or_create(name, labels, help, MetricSample::Kind::kCounter)
      .counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  return find_or_create(name, labels, help, MetricSample::Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      const std::string& help) {
  return *find_or_create(name, labels, help, MetricSample::Kind::kHistogram)
              .hist;
}

void MetricsRegistry::collect_into(MetricsSnapshot& snapshot) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    switch (e->kind) {
      case MetricSample::Kind::kCounter:
        snapshot.counter(e->name, static_cast<double>(e->counter.value()),
                         e->labels, e->help);
        break;
      case MetricSample::Kind::kGauge:
        snapshot.gauge(e->name, e->gauge.value(), e->labels, e->help);
        break;
      case MetricSample::Kind::kHistogram:
        snapshot.histogram(e->name, e->hist->snapshot(), e->labels, e->help);
        break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* r = new MetricsRegistry;
  return *r;
}

}  // namespace tsunami::obs
