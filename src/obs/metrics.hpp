#pragma once

// Unified metrics: counters, gauges, log-bucketed mergeable histograms, and
// one export path (Prometheus text exposition + JSON) shared by the offline
// phase tables, the thread pool, and the online warning service.
//
// Why a histogram and not a sample ring: the serving layer used to keep the
// most recent 64k push latencies and sort them per snapshot — percentiles
// over a *window*, O(n log n) per read, and two services' windows cannot be
// combined. The Histogram here is HDR-style: values land in log-bucketed
// counters (each power of two split into kSubBuckets linear sub-buckets), so
//   * recording is a relaxed fetch_add — multi-writer safe, wait-free;
//   * percentiles are exact-rank over the FULL LIFETIME of the series, not a
//     sample window, with relative quantization error bounded by the bucket
//     width: |estimate - exact| / exact <= 1 / kSubBuckets (the estimate is
//     a bucket midpoint; see bucket_lower_bound). Tested against exact
//     percentiles on known distributions in tests/test_obs.cpp.
//   * snapshots MERGE by adding bucket counts — shards, workers, or repeated
//     runs combine losslessly (merge is associative and commutative on the
//     counts; asserted in tests).
//
// Export model: components keep their own live instruments (ServiceTelemetry
// its histogram, ThreadPool its per-worker counters, TimerRegistry its phase
// accumulators) and contribute point-in-time samples into a MetricsSnapshot;
// prometheus_text()/json_text() render a snapshot. One snapshot, one scrape,
// whatever the source — that is the "one export path" the offline tables and
// the online service now share (see obs/bridge.hpp for the collectors).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/hot_path.hpp"

namespace tsunami::obs {

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// Monotonically increasing count. Wait-free, multi-writer.
class Counter {
 public:
  // mo: relaxed — an independent statistic; no other memory is published
  // through it, and scrapes tolerate slightly-stale values.
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar.
class Gauge {
 public:
  // mo: relaxed — last-write-wins sample point, carries no ordering duty.
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time copy of a Histogram; plain data, mergeable, and the thing
/// percentiles are computed from.
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  ///< per-bucket; empty == all-zero
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< exact (not bucket-quantized); 0 when count == 0
  double max = 0.0;  ///< exact; 0 when count == 0

  /// Add another snapshot's series into this one. Bucket counts add
  /// exactly (integers), so merging is associative and commutative.
  void merge(const HistogramSnapshot& other);

  /// Exact-rank percentile (q in [0, 100]) over the lifetime series: the
  /// bucket midpoint of the bucket holding the floor(q/100 * (count-1))-th
  /// smallest sample, clamped into [min, max]. Relative error vs the exact
  /// order statistic is bounded by 1 / Histogram::kSubBuckets. Returns 0 on
  /// an empty series; throws std::invalid_argument for q outside [0, 100].
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Lock-free log-bucketed histogram of positive doubles (latencies in
/// seconds, sizes, ...). See the header comment for the design rationale.
class Histogram {
 public:
  /// Linear sub-buckets per power of two. 32 bounds the relative
  /// quantization error of a percentile at 1/32 ~= 3.1% (midpoint estimate:
  /// typically half that).
  static constexpr int kSubBuckets = 32;
  /// frexp exponent range covered exactly: [2^-40, 2^40) ~= [9.1e-13,
  /// 1.1e12). Values below (including zero/negative/NaN) land in the first
  /// bucket, above in the last — counted, never lost.
  static constexpr int kMinExp = -40;
  static constexpr int kMaxExp = 40;
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets;

  Histogram();

  /// Record one value. Wait-free: one bucket fetch_add + count/sum/min/max
  /// relaxed atomics. Any thread.
  TSUNAMI_HOT_PATH void record(double v);

  [[nodiscard]] HistogramSnapshot snapshot() const;

  // mo: relaxed — monitoring read; snapshot() reconciles any cross-field
  // skew, a lone count needs no ordering.
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Bucket index for a value (public for the tests' error-bound math).
  [[nodiscard]] static std::size_t bucket_index(double v);
  /// Inclusive lower edge of bucket i.
  [[nodiscard]] static double bucket_lower_bound(std::size_t i);
  /// Exclusive upper edge of bucket i (== lower bound of i + 1).
  [[nodiscard]] static double bucket_upper_bound(std::size_t i);

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// ---------------------------------------------------------------------------
// Snapshot + exposition
// ---------------------------------------------------------------------------

using Labels = std::vector<std::pair<std::string, std::string>>;

/// One exported time series at one point in time.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;  ///< Prometheus metric name ([a-zA-Z_:][a-zA-Z0-9_:]*)
  Labels labels;
  std::string help;  ///< optional # HELP text
  Kind kind = Kind::kGauge;
  double value = 0.0;       ///< counter/gauge
  HistogramSnapshot hist;   ///< histogram
};

/// The unit of export: an ordered bag of samples contributed by any number
/// of components (registry instruments, pool stats, timer tables, service
/// telemetry), rendered once.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  void counter(std::string name, double value, Labels labels = {},
               std::string help = {});
  void gauge(std::string name, double value, Labels labels = {},
             std::string help = {});
  void histogram(std::string name, HistogramSnapshot hist, Labels labels = {},
                 std::string help = {});
};

/// Prometheus text exposition (version 0.0.4): # HELP / # TYPE headers per
/// family, `name{labels} value` samples, histograms as cumulative
/// `_bucket{le=...}` series (non-empty buckets only) + `_sum` + `_count`.
/// Throws std::invalid_argument on an invalid metric name or a duplicate
/// (name, labels) series — the bugs a scrape endpoint must not ship.
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snapshot);

/// The same snapshot as a JSON array (histograms summarized as count/sum/
/// min/max/p50/p95/p99).
[[nodiscard]] std::string json_text(const MetricsSnapshot& snapshot);

/// Validate a Prometheus text exposition: line grammar, metric-name and
/// label syntax, numeric values, no duplicate (name, labels) series, TYPE
/// declared at most once per family. Returns an empty string when valid,
/// else a description of the first problem (used by the CI smoke test).
[[nodiscard]] std::string validate_prometheus(const std::string& text);

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Named live instruments with stable addresses: counter("x") returns the
/// same Counter& every time, creating it on first use. Thread-safe; lookup
/// takes one mutex (hot paths hold the returned reference, they do not
/// re-look-up per event). Kind conflicts on a (name, labels) key throw.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();  // out-of-line: Entry is incomplete here
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       const std::string& help = {});

  /// Append one sample per registered instrument.
  void collect_into(MetricsSnapshot& snapshot) const;

  [[nodiscard]] std::size_t size() const;

  /// Process-wide registry for call sites without a natural owner.
  static MetricsRegistry& global();

 private:
  struct Entry;
  Entry& find_or_create(const std::string& name, const Labels& labels,
                        const std::string& help, MetricSample::Kind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< registration order
};

}  // namespace tsunami::obs
