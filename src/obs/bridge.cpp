#include "obs/bridge.hpp"

#include <algorithm>
#include <string>

#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "util/timer.hpp"

namespace tsunami::obs {

void collect_timers(const TimerRegistry& timers, MetricsSnapshot& snapshot,
                    const std::string& prefix) {
  for (const std::string& name : timers.names()) {
    snapshot.counter(prefix + "_seconds_total", timers.total(name),
                     {{"phase", name}},
                     "Accumulated wall-clock seconds per named phase");
    snapshot.counter(prefix + "_invocations_total",
                     static_cast<double>(timers.count(name)),
                     {{"phase", name}}, "Phase invocation count");
  }
}

void collect_pool(const ThreadPool& pool, MetricsSnapshot& snapshot) {
  snapshot.gauge("tsunami_pool_workers",
                 static_cast<double>(pool.num_threads()), {},
                 "Worker threads in the process-wide pool");
  snapshot.counter("tsunami_pool_steals_total",
                   static_cast<double>(pool.steal_count()), {},
                   "Cross-worker deque steals since pool spawn");
  const double uptime = pool.uptime_seconds();
  snapshot.gauge("tsunami_pool_uptime_seconds", uptime, {},
                 "Seconds since the current worker set was spawned");
  const auto stats = pool.worker_stats();
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const Labels labels = {{"worker", std::to_string(i)}};
    snapshot.counter("tsunami_pool_worker_jobs_total",
                     static_cast<double>(stats[i].jobs), labels,
                     "Jobs and loop items executed by this worker");
    snapshot.counter("tsunami_pool_worker_steals_total",
                     static_cast<double>(stats[i].steals), labels,
                     "Successful steals performed by this worker");
    snapshot.counter("tsunami_pool_worker_busy_seconds_total",
                     stats[i].busy_seconds, labels,
                     "Wall-clock seconds spent executing work");
    snapshot.gauge("tsunami_pool_worker_queue_depth",
                   static_cast<double>(stats[i].queue_depth), labels,
                   "Entries currently in this worker's deque");
    snapshot.gauge(
        "tsunami_pool_worker_utilization",
        uptime > 0.0 ? std::min(1.0, stats[i].busy_seconds / uptime) : 0.0,
        labels, "Busy fraction of wall time since spawn, in [0, 1]");
  }
}

void collect_trace(MetricsSnapshot& snapshot) {
  snapshot.counter("tsunami_trace_dropped_total",
                   static_cast<double>(trace_dropped_count()), {},
                   "Spans overwritten by trace-ring wrap (size the ring via "
                   "TSUNAMI_TRACE_RING)");
  snapshot.gauge("tsunami_trace_spans_retained",
                 static_cast<double>(trace_span_count()), {},
                 "Spans currently retained across all thread rings");
  snapshot.gauge("tsunami_trace_ring_capacity",
                 static_cast<double>(trace_buffer_capacity()), {},
                 "Per-thread span-ring capacity for new threads");
  snapshot.gauge("tsunami_trace_enabled", trace_enabled() ? 1.0 : 0.0, {},
                 "1 while the flight recorder is recording spans");
}

}  // namespace tsunami::obs
