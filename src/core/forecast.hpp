#pragma once

// Phase 3 + the QoI half of Phase 4: goal-oriented posterior prediction.
//
// Precomputes (Table III rows):
//   V  = F Gq*  = F Gamma_prior Fq^T          (data_dim x qoi_dim),
//   W  = Fq Gq* = Fq Gamma_prior Fq^T         (qoi_dim  x qoi_dim),
//   Gamma_post(q) = W - V^T K^{-1} V          ("compute Gamma_post(q)"),
//   Q  = V^T K^{-1}                           ("compute Q: d -> q"),
// so that online prediction is a single dense matvec q_map = Q d_obs with
// 95% credible intervals from diag(Gamma_post(q)) — deployable "entirely
// without any HPC infrastructure" (SecVIII; examples/realtime_monitor.cpp).

#include <cstddef>
#include <span>
#include <vector>

#include "core/data_space_hessian.hpp"
#include "linalg/dense.hpp"
#include "prior/matern_prior.hpp"
#include "toeplitz/block_toeplitz.hpp"
#include "util/timer.hpp"

namespace tsunami {

/// A wave-height forecast with uncertainty, time-major over (Nt x Nq).
struct Forecast {
  std::size_t num_gauges = 0;
  std::size_t num_times = 0;
  std::vector<double> mean;     ///< q_map
  std::vector<double> stddev;   ///< sqrt(diag Gamma_post(q))
  std::vector<double> lower95;  ///< mean - 1.96 std
  std::vector<double> upper95;  ///< mean + 1.96 std
  /// Degraded-mode provenance (ISSUE 10): true when the producing
  /// assimilator has dropped sensors or projected-out invalid ticks — the
  /// forecast is still an *exact* posterior, but over the surviving network.
  bool degraded = false;
  std::size_t dropped_channels = 0;  ///< currently masked channels

  [[nodiscard]] double at(const std::vector<double>& field, std::size_t t,
                          std::size_t g) const {
    return field[t * num_gauges + g];
  }
};

class QoiPredictor {
 public:
  /// Phase 3 precomputation. Records "compute Gamma_post(q)" / "compute Q"
  /// timer samples.
  QoiPredictor(const BlockToeplitz& f, const BlockToeplitz& fq,
               const MaternPrior& prior, const DataSpaceHessian& hessian,
               TimerRegistry* timers = nullptr);

  /// Warm start from the shipped Phase 3 products: the dense data-to-QoI
  /// map Q and Gamma_post(q), loaded from an artifact bundle instead of
  /// recomputed. predict() on the result is bit-identical to the cold-built
  /// predictor's. `fq` is still needed for apply_fq_mean (and its block
  /// shape defines the gauge/time split); its blocks ship in the bundle.
  QoiPredictor(const BlockToeplitz& fq, Matrix data_to_qoi, Matrix qoi_cov);

  [[nodiscard]] std::size_t qoi_dim() const { return q_map_op_.rows(); }
  [[nodiscard]] std::size_t data_dim() const { return q_map_op_.cols(); }
  [[nodiscard]] std::size_t num_gauges() const { return nq_; }
  [[nodiscard]] std::size_t num_times() const { return nt_; }

  /// Online: q with CIs directly from data (bypasses the parameter space).
  [[nodiscard]] Forecast predict(std::span<const double> d_obs) const;

  /// Naive partial-data forecast: the leading `ticks` observation intervals
  /// of `d_prefix` pushed through the full-window operator Q with the unseen
  /// intervals zero-padded. This is what a deployment that only shipped Q
  /// can do mid-event; it is *not* the Bayesian posterior given the prefix
  /// (that is StreamingAssimilator's job) — its mean is biased toward zero
  /// and its intervals stay at the full-data width. Kept as the baseline the
  /// streaming engine is compared against (bench_streaming).
  [[nodiscard]] Forecast predict_prefix(std::span<const double> d_prefix,
                                        std::size_t ticks) const;

  /// The dense data-to-QoI operator Q (for export / deployment).
  [[nodiscard]] const Matrix& data_to_qoi() const { return q_map_op_; }

  /// Posterior QoI covariance. Note for streaming: everything the streaming
  /// engine needs is recoverable from Q and this matrix (R = L^{-1} V equals
  /// L^T Q^T, and the prior QoI variances are diag Gamma_post(q) + sum_j
  /// R_ji^2), so the constructor temporaries V and W are NOT retained.
  [[nodiscard]] const Matrix& qoi_covariance() const { return cov_q_; }

  /// Consistency check value: q from Fq m (used by tests to confirm
  /// Q d == Fq m_map).
  void apply_fq_mean(std::span<const double> m, std::span<double> q) const;

 private:
  const BlockToeplitz& fq_;
  std::size_t nq_, nt_;
  Matrix q_map_op_;  ///< Q = V^T K^{-1}
  Matrix cov_q_;     ///< Gamma_post(q)
  std::vector<double> std_q_;
};

}  // namespace tsunami
