#pragma once

// Streaming assimilation engine: incremental per-tick inference and rolling
// forecasts as observations arrive — the real-time front door of Phase 4.
//
// The batch online phase (DigitalTwin::infer) consumes the complete
// Nt-interval data vector after the event is over. A warning center does not
// have that luxury: sensor packets arrive one observation interval at a
// time, and the forecast must sharpen with each arrival (Henneking, Venkat &
// Ghattas, arXiv:2501.14911; Nomura et al., arXiv:2407.03631). This module
// turns the already-factorized offline operators into an engine that ingests
// one interval per push() and maintains the *exact* truncated posterior —
// not an approximation — at a per-tick cost far below a full re-solve.
//
// The structural facts that make this work (data stored time-major):
//
//  1. The observations available at tick t form a prefix d_t of d_obs, and
//     the truncated Hessian K_t = Gamma_noise + F_t Gamma_prior F_t^T is the
//     leading (t Nd) x (t Nd) principal submatrix of the full K.
//  2. Cholesky commutes with taking leading principal submatrices: the
//     factor of K_t is the leading block L_t of the offline factor L. No
//     refactorization, ever.
//  3. Forward substitution is causal: z = L^{-1} d satisfies z[0:p] =
//     L_p^{-1} d[0:p]. Each tick only *extends* the cached z by one block
//     row (DenseCholesky::forward_solve_range) — O(Nd^2 t) work.
//  4. The non-causal backward substitution is eliminated by baking L^{-T}
//     into the offline operators: with
//         R  = L^{-1} V            (V = F Gamma_prior Fq^T),
//         W* = L^{-1} F Gamma_prior,
//     the truncated posterior at tick t is a running sum over block rows,
//         q_map(t)   = R[0:p,:]^T  z[0:p]      (p = t Nd),
//         m_map(t)   = W*[0:p,:]^T z[0:p],
//         Gamma_post(q, t) = W - R[0:p,:]^T R[0:p,:],
//     because the leading block of the inverse of a triangular matrix is
//     the inverse of its leading block. Each push adds one block row:
//     O(Nd (Nq Nt + Nm Nt)) flops, *constant* in the tick index.
//
// The credible-interval schedule Gamma_post(q, t) is data-independent, so
// the engine precomputes the whole stddev-vs-tick table once; streaming an
// event costs only the forward-substitution extension plus two slab
// matvecs per tick.
//
// Split of responsibilities:
//   StreamingEngine      — immutable per-network precompute (R, W*, the CI
//                          schedule); shared by any number of concurrent
//                          event streams (ScenarioBank::run_streaming).
//   StreamingAssimilator — per-event mutable state (z, rolling m_map and
//                          q_map); cheap to create, reset, and replay.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/forecast.hpp"
#include "core/posterior.hpp"
#include "core/sensor_mask.hpp"
#include "linalg/dense.hpp"
#include "util/hot_path.hpp"
#include "util/timer.hpp"

namespace tsunami {

struct StreamingOptions {
  /// Maintain the rolling MAP estimate m_map(t) incrementally. Costs an
  /// extra (Nd Nt) x (Nm Nt) dense operator offline (the baked
  /// Gamma_prior F^T L^{-T}) and one slab matvec per tick. With tracking
  /// off, map_snapshot() still recovers m_map(t) on demand in O(p^2).
  bool track_map = true;
};

class StreamingAssimilator;

/// Immutable streaming precompute over one twin's offline operators. The
/// posterior/predictor (and the twin owning them) must outlive the engine —
/// and unlike the pre-guard design, violating that is now a clean throw,
/// not undefined behavior: engines built through DigitalTwin::make_streaming
/// carry a lifetime token tied to the twin's offline state, and every entry
/// point that would slice dangling posterior state checks it first. A twin
/// that is destroyed OR whose offline phases are re-run (replacing the
/// operators the slabs were baked from) expires the token.
class StreamingEngine {
 public:
  /// Requires completed offline phases (the factorized Hessian lives in the
  /// posterior). Records a "streaming: precompute" timer sample. `lifetime`
  /// is the owner's validity token (DigitalTwin passes its offline-state
  /// epoch): when the token expires, start()/push()/forecast()/map_snapshot()
  /// throw std::logic_error instead of dereferencing freed operators.
  /// Engines built without a token (direct construction in tests) keep the
  /// legacy unguarded contract.
  StreamingEngine(const Posterior& posterior, const QoiPredictor& predictor,
                  const StreamingOptions& options = {},
                  TimerRegistry* timers = nullptr,
                  std::shared_ptr<const void> lifetime = {});

  /// Begin assimilating a new event.
  [[nodiscard]] StreamingAssimilator start() const;

  /// From-scratch reduced-network engine: the streaming precompute rebuilt
  /// as if the masked channels never existed. The dropped rows of the
  /// data-space Hessian are decoupled to pure noise via the O(r n^2)
  /// rank-2 factor edits (DataSpaceHessian::decouple_channels), the slabs
  /// re-solved against the decoupled factor, and the credible-interval
  /// schedule rebuilt — so assimilators started from the result compute the
  /// exact posterior of the surviving network. This is the oracle that
  /// StreamingAssimilator::drop_sensor's mid-stream projection is tested
  /// against, and the refactorize-from-scratch baseline bench_degraded
  /// times. Works on warm (factor-only) hessians: only the factor is read.
  [[nodiscard]] StreamingEngine reduced(const SensorMask& mask) const;

  /// The channel mask this engine was reduced with (empty/all-live for a
  /// full-network engine).
  [[nodiscard]] const SensorMask& mask() const { return mask_; }
  [[nodiscard]] bool is_reduced() const { return reduced_hess_ != nullptr; }

  // ---- dimensions ----------------------------------------------------------
  [[nodiscard]] std::size_t num_ticks() const { return nt_; }        ///< Nt
  [[nodiscard]] std::size_t block_size() const { return nd_; }       ///< Nd
  [[nodiscard]] std::size_t data_dim() const { return n_; }
  [[nodiscard]] std::size_t parameter_dim() const { return np_; }
  [[nodiscard]] std::size_t qoi_dim() const { return nqoi_; }

  [[nodiscard]] bool tracks_map() const { return opts_.track_map; }
  [[nodiscard]] const StreamingOptions& options() const { return opts_; }
  [[nodiscard]] double precompute_seconds() const { return precompute_seconds_; }

  /// Posterior QoI stddev after `ticks` observation intervals (0 = prior).
  /// Data-independent, hence precomputed for every tick: this is the
  /// credible-interval shrink schedule of the sensor network itself.
  [[nodiscard]] std::span<const double> stddev_after(std::size_t ticks) const;

  [[nodiscard]] const Posterior& posterior() const { return post_; }
  [[nodiscard]] const QoiPredictor& predictor() const { return pred_; }

  /// True while the operators this engine slices are guaranteed alive
  /// (always true for unguarded engines).
  [[nodiscard]] bool operators_alive() const {
    return !guarded_ || !lifetime_.expired();
  }

 private:
  friend class StreamingAssimilator;

  /// Throws std::logic_error if the owning twin's offline state is gone.
  void check_alive(const char* what) const;

  /// The factor every streaming solve runs against: the posterior's on a
  /// full-network engine, the decoupled copy on a reduced() one.
  [[nodiscard]] const DenseCholesky& chol() const {
    return reduced_hess_ ? reduced_hess_->cholesky()
                         : post_.hessian().cholesky();
  }

  /// reduced(): rebuild the slabs/schedule against the decoupled factor.
  void apply_mask(const SensorMask& mask);

  const Posterior& post_;
  const QoiPredictor& pred_;
  std::weak_ptr<const void> lifetime_;
  bool guarded_ = false;
  StreamingOptions opts_;
  std::size_t nd_, nt_, n_, np_, nqoi_;
  Matrix r_;             ///< L^{-1} V, (Nd Nt) x nqoi; row j contiguous
  Matrix wstar_;         ///< L^{-1} F Gamma_prior, (Nd Nt) x (Nm Nt) (if track_map)
  Matrix std_schedule_;  ///< (Nt + 1) x nqoi; row t = stddev after t ticks
  SensorMask mask_;      ///< channels this engine was reduced without
  /// Decoupled-factor hessian of a reduced() engine (null on full-network
  /// engines). Owned here: the posterior's hessian stays untouched, so any
  /// number of reduced engines can coexist with the full one.
  std::unique_ptr<DataSpaceHessian> reduced_hess_;
  double precompute_seconds_ = 0.0;
};

/// Per-event streaming state. Value type; create via StreamingEngine::start.
class StreamingAssimilator {
 public:
  explicit StreamingAssimilator(const StreamingEngine& engine);

  /// Ingest observation interval `tick` (must be ticks_received(): intervals
  /// arrive in order at 1 Hz in deployment; gaps/reordering are the
  /// transport layer's problem). `d_block` holds the Nd sensor values of
  /// that interval. Updates z, q_map, and (if tracked) m_map incrementally.
  TSUNAMI_HOT_PATH void push(std::size_t tick, std::span<const double> d_block);

  /// As push(), but with a per-channel validity bitmap (`valid[c] != 0`
  /// means channel c's sample is usable; empty = all valid). Invalid
  /// channels are projected out of the posterior *exactly* — equivalent to
  /// marginalizing their noise to infinity, not to assimilating zeros — via
  /// the per-row Woodbury projection documented in the .cpp. A whole-block
  /// loss (all channels invalid) keeps the stream advancing with the tick
  /// contributing no information. Rows pushed invalid are permanently dead:
  /// the sample never existed, so restore_sensor cannot resurrect them.
  TSUNAMI_HOT_PATH void push(std::size_t tick, std::span<const double> d_block,
                             std::span<const std::uint8_t> valid);

  /// Batched cross-event push: assimilate interval `tick` for K events at
  /// once. All assimilators must share the SAME engine (the slabs are
  /// immutable and shared) and all must be exactly at `tick`; blocks[k] is
  /// event k's Nd-vector. One pass over the slab block rows serves every
  /// event — the slab is the bandwidth bottleneck of a push, so K events
  /// cost barely more than one. Bit-identical to K serial push() calls:
  /// the batched accumulation performs, per (event, output) pair, the same
  /// additions in the same j-ascending order as the single-event path
  /// (asserted by the determinism and service suites). K == 1 degenerates
  /// to push(). Per-event timers record the batch time divided by K.
  TSUNAMI_HOT_PATH static void push_many(
      std::span<StreamingAssimilator* const> events, std::size_t tick,
      std::span<const std::span<const double>> blocks);

  /// Batched push with per-event validity bitmaps (`valids` empty = all
  /// valid everywhere; an individual empty bitmap = that block fully valid).
  TSUNAMI_HOT_PATH static void push_many(
      std::span<StreamingAssimilator* const> events, std::size_t tick,
      std::span<const std::span<const double>> blocks,
      std::span<const std::span<const std::uint8_t>> valids);

  // ---- degraded-mode control plane (ISSUE 10) ------------------------------
  // Sensor dropout does NOT touch the engine: the shared slabs and factor
  // stay immutable (other sessions keep streaming through them), and this
  // assimilator instead maintains an exact low-rank Woodbury correction over
  // its dead observation rows, advanced incrementally per tick via the
  // rank-1 Cholesky update / append primitives. See the .cpp for the math.

  /// Drop channel `s` mid-stream: every row it contributed so far is
  /// projected out retroactively and future pushes ignore it — from the next
  /// forecast on, the posterior is exactly the one a from-scratch
  /// assimilator on the reduced network would compute. Idempotent.
  void drop_sensor(std::size_t s);

  /// Re-admit channel `s`: rows it pushed while live (before drop_sensor)
  /// rejoin the posterior — their genuine data was kept — and future pushes
  /// assimilate it again. Rows pushed while dropped stay dead (no data ever
  /// arrived). A drop/restore cycle with no intervening pushes restores the
  /// assimilator bitwise. Idempotent.
  void restore_sensor(std::size_t s);

  /// True when any channel is masked or any observation row is projected
  /// out — i.e. forecasts are exact posteriors over a reduced network.
  [[nodiscard]] bool degraded() const {
    return !dead_.empty() || mask_.any();
  }
  [[nodiscard]] std::size_t dropped_channels() const {
    return mask_.dropped_count();
  }
  [[nodiscard]] const SensorMask& sensor_mask() const { return mask_; }

  [[nodiscard]] std::size_t ticks_received() const { return t_; }
  [[nodiscard]] bool complete() const { return t_ == eng_.num_ticks(); }

  /// Rolling QoI forecast: the exact posterior mean given the data so far,
  /// with credible intervals from the engine's precomputed schedule. At the
  /// final tick this equals DigitalTwin::infer's forecast on the full
  /// vector (to roundoff).
  [[nodiscard]] Forecast forecast() const;

  /// As forecast(), but writes into a caller-owned Forecast whose buffers
  /// are reused — the per-tick publish path of the warning service, free of
  /// allocation after the first call.
  TSUNAMI_HOT_PATH void forecast_into(Forecast& fc) const;

  /// Rolling posterior mean of the QoI (the raw accumulator behind
  /// forecast(); no allocation).
  [[nodiscard]] const std::vector<double>& qoi_mean() const { return q_mean_; }

  /// Rolling MAP estimate m_map(t). Requires an engine with track_map.
  /// When degraded, returns the projection-corrected estimate (materialized
  /// on demand into a per-assimilator cache — O(p Nm Nt), so callers on the
  /// hot publish path should prefer forecast_into, which never needs it).
  [[nodiscard]] const std::vector<double>& map_estimate() const;

  /// On-demand MAP estimate via prefix backward substitution — O(p^2) but
  /// needs no baked parameter-space operator. Identical (to roundoff) to
  /// map_estimate(); the cross-check between the two paths is tested.
  [[nodiscard]] std::vector<double> map_snapshot() const;

  [[nodiscard]] double last_push_seconds() const { return last_push_seconds_; }
  [[nodiscard]] double total_push_seconds() const { return total_push_seconds_; }
  [[nodiscard]] const StreamingEngine& engine() const { return eng_; }

  /// Forget the event (state back to tick 0); the engine is untouched.
  void reset();

 private:
  /// One projected-out observation row. `y` is the causal unit solve
  /// L^{-1} e_row (meaningful over [row, p)); `g` accumulates R[row:p,:]^T y
  /// — the row's influence on the QoI mean. Both extend per tick alongside
  /// z, so corrections never re-walk the past.
  struct DeadRow {
    std::size_t row = 0;
    /// Pushed with invalid/absent data: no genuine sample exists in z, so
    /// restore_sensor can never resurrect this row.
    bool permanent = false;
    std::vector<double> y;
    std::vector<double> g;
  };

  /// Copy a tick block into z, zeroing dead channels (engine-reduced,
  /// dropped, or invalid-by-bitmap). Plain copy when nothing is dead.
  TSUNAMI_HOT_PATH void stage_block(std::span<const double> d_block,
                                    std::span<const std::uint8_t> valid,
                                    std::size_t p0);
  /// Returns true if the staged tick introduces new dead rows.
  [[nodiscard]] bool tick_has_new_dead(
      std::span<const std::uint8_t> valid) const;
  /// Extend the projection state over the freshly solved rows [p0, p1):
  /// grow existing y/g/h columns, rank-1-update chol(S) per row, append
  /// columns for newly dead rows.
  TSUNAMI_HOT_PATH void advance_degraded(std::size_t p0, std::size_t p1,
                                         std::span<const std::uint8_t> valid);
  /// Recompute the whole projection (y, g, h, chol(S)) from dead_'s
  /// row/permanent fields at the current prefix — the control-event path
  /// behind drop_sensor/restore_sensor.
  void rebuild_projections();
  /// c = S^{-1} h into c_scratch_ (empty when not degraded).
  void compute_projection_coeffs() const;

  const StreamingEngine& eng_;
  std::size_t t_ = 0;
  std::vector<double> z_;       ///< L^{-1} d prefix, extended causally
  std::vector<double> q_mean_;  ///< R[0:p,:]^T z[0:p]
  std::vector<double> m_map_;   ///< W*[0:p,:]^T z[0:p] (if tracked)

  // Degraded-mode state (all empty on the healthy path).
  SensorMask mask_;              ///< currently dropped channels
  std::vector<DeadRow> dead_;    ///< projected rows, ascending by row
  std::unique_ptr<DenseCholesky> s_chol_;  ///< chol(Y^T Y), r x r
  std::vector<double> h_;        ///< Y^T z over the pushed prefix
  std::vector<double> u_scratch_;          ///< rank-1 update staging (r)
  mutable std::vector<double> c_scratch_;  ///< S^{-1} h (r)
  mutable std::vector<double> var_scratch_;  ///< per-QoI S^{-1} G^T column (r)
  mutable std::vector<double> proj_scratch_;  ///< -Y S^{-1} h staging (n)
  mutable std::vector<double> m_corr_;     ///< corrected MAP cache
  /// map_snapshot scratch: the prefix backward-substitution vector and the
  /// Toeplitz/prior workspace for the prefix G* lift. mutable because the
  /// snapshot is logically const; the assimilator is single-caller by
  /// contract (one worker drains an event at a time), so no guard is needed.
  mutable std::vector<double> snapshot_u_;
  mutable Posterior::Workspace ws_;
  double last_push_seconds_ = 0.0;
  double total_push_seconds_ = 0.0;
};

}  // namespace tsunami
