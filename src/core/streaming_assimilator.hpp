#pragma once

// Streaming assimilation engine: incremental per-tick inference and rolling
// forecasts as observations arrive — the real-time front door of Phase 4.
//
// The batch online phase (DigitalTwin::infer) consumes the complete
// Nt-interval data vector after the event is over. A warning center does not
// have that luxury: sensor packets arrive one observation interval at a
// time, and the forecast must sharpen with each arrival (Henneking, Venkat &
// Ghattas, arXiv:2501.14911; Nomura et al., arXiv:2407.03631). This module
// turns the already-factorized offline operators into an engine that ingests
// one interval per push() and maintains the *exact* truncated posterior —
// not an approximation — at a per-tick cost far below a full re-solve.
//
// The structural facts that make this work (data stored time-major):
//
//  1. The observations available at tick t form a prefix d_t of d_obs, and
//     the truncated Hessian K_t = Gamma_noise + F_t Gamma_prior F_t^T is the
//     leading (t Nd) x (t Nd) principal submatrix of the full K.
//  2. Cholesky commutes with taking leading principal submatrices: the
//     factor of K_t is the leading block L_t of the offline factor L. No
//     refactorization, ever.
//  3. Forward substitution is causal: z = L^{-1} d satisfies z[0:p] =
//     L_p^{-1} d[0:p]. Each tick only *extends* the cached z by one block
//     row (DenseCholesky::forward_solve_range) — O(Nd^2 t) work.
//  4. The non-causal backward substitution is eliminated by baking L^{-T}
//     into the offline operators: with
//         R  = L^{-1} V            (V = F Gamma_prior Fq^T),
//         W* = L^{-1} F Gamma_prior,
//     the truncated posterior at tick t is a running sum over block rows,
//         q_map(t)   = R[0:p,:]^T  z[0:p]      (p = t Nd),
//         m_map(t)   = W*[0:p,:]^T z[0:p],
//         Gamma_post(q, t) = W - R[0:p,:]^T R[0:p,:],
//     because the leading block of the inverse of a triangular matrix is
//     the inverse of its leading block. Each push adds one block row:
//     O(Nd (Nq Nt + Nm Nt)) flops, *constant* in the tick index.
//
// The credible-interval schedule Gamma_post(q, t) is data-independent, so
// the engine precomputes the whole stddev-vs-tick table once; streaming an
// event costs only the forward-substitution extension plus two slab
// matvecs per tick.
//
// Split of responsibilities:
//   StreamingEngine      — immutable per-network precompute (R, W*, the CI
//                          schedule); shared by any number of concurrent
//                          event streams (ScenarioBank::run_streaming).
//   StreamingAssimilator — per-event mutable state (z, rolling m_map and
//                          q_map); cheap to create, reset, and replay.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/forecast.hpp"
#include "core/posterior.hpp"
#include "linalg/dense.hpp"
#include "util/hot_path.hpp"
#include "util/timer.hpp"

namespace tsunami {

struct StreamingOptions {
  /// Maintain the rolling MAP estimate m_map(t) incrementally. Costs an
  /// extra (Nd Nt) x (Nm Nt) dense operator offline (the baked
  /// Gamma_prior F^T L^{-T}) and one slab matvec per tick. With tracking
  /// off, map_snapshot() still recovers m_map(t) on demand in O(p^2).
  bool track_map = true;
};

class StreamingAssimilator;

/// Immutable streaming precompute over one twin's offline operators. The
/// posterior/predictor (and the twin owning them) must outlive the engine —
/// and unlike the pre-guard design, violating that is now a clean throw,
/// not undefined behavior: engines built through DigitalTwin::make_streaming
/// carry a lifetime token tied to the twin's offline state, and every entry
/// point that would slice dangling posterior state checks it first. A twin
/// that is destroyed OR whose offline phases are re-run (replacing the
/// operators the slabs were baked from) expires the token.
class StreamingEngine {
 public:
  /// Requires completed offline phases (the factorized Hessian lives in the
  /// posterior). Records a "streaming: precompute" timer sample. `lifetime`
  /// is the owner's validity token (DigitalTwin passes its offline-state
  /// epoch): when the token expires, start()/push()/forecast()/map_snapshot()
  /// throw std::logic_error instead of dereferencing freed operators.
  /// Engines built without a token (direct construction in tests) keep the
  /// legacy unguarded contract.
  StreamingEngine(const Posterior& posterior, const QoiPredictor& predictor,
                  const StreamingOptions& options = {},
                  TimerRegistry* timers = nullptr,
                  std::shared_ptr<const void> lifetime = {});

  /// Begin assimilating a new event.
  [[nodiscard]] StreamingAssimilator start() const;

  // ---- dimensions ----------------------------------------------------------
  [[nodiscard]] std::size_t num_ticks() const { return nt_; }        ///< Nt
  [[nodiscard]] std::size_t block_size() const { return nd_; }       ///< Nd
  [[nodiscard]] std::size_t data_dim() const { return n_; }
  [[nodiscard]] std::size_t parameter_dim() const { return np_; }
  [[nodiscard]] std::size_t qoi_dim() const { return nqoi_; }

  [[nodiscard]] bool tracks_map() const { return opts_.track_map; }
  [[nodiscard]] const StreamingOptions& options() const { return opts_; }
  [[nodiscard]] double precompute_seconds() const { return precompute_seconds_; }

  /// Posterior QoI stddev after `ticks` observation intervals (0 = prior).
  /// Data-independent, hence precomputed for every tick: this is the
  /// credible-interval shrink schedule of the sensor network itself.
  [[nodiscard]] std::span<const double> stddev_after(std::size_t ticks) const;

  [[nodiscard]] const Posterior& posterior() const { return post_; }
  [[nodiscard]] const QoiPredictor& predictor() const { return pred_; }

  /// True while the operators this engine slices are guaranteed alive
  /// (always true for unguarded engines).
  [[nodiscard]] bool operators_alive() const {
    return !guarded_ || !lifetime_.expired();
  }

 private:
  friend class StreamingAssimilator;

  /// Throws std::logic_error if the owning twin's offline state is gone.
  void check_alive(const char* what) const;

  const Posterior& post_;
  const QoiPredictor& pred_;
  std::weak_ptr<const void> lifetime_;
  bool guarded_ = false;
  StreamingOptions opts_;
  std::size_t nd_, nt_, n_, np_, nqoi_;
  Matrix r_;             ///< L^{-1} V, (Nd Nt) x nqoi; row j contiguous
  Matrix wstar_;         ///< L^{-1} F Gamma_prior, (Nd Nt) x (Nm Nt) (if track_map)
  Matrix std_schedule_;  ///< (Nt + 1) x nqoi; row t = stddev after t ticks
  double precompute_seconds_ = 0.0;
};

/// Per-event streaming state. Value type; create via StreamingEngine::start.
class StreamingAssimilator {
 public:
  explicit StreamingAssimilator(const StreamingEngine& engine);

  /// Ingest observation interval `tick` (must be ticks_received(): intervals
  /// arrive in order at 1 Hz in deployment; gaps/reordering are the
  /// transport layer's problem). `d_block` holds the Nd sensor values of
  /// that interval. Updates z, q_map, and (if tracked) m_map incrementally.
  TSUNAMI_HOT_PATH void push(std::size_t tick, std::span<const double> d_block);

  /// Batched cross-event push: assimilate interval `tick` for K events at
  /// once. All assimilators must share the SAME engine (the slabs are
  /// immutable and shared) and all must be exactly at `tick`; blocks[k] is
  /// event k's Nd-vector. One pass over the slab block rows serves every
  /// event — the slab is the bandwidth bottleneck of a push, so K events
  /// cost barely more than one. Bit-identical to K serial push() calls:
  /// the batched accumulation performs, per (event, output) pair, the same
  /// additions in the same j-ascending order as the single-event path
  /// (asserted by the determinism and service suites). K == 1 degenerates
  /// to push(). Per-event timers record the batch time divided by K.
  TSUNAMI_HOT_PATH static void push_many(
      std::span<StreamingAssimilator* const> events, std::size_t tick,
      std::span<const std::span<const double>> blocks);

  [[nodiscard]] std::size_t ticks_received() const { return t_; }
  [[nodiscard]] bool complete() const { return t_ == eng_.num_ticks(); }

  /// Rolling QoI forecast: the exact posterior mean given the data so far,
  /// with credible intervals from the engine's precomputed schedule. At the
  /// final tick this equals DigitalTwin::infer's forecast on the full
  /// vector (to roundoff).
  [[nodiscard]] Forecast forecast() const;

  /// As forecast(), but writes into a caller-owned Forecast whose buffers
  /// are reused — the per-tick publish path of the warning service, free of
  /// allocation after the first call.
  TSUNAMI_HOT_PATH void forecast_into(Forecast& fc) const;

  /// Rolling posterior mean of the QoI (the raw accumulator behind
  /// forecast(); no allocation).
  [[nodiscard]] const std::vector<double>& qoi_mean() const { return q_mean_; }

  /// Rolling MAP estimate m_map(t). Requires an engine with track_map.
  [[nodiscard]] const std::vector<double>& map_estimate() const;

  /// On-demand MAP estimate via prefix backward substitution — O(p^2) but
  /// needs no baked parameter-space operator. Identical (to roundoff) to
  /// map_estimate(); the cross-check between the two paths is tested.
  [[nodiscard]] std::vector<double> map_snapshot() const;

  [[nodiscard]] double last_push_seconds() const { return last_push_seconds_; }
  [[nodiscard]] double total_push_seconds() const { return total_push_seconds_; }
  [[nodiscard]] const StreamingEngine& engine() const { return eng_; }

  /// Forget the event (state back to tick 0); the engine is untouched.
  void reset();

 private:
  const StreamingEngine& eng_;
  std::size_t t_ = 0;
  std::vector<double> z_;       ///< L^{-1} d prefix, extended causally
  std::vector<double> q_mean_;  ///< R[0:p,:]^T z[0:p]
  std::vector<double> m_map_;   ///< W*[0:p,:]^T z[0:p] (if tracked)
  /// map_snapshot scratch: the prefix backward-substitution vector and the
  /// Toeplitz/prior workspace for the prefix G* lift. mutable because the
  /// snapshot is logically const; the assimilator is single-caller by
  /// contract (one worker drains an event at a time), so no guard is needed.
  mutable std::vector<double> snapshot_u_;
  mutable Posterior::Workspace ws_;
  double last_push_seconds_ = 0.0;
  double total_push_seconds_ = 0.0;
};

}  // namespace tsunami
