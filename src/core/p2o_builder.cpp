#include "core/p2o_builder.hpp"

namespace tsunami {

P2oMap build_p2o_map(const AcousticGravityModel& model,
                     const ObservationOperator& obs, const TimeGrid& grid,
                     TimerRegistry* timers) {
  P2oMap map;
  map.nrows = obs.num_outputs();
  map.ncols = model.source_map().parameter_dim();
  map.nt = grid.num_intervals;
  map.blocks.assign(map.nt * map.nrows * map.ncols, 0.0);

  // One adjoint propagation per observation row. Each fills row s of every
  // Toeplitz block F_k. (The model's kernels are already threaded; the outer
  // loop stays serial to mirror the per-solve timings of Table III.)
  for (std::size_t s = 0; s < map.nrows; ++s) {
    const Matrix rows = adjoint_p2o_rows(model, obs, s, grid, timers);
    for (std::size_t k = 0; k < map.nt; ++k) {
      const auto src = rows.row(k);
      double* dst = map.blocks.data() + (k * map.nrows + s) * map.ncols;
      std::copy(src.begin(), src.end(), dst);
    }
  }
  map.toeplitz = std::make_unique<BlockToeplitz>(
      map.nrows, map.ncols, map.nt, std::span<const double>(map.blocks));
  return map;
}

}  // namespace tsunami
