#include "core/p2o_builder.hpp"

#include "parallel/parallel_for.hpp"

namespace tsunami {

namespace {

/// One adjoint propagation: fill row s of every Toeplitz block F_k.
void fill_rows(const AcousticGravityModel& model,
               const ObservationOperator& obs, const TimeGrid& grid,
               std::size_t s, P2oMap& map, TimerRegistry* timers) {
  const Matrix rows = adjoint_p2o_rows(model, obs, s, grid, timers);
  for (std::size_t k = 0; k < map.nt; ++k) {
    const auto src = rows.row(k);
    double* dst = map.blocks.data() + (k * map.nrows + s) * map.ncols;
    std::copy(src.begin(), src.end(), dst);
  }
}

}  // namespace

P2oMap build_p2o_map(const AcousticGravityModel& model,
                     const ObservationOperator& obs, const TimeGrid& grid,
                     TimerRegistry* timers, const P2oBuildOptions& options) {
  P2oMap map;
  map.nrows = obs.num_outputs();
  map.ncols = model.source_map().parameter_dim();
  map.nt = grid.num_intervals;
  map.blocks.assign(map.nt * map.nrows * map.ncols, 0.0);

  if (options.parallel_rows && map.nrows > 1) {
    // Concurrent adjoint solves, each on local state, each writing a
    // disjoint row of every block — bit-identical to the serial build.
    // Per-solve timers are suppressed (the registry is not thread-safe);
    // one aggregate wall sample is recorded instead.
    Stopwatch watch;
    parallel_for(map.nrows,
                 [&](std::size_t s) { fill_rows(model, obs, grid, s, map, nullptr); });
    if (timers) timers->add("Adjoint p2o (parallel)", watch.seconds());
  } else {
    // One adjoint propagation per observation row, serially — mirrors the
    // per-solve timings of Table III.
    for (std::size_t s = 0; s < map.nrows; ++s)
      fill_rows(model, obs, grid, s, map, timers);
  }
  // Fourier symbol construction: one batched r2c transform pass over every
  // (row, col) entry sequence, with per-thread scratch inside the engine.
  // Cheap next to the adjoint solves above, but worth a timer sample: it is
  // the only non-PDE cost of Phase 1 and shows up in warm-start rebuilds.
  Stopwatch symbol_watch;
  map.toeplitz = std::make_unique<BlockToeplitz>(
      map.nrows, map.ncols, map.nt, std::span<const double>(map.blocks));
  if (timers) timers->add("p2o: FFT symbols", symbol_watch.seconds());
  return map;
}

}  // namespace tsunami
