#pragma once

// Goal-oriented optimal sensor placement.
//
// The paper motivates using existing offshore records "to inform optimal
// sensor placement" (SecIII-A, NEPTUNE / SZ4D deployments). With the
// data-space machinery this is cheap: for a candidate pool of seafloor
// sensor locations, Phase 1 gives the pool's p2o rows once; selecting a
// subset S changes only which block rows/columns of the pool's data-space
// Gram matrix enter K_S, so the QoI posterior covariance
//   Gamma_post(q | S) = W - V_S^T K_S^{-1} V_S
// is evaluable by a small Cholesky per candidate set — no further PDE
// solves. We implement the classical greedy A-optimal design: repeatedly add
// the candidate that most reduces trace(Gamma_post(q)), which enjoys the
// usual supermodularity-style near-optimality in practice.

#include <cstddef>
#include <vector>

#include "core/data_space_hessian.hpp"
#include "linalg/dense.hpp"
#include "prior/matern_prior.hpp"
#include "toeplitz/block_toeplitz.hpp"

namespace tsunami {

/// Pool quantities precomputed once from Phase-1 maps of the CANDIDATE pool.
struct PlacementPool {
  std::size_t num_candidates = 0;  ///< Ncand
  std::size_t nt = 0;              ///< observation intervals
  /// Gram of the pool's data space WITHOUT noise: (F Gp F^T), time-major
  /// rows/cols indexed (t * Ncand + c). Size (Ncand Nt)^2.
  Matrix gram;
  /// V = F Gp Fq^T for the pool, (Ncand Nt) x (Nq Nt).
  Matrix v;
  /// Prior QoI covariance W = Fq Gp Fq^T, (Nq Nt)^2.
  Matrix w;
  double noise_variance = 1.0;
};

/// Build the pool from the candidate p2o map and the QoI map.
[[nodiscard]] PlacementPool build_placement_pool(const BlockToeplitz& f_pool,
                                                 const BlockToeplitz& fq,
                                                 const MaternPrior& prior,
                                                 const NoiseModel& noise);

struct PlacementResult {
  std::vector<std::size_t> selected;    ///< candidate indices, pick order
  std::vector<double> qoi_trace;        ///< trace(Gamma_post(q)) after each pick
  double prior_qoi_trace = 0.0;         ///< trace(W): no sensors at all
};

/// Greedy A-optimal selection of `budget` sensors from the pool.
[[nodiscard]] PlacementResult greedy_sensor_placement(
    const PlacementPool& pool, std::size_t budget);

/// trace(Gamma_post(q)) for an explicit sensor subset (evaluation utility).
[[nodiscard]] double qoi_posterior_trace(
    const PlacementPool& pool, const std::vector<std::size_t>& sensors);

}  // namespace tsunami
