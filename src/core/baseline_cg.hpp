#pragma once

// The state-of-the-art baseline the paper measures itself against (SecIV):
// prior-preconditioned matrix-free conjugate gradients on the full-space
// normal equations
//   (F^T Gn^{-1} F + Gp^{-1}) m_map = F^T Gn^{-1} d_obs,
// where EVERY Hessian application costs one forward + one adjoint wave
// propagation. On the paper's problem this is 50 years of compute; at our
// reduced scale it is merely minutes — bench_speedup runs both sides on the
// SAME problem and reports the measured ratio (the paper's 10^10 factor).

#include <cstddef>
#include <span>
#include <vector>

#include "prior/matern_prior.hpp"
#include "core/data_space_hessian.hpp"
#include "wave/adjoint.hpp"
#include "wave/observation.hpp"

namespace tsunami {

struct BaselineResult {
  std::vector<double> m_map;
  std::size_t cg_iterations = 0;
  std::size_t pde_solves = 0;  ///< forward + adjoint propagations performed
  double seconds = 0.0;
  double relative_residual = 0.0;
  bool converged = false;
};

struct BaselineOptions {
  std::size_t max_iterations = 200;
  double relative_tolerance = 1e-8;
};

/// Solve the MAP system with the conventional CG pipeline.
[[nodiscard]] BaselineResult baseline_cg_solve(
    const AcousticGravityModel& model, const ObservationOperator& obs,
    const TimeGrid& grid, const MaternPrior& prior, const NoiseModel& noise,
    std::span<const double> d_obs, const BaselineOptions& opts = {});

}  // namespace tsunami
