#pragma once

// The digital twin: end-to-end orchestration of the paper's four phases.
//
//   Phase 1 (offline): Nd + Nq adjoint wave propagations -> F, Fq.
//   Phase 2 (offline): prior solves + FFT Hessian matvecs -> K; Cholesky.
//   Phase 3 (offline): Gamma_post(q) and the data-to-QoI map Q.
//   Phase 4 (online) : given d_obs, infer m_map and forecast q with 95% CIs
//                      in real time (no PDE solves).
//
// The twin also synthesizes ground-truth experiments: a kinematic rupture
// scenario drives the forward model to produce noisy sensor data and true
// QoI series (the paper's Fig. 3/4 setup with 1% relative noise).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/baseline_cg.hpp"
#include "core/data_space_hessian.hpp"
#include "core/forecast.hpp"
#include "core/p2o_builder.hpp"
#include "core/posterior.hpp"
#include "core/streaming_assimilator.hpp"
#include "mesh/bathymetry.hpp"
#include "mesh/hex_mesh.hpp"
#include "prior/matern_prior.hpp"
#include "rupture/scenario.hpp"
#include "util/artifact_bundle.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "wave/acoustic_gravity.hpp"

namespace tsunami {

/// Twin-wide configuration. Every field documents its paper-scale value next
/// to the reduced seed default: the defaults keep CPU runs interactive while
/// preserving the paper's structure, so scaling toward the paper is a matter
/// of turning these knobs up (see README.md "Scaling knobs").
struct TwinConfig {
  // Mesh and discretization.
  /// Synthetic Cascadia-like topobathymetry (GEBCO substitution). The paper
  /// meshes the real margin, ~1000 km along strike; the seed default is a
  /// flat-bottomed ~60x80 km footprint (examples use up to 120x200 km).
  BathymetryConfig bathymetry{};
  /// Hex-element counts of the structured footprint mesh. Paper: O(10^6)
  /// elements (billions of DOFs across GPUs); seed default: 12x18x3 = 648.
  std::size_t mesh_nx = 12, mesh_ny = 18, mesh_nz = 3;
  /// Polynomial order of the pressure space. Paper: 4 (their throughput
  /// study's high order); seed default: 2 for fast CPU turnaround.
  std::size_t order = 2;
  /// Water/gravity/acoustic constants; defaults match the paper's ocean.
  PhysicalConstants physics{};
  /// Wave-operator implementation (the Fig. 7 optimization ladder). Paper
  /// and seed both default to the fused partial-assembly kernel.
  KernelVariant kernel = KernelVariant::FusedPA;
  /// CFL fraction for the explicit RK4 substep. Paper runs near the acoustic
  /// stability limit; 0.3 leaves margin on coarse seed meshes.
  double cfl = 0.3;

  // Observations.
  std::size_t num_sensors = 12;   ///< seafloor pressure sensors (paper: 600)
  std::size_t num_gauges = 5;     ///< QoI forecast locations (paper: 21)
  std::size_t num_intervals = 30; ///< Nt observation intervals (paper: 420)
  /// Seconds between observations. Paper: 1.0 (1 Hz for 420 s); seed
  /// default: 4.0 so Nt=30 still spans a two-minute window on CPU.
  double observation_dt = 4.0;

  // Inference.
  /// Matern (biLaplacian) prior on the seafloor velocity parameter field.
  /// Paper: correlation length ~25 km at margin scale; seed tiny(): 20 km.
  MaternPriorConfig prior{};
  double noise_level = 0.01;      ///< relative noise (paper: 1%)

  // Build strategy (does not change results, excluded from fingerprint()).
  /// Opt-in: run the Phase 1 outer adjoint loop (one solve per sensor/gauge)
  /// in parallel. The assembled maps are bit-identical to the serial build;
  /// serial stays the default so the per-solve Table III timer samples
  /// remain meaningful. See P2oBuildOptions.
  bool phase1_parallel = false;

  /// A small config that keeps unit tests fast: 6x8x2 mesh, 6 sensors,
  /// 3 gauges, Nt=12 at 5 s — the same pipeline at ~1/50 the paper's Nt
  /// and ~1/100 its sensor count.
  static TwinConfig tiny();

  /// FNV-1a hash over every result-determining field (bathymetry, mesh,
  /// order, physics, kernel, cfl, observations, prior, noise level — NOT
  /// build-strategy knobs like phase1_parallel). Two configs with equal
  /// fingerprints produce interchangeable offline artifacts; the artifact
  /// bundle stores the producer's fingerprint and the warm-start path
  /// asserts compatibility against it.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Synthetic ground truth + observations for one rupture scenario.
struct SyntheticEvent {
  std::vector<double> m_true;   ///< time-major true seafloor velocity
  std::vector<double> d_true;   ///< noiseless sensor data
  std::vector<double> d_obs;    ///< noisy observations
  std::vector<double> q_true;   ///< true QoI (wave heights at gauges)
  NoiseModel noise;
};

/// Online inversion output (Phase 4).
struct InversionResult {
  std::vector<double> m_map;     ///< inferred seafloor velocity (time-major)
  Forecast forecast;             ///< QoI prediction with 95% CIs
  double infer_seconds = 0.0;    ///< Table III "infer parameters m_map"
  double predict_seconds = 0.0;  ///< Table III "predict QoI q_map"
};

class DigitalTwin {
 public:
  explicit DigitalTwin(const TwinConfig& config);

  /// Warm start (the warning-center boot path): reconstruct the full online
  /// state — posterior, predictor, streaming support — from a Phase 1-3
  /// artifact bundle without a single PDE solve or factorization. The twin's
  /// configuration is read from the bundle itself; the stored fingerprint is
  /// verified against the reconstructed config before anything is trusted.
  /// infer() and streaming push() on the result are bit-identical to the
  /// cold-path twin that produced the bundle (tests/test_artifact_bundle.cpp).
  explicit DigitalTwin(const ArtifactBundle& bundle);

  // ---- offline artifact shipping -------------------------------------------
  /// Serialize everything Phase 4 needs (config + fingerprint, F/Fq block
  /// columns, the Cholesky factor of K, Q, Gamma_post(q), the calibrated
  /// noise) into one versioned, checksummed bundle file. Requires completed
  /// offline phases.
  void save_offline(const std::string& path) const;

  /// The in-memory form of save_offline (exposed for tests and tooling).
  [[nodiscard]] ArtifactBundle make_bundle() const;

  /// Boot a twin from a bundle file (HPC side writes, warning center reads).
  [[nodiscard]] static DigitalTwin load_offline(const std::string& path);

  /// As above, but additionally asserts the bundle was produced by a twin
  /// with exactly this configuration (fingerprint comparison); throws
  /// std::runtime_error on mismatch.
  [[nodiscard]] static DigitalTwin load_offline(const std::string& path,
                                                const TwinConfig& expected);

  // ---- offline phases ------------------------------------------------------
  /// Phase 1: build F and Fq (Nd + Nq adjoint propagations).
  void run_phase1();
  /// Phase 2: form and factorize the data-space Hessian. Requires phase 1.
  void run_phase2(const NoiseModel& noise);
  /// Phase 3: QoI covariance and data-to-QoI map. Requires phase 2.
  void run_phase3();

  /// All offline phases against a synthetic event's calibrated noise.
  void run_offline(const NoiseModel& noise) {
    run_phase1();
    run_phase2(noise);
    run_phase3();
  }

  // ---- experiment synthesis ------------------------------------------------
  /// Forward-model a rupture scenario into noisy observations (independent of
  /// the offline phases; uses PDE solves).
  [[nodiscard]] SyntheticEvent synthesize(const RuptureScenario& scenario,
                                          Rng& rng) const;

  // ---- online phase --------------------------------------------------------
  /// True once phases 1-3 have run and `infer` may be called.
  [[nodiscard]] bool online_ready() const { return posterior_ && predictor_; }

  /// Phase 4: real-time inference + forecasting. Requires phases 1-3.
  [[nodiscard]] InversionResult infer(std::span<const double> d_obs) const;

  /// Build the streaming front door over the offline operators: an engine
  /// whose assimilators ingest one observation interval per push and
  /// maintain the exact truncated posterior (rolling m_map + forecast) with
  /// no refactorization. Requires phases 1-3; the twin must outlive the
  /// engine, and the engine carries a lifetime token so violating that (or
  /// re-running the offline phases underneath it) throws std::logic_error
  /// instead of slicing freed state. See src/core/streaming_assimilator.hpp
  /// for the prefix-Cholesky argument.
  [[nodiscard]] StreamingEngine make_streaming(
      const StreamingOptions& options = {},
      TimerRegistry* timers = nullptr) const;

  // ---- diagnostics ---------------------------------------------------------
  /// Time-integrated seafloor displacement b(x) = int m dt (Fig. 3 fields).
  [[nodiscard]] std::vector<double> displacement_field(
      std::span<const double> m) const;

  /// Relative L2 error between two parameter-space fields.
  [[nodiscard]] static double relative_error(std::span<const double> estimate,
                                             std::span<const double> truth);

  // ---- access --------------------------------------------------------------
  [[nodiscard]] const TwinConfig& config() const { return cfg_; }
  [[nodiscard]] const HexMesh& mesh() const { return *mesh_; }
  [[nodiscard]] const AcousticGravityModel& model() const { return *model_; }
  [[nodiscard]] const ObservationOperator& sensors() const { return *sensors_; }
  [[nodiscard]] const ObservationOperator& gauges() const { return *gauges_; }
  [[nodiscard]] const TimeGrid& time_grid() const { return time_; }
  [[nodiscard]] const MaternPrior& prior() const { return *prior_; }
  [[nodiscard]] const P2oMap& p2o() const { return f_; }
  [[nodiscard]] const P2oMap& p2q() const { return fq_; }
  [[nodiscard]] const DataSpaceHessian& hessian() const { return *hessian_; }
  [[nodiscard]] const Posterior& posterior() const { return *posterior_; }
  [[nodiscard]] const QoiPredictor& predictor() const { return *predictor_; }
  [[nodiscard]] TimerRegistry& timers() { return timers_; }
  [[nodiscard]] const TimerRegistry& timers() const { return timers_; }

  [[nodiscard]] std::size_t parameter_dim() const {
    return model_->source_map().parameter_dim() * time_.num_intervals;
  }
  [[nodiscard]] std::size_t data_dim() const {
    return cfg_.num_sensors * time_.num_intervals;
  }

 private:
  /// Unpack + fingerprint-verify the config stored in a bundle.
  [[nodiscard]] static TwinConfig config_from_bundle(
      const ArtifactBundle& bundle);
  /// Rebuild posterior_/predictor_ (and f_/fq_/hessian_) from bundle
  /// sections, with per-section dimension checks against this twin.
  void install_offline(const ArtifactBundle& bundle);
  /// Replace the offline-state epoch token: any streaming engine built over
  /// the previous offline state now throws instead of slicing stale slabs.
  void refresh_offline_epoch();

  TwinConfig cfg_;
  Bathymetry bathy_;
  std::unique_ptr<HexMesh> mesh_;
  std::unique_ptr<AcousticGravityModel> model_;
  std::unique_ptr<ObservationOperator> sensors_;
  std::unique_ptr<ObservationOperator> gauges_;
  TimeGrid time_;
  std::unique_ptr<MaternPrior> prior_;

  P2oMap f_;
  P2oMap fq_;
  std::unique_ptr<DataSpaceHessian> hessian_;
  std::unique_ptr<Posterior> posterior_;
  std::unique_ptr<QoiPredictor> predictor_;
  /// Lifetime token handed to streaming engines; recreated whenever the
  /// offline operators they bake slabs from are (re)built.
  std::shared_ptr<const std::uint64_t> offline_epoch_;
  TimerRegistry timers_;
};

}  // namespace tsunami
