#pragma once

// SensorMask: which channels of the observation network are live.
//
// The data stream interleaves one row per sensor per tick (row t*nd + s is
// sensor s at tick t), so a mask over the nd channels induces a mask over
// every observation row ever pushed. Degraded-mode inference (ISSUE 10)
// threads this mask through DataSpaceHessian (decouple_channels),
// StreamingEngine::start (from-scratch reduced-network reference) and
// StreamingAssimilator::drop_sensor/restore_sensor (mid-stream exact
// projection).

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace tsunami {

/// Boolean mask over the network's channels; true = dropped (dead).
class SensorMask {
 public:
  SensorMask() = default;
  explicit SensorMask(std::size_t num_channels)
      : dropped_(num_channels, 0) {}

  [[nodiscard]] std::size_t size() const { return dropped_.size(); }

  void drop(std::size_t channel) { at(channel) = 1; }
  void restore(std::size_t channel) { at(channel) = 0; }

  [[nodiscard]] bool masked(std::size_t channel) const {
    if (channel >= dropped_.size())
      throw std::out_of_range("SensorMask: channel out of range");
    return dropped_[channel] != 0;
  }

  [[nodiscard]] std::size_t dropped_count() const {
    std::size_t n = 0;
    for (const auto b : dropped_) n += b != 0 ? 1u : 0u;
    return n;
  }

  [[nodiscard]] bool any() const { return dropped_count() > 0; }

  /// Raw bits, one byte per channel (1 = dropped) — the wire/loop-friendly
  /// view used by validity bitmaps.
  [[nodiscard]] const std::vector<std::uint8_t>& bits() const {
    return dropped_;
  }

  friend bool operator==(const SensorMask&, const SensorMask&) = default;

 private:
  std::uint8_t& at(std::size_t channel) {
    if (channel >= dropped_.size())
      throw std::out_of_range("SensorMask: channel out of range");
    return dropped_[channel];
  }

  std::vector<std::uint8_t> dropped_;
};

}  // namespace tsunami
