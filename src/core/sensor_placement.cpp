#include "core/sensor_placement.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/forecast.hpp"
#include "linalg/blas.hpp"
#include "linalg/dense_cholesky.hpp"

namespace tsunami {

PlacementPool build_placement_pool(const BlockToeplitz& f_pool,
                                   const BlockToeplitz& fq,
                                   const MaternPrior& prior,
                                   const NoiseModel& noise) {
  PlacementPool pool;
  pool.num_candidates = f_pool.block_rows();
  pool.nt = f_pool.num_blocks();
  pool.noise_variance = noise.variance();

  const std::size_t nd = f_pool.output_dim();
  const std::size_t nq = fq.output_dim();

  // Gram = F Gp F^T on pool unit vectors (no noise on the diagonal; noise
  // enters per-subset in K_S).
  {
    Matrix units(nd, nd);
    for (std::size_t i = 0; i < nd; ++i) units(i, i) = 1.0;
    Matrix ft_units;
    f_pool.apply_transpose_many(units, ft_units);
    apply_f_prior(f_pool, prior, ft_units, pool.gram);
    // Symmetrize.
    for (std::size_t i = 0; i < nd; ++i)
      for (std::size_t j = i + 1; j < nd; ++j) {
        const double v = 0.5 * (pool.gram(i, j) + pool.gram(j, i));
        pool.gram(i, j) = v;
        pool.gram(j, i) = v;
      }
  }
  // V and W against the QoI map.
  {
    Matrix units(nq, nq);
    for (std::size_t i = 0; i < nq; ++i) units(i, i) = 1.0;
    Matrix fqt_units;
    fq.apply_transpose_many(units, fqt_units);
    apply_f_prior(f_pool, prior, fqt_units, pool.v);
    apply_f_prior(fq, prior, fqt_units, pool.w);
  }
  return pool;
}

namespace {

/// Row/col indices of the pool Gram matrix covered by sensor subset S
/// (time-major data layout: index = t * Ncand + sensor).
std::vector<std::size_t> subset_indices(const PlacementPool& pool,
                                        const std::vector<std::size_t>& s) {
  std::vector<std::size_t> idx;
  idx.reserve(s.size() * pool.nt);
  for (std::size_t t = 0; t < pool.nt; ++t)
    for (std::size_t c : s) idx.push_back(t * pool.num_candidates + c);
  return idx;
}

}  // namespace

double qoi_posterior_trace(const PlacementPool& pool,
                           const std::vector<std::size_t>& sensors) {
  double trace_w = 0.0;
  for (std::size_t i = 0; i < pool.w.rows(); ++i) trace_w += pool.w(i, i);
  if (sensors.empty()) return trace_w;
  for (std::size_t c : sensors)
    if (c >= pool.num_candidates)
      throw std::out_of_range("qoi_posterior_trace: candidate index");

  const auto idx = subset_indices(pool, sensors);
  const std::size_t n = idx.size();
  const std::size_t nq = pool.v.cols();

  Matrix k_s(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) k_s(i, j) = pool.gram(idx[i], idx[j]);
    k_s(i, i) += pool.noise_variance;
  }
  Matrix v_s(n, nq);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < nq; ++j) v_s(i, j) = pool.v(idx[i], j);

  const DenseCholesky chol(k_s);
  Matrix kinv_v(v_s);
  chol.solve_in_place(kinv_v);
  // trace(W - V^T K^{-1} V) = trace(W) - sum_ij V_s(i,j) * kinv_v(i,j).
  double correction = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < nq; ++j)
      correction += v_s(i, j) * kinv_v(i, j);
  return trace_w - correction;
}

PlacementResult greedy_sensor_placement(const PlacementPool& pool,
                                        std::size_t budget) {
  PlacementResult result;
  result.prior_qoi_trace = qoi_posterior_trace(pool, {});
  budget = std::min(budget, pool.num_candidates);

  std::vector<bool> used(pool.num_candidates, false);
  for (std::size_t pick = 0; pick < budget; ++pick) {
    double best_trace = std::numeric_limits<double>::max();
    std::size_t best = pool.num_candidates;
    for (std::size_t c = 0; c < pool.num_candidates; ++c) {
      if (used[c]) continue;
      auto trial = result.selected;
      trial.push_back(c);
      const double tr = qoi_posterior_trace(pool, trial);
      if (tr < best_trace) {
        best_trace = tr;
        best = c;
      }
    }
    if (best == pool.num_candidates) break;
    used[best] = true;
    result.selected.push_back(best);
    result.qoi_trace.push_back(best_trace);
  }
  return result;
}

}  // namespace tsunami
