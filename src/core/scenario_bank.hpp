#pragma once

// ScenarioBank: batched multi-scenario online inference.
//
// The paper's real-time claim rests on an offline/online split: Phases 1-3
// precompute the p2o maps, the data-space Hessian factorization, and the
// data-to-QoI operator once per sensor network, after which Phase 4 costs
// only dense linear algebra per event. This module exploits that amortization
// in the direction the follow-up literature points (sequential Bayesian
// updating over rupture ensembles; probabilistic Cascadia forecasting): hold
// a *bank* of N kinematic rupture scenarios spanning magnitude, hypocenter,
// and rise time, synthesize observations for each, and sweep the online
// phase over the whole bank — in parallel, since the online operators are
// immutable after Phase 3 and every solve uses caller-local buffers.
//
// Intended use (see examples/ensemble_forecast.cpp):
//
//   DigitalTwin twin(config);
//   ScenarioBank bank(twin, ScenarioBank::spread(twin, 16, seed));
//   bank.synthesize(noise_seed);          // PDE forward solves, once per scenario
//   twin.run_offline(bank.shared_noise());// Phases 1-3, ONCE for the bank
//   EnsembleReport report = bank.run_online();  // batched Phase 4
//
// The report carries per-scenario online latency (the paper's Table III
// "infer m_map" / "predict q_map" rows, one pair per scenario) plus ensemble
// accuracy aggregates.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/digital_twin.hpp"
#include "util/stats.hpp"

namespace tsunami {

/// Rupture morphology of a bank entry.
///
/// `kCompact` nucleates at the dominant asperity, so the event is fully
/// observable within a short window — the right class for the seed-scale
/// configs, whose windows (Nt=12-30 intervals) are far shorter than the
/// paper's 420 s. `kMarginWide` is the paper's Mw 8.7 event class (asperities
/// strung along the whole margin); at paper scale (Nt=420) it is fully
/// observed, at seed scale its far asperities rupture after the window ends.
enum class RuptureStyle { kCompact, kMarginWide };

/// Specification of one kinematic rupture scenario in a bank.
///
/// Each spec materializes into a `RuptureConfig` (compact generator or
/// `margin_wide_scenario`) with the kinematic knobs the bank sweeps.
struct ScenarioSpec {
  std::string name;               ///< label used in reports
  RuptureStyle style = RuptureStyle::kCompact;
  double magnitude = 8.7;         ///< Mw; sets peak uplift (8.7 -> ~3 m)
  double hypocenter_x = -1.0;     ///< nucleation x [m]; < 0 keeps generator default
  double hypocenter_y = -1.0;     ///< nucleation y [m]; < 0 keeps generator default
  double rise_time = 15.0;        ///< local source duration [s] (paper: ~15 s)
  double rupture_speed = 2500.0;  ///< rupture front speed [m/s]
  unsigned seed = 2025;           ///< asperity-layout seed
};

/// Per-scenario outcome of one batched online pass.
struct ScenarioResult {
  ScenarioSpec spec;
  double infer_seconds = 0.0;     ///< Phase 4 "infer parameters m_map"
  double predict_seconds = 0.0;   ///< Phase 4 "predict QoI q_map"
  /// Total online latency (infer + predict) — the per-event cost that must
  /// stay under the paper's 0.2 s budget at full scale.
  double online_seconds = 0.0;
  double displacement_error = 0.0;     ///< rel. L2 of b_map vs b_true
  /// Normalized <b_map, b_true>: the robust recovery metric at seed scale
  /// (the forecast metrics are noise-sensitive on short windows because the
  /// data only weakly constrain the source's temporal structure, which the
  /// time-integrated displacement marginalizes out).
  double displacement_correlation = 0.0;
  double forecast_error = 0.0;         ///< rel. L2 of q_map vs q_true
  double forecast_correlation = 0.0;   ///< normalized <q_map, q_true>
  double ci_coverage = 0.0;            ///< frac. of q_true inside the 95% band
  double peak_true_uplift = 0.0;       ///< max |b_true| [m]
  double peak_inferred_uplift = 0.0;   ///< max |b_map| [m]
};

/// Per-scenario outcome of one streaming (tick-by-tick) replay.
struct StreamingScenarioResult {
  ScenarioSpec spec;
  std::size_t ticks_total = 0;
  /// Earliest tick count after which the rolling forecast mean stays within
  /// the sweep's relative tolerance of the final (full-data) forecast — the
  /// "time-to-confident-forecast" an early-warning operator cares about.
  std::size_t confident_tick = 0;
  double confident_seconds = 0.0;  ///< confident_tick in data time [s]
  double mean_push_seconds = 0.0;  ///< mean per-tick assimilation latency
  double max_push_seconds = 0.0;   ///< worst per-tick assimilation latency
  double final_forecast_error = 0.0;        ///< rel. L2 of final q vs q_true
  double final_forecast_correlation = 0.0;  ///< normalized <q, q_true>
  /// Normalized <b_map, b_true> at the final tick. Only meaningful when
  /// `map_tracked`; the table prints "n/a" otherwise.
  double displacement_correlation = 0.0;
  bool map_tracked = false;  ///< whether the engine maintained m_map
};

/// Aggregates + per-scenario table for one streaming sweep of the bank.
struct StreamingSweepReport {
  std::vector<StreamingScenarioResult> scenarios;
  double tolerance = 0.0;           ///< the confident-forecast threshold used
  double wall_seconds = 0.0;        ///< wall time of the whole sweep
  double mean_confident_seconds = 0.0;
  double max_confident_seconds = 0.0;
  /// Mean of confident_tick / ticks_total: 1.0 means forecasts only settle
  /// at the end of the window, small values mean actionable early warnings.
  double mean_confident_fraction = 0.0;
  double mean_push_seconds = 0.0;
  double max_push_seconds = 0.0;
  /// Distribution of EVERY per-tick push latency in the sweep (count =
  /// scenarios x ticks), not just per-scenario means: the sweep analogue of
  /// the warning service's p50/p95/p99 telemetry, computed by the same
  /// util/stats estimator. Tail latency is what an operator provisions for.
  LatencySummary push_latency;

  /// Paper-style text table: one row per scenario plus an aggregate footer
  /// and a push-latency percentile line.
  [[nodiscard]] std::string table() const;
};

/// Ensemble aggregates + per-scenario table for one batched online pass.
struct EnsembleReport {
  std::vector<ScenarioResult> scenarios;
  double online_wall_seconds = 0.0;  ///< wall time of the whole batched sweep
  double mean_online_seconds = 0.0;  ///< mean per-scenario online latency
  double max_online_seconds = 0.0;   ///< worst per-scenario online latency
  double mean_displacement_error = 0.0;
  double mean_displacement_correlation = 0.0;
  double mean_forecast_error = 0.0;  ///< the "ensemble-mean forecast error"
  double mean_forecast_correlation = 0.0;
  double mean_ci_coverage = 0.0;
  /// Distribution of the per-scenario online latencies (p50/p95/p99 via
  /// util/stats — the same estimator the service telemetry uses).
  LatencySummary online_latency;

  /// Paper-style text table: one row per scenario plus an aggregate footer
  /// and an online-latency percentile line.
  [[nodiscard]] std::string table() const;
};

/// A bank of rupture scenarios sharing one twin's precomputed operators.
///
/// Lifecycle: construct with specs, `synthesize()` ground truth (forward PDE
/// solves — this is experiment setup, not part of the online budget), build
/// the twin's offline phases once against `shared_noise()`, then call
/// `run_online()` as often as desired. `run_online` is const and touches only
/// immutable twin state, so banks can be swept repeatedly (e.g. while new
/// data streams in) or from multiple threads.
class ScenarioBank {
 public:
  /// The twin is held by reference; it must outlive the bank. The offline
  /// phases need not have run yet — only `run_online` requires them.
  ScenarioBank(const DigitalTwin& twin, std::vector<ScenarioSpec> specs);

  /// Owning variant (the warm-start path): the bank shares ownership of the
  /// twin, so a bundle-booted twin needs no separate keeper. Throws
  /// std::invalid_argument on a null twin.
  ScenarioBank(std::shared_ptr<const DigitalTwin> twin,
               std::vector<ScenarioSpec> specs);

  /// Warm-start an ensemble sweep from one artifact bundle: boot the twin
  /// from `bundle_path` (no PDE solves, no factorization — see
  /// DigitalTwin::load_offline), spread `n` scenarios over its footprint,
  /// and return a bank owning the twin. Every scenario in the sweep reuses
  /// the single shipped offline state; only `synthesize()` (experiment
  /// setup, not part of a deployment) still runs the forward model.
  [[nodiscard]] static ScenarioBank from_bundle(const std::string& bundle_path,
                                                std::size_t n,
                                                unsigned seed = 2025);

  /// Deterministic spread of `n` distinct compact scenarios over the twin's
  /// footprint: magnitude in [8.0, 9.1], epicenter swept along strike,
  /// rise time in [8, 16] s, rupture speed in [2000, 3000] m/s, and a
  /// distinct asperity layout per scenario.
  [[nodiscard]] static std::vector<ScenarioSpec> spread(const DigitalTwin& twin,
                                                        std::size_t n,
                                                        unsigned seed = 2025);

  /// Materialize a spec on the twin's footprint (generator + overrides).
  [[nodiscard]] RuptureConfig rupture_config(const ScenarioSpec& spec) const;

  /// Forward-model every scenario into noisy observations (PDE solves; the
  /// expensive, offline part of the experiment). Parallel over scenarios;
  /// every stochastic draw (asperity layout, noise) comes from a dedicated
  /// per-scenario seeded stream derived from `noise_seed` and the scenario
  /// index, so the synthesized bank is bit-identical regardless of thread
  /// count or scheduling (asserted in tests/test_scenario_bank.cpp). All
  /// events are noised at one absolute floor (the median of the per-event
  /// 1% calibrations): a real seafloor network has fixed instrument noise,
  /// and it keeps the offline Hessian exactly calibrated for every event in
  /// the bank.
  void synthesize(unsigned noise_seed = 7);

  /// The bank-wide noise floor used by `synthesize()`. The data-space
  /// Hessian is factorized once against this shared calibration, mirroring
  /// a deployed twin whose K is built for the network's noise floor rather
  /// than re-factorized per event. Requires `synthesize()`.
  [[nodiscard]] NoiseModel shared_noise() const;

  /// Batched Phase 4 over the whole bank. Requires `synthesize()` and the
  /// twin's offline phases. When `parallel` is true scenarios run
  /// concurrently via parallel_for (the online operators are immutable and
  /// every solve uses caller-local scratch); serial mode gives clean
  /// per-scenario latency measurements for benchmarking.
  [[nodiscard]] EnsembleReport run_online(bool parallel = true) const;

  /// Streaming sweep: replay every scenario in the bank tick-by-tick through
  /// `engine` (one lightweight assimilator per scenario, all sharing the
  /// engine's immutable precompute), concurrently when `parallel`. Reports
  /// per-scenario time-to-confident-forecast: the earliest tick after which
  /// the rolling forecast mean stays within `tolerance` (relative L2) of the
  /// final full-data forecast. Requires `synthesize()`; the engine must be
  /// built over this bank's twin.
  [[nodiscard]] StreamingSweepReport run_streaming(
      const StreamingEngine& engine, bool parallel = true,
      double tolerance = 0.05) const;

  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] const std::vector<ScenarioSpec>& specs() const { return specs_; }
  /// Synthesized events, aligned with `specs()`. Empty until `synthesize()`.
  [[nodiscard]] const std::vector<SyntheticEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const DigitalTwin& twin() const { return twin_; }

 private:
  std::shared_ptr<const DigitalTwin> owned_;  ///< set on the owning path only
  const DigitalTwin& twin_;
  std::vector<ScenarioSpec> specs_;
  std::vector<SyntheticEvent> events_;
};

}  // namespace tsunami
