#pragma once

// The Gaussian posterior N(m_map, Gamma_post) in SMW form (SecV-B):
//   m_map      = G* K^{-1} d_obs,
//   Gamma_post = Gamma_prior - G* K^{-1} G,
// with G = F Gamma_prior applied matrix-free through the FFT Toeplitz engine
// and the prior's banded solves — no PDE solves anywhere (the offline-online
// separation that makes Phase 4 real-time).

#include <cstddef>
#include <span>
#include <vector>

#include "core/data_space_hessian.hpp"
#include "prior/matern_prior.hpp"
#include "toeplitz/block_toeplitz.hpp"
#include "util/hot_path.hpp"
#include "util/rng.hpp"

namespace tsunami {

class Posterior {
 public:
  /// Reusable scratch for the apply/solve paths: the Toeplitz workspace plus
  /// the parameter- and data-space staging vectors each method needs. Same
  /// ownership rule as ToeplitzWorkspace: one caller thread at a time; after
  /// the first call at a given shape no method that takes a workspace
  /// allocates. The workspace-less overloads route through a thread_local
  /// instance, so they too are allocation-free in steady state and safe
  /// under concurrent callers.
  struct Workspace {
    ToeplitzWorkspace toeplitz;
    std::vector<double> param_a;  ///< parameter_dim staging (F^T y / G v)
    std::vector<double> param_b;  ///< parameter_dim staging (corrections)
    std::vector<double> data_a;   ///< data_dim staging (K^{-1} rhs)
    std::vector<double> data_b;   ///< data_dim staging
  };

  Posterior(const BlockToeplitz& f, const MaternPrior& prior,
            const DataSpaceHessian& hessian);

  [[nodiscard]] std::size_t parameter_dim() const { return f_.input_dim(); }
  [[nodiscard]] std::size_t data_dim() const { return f_.output_dim(); }
  [[nodiscard]] std::size_t spatial_dim() const { return f_.block_cols(); }
  [[nodiscard]] std::size_t time_dim() const { return f_.num_blocks(); }

  /// G* y = Gamma_prior F^T y  (data space -> parameter space).
  TSUNAMI_HOT_PATH void apply_gstar(std::span<const double> y,
                                    std::span<double> m) const;
  TSUNAMI_HOT_PATH void apply_gstar(std::span<const double> y,
                                    std::span<double> m, Workspace& ws) const;

  /// Multi-RHS G*: columns of `y_cols` (data_dim rows) mapped column-wise to
  /// `m_cols` (parameter_dim rows). Batches the Toeplitz transpose through
  /// the multi-RHS FFT path; used by the streaming engine to bake
  /// Gamma_prior F^T L^{-T} into a per-tick-updatable operator.
  void apply_gstar_many(const Matrix& y_cols, Matrix& m_cols) const;

  /// Prefix G*: treats `y` as the leading `ticks` observation intervals of a
  /// data-space vector (remaining intervals zero) and applies G*. This is
  /// exactly G restricted to the rows available at tick `ticks` — the
  /// adjoint the truncated (streaming) posterior needs. The zero padding is
  /// implicit in the FFT pack pass; no padded copy is built.
  TSUNAMI_HOT_PATH void apply_gstar_prefix(std::span<const double> y,
                                           std::size_t ticks,
                                           std::span<double> m) const;
  TSUNAMI_HOT_PATH void apply_gstar_prefix(std::span<const double> y,
                                           std::size_t ticks,
                                           std::span<double> m,
                                           Workspace& ws) const;

  /// G v = F Gamma_prior v  (parameter space -> data space).
  TSUNAMI_HOT_PATH void apply_g(std::span<const double> v,
                                std::span<double> d) const;
  TSUNAMI_HOT_PATH void apply_g(std::span<const double> v,
                                std::span<double> d, Workspace& ws) const;

  /// MAP point / posterior mean: m_map = G* K^{-1} d_obs.
  [[nodiscard]] std::vector<double> map_point(
      std::span<const double> d_obs) const;
  /// In-place MAP point into `m` (parameter_dim), no allocation.
  TSUNAMI_HOT_PATH void map_point(std::span<const double> d_obs,
                                  std::span<double> m, Workspace& ws) const;

  /// Reference MAP point over a reduced sensor network: builds the reduced
  /// data-space Hessian K[S,S] (S = rows of surviving channels) explicitly,
  /// solves it dense, and applies G* restricted to S. Deliberately
  /// brute-force — O(|S|^3) and requires the formed K (cold path only) — it
  /// is the independent oracle the degraded-mode streaming tests compare the
  /// O(r n^2) downdate/projection machinery against.
  [[nodiscard]] std::vector<double> map_point_masked(
      std::span<const double> d_obs, const SensorMask& mask) const;

  /// y = Gamma_post x  (one "billion-parameter inverse solve" per call in
  /// the paper's phrasing; here two Toeplitz matvecs + prior solves + one
  /// Cholesky solve).
  TSUNAMI_HOT_PATH void covariance_apply(std::span<const double> x,
                                         std::span<double> y) const;
  TSUNAMI_HOT_PATH void covariance_apply(std::span<const double> x,
                                         std::span<double> y,
                                         Workspace& ws) const;

  /// Pointwise posterior variance of parameter (spatial node r, interval t):
  /// (Gamma_post)_{(r,t),(r,t)} = (Gamma_prior)_rr - g^T K^{-1} g.
  [[nodiscard]] double pointwise_variance(std::size_t r, std::size_t t) const;

  /// Exact posterior sample via Matheron's update:
  ///   m = m_map + m_pr - G* K^{-1} (F m_pr + eps),
  /// with m_pr ~ N(0, Gamma_prior), eps ~ N(0, Gamma_noise).
  [[nodiscard]] std::vector<double> sample(std::span<const double> m_map,
                                           Rng& rng) const;

  [[nodiscard]] const BlockToeplitz& forward_map() const { return f_; }
  [[nodiscard]] const MaternPrior& prior() const { return prior_; }
  [[nodiscard]] const DataSpaceHessian& hessian() const { return hess_; }

 private:
  const BlockToeplitz& f_;
  const MaternPrior& prior_;
  const DataSpaceHessian& hess_;
};

}  // namespace tsunami
