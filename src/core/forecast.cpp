#include "core/forecast.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/blas.hpp"

namespace tsunami {

QoiPredictor::QoiPredictor(const BlockToeplitz& f, const BlockToeplitz& fq,
                           const MaternPrior& prior,
                           const DataSpaceHessian& hessian,
                           TimerRegistry* timers)
    : fq_(fq), nq_(fq.block_rows()), nt_(fq.num_blocks()) {
  const std::size_t nqoi = fq.output_dim();

  Stopwatch cov_watch;
  // Columns of Fq^T on unit vectors, then V = F Gamma_prior Fq^T and
  // W = Fq Gamma_prior Fq^T.
  Matrix units(nqoi, nqoi);
  for (std::size_t v = 0; v < nqoi; ++v) units(v, v) = 1.0;
  Matrix fqt_units;  // (Nm Nt) x nqoi
  fq.apply_transpose_many(units, fqt_units);

  Matrix v_mat;  // ndata x nqoi
  apply_f_prior(f, prior, fqt_units, v_mat);
  Matrix w_mat;  // nqoi x nqoi
  apply_f_prior(fq, prior, fqt_units, w_mat);

  // K^{-1} V.
  Matrix kinv_v(v_mat);
  hessian.cholesky().solve_in_place(kinv_v);

  // Gamma_post(q) = W - V^T K^{-1} V (symmetrized against roundoff).
  cov_q_ = Matrix(nqoi, nqoi);
  gemm_tn(v_mat, kinv_v, cov_q_);
  for (std::size_t i = 0; i < nqoi; ++i)
    for (std::size_t j = 0; j < nqoi; ++j)
      cov_q_(i, j) = w_mat(i, j) - cov_q_(i, j);
  for (std::size_t i = 0; i < nqoi; ++i)
    for (std::size_t j = i + 1; j < nqoi; ++j) {
      const double s = 0.5 * (cov_q_(i, j) + cov_q_(j, i));
      cov_q_(i, j) = s;
      cov_q_(j, i) = s;
    }
  std_q_.resize(nqoi);
  for (std::size_t i = 0; i < nqoi; ++i)
    std_q_[i] = std::sqrt(std::max(0.0, cov_q_(i, i)));
  if (timers) timers->add("compute Gamma_post(q)", cov_watch.seconds());

  Stopwatch q_watch;
  // Q = V^T K^{-1} = (K^{-1} V)^T (K symmetric).
  q_map_op_ = kinv_v.transposed();
  if (timers) timers->add("compute Q", q_watch.seconds());
}

QoiPredictor::QoiPredictor(const BlockToeplitz& fq, Matrix data_to_qoi,
                           Matrix qoi_cov)
    : fq_(fq),
      nq_(fq.block_rows()),
      nt_(fq.num_blocks()),
      q_map_op_(std::move(data_to_qoi)),
      cov_q_(std::move(qoi_cov)) {
  const std::size_t nqoi = fq.output_dim();
  if (q_map_op_.rows() != nqoi)
    throw std::invalid_argument("QoiPredictor: Q rows != Fq output dim");
  if (cov_q_.rows() != nqoi || cov_q_.cols() != nqoi)
    throw std::invalid_argument("QoiPredictor: Gamma_post(q) shape mismatch");
  std_q_.resize(nqoi);
  for (std::size_t i = 0; i < nqoi; ++i)
    std_q_[i] = std::sqrt(std::max(0.0, cov_q_(i, i)));
}

Forecast QoiPredictor::predict(std::span<const double> d_obs) const {
  if (d_obs.size() != data_dim())
    throw std::invalid_argument("QoiPredictor::predict: data size mismatch");
  Forecast fc;
  fc.num_gauges = nq_;
  fc.num_times = nt_;
  fc.mean.resize(qoi_dim());
  gemv(q_map_op_, d_obs, std::span<double>(fc.mean));
  fc.stddev = std_q_;
  fc.lower95.resize(qoi_dim());
  fc.upper95.resize(qoi_dim());
  for (std::size_t i = 0; i < qoi_dim(); ++i) {
    fc.lower95[i] = fc.mean[i] - 1.96 * std_q_[i];
    fc.upper95[i] = fc.mean[i] + 1.96 * std_q_[i];
  }
  return fc;
}

Forecast QoiPredictor::predict_prefix(std::span<const double> d_prefix,
                                      std::size_t ticks) const {
  const std::size_t nd = data_dim() / nt_;
  if (ticks > nt_ || d_prefix.size() < ticks * nd)
    throw std::invalid_argument("QoiPredictor::predict_prefix: bad prefix");
  std::vector<double> padded(data_dim(), 0.0);
  std::copy(d_prefix.begin(),
            d_prefix.begin() + static_cast<std::ptrdiff_t>(ticks * nd),
            padded.begin());
  return predict(padded);
}

void QoiPredictor::apply_fq_mean(std::span<const double> m,
                                 std::span<double> q) const {
  fq_.apply(m, q);
}

}  // namespace tsunami
