#pragma once

// Phase 2: the data-space Hessian.
//
// The Sherman-Morrison-Woodbury identity moves the inverse operator from the
// ~billion-dimensional parameter space to the data space (SecV-B):
//   Gamma_post = Gamma_prior - G* K^{-1} G,     G = F Gamma_prior,
//   K = Gamma_noise + F Gamma_prior F*          ("data-space Hessian"),
// and the MAP point becomes  m_map = G* K^{-1} d_obs.
//
// K is (Nd Nt) x (Nd Nt) dense; each column is one FFT-based Hessian matvec
// on a unit vector (Table III: "form K: 252k x 24 ms"), batched here through
// the multi-RHS Toeplitz engine, then Cholesky-factorized (cuSOLVERMp ->
// DenseCholesky).

#include <cstddef>
#include <memory>
#include <span>

#include "core/sensor_mask.hpp"
#include "linalg/dense.hpp"
#include "linalg/dense_cholesky.hpp"
#include "prior/matern_prior.hpp"
#include "toeplitz/block_toeplitz.hpp"
#include "util/timer.hpp"

namespace tsunami {

/// Gaussian observation-noise model: Gamma_noise = sigma^2 I.
struct NoiseModel {
  double sigma = 1.0;
  [[nodiscard]] double variance() const { return sigma * sigma; }
};

/// Relative noise calibration: sigma = level * max_i |d_i| (the paper's "1%
/// relative added noise").
[[nodiscard]] NoiseModel relative_noise(std::span<const double> d,
                                        double level);

class DataSpaceHessian {
 public:
  /// Forms and factorizes K. `batch` controls multi-RHS matvec batching.
  /// Records "form K" / "factorize K" timer samples.
  DataSpaceHessian(const BlockToeplitz& f, const MaternPrior& prior,
                   const NoiseModel& noise, std::size_t batch = 64,
                   TimerRegistry* timers = nullptr);

  /// Rebuild from a previously computed Cholesky factor (the warm-start
  /// path: the artifact bundle ships L, not K). Solves are bit-identical to
  /// the cold-built object's; the formed K itself is not retained (it is
  /// redundant given L), so matrix() throws and asymmetry() reports 0.
  [[nodiscard]] static DataSpaceHessian from_factor(Matrix l_factor,
                                                    const NoiseModel& noise);

  [[nodiscard]] std::size_t dim() const { return chol_->dim(); }
  /// The formed K. Only retained on the cold (form + factorize) path;
  /// throws std::logic_error on a warm-started (from_factor) instance.
  [[nodiscard]] const Matrix& matrix() const;
  [[nodiscard]] const DenseCholesky& cholesky() const { return *chol_; }
  [[nodiscard]] const NoiseModel& noise() const { return noise_; }

  /// y = K^{-1} x.
  void solve(std::span<const double> x, std::span<double> y) const;

  /// Degraded-mode factor edit (ISSUE 10): replace every observation row of
  /// a dropped channel by a pure-noise row, in place on the Cholesky factor.
  /// Rows p with mask.masked(p % channels_per_tick) have K's row/column p
  /// rewritten to sigma^2 e_p — exactly the Hessian of the network that never
  /// had those channels, at full dimension — via one rank-2
  /// (update + hyperbolic downdate) pair per row: O(r n^2) for r dropped
  /// rows versus O(n^3) refactorization. Already-decoupled rows are skipped,
  /// so the edit is idempotent. Works on warm (from_factor) instances; the
  /// retained K of a cold instance is kept consistent.
  void decouple_channels(const SensorMask& mask, std::size_t channels_per_tick);

  /// Asymmetry of the formed K before symmetrization: max |K - K^T| /
  /// max |K|; a structural check on F/F* consistency (should be ~1e-14).
  [[nodiscard]] double asymmetry() const { return asymmetry_; }

 private:
  DataSpaceHessian() = default;  ///< for from_factor

  Matrix k_;  ///< empty on the from_factor path
  std::unique_ptr<DenseCholesky> chol_;
  NoiseModel noise_;
  double asymmetry_ = 0.0;
};

/// B = F Gamma_prior A for a tall matrix A given column-wise (space-time
/// rows), batched: used for K columns, the V = F Gq* matrix of Phase 3, and
/// posterior probing. `a_cols` has input_dim rows. The workspace overload
/// reuses `ga_scratch` (the Gamma_prior A staging matrix) and the Toeplitz
/// workspace across calls — the K-forming loop invokes this once per column
/// batch and would otherwise reallocate both every iteration.
void apply_f_prior(const BlockToeplitz& f, const MaternPrior& prior,
                   const Matrix& a_cols, Matrix& out_cols);
void apply_f_prior(const BlockToeplitz& f, const MaternPrior& prior,
                   const Matrix& a_cols, Matrix& out_cols, Matrix& ga_scratch,
                   ToeplitzWorkspace& ws);

}  // namespace tsunami
