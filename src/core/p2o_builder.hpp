#pragma once

// Phase 1 of the offline-online decomposition: precompute the block Toeplitz
// p2o map F (one adjoint wave propagation per sensor) and p2q map Fq (one per
// QoI forecast location). Table III rows "form F" / "form Fq".

#include <memory>

#include "toeplitz/block_toeplitz.hpp"
#include "util/timer.hpp"
#include "wave/adjoint.hpp"
#include "wave/observation.hpp"

namespace tsunami {

/// Result of Phase 1 for one observation operator: the Toeplitz map plus the
/// raw first-block-column storage (kept for dense reference paths/tests).
struct P2oMap {
  std::unique_ptr<BlockToeplitz> toeplitz;
  std::vector<double> blocks;  ///< [(k * nrows + s) * Nm + r]
  std::size_t nrows = 0;       ///< Nd (or Nq)
  std::size_t ncols = 0;       ///< Nm
  std::size_t nt = 0;          ///< Nt
};

/// How the outer loop over observation rows (one adjoint solve each) runs.
struct P2oBuildOptions {
  /// Opt-in: run the adjoint solves concurrently (they are embarrassingly
  /// parallel — the paper spreads them across the machine; each solve uses
  /// only local state over a const model and writes disjoint block rows, so
  /// the assembled map is bit-identical to the serial build). Off by
  /// default: the serial loop keeps the per-solve "Adjoint p2o" timer
  /// samples meaningful (Table III measures one propagation at a time), and
  /// the threaded inner kernels already own the cores on small runs.
  bool parallel_rows = false;
};

/// Runs `obs.num_outputs()` adjoint propagations and assembles the block
/// Toeplitz map. Serial mode records per-solve "Setup"/"Adjoint p2o" timer
/// samples; parallel mode records one aggregate "Adjoint p2o (parallel)"
/// wall sample instead (per-thread samples from inside the region would
/// measure thread wall time, not the region's — the registry itself is
/// thread-safe).
[[nodiscard]] P2oMap build_p2o_map(const AcousticGravityModel& model,
                                   const ObservationOperator& obs,
                                   const TimeGrid& grid,
                                   TimerRegistry* timers = nullptr,
                                   const P2oBuildOptions& options = {});

}  // namespace tsunami
