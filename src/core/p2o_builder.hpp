#pragma once

// Phase 1 of the offline-online decomposition: precompute the block Toeplitz
// p2o map F (one adjoint wave propagation per sensor) and p2q map Fq (one per
// QoI forecast location). Table III rows "form F" / "form Fq".

#include <memory>

#include "toeplitz/block_toeplitz.hpp"
#include "util/timer.hpp"
#include "wave/adjoint.hpp"
#include "wave/observation.hpp"

namespace tsunami {

/// Result of Phase 1 for one observation operator: the Toeplitz map plus the
/// raw first-block-column storage (kept for dense reference paths/tests).
struct P2oMap {
  std::unique_ptr<BlockToeplitz> toeplitz;
  std::vector<double> blocks;  ///< [(k * nrows + s) * Nm + r]
  std::size_t nrows = 0;       ///< Nd (or Nq)
  std::size_t ncols = 0;       ///< Nm
  std::size_t nt = 0;          ///< Nt
};

/// Runs `obs.num_outputs()` adjoint propagations (the paper parallelizes
/// these across the machine; they are embarrassingly parallel) and assembles
/// the block Toeplitz map. Records "Setup"/"Adjoint p2o" timer samples.
[[nodiscard]] P2oMap build_p2o_map(const AcousticGravityModel& model,
                                   const ObservationOperator& obs,
                                   const TimeGrid& grid,
                                   TimerRegistry* timers = nullptr);

}  // namespace tsunami
