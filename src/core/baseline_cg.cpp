#include "core/baseline_cg.hpp"

#include "linalg/blas.hpp"
#include "linalg/cg.hpp"
#include "util/timer.hpp"

namespace tsunami {

BaselineResult baseline_cg_solve(const AcousticGravityModel& model,
                                 const ObservationOperator& obs,
                                 const TimeGrid& grid,
                                 const MaternPrior& prior,
                                 const NoiseModel& noise,
                                 std::span<const double> d_obs,
                                 const BaselineOptions& opts) {
  const std::size_t nm = model.source_map().parameter_dim();
  const std::size_t nt = grid.num_intervals;
  const std::size_t n = nm * nt;
  const double inv_var = 1.0 / noise.variance();

  BaselineResult result;
  result.m_map.assign(n, 0.0);
  Stopwatch watch;

  std::size_t pde_solves = 0;
  // H v = F^T Gn^{-1} F v + Gp^{-1} v; each application = one forward + one
  // adjoint wave propagation (the conventional Hessian matvec).
  const LinearOp hessian = [&](std::span<const double> v,
                               std::span<double> out) {
    std::vector<double> d(d_obs.size());
    forward_p2o_apply(model, obs, grid, v, std::span<double>(d));
    ++pde_solves;
    for (auto& x : d) x *= inv_var;
    adjoint_p2o_transpose_apply(model, obs, grid, d, out);
    ++pde_solves;
    std::vector<double> reg(n);
    for (std::size_t t = 0; t < nt; ++t)
      prior.apply_inverse(v.subspan(t * nm, nm),
                          std::span<double>(reg).subspan(t * nm, nm));
    axpy(1.0, reg, out);
  };

  // Prior-preconditioned CG (SecIV: "preconditioned by the prior
  // covariance, thus involving elliptic PDE solves").
  const LinearOp precond = [&](std::span<const double> v,
                               std::span<double> out) {
    prior.apply_time_blocks(v, out, nt);
  };

  // RHS = F^T Gn^{-1} d_obs (one adjoint propagation).
  std::vector<double> rhs(n);
  {
    std::vector<double> scaled(d_obs.begin(), d_obs.end());
    for (auto& x : scaled) x *= inv_var;
    adjoint_p2o_transpose_apply(model, obs, grid, scaled,
                                std::span<double>(rhs));
    ++pde_solves;
  }

  CgOptions cg_opts;
  cg_opts.max_iterations = opts.max_iterations;
  cg_opts.relative_tolerance = opts.relative_tolerance;
  const CgResult cg = preconditioned_conjugate_gradient(
      hessian, precond, rhs, std::span<double>(result.m_map), cg_opts);

  result.cg_iterations = cg.iterations;
  result.pde_solves = pde_solves;
  result.seconds = watch.seconds();
  result.relative_residual =
      cg.initial_residual > 0 ? cg.residual_norm / cg.initial_residual : 0.0;
  result.converged = cg.converged;
  return result;
}

}  // namespace tsunami
