#include "core/posterior.hpp"

#include <stdexcept>

#include "linalg/blas.hpp"
#include "parallel/parallel_for.hpp"

namespace tsunami {

Posterior::Posterior(const BlockToeplitz& f, const MaternPrior& prior,
                     const DataSpaceHessian& hessian)
    : f_(f), prior_(prior), hess_(hessian) {
  if (prior_.dim() != f_.block_cols())
    throw std::invalid_argument("Posterior: prior/spatial dim mismatch");
  if (hess_.dim() != f_.output_dim())
    throw std::invalid_argument("Posterior: Hessian/data dim mismatch");
}

void Posterior::apply_gstar(std::span<const double> y,
                            std::span<double> m) const {
  std::vector<double> ft(parameter_dim());
  f_.apply_transpose(y, std::span<double>(ft));
  prior_.apply_time_blocks(ft, m, time_dim());
}

void Posterior::apply_gstar_many(const Matrix& y_cols, Matrix& m_cols) const {
  if (y_cols.rows() != data_dim())
    throw std::invalid_argument("Posterior::apply_gstar_many: row mismatch");
  Matrix ft_cols;  // parameter_dim x nrhs
  f_.apply_transpose_many(y_cols, ft_cols);
  const std::size_t nrhs = y_cols.cols();
  m_cols = Matrix(parameter_dim(), nrhs);
  parallel_for_min(nrhs, 2, [&](std::size_t c) {
    std::vector<double> in(parameter_dim()), out(parameter_dim());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = ft_cols(i, c);
    prior_.apply_time_blocks(in, std::span<double>(out), time_dim());
    for (std::size_t i = 0; i < out.size(); ++i) m_cols(i, c) = out[i];
  });
}

void Posterior::apply_gstar_prefix(std::span<const double> y, std::size_t ticks,
                                   std::span<double> m) const {
  const std::size_t nd = f_.block_rows();
  if (ticks > time_dim() || y.size() < ticks * nd)
    throw std::invalid_argument("Posterior::apply_gstar_prefix: bad prefix");
  // Zero-padding the unseen intervals is exact: the missing rows of F
  // contribute nothing to F^T y when their data weights are zero.
  std::vector<double> padded(data_dim(), 0.0);
  std::copy(y.begin(), y.begin() + static_cast<std::ptrdiff_t>(ticks * nd),
            padded.begin());
  apply_gstar(padded, m);
}

void Posterior::apply_g(std::span<const double> v, std::span<double> d) const {
  std::vector<double> gv(parameter_dim());
  prior_.apply_time_blocks(v, std::span<double>(gv), time_dim());
  f_.apply(gv, d);
}

std::vector<double> Posterior::map_point(std::span<const double> d_obs) const {
  std::vector<double> y(data_dim());
  hess_.solve(d_obs, std::span<double>(y));
  std::vector<double> m(parameter_dim());
  apply_gstar(y, std::span<double>(m));
  return m;
}

void Posterior::covariance_apply(std::span<const double> x,
                                 std::span<double> y) const {
  if (x.size() != parameter_dim() || y.size() != parameter_dim())
    throw std::invalid_argument("Posterior::covariance_apply: size mismatch");
  // y = Gamma_prior x - G* K^{-1} G x.
  std::vector<double> gx(data_dim());
  apply_g(x, std::span<double>(gx));
  std::vector<double> kinv_gx(data_dim());
  hess_.solve(gx, std::span<double>(kinv_gx));
  std::vector<double> corr(parameter_dim());
  apply_gstar(kinv_gx, std::span<double>(corr));
  prior_.apply_time_blocks(x, y, time_dim());
  axpy(-1.0, corr, y);
}

double Posterior::pointwise_variance(std::size_t r, std::size_t t) const {
  if (r >= spatial_dim() || t >= time_dim())
    throw std::out_of_range("Posterior::pointwise_variance");
  // g = G e_{(r,t)}: prior applied to a spatial unit vector in block t.
  std::vector<double> unit(spatial_dim(), 0.0);
  unit[r] = 1.0;
  std::vector<double> prior_col(spatial_dim());
  prior_.apply(unit, std::span<double>(prior_col));
  std::vector<double> v(parameter_dim(), 0.0);
  std::copy(prior_col.begin(), prior_col.end(),
            v.begin() + static_cast<std::ptrdiff_t>(t * spatial_dim()));
  std::vector<double> g(data_dim());
  f_.apply(v, std::span<double>(g));
  std::vector<double> kg(data_dim());
  hess_.solve(g, std::span<double>(kg));
  const double correction = dot(g, kg);
  return prior_.pointwise_variance(r) - correction;
}

std::vector<double> Posterior::sample(std::span<const double> m_map,
                                      Rng& rng) const {
  if (m_map.size() != parameter_dim())
    throw std::invalid_argument("Posterior::sample: m_map size mismatch");
  // Prior draw, block-iid in time.
  std::vector<double> m_pr(parameter_dim());
  for (std::size_t t = 0; t < time_dim(); ++t) {
    const auto block = prior_.sample(rng);
    std::copy(block.begin(), block.end(),
              m_pr.begin() + static_cast<std::ptrdiff_t>(t * spatial_dim()));
  }
  // Synthetic data residual: F m_pr + eps.
  std::vector<double> d(data_dim());
  f_.apply(m_pr, std::span<double>(d));
  for (auto& v : d) v += hess_.noise().sigma * rng.normal();
  std::vector<double> kd(data_dim());
  hess_.solve(d, std::span<double>(kd));
  std::vector<double> corr(parameter_dim());
  apply_gstar(kd, std::span<double>(corr));

  std::vector<double> out(m_map.begin(), m_map.end());
  axpy(1.0, m_pr, std::span<double>(out));
  axpy(-1.0, corr, std::span<double>(out));
  return out;
}

}  // namespace tsunami
