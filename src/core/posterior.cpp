#include "core/posterior.hpp"

#include <stdexcept>

#include "linalg/blas.hpp"
#include "parallel/parallel_for.hpp"

namespace tsunami {

namespace {

/// Backs the workspace-less overloads: per-thread, so the legacy API stays
/// allocation-free in steady state and safe under concurrent callers.
Posterior::Workspace& tls_workspace() {
  static thread_local Posterior::Workspace ws;
  return ws;
}

}  // namespace

Posterior::Posterior(const BlockToeplitz& f, const MaternPrior& prior,
                     const DataSpaceHessian& hessian)
    : f_(f), prior_(prior), hess_(hessian) {
  if (prior_.dim() != f_.block_cols())
    throw std::invalid_argument("Posterior: prior/spatial dim mismatch");
  if (hess_.dim() != f_.output_dim())
    throw std::invalid_argument("Posterior: Hessian/data dim mismatch");
}

TSUNAMI_HOT_PATH void Posterior::apply_gstar(std::span<const double> y,
                                             std::span<double> m,
                                             Workspace& ws) const {
  ws.param_a.resize(parameter_dim());  // lint: allow(hot-path-alloc) grow-once workspace
  f_.apply_transpose(y, std::span<double>(ws.param_a), ws.toeplitz);
  prior_.apply_time_blocks(ws.param_a, m, time_dim());
}

TSUNAMI_HOT_PATH void Posterior::apply_gstar(std::span<const double> y,
                                             std::span<double> m) const {
  apply_gstar(y, m, tls_workspace());
}

void Posterior::apply_gstar_many(const Matrix& y_cols, Matrix& m_cols) const {
  if (y_cols.rows() != data_dim())
    throw std::invalid_argument("Posterior::apply_gstar_many: row mismatch");
  Matrix ft_cols;  // parameter_dim x nrhs
  f_.apply_transpose_many(y_cols, ft_cols);
  prior_.apply_time_blocks_columns(ft_cols, m_cols, time_dim());
}

TSUNAMI_HOT_PATH void Posterior::apply_gstar_prefix(std::span<const double> y,
                                                    std::size_t ticks,
                                                    std::span<double> m,
                                                    Workspace& ws) const {
  const std::size_t nd = f_.block_rows();
  if (ticks > time_dim() || y.size() < ticks * nd)
    throw std::invalid_argument("Posterior::apply_gstar_prefix: bad prefix");
  // Zero-padding the unseen intervals is exact: the missing rows of F
  // contribute nothing to F^T y when their data weights are zero. The
  // Toeplitz prefix path pads inside the FFT pack — no padded copy here.
  ws.param_a.resize(parameter_dim());  // lint: allow(hot-path-alloc) grow-once workspace
  f_.apply_transpose_prefix(y.first(ticks * nd), ticks,
                            std::span<double>(ws.param_a), ws.toeplitz);
  prior_.apply_time_blocks(ws.param_a, m, time_dim());
}

TSUNAMI_HOT_PATH void Posterior::apply_gstar_prefix(std::span<const double> y,
                                                    std::size_t ticks,
                                                    std::span<double> m) const {
  apply_gstar_prefix(y, ticks, m, tls_workspace());
}

TSUNAMI_HOT_PATH void Posterior::apply_g(std::span<const double> v,
                                         std::span<double> d,
                                         Workspace& ws) const {
  ws.param_a.resize(parameter_dim());  // lint: allow(hot-path-alloc) grow-once workspace
  prior_.apply_time_blocks(v, std::span<double>(ws.param_a), time_dim());
  f_.apply(ws.param_a, d, ws.toeplitz);
}

TSUNAMI_HOT_PATH void Posterior::apply_g(std::span<const double> v,
                                         std::span<double> d) const {
  apply_g(v, d, tls_workspace());
}

TSUNAMI_HOT_PATH void Posterior::map_point(std::span<const double> d_obs,
                                           std::span<double> m,
                                           Workspace& ws) const {
  if (d_obs.size() != data_dim() || m.size() != parameter_dim())
    throw std::invalid_argument("Posterior::map_point: size mismatch");
  ws.data_a.resize(data_dim());  // lint: allow(hot-path-alloc) grow-once workspace
  hess_.solve(d_obs, std::span<double>(ws.data_a));
  apply_gstar(ws.data_a, m, ws);
}

std::vector<double> Posterior::map_point(std::span<const double> d_obs) const {
  std::vector<double> m(parameter_dim());
  map_point(d_obs, std::span<double>(m), tls_workspace());
  return m;
}

std::vector<double> Posterior::map_point_masked(std::span<const double> d_obs,
                                                const SensorMask& mask) const {
  if (d_obs.size() != data_dim())
    throw std::invalid_argument("Posterior::map_point_masked: size mismatch");
  const std::size_t nd = f_.block_rows();
  if (mask.size() != nd)
    throw std::invalid_argument(
        "Posterior::map_point_masked: mask size mismatch");
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < data_dim(); ++i)
    if (!mask.masked(i % nd)) live.push_back(i);
  const Matrix& k = hess_.matrix();
  Matrix ks(live.size(), live.size());
  for (std::size_t a = 0; a < live.size(); ++a)
    for (std::size_t b = 0; b < live.size(); ++b)
      ks(a, b) = k(live[a], live[b]);
  DenseCholesky chol(ks);
  std::vector<double> rhs(live.size());
  for (std::size_t a = 0; a < live.size(); ++a) rhs[a] = d_obs[live[a]];
  chol.solve_in_place(rhs);
  std::vector<double> y(data_dim(), 0.0);
  for (std::size_t a = 0; a < live.size(); ++a) y[live[a]] = rhs[a];
  std::vector<double> m(parameter_dim());
  apply_gstar(y, std::span<double>(m));
  return m;
}

TSUNAMI_HOT_PATH void Posterior::covariance_apply(std::span<const double> x,
                                                  std::span<double> y,
                                                  Workspace& ws) const {
  if (x.size() != parameter_dim() || y.size() != parameter_dim())
    throw std::invalid_argument("Posterior::covariance_apply: size mismatch");
  // y = Gamma_prior x - G* K^{-1} G x.
  ws.data_a.resize(data_dim());  // lint: allow(hot-path-alloc) grow-once workspace
  ws.data_b.resize(data_dim());  // lint: allow(hot-path-alloc) grow-once workspace
  ws.param_b.resize(parameter_dim());  // lint: allow(hot-path-alloc) grow-once workspace
  apply_g(x, std::span<double>(ws.data_a), ws);
  hess_.solve(ws.data_a, std::span<double>(ws.data_b));
  apply_gstar(ws.data_b, std::span<double>(ws.param_b), ws);
  prior_.apply_time_blocks(x, y, time_dim());
  axpy(-1.0, ws.param_b, y);
}

TSUNAMI_HOT_PATH void Posterior::covariance_apply(std::span<const double> x,
                                                  std::span<double> y) const {
  covariance_apply(x, y, tls_workspace());
}

double Posterior::pointwise_variance(std::size_t r, std::size_t t) const {
  if (r >= spatial_dim() || t >= time_dim())
    throw std::out_of_range("Posterior::pointwise_variance");
  // g = G e_{(r,t)}: prior applied to a spatial unit vector in block t.
  std::vector<double> unit(spatial_dim(), 0.0);
  unit[r] = 1.0;
  std::vector<double> prior_col(spatial_dim());
  prior_.apply(unit, std::span<double>(prior_col));
  std::vector<double> v(parameter_dim(), 0.0);
  std::copy(prior_col.begin(), prior_col.end(),
            v.begin() + static_cast<std::ptrdiff_t>(t * spatial_dim()));
  std::vector<double> g(data_dim());
  f_.apply(v, std::span<double>(g));
  std::vector<double> kg(data_dim());
  hess_.solve(g, std::span<double>(kg));
  const double correction = dot(g, kg);
  return prior_.pointwise_variance(r) - correction;
}

std::vector<double> Posterior::sample(std::span<const double> m_map,
                                      Rng& rng) const {
  if (m_map.size() != parameter_dim())
    throw std::invalid_argument("Posterior::sample: m_map size mismatch");
  // Prior draw, block-iid in time.
  std::vector<double> m_pr(parameter_dim());
  for (std::size_t t = 0; t < time_dim(); ++t) {
    const auto block = prior_.sample(rng);
    std::copy(block.begin(), block.end(),
              m_pr.begin() + static_cast<std::ptrdiff_t>(t * spatial_dim()));
  }
  // Synthetic data residual: F m_pr + eps.
  std::vector<double> d(data_dim());
  f_.apply(m_pr, std::span<double>(d));
  for (auto& v : d) v += hess_.noise().sigma * rng.normal();
  std::vector<double> kd(data_dim());
  hess_.solve(d, std::span<double>(kd));
  std::vector<double> corr(parameter_dim());
  apply_gstar(kd, std::span<double>(corr));

  std::vector<double> out(m_map.begin(), m_map.end());
  axpy(1.0, m_pr, std::span<double>(out));
  axpy(-1.0, corr, std::span<double>(out));
  return out;
}

}  // namespace tsunami
