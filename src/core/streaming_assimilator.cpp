#include "core/streaming_assimilator.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "linalg/blas.hpp"
#include "parallel/parallel_for.hpp"

namespace tsunami {

namespace {

/// out += slab[p0:p1, :]^T z[p0:p1] — the per-tick truncated-posterior
/// accumulation. Column-tiled so the output tile stays in L1 across all
/// block rows: the naive row-by-row axpy re-streams the whole output vector
/// (Nm Nt doubles) once per sensor, which dominated push latency for the
/// MAP slab. The slab rows themselves are read exactly once either way.
void accumulate_block_rows(const Matrix& slab, const std::vector<double>& z,
                           std::size_t p0, std::size_t p1,
                           std::vector<double>& out) {
  constexpr std::size_t kTile = 1024;  // 8 KB: half of a typical L1d
  const std::size_t ncols = slab.cols();
  const double* w = slab.data();
  double* m = out.data();
  for (std::size_t c0 = 0; c0 < ncols; c0 += kTile) {
    const std::size_t c1 = std::min(c0 + kTile, ncols);
    for (std::size_t j = p0; j < p1; ++j) {
      const double zj = z[j];
      const double* row = w + j * ncols;
      for (std::size_t c = c0; c < c1; ++c) m[c] += zj * row[c];
    }
  }
}

}  // namespace

StreamingEngine::StreamingEngine(const Posterior& posterior,
                                 const QoiPredictor& predictor,
                                 const StreamingOptions& options,
                                 TimerRegistry* timers,
                                 std::shared_ptr<const void> lifetime)
    : post_(posterior),
      pred_(predictor),
      lifetime_(lifetime),
      guarded_(lifetime != nullptr),
      opts_(options),
      nd_(posterior.forward_map().block_rows()),
      nt_(posterior.time_dim()),
      n_(posterior.data_dim()),
      np_(posterior.parameter_dim()),
      nqoi_(predictor.qoi_dim()) {
  if (predictor.data_dim() != n_)
    throw std::invalid_argument(
        "StreamingEngine: posterior/predictor data dim mismatch");

  Stopwatch watch;
  const DenseCholesky& chol = post_.hessian().cholesky();

  // R = L^{-1} V: the forecast slab. Forward substitution keeps the rows
  // causal, so row block t is exactly what tick t contributes. Computed
  // without materializing V: from Q = V^T K^{-1} and K = L L^T it follows
  // that R = L^{-1} (K Q^T) = L^T Q^T — a triangular product of operators
  // the predictor already retains (no extra Phase 3 storage).
  const Matrix qt = predictor.data_to_qoi().transposed();  // n x nqoi
  const Matrix& l = chol.factor();
  r_ = Matrix(n_, nqoi_);
  parallel_for_min(n_, 8, [&](std::size_t i) {
    // r_(i, :) = sum_{j >= i} L(j, i) Q^T(j, :), all rows contiguous. The
    // factor is dense below the diagonal — no per-entry zero test (the
    // branch cost a compare per FMA and defeated vectorization).
    auto out = r_.row(i);
    for (std::size_t j = i; j < n_; ++j) {
      const double lji = l(j, i);
      const auto qrow = qt.row(j);
      for (std::size_t c = 0; c < nqoi_; ++c) out[c] += lji * qrow[c];
    }
  });

  // Credible-interval schedule: diag Gamma_post(q, t) = diag Gamma_post(q) +
  // the *tail* sum of squares down the columns of R (the information the
  // ticks still to come would add). Accumulating from the final tick makes
  // the schedule exactly monotone and lands exactly on the batch posterior
  // width. Data-independent — one table for every event this network will
  // ever stream.
  const Matrix& cov_q = predictor.qoi_covariance();
  std_schedule_ = Matrix(nt_ + 1, nqoi_);
  std::vector<double> tail(nqoi_, 0.0);
  for (std::size_t i = 0; i < nqoi_; ++i)
    std_schedule_(nt_, i) = std::sqrt(std::max(0.0, cov_q(i, i)));
  for (std::size_t t = nt_; t-- > 0;) {
    for (std::size_t j = t * nd_; j < (t + 1) * nd_; ++j) {
      const auto row = r_.row(j);
      for (std::size_t i = 0; i < nqoi_; ++i) tail[i] += row[i] * row[i];
    }
    for (std::size_t i = 0; i < nqoi_; ++i)
      std_schedule_(t, i) =
          std::sqrt(std::max(0.0, cov_q(i, i)) + tail[i]);
  }

  if (opts_.track_map) {
    // W* = L^{-1} F Gamma_prior, materialized row-major so each tick's block
    // rows are contiguous slabs. Built as (Gamma_prior F^T L^{-T})^T from
    // backward solves on unit vectors — n of them, not Nm*Nt. Scoped so the
    // n x n triangular inverse is freed before the slab transpose (the
    // transient peak is the largest allocation in the program).
    Matrix gstar_cols;  // (Nm Nt) x n
    {
      Matrix linv_t(n_, n_);  // columns: L^{-T} e_j
      parallel_for_min(n_, 4, [&](std::size_t j) {
        std::vector<double> col(n_, 0.0);
        col[j] = 1.0;
        chol.backward_solve_in_place(col);
        for (std::size_t i = 0; i < n_; ++i) linv_t(i, j) = col[i];
      });
      post_.apply_gstar_many(linv_t, gstar_cols);
    }
    wstar_ = gstar_cols.transposed();
  }

  precompute_seconds_ = watch.seconds();
  if (timers) timers->add("streaming: precompute", precompute_seconds_);
}

void StreamingEngine::check_alive(const char* what) const {
  if (!operators_alive())
    throw std::logic_error(
        std::string(what) +
        ": the twin that owns this engine's operators was destroyed or its "
        "offline state was rebuilt — rebuild the engine via make_streaming");
}

StreamingAssimilator StreamingEngine::start() const {
  check_alive("StreamingEngine::start");
  return StreamingAssimilator(*this);
}

std::span<const double> StreamingEngine::stddev_after(std::size_t ticks) const {
  if (ticks > nt_)
    throw std::out_of_range("StreamingEngine::stddev_after: tick out of range");
  return std_schedule_.row(ticks);
}

StreamingAssimilator::StreamingAssimilator(const StreamingEngine& engine)
    : eng_(engine),
      z_(engine.data_dim(), 0.0),
      q_mean_(engine.qoi_dim(), 0.0),
      m_map_(engine.tracks_map() ? engine.parameter_dim() : 0, 0.0) {}

void StreamingAssimilator::push(std::size_t tick,
                                std::span<const double> d_block) {
  eng_.check_alive("StreamingAssimilator::push");
  if (complete())
    throw std::logic_error("StreamingAssimilator::push: event window full");
  if (tick != t_)
    throw std::invalid_argument(
        "StreamingAssimilator::push: out-of-order tick");
  if (d_block.size() != eng_.block_size())
    throw std::invalid_argument(
        "StreamingAssimilator::push: block size mismatch");

  Stopwatch watch;
  const std::size_t p0 = t_ * eng_.block_size();
  const std::size_t p1 = p0 + eng_.block_size();
  std::copy(d_block.begin(), d_block.end(), z_.begin() + p0);
  // Extend z = L^{-1} d by one block row (causality of forward substitution).
  eng_.post_.hessian().cholesky().forward_solve_range(z_, p0, p1);
  // Accumulate the new block's contribution to the truncated posterior,
  // column-tiled (one output sweep per tick, not one per sensor).
  accumulate_block_rows(eng_.r_, z_, p0, p1, q_mean_);
  if (eng_.tracks_map())
    accumulate_block_rows(eng_.wstar_, z_, p0, p1, m_map_);
  ++t_;
  last_push_seconds_ = watch.seconds();
  total_push_seconds_ += last_push_seconds_;
}

void StreamingAssimilator::forecast_into(Forecast& fc) const {
  eng_.check_alive("StreamingAssimilator::forecast");
  fc.num_gauges = eng_.pred_.num_gauges();
  fc.num_times = eng_.pred_.num_times();
  // assign/resize reuse existing capacity: after the first call on a given
  // Forecast this is copy-only — the per-tick publish path never allocates.
  fc.mean.assign(q_mean_.begin(), q_mean_.end());
  const auto sd = eng_.stddev_after(t_);
  fc.stddev.assign(sd.begin(), sd.end());
  fc.lower95.resize(q_mean_.size());
  fc.upper95.resize(q_mean_.size());
  for (std::size_t i = 0; i < q_mean_.size(); ++i) {
    fc.lower95[i] = fc.mean[i] - 1.96 * fc.stddev[i];
    fc.upper95[i] = fc.mean[i] + 1.96 * fc.stddev[i];
  }
}

Forecast StreamingAssimilator::forecast() const {
  Forecast fc;
  forecast_into(fc);
  return fc;
}

const std::vector<double>& StreamingAssimilator::map_estimate() const {
  if (!eng_.tracks_map())
    throw std::logic_error(
        "StreamingAssimilator::map_estimate: engine built with track_map off "
        "(use map_snapshot)");
  return m_map_;
}

std::vector<double> StreamingAssimilator::map_snapshot() const {
  eng_.check_alive("StreamingAssimilator::map_snapshot");
  const std::size_t p = t_ * eng_.block_size();
  // u = K_p^{-1} d_p: the forward half is already cached in z; finish with
  // the prefix backward substitution, then lift through G* on the prefix.
  // Scratch lives in the per-event workspace (this object is single-caller
  // by contract — the service hands a session to one worker at a time), so
  // only the returned vector allocates.
  snapshot_u_.resize(p);
  std::copy(z_.begin(), z_.begin() + static_cast<std::ptrdiff_t>(p),
            snapshot_u_.begin());
  eng_.post_.hessian().cholesky().backward_solve_prefix(snapshot_u_, p);
  std::vector<double> m(eng_.parameter_dim(), 0.0);
  if (p > 0)
    eng_.post_.apply_gstar_prefix(snapshot_u_, t_, std::span<double>(m), ws_);
  return m;
}

void StreamingAssimilator::reset() {
  t_ = 0;
  std::fill(z_.begin(), z_.end(), 0.0);
  std::fill(q_mean_.begin(), q_mean_.end(), 0.0);
  std::fill(m_map_.begin(), m_map_.end(), 0.0);
  last_push_seconds_ = 0.0;
  total_push_seconds_ = 0.0;
}

}  // namespace tsunami
