#include "core/streaming_assimilator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "linalg/blas.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"

namespace tsunami {

namespace {

constexpr std::size_t kAccTile = 1024;  // 8 KB: half of a typical L1d

/// m[c0:c1] += zj * row[c0:c1] — the one FMA stream both the single-event
/// and the batched accumulation paths are built from. Sharing this kernel is
/// what makes push_many bit-identical to serial pushes BY CONSTRUCTION: per
/// (event, output column) the adds are the same operations in the same
/// order either way.
TSUNAMI_HOT_PATH inline void accumulate_row_tile(const double* row, double zj,
                                                 double* m, std::size_t c0,
                                                 std::size_t c1) {
  for (std::size_t c = c0; c < c1; ++c) m[c] += zj * row[c];
}

/// out += slab[p0:p1, :]^T z[p0:p1] — the per-tick truncated-posterior
/// accumulation. Column-tiled so the output tile stays in L1 across all
/// block rows: the naive row-by-row axpy re-streams the whole output vector
/// (Nm Nt doubles) once per sensor, which dominated push latency for the
/// MAP slab. The slab rows themselves are read exactly once either way.
TSUNAMI_HOT_PATH void accumulate_block_rows(const Matrix& slab,
                                            const std::vector<double>& z,
                                            std::size_t p0, std::size_t p1,
                                            std::vector<double>& out) {
  const std::size_t ncols = slab.cols();
  const double* w = slab.data();
  double* m = out.data();
  for (std::size_t c0 = 0; c0 < ncols; c0 += kAccTile) {
    const std::size_t c1 = std::min(c0 + kAccTile, ncols);
    for (std::size_t j = p0; j < p1; ++j) {
      accumulate_row_tile(w + j * ncols, z[j], m, c0, c1);
    }
  }
}

/// Batched variant: outs[k] += slab[p0:p1, :]^T zs[k][p0:p1] for all K
/// events in ONE sweep over the slab rows — each row (the bandwidth cost)
/// is loaded once and reused K times. Tiles are independent (disjoint
/// output columns), so the caller may parallelize over them; within a tile
/// the loop order tile -> j -> k -> c keeps, for every (k, c), the same
/// j-ascending addition order as accumulate_block_rows.
TSUNAMI_HOT_PATH void accumulate_block_rows_many(
    const Matrix& slab, std::size_t p0, std::size_t p1,
    std::span<const double* const> zs, std::span<double* const> outs) {
  const std::size_t ncols = slab.cols();
  const std::size_t nk = zs.size();
  const double* w = slab.data();
  const std::size_t ntiles = (ncols + kAccTile - 1) / kAccTile;
  parallel_for_min(ntiles, 2, [&](std::size_t tile) {
    const std::size_t c0 = tile * kAccTile;
    const std::size_t c1 = std::min(c0 + kAccTile, ncols);
    for (std::size_t j = p0; j < p1; ++j) {
      const double* row = w + j * ncols;
      for (std::size_t k = 0; k < nk; ++k) {
        accumulate_row_tile(row, zs[k][j], outs[k], c0, c1);
      }
    }
  });
}

}  // namespace

StreamingEngine::StreamingEngine(const Posterior& posterior,
                                 const QoiPredictor& predictor,
                                 const StreamingOptions& options,
                                 TimerRegistry* timers,
                                 std::shared_ptr<const void> lifetime)
    : post_(posterior),
      pred_(predictor),
      lifetime_(lifetime),
      guarded_(lifetime != nullptr),
      opts_(options),
      nd_(posterior.forward_map().block_rows()),
      nt_(posterior.time_dim()),
      n_(posterior.data_dim()),
      np_(posterior.parameter_dim()),
      nqoi_(predictor.qoi_dim()) {
  if (predictor.data_dim() != n_)
    throw std::invalid_argument(
        "StreamingEngine: posterior/predictor data dim mismatch");

  TRACE_SCOPE("offline", "streaming_precompute");
  Stopwatch watch;
  const DenseCholesky& chol = post_.hessian().cholesky();

  // R = L^{-1} V: the forecast slab. Forward substitution keeps the rows
  // causal, so row block t is exactly what tick t contributes. Computed
  // without materializing V: from Q = V^T K^{-1} and K = L L^T it follows
  // that R = L^{-1} (K Q^T) = L^T Q^T — a triangular product of operators
  // the predictor already retains (no extra Phase 3 storage).
  const Matrix qt = predictor.data_to_qoi().transposed();  // n x nqoi
  const Matrix& l = chol.factor();
  r_ = Matrix(n_, nqoi_);
  parallel_for_min(n_, 8, [&](std::size_t i) {
    // r_(i, :) = sum_{j >= i} L(j, i) Q^T(j, :), all rows contiguous. The
    // factor is dense below the diagonal — no per-entry zero test (the
    // branch cost a compare per FMA and defeated vectorization).
    auto out = r_.row(i);
    for (std::size_t j = i; j < n_; ++j) {
      const double lji = l(j, i);
      const auto qrow = qt.row(j);
      for (std::size_t c = 0; c < nqoi_; ++c) out[c] += lji * qrow[c];
    }
  });

  // Credible-interval schedule: diag Gamma_post(q, t) = diag Gamma_post(q) +
  // the *tail* sum of squares down the columns of R (the information the
  // ticks still to come would add). Accumulating from the final tick makes
  // the schedule exactly monotone and lands exactly on the batch posterior
  // width. Data-independent — one table for every event this network will
  // ever stream.
  const Matrix& cov_q = predictor.qoi_covariance();
  std_schedule_ = Matrix(nt_ + 1, nqoi_);
  std::vector<double> tail(nqoi_, 0.0);
  for (std::size_t i = 0; i < nqoi_; ++i)
    std_schedule_(nt_, i) = std::sqrt(std::max(0.0, cov_q(i, i)));
  for (std::size_t t = nt_; t-- > 0;) {
    for (std::size_t j = t * nd_; j < (t + 1) * nd_; ++j) {
      const auto row = r_.row(j);
      for (std::size_t i = 0; i < nqoi_; ++i) tail[i] += row[i] * row[i];
    }
    for (std::size_t i = 0; i < nqoi_; ++i)
      std_schedule_(t, i) =
          std::sqrt(std::max(0.0, cov_q(i, i)) + tail[i]);
  }

  if (opts_.track_map) {
    // W* = L^{-1} F Gamma_prior, materialized row-major so each tick's block
    // rows are contiguous slabs. Built as (Gamma_prior F^T L^{-T})^T from
    // backward solves on unit vectors — n of them, not Nm*Nt. Scoped so the
    // n x n triangular inverse is freed before the slab transpose (the
    // transient peak is the largest allocation in the program).
    Matrix gstar_cols;  // (Nm Nt) x n
    {
      Matrix linv_t(n_, n_);  // columns: L^{-T} e_j
      parallel_for_min(n_, 4, [&](std::size_t j) {
        std::vector<double> col(n_, 0.0);
        col[j] = 1.0;
        chol.backward_solve_in_place(col);
        for (std::size_t i = 0; i < n_; ++i) linv_t(i, j) = col[i];
      });
      post_.apply_gstar_many(linv_t, gstar_cols);
    }
    wstar_ = gstar_cols.transposed();
  }

  precompute_seconds_ = watch.seconds();
  if (timers) timers->add("streaming: precompute", precompute_seconds_);
}

void StreamingEngine::check_alive(const char* what) const {
  if (!operators_alive())
    throw std::logic_error(
        std::string(what) +
        ": the twin that owns this engine's operators was destroyed or its "
        "offline state was rebuilt — rebuild the engine via make_streaming");
}

StreamingAssimilator StreamingEngine::start() const {
  check_alive("StreamingEngine::start");
  return StreamingAssimilator(*this);
}

StreamingEngine StreamingEngine::reduced(const SensorMask& mask) const {
  check_alive("StreamingEngine::reduced");
  if (mask.size() != nd_)
    throw std::invalid_argument(
        "StreamingEngine::reduced: mask size != channel count");
  StreamingEngine out(post_, pred_, opts_, nullptr, lifetime_.lock());
  out.apply_mask(mask);
  return out;
}

void StreamingEngine::apply_mask(const SensorMask& mask) {
  mask_ = mask;
  if (!mask.any()) return;
  TRACE_SCOPE("offline", "streaming_reduce");
  Stopwatch watch;
  const DenseCholesky& full = post_.hessian().cholesky();
  const Matrix& l = full.factor();

  // Decoupled factor: every dropped channel's rows of K become pure-noise
  // rows via the O(r n^2) rank-2 factor edits — NOT a refactorization. The
  // copy is owned here; the posterior's hessian (shared with the full
  // engine and every session on it) is untouched.
  Matrix l_copy = l;
  reduced_hess_ = std::make_unique<DataSpaceHessian>(
      DataSpaceHessian::from_factor(std::move(l_copy),
                                    post_.hessian().noise()));
  reduced_hess_->decouple_channels(mask, nd_);
  const DenseCholesky& chol = reduced_hess_->cholesky();

  // Rebuild the forecast slab against the decoupled factor. The slab V =
  // F Gamma_prior Fq^T is recovered from the full precompute (V = L R since
  // R = L^{-1} V); its dropped rows are zeroed (those rows of F no longer
  // exist) and the reduced R' = L'^{-1} V' re-solved column-free via the
  // multi-RHS forward substitution.
  const auto resolve_slab = [&](Matrix& slab) {
    Matrix v(n_, slab.cols());
    parallel_for_min(n_, 8, [&](std::size_t i) {
      if (mask.masked(i % nd_)) return;  // row dies below; skip the product
      auto out_row = v.row(i);
      for (std::size_t j = 0; j <= i; ++j) {
        const double lij = l(i, j);
        const auto srow = slab.row(j);
        for (std::size_t c = 0; c < out_row.size(); ++c)
          out_row[c] += lij * srow[c];
      }
    });
    chol.forward_solve_in_place(v);
    slab = std::move(v);
  };
  resolve_slab(r_);
  if (opts_.track_map) resolve_slab(wstar_);

  // Credible-interval schedule of the reduced network: the prior QoI
  // variance (schedule row 0, data-independent hence mask-independent)
  // minus the running information sum down the reduced R'. Dropped rows of
  // R' are exactly zero, so they contribute nothing — the schedule stops
  // shrinking where the network stops observing.
  std::vector<double> prior_var(nqoi_), acc(nqoi_, 0.0);
  for (std::size_t i = 0; i < nqoi_; ++i)
    prior_var[i] = std_schedule_(0, i) * std_schedule_(0, i);
  for (std::size_t t = 0; t < nt_; ++t) {
    for (std::size_t j = t * nd_; j < (t + 1) * nd_; ++j) {
      const auto row = r_.row(j);
      for (std::size_t i = 0; i < nqoi_; ++i) acc[i] += row[i] * row[i];
    }
    for (std::size_t i = 0; i < nqoi_; ++i)
      std_schedule_(t + 1, i) =
          std::sqrt(std::max(0.0, prior_var[i] - acc[i]));
  }
  precompute_seconds_ += watch.seconds();
}

std::span<const double> StreamingEngine::stddev_after(std::size_t ticks) const {
  if (ticks > nt_)
    throw std::out_of_range("StreamingEngine::stddev_after: tick out of range");
  return std_schedule_.row(ticks);
}

StreamingAssimilator::StreamingAssimilator(const StreamingEngine& engine)
    : eng_(engine),
      z_(engine.data_dim(), 0.0),
      q_mean_(engine.qoi_dim(), 0.0),
      m_map_(engine.tracks_map() ? engine.parameter_dim() : 0, 0.0),
      mask_(engine.block_size()) {}

TSUNAMI_HOT_PATH void StreamingAssimilator::stage_block(
    std::span<const double> d_block, std::span<const std::uint8_t> valid,
    std::size_t p0) {
  const std::size_t nd = eng_.block_size();
  if (!eng_.is_reduced() && !mask_.any() && valid.empty()) {
    // Healthy path: bitwise-identical to the pre-degraded-mode copy.
    std::copy(d_block.begin(), d_block.end(),
              z_.begin() + static_cast<std::ptrdiff_t>(p0));
    return;
  }
  // Dead channels enter z as zeros. Mathematically their value is
  // irrelevant — the Woodbury projection is exactly independent of the
  // dropped entries — but zeros keep replays bitwise deterministic and stop
  // garbage samples from ever touching state.
  for (std::size_t c = 0; c < nd; ++c) {
    const bool dead = (eng_.is_reduced() && eng_.mask().masked(c)) ||
                      mask_.masked(c) ||
                      (!valid.empty() && valid[c] == 0);
    z_[p0 + c] = dead ? 0.0 : d_block[c];
  }
}

bool StreamingAssimilator::tick_has_new_dead(
    std::span<const std::uint8_t> valid) const {
  if (mask_.any()) return true;
  if (!valid.empty()) {
    for (std::size_t c = 0; c < valid.size(); ++c) {
      if (valid[c] != 0) continue;
      if (eng_.is_reduced() && eng_.mask().masked(c)) continue;
      return true;
    }
  }
  return false;
}

TSUNAMI_HOT_PATH void StreamingAssimilator::push(
    std::size_t tick, std::span<const double> d_block) {
  push(tick, d_block, {});
}

TSUNAMI_HOT_PATH void StreamingAssimilator::push(
    std::size_t tick, std::span<const double> d_block,
    std::span<const std::uint8_t> valid) {
  eng_.check_alive("StreamingAssimilator::push");
  if (complete())
    throw std::logic_error("StreamingAssimilator::push: event window full");
  if (tick != t_)
    throw std::invalid_argument(
        "StreamingAssimilator::push: out-of-order tick");
  if (d_block.size() != eng_.block_size())
    throw std::invalid_argument(
        "StreamingAssimilator::push: block size mismatch");
  if (!valid.empty() && valid.size() != eng_.block_size())
    throw std::invalid_argument(
        "StreamingAssimilator::push: validity bitmap size mismatch");

  TRACE_SCOPE("stream", "push");
  Stopwatch watch;
  const std::size_t p0 = t_ * eng_.block_size();
  const std::size_t p1 = p0 + eng_.block_size();
  stage_block(d_block, valid, p0);
  // Extend z = L^{-1} d by one block row (causality of forward substitution).
  eng_.chol().forward_solve_range(z_, p0, p1);
  // Extend the dead-row projection over the new rows before anything reads
  // it (the accumulators below are projection-agnostic: corrections are
  // applied at forecast/map read time, never folded into q_mean_/m_map_).
  if (!dead_.empty() || tick_has_new_dead(valid))
    advance_degraded(p0, p1, valid);
  // Accumulate the new block's contribution to the truncated posterior,
  // column-tiled (one output sweep per tick, not one per sensor).
  accumulate_block_rows(eng_.r_, z_, p0, p1, q_mean_);
  if (eng_.tracks_map())
    accumulate_block_rows(eng_.wstar_, z_, p0, p1, m_map_);
  ++t_;
  last_push_seconds_ = watch.seconds();
  total_push_seconds_ += last_push_seconds_;
}

// ---- degraded-mode projection ----------------------------------------------
//
// Dropping observation rows D from the inference is the infinite-noise limit
// of their noise model, and Woodbury gives the exact reduced-network solve
// in terms of the UNCHANGED shared factor L:
//
//   (K')^{-1} = K^{-1} - K^{-1} E S^{-1} E^T K^{-1},  E = [e_p : p in D],
//   S = E^T K^{-1} E.
//
// With Y = L^{-1} E every needed contraction is causal and prefix-exact,
// because forward substitution commutes with truncation:
//
//   h = E^T K_p^{-1} d_p = Y_p^T z_p          (r)
//   S_p = Y_p^T Y_p                           (r x r, chol maintained)
//   G = V^T K_p^{-1} E = R_p^T Y_p            (nqoi x r, per-column in g)
//
// so the corrected posterior reads  q' = q_mean - G S^{-1} h  and
// var' = schedule^2 + diag(G S^{-1} G^T): read-time corrections, with
// q_mean_/m_map_/z_ never mutated — which is what makes a drop/restore
// cycle return the assimilator bitwise to its pristine state.
//
// Per tick the state advances incrementally: each Y column extends by one
// forward_solve_range block, chol(S) absorbs one rank-1 update per new
// prefix row (DenseCholesky::rank_update), and a newly dead row appends one
// factor row (DenseCholesky::append_row) — O(Nd r^2 + Nd r nqoi) on top of
// a healthy push, no refactorization anywhere.

TSUNAMI_HOT_PATH void StreamingAssimilator::advance_degraded(
    std::size_t p0, std::size_t p1, std::span<const std::uint8_t> valid) {
  const DenseCholesky& chol = eng_.chol();
  const std::size_t r0 = dead_.size();
  // (a) Extend existing columns causally, plus their h/g accumulators.
  for (std::size_t j = 0; j < r0; ++j) {
    DeadRow& dr = dead_[j];
    chol.forward_solve_range(dr.y, p0, p1);
    for (std::size_t i = p0; i < p1; ++i) h_[j] += dr.y[i] * z_[i];
    accumulate_block_rows(eng_.r_, dr.y, p0, p1, dr.g);
  }
  // (b) chol(S) absorbs the new prefix rows: one rank-1 update per row,
  // over the pre-existing columns (appended columns compute their own full
  // dot products below — fixed order, so replays are bitwise identical).
  if (r0 > 0) {
    u_scratch_.resize(r0);  // lint: allow(hot-path-alloc) grow-once scratch
    for (std::size_t i = p0; i < p1; ++i) {
      for (std::size_t j = 0; j < r0; ++j) u_scratch_[j] = dead_[j].y[i];
      s_chol_->rank_update(u_scratch_);
    }
  }
  // (c) Newly dead rows of this tick (masked channel, or invalid sample),
  // ascending: solve the unit column over [row, p1), append its row to
  // chol(S), seed h and g. Rare control work — a sensor dying — so the
  // allocations below are acceptable on the push path.
  for (std::size_t c = 0; c < eng_.block_size(); ++c) {
    const bool invalid = !valid.empty() && valid[c] == 0;
    if (!mask_.masked(c) && !invalid) continue;
    if (eng_.is_reduced() && eng_.mask().masked(c)) continue;  // already gone
    const std::size_t row = p0 + c;
    DeadRow dr;
    dr.row = row;
    // The sample at this row was discarded at staging (masked or invalid):
    // no genuine data exists, so restore_sensor cannot resurrect it.
    dr.permanent = true;
    dr.y.assign(eng_.data_dim(), 0.0);  // lint: allow(hot-path-alloc) sensor-death control event
    dr.g.assign(eng_.qoi_dim(), 0.0);   // lint: allow(hot-path-alloc) sensor-death control event
    dr.y[row] = 1.0;
    chol.forward_solve_range(dr.y, row, p1);
    std::vector<double> s_col(dead_.size() + 1, 0.0);  // lint: allow(hot-path-alloc) sensor-death control event
    for (std::size_t j = 0; j < dead_.size(); ++j) {
      double s = 0.0;
      for (std::size_t i = row; i < p1; ++i) s += dead_[j].y[i] * dr.y[i];
      s_col[j] = s;
    }
    double diag = 0.0;
    for (std::size_t i = row; i < p1; ++i) diag += dr.y[i] * dr.y[i];
    s_col[dead_.size()] = diag;
    if (s_chol_) {
      s_chol_->append_row(s_col);
    } else {
      Matrix s1(1, 1);  // lint: allow(hot-path-alloc) sensor-death control event
      s1(0, 0) = diag;
      s_chol_ = std::make_unique<DenseCholesky>(s1);  // lint: allow(hot-path-alloc) sensor-death control event
    }
    double h0 = 0.0;
    for (std::size_t i = row; i < p1; ++i) h0 += dr.y[i] * z_[i];
    h_.push_back(h0);  // lint: allow(hot-path-alloc) sensor-death control event
    accumulate_block_rows(eng_.r_, dr.y, row, p1, dr.g);
    dead_.push_back(std::move(dr));  // lint: allow(hot-path-alloc) sensor-death control event
  }
}

void StreamingAssimilator::rebuild_projections() {
  const std::size_t p = t_ * eng_.block_size();
  const std::size_t r = dead_.size();
  h_.assign(r, 0.0);
  if (r == 0) {
    s_chol_.reset();
    return;
  }
  const DenseCholesky& chol = eng_.chol();
  for (std::size_t j = 0; j < r; ++j) {
    DeadRow& dr = dead_[j];
    dr.y.assign(eng_.data_dim(), 0.0);
    dr.g.assign(eng_.qoi_dim(), 0.0);
    dr.y[dr.row] = 1.0;
    chol.forward_solve_range(dr.y, dr.row, p);
    accumulate_block_rows(eng_.r_, dr.y, dr.row, p, dr.g);
    for (std::size_t i = dr.row; i < p; ++i) h_[j] += dr.y[i] * z_[i];
  }
  // S = Y^T Y, exploiting causal sparsity (column j is zero above row_j;
  // dead_ is ascending, so the j<=k entry integrates over [row_k, p)).
  Matrix s(r, r);
  for (std::size_t j = 0; j < r; ++j) {
    for (std::size_t k = j; k < r; ++k) {
      double acc = 0.0;
      for (std::size_t i = dead_[k].row; i < p; ++i)
        acc += dead_[j].y[i] * dead_[k].y[i];
      s(j, k) = acc;
      s(k, j) = acc;
    }
  }
  // Always SPD: the columns of Y are triangular with nonzero leading
  // entries 1/L[row,row] at distinct rows, hence linearly independent.
  s_chol_ = std::make_unique<DenseCholesky>(s);
}

void StreamingAssimilator::compute_projection_coeffs() const {
  c_scratch_.assign(h_.begin(), h_.end());  // lint: allow(hot-path-alloc) capacity reuse
  if (!h_.empty()) s_chol_->solve_in_place(std::span<double>(c_scratch_));
}

void StreamingAssimilator::drop_sensor(std::size_t s) {
  const std::size_t nd = eng_.block_size();
  if (s >= nd)
    throw std::out_of_range(
        "StreamingAssimilator::drop_sensor: channel out of range");
  if (eng_.is_reduced() && eng_.mask().masked(s))
    throw std::invalid_argument(
        "StreamingAssimilator::drop_sensor: channel not part of this "
        "engine's (already reduced) network");
  if (mask_.masked(s)) return;
  mask_.drop(s);
  // Retroactively project every row this channel contributed: rows pushed
  // invalid are already dead (and permanent); the rest carried genuine data
  // — they die restorably, with their z entries left in place.
  for (std::size_t t = 0; t < t_; ++t) {
    const std::size_t row = t * nd + s;
    bool already = false;
    for (const DeadRow& dr : dead_) {
      if (dr.row == row) {
        already = true;
        break;
      }
    }
    if (already) continue;
    DeadRow dr;
    dr.row = row;
    dr.permanent = false;
    dead_.push_back(std::move(dr));
  }
  std::sort(dead_.begin(), dead_.end(),
            [](const DeadRow& a, const DeadRow& b) { return a.row < b.row; });
  rebuild_projections();
}

void StreamingAssimilator::restore_sensor(std::size_t s) {
  if (s >= eng_.block_size())
    throw std::out_of_range(
        "StreamingAssimilator::restore_sensor: channel out of range");
  if (!mask_.masked(s)) return;
  mask_.restore(s);
  // Un-project the rows whose genuine samples still sit in z_. Permanently
  // dead rows (pushed while invalid) stay dead — no data ever arrived.
  const std::size_t nd = eng_.block_size();
  std::erase_if(dead_, [&](const DeadRow& dr) {
    return dr.row % nd == s && !dr.permanent;
  });
  rebuild_projections();
}

TSUNAMI_HOT_PATH void StreamingAssimilator::push_many(
    std::span<StreamingAssimilator* const> events, std::size_t tick,
    std::span<const std::span<const double>> blocks) {
  push_many(events, tick, blocks, {});
}

TSUNAMI_HOT_PATH void StreamingAssimilator::push_many(
    std::span<StreamingAssimilator* const> events, std::size_t tick,
    std::span<const std::span<const double>> blocks,
    std::span<const std::span<const std::uint8_t>> valids) {
  const std::size_t nk = events.size();
  if (nk == 0) return;
  if (blocks.size() != nk)
    throw std::invalid_argument(
        "StreamingAssimilator::push_many: events/blocks count mismatch");
  if (!valids.empty() && valids.size() != nk)
    throw std::invalid_argument(
        "StreamingAssimilator::push_many: events/valids count mismatch");
  const auto valid_of = [&](std::size_t k) {
    return valids.empty() ? std::span<const std::uint8_t>{} : valids[k];
  };
  if (nk == 1) {
    events[0]->push(tick, blocks[0], valid_of(0));
    return;
  }
  const StreamingEngine& eng = events[0]->eng_;
  eng.check_alive("StreamingAssimilator::push_many");
  const std::size_t nd = eng.block_size();
  for (std::size_t k = 0; k < nk; ++k) {
    StreamingAssimilator* ev = events[k];
    if (&ev->eng_ != &eng)
      throw std::invalid_argument(
          "StreamingAssimilator::push_many: events must share one engine");
    if (ev->complete())
      throw std::logic_error(
          "StreamingAssimilator::push_many: event window full");
    if (ev->t_ != tick)
      throw std::invalid_argument(
          "StreamingAssimilator::push_many: events not tick-aligned");
    if (blocks[k].size() != nd)
      throw std::invalid_argument(
          "StreamingAssimilator::push_many: block size mismatch");
    if (!valid_of(k).empty() && valid_of(k).size() != nd)
      throw std::invalid_argument(
          "StreamingAssimilator::push_many: validity bitmap size mismatch");
    for (std::size_t j = 0; j < k; ++j) {
      if (events[j] == ev)
        throw std::invalid_argument(
            "StreamingAssimilator::push_many: duplicate event");
    }
  }

  TRACE_SCOPE("stream", "push_many");
  Stopwatch watch;
  const std::size_t p0 = tick * nd;
  const std::size_t p1 = p0 + nd;
  // Per-event forward-substitution extension: independent events, so the
  // batch dimension parallelizes freely (each body touches only event k).
  // Degraded events also advance their private projection state here — it
  // reads only this event's z and the shared immutable factor, so the
  // per-(event, output) operation order is identical to a serial push.
  parallel_for_min(nk, 2, [&](std::size_t k) {
    StreamingAssimilator* ev = events[k];
    ev->stage_block(blocks[k], valid_of(k), p0);
    eng.chol().forward_solve_range(ev->z_, p0, p1);
    if (!ev->dead_.empty() || ev->tick_has_new_dead(valid_of(k)))
      ev->advance_degraded(p0, p1, valid_of(k));
  });

  // One sweep over each slab's new block rows serves every event. The
  // pointer tables live in thread_local scratch that grows to the largest
  // batch this thread has seen and is then reused, so steady-state batched
  // pushes stay allocation-free (proved by tests/test_debug.cpp).
  static thread_local std::vector<const double*> zs;
  static thread_local std::vector<double*> q_outs;
  static thread_local std::vector<double*> m_outs;
  zs.resize(nk);      // lint: allow(hot-path-alloc) grow-once scratch
  q_outs.resize(nk);  // lint: allow(hot-path-alloc) grow-once scratch
  for (std::size_t k = 0; k < nk; ++k) {
    zs[k] = events[k]->z_.data();
    q_outs[k] = events[k]->q_mean_.data();
  }
  accumulate_block_rows_many(eng.r_, p0, p1,
                             std::span<const double* const>(zs),
                             std::span<double* const>(q_outs));
  if (eng.tracks_map()) {
    m_outs.resize(nk);  // lint: allow(hot-path-alloc) grow-once scratch
    for (std::size_t k = 0; k < nk; ++k) m_outs[k] = events[k]->m_map_.data();
    accumulate_block_rows_many(eng.wstar_, p0, p1,
                               std::span<const double* const>(zs),
                               std::span<double* const>(m_outs));
  }

  const double per_event = watch.seconds() / static_cast<double>(nk);
  for (std::size_t k = 0; k < nk; ++k) {
    StreamingAssimilator* ev = events[k];
    ++ev->t_;
    ev->last_push_seconds_ = per_event;
    ev->total_push_seconds_ += per_event;
  }
}

TSUNAMI_HOT_PATH void StreamingAssimilator::forecast_into(Forecast& fc) const {
  eng_.check_alive("StreamingAssimilator::forecast");
  fc.num_gauges = eng_.pred_.num_gauges();
  fc.num_times = eng_.pred_.num_times();
  // assign/resize reuse existing capacity: after the first call on a given
  // Forecast this is copy-only — the per-tick publish path never allocates.
  fc.mean.assign(q_mean_.begin(), q_mean_.end());  // lint: allow(hot-path-alloc) capacity reuse
  const auto sd = eng_.stddev_after(t_);
  fc.stddev.assign(sd.begin(), sd.end());  // lint: allow(hot-path-alloc) capacity reuse
  fc.degraded = degraded();
  fc.dropped_channels = dropped_channels();
  if (!dead_.empty()) {
    // Reduced-network corrections (see the projection block comment):
    //   mean'   = q_mean - G S^{-1} h
    //   var'(i) = schedule(i)^2 + G[i,:] S^{-1} G[i,:]^T
    // O(r^2 nqoi) on top of the copy — no slab is touched.
    compute_projection_coeffs();
    const std::size_t r = dead_.size();
    var_scratch_.resize(r);  // lint: allow(hot-path-alloc) grow-once scratch
    for (std::size_t i = 0; i < q_mean_.size(); ++i) {
      double mean_corr = 0.0;
      for (std::size_t j = 0; j < r; ++j) {
        const double gij = dead_[j].g[i];
        mean_corr += c_scratch_[j] * gij;
        var_scratch_[j] = gij;
      }
      fc.mean[i] -= mean_corr;
      s_chol_->solve_in_place(std::span<double>(var_scratch_));
      double var_add = 0.0;
      for (std::size_t j = 0; j < r; ++j)
        var_add += dead_[j].g[i] * var_scratch_[j];
      fc.stddev[i] = std::sqrt(
          std::max(0.0, fc.stddev[i] * fc.stddev[i] + var_add));
    }
  }
  fc.lower95.resize(q_mean_.size());  // lint: allow(hot-path-alloc) capacity reuse
  fc.upper95.resize(q_mean_.size());  // lint: allow(hot-path-alloc) capacity reuse
  for (std::size_t i = 0; i < q_mean_.size(); ++i) {
    fc.lower95[i] = fc.mean[i] - 1.96 * fc.stddev[i];
    fc.upper95[i] = fc.mean[i] + 1.96 * fc.stddev[i];
  }
}

Forecast StreamingAssimilator::forecast() const {
  Forecast fc;
  forecast_into(fc);
  return fc;
}

const std::vector<double>& StreamingAssimilator::map_estimate() const {
  if (!eng_.tracks_map())
    throw std::logic_error(
        "StreamingAssimilator::map_estimate: engine built with track_map off "
        "(use map_snapshot)");
  if (dead_.empty()) return m_map_;
  // m' = m_map - W*^T (Y S^{-1} h): one slab sweep over the rows at or
  // below the first dead row, materialized into the correction cache.
  compute_projection_coeffs();
  const std::size_t p = t_ * eng_.block_size();
  const std::size_t first = dead_.front().row;
  m_corr_.assign(m_map_.begin(), m_map_.end());
  proj_scratch_.assign(z_.size(), 0.0);
  for (std::size_t j = 0; j < dead_.size(); ++j) {
    const DeadRow& dr = dead_[j];
    const double cj = c_scratch_[j];
    for (std::size_t i = dr.row; i < p; ++i)
      proj_scratch_[i] -= cj * dr.y[i];
  }
  accumulate_block_rows(eng_.wstar_, proj_scratch_, first, p, m_corr_);
  return m_corr_;
}

std::vector<double> StreamingAssimilator::map_snapshot() const {
  eng_.check_alive("StreamingAssimilator::map_snapshot");
  const std::size_t p = t_ * eng_.block_size();
  // u = K_p^{-1} d_p: the forward half is already cached in z; finish with
  // the prefix backward substitution, then lift through G* on the prefix.
  // Scratch lives in the per-event workspace (this object is single-caller
  // by contract — the service hands a session to one worker at a time), so
  // only the returned vector allocates.
  snapshot_u_.resize(p);
  std::copy(z_.begin(), z_.begin() + static_cast<std::ptrdiff_t>(p),
            snapshot_u_.begin());
  if (!dead_.empty()) {
    // Project the dead rows out of the forward solve: u = z - Y S^{-1} h.
    // The completed solve is then exactly zero on every dead row, so the
    // G* lift below only ever sees the surviving network's rows.
    compute_projection_coeffs();
    for (std::size_t j = 0; j < dead_.size(); ++j) {
      const DeadRow& dr = dead_[j];
      const double cj = c_scratch_[j];
      for (std::size_t i = dr.row; i < p; ++i)
        snapshot_u_[i] -= cj * dr.y[i];
    }
  }
  eng_.chol().backward_solve_prefix(snapshot_u_, p);
  std::vector<double> m(eng_.parameter_dim(), 0.0);
  if (p > 0)
    eng_.post_.apply_gstar_prefix(snapshot_u_, t_, std::span<double>(m), ws_);
  return m;
}

void StreamingAssimilator::reset() {
  t_ = 0;
  std::fill(z_.begin(), z_.end(), 0.0);
  std::fill(q_mean_.begin(), q_mean_.end(), 0.0);
  std::fill(m_map_.begin(), m_map_.end(), 0.0);
  mask_ = SensorMask(eng_.block_size());
  dead_.clear();
  s_chol_.reset();
  h_.clear();
  last_push_seconds_ = 0.0;
  total_push_seconds_ = 0.0;
}

}  // namespace tsunami
