#include "core/streaming_assimilator.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "linalg/blas.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"

namespace tsunami {

namespace {

constexpr std::size_t kAccTile = 1024;  // 8 KB: half of a typical L1d

/// m[c0:c1] += zj * row[c0:c1] — the one FMA stream both the single-event
/// and the batched accumulation paths are built from. Sharing this kernel is
/// what makes push_many bit-identical to serial pushes BY CONSTRUCTION: per
/// (event, output column) the adds are the same operations in the same
/// order either way.
TSUNAMI_HOT_PATH inline void accumulate_row_tile(const double* row, double zj,
                                                 double* m, std::size_t c0,
                                                 std::size_t c1) {
  for (std::size_t c = c0; c < c1; ++c) m[c] += zj * row[c];
}

/// out += slab[p0:p1, :]^T z[p0:p1] — the per-tick truncated-posterior
/// accumulation. Column-tiled so the output tile stays in L1 across all
/// block rows: the naive row-by-row axpy re-streams the whole output vector
/// (Nm Nt doubles) once per sensor, which dominated push latency for the
/// MAP slab. The slab rows themselves are read exactly once either way.
TSUNAMI_HOT_PATH void accumulate_block_rows(const Matrix& slab,
                                            const std::vector<double>& z,
                                            std::size_t p0, std::size_t p1,
                                            std::vector<double>& out) {
  const std::size_t ncols = slab.cols();
  const double* w = slab.data();
  double* m = out.data();
  for (std::size_t c0 = 0; c0 < ncols; c0 += kAccTile) {
    const std::size_t c1 = std::min(c0 + kAccTile, ncols);
    for (std::size_t j = p0; j < p1; ++j) {
      accumulate_row_tile(w + j * ncols, z[j], m, c0, c1);
    }
  }
}

/// Batched variant: outs[k] += slab[p0:p1, :]^T zs[k][p0:p1] for all K
/// events in ONE sweep over the slab rows — each row (the bandwidth cost)
/// is loaded once and reused K times. Tiles are independent (disjoint
/// output columns), so the caller may parallelize over them; within a tile
/// the loop order tile -> j -> k -> c keeps, for every (k, c), the same
/// j-ascending addition order as accumulate_block_rows.
TSUNAMI_HOT_PATH void accumulate_block_rows_many(
    const Matrix& slab, std::size_t p0, std::size_t p1,
    std::span<const double* const> zs, std::span<double* const> outs) {
  const std::size_t ncols = slab.cols();
  const std::size_t nk = zs.size();
  const double* w = slab.data();
  const std::size_t ntiles = (ncols + kAccTile - 1) / kAccTile;
  parallel_for_min(ntiles, 2, [&](std::size_t tile) {
    const std::size_t c0 = tile * kAccTile;
    const std::size_t c1 = std::min(c0 + kAccTile, ncols);
    for (std::size_t j = p0; j < p1; ++j) {
      const double* row = w + j * ncols;
      for (std::size_t k = 0; k < nk; ++k) {
        accumulate_row_tile(row, zs[k][j], outs[k], c0, c1);
      }
    }
  });
}

}  // namespace

StreamingEngine::StreamingEngine(const Posterior& posterior,
                                 const QoiPredictor& predictor,
                                 const StreamingOptions& options,
                                 TimerRegistry* timers,
                                 std::shared_ptr<const void> lifetime)
    : post_(posterior),
      pred_(predictor),
      lifetime_(lifetime),
      guarded_(lifetime != nullptr),
      opts_(options),
      nd_(posterior.forward_map().block_rows()),
      nt_(posterior.time_dim()),
      n_(posterior.data_dim()),
      np_(posterior.parameter_dim()),
      nqoi_(predictor.qoi_dim()) {
  if (predictor.data_dim() != n_)
    throw std::invalid_argument(
        "StreamingEngine: posterior/predictor data dim mismatch");

  TRACE_SCOPE("offline", "streaming_precompute");
  Stopwatch watch;
  const DenseCholesky& chol = post_.hessian().cholesky();

  // R = L^{-1} V: the forecast slab. Forward substitution keeps the rows
  // causal, so row block t is exactly what tick t contributes. Computed
  // without materializing V: from Q = V^T K^{-1} and K = L L^T it follows
  // that R = L^{-1} (K Q^T) = L^T Q^T — a triangular product of operators
  // the predictor already retains (no extra Phase 3 storage).
  const Matrix qt = predictor.data_to_qoi().transposed();  // n x nqoi
  const Matrix& l = chol.factor();
  r_ = Matrix(n_, nqoi_);
  parallel_for_min(n_, 8, [&](std::size_t i) {
    // r_(i, :) = sum_{j >= i} L(j, i) Q^T(j, :), all rows contiguous. The
    // factor is dense below the diagonal — no per-entry zero test (the
    // branch cost a compare per FMA and defeated vectorization).
    auto out = r_.row(i);
    for (std::size_t j = i; j < n_; ++j) {
      const double lji = l(j, i);
      const auto qrow = qt.row(j);
      for (std::size_t c = 0; c < nqoi_; ++c) out[c] += lji * qrow[c];
    }
  });

  // Credible-interval schedule: diag Gamma_post(q, t) = diag Gamma_post(q) +
  // the *tail* sum of squares down the columns of R (the information the
  // ticks still to come would add). Accumulating from the final tick makes
  // the schedule exactly monotone and lands exactly on the batch posterior
  // width. Data-independent — one table for every event this network will
  // ever stream.
  const Matrix& cov_q = predictor.qoi_covariance();
  std_schedule_ = Matrix(nt_ + 1, nqoi_);
  std::vector<double> tail(nqoi_, 0.0);
  for (std::size_t i = 0; i < nqoi_; ++i)
    std_schedule_(nt_, i) = std::sqrt(std::max(0.0, cov_q(i, i)));
  for (std::size_t t = nt_; t-- > 0;) {
    for (std::size_t j = t * nd_; j < (t + 1) * nd_; ++j) {
      const auto row = r_.row(j);
      for (std::size_t i = 0; i < nqoi_; ++i) tail[i] += row[i] * row[i];
    }
    for (std::size_t i = 0; i < nqoi_; ++i)
      std_schedule_(t, i) =
          std::sqrt(std::max(0.0, cov_q(i, i)) + tail[i]);
  }

  if (opts_.track_map) {
    // W* = L^{-1} F Gamma_prior, materialized row-major so each tick's block
    // rows are contiguous slabs. Built as (Gamma_prior F^T L^{-T})^T from
    // backward solves on unit vectors — n of them, not Nm*Nt. Scoped so the
    // n x n triangular inverse is freed before the slab transpose (the
    // transient peak is the largest allocation in the program).
    Matrix gstar_cols;  // (Nm Nt) x n
    {
      Matrix linv_t(n_, n_);  // columns: L^{-T} e_j
      parallel_for_min(n_, 4, [&](std::size_t j) {
        std::vector<double> col(n_, 0.0);
        col[j] = 1.0;
        chol.backward_solve_in_place(col);
        for (std::size_t i = 0; i < n_; ++i) linv_t(i, j) = col[i];
      });
      post_.apply_gstar_many(linv_t, gstar_cols);
    }
    wstar_ = gstar_cols.transposed();
  }

  precompute_seconds_ = watch.seconds();
  if (timers) timers->add("streaming: precompute", precompute_seconds_);
}

void StreamingEngine::check_alive(const char* what) const {
  if (!operators_alive())
    throw std::logic_error(
        std::string(what) +
        ": the twin that owns this engine's operators was destroyed or its "
        "offline state was rebuilt — rebuild the engine via make_streaming");
}

StreamingAssimilator StreamingEngine::start() const {
  check_alive("StreamingEngine::start");
  return StreamingAssimilator(*this);
}

std::span<const double> StreamingEngine::stddev_after(std::size_t ticks) const {
  if (ticks > nt_)
    throw std::out_of_range("StreamingEngine::stddev_after: tick out of range");
  return std_schedule_.row(ticks);
}

StreamingAssimilator::StreamingAssimilator(const StreamingEngine& engine)
    : eng_(engine),
      z_(engine.data_dim(), 0.0),
      q_mean_(engine.qoi_dim(), 0.0),
      m_map_(engine.tracks_map() ? engine.parameter_dim() : 0, 0.0) {}

TSUNAMI_HOT_PATH void StreamingAssimilator::push(
    std::size_t tick, std::span<const double> d_block) {
  eng_.check_alive("StreamingAssimilator::push");
  if (complete())
    throw std::logic_error("StreamingAssimilator::push: event window full");
  if (tick != t_)
    throw std::invalid_argument(
        "StreamingAssimilator::push: out-of-order tick");
  if (d_block.size() != eng_.block_size())
    throw std::invalid_argument(
        "StreamingAssimilator::push: block size mismatch");

  TRACE_SCOPE("stream", "push");
  Stopwatch watch;
  const std::size_t p0 = t_ * eng_.block_size();
  const std::size_t p1 = p0 + eng_.block_size();
  std::copy(d_block.begin(), d_block.end(), z_.begin() + p0);
  // Extend z = L^{-1} d by one block row (causality of forward substitution).
  eng_.post_.hessian().cholesky().forward_solve_range(z_, p0, p1);
  // Accumulate the new block's contribution to the truncated posterior,
  // column-tiled (one output sweep per tick, not one per sensor).
  accumulate_block_rows(eng_.r_, z_, p0, p1, q_mean_);
  if (eng_.tracks_map())
    accumulate_block_rows(eng_.wstar_, z_, p0, p1, m_map_);
  ++t_;
  last_push_seconds_ = watch.seconds();
  total_push_seconds_ += last_push_seconds_;
}

TSUNAMI_HOT_PATH void StreamingAssimilator::push_many(
    std::span<StreamingAssimilator* const> events, std::size_t tick,
    std::span<const std::span<const double>> blocks) {
  const std::size_t nk = events.size();
  if (nk == 0) return;
  if (blocks.size() != nk)
    throw std::invalid_argument(
        "StreamingAssimilator::push_many: events/blocks count mismatch");
  if (nk == 1) {
    events[0]->push(tick, blocks[0]);
    return;
  }
  const StreamingEngine& eng = events[0]->eng_;
  eng.check_alive("StreamingAssimilator::push_many");
  const std::size_t nd = eng.block_size();
  for (std::size_t k = 0; k < nk; ++k) {
    StreamingAssimilator* ev = events[k];
    if (&ev->eng_ != &eng)
      throw std::invalid_argument(
          "StreamingAssimilator::push_many: events must share one engine");
    if (ev->complete())
      throw std::logic_error(
          "StreamingAssimilator::push_many: event window full");
    if (ev->t_ != tick)
      throw std::invalid_argument(
          "StreamingAssimilator::push_many: events not tick-aligned");
    if (blocks[k].size() != nd)
      throw std::invalid_argument(
          "StreamingAssimilator::push_many: block size mismatch");
    for (std::size_t j = 0; j < k; ++j) {
      if (events[j] == ev)
        throw std::invalid_argument(
            "StreamingAssimilator::push_many: duplicate event");
    }
  }

  TRACE_SCOPE("stream", "push_many");
  Stopwatch watch;
  const std::size_t p0 = tick * nd;
  const std::size_t p1 = p0 + nd;
  // Per-event forward-substitution extension: independent events, so the
  // batch dimension parallelizes freely (each body touches only event k).
  parallel_for_min(nk, 2, [&](std::size_t k) {
    StreamingAssimilator* ev = events[k];
    std::copy(blocks[k].begin(), blocks[k].end(), ev->z_.begin() + p0);
    eng.post_.hessian().cholesky().forward_solve_range(ev->z_, p0, p1);
  });

  // One sweep over each slab's new block rows serves every event. The
  // pointer tables live in thread_local scratch that grows to the largest
  // batch this thread has seen and is then reused, so steady-state batched
  // pushes stay allocation-free (proved by tests/test_debug.cpp).
  static thread_local std::vector<const double*> zs;
  static thread_local std::vector<double*> q_outs;
  static thread_local std::vector<double*> m_outs;
  zs.resize(nk);      // lint: allow(hot-path-alloc) grow-once scratch
  q_outs.resize(nk);  // lint: allow(hot-path-alloc) grow-once scratch
  for (std::size_t k = 0; k < nk; ++k) {
    zs[k] = events[k]->z_.data();
    q_outs[k] = events[k]->q_mean_.data();
  }
  accumulate_block_rows_many(eng.r_, p0, p1,
                             std::span<const double* const>(zs),
                             std::span<double* const>(q_outs));
  if (eng.tracks_map()) {
    m_outs.resize(nk);  // lint: allow(hot-path-alloc) grow-once scratch
    for (std::size_t k = 0; k < nk; ++k) m_outs[k] = events[k]->m_map_.data();
    accumulate_block_rows_many(eng.wstar_, p0, p1,
                               std::span<const double* const>(zs),
                               std::span<double* const>(m_outs));
  }

  const double per_event = watch.seconds() / static_cast<double>(nk);
  for (std::size_t k = 0; k < nk; ++k) {
    StreamingAssimilator* ev = events[k];
    ++ev->t_;
    ev->last_push_seconds_ = per_event;
    ev->total_push_seconds_ += per_event;
  }
}

TSUNAMI_HOT_PATH void StreamingAssimilator::forecast_into(Forecast& fc) const {
  eng_.check_alive("StreamingAssimilator::forecast");
  fc.num_gauges = eng_.pred_.num_gauges();
  fc.num_times = eng_.pred_.num_times();
  // assign/resize reuse existing capacity: after the first call on a given
  // Forecast this is copy-only — the per-tick publish path never allocates.
  fc.mean.assign(q_mean_.begin(), q_mean_.end());  // lint: allow(hot-path-alloc) capacity reuse
  const auto sd = eng_.stddev_after(t_);
  fc.stddev.assign(sd.begin(), sd.end());  // lint: allow(hot-path-alloc) capacity reuse
  fc.lower95.resize(q_mean_.size());  // lint: allow(hot-path-alloc) capacity reuse
  fc.upper95.resize(q_mean_.size());  // lint: allow(hot-path-alloc) capacity reuse
  for (std::size_t i = 0; i < q_mean_.size(); ++i) {
    fc.lower95[i] = fc.mean[i] - 1.96 * fc.stddev[i];
    fc.upper95[i] = fc.mean[i] + 1.96 * fc.stddev[i];
  }
}

Forecast StreamingAssimilator::forecast() const {
  Forecast fc;
  forecast_into(fc);
  return fc;
}

const std::vector<double>& StreamingAssimilator::map_estimate() const {
  if (!eng_.tracks_map())
    throw std::logic_error(
        "StreamingAssimilator::map_estimate: engine built with track_map off "
        "(use map_snapshot)");
  return m_map_;
}

std::vector<double> StreamingAssimilator::map_snapshot() const {
  eng_.check_alive("StreamingAssimilator::map_snapshot");
  const std::size_t p = t_ * eng_.block_size();
  // u = K_p^{-1} d_p: the forward half is already cached in z; finish with
  // the prefix backward substitution, then lift through G* on the prefix.
  // Scratch lives in the per-event workspace (this object is single-caller
  // by contract — the service hands a session to one worker at a time), so
  // only the returned vector allocates.
  snapshot_u_.resize(p);
  std::copy(z_.begin(), z_.begin() + static_cast<std::ptrdiff_t>(p),
            snapshot_u_.begin());
  eng_.post_.hessian().cholesky().backward_solve_prefix(snapshot_u_, p);
  std::vector<double> m(eng_.parameter_dim(), 0.0);
  if (p > 0)
    eng_.post_.apply_gstar_prefix(snapshot_u_, t_, std::span<double>(m), ws_);
  return m;
}

void StreamingAssimilator::reset() {
  t_ = 0;
  std::fill(z_.begin(), z_.end(), 0.0);
  std::fill(q_mean_.begin(), q_mean_.end(), 0.0);
  std::fill(m_map_.begin(), m_map_.end(), 0.0);
  last_push_seconds_ = 0.0;
  total_push_seconds_ = 0.0;
}

}  // namespace tsunami
