#include "core/digital_twin.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/blas.hpp"

namespace tsunami {

TwinConfig TwinConfig::tiny() {
  TwinConfig c;
  c.bathymetry = flat_basin(2000.0, 60e3, 80e3);
  c.mesh_nx = 6;
  c.mesh_ny = 8;
  c.mesh_nz = 2;
  c.order = 2;
  c.num_sensors = 6;
  c.num_gauges = 3;
  c.num_intervals = 12;
  c.observation_dt = 5.0;
  c.prior.correlation_length = 2.0e4;
  // Prior marginal std dev of the seafloor velocity: a Mw ~8 rupture moves
  // the seafloor at O(0.1) m/s, so 0.2 m/s is a weakly informative choice.
  c.prior.sigma = 0.2;
  return c;
}

DigitalTwin::DigitalTwin(const TwinConfig& config)
    : cfg_(config), bathy_(config.bathymetry) {
  mesh_ = std::make_unique<HexMesh>(bathy_, cfg_.mesh_nx, cfg_.mesh_ny,
                                    cfg_.mesh_nz);
  model_ = std::make_unique<AcousticGravityModel>(*mesh_, cfg_.order,
                                                  cfg_.physics, cfg_.kernel);

  // Sensors offshore over the source region (seaward 2/3 of the margin);
  // gauges near the coast (landward side), where early warning matters.
  const double lx = mesh_->length_x(), ly = mesh_->length_y();
  sensors_ = std::make_unique<ObservationOperator>(
      ObservationOperator::seafloor_sensors(
          *model_,
          sensor_grid(cfg_.num_sensors, 0.08 * lx, 0.62 * lx, 0.06 * ly,
                      0.94 * ly)));
  gauges_ = std::make_unique<ObservationOperator>(
      ObservationOperator::surface_gauges(
          *model_, sensor_grid(cfg_.num_gauges, 0.78 * lx, 0.92 * lx,
                               0.10 * ly, 0.90 * ly)));

  // Temporal grid: substep count from the CFL bound.
  const double dt_cfl = model_->cfl_timestep(cfg_.cfl);
  const auto substeps = static_cast<std::size_t>(
      std::max(1.0, std::ceil(cfg_.observation_dt / dt_cfl)));
  time_.num_intervals = cfg_.num_intervals;
  time_.substeps = substeps;
  time_.dt = cfg_.observation_dt / static_cast<double>(substeps);

  // Spatial prior on the seafloor parameter grid; nominal node spacings.
  const auto& src = model_->source_map();
  const double hx = lx / static_cast<double>(src.grid_nx() - 1);
  const double hy = ly / static_cast<double>(src.grid_ny() - 1);
  prior_ = std::make_unique<MaternPrior>(src.grid_nx(), src.grid_ny(), hx, hy,
                                         cfg_.prior);
}

void DigitalTwin::run_phase1() {
  {
    ScopedTimer t(timers_, "phase1: form F");
    f_ = build_p2o_map(*model_, *sensors_, time_, &timers_);
  }
  {
    ScopedTimer t(timers_, "phase1: form Fq");
    fq_ = build_p2o_map(*model_, *gauges_, time_, &timers_);
  }
}

void DigitalTwin::run_phase2(const NoiseModel& noise) {
  if (!f_.toeplitz) throw std::logic_error("run_phase2: phase 1 not run");
  ScopedTimer t(timers_, "phase2: form+factorize K");
  hessian_ = std::make_unique<DataSpaceHessian>(*f_.toeplitz, *prior_, noise,
                                                64, &timers_);
  posterior_ = std::make_unique<Posterior>(*f_.toeplitz, *prior_, *hessian_);
}

void DigitalTwin::run_phase3() {
  if (!hessian_) throw std::logic_error("run_phase3: phase 2 not run");
  ScopedTimer t(timers_, "phase3: QoI covariance + Q");
  predictor_ = std::make_unique<QoiPredictor>(*f_.toeplitz, *fq_.toeplitz,
                                              *prior_, *hessian_, &timers_);
}

SyntheticEvent DigitalTwin::synthesize(const RuptureScenario& scenario,
                                       Rng& rng) const {
  SyntheticEvent ev;
  ev.m_true = scenario.sample(model_->source_map(), time_);

  std::vector<Matrix> series;
  forward_multi_observe(*model_, {sensors_.get(), gauges_.get()}, time_,
                        ev.m_true, series);
  const std::size_t nt = time_.num_intervals;
  const std::size_t nd = sensors_->num_outputs();
  const std::size_t nq = gauges_->num_outputs();
  ev.d_true.resize(nt * nd);
  for (std::size_t i = 0; i < nt; ++i)
    for (std::size_t s = 0; s < nd; ++s)
      ev.d_true[i * nd + s] = series[0](i, s);
  ev.q_true.resize(nt * nq);
  for (std::size_t i = 0; i < nt; ++i)
    for (std::size_t g = 0; g < nq; ++g)
      ev.q_true[i * nq + g] = series[1](i, g);

  ev.noise = relative_noise(ev.d_true, cfg_.noise_level);
  ev.d_obs = ev.d_true;
  for (auto& v : ev.d_obs) v += ev.noise.sigma * rng.normal();
  return ev;
}

InversionResult DigitalTwin::infer(std::span<const double> d_obs) const {
  if (!online_ready())
    throw std::logic_error("infer: offline phases not complete");
  InversionResult out;
  {
    Stopwatch w;
    out.m_map = posterior_->map_point(d_obs);
    out.infer_seconds = w.seconds();
  }
  {
    Stopwatch w;
    out.forecast = predictor_->predict(d_obs);
    out.predict_seconds = w.seconds();
  }
  return out;
}

StreamingEngine DigitalTwin::make_streaming(const StreamingOptions& options,
                                            TimerRegistry* timers) const {
  if (!online_ready())
    throw std::logic_error("make_streaming: offline phases not complete");
  return StreamingEngine(*posterior_, *predictor_, options, timers);
}

std::vector<double> DigitalTwin::displacement_field(
    std::span<const double> m) const {
  const std::size_t nm = model_->source_map().parameter_dim();
  const std::size_t nt = time_.num_intervals;
  if (m.size() != nm * nt)
    throw std::invalid_argument("displacement_field: size mismatch");
  std::vector<double> b(nm, 0.0);
  const double dt = time_.interval();
  for (std::size_t i = 0; i < nt; ++i)
    for (std::size_t r = 0; r < nm; ++r) b[r] += dt * m[i * nm + r];
  return b;
}

double DigitalTwin::relative_error(std::span<const double> estimate,
                                   std::span<const double> truth) {
  if (estimate.size() != truth.size())
    throw std::invalid_argument("relative_error: size mismatch");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = estimate[i] - truth[i];
    num += d * d;
    den += truth[i] * truth[i];
  }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

}  // namespace tsunami
