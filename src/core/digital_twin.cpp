#include "core/digital_twin.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "obs/trace.hpp"
#include "util/io.hpp"

namespace tsunami {

namespace {

// ---- TwinConfig <-> bundle packing -----------------------------------------
// Every result-determining config field, flattened to doubles in a fixed
// documented order. The fingerprint hashes exactly these bytes, so two
// configs fingerprint equal iff their offline artifacts are interchangeable.
// Build-strategy knobs (phase1_parallel) are deliberately NOT packed: they
// change how artifacts are computed, never what they contain.
constexpr std::size_t kNumConfigFields = 25;

std::vector<double> pack_config(const TwinConfig& c) {
  return {
      c.bathymetry.length_x,       c.bathymetry.length_y,
      c.bathymetry.depth_abyssal,  c.bathymetry.depth_shelf,
      c.bathymetry.slope_center,   c.bathymetry.slope_width,
      c.bathymetry.undulation_amp, c.bathymetry.undulation_waves,
      c.bathymetry.min_depth,
      static_cast<double>(c.mesh_nx),
      static_cast<double>(c.mesh_ny),
      static_cast<double>(c.mesh_nz),
      static_cast<double>(c.order),
      c.physics.rho,               c.physics.sound_speed,
      c.physics.gravity,
      static_cast<double>(static_cast<int>(c.kernel)),
      c.cfl,
      static_cast<double>(c.num_sensors),
      static_cast<double>(c.num_gauges),
      static_cast<double>(c.num_intervals),
      c.observation_dt,
      c.prior.sigma,               c.prior.correlation_length,
      c.noise_level,
  };
}

std::size_t unpack_size(double v, const char* what, std::size_t lo,
                        std::size_t hi) {
  // Bundle fields are untrusted input: a crafted config with a
  // self-consistent fingerprint must not be able to drive the constructor
  // into wrapped or exabyte-scale allocations. The caps are far above paper
  // scale but far below overflow territory.
  if (!(v >= 0.0) || v != std::floor(v) ||
      v < static_cast<double>(lo) || v > static_cast<double>(hi))
    throw std::runtime_error(std::string("artifact bundle config: bad ") +
                             what);
  return static_cast<std::size_t>(v);
}

TwinConfig unpack_config(const std::vector<double>& p) {
  if (p.size() != kNumConfigFields)
    throw std::runtime_error(
        "artifact bundle config: unexpected field count");
  TwinConfig c;
  c.bathymetry.length_x = p[0];
  c.bathymetry.length_y = p[1];
  c.bathymetry.depth_abyssal = p[2];
  c.bathymetry.depth_shelf = p[3];
  c.bathymetry.slope_center = p[4];
  c.bathymetry.slope_width = p[5];
  c.bathymetry.undulation_amp = p[6];
  c.bathymetry.undulation_waves = p[7];
  c.bathymetry.min_depth = p[8];
  c.mesh_nx = unpack_size(p[9], "mesh_nx", 1, 1u << 16);
  c.mesh_ny = unpack_size(p[10], "mesh_ny", 1, 1u << 16);
  c.mesh_nz = unpack_size(p[11], "mesh_nz", 1, 1u << 16);
  if (checked_mul_u64(checked_mul_u64(c.mesh_nx, c.mesh_ny,
                                      "artifact bundle config: mesh"),
                      c.mesh_nz, "artifact bundle config: mesh") > (1u << 28))
    throw std::runtime_error("artifact bundle config: mesh too large");
  c.order = unpack_size(p[12], "order", 1, 32);
  c.physics.rho = p[13];
  c.physics.sound_speed = p[14];
  c.physics.gravity = p[15];
  const std::size_t kernel =
      unpack_size(p[16], "kernel variant", 0, all_kernel_variants().size() - 1);
  c.kernel = static_cast<KernelVariant>(kernel);
  c.cfl = p[17];
  c.num_sensors = unpack_size(p[18], "num_sensors", 1, 1u << 20);
  c.num_gauges = unpack_size(p[19], "num_gauges", 1, 1u << 20);
  c.num_intervals = unpack_size(p[20], "num_intervals", 1, 1u << 24);
  c.observation_dt = p[21];
  c.prior.sigma = p[22];
  c.prior.correlation_length = p[23];
  c.noise_level = p[24];
  return c;
}

/// Rebuild a P2oMap (blocks + FFT Toeplitz engine) from a bundle section.
P2oMap p2o_from_section(const BundleSection& s) {
  P2oMap m;
  m.nrows = static_cast<std::size_t>(s.dims[0]);
  m.ncols = static_cast<std::size_t>(s.dims[1]);
  m.nt = static_cast<std::size_t>(s.dims[2]);
  m.blocks = s.data;
  m.toeplitz = std::make_unique<BlockToeplitz>(
      m.nrows, m.ncols, m.nt, std::span<const double>(m.blocks));
  return m;
}

void expect_p2o_dims(const BundleSection& s, std::size_t nrows,
                     std::size_t ncols, std::size_t nt) {
  if (s.dims.size() != 3 || s.dims[0] != nrows || s.dims[1] != ncols ||
      s.dims[2] != nt)
    throw std::runtime_error("artifact bundle: section '" + s.name +
                             "' dimensions do not match this configuration");
}

}  // namespace

std::uint64_t TwinConfig::fingerprint() const {
  const std::vector<double> packed = pack_config(*this);
  return fnv1a(packed.data(), packed.size() * sizeof(double));
}

TwinConfig TwinConfig::tiny() {
  TwinConfig c;
  c.bathymetry = flat_basin(2000.0, 60e3, 80e3);
  c.mesh_nx = 6;
  c.mesh_ny = 8;
  c.mesh_nz = 2;
  c.order = 2;
  c.num_sensors = 6;
  c.num_gauges = 3;
  c.num_intervals = 12;
  c.observation_dt = 5.0;
  c.prior.correlation_length = 2.0e4;
  // Prior marginal std dev of the seafloor velocity: a Mw ~8 rupture moves
  // the seafloor at O(0.1) m/s, so 0.2 m/s is a weakly informative choice.
  c.prior.sigma = 0.2;
  return c;
}

DigitalTwin::DigitalTwin(const TwinConfig& config)
    : cfg_(config), bathy_(config.bathymetry) {
  mesh_ = std::make_unique<HexMesh>(bathy_, cfg_.mesh_nx, cfg_.mesh_ny,
                                    cfg_.mesh_nz);
  model_ = std::make_unique<AcousticGravityModel>(*mesh_, cfg_.order,
                                                  cfg_.physics, cfg_.kernel);

  // Sensors offshore over the source region (seaward 2/3 of the margin);
  // gauges near the coast (landward side), where early warning matters.
  const double lx = mesh_->length_x(), ly = mesh_->length_y();
  sensors_ = std::make_unique<ObservationOperator>(
      ObservationOperator::seafloor_sensors(
          *model_,
          sensor_grid(cfg_.num_sensors, 0.08 * lx, 0.62 * lx, 0.06 * ly,
                      0.94 * ly)));
  gauges_ = std::make_unique<ObservationOperator>(
      ObservationOperator::surface_gauges(
          *model_, sensor_grid(cfg_.num_gauges, 0.78 * lx, 0.92 * lx,
                               0.10 * ly, 0.90 * ly)));

  // Temporal grid: substep count from the CFL bound.
  const double dt_cfl = model_->cfl_timestep(cfg_.cfl);
  const auto substeps = static_cast<std::size_t>(
      std::max(1.0, std::ceil(cfg_.observation_dt / dt_cfl)));
  time_.num_intervals = cfg_.num_intervals;
  time_.substeps = substeps;
  time_.dt = cfg_.observation_dt / static_cast<double>(substeps);

  // Spatial prior on the seafloor parameter grid; nominal node spacings.
  const auto& src = model_->source_map();
  const double hx = lx / static_cast<double>(src.grid_nx() - 1);
  const double hy = ly / static_cast<double>(src.grid_ny() - 1);
  prior_ = std::make_unique<MaternPrior>(src.grid_nx(), src.grid_ny(), hx, hy,
                                         cfg_.prior);
}

DigitalTwin::DigitalTwin(const ArtifactBundle& bundle)
    : DigitalTwin(config_from_bundle(bundle)) {
  install_offline(bundle);
}

TwinConfig DigitalTwin::config_from_bundle(const ArtifactBundle& bundle) {
  const TwinConfig cfg = unpack_config(bundle.vector("config"));
  // The stored fingerprint must reproduce from the stored config: a
  // mismatch means the bundle's identity and its contents disagree
  // (tampering, a partial rewrite, or a producer/consumer field-order skew).
  if (cfg.fingerprint() != bundle.fingerprint)
    throw std::runtime_error(
        "artifact bundle: config fingerprint mismatch (bundle identity "
        "disagrees with its stored configuration)");
  return cfg;
}

void DigitalTwin::install_offline(const ArtifactBundle& bundle) {
  ScopedTimer t(timers_, "warm start: install bundle");
  const std::size_t nm = model_->source_map().parameter_dim();
  const std::size_t nt = time_.num_intervals;
  const std::size_t n = data_dim();

  const BundleSection& f_sec = bundle.at("p2o/F");
  expect_p2o_dims(f_sec, sensors_->num_outputs(), nm, nt);
  const BundleSection& fq_sec = bundle.at("p2o/Fq");
  expect_p2o_dims(fq_sec, gauges_->num_outputs(), nm, nt);

  const std::vector<double> sigma = bundle.vector("noise/sigma");
  if (sigma.size() != 1 || !(sigma[0] > 0.0))
    throw std::runtime_error("artifact bundle: bad noise/sigma section");

  Matrix l = bundle.matrix("hessian/chol_L");
  if (l.rows() != n || l.cols() != n)
    throw std::runtime_error(
        "artifact bundle: Cholesky factor dimensions do not match this "
        "configuration");
  Matrix q = bundle.matrix("qoi/Q");
  const std::size_t nqoi = cfg_.num_gauges * nt;
  if (q.rows() != nqoi || q.cols() != n)
    throw std::runtime_error(
        "artifact bundle: Q dimensions do not match this configuration");
  Matrix cov = bundle.matrix("qoi/cov");
  if (cov.rows() != nqoi || cov.cols() != nqoi)
    throw std::runtime_error(
        "artifact bundle: Gamma_post(q) dimensions do not match this "
        "configuration");

  // All sections validated; rebuild the online operators. No PDE solves, no
  // Hessian formation, no factorization — the whole point of the split.
  f_ = p2o_from_section(f_sec);
  fq_ = p2o_from_section(fq_sec);
  hessian_ = std::make_unique<DataSpaceHessian>(
      DataSpaceHessian::from_factor(std::move(l), NoiseModel{sigma[0]}));
  posterior_ = std::make_unique<Posterior>(*f_.toeplitz, *prior_, *hessian_);
  predictor_ = std::make_unique<QoiPredictor>(*fq_.toeplitz, std::move(q),
                                              std::move(cov));
  refresh_offline_epoch();
}

ArtifactBundle DigitalTwin::make_bundle() const {
  if (!online_ready())
    throw std::logic_error("make_bundle: offline phases not complete");
  ArtifactBundle b;
  b.fingerprint = cfg_.fingerprint();
  b.set("config", {kNumConfigFields}, pack_config(cfg_));
  b.set_vector("noise/sigma",
               std::span<const double>(&hessian_->noise().sigma, 1));
  b.set("p2o/F", {f_.nrows, f_.ncols, f_.nt}, f_.blocks);
  b.set("p2o/Fq", {fq_.nrows, fq_.ncols, fq_.nt}, fq_.blocks);
  b.set_matrix("hessian/chol_L", hessian_->cholesky().factor());
  b.set_matrix("qoi/Q", predictor_->data_to_qoi());
  b.set_matrix("qoi/cov", predictor_->qoi_covariance());
  return b;
}

void DigitalTwin::save_offline(const std::string& path) const {
  save_bundle(path, make_bundle());
}

DigitalTwin DigitalTwin::load_offline(const std::string& path) {
  return DigitalTwin(load_bundle(path));
}

DigitalTwin DigitalTwin::load_offline(const std::string& path,
                                      const TwinConfig& expected) {
  const ArtifactBundle bundle = load_bundle(path);
  if (bundle.fingerprint != expected.fingerprint())
    throw std::runtime_error(
        "load_offline: bundle was produced by a different twin "
        "configuration: " +
        path);
  return DigitalTwin(bundle);
}

void DigitalTwin::refresh_offline_epoch() {
  const std::uint64_t next = offline_epoch_ ? *offline_epoch_ + 1 : 1;
  offline_epoch_ = std::make_shared<const std::uint64_t>(next);
}

void DigitalTwin::run_phase1() {
  TRACE_SCOPE("offline", "phase1");
  {
    ScopedTimer t(timers_, "phase1: form F");
    f_ = build_p2o_map(*model_, *sensors_, time_, &timers_,
                       {.parallel_rows = cfg_.phase1_parallel});
  }
  {
    ScopedTimer t(timers_, "phase1: form Fq");
    fq_ = build_p2o_map(*model_, *gauges_, time_, &timers_,
                        {.parallel_rows = cfg_.phase1_parallel});
  }
  // The posterior/predictor (if any) now reference a stale F; streaming
  // engines built over them must not keep slicing it.
  refresh_offline_epoch();
}

void DigitalTwin::run_phase2(const NoiseModel& noise) {
  if (!f_.toeplitz) throw std::logic_error("run_phase2: phase 1 not run");
  TRACE_SCOPE("offline", "phase2");
  ScopedTimer t(timers_, "phase2: form+factorize K");
  hessian_ = std::make_unique<DataSpaceHessian>(*f_.toeplitz, *prior_, noise,
                                                64, &timers_);
  posterior_ = std::make_unique<Posterior>(*f_.toeplitz, *prior_, *hessian_);
  refresh_offline_epoch();
}

void DigitalTwin::run_phase3() {
  if (!hessian_) throw std::logic_error("run_phase3: phase 2 not run");
  TRACE_SCOPE("offline", "phase3");
  ScopedTimer t(timers_, "phase3: QoI covariance + Q");
  predictor_ = std::make_unique<QoiPredictor>(*f_.toeplitz, *fq_.toeplitz,
                                              *prior_, *hessian_, &timers_);
  refresh_offline_epoch();
}

SyntheticEvent DigitalTwin::synthesize(const RuptureScenario& scenario,
                                       Rng& rng) const {
  SyntheticEvent ev;
  ev.m_true = scenario.sample(model_->source_map(), time_);

  std::vector<Matrix> series;
  forward_multi_observe(*model_, {sensors_.get(), gauges_.get()}, time_,
                        ev.m_true, series);
  const std::size_t nt = time_.num_intervals;
  const std::size_t nd = sensors_->num_outputs();
  const std::size_t nq = gauges_->num_outputs();
  ev.d_true.resize(nt * nd);
  for (std::size_t i = 0; i < nt; ++i)
    for (std::size_t s = 0; s < nd; ++s)
      ev.d_true[i * nd + s] = series[0](i, s);
  ev.q_true.resize(nt * nq);
  for (std::size_t i = 0; i < nt; ++i)
    for (std::size_t g = 0; g < nq; ++g)
      ev.q_true[i * nq + g] = series[1](i, g);

  ev.noise = relative_noise(ev.d_true, cfg_.noise_level);
  ev.d_obs = ev.d_true;
  for (auto& v : ev.d_obs) v += ev.noise.sigma * rng.normal();
  return ev;
}

InversionResult DigitalTwin::infer(std::span<const double> d_obs) const {
  if (!online_ready())
    throw std::logic_error("infer: offline phases not complete");
  InversionResult out;
  {
    Stopwatch w;
    out.m_map = posterior_->map_point(d_obs);
    out.infer_seconds = w.seconds();
  }
  {
    Stopwatch w;
    out.forecast = predictor_->predict(d_obs);
    out.predict_seconds = w.seconds();
  }
  return out;
}

StreamingEngine DigitalTwin::make_streaming(const StreamingOptions& options,
                                            TimerRegistry* timers) const {
  if (!online_ready())
    throw std::logic_error("make_streaming: offline phases not complete");
  return StreamingEngine(*posterior_, *predictor_, options, timers,
                         offline_epoch_);
}

std::vector<double> DigitalTwin::displacement_field(
    std::span<const double> m) const {
  const std::size_t nm = model_->source_map().parameter_dim();
  const std::size_t nt = time_.num_intervals;
  if (m.size() != nm * nt)
    throw std::invalid_argument("displacement_field: size mismatch");
  std::vector<double> b(nm, 0.0);
  const double dt = time_.interval();
  for (std::size_t i = 0; i < nt; ++i)
    for (std::size_t r = 0; r < nm; ++r) b[r] += dt * m[i * nm + r];
  return b;
}

double DigitalTwin::relative_error(std::span<const double> estimate,
                                   std::span<const double> truth) {
  if (estimate.size() != truth.size())
    throw std::invalid_argument("relative_error: size mismatch");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = estimate[i] - truth[i];
    num += d * d;
    den += truth[i] * truth[i];
  }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

}  // namespace tsunami
