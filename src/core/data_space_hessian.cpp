#include "core/data_space_hessian.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "parallel/parallel_for.hpp"

namespace tsunami {

NoiseModel relative_noise(std::span<const double> d, double level) {
  double dmax = 0.0;
  for (double v : d) dmax = std::max(dmax, std::abs(v));
  if (dmax == 0.0) dmax = 1.0;
  return NoiseModel{level * dmax};
}

void apply_f_prior(const BlockToeplitz& f, const MaternPrior& prior,
                   const Matrix& a_cols, Matrix& out_cols, Matrix& ga_scratch,
                   ToeplitzWorkspace& ws) {
  const std::size_t n = f.input_dim();
  if (a_cols.rows() != n)
    throw std::invalid_argument("apply_f_prior: row mismatch");
  // Gamma_prior applied column-wise (block diagonal in time); the prior
  // owns the per-thread contiguous-column staging, so the batched K-forming
  // loop allocates nothing here after its first iteration.
  prior.apply_time_blocks_columns(a_cols, ga_scratch, f.num_blocks());
  f.apply_many(ga_scratch, out_cols, ws);
}

void apply_f_prior(const BlockToeplitz& f, const MaternPrior& prior,
                   const Matrix& a_cols, Matrix& out_cols) {
  Matrix ga;
  ToeplitzWorkspace ws;
  apply_f_prior(f, prior, a_cols, out_cols, ga, ws);
}

DataSpaceHessian::DataSpaceHessian(const BlockToeplitz& f,
                                   const MaternPrior& prior,
                                   const NoiseModel& noise, std::size_t batch,
                                   TimerRegistry* timers)
    : noise_(noise) {
  const std::size_t n = f.output_dim();  // Nd * Nt
  const std::size_t nt = f.num_blocks();
  const std::size_t nd = f.block_rows();
  const std::size_t nm = f.block_cols();
  k_ = Matrix(n, n);

  Stopwatch form_watch;
  // Columns of F G* = F Gamma_prior F^T in batches. F^T applied to a unit
  // vector e_(i,s) has the closed form (F^T e)_(j,:) = F_{i-j}[s,:] (j <= i),
  // read straight out of the Fourier-free transpose; we use the Toeplitz
  // transpose matvec for exactness and simplicity of batching.
  // All batch scratch (unit columns, the two staging matrices, the Toeplitz
  // workspace) is hoisted out of the loop: only the first iteration — or a
  // smaller final remainder batch — allocates.
  Matrix units;     // n x nb unit columns
  Matrix ft_units;  // (Nm Nt) x nb
  Matrix cols;      // n x nb
  Matrix ga;        // (Nm Nt) x nb prior staging
  ToeplitzWorkspace ws;
  std::size_t col0 = 0;
  while (col0 < n) {
    const std::size_t nb = std::min(batch, n - col0);
    if (units.rows() != n || units.cols() != nb) units = Matrix(n, nb);
    if (col0 > 0)
      for (std::size_t v = 0; v < nb; ++v) units(col0 - nb + v, v) = 0.0;
    for (std::size_t v = 0; v < nb; ++v) units(col0 + v, v) = 1.0;
    f.apply_transpose_many(units, ft_units, ws);
    apply_f_prior(f, prior, ft_units, cols, ga, ws);
    for (std::size_t v = 0; v < nb; ++v)
      for (std::size_t i = 0; i < n; ++i) k_(i, col0 + v) = cols(i, v);
    col0 += nb;
  }
  (void)nt;
  (void)nd;
  (void)nm;

  // Measure asymmetry, then symmetrize and add the noise diagonal.
  double asym = 0.0, kmax = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      asym = std::max(asym, std::abs(k_(i, j) - k_(j, i)));
      kmax = std::max(kmax, std::abs(k_(i, j)));
    }
  for (std::size_t i = 0; i < n; ++i) kmax = std::max(kmax, std::abs(k_(i, i)));
  asymmetry_ = kmax > 0 ? asym / kmax : 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = 0.5 * (k_(i, j) + k_(j, i));
      k_(i, j) = v;
      k_(j, i) = v;
    }
  for (std::size_t i = 0; i < n; ++i) k_(i, i) += noise_.variance();
  if (timers) timers->add("form K", form_watch.seconds());

  Stopwatch chol_watch;
  chol_ = std::make_unique<DenseCholesky>(k_);
  if (timers) timers->add("factorize K", chol_watch.seconds());
}

DataSpaceHessian DataSpaceHessian::from_factor(Matrix l_factor,
                                               const NoiseModel& noise) {
  DataSpaceHessian h;
  h.noise_ = noise;
  h.chol_ =
      std::make_unique<DenseCholesky>(DenseCholesky::from_factor(
          std::move(l_factor)));
  return h;
}

const Matrix& DataSpaceHessian::matrix() const {
  if (k_.rows() != dim())
    throw std::logic_error(
        "DataSpaceHessian::matrix: K not retained on a warm-started "
        "(from_factor) instance — only the Cholesky factor ships in the "
        "artifact bundle");
  return k_;
}

void DataSpaceHessian::decouple_channels(const SensorMask& mask,
                                         std::size_t channels_per_tick) {
  const std::size_t n = dim();
  if (channels_per_tick == 0 || n % channels_per_tick != 0)
    throw std::invalid_argument(
        "DataSpaceHessian::decouple_channels: dim not a multiple of "
        "channels_per_tick");
  if (mask.size() != channels_per_tick)
    throw std::invalid_argument(
        "DataSpaceHessian::decouple_channels: mask size mismatch");
  const double var = noise_.variance();
  std::vector<double> v(n), u(n);
  for (std::size_t p = 0; p < n; ++p) {
    if (!mask.masked(p % channels_per_tick)) continue;
    // Current column K e_p, straight from the factor: L^T e_p is row p of L
    // (nonzero only up to p), so K e_p = L (L^T e_p) costs O(n p).
    const Matrix& l = chol_->factor();
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      const std::size_t jmax = std::min(i, p);
      for (std::size_t j = 0; j <= jmax; ++j) s += l(i, j) * l(p, j);
      v[i] = s;
    }
    // Target row/col: sigma^2 e_p.  K' = K - e_p v^T - v e_p^T with
    //   v = K e_p - sigma^2 e_p - 1/2 (K_pp - sigma^2) e_p
    // touches exactly row/column p.  Off-diagonal entries of v are K_ip.
    const double kpp = v[p];
    v[p] = 0.5 * (kpp - var);
    double alpha2 = 0.0;
    for (double x : v) alpha2 += x * x;
    const double alpha = std::sqrt(alpha2);
    // Already-decoupled row (repeat call, or a channel whose rows were never
    // coupled): correction is numerically zero — skip, keeping the edit
    // idempotent and avoiding a degenerate hyperbolic rotation.
    if (alpha <= 1e-15 * std::max(std::abs(kpp), var)) continue;
    // Split the symmetric rank-2 term:  e v^T + v e^T =
    //   (1/2a)[(a e + v)(a e + v)^T - (a e - v)(a e - v)^T],   a = |v|.
    // Apply the SPD-safe order: grow first (update with (a e - v)), then
    // shrink (downdate with (a e + v)).
    const double scale = 1.0 / std::sqrt(2.0 * alpha);
    for (std::size_t i = 0; i < n; ++i)
      u[i] = ((i == p ? alpha : 0.0) - v[i]) * scale;
    chol_->rank_update(u);
    for (std::size_t i = 0; i < n; ++i)
      u[i] = ((i == p ? alpha : 0.0) + v[i]) * scale;
    chol_->rank_downdate(u);
    if (k_.rows() == n) {
      for (std::size_t i = 0; i < n; ++i) {
        k_(i, p) = 0.0;
        k_(p, i) = 0.0;
      }
      k_(p, p) = var;
    }
  }
}

void DataSpaceHessian::solve(std::span<const double> x,
                             std::span<double> y) const {
  if (x.size() != dim() || y.size() != dim())
    throw std::invalid_argument("DataSpaceHessian::solve: size mismatch");
  std::copy(x.begin(), x.end(), y.begin());
  chol_->solve_in_place(y);
}

}  // namespace tsunami
