#include "core/scenario_bank.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <span>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "parallel/parallel_for.hpp"
#include "util/table.hpp"

namespace tsunami {

namespace {

const DigitalTwin& require_twin(
    const std::shared_ptr<const DigitalTwin>& twin) {
  if (!twin) throw std::invalid_argument("ScenarioBank: null twin");
  return *twin;
}

}  // namespace

ScenarioBank::ScenarioBank(const DigitalTwin& twin,
                           std::vector<ScenarioSpec> specs)
    : twin_(twin), specs_(std::move(specs)) {
  if (specs_.empty())
    throw std::invalid_argument("ScenarioBank: empty scenario list");
}

ScenarioBank::ScenarioBank(std::shared_ptr<const DigitalTwin> twin,
                           std::vector<ScenarioSpec> specs)
    : owned_(std::move(twin)), twin_(require_twin(owned_)),
      specs_(std::move(specs)) {
  if (specs_.empty())
    throw std::invalid_argument("ScenarioBank: empty scenario list");
}

ScenarioBank ScenarioBank::from_bundle(const std::string& bundle_path,
                                       std::size_t n, unsigned seed) {
  auto twin = std::make_shared<const DigitalTwin>(
      DigitalTwin::load_offline(bundle_path));
  std::vector<ScenarioSpec> specs = spread(*twin, n, seed);
  return ScenarioBank(std::move(twin), std::move(specs));
}

std::vector<ScenarioSpec> ScenarioBank::spread(const DigitalTwin& twin,
                                               std::size_t n, unsigned seed) {
  if (n == 0) throw std::invalid_argument("ScenarioBank::spread: n == 0");
  const double lx = twin.mesh().length_x();
  const double ly = twin.mesh().length_y();
  Rng rng(seed);
  std::vector<ScenarioSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double f =
        n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1) : 0.5;
    ScenarioSpec s;
    // Stratified magnitude ladder with jitter: the bank always spans the
    // [8.0, 9.1] range instead of clustering.
    s.magnitude = 8.0 + 1.1 * f + 0.05 * (rng.uniform() - 0.5);
    // Nucleation swept along strike over the instrumented core of the
    // locked zone (edge events lose observability to the domain boundary).
    s.hypocenter_x = lx * (0.28 + 0.14 * rng.uniform());
    s.hypocenter_y = ly * (0.25 + 0.5 * f);
    s.rise_time = 8.0 + 8.0 * rng.uniform();
    s.rupture_speed = 2000.0 + 1000.0 * rng.uniform();
    s.seed = seed + 101 * static_cast<unsigned>(i + 1);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "Mw%.2f-h%02.0f%%", s.magnitude,
                  100.0 * s.hypocenter_y / ly);
    s.name = buf;
    specs.push_back(s);
  }
  return specs;
}

RuptureConfig ScenarioBank::rupture_config(const ScenarioSpec& spec) const {
  const double lx = twin_.mesh().length_x();
  const double ly = twin_.mesh().length_y();
  RuptureConfig rc;
  if (spec.style == RuptureStyle::kMarginWide) {
    rc = margin_wide_scenario(lx, ly, spec.magnitude, spec.seed);
  } else {
    // Compact event: dominant asperity at the nucleation point (onset time
    // zero at the source, so the short seed-scale windows observe the whole
    // rupture), plus a secondary along-strike asperity for larger events.
    Rng rng(spec.seed);
    const double peak = 3.0 * std::pow(10.0, 0.5 * (spec.magnitude - 8.7));
    const double cx = spec.hypocenter_x >= 0.0 ? spec.hypocenter_x : 0.35 * lx;
    const double cy = spec.hypocenter_y >= 0.0 ? spec.hypocenter_y : 0.5 * ly;
    Asperity main;
    main.x0 = cx;
    main.y0 = cy;
    main.rx = lx * (0.20 + 0.06 * rng.uniform());
    main.ry = ly * (0.22 + 0.08 * rng.uniform());
    main.peak_uplift = peak;
    main.angle = 0.25 * (rng.uniform() - 0.5);
    rc.asperities.push_back(main);
    if (spec.magnitude >= 8.5) {
      Asperity side = main;
      const double dir = rng.uniform() < 0.5 ? -1.0 : 1.0;
      side.y0 = std::clamp(cy + dir * ly * (0.18 + 0.1 * rng.uniform()),
                           0.08 * ly, 0.92 * ly);
      side.rx *= 0.8;
      side.ry *= 0.7;
      side.peak_uplift = peak * (0.4 + 0.3 * rng.uniform());
      rc.asperities.push_back(side);
    }
    rc.hypocenter_x = cx;
    rc.hypocenter_y = cy;
  }
  if (spec.hypocenter_x >= 0.0) rc.hypocenter_x = spec.hypocenter_x;
  if (spec.hypocenter_y >= 0.0) rc.hypocenter_y = spec.hypocenter_y;
  rc.rise_time = spec.rise_time;
  rc.rupture_speed = spec.rupture_speed;
  return rc;
}

void ScenarioBank::synthesize(unsigned noise_seed) {
  events_.assign(specs_.size(), SyntheticEvent{});
  // Parallel over scenarios; every draw comes from a per-scenario stream
  // seeded by (noise_seed, index) alone, and the forward model writes only
  // disjoint state, so the bank is bit-identical at any thread count.
  parallel_for(specs_.size(), [&](std::size_t i) {
    const RuptureScenario scenario(rupture_config(specs_[i]));
    Rng rng(noise_seed + static_cast<unsigned>(i));
    events_[i] = twin_.synthesize(scenario, rng);
  });
  std::vector<double> sigmas;
  sigmas.reserve(events_.size());
  for (const auto& ev : events_) sigmas.push_back(ev.noise.sigma);
  // One absolute noise floor for the whole bank: the median of the per-event
  // relative calibrations. A real seafloor network has fixed instrument
  // noise, not noise that scales with each event — and it lets the Hessian
  // be factorized once against exactly the calibration every event sees.
  std::nth_element(sigmas.begin(), sigmas.begin() + sigmas.size() / 2,
                   sigmas.end());
  const double sigma = sigmas[sigmas.size() / 2];
  parallel_for(events_.size(), [&](std::size_t i) {
    SyntheticEvent& ev = events_[i];
    ev.noise = NoiseModel{sigma};
    Rng rng(noise_seed + 7919u * static_cast<unsigned>(i + 1));
    ev.d_obs = ev.d_true;
    for (auto& v : ev.d_obs) v += sigma * rng.normal();
  });
}

NoiseModel ScenarioBank::shared_noise() const {
  if (events_.empty())
    throw std::logic_error("ScenarioBank::shared_noise: synthesize() first");
  return events_.front().noise;
}

namespace {

double correlation(std::span<const double> a, std::span<const double> b) {
  return dot(a, b) / (nrm2(a) * nrm2(b) + 1e-30);
}

}  // namespace

EnsembleReport ScenarioBank::run_online(bool parallel) const {
  if (events_.size() != specs_.size())
    throw std::logic_error("ScenarioBank::run_online: synthesize() first");
  // Check the offline-phase precondition up front, before any parallel work
  // starts (parallel_for does propagate exceptions, but a precondition
  // failure should not cost a sweep launch).
  if (!twin_.online_ready())
    throw std::logic_error("ScenarioBank::run_online: offline phases not run");

  EnsembleReport report;
  report.scenarios.resize(specs_.size());

  Stopwatch wall;
  const auto run_one = [&](std::size_t i) {
    const SyntheticEvent& ev = events_[i];
    ScenarioResult& res = report.scenarios[i];
    res.spec = specs_[i];

    const InversionResult inv = twin_.infer(ev.d_obs);
    res.infer_seconds = inv.infer_seconds;
    res.predict_seconds = inv.predict_seconds;
    res.online_seconds = inv.infer_seconds + inv.predict_seconds;

    const auto b_true = twin_.displacement_field(ev.m_true);
    const auto b_map = twin_.displacement_field(inv.m_map);
    res.displacement_error = DigitalTwin::relative_error(b_map, b_true);
    res.displacement_correlation = correlation(b_map, b_true);
    res.peak_true_uplift = amax(b_true);
    res.peak_inferred_uplift = amax(b_map);

    const Forecast& fc = inv.forecast;
    res.forecast_error = DigitalTwin::relative_error(fc.mean, ev.q_true);
    res.forecast_correlation = correlation(fc.mean, ev.q_true);
    int inside = 0, total = 0;
    for (std::size_t j = 0; j < fc.mean.size(); ++j) {
      if (fc.stddev[j] < 1e-12) continue;
      ++total;
      if (ev.q_true[j] >= fc.lower95[j] && ev.q_true[j] <= fc.upper95[j])
        ++inside;
    }
    res.ci_coverage =
        total > 0 ? static_cast<double>(inside) / static_cast<double>(total)
                  : 1.0;
  };

  if (parallel) {
    parallel_for(specs_.size(), run_one);
  } else {
    for (std::size_t i = 0; i < specs_.size(); ++i) run_one(i);
  }
  report.online_wall_seconds = wall.seconds();

  std::vector<double> online_samples;
  online_samples.reserve(report.scenarios.size());
  for (const auto& r : report.scenarios)
    online_samples.push_back(r.online_seconds);
  report.online_latency = summarize_latencies(std::move(online_samples));

  const double n = static_cast<double>(report.scenarios.size());
  for (const auto& r : report.scenarios) {
    report.mean_online_seconds += r.online_seconds / n;
    report.max_online_seconds =
        std::max(report.max_online_seconds, r.online_seconds);
    report.mean_displacement_error += r.displacement_error / n;
    report.mean_displacement_correlation += r.displacement_correlation / n;
    report.mean_forecast_error += r.forecast_error / n;
    report.mean_forecast_correlation += r.forecast_correlation / n;
    report.mean_ci_coverage += r.ci_coverage / n;
  }
  return report;
}

StreamingSweepReport ScenarioBank::run_streaming(const StreamingEngine& engine,
                                                 bool parallel,
                                                 double tolerance) const {
  if (events_.size() != specs_.size())
    throw std::logic_error("ScenarioBank::run_streaming: synthesize() first");
  // Full dimension check up front, before any parallel work starts
  // (parallel_for does propagate exceptions, but a mismatch should fail
  // before the sweep launches).
  if (engine.data_dim() != twin_.data_dim() ||
      engine.num_ticks() != twin_.time_grid().num_intervals ||
      engine.qoi_dim() != events_.front().q_true.size())
    throw std::invalid_argument(
        "ScenarioBank::run_streaming: engine/twin dimension mismatch");
  if (tolerance <= 0.0)
    throw std::invalid_argument("ScenarioBank::run_streaming: tolerance <= 0");

  const std::size_t nt = engine.num_ticks();
  const std::size_t nd = engine.block_size();
  const double dt = twin_.config().observation_dt;

  StreamingSweepReport report;
  report.tolerance = tolerance;
  report.scenarios.resize(specs_.size());
  // Per-scenario slots (disjoint writes under parallel_for); flattened into
  // the sweep-wide percentile summary after the barrier.
  std::vector<std::vector<double>> push_samples(specs_.size());

  Stopwatch wall;
  const auto run_one = [&](std::size_t i) {
    const SyntheticEvent& ev = events_[i];
    StreamingScenarioResult& res = report.scenarios[i];
    res.spec = specs_[i];
    res.ticks_total = nt;
    push_samples[i].reserve(nt);

    StreamingAssimilator assim = engine.start();
    Matrix q_history(nt, engine.qoi_dim());
    for (std::size_t t = 0; t < nt; ++t) {
      assim.push(t, std::span<const double>(ev.d_obs).subspan(t * nd, nd));
      push_samples[i].push_back(assim.last_push_seconds());
      res.max_push_seconds =
          std::max(res.max_push_seconds, assim.last_push_seconds());
      const auto& q = assim.qoi_mean();
      std::copy(q.begin(), q.end(), q_history.row(t).begin());
    }
    res.mean_push_seconds =
        assim.total_push_seconds() / static_cast<double>(nt);

    // Time-to-confident-forecast: walk back from the final tick while the
    // rolling mean stays within tolerance of the full-data forecast.
    const auto q_final = q_history.row(nt - 1);
    const double q_norm = nrm2(q_final) + 1e-30;
    std::size_t confident = nt;
    for (std::size_t t = nt; t-- > 0;) {
      double diff2 = 0.0;
      const auto q_t = q_history.row(t);
      for (std::size_t j = 0; j < q_t.size(); ++j) {
        const double d = q_t[j] - q_final[j];
        diff2 += d * d;
      }
      if (std::sqrt(diff2) / q_norm > tolerance) break;
      confident = t + 1;
    }
    res.confident_tick = confident;
    res.confident_seconds = static_cast<double>(confident) * dt;

    res.final_forecast_error =
        DigitalTwin::relative_error(q_final, ev.q_true);
    res.final_forecast_correlation = correlation(q_final, ev.q_true);
    res.map_tracked = engine.tracks_map();
    if (res.map_tracked) {
      const auto b_true = twin_.displacement_field(ev.m_true);
      const auto b_map = twin_.displacement_field(assim.map_estimate());
      res.displacement_correlation = correlation(b_map, b_true);
    }
  };

  if (parallel) {
    parallel_for(specs_.size(), run_one);
  } else {
    for (std::size_t i = 0; i < specs_.size(); ++i) run_one(i);
  }
  report.wall_seconds = wall.seconds();

  std::vector<double> all_pushes;
  all_pushes.reserve(specs_.size() * nt);
  for (const auto& s : push_samples)
    all_pushes.insert(all_pushes.end(), s.begin(), s.end());
  report.push_latency = summarize_latencies(std::move(all_pushes));

  const double n = static_cast<double>(report.scenarios.size());
  for (const auto& r : report.scenarios) {
    report.mean_confident_seconds += r.confident_seconds / n;
    report.max_confident_seconds =
        std::max(report.max_confident_seconds, r.confident_seconds);
    report.mean_confident_fraction += static_cast<double>(r.confident_tick) /
                                      static_cast<double>(r.ticks_total) / n;
    report.mean_push_seconds += r.mean_push_seconds / n;
    report.max_push_seconds =
        std::max(report.max_push_seconds, r.max_push_seconds);
  }
  return report;
}

std::string StreamingSweepReport::table() const {
  TextTable t({"Scenario", "Mw", "confident @", "ticks", "mean push",
               "max push", "q err", "q corr", "b corr"});
  for (const auto& r : scenarios) {
    char ticks[32];
    std::snprintf(ticks, sizeof(ticks), "%zu/%zu", r.confident_tick,
                  r.ticks_total);
    t.row()
        .cell(r.spec.name)
        .cell(r.spec.magnitude, 2)
        .cell(format_duration(r.confident_seconds) + " data time")
        .cell(ticks)
        .cell(format_duration(r.mean_push_seconds))
        .cell(format_duration(r.max_push_seconds))
        .cell(r.final_forecast_error, 3)
        .cell(r.final_forecast_correlation, 3);
    if (r.map_tracked) {
      t.cell(r.displacement_correlation, 3);
    } else {
      t.cell("n/a");
    }
  }
  t.row()
      .cell("sweep mean")
      .cell("")
      .cell(format_duration(mean_confident_seconds) + " data time")
      .cell("")
      .cell(format_duration(mean_push_seconds))
      .cell(format_duration(max_push_seconds))
      .cell("")
      .cell("")
      .cell("");
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "push latency over %zu pushes: p50 %s | p95 %s | p99 %s | "
                "max %s\n",
                push_latency.count, format_duration(push_latency.p50).c_str(),
                format_duration(push_latency.p95).c_str(),
                format_duration(push_latency.p99).c_str(),
                format_duration(push_latency.max).c_str());
  return t.str() + tail;
}

std::string EnsembleReport::table() const {
  TextTable t({"Scenario", "Mw", "infer", "predict", "b corr", "b err",
               "q err", "q corr", "CI cov", "peak b [m]"});
  for (const auto& r : scenarios) {
    t.row()
        .cell(r.spec.name)
        .cell(r.spec.magnitude, 2)
        .cell(format_duration(r.infer_seconds))
        .cell(format_duration(r.predict_seconds))
        .cell(r.displacement_correlation, 3)
        .cell(r.displacement_error, 3)
        .cell(r.forecast_error, 3)
        .cell(r.forecast_correlation, 3)
        .cell(r.ci_coverage, 2)
        .cell(r.peak_true_uplift, 2);
  }
  t.row()
      .cell("ensemble mean")
      .cell("")
      .cell(format_duration(mean_online_seconds))
      .cell("(online)")
      .cell(mean_displacement_correlation, 3)
      .cell(mean_displacement_error, 3)
      .cell(mean_forecast_error, 3)
      .cell(mean_forecast_correlation, 3)
      .cell(mean_ci_coverage, 2)
      .cell("");
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "online latency over %zu scenarios: p50 %s | p95 %s | "
                "p99 %s | max %s\n",
                online_latency.count,
                format_duration(online_latency.p50).c_str(),
                format_duration(online_latency.p95).c_str(),
                format_duration(online_latency.p99).c_str(),
                format_duration(online_latency.max).c_str());
  return t.str() + tail;
}

}  // namespace tsunami
