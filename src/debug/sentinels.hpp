#pragma once

// Runtime hot-path sentinels: the executable half of the TSUNAMI_HOT_PATH
// contract (src/util/hot_path.hpp). The static linter proves no allocation
// or lock *token* appears in an annotated function; these sentinels prove at
// runtime that none *executes* — including anything reached through calls
// the linter cannot see into.
//
// Mechanism (compiled only when the TSUNAMI_CHECKS CMake option is ON):
//   * replacement global operator new / operator delete (all standard
//     variants, in sentinels.cpp — the same TU as ScopedNoAlloc, so linking
//     the sentinel pulls the interposers in from the static library) bump a
//     thread-local allocation counter;
//   * a pthread_mutex_lock definition that shadows libc's (resolved lazily
//     via dlsym(RTLD_NEXT), eagerly warmed at static-init time so the first
//     armed region does not count dlsym's own work) bumps a thread-local
//     lock counter. std::mutex::lock on glibc lands here.
//
// The sentinels OBSERVE, they do not abort: a scope records the calling
// thread's counters at construction, and tests assert on the delta
// (EXPECT_EQ(guard.allocations(), 0u)). Observing keeps the positive tests
// (allocation IS counted) expressible and the failure mode a readable test
// diff instead of a SIGABRT.
//
// Per-thread semantics: counters are thread_local, so a guard only sees the
// work of its own thread. That is exactly the steady-state claim the repo
// makes — the thread calling push()/apply() performs no allocation — and it
// keeps unrelated threads (pool workers idling, other tests) out of the
// count. Deallocations are never counted: retiring a buffer is allowed on a
// hot path; acquiring one is not.
//
// Default (TSUNAMI_CHECKS off) builds compile the scopes to inert stubs so
// test code can construct them unconditionally and gate assertions on
// checks_enabled().

#include <cstdint>

namespace tsunami::debug {

/// True when the build carries the interposers (TSUNAMI_CHECKS=ON). Tests
/// GTEST_SKIP on false rather than silently passing.
[[nodiscard]] constexpr bool checks_enabled() {
#if defined(TSUNAMI_CHECKS)
  return true;
#else
  return false;
#endif
}

#if defined(TSUNAMI_CHECKS)

/// Allocations (operator new family) ever performed by this thread.
[[nodiscard]] std::uint64_t thread_allocation_count();

/// pthread_mutex_lock acquisitions ever performed by this thread.
[[nodiscard]] std::uint64_t thread_lock_count();

/// Allocations ever performed by ANY thread. For cross-thread claims (the
/// warning service drains on pool workers): assert a process-wide delta is
/// bounded, where the per-thread scopes cannot see the workers.
[[nodiscard]] std::uint64_t total_allocation_count();

/// Counts this thread's allocations while in scope.
class ScopedNoAlloc {
 public:
  ScopedNoAlloc() : start_(thread_allocation_count()) {}

  /// Allocations on this thread since construction.
  [[nodiscard]] std::uint64_t allocations() const {
    return thread_allocation_count() - start_;
  }

 private:
  std::uint64_t start_;
};

/// Counts this thread's mutex acquisitions while in scope.
class ScopedNoLock {
 public:
  ScopedNoLock() : start_(thread_lock_count()) {}

  /// Locks taken on this thread since construction.
  [[nodiscard]] std::uint64_t locks() const {
    return thread_lock_count() - start_;
  }

 private:
  std::uint64_t start_;
};

#else  // !TSUNAMI_CHECKS — inert stubs, zero cost, always report zero.

[[nodiscard]] inline std::uint64_t thread_allocation_count() { return 0; }
[[nodiscard]] inline std::uint64_t thread_lock_count() { return 0; }
[[nodiscard]] inline std::uint64_t total_allocation_count() { return 0; }

class ScopedNoAlloc {
 public:
  [[nodiscard]] std::uint64_t allocations() const { return 0; }
};

class ScopedNoLock {
 public:
  [[nodiscard]] std::uint64_t locks() const { return 0; }
};

#endif  // TSUNAMI_CHECKS

}  // namespace tsunami::debug
