#include "debug/sentinels.hpp"

// The interposers live here, in the SAME translation unit as the counters
// the ScopedNoAlloc/ScopedNoLock header reads: any test that links a scope
// forces this object out of the static library, and the replacement
// operators come with it. Without that co-location the linker would happily
// drop the interposers and the sentinels would count nothing.

#if defined(TSUNAMI_CHECKS)

#include <dlfcn.h>
#include <pthread.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace tsunami::debug {
namespace {

// Plain thread_local PODs: incrementing them allocates nothing and takes no
// lock, so the interposers cannot recurse into themselves.
thread_local std::uint64_t t_allocations = 0;
thread_local std::uint64_t t_locks = 0;

// Process-wide tally behind total_allocation_count().
std::atomic<std::uint64_t> g_allocations{0};

using LockFn = int (*)(pthread_mutex_t*);

LockFn real_pthread_mutex_lock() {
  static LockFn real =
      reinterpret_cast<LockFn>(dlsym(RTLD_NEXT, "pthread_mutex_lock"));
  return real;
}

// Resolve the real pthread_mutex_lock during static initialization so the
// dlsym call (which may itself allocate) never lands inside an armed scope.
[[maybe_unused]] const LockFn g_warm_lock_fn = real_pthread_mutex_lock();

void note_alloc() {
  ++t_allocations;
  // mo: relaxed — a diagnostic tally; the tests that read the total quiesce
  // the other threads (drain/wait) before asserting on the delta.
  g_allocations.fetch_add(1, std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  note_alloc();
  // malloc(0) may return null legitimately; operator new must not.
  return std::malloc(size != 0 ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  note_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : align) != 0) return nullptr;
  return p;
}

}  // namespace

std::uint64_t thread_allocation_count() { return t_allocations; }
std::uint64_t thread_lock_count() { return t_locks; }

std::uint64_t total_allocation_count() {
  // mo: relaxed — see note_alloc: callers quiesce writers before asserting.
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace tsunami::debug

// ---------------------------------------------------------------------------
// Replacement global allocation functions ([new.delete.single] / [.array]).
// The standard blesses exactly this: a program may replace them, and every
// new-expression in every linked TU routes through these.
// ---------------------------------------------------------------------------

void* operator new(std::size_t size) {
  void* p = tsunami::debug::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = tsunami::debug::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return tsunami::debug::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return tsunami::debug::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = tsunami::debug::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = tsunami::debug::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return tsunami::debug::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return tsunami::debug::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
}

// Deallocation is free (pun intended): retiring memory on a hot path is
// allowed, so deletes are not counted — they just release.

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

// ---------------------------------------------------------------------------
// pthread_mutex_lock shadow. Our strong definition in the executable wins
// symbol resolution over libc's; the real implementation is reached through
// the dlsym(RTLD_NEXT) pointer warmed above. glibc's std::mutex::lock is a
// pthread_mutex_lock call, so ScopedNoLock sees std::mutex too.
// ---------------------------------------------------------------------------

extern "C" int pthread_mutex_lock(pthread_mutex_t* mutex) {
  ++tsunami::debug::t_locks;
  return tsunami::debug::real_pthread_mutex_lock()(mutex);
}

#endif  // TSUNAMI_CHECKS
