#pragma once

// Explicit RK4 time stepping for the LTI system  dy/dt = Lambda y + b,
// plus the EXACT discrete adjoint of the one-step map.
//
// For constant b over a step of size h, classic RK4 is the linear map
//   y' = P y + D b,
//   P = I + h*L + h^2/2*L^2 + h^3/6*L^3 + h^4/24*L^4,
//   D = h*(I + h/2*L + h^2/6*L^2 + h^3/24*L^3),        L = Lambda.
// The adjoint stepper applies P^T and D^T by running the SAME Krylov
// sequence with Lambda^T, so the discrete p2o map and the rows extracted by
// the adjoint agree to machine precision — the property the inversion
// framework's Toeplitz structure rests on (tested in test_adjoint.cpp).

#include <span>
#include <vector>

#include "wave/acoustic_gravity.hpp"

namespace tsunami {

class Rk4Stepper {
 public:
  explicit Rk4Stepper(const AcousticGravityModel& model);

  /// y <- P y + D b, where `b` may be empty (homogeneous step).
  void step(std::span<double> y, std::span<const double> b, double dt);

  /// Adjoint step: acc += D^T w (if acc nonempty), then w <- P^T w.
  /// This ordering implements B_tilde^T within a parameter interval (see
  /// adjoint.cpp).
  void adjoint_step(std::span<double> w, std::span<double> acc, double dt);

  [[nodiscard]] const AcousticGravityModel& model() const { return model_; }

 private:
  const AcousticGravityModel& model_;
  // RK4 stage storage (reused across steps, the paper's "carefully reusing
  // temporary vectors from RK4" memory optimization).
  std::vector<double> k1_, k2_, k3_, k4_, tmp_;
};

}  // namespace tsunami
